package ccsim

// A plain-text format for operation streams, so workloads can be produced
// by external tools (address-trace converters, generators in other
// languages) and replayed through the simulator — the classic trace-driven
// alternative to the built-in program-driven kernels.
//
// Format: one operation per line, grouped into per-processor sections.
// Comments (#) and blank lines are ignored.
//
//	# anything
//	proc 0
//	stats            begin the measured section (required, once per proc)
//	r 0x1000         read byte address
//	w 4128           write (hex with 0x, or decimal)
//	c 250            compute for 250 pclocks
//	a 0x80000        acquire the lock at this address
//	u 0x80000        release it
//	b 3              arrive at barrier 3
//	proc 1
//	...

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseTrace reads the trace format and returns one stream per processor
// section, in section order. Every processor 0..N-1 must have exactly one
// section.
func ParseTrace(r io.Reader) ([]Stream, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var (
		perProc = map[int][]Op{}
		cur     = -1
		maxProc = -1
		lineno  = 0
	)
	fail := func(format string, args ...any) error {
		return fmt.Errorf("trace line %d: %s", lineno, fmt.Sprintf(format, args...))
	}
	parseU64 := func(s string) (uint64, error) {
		if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
			return strconv.ParseUint(s[2:], 16, 64)
		}
		return strconv.ParseUint(s, 10, 64)
	}
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		op := fields[0]
		if op == "proc" {
			if len(fields) != 2 {
				return nil, fail("proc needs an id")
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id < 0 {
				return nil, fail("bad processor id %q", fields[1])
			}
			if _, dup := perProc[id]; dup {
				return nil, fail("duplicate section for processor %d", id)
			}
			perProc[id] = []Op{}
			cur = id
			if id > maxProc {
				maxProc = id
			}
			continue
		}
		if cur < 0 {
			return nil, fail("operation before any proc section")
		}
		if op == "stats" {
			// Accepted for documentation value; every parsed stream gets a
			// leading StatsOn regardless.
			continue
		}
		if len(fields) != 2 {
			return nil, fail("want: <op> <arg>")
		}
		arg := fields[1]
		var parsed Op
		switch op {
		case "r", "w", "a", "u":
			addr, err := parseU64(arg)
			if err != nil {
				return nil, fail("bad address %q", arg)
			}
			kind := map[string]OpKind{"r": Read, "w": Write, "a": Acquire, "u": Release}[op]
			parsed = Op{Kind: kind, Addr: addr}
		case "c":
			n, err := strconv.ParseInt(arg, 10, 64)
			if err != nil || n < 0 {
				return nil, fail("bad cycle count %q", arg)
			}
			parsed = Op{Kind: Busy, Cycles: n}
		case "b":
			id, err := strconv.Atoi(arg)
			if err != nil || id < 0 {
				return nil, fail("bad barrier id %q", arg)
			}
			parsed = Op{Kind: Barrier, Bar: id}
		default:
			return nil, fail("unknown operation %q", op)
		}
		perProc[cur] = append(perProc[cur], parsed)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if maxProc < 0 {
		return nil, fmt.Errorf("trace: no processor sections")
	}
	streams := make([]Stream, maxProc+1)
	for p := 0; p <= maxProc; p++ {
		ops, ok := perProc[p]
		if !ok {
			return nil, fmt.Errorf("trace: missing section for processor %d (sections must cover 0..%d)", p, maxProc)
		}
		streams[p] = Ops(append([]Op{{Kind: StatsOn}}, ops...)...)
	}
	return streams, nil
}

// WriteTrace renders per-processor operation slices in the trace format, so
// generated workloads can be saved and replayed.
func WriteTrace(w io.Writer, procs [][]Op) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# ccsim trace")
	for p, ops := range procs {
		fmt.Fprintf(bw, "proc %d\n", p)
		for _, op := range ops {
			switch op.Kind {
			case Read:
				fmt.Fprintf(bw, "r 0x%x\n", op.Addr)
			case Write:
				fmt.Fprintf(bw, "w 0x%x\n", op.Addr)
			case Acquire:
				fmt.Fprintf(bw, "a 0x%x\n", op.Addr)
			case Release:
				fmt.Fprintf(bw, "u 0x%x\n", op.Addr)
			case Busy:
				fmt.Fprintf(bw, "c %d\n", op.Cycles)
			case Barrier:
				fmt.Fprintf(bw, "b %d\n", op.Bar)
			case StatsOn:
				// implicit at the start of every parsed stream
			default:
				return fmt.Errorf("trace: cannot render op kind %d", op.Kind)
			}
		}
	}
	return bw.Flush()
}
