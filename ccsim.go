// Package ccsim is a detailed architectural simulator for the cache
// protocol extensions studied in Dahlgren, Dubois & Stenström, "Combined
// Performance Gains of Simple Cache Protocol Extensions" (ISCA 1994).
//
// It models a 16-node CC-NUMA multiprocessor — two-level caches, lockup-free
// second-level cache with write buffers, a full-map directory-based
// write-invalidate protocol, queue-based locks at memory, and either a
// contention-free uniform network or a wormhole-routed mesh — and the
// paper's three protocol extensions in every combination:
//
//   - P:  adaptive sequential prefetching
//   - M:  the migratory-sharing optimization
//   - CW: competitive update with write caches
//
// under sequential or release consistency.
//
// A minimal run:
//
//	cfg := ccsim.DefaultConfig()
//	cfg.Workload = "mp3d"
//	cfg.Extensions = ccsim.Ext{P: true, CW: true}
//	res, err := ccsim.Run(cfg)
//
// res then carries the execution-time decomposition, miss-rate components,
// and network traffic the paper's figures and tables report.
package ccsim

import (
	"fmt"
	"io"
	"runtime/debug"
	"strings"

	"ccsim/internal/check"
	"ccsim/internal/core"
	"ccsim/internal/machine"
	"ccsim/internal/proc"
	"ccsim/internal/sim"
	"ccsim/internal/trace"
	"ccsim/internal/workload"
)

// Ext selects the protocol extensions applied on top of the BASIC
// write-invalidate protocol.
type Ext struct {
	P  bool // adaptive sequential prefetching
	M  bool // migratory-sharing optimization
	CW bool // competitive update + write cache (requires release consistency)
}

// Network selects the interconnect model.
type Network int

const (
	// Uniform is the paper's default: contention-free, 54-pclock
	// node-to-node latency.
	Uniform Network = iota
	// Mesh is the wormhole-routed 2-D mesh of the paper's §5.3; set
	// LinkBits to 64, 32 or 16.
	Mesh
)

// Config selects one simulation.
type Config struct {
	// Workload names one of the five kernels: "mp3d", "cholesky", "water",
	// "lu", "ocean". Leave empty when calling RunStreams.
	Workload string
	// Scale multiplies the workload's problem size (1.0 = default).
	Scale float64

	Procs int // processor count (paper: 16)

	Extensions Ext
	SC         bool // sequential consistency instead of release consistency

	Net      Network
	LinkBits int // mesh link width (64, 32, 16)

	// SLCBlocks is the second-level cache size in 32-byte blocks;
	// 0 = infinite (paper default). 512 models the paper's 16-KB SLC.
	SLCBlocks int
	// SLCWays is the SLC associativity (0 or 1 = the paper's direct-mapped
	// organization; higher values add LRU set associativity).
	SLCWays int
	// FLWBEntries/SLWBEntries size the write buffers; 0 selects the
	// paper's defaults (8/16 under RC, 1/16 under SC).
	FLWBEntries int
	SLWBEntries int

	// Extension tuning; zero values select the paper's settings.
	PrefetchMaxK     int // cap on the adaptive degree of prefetching (default 8)
	CWThreshold      int // competitive threshold (default 1, per §3.3 with write caches)
	WriteCacheBlocks int // write-cache size in blocks (default 4)
	// PrefetchNackDirty makes the home reject prefetches that find the
	// block dirty in another cache (a DASH-style alternative kept as an
	// ablation; the paper's scheme services them).
	PrefetchNackDirty bool

	// DirPointers selects a limited-pointer directory (Dir_iB) with that
	// many sharer pointers per memory line; 0 keeps the paper's full
	// presence-flag map. Overflowing entries broadcast their
	// invalidations — the classic storage/traffic trade-off, kept here as
	// an extension study.
	DirPointers int

	// VerifyData carries per-word version numbers through every protocol
	// data path and fails the run if any processor ever observes a
	// location's value moving backward — the data-value invariant of
	// coherence. Costs simulation speed; meant for validation.
	VerifyData bool

	// TraceWriter, when non-nil, streams a protocol trace there: every
	// message send and delivery, directory transition, cache fill and
	// eviction, one line per event.
	TraceWriter io.Writer
	// TraceBlocks restricts the trace to the blocks containing these byte
	// addresses (empty = all blocks).
	TraceBlocks []uint64

	// Telemetry, when non-nil, collects transaction spans, stall intervals
	// and utilization samples during the run (see NewTelemetry). Leave nil
	// for zero overhead.
	Telemetry *Telemetry

	// Progress, when non-nil, is a live probe into the run: the engine
	// publishes events executed, simulated time and a wall-clock heartbeat
	// through lock-free atomic stores, and any other goroutine reads them
	// with Progress.Snapshot while the simulation runs. Leave nil for zero
	// overhead.
	Progress *Progress

	// Cancel, when non-nil, is a cooperative shutdown flag: firing it from
	// any goroutine (a signal handler, an interrupted sweep) aborts the run
	// at the next event batch with a *SimFault of kind FaultCanceled
	// instead of killing the process mid-state. One flag may be shared
	// across concurrent runs. Leave nil for zero overhead.
	Cancel *Cancel

	// MaxEvents aborts the run with a *SimFault once this many simulation
	// events have executed (0 = no limit) — the watchdog's guard against
	// runaway protocol activity.
	MaxEvents uint64
	// Deadline aborts the run with a *SimFault before simulated time
	// passes this many pclocks (0 = no limit).
	Deadline int64
	// NoProgressEvents tunes the watchdog's livelock detector: abort after
	// this many consecutive events without any processor retiring an
	// operation. 0 selects the machine default (2M events).
	NoProgressEvents uint64
	// FlightRecorder sets the fault flight recorder's depth in protocol
	// messages (0 = default 64, negative = disabled). The recorder's tail
	// appears in every SimFault dump.
	FlightRecorder int

	// FaultInject, when it equals this run's "workload/protocol" identity
	// (e.g. "mp3d/P+CW"), makes the simulation panic deliberately shortly
	// after it starts. It exists to exercise the fault-containment path
	// end to end: the panic surfaces as a *SimFault like any real protocol
	// bug. The extended form "<mutation>@<workload/protocol>" (e.g.
	// "wb-drop-word@mp3d/BASIC") instead arms a one-shot protocol mutation
	// — a single deliberately wrong transition — to prove the live checker
	// catches real protocol bugs at the offending event (see Config.Check).
	// Leave empty for normal runs.
	FaultInject string

	// Check, when non-nil, attaches the live coherence checker: shadow
	// directory/cache/write-cache state plus a sequential value oracle,
	// asserted at every protocol transition. The first violated invariant
	// fails the run with a *SimFault naming the message, block and
	// transition (AsFault recovers it). Implies VerifyData. Leave nil for
	// zero overhead; use a fresh NewChecker per run.
	Check *Checker

	// Sharing, when non-nil, attaches the sharing-pattern analyzer: an
	// online per-block classifier over the measured section's access stream
	// (read-only / read-mostly / migratory / producer-consumer /
	// false-sharing / irregular) attributing misses, invalidations, update
	// traffic and miss latency to each class. The report lands in
	// Result.Sharing; with Telemetry also attached, per-class counter
	// tracks appear in the timeline export. Leave nil for zero overhead;
	// use a fresh NewSharingAnalytics per run.
	Sharing *SharingAnalytics

	// SelfProfile, when non-nil, attaches the engine self-profiler: sampled
	// wall-clock attribution per event callback, exported with
	// SelfProfiler.WriteJSON in cmd/benchjson-compatible form. One profiler
	// may be shared across runs to aggregate. Leave nil for zero overhead.
	SelfProfile *SelfProfiler
}

// Checker is the live coherence checker attached via Config.Check; create
// one with NewChecker. See internal/check for the invariants it asserts.
type Checker = check.Oracle

// NewChecker returns a live coherence checker for one run.
func NewChecker() *Checker { return check.New() }

// Cancel is the cooperative shutdown flag attached via Config.Cancel; the
// zero value is ready to use. Fire it with Cancel.Cancel() from any
// goroutine.
type Cancel = sim.Cancel

// SelfProfiler is the engine self-profiler attached via Config.SelfProfile;
// create one with NewSelfProfiler. See internal/sim for the sampling model.
type SelfProfiler = sim.SelfProfiler

// NewSelfProfiler returns an empty engine self-profiler.
func NewSelfProfiler() *SelfProfiler { return sim.NewSelfProfiler() }

// DefaultConfig returns the paper's baseline: 16 processors, BASIC protocol
// under release consistency, uniform network, infinite SLC.
func DefaultConfig() Config {
	return Config{Scale: 1.0, Procs: 16, LinkBits: 64}
}

func (c Config) coreParams() core.Params {
	p := core.DefaultParams()
	p.Nodes = c.Procs
	p.P = c.Extensions.P
	p.M = c.Extensions.M
	p.CW = c.Extensions.CW
	p.SC = c.SC
	p.SLCSets = c.SLCBlocks
	p.SLCWays = c.SLCWays
	if c.SC {
		// Paper §5.2: under SC a single FLWB entry suffices; the SLWB still
		// tracks pending prefetches when P is on.
		p.FLWBEntries = 1
	}
	if c.FLWBEntries > 0 {
		p.FLWBEntries = c.FLWBEntries
	}
	if c.SLWBEntries > 0 {
		p.SLWBEntries = c.SLWBEntries
	}
	if c.PrefetchMaxK > 0 {
		p.PrefetchMaxK = c.PrefetchMaxK
	}
	if c.CWThreshold > 0 {
		p.CWThreshold = c.CWThreshold
	}
	if c.WriteCacheBlocks > 0 {
		p.WriteCacheBlocks = c.WriteCacheBlocks
	}
	p.PrefetchNackDirty = c.PrefetchNackDirty
	p.DirPointers = c.DirPointers
	p.VerifyData = c.VerifyData
	return p
}

func (c Config) machineConfig() machine.Config {
	mc := machine.Config{
		Core:             c.coreParams(),
		LinkBits:         c.LinkBits,
		Tele:             c.Telemetry,
		MaxEvents:        c.MaxEvents,
		MaxTime:          sim.Time(c.Deadline),
		NoProgressEvents: c.NoProgressEvents,
		FlightRecorder:   c.FlightRecorder,
		Progress:         c.Progress,
		Cancel:           c.Cancel,
		Check:            c.Check,
		Sharing:          c.Sharing,
		SelfProf:         c.SelfProfile,
	}
	if c.FaultInject != "" {
		ident := c.Workload + "/" + c.ProtocolName()
		if kind, target, cut := strings.Cut(c.FaultInject, "@"); cut {
			if target == ident {
				mc.Core.Mutate = kind
			}
		} else if c.FaultInject == ident {
			mc.InjectPanic = true
		}
	}
	if c.Net == Mesh {
		mc.Net = machine.NetMesh
	}
	if c.TraceWriter != nil {
		var f trace.Filter
		for _, a := range c.TraceBlocks {
			f.Blocks = append(f.Blocks, a/32)
		}
		mc.Tracer = trace.New(c.TraceWriter, f)
		mc.Tracer.SetLimit(1) // stream-only: keep the buffer trivial
	}
	return mc
}

// ProtocolName returns the paper's name for the configured protocol
// (BASIC, P, CW, M, P+CW, P+M, CW+M, P+CW+M, with -SC under sequential
// consistency).
func (c Config) ProtocolName() string {
	p := c.coreParams()
	return p.ProtocolName()
}

// Run simulates the configured workload to completion and returns its
// measurements. The run is deterministic: identical configurations produce
// identical results.
func Run(cfg Config) (*Result, error) {
	if cfg.Workload == "" {
		return nil, fmt.Errorf("ccsim: no workload named; use RunStreams for custom streams")
	}
	if cfg.Scale == 0 {
		cfg.Scale = 1.0
	}
	streams, err := workload.Streams(cfg.Workload, cfg.Procs, cfg.Scale)
	if err != nil {
		return nil, err
	}
	return runStreams(cfg, streams)
}

// Workloads lists the available kernel names in the paper's order.
func Workloads() []string { return workload.Names() }

// WorkloadOps expands a built-in kernel into per-processor operation
// slices, e.g. to export it with WriteTrace or to post-process it.
func WorkloadOps(name string, procs int, scale float64) ([][]Op, error) {
	streams, err := workload.Streams(name, procs, scale)
	if err != nil {
		return nil, err
	}
	out := make([][]Op, len(streams))
	for p, s := range streams {
		for {
			op, ok := s.Next()
			if !ok {
				break
			}
			out[p] = append(out[p], Op{
				Kind:   kindUnmap[op.Kind],
				Addr:   uint64(op.Addr),
				Cycles: op.Cycles,
				Bar:    op.Bar,
			})
		}
	}
	return out, nil
}

// Progress is a lock-free live probe into a running simulation: attach one
// via Config.Progress, then call Snapshot from any goroutine to read the
// run's position (events executed, simulated time, wall-clock heartbeat)
// without disturbing it. The ops plane of cmd/experiments builds its
// /status and /metrics views from these probes.
type Progress = sim.Progress

// ProgressSnapshot is one reading of a Progress probe.
type ProgressSnapshot = sim.ProgressSnapshot

// HardwareCost is one row of the paper's Table 1: the hardware an extension
// needs beyond the BASIC protocol.
type HardwareCost = core.HardwareCost

// CostTable returns the paper's Table 1 for a machine with the given node
// count.
func CostTable(nodes int) []HardwareCost { return core.CostTable(nodes) }

// StorageBits quantifies a configuration's coherence-state storage per
// node (the companion technical report's cost model).
type StorageBits = core.StorageBits

// ComputeStorage returns the per-node storage a configuration needs, for
// an SLC of slcFrames lines and memBlocks blocks of local memory.
func ComputeStorage(cfg Config, slcFrames, memBlocks int) StorageBits {
	return core.ComputeStorage(cfg.coreParams(), slcFrames, memBlocks)
}

// RunStreams simulates custom operation streams, one per processor, against
// the configured machine. Each stream must begin with a StatsOn operation.
func RunStreams(cfg Config, streams []Stream) (*Result, error) {
	adapted := make([]proc.Stream, len(streams))
	for i, s := range streams {
		adapted[i] = &streamAdapter{s: s}
	}
	return runStreams(cfg, adapted)
}

func runStreams(cfg Config, streams []proc.Stream) (res *Result, err error) {
	m, merr := machine.New(cfg.machineConfig(), streams)
	if merr != nil {
		return nil, merr
	}
	// Contain protocol assertions: the simulator's internal invariants stay
	// panics (DESIGN.md), but none escapes Run — a crash surfaces as a
	// structured *SimFault with the dispatch context and machine snapshot.
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, m.Recovered(v, debug.Stack())
		}
	}()
	r, rerr := m.Run()
	if rerr != nil {
		return nil, rerr
	}
	return convertResult(cfg, r), nil
}
