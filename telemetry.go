package ccsim

import "ccsim/internal/telemetry"

// Telemetry collects a run's observability data: causal transaction spans
// for sampled misses, prefetches, ownership requests and updates; processor
// stall intervals; directory-transition instants; and periodic utilization
// samples of every node's bus and SLC. Attach one via Config.Telemetry,
// then export a Perfetto/Chrome trace with WriteTimeline or inspect the
// spans programmatically. A nil *Telemetry is a no-op on every path, so the
// instrumented simulator pays nothing when telemetry is off.
type Telemetry = telemetry.Collector

// NewTelemetry returns a collector with default capacity limits and a
// 1000-pclock sampling period.
func NewTelemetry() *Telemetry { return telemetry.New(telemetry.DefaultOptions()) }

// NewTelemetryOptions exposes the underlying options for callers that need
// custom span caps or sampling periods.
type TelemetryOptions = telemetry.Options

// NewTelemetryWith returns a collector with the given options; zero fields
// take their defaults.
func NewTelemetryWith(opts TelemetryOptions) *Telemetry { return telemetry.New(opts) }
