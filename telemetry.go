package ccsim

import "ccsim/internal/telemetry"

// Telemetry collects a run's observability data: causal transaction spans
// for sampled misses, prefetches, ownership requests and updates; processor
// stall intervals; directory-transition instants; and periodic utilization
// samples of every node's bus and SLC. Attach one via Config.Telemetry,
// then export a Perfetto/Chrome trace with WriteTimeline or inspect the
// spans programmatically. A nil *Telemetry is a no-op on every path, so the
// instrumented simulator pays nothing when telemetry is off.
type Telemetry = telemetry.Collector

// NewTelemetry returns a collector with default capacity limits and a
// 1000-pclock sampling period.
func NewTelemetry() *Telemetry { return telemetry.New(telemetry.DefaultOptions()) }

// NewTelemetryOptions exposes the underlying options for callers that need
// custom span caps or sampling periods.
type TelemetryOptions = telemetry.Options

// NewTelemetryWith returns a collector with the given options; zero fields
// take their defaults.
func NewTelemetryWith(opts TelemetryOptions) *Telemetry { return telemetry.New(opts) }

// SharingAnalytics is the online per-block sharing-pattern classifier
// attached via Config.Sharing: it watches the measured section's access
// stream and labels every block read-only, read-mostly, migratory,
// producer-consumer, false-sharing or irregular, attributing misses,
// invalidations, update traffic and miss-latency histograms per class. A
// nil analyzer is a no-op on every path.
type SharingAnalytics = telemetry.Sharing

// NewSharingAnalytics returns an empty analyzer for one run.
func NewSharingAnalytics() *SharingAnalytics { return telemetry.NewSharing() }

// SharingReport is the per-class summary a run's analyzer produces
// (Result.Sharing, SharingAnalytics.Report).
type SharingReport = telemetry.SharingReport

// SharingTotals is the mergeable per-class aggregate behind a report;
// sweeps Merge per-run totals and Report the sum.
type SharingTotals = telemetry.SharingTotals

// SharingClassStats is one class's row in a SharingReport.
type SharingClassStats = telemetry.SharingClassStats
