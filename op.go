package ccsim

import (
	"ccsim/internal/proc"
)

// OpKind enumerates the operations a custom workload stream may issue.
type OpKind int

const (
	// Busy models local computation (and private references, which the
	// methodology treats as first-level cache hits) for Cycles pclocks.
	Busy OpKind = iota
	// Read is a shared-data load; the processor blocks until the data
	// reaches its first-level cache.
	Read
	// Write is a shared-data store; under release consistency it is
	// buffered, under sequential consistency the processor stalls until it
	// is globally performed.
	Write
	// Acquire obtains the queue-based lock whose variable lives at Addr.
	Acquire
	// Release releases that lock (after all earlier writes have performed).
	Release
	// Barrier joins the machine-wide barrier identified by Bar; every
	// processor must arrive at the same barriers in the same order.
	Barrier
	// StatsOn starts the measured section; every stream must emit it
	// exactly once, before its other operations.
	StatsOn
)

// Op is one operation of a custom workload.
type Op struct {
	Kind   OpKind
	Addr   uint64 // byte address for Read/Write/Acquire/Release
	Cycles int64  // duration for Busy
	Bar    int    // barrier identity for Barrier
}

// Stream produces one processor's operations. Next is called again only
// after the previous operation completed in simulated time, so generators
// may depend on simulation progress.
type Stream interface {
	Next() (Op, bool)
}

// Ops returns a Stream replaying a fixed operation slice.
func Ops(ops ...Op) Stream { return &sliceStream{ops: ops} }

type sliceStream struct {
	ops []Op
	i   int
}

func (s *sliceStream) Next() (Op, bool) {
	if s.i >= len(s.ops) {
		return Op{}, false
	}
	op := s.ops[s.i]
	s.i++
	return op, true
}

var kindMap = map[OpKind]proc.OpKind{
	Busy: proc.OpBusy, Read: proc.OpRead, Write: proc.OpWrite,
	Acquire: proc.OpAcquire, Release: proc.OpRelease,
	Barrier: proc.OpBarrier, StatsOn: proc.OpStatsOn,
}

var kindUnmap = map[proc.OpKind]OpKind{
	proc.OpBusy: Busy, proc.OpRead: Read, proc.OpWrite: Write,
	proc.OpAcquire: Acquire, proc.OpRelease: Release,
	proc.OpBarrier: Barrier, proc.OpStatsOn: StatsOn,
}

// streamAdapter converts the public Stream to the internal one.
type streamAdapter struct{ s Stream }

func (a *streamAdapter) Next() (proc.Op, bool) {
	op, ok := a.s.Next()
	if !ok {
		return proc.Op{}, false
	}
	return proc.Op{
		Kind:   kindMap[op.Kind],
		Addr:   memAddr(op.Addr),
		Cycles: op.Cycles,
		Bar:    op.Bar,
	}, true
}
