.PHONY: verify test bench

# Tier-1 gate: build + vet + full tests + race passes (sim, telemetry, exp).
verify:
	sh verify.sh

test:
	go test ./...

# Benchmarks, archived machine-readably: the raw go test output streams to
# the terminal while cmd/benchjson writes the parsed results to
# BENCH_PR2.json for cross-PR comparison.
bench:
	go test -bench=. -benchmem -count=1 ./... | go run ./cmd/benchjson -o BENCH_PR2.json
