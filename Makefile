.PHONY: verify test bench chaos golden

# Tier-1 gate: build + vet + full tests + race passes (sim, telemetry, ops,
# exp) + the metrics regression gate against golden/.
verify:
	sh verify.sh

test:
	go test ./...

# Randomized robustness sweep: every extension combo under both consistency
# models and networks at seeded-random small scales, under the watchdog
# with data verification on (see exp/chaos_test.go).
chaos:
	go test -run TestChaos -v -count=1 ./exp

# Benchmarks, archived machine-readably: the raw go test output streams to
# the terminal while cmd/benchjson writes the parsed results to $(BENCH_OUT)
# for cross-PR comparison. Archive a new PR's baseline with
# `make bench BENCH_OUT=BENCH_PR10.json`; diff two baselines with
# `go run ./cmd/benchjson -compare BENCH_PR7.json BENCH_PR9.json`, adding
# `-fail-over 20` to turn the comparison into a hard gate.
BENCH_OUT ?= BENCH_PR9.json
# -p 1 serializes the per-package test binaries: benchmark-bearing packages
# must not run concurrently or they contend for cores and inflate ns/op.
bench:
	go test -p 1 -bench=. -benchmem -count=1 ./... | go run ./cmd/benchjson -o $(BENCH_OUT)

# Regenerate the committed metrics baseline that verify.sh gates against:
# the Table 2 grid (5 workloads x 4 protocols) at a small fixed scale. Run
# this after an intentional metrics change and commit the result.
golden:
	rm -f golden/*.json
	go run ./cmd/experiments -exp table2 -scale 0.05 -procs 4 -q -metrics golden > /dev/null
