.PHONY: verify test bench chaos

# Tier-1 gate: build + vet + full tests + race passes (sim, telemetry, exp).
verify:
	sh verify.sh

test:
	go test ./...

# Randomized robustness sweep: every extension combo under both consistency
# models and networks at seeded-random small scales, under the watchdog
# with data verification on (see exp/chaos_test.go).
chaos:
	go test -run TestChaos -v -count=1 ./exp

# Benchmarks, archived machine-readably: the raw go test output streams to
# the terminal while cmd/benchjson writes the parsed results to
# BENCH_PR2.json for cross-PR comparison.
bench:
	go test -bench=. -benchmem -count=1 ./... | go run ./cmd/benchjson -o BENCH_PR2.json
