.PHONY: verify test bench

# Tier-1 gate: build + vet + full tests + race pass on sim and telemetry.
verify:
	sh verify.sh

test:
	go test ./...

bench:
	go test -bench=. -benchmem
