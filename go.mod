module ccsim

go 1.22
