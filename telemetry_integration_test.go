package ccsim_test

// End-to-end checks of the telemetry layer against real simulations: the
// causal-span invariant (phase segments tile each transaction exactly), the
// byte-determinism of exported timelines, and the machine-readable result.

import (
	"bytes"
	"encoding/json"
	"testing"

	"ccsim"
	"ccsim/internal/telemetry"
)

func telemetryRun(t *testing.T, wl string) (*ccsim.Result, *ccsim.Telemetry) {
	t.Helper()
	cfg := tinyCfg(wl)
	cfg.Extensions = ccsim.Ext{P: true, CW: true}
	cfg.Telemetry = ccsim.NewTelemetry()
	r, err := ccsim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r, cfg.Telemetry
}

func TestTelemetrySpansSumToLatency(t *testing.T) {
	_, tl := telemetryRun(t, "mp3d")
	spans := tl.Spans()
	if len(spans) == 0 {
		t.Fatal("run produced no spans")
	}
	var readTotal int64
	for _, s := range spans {
		var sum int64
		for _, d := range s.Durations() {
			sum += d
		}
		if sum != s.Latency() {
			t.Fatalf("span %d (%s): phase durations sum to %d, latency %d",
				s.ID, s.Kind, sum, s.Latency())
		}
		if s.Kind == telemetry.SpanRead {
			readTotal += s.Latency()
		}
	}
	var phased int64
	for _, v := range tl.PhaseTotals(telemetry.SpanRead) {
		phased += v
	}
	if phased != readTotal {
		t.Fatalf("PhaseTotals sum %d, read-span latency total %d", phased, readTotal)
	}
}

func TestTelemetryTimelineDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	_, tl1 := telemetryRun(t, "mp3d")
	if err := tl1.WriteTimeline(&a); err != nil {
		t.Fatal(err)
	}
	_, tl2 := telemetryRun(t, "mp3d")
	if err := tl2.WriteTimeline(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("identical runs produced different timelines (%d vs %d bytes)", a.Len(), b.Len())
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &tf); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("timeline has no events")
	}
}

func TestResultJSONIncludesObservability(t *testing.T) {
	r, _ := telemetryRun(t, "mp3d")
	if r.TotalPclocks <= 0 || r.TotalPclocks < r.ExecTime {
		t.Fatalf("TotalPclocks %d implausible against ExecTime %d", r.TotalPclocks, r.ExecTime)
	}
	if len(r.Resources) != 2*r.Procs {
		t.Fatalf("%d resource rows, want bus+slc per node = %d", len(r.Resources), 2*r.Procs)
	}
	for _, u := range r.Resources {
		if u.Utilization < 0 || u.Utilization > 1 {
			t.Fatalf("%s@%d utilization %v out of range", u.Name, u.Node, u.Utilization)
		}
	}
	if r.MissLatencyP50 > r.MissLatencyP95 || r.MissLatencyP95 > r.MissLatencyP99 ||
		r.MissLatencyP99 > r.MissLatencyMax {
		t.Fatalf("quantiles not monotone: P50=%d P95=%d P99=%d max=%d",
			r.MissLatencyP50, r.MissLatencyP95, r.MissLatencyP99, r.MissLatencyMax)
	}
	if len(r.MissPhasePclocks) == 0 {
		t.Fatal("MissPhasePclocks empty despite telemetry run")
	}
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"MissLatencyP99", "MissLatencyMax", "Resources", "TotalPclocks", "MissPhasePclocks"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("result JSON missing %q", key)
		}
	}
}

// TestResultSurfacesDroppedSpans pins the span-overflow signal: a
// collector capped far below the run's transaction count must report its
// drops both through DroppedSpans() and in the Result (and therefore in
// every -json/-metrics file), where a zero-drop run omits the field.
func TestResultSurfacesDroppedSpans(t *testing.T) {
	cfg := tinyCfg("mp3d")
	cfg.Extensions = ccsim.Ext{P: true, CW: true}
	cfg.Telemetry = ccsim.NewTelemetryWith(ccsim.TelemetryOptions{MaxSpans: 8})
	r, err := ccsim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Telemetry.DroppedSpans(); got == 0 {
		t.Fatal("8-span cap dropped nothing on an mp3d run")
	}
	if r.DroppedSpans != cfg.Telemetry.DroppedSpans() {
		t.Fatalf("Result.DroppedSpans = %d, collector reports %d",
			r.DroppedSpans, cfg.Telemetry.DroppedSpans())
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"DroppedSpans"`)) {
		t.Fatal("DroppedSpans missing from Result JSON")
	}

	// An uncapped telemetry run of the same tiny workload drops nothing
	// and omits the field from JSON.
	clean := tinyCfg("mp3d")
	clean.Telemetry = ccsim.NewTelemetry()
	cr, err := ccsim.Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	if cr.DroppedSpans != 0 {
		t.Fatalf("uncapped run dropped %d spans", cr.DroppedSpans)
	}
	cb, err := json.Marshal(cr)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(cb, []byte(`"DroppedSpans"`)) {
		t.Fatal("zero DroppedSpans not omitted from Result JSON")
	}
}
