package ccsim_test

// One benchmark per table and figure of the paper's evaluation (§5), plus
// ablations for the design choices DESIGN.md calls out. Each benchmark
// iteration regenerates the corresponding result at a reduced problem size
// and reports the headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation and
//
//	go run ./cmd/experiments -exp all
//
// prints the paper-style rows at full size.

import (
	"testing"

	"ccsim"
	"ccsim/exp"
	"ccsim/internal/stats"
)

// benchOptions halves the workloads so a full `go test -bench=.` finishes
// in minutes. Half scale preserves the paper's qualitative shapes; the
// full-size reference numbers live in EXPERIMENTS.md (scale 1.0).
func benchOptions() exp.Options { return exp.Options{Scale: 0.5, Procs: 16} }

func BenchmarkTable1HardwareCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := ccsim.CostTable(16)
		if len(rows) != 4 {
			b.Fatalf("Table 1 has %d rows", len(rows))
		}
	}
}

// BenchmarkFigure2 regenerates Figure 2: execution times of all eight
// protocol combinations relative to BASIC under release consistency.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Figure2(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		report := map[string]float64{
			"mp3d/P+CW": 0, "cholesky/P+CW": 0, "ocean/P+CW": 0,
		}
		for _, r := range rows {
			key := r.Workload + "/" + r.Protocol
			if _, ok := report[key]; ok {
				report[key] = r.Relative
			}
		}
		if i == b.N-1 {
			b.ReportMetric(report["mp3d/P+CW"], "mp3d-P+CW-rel")
			b.ReportMetric(report["cholesky/P+CW"], "cholesky-P+CW-rel")
			b.ReportMetric(report["ocean/P+CW"], "ocean-P+CW-rel")
		}
	}
}

// BenchmarkTable2 regenerates Table 2: cold and coherence miss-rate
// components for BASIC, P, CW and P+CW.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table2(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				if r.Workload == "lu" {
					b.ReportMetric(r.Cold["BASIC"], "lu-BASIC-cold%")
					b.ReportMetric(r.Cold["P"], "lu-P-cold%")
				}
				if r.Workload == "ocean" {
					b.ReportMetric(r.Coh["BASIC"], "ocean-BASIC-coh%")
					b.ReportMetric(r.Coh["CW"], "ocean-CW-coh%")
				}
			}
		}
	}
}

// BenchmarkFigure3 regenerates Figure 3: P, M and P+M under sequential
// consistency against B-SC, with BASIC-RC as the reference.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Figure3(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				if r.Workload == "mp3d" && r.Protocol == "P+M" {
					b.ReportMetric(r.Relative, "mp3d-P+M-rel")
				}
				if r.Workload == "cholesky" && r.Protocol == "P+M" {
					b.ReportMetric(r.Relative, "cholesky-P+M-rel")
				}
			}
		}
	}
}

// BenchmarkTable3 regenerates Table 3: the mesh link-width sweep for P+CW
// and P+M.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table3(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				if r.Workload == "mp3d" {
					b.ReportMetric(r.PCW[64], "mp3d-P+CW-64bit")
					b.ReportMetric(r.PCW[16], "mp3d-P+CW-16bit")
					b.ReportMetric(r.PM[16], "mp3d-P+M-16bit")
				}
			}
		}
	}
}

// BenchmarkFigure4 regenerates Figure 4: network traffic normalized to
// BASIC.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Figure4(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				if r.Workload == "mp3d" && (r.Protocol == "P+CW" || r.Protocol == "M") {
					b.ReportMetric(100*r.Traffic, "mp3d-"+r.Protocol+"-traffic%")
				}
			}
		}
	}
}

// BenchmarkSensitivityBuffers regenerates §5.4's small-write-buffer study.
func BenchmarkSensitivityBuffers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.SensBuffers(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSensitivityCache regenerates §5.4's 16-KB SLC study.
func BenchmarkSensitivityCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.SensCache(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------- Ablation benchmarks (design choices from DESIGN.md) ----------

func runOne(b *testing.B, mutate func(*ccsim.Config)) *ccsim.Result {
	b.Helper()
	cfg := ccsim.DefaultConfig()
	cfg.Workload = "mp3d"
	cfg.Scale = 0.5
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := ccsim.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkAblationPrefetchDegree sweeps the prefetcher's maximum degree:
// the adaptive scheme's cap trades coverage against pollution.
func BenchmarkAblationPrefetchDegree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := runOne(b, nil)
		for _, maxK := range []int{1, 4, 8} {
			maxK := maxK
			r := runOne(b, func(cfg *ccsim.Config) {
				cfg.Extensions = ccsim.Ext{P: true}
				cfg.PrefetchMaxK = maxK
			})
			if i == b.N-1 {
				b.ReportMetric(r.RelativeTo(base), "rel-K"+string(rune('0'+maxK)))
			}
		}
	}
}

// BenchmarkAblationCompetitiveThreshold sweeps the competitive threshold:
// the paper recommends 1 with write caches, 4 without.
func BenchmarkAblationCompetitiveThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := runOne(b, nil)
		for _, thr := range []int{1, 2, 4} {
			thr := thr
			r := runOne(b, func(cfg *ccsim.Config) {
				cfg.Extensions = ccsim.Ext{CW: true}
				cfg.CWThreshold = thr
			})
			if i == b.N-1 {
				b.ReportMetric(r.RelativeTo(base), "rel-thr"+string(rune('0'+thr)))
			}
		}
	}
}

// BenchmarkAblationWriteCacheSize sweeps the write-cache size around the
// paper's recommended four blocks.
func BenchmarkAblationWriteCacheSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := runOne(b, nil)
		for _, blocks := range []int{1, 4, 16} {
			blocks := blocks
			r := runOne(b, func(cfg *ccsim.Config) {
				cfg.Extensions = ccsim.Ext{CW: true}
				cfg.WriteCacheBlocks = blocks
			})
			if i == b.N-1 {
				b.ReportMetric(r.RelativeTo(base), "rel-wc"+string(rune('0'+blocks%10)))
			}
		}
	}
}

// BenchmarkAblationPrefetchNack compares servicing prefetches that hit
// dirty-remote blocks (the paper's behavior) against nacking them
// (DASH-style).
func BenchmarkAblationPrefetchNack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := runOne(b, nil)
		serve := runOne(b, func(cfg *ccsim.Config) { cfg.Extensions = ccsim.Ext{P: true} })
		nack := runOne(b, func(cfg *ccsim.Config) {
			cfg.Extensions = ccsim.Ext{P: true}
			cfg.PrefetchNackDirty = true
		})
		if i == b.N-1 {
			b.ReportMetric(serve.RelativeTo(base), "rel-serve")
			b.ReportMetric(nack.RelativeTo(base), "rel-nack")
		}
	}
}

// BenchmarkExtensionDirectory sweeps the limited-pointer directory study
// (full map vs Dir4B/Dir2B/Dir1B).
func BenchmarkExtensionDirectory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.DirectoryStudy(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				if r.Workload == "mp3d" && r.Pointers == 1 {
					b.ReportMetric(r.PCW, "mp3d-Dir1B-P+CW-rel")
				}
			}
		}
	}
}

// BenchmarkExtensionAssociativity sweeps SLC associativity at 16 KB.
func BenchmarkExtensionAssociativity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.AssociativityStudy(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				if r.Workload == "lu" && r.Ways == 4 {
					b.ReportMetric(r.Basic, "lu-4way-rel")
				}
			}
		}
	}
}

// BenchmarkExtensionScaling sweeps the machine size 4..32 processors.
func BenchmarkExtensionScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.ScalingStudy(exp.Options{Scale: 0.25, Procs: 16})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				if r.Workload == "cholesky" && r.Procs == 32 {
					b.ReportMetric(r.PCW, "cholesky-32p-P+CW-rel")
				}
			}
		}
	}
}

// BenchmarkVerifiedSimulation measures the cost of data-value verification.
func BenchmarkVerifiedSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := runOne(b, func(cfg *ccsim.Config) {
			cfg.Extensions = ccsim.Ext{P: true, CW: true, M: true}
			cfg.VerifyData = true
		})
		if r.ExecTime <= 0 {
			b.Fatal("empty run")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// pclocks per wall second for the BASIC machine on MP3D.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var pclocks int64
	for i := 0; i < b.N; i++ {
		r := runOne(b, nil)
		pclocks += r.ExecTime
	}
	b.ReportMetric(float64(pclocks)/b.Elapsed().Seconds(), "pclocks/s")
}

// BenchmarkTelemetryOverhead compares the same P+CW run with telemetry off
// (the default) and on, so the instrumentation's cost stays visible.
func BenchmarkTelemetryOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runOne(b, func(cfg *ccsim.Config) {
				cfg.Extensions = ccsim.Ext{P: true, CW: true}
			})
		}
	})
	b.Run("on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runOne(b, func(cfg *ccsim.Config) {
				cfg.Extensions = ccsim.Ext{P: true, CW: true}
				cfg.Telemetry = ccsim.NewTelemetry()
			})
		}
	})
}

// TestTelemetryDisabledAddsNoAllocs pins down the disabled path's cost: with
// no collector attached, every telemetry hook the simulator calls is a nil
// no-op that allocates nothing.
func TestTelemetryDisabledAddsNoAllocs(t *testing.T) {
	var tl *ccsim.Telemetry
	if n := testing.AllocsPerRun(100, func() {
		txn := tl.Begin(0, 0, 0, 0)
		tl.Mark(txn, 0, 10)
		tl.End(txn, 20)
		tl.StallInterval(0, "read", 0, 10)
		tl.RecordInstant(0, "grant", 0, 10)
	}); n != 0 {
		t.Fatalf("nil telemetry collector allocates %v times per run, want 0", n)
	}
}

// TestAnalyticsDisabledAddsNoAllocs pins down the sharing analyzer's
// disabled path the same way: with no analyzer attached (the default),
// every hook the cache controllers call is a nil no-op that allocates
// nothing, so analytics-off runs pay only the nil check.
func TestAnalyticsDisabledAddsNoAllocs(t *testing.T) {
	var sh *ccsim.SharingAnalytics
	if n := testing.AllocsPerRun(100, func() {
		sh.OnRead(0, 7)
		sh.OnWrite(0, 7, 3)
		sh.OnMiss(1, 7)
		sh.OnMissLatency(7, 120)
		sh.OnInvalidate(1, 7)
		sh.OnUpdate(1, 7)
		sh.OnTraffic(7, stats.DataMsg, 32)
	}); n != 0 {
		t.Fatalf("nil sharing analyzer allocates %v times per run, want 0", n)
	}
}
