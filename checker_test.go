package ccsim_test

import (
	"bufio"
	"os"
	"strings"
	"testing"

	"ccsim"
	"ccsim/internal/litmus"
)

// mutationConfig is the small deterministic machine the mutation-smoke
// tests run: one or two processors, BASIC under RC, a four-block SLC so a
// conflicting write forces a dirty writeback.
func mutationConfig(procs int) ccsim.Config {
	cfg := ccsim.DefaultConfig()
	cfg.Procs = procs
	cfg.SLCBlocks = 4
	cfg.Workload = "mut"
	cfg.MaxEvents = 1_000_000
	return cfg
}

// wbDropStreams builds the writeback-mutation program on one processor:
// write block 0, then touch a conflicting block so the dirty copy of
// block 0 is written back (with the injected mutation, the merge drops the
// written word), then read block 0 back and observe the stale word.
func wbDropStreams() []ccsim.Stream {
	return []ccsim.Stream{ccsim.Ops(
		ccsim.Op{Kind: ccsim.StatsOn},
		ccsim.Op{Kind: ccsim.Write, Addr: 0},
		ccsim.Op{Kind: ccsim.Read, Addr: 0},
		ccsim.Op{Kind: ccsim.Write, Addr: 128}, // same direct-mapped set as block 0
		ccsim.Op{Kind: ccsim.Read, Addr: 128},
		ccsim.Op{Kind: ccsim.Read, Addr: 0},
	)}
}

// TestLiveCheckerCatchesWritebackMutation injects the "wb-drop-word"
// protocol mutation — a writeback merge that silently loses its lowest
// written word — and pins that the live checker fails the run with a
// structured SimFault at the offending event, naming the message kind and
// the block.
func TestLiveCheckerCatchesWritebackMutation(t *testing.T) {
	cfg := mutationConfig(1)
	cfg.FaultInject = "wb-drop-word@mut/BASIC"
	cfg.Check = ccsim.NewChecker()
	_, err := ccsim.RunStreams(cfg, wbDropStreams())
	if err == nil {
		t.Fatalf("mutated run passed under the live checker")
	}
	f, ok := ccsim.AsFault(err)
	if !ok {
		t.Fatalf("error is not a SimFault: %v", err)
	}
	if f.Kind != ccsim.FaultInvariant {
		t.Errorf("fault kind = %q, want %q", f.Kind, ccsim.FaultInvariant)
	}
	if !f.HasBlock || f.Block != 0 {
		t.Errorf("fault names block %d (has=%v), want block 0", f.Block, f.HasBlock)
	}
	if f.MsgKind == "" {
		t.Errorf("fault does not name the protocol message being handled")
	}
	if f.Message == "" {
		t.Errorf("fault carries no violation message")
	}
}

// TestWritebackMutationInvisibleAtEndOfRun is the other half of the smoke
// test: the same mutated run without the live checker completes "cleanly"
// — the lost word leaves the directory, presence vectors and cache states
// all structurally consistent, so the end-of-run invariant sweep has
// nothing to object to. Only the transition-time value oracle sees the
// data loss.
func TestWritebackMutationInvisibleAtEndOfRun(t *testing.T) {
	cfg := mutationConfig(1)
	cfg.FaultInject = "wb-drop-word@mut/BASIC"
	if _, err := ccsim.RunStreams(cfg, wbDropStreams()); err != nil {
		t.Fatalf("expected the mutated run to pass the end-of-run checker, got: %v", err)
	}
}

func skipSharerStreams() []ccsim.Stream {
	return []ccsim.Stream{
		ccsim.Ops(ccsim.Op{Kind: ccsim.StatsOn}),
		ccsim.Ops(
			ccsim.Op{Kind: ccsim.StatsOn},
			ccsim.Op{Kind: ccsim.Read, Addr: 0},
		),
	}
}

// TestLiveCheckerCatchesSkipSharerMutation injects "skip-sharer" — the home
// omits a read requester from the presence vector — and pins that the live
// checker attributes the violation to the requester's install event, not
// to some later consequence.
func TestLiveCheckerCatchesSkipSharerMutation(t *testing.T) {
	cfg := mutationConfig(2)
	cfg.FaultInject = "skip-sharer@mut/BASIC"
	cfg.Check = ccsim.NewChecker()
	_, err := ccsim.RunStreams(cfg, skipSharerStreams())
	f, ok := ccsim.AsFault(err)
	if !ok {
		t.Fatalf("want a SimFault, got: %v", err)
	}
	if f.Kind != ccsim.FaultInvariant {
		t.Errorf("fault kind = %q, want %q", f.Kind, ccsim.FaultInvariant)
	}
	if !f.HasBlock || f.Block != 0 {
		t.Errorf("fault names block %d (has=%v), want block 0", f.Block, f.HasBlock)
	}
	if !strings.Contains(f.Component, "cache") {
		t.Errorf("fault component = %q, want the installing cache", f.Component)
	}
}

// TestSkipSharerEndOfRunLosesAttribution contrasts the live checker with
// the end-of-run sweep on the same injected bug: the stale presence vector
// does survive to quiescence, so the final check fails the run — but as a
// plain error with no event context, while the live checker (above) named
// the message and component at the moment the bad install happened.
func TestSkipSharerEndOfRunLosesAttribution(t *testing.T) {
	cfg := mutationConfig(2)
	cfg.FaultInject = "skip-sharer@mut/BASIC"
	_, err := ccsim.RunStreams(cfg, skipSharerStreams())
	if err == nil {
		t.Fatalf("end-of-run invariant sweep missed the stale presence vector")
	}
	if _, ok := ccsim.AsFault(err); ok {
		t.Fatalf("end-of-run failure unexpectedly carries event attribution: %v", err)
	}
	if !strings.Contains(err.Error(), "presence") {
		t.Errorf("end-of-run error %q does not mention the presence vector", err)
	}
}

// TestMutationRequiresMatchingIdentity pins the FaultInject gating: a
// mutation armed for a different workload/protocol identity must not fire.
func TestMutationRequiresMatchingIdentity(t *testing.T) {
	cfg := mutationConfig(1)
	cfg.FaultInject = "wb-drop-word@other/BASIC"
	cfg.Check = ccsim.NewChecker()
	if _, err := ccsim.RunStreams(cfg, wbDropStreams()); err != nil {
		t.Fatalf("mutation fired for a non-matching identity: %v", err)
	}
}

// TestLitmusCorpus runs the deterministic litmus corpus checked into
// testdata/litmus/corpus.txt: one line per (shape, protocol, consistency
// model, network) cell, every run under the live checker.
func TestLitmusCorpus(t *testing.T) {
	f, err := os.Open("testdata/litmus/corpus.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	shapes := litmus.Shapes()
	sc := bufio.NewScanner(f)
	line := 0
	ran := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 4 {
			t.Fatalf("corpus.txt:%d: want 4 fields, got %q", line, text)
		}
		mk, ok := shapes[fields[0]]
		if !ok {
			t.Fatalf("corpus.txt:%d: unknown shape %q", line, fields[0])
		}
		var ext ccsim.Ext
		if fields[1] != "BASIC" {
			for _, part := range strings.Split(fields[1], "+") {
				switch part {
				case "P":
					ext.P = true
				case "M":
					ext.M = true
				case "CW":
					ext.CW = true
				default:
					t.Fatalf("corpus.txt:%d: unknown extension %q", line, part)
				}
			}
		}
		cell := litmus.Cell{Ext: ext, SC: fields[2] == "sc"}
		if fields[3] == "mesh" {
			cell.Net = ccsim.Mesh
		}
		if err := litmus.Run(mk(), cell); err != nil {
			t.Errorf("corpus.txt:%d: %v", line, err)
		}
		ran++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if ran < 48 {
		t.Fatalf("corpus ran only %d cells, want >= 48", ran)
	}
}
