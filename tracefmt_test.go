package ccsim_test

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"ccsim"
)

func drainStream(t *testing.T, s ccsim.Stream) []ccsim.Op {
	t.Helper()
	var ops []ccsim.Op
	for {
		op, ok := s.Next()
		if !ok {
			return ops
		}
		ops = append(ops, op)
	}
}

func TestParseTraceBasic(t *testing.T) {
	in := `
# two processors handing a block around
proc 0
stats
w 0x1000
c 50
b 0
proc 1
stats
b 0
r 4096
`
	streams, err := ccsim.ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != 2 {
		t.Fatalf("%d streams", len(streams))
	}
	ops0 := drainStream(t, streams[0])
	if ops0[0].Kind != ccsim.StatsOn {
		t.Fatal("no leading StatsOn")
	}
	if ops0[1].Kind != ccsim.Write || ops0[1].Addr != 0x1000 {
		t.Fatalf("op 1 = %+v", ops0[1])
	}
	if ops0[2].Kind != ccsim.Busy || ops0[2].Cycles != 50 {
		t.Fatalf("op 2 = %+v", ops0[2])
	}
	ops1 := drainStream(t, streams[1])
	if ops1[2].Kind != ccsim.Read || ops1[2].Addr != 4096 {
		t.Fatalf("proc 1 read = %+v", ops1[2])
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := []struct {
		in, errHas string
	}{
		{"r 0x10\n", "before any proc"},
		{"proc\n", "proc needs an id"},
		{"proc -1\n", "bad processor id"},
		{"proc 0\nproc 0\n", "duplicate section"},
		{"proc 0\nr zz\n", "bad address"},
		{"proc 0\nc -5\n", "bad cycle count"},
		{"proc 0\nb x\n", "bad barrier id"},
		{"proc 0\nfoo 1\n", "unknown operation"},
		{"proc 0\nr 1 2\n", "want: <op> <arg>"},
		{"proc 1\nr 1\n", "missing section for processor 0"},
		{"# nothing\n", "no processor sections"},
	}
	for _, c := range cases {
		_, err := ccsim.ParseTrace(strings.NewReader(c.in))
		if err == nil || !strings.Contains(err.Error(), c.errHas) {
			t.Errorf("input %q: err = %v, want containing %q", c.in, err, c.errHas)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	procs := [][]ccsim.Op{
		{
			{Kind: ccsim.Write, Addr: 64},
			{Kind: ccsim.Busy, Cycles: 10},
			{Kind: ccsim.Acquire, Addr: 1 << 20},
			{Kind: ccsim.Release, Addr: 1 << 20},
			{Kind: ccsim.Barrier, Bar: 0},
		},
		{
			{Kind: ccsim.Barrier, Bar: 0},
			{Kind: ccsim.Read, Addr: 64},
		},
	}
	var buf bytes.Buffer
	if err := ccsim.WriteTrace(&buf, procs); err != nil {
		t.Fatal(err)
	}
	streams, err := ccsim.ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for p := range procs {
		got := drainStream(t, streams[p])
		if got[0].Kind != ccsim.StatsOn {
			t.Fatal("missing StatsOn")
		}
		got = got[1:]
		if len(got) != len(procs[p]) {
			t.Fatalf("proc %d: %d ops, want %d", p, len(got), len(procs[p]))
		}
		for i := range got {
			if got[i] != procs[p][i] {
				t.Fatalf("proc %d op %d: %+v != %+v", p, i, got[i], procs[p][i])
			}
		}
	}
}

// Property: any generated op mix survives a write/parse round trip.
func TestTraceRoundTripProperty(t *testing.T) {
	f := func(raw []struct {
		K uint8
		A uint32
		C uint16
	}) bool {
		ops := make([]ccsim.Op, 0, len(raw))
		for _, r := range raw {
			switch r.K % 6 {
			case 0:
				ops = append(ops, ccsim.Op{Kind: ccsim.Read, Addr: uint64(r.A)})
			case 1:
				ops = append(ops, ccsim.Op{Kind: ccsim.Write, Addr: uint64(r.A)})
			case 2:
				ops = append(ops, ccsim.Op{Kind: ccsim.Busy, Cycles: int64(r.C)})
			case 3:
				ops = append(ops, ccsim.Op{Kind: ccsim.Acquire, Addr: uint64(r.A)})
			case 4:
				ops = append(ops, ccsim.Op{Kind: ccsim.Release, Addr: uint64(r.A)})
			case 5:
				ops = append(ops, ccsim.Op{Kind: ccsim.Barrier, Bar: int(r.C)})
			}
		}
		var buf bytes.Buffer
		if err := ccsim.WriteTrace(&buf, [][]ccsim.Op{ops}); err != nil {
			return false
		}
		streams, err := ccsim.ParseTrace(&buf)
		if err != nil || len(streams) != 1 {
			return false
		}
		got := []ccsim.Op{}
		for {
			op, ok := streams[0].Next()
			if !ok {
				break
			}
			got = append(got, op)
		}
		if len(got) != len(ops)+1 || got[0].Kind != ccsim.StatsOn {
			return false
		}
		for i := range ops {
			if got[i+1] != ops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceEndToEndSimulation(t *testing.T) {
	// A handwritten trace of a producer and consumer must simulate
	// coherently.
	in := `
proc 0
w 0x0
b 0
proc 1
b 0
r 0x0
`
	streams, err := ccsim.ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	cfg := ccsim.DefaultConfig()
	cfg.Procs = 2
	r, err := ccsim.RunStreams(cfg, streams)
	if err != nil {
		t.Fatal(err)
	}
	if r.Reads != 1 || r.Writes != 1 || r.ColdMisses != 1 {
		t.Fatalf("result %+v", r)
	}
}
