package exp

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ccsim"
)

// ErrSchemaSkew rejects a worker whose build serializes Result differently
// from the coordinator's: its deliveries could not merge byte-identically,
// so it never receives a lease. Workers treat it as fatal (rebuild, then
// reconnect).
var ErrSchemaSkew = errors.New("worker result schema does not match the coordinator")

// ErrUncacheable rejects a job submission whose configuration carries side
// channels (trace, telemetry, checker, ...): those runs have observable
// effects beyond the Result and cannot execute remotely.
var ErrUncacheable = errors.New("configuration carries side channels and cannot run as a job")

// Job lifecycle states inside the queue. A job starts queued, is claimed
// by the coordinator's own slot pool (running) or leased to a worker
// (leased, returning to queued if the lease expires), and ends done —
// whether delivered remotely, finished locally, or abandoned by shutdown.
type jobState int

const (
	jobQueued jobState = iota
	jobLeased
	jobLocalRunning
	jobDone
)

// job is one distributed unit of work: a cacheable configuration plus the
// Pending every submitter of its fingerprint shares.
type job struct {
	id          uint64
	key         string
	cfg         ccsim.Config
	p           *Pending
	submittedAt time.Time

	// Guarded by the queue's mu.
	state     jobState
	leasable  bool   // false for runs the durable store already holds
	lease     string // current lease nonce, "" unless leased
	worker    string // leasing (or delivering) worker, "" for local runs
	expiry    time.Time
	abandoned bool
	// wake is non-nil while leased and closes when the lease ends for any
	// reason, so exec's claim loop re-evaluates instead of sleeping on a
	// dead lease.
	wake chan struct{}
}

// JobQueueOptions configures NewJobQueue.
type JobQueueOptions struct {
	// LeaseTTL is how long a worker's lease lasts without a heartbeat
	// before the job re-queues; <= 0 selects 30s.
	LeaseTTL time.Duration
}

// JobQueue bridges the Scheduler to remote workers: every cacheable
// submission is offered here as a leasable job, HTTP handlers (internal/
// ops) lease jobs to `experiments -worker` processes, and delivered
// results flow back through the scheduler's normal store/metrics/
// accounting path. The coordinator's own slot pool competes for the same
// jobs, so a sweep drains at full speed with zero workers attached and a
// crashed worker only costs one lease TTL.
//
// Create with NewJobQueue before submitting anything; safe for concurrent
// use. Lock order: the queue's mu never wraps the scheduler's (offer runs
// under the scheduler's mu, so every queue method that touches scheduler
// state releases mu first).
type JobQueue struct {
	s        *Scheduler
	leaseTTL time.Duration
	now      func() time.Time

	closed    chan struct{}
	closeOnce sync.Once

	mu        sync.Mutex
	nextID    uint64
	nextLease uint64
	jobs      map[uint64]*job
	byKey     map[string]*job
	order     []uint64 // job IDs in submission order, for listings
	ready     []*job   // leasable jobs waiting, FIFO
	workers   map[string]*workerState
	leased    int

	submitted       uint64
	apiSubmitted    uint64
	localClaimed    uint64
	remoteCompleted uint64
	remoteFailed    uint64
	leaseExpired    uint64
	rejected        uint64
}

// workerState is the coordinator's view of one worker process.
type workerState struct {
	leases   int
	jobs     uint64
	lastSeen time.Time
}

// JobStats snapshots the queue's counters — the ccsim_jobs_* and
// ccsim_worker_* series the ops plane exports.
type JobStats struct {
	Submitted       uint64 `json:"submitted"`        // jobs offered to the queue
	APISubmitted    uint64 `json:"api_submitted"`    // submissions arriving via POST /jobs
	Queued          int    `json:"queued"`           // leasable jobs waiting
	Leased          int    `json:"leased"`           // jobs currently out on a worker lease
	LocalClaimed    uint64 `json:"local_claimed"`    // jobs the coordinator executed itself
	RemoteCompleted uint64 `json:"remote_completed"` // clean results delivered by workers
	RemoteFailed    uint64 `json:"remote_failed"`    // worker deliveries carrying a fault
	LeaseExpired    uint64 `json:"lease_expired"`    // leases that timed out and re-queued
	Rejected        uint64 `json:"rejected"`         // schema-skewed leases + stale deliveries

	// Workers lists every worker that ever contacted the coordinator,
	// sorted by name.
	Workers []WorkerStatus `json:"workers,omitempty"`
}

// WorkerStatus is one worker's row in JobStats.
type WorkerStatus struct {
	Name                string  `json:"name"`
	Leases              int     `json:"leases"` // jobs it holds right now
	Jobs                uint64  `json:"jobs"`   // results it has delivered
	HeartbeatAgeSeconds float64 `json:"heartbeat_age_seconds"`
}

// JobView is one job as the HTTP API reports it (GET /jobs, GET
// /jobs/{id}). State is queued, leased, running, finishing, completed,
// failed or interrupted; Result and Error appear once the run resolves.
type JobView struct {
	ID       uint64        `json:"id"`
	Key      string        `json:"key"`
	RunID    string        `json:"run_id"`
	Workload string        `json:"workload"`
	Protocol string        `json:"protocol"`
	State    string        `json:"state"`
	Worker   string        `json:"worker,omitempty"`
	Result   *ccsim.Result `json:"result,omitempty"`
	Error    string        `json:"error,omitempty"`
}

// WireJob is one leased job on the wire: the canonical configuration plus
// the lease the worker must echo back. Key carries the schema-prefixed
// fingerprint, so a worker can verify it reproduces the coordinator's
// canonicalization before burning CPU on the run.
type WireJob struct {
	ID              uint64       `json:"id"`
	Key             string       `json:"key"`
	Lease           string       `json:"lease"`
	LeaseTTLSeconds float64      `json:"lease_ttl_seconds"`
	Config          ccsim.Config `json:"config"`
}

// LeaseRequest is a worker's poll for work. Schema must equal the
// worker's ResultSchemaVersion(); a mismatch is rejected with
// ErrSchemaSkew instead of a lease.
type LeaseRequest struct {
	Worker string `json:"worker"`
	Schema string `json:"schema"`
}

// HeartbeatRequest extends one lease.
type HeartbeatRequest struct {
	ID     uint64 `json:"id"`
	Lease  string `json:"lease"`
	Worker string `json:"worker"`
}

// WireResult is a worker's delivery for one leased job: the Result on
// success, or the fault kind and error text on failure. ElapsedMicros is
// the worker-side simulation time, folded into the coordinator's simulate
// lifecycle histogram.
type WireResult struct {
	ID            uint64        `json:"id"`
	Lease         string        `json:"lease"`
	Worker        string        `json:"worker"`
	Result        *ccsim.Result `json:"result,omitempty"`
	FaultKind     string        `json:"fault_kind,omitempty"`
	Error         string        `json:"error,omitempty"`
	ElapsedMicros int64         `json:"elapsed_micros"`
}

// NewJobQueue attaches a distributed job queue to s and returns it. Call
// before submitting anything; Close it when the sweep ends to stop the
// lease-expiry sweeper.
func NewJobQueue(s *Scheduler, opts JobQueueOptions) *JobQueue {
	ttl := opts.LeaseTTL
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	q := &JobQueue{
		s:        s,
		leaseTTL: ttl,
		now:      time.Now,
		closed:   make(chan struct{}),
		jobs:     make(map[uint64]*job),
		byKey:    make(map[string]*job),
		workers:  make(map[string]*workerState),
	}
	s.queue = q
	// Background lease sweeper: a crashed worker never heartbeats again,
	// so its jobs re-queue at most one tick after the TTL passes.
	tick := ttl / 2
	if tick > 500*time.Millisecond {
		tick = 500 * time.Millisecond
	}
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	go func() {
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-q.closed:
				return
			case <-t.C:
				q.expire()
			}
		}
	}()
	return q
}

// Close stops the lease-expiry sweeper. Idempotent.
func (q *JobQueue) Close() { q.closeOnce.Do(func() { close(q.closed) }) }

// LeaseTTL returns the queue's lease duration.
func (q *JobQueue) LeaseTTL() time.Duration { return q.leaseTTL }

// offer registers one cacheable submission as a job. Called by Submit with
// the scheduler's mu held, so it must never touch scheduler state.
func (q *JobQueue) offer(p *Pending, cfg ccsim.Config, key string, submittedAt time.Time, leasable bool) *job {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.nextID++
	j := &job{
		id: q.nextID, key: key, cfg: cfg, p: p,
		submittedAt: submittedAt, state: jobQueued, leasable: leasable,
	}
	q.jobs[j.id] = j
	q.byKey[key] = j
	q.order = append(q.order, j.id)
	q.submitted++
	if leasable {
		q.ready = append(q.ready, j)
	}
	return j
}

// Claim verdicts for the scheduler's exec loop.
type claimVerdict int

const (
	claimOK     claimVerdict = iota // claimed: run it locally
	claimLeased                     // a worker holds it: wait on the returned channel
	claimDone                       // resolved (or resolving) remotely: wait on p.done
)

// claimLocal attempts to take j for local execution. On claimLeased the
// returned channel closes when the lease ends, so the caller can re-claim.
func (q *JobQueue) claimLocal(j *job) (claimVerdict, <-chan struct{}) {
	q.mu.Lock()
	defer q.mu.Unlock()
	switch j.state {
	case jobQueued:
		j.state = jobLocalRunning
		q.removeReady(j)
		q.localClaimed++
		return claimOK, nil
	case jobLeased:
		return claimLeased, j.wake
	default:
		return claimDone, nil
	}
}

// finishLocal marks a locally-executed job done for listings.
func (q *JobQueue) finishLocal(j *job) {
	q.mu.Lock()
	j.state = jobDone
	q.mu.Unlock()
}

// abandon resolves j as interrupted-by-shutdown. It reports false when the
// job is already done — a remote delivery won the race and its accounting
// stands; the caller then just waits out p.done.
func (q *JobQueue) abandon(j *job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if j.state == jobDone {
		return false
	}
	if j.state == jobQueued {
		q.removeReady(j)
	}
	if j.state == jobLeased {
		q.endLeaseLocked(j)
	}
	j.state = jobDone
	j.abandoned = true
	return true
}

// endLeaseLocked clears j's lease bookkeeping (caller holds mu and has
// decided the next state).
func (q *JobQueue) endLeaseLocked(j *job) {
	if ws := q.workers[j.worker]; ws != nil && ws.leases > 0 {
		ws.leases--
	}
	q.leased--
	j.lease = ""
	if j.wake != nil {
		close(j.wake)
		j.wake = nil
	}
}

// removeReady deletes j from the leasable FIFO if present.
func (q *JobQueue) removeReady(j *job) {
	for i, r := range q.ready {
		if r == j {
			q.ready = append(q.ready[:i], q.ready[i+1:]...)
			return
		}
	}
}

// touchWorker updates (registering if needed) worker's liveness row.
// Caller holds mu.
func (q *JobQueue) touchWorker(name string) *workerState {
	ws := q.workers[name]
	if ws == nil {
		ws = &workerState{}
		q.workers[name] = ws
	}
	ws.lastSeen = q.now()
	return ws
}

// Lease hands the oldest leasable job to worker, or nil when none is
// waiting. schema must match the coordinator's ResultSchemaVersion();
// skewed workers get ErrSchemaSkew and no lease, ever — their results
// could not merge byte-identically.
func (q *JobQueue) Lease(worker, schema string) (*WireJob, error) {
	if schema != ResultSchemaVersion() {
		q.mu.Lock()
		q.rejected++
		q.touchWorker(worker)
		q.mu.Unlock()
		return nil, ErrSchemaSkew
	}
	q.mu.Lock()
	q.expireLocked(q.now())
	ws := q.touchWorker(worker)
	if len(q.ready) == 0 {
		q.mu.Unlock()
		return nil, nil
	}
	j := q.ready[0]
	q.ready = q.ready[1:]
	q.nextLease++
	j.state = jobLeased
	j.lease = fmt.Sprintf("lease-%d-%d", j.id, q.nextLease)
	j.worker = worker
	j.expiry = q.now().Add(q.leaseTTL)
	j.wake = make(chan struct{})
	ws.leases++
	q.leased++
	wj := &WireJob{
		ID: j.id, Key: j.key, Lease: j.lease,
		LeaseTTLSeconds: q.leaseTTL.Seconds(), Config: j.cfg,
	}
	submittedAt := j.submittedAt
	q.mu.Unlock()
	// The job left the queue for a worker: its wait ends here, mirroring
	// the local path's observation at slot acquisition.
	q.s.observe(phaseQueueWait, q.s.clock().Sub(submittedAt))
	return wj, nil
}

// Heartbeat extends one lease; false means the lease is stale (expired,
// reassigned, or the job resolved) and the worker should drop the job.
func (q *JobQueue) Heartbeat(id uint64, lease, worker string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.touchWorker(worker)
	j := q.jobs[id]
	if j == nil || j.state != jobLeased || j.lease != lease {
		return false
	}
	j.expiry = q.now().Add(q.leaseTTL)
	return true
}

// Complete accepts one worker delivery. False means the lease is stale —
// the job expired and was reassigned or resolved elsewhere — and the
// delivery is discarded; exactly one delivery per job ever reaches the
// scheduler.
func (q *JobQueue) Complete(wr WireResult) bool {
	q.mu.Lock()
	q.touchWorker(wr.Worker)
	j := q.jobs[wr.ID]
	if j == nil || j.state != jobLeased || j.lease != wr.Lease {
		q.rejected++
		q.mu.Unlock()
		return false
	}
	q.endLeaseLocked(j)
	j.state = jobDone
	j.worker = wr.Worker
	var err error
	switch {
	case wr.FaultKind != "":
		err = &ccsim.SimFault{Kind: wr.FaultKind, Message: wr.Error}
	case wr.Error != "":
		err = errors.New(wr.Error)
	case wr.Result == nil:
		err = fmt.Errorf("worker %s delivered neither a result nor an error", wr.Worker)
	}
	if err != nil {
		q.remoteFailed++
	} else {
		q.remoteCompleted++
		if ws := q.workers[wr.Worker]; ws != nil {
			ws.jobs++
		}
	}
	q.mu.Unlock()
	res := wr.Result
	if err != nil {
		res = nil
	}
	q.s.deliverRemote(j, res, err, time.Duration(wr.ElapsedMicros)*time.Microsecond)
	return true
}

// expire re-queues every job whose lease ran out.
func (q *JobQueue) expire() {
	q.mu.Lock()
	expired := q.expireLocked(q.now())
	q.mu.Unlock()
	if q.s.logger != nil {
		for _, e := range expired {
			q.s.logger.Warn("worker lease expired; job re-queued",
				"run_id", e.runID, "worker", e.worker, "job", e.id)
		}
	}
}

type expiredLease struct {
	id     uint64
	runID  string
	worker string
}

// expireLocked is expire's body under mu, returning what it re-queued so
// the caller can log outside the lock.
func (q *JobQueue) expireLocked(now time.Time) []expiredLease {
	var out []expiredLease
	for _, id := range q.order {
		j := q.jobs[id]
		if j.state != jobLeased || now.Before(j.expiry) {
			continue
		}
		out = append(out, expiredLease{id: j.id, runID: RunID(j.cfg), worker: j.worker})
		q.endLeaseLocked(j)
		q.leaseExpired++
		j.state = jobQueued
		j.worker = ""
		q.ready = append(q.ready, j)
	}
	return out
}

// SubmitJob enqueues one configuration arriving over the API (POST /jobs)
// and returns its job view — the existing one when the configuration was
// already submitted, resolved or not; the queue deduplicates by
// fingerprint exactly like the scheduler.
func (q *JobQueue) SubmitJob(cfg ccsim.Config) (JobView, error) {
	key, cacheable := Fingerprint(cfg)
	if !cacheable {
		return JobView{}, ErrUncacheable
	}
	q.mu.Lock()
	q.apiSubmitted++
	q.mu.Unlock()
	q.s.Submit(cfg)
	q.mu.Lock()
	j := q.byKey[key]
	q.mu.Unlock()
	if j == nil {
		return JobView{}, fmt.Errorf("job for %s was not registered", key)
	}
	return q.view(j), nil
}

// Job returns one job's view by ID.
func (q *JobQueue) Job(id uint64) (JobView, bool) {
	q.mu.Lock()
	j := q.jobs[id]
	q.mu.Unlock()
	if j == nil {
		return JobView{}, false
	}
	return q.view(j), true
}

// Jobs lists every job in submission order.
func (q *JobQueue) Jobs() []JobView {
	q.mu.Lock()
	js := make([]*job, 0, len(q.order))
	for _, id := range q.order {
		js = append(js, q.jobs[id])
	}
	q.mu.Unlock()
	out := make([]JobView, 0, len(js))
	for _, j := range js {
		out = append(out, q.view(j))
	}
	return out
}

// view renders one job. Result and error are read only after p.done
// closes, so the view never races a delivery.
func (q *JobQueue) view(j *job) JobView {
	v := JobView{
		ID: j.id, Key: j.key, RunID: RunID(j.cfg),
		Workload: j.cfg.Workload, Protocol: j.cfg.ProtocolName(),
	}
	select {
	case <-j.p.done:
		q.mu.Lock()
		v.Worker = j.worker
		q.mu.Unlock()
		switch {
		case j.p.err == nil:
			v.State = "completed"
			v.Result = j.p.res
		case errors.Is(j.p.err, ErrInterrupted):
			v.State = "interrupted"
			v.Error = j.p.err.Error()
		default:
			v.State = "failed"
			v.Error = j.p.err.Error()
			v.Result = j.p.res
		}
		return v
	default:
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	switch j.state {
	case jobQueued:
		v.State = "queued"
	case jobLeased:
		v.State = "leased"
		v.Worker = j.worker
	case jobLocalRunning:
		v.State = "running"
	default:
		// Resolved in the queue but the delivery's accounting is still in
		// flight; the next poll will see it completed.
		v.State = "finishing"
	}
	return v
}

// Stats snapshots the queue's counters and worker registry.
func (q *JobQueue) Stats() JobStats {
	now := q.now()
	q.mu.Lock()
	defer q.mu.Unlock()
	st := JobStats{
		Submitted: q.submitted, APISubmitted: q.apiSubmitted,
		Queued: len(q.ready), Leased: q.leased,
		LocalClaimed: q.localClaimed, RemoteCompleted: q.remoteCompleted,
		RemoteFailed: q.remoteFailed, LeaseExpired: q.leaseExpired,
		Rejected: q.rejected,
	}
	names := make([]string, 0, len(q.workers))
	for name := range q.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ws := q.workers[name]
		st.Workers = append(st.Workers, WorkerStatus{
			Name: name, Leases: ws.leases, Jobs: ws.jobs,
			HeartbeatAgeSeconds: now.Sub(ws.lastSeen).Seconds(),
		})
	}
	return st
}
