package exp

import (
	"bytes"
	"log/slog"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"ccsim"
)

// tickClock is a deterministic clock: every read advances it by step, so
// any phase measured between two reads reports exactly one step.
type tickClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func (c *tickClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(c.step)
	return c.now
}

// TestSchedulerLifecycleStats runs a stubbed sweep under an injected clock
// and checks the per-phase histograms: every executed run contributes one
// queue_wait and one simulate sample, store_put stays empty without a
// store, and the engine queue-internals aggregate sums the per-run
// snapshots.
func TestSchedulerLifecycleStats(t *testing.T) {
	withRunSim(t, func(cfg ccsim.Config) (*ccsim.Result, error) {
		r := &ccsim.Result{Workload: cfg.Workload, Protocol: cfg.ProtocolName(), ExecTime: 1}
		r.Queue.Dispatched = 100
		r.Queue.WheelScheduled = 90
		r.Queue.Migrations = 10
		r.Queue.Cohorts = 40
		r.Queue.WheelHighWater = 7
		r.Queue.CohortSizeLog2[1] = 40
		return r, nil
	})
	s := NewScheduler(2, "")
	clk := &tickClock{now: time.Unix(0, 0), step: time.Millisecond}
	s.SetClock(clk.Now)

	const runs = 3
	var ps []*Pending
	for i := 0; i < runs; i++ {
		cfg := tiny().config("mp3d")
		cfg.Procs = 4 + i // distinct fingerprints: no dedup
		ps = append(ps, s.Submit(cfg))
	}
	for _, p := range ps {
		if _, err := p.Wait(); err != nil {
			t.Fatal(err)
		}
	}

	st := s.Stats()
	if len(st.Lifecycle) != numPhases {
		t.Fatalf("Lifecycle has %d phases, want %d", len(st.Lifecycle), numPhases)
	}
	byPhase := map[string]DurationStats{}
	for _, d := range st.Lifecycle {
		byPhase[d.Phase] = d
	}
	for _, phase := range []string{"queue_wait", "simulate"} {
		d := byPhase[phase]
		if d.Count != runs {
			t.Errorf("%s count = %d, want %d", phase, d.Count, runs)
		}
		if d.MaxSeconds <= 0 || d.SumSeconds <= 0 {
			t.Errorf("%s has zero durations under the ticking clock: %+v", phase, d)
		}
	}
	for _, phase := range []string{"retry_wait", "store_put", "metrics_write"} {
		if d := byPhase[phase]; d.Count != 0 {
			t.Errorf("%s count = %d, want 0 (no retries, store or metrics dir)", phase, d.Count)
		}
	}
	if st.Engine == nil {
		t.Fatal("Engine aggregate nil after completed runs")
	}
	if st.Engine.Dispatched != 100*runs || st.Engine.Migrations != 10*runs {
		t.Errorf("Engine aggregate = %+v, want %d dispatched / %d migrations",
			st.Engine, 100*runs, 10*runs)
	}
	if st.Engine.WheelHighWater != 7 {
		t.Errorf("Engine.WheelHighWater = %d, want 7 (max, not sum)", st.Engine.WheelHighWater)
	}
	if st.Engine.CohortSizeLog2[1] != 40*runs {
		t.Errorf("Engine histogram bucket 1 = %d, want %d", st.Engine.CohortSizeLog2[1], 40*runs)
	}
}

// TestRetryBackoffPhaseAccounting pins the retry-phase bugfix with the
// injected clock: a run that fails transiently twice before succeeding
// must contribute one simulate sample PER ATTEMPT — each of exactly one
// clock step, proving backoff sleep is not folded in — and one retry_wait
// sample per backoff sleep. Before the fix, exec timed the whole
// runWithRetry call as a single simulate sample, so the simulate histogram
// inflated with deliberate sleep time.
func TestRetryBackoffPhaseAccounting(t *testing.T) {
	calls := 0
	withRunSim(t, func(cfg ccsim.Config) (*ccsim.Result, error) {
		calls++
		if calls <= 2 {
			return nil, &ccsim.SimFault{Kind: ccsim.FaultMaxEvents}
		}
		return &ccsim.Result{Workload: cfg.Workload, Protocol: cfg.ProtocolName(), ExecTime: 1}, nil
	})
	s := NewScheduler(1, "")
	clk := &tickClock{now: time.Unix(0, 0), step: time.Millisecond}
	s.SetClock(clk.Now)
	// A real (tiny) backoff: the tick clock advances one step per read, so
	// however long the sleep really lasts, each observed phase is exactly
	// one step and the assertion is deterministic.
	s.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond})
	cfg := tiny().config("mp3d")
	cfg.Procs = 4
	if _, err := s.Submit(cfg).Wait(); err != nil {
		t.Fatal(err)
	}
	byPhase := map[string]DurationStats{}
	for _, d := range s.Stats().Lifecycle {
		byPhase[d.Phase] = d
	}
	step := time.Millisecond.Seconds()
	sim := byPhase["simulate"]
	if sim.Count != 3 {
		t.Fatalf("simulate count = %d, want 3 (one sample per attempt)", sim.Count)
	}
	if sim.MaxSeconds != step {
		t.Errorf("simulate max = %gs, want exactly one clock step (%gs): backoff leaked into the simulate phase",
			sim.MaxSeconds, step)
	}
	rw := byPhase["retry_wait"]
	if rw.Count != 2 {
		t.Fatalf("retry_wait count = %d, want 2 (one per backoff sleep)", rw.Count)
	}
	if rw.MaxSeconds != step || rw.SumSeconds != 2*step {
		t.Errorf("retry_wait = %+v, want two one-step samples", rw)
	}
}

// TestInterruptDuringRetryBackoffClassifiedCanceled pins the second retry
// bugfix: a run interrupted while sleeping between retry attempts must
// resolve as a canceled SimFault and count as interrupted — not surface
// the previous attempt's stale transient fault as if the run had
// legitimately failed with it.
func TestInterruptDuringRetryBackoffClassifiedCanceled(t *testing.T) {
	withRunSim(t, func(cfg ccsim.Config) (*ccsim.Result, error) {
		return nil, &ccsim.SimFault{Kind: ccsim.FaultDeadline}
	})
	s := NewScheduler(1, "")
	// A backoff far longer than the test: the run parks in the retry sleep
	// until Interrupt fires.
	s.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, Backoff: time.Hour})
	cfg := tiny().config("mp3d")
	cfg.Procs = 4
	p := s.Submit(cfg)
	// Wait until the first attempt failed and the run entered backoff.
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Retries == 0 {
		if time.Now().After(deadline) {
			t.Fatal("run never reached its first retry")
		}
		time.Sleep(time.Millisecond)
	}
	s.Interrupt()
	_, err := p.Wait()
	f, ok := ccsim.AsFault(err)
	if !ok || f.Kind != ccsim.FaultCanceled {
		t.Fatalf("err = %v, want a canceled SimFault, not the stale transient fault", err)
	}
	if !strings.Contains(f.Message, ccsim.FaultDeadline) {
		t.Errorf("canceled fault does not name the last transient fault: %q", f.Message)
	}
	st := s.Stats()
	if st.Interrupted != 1 {
		t.Errorf("Interrupted = %d, want 1 (mid-retry cancellation counts)", st.Interrupted)
	}
	failed := s.Failed()
	if len(failed) != 1 {
		t.Fatalf("ledger = %+v, want the one canceled run", failed)
	}
	if lf, ok := ccsim.AsFault(failed[0].Err); !ok || lf.Kind != ccsim.FaultCanceled {
		t.Errorf("ledger entry = %v, want kind canceled", failed[0].Err)
	}
}

// TestRunID pins the identifier's shape and its independence from side
// channels: workload/protocol/8-hex-digit fingerprint prefix, identical
// whether or not the config carries a probe or checker.
func TestRunID(t *testing.T) {
	cfg := tiny().config("mp3d")
	cfg.Procs = 4
	id := RunID(cfg)
	if !regexp.MustCompile(`^mp3d/[A-Z+]+(-SC)?/[0-9a-f]{8}$`).MatchString(id) {
		t.Fatalf("RunID = %q, want workload/PROTOCOL/8-hex", id)
	}
	withProbe := cfg
	withProbe.Progress = &ccsim.Progress{}
	withProbe.Check = ccsim.NewChecker()
	if got := RunID(withProbe); got != id {
		t.Errorf("RunID changed with side channels attached: %q vs %q", got, id)
	}
	other := cfg
	other.Procs = 8
	if got := RunID(other); got == id {
		t.Errorf("RunID identical for distinct configurations: %q", got)
	}
}

// TestSchedulerRetryLogsRunID checks the satellite's logging contract: a
// retried run emits a warn record carrying the run_id field.
func TestSchedulerRetryLogsRunID(t *testing.T) {
	calls := 0
	withRunSim(t, func(cfg ccsim.Config) (*ccsim.Result, error) {
		calls++
		if calls == 1 {
			return nil, &ccsim.SimFault{Kind: ccsim.FaultMaxEvents}
		}
		return &ccsim.Result{Workload: cfg.Workload, Protocol: cfg.ProtocolName()}, nil
	})
	var buf bytes.Buffer
	s := NewScheduler(1, "")
	s.SetLogger(slog.New(slog.NewTextHandler(&buf, nil)))
	s.SetRetryPolicy(RetryPolicy{MaxAttempts: 2})
	cfg := tiny().config("mp3d")
	cfg.Procs = 4
	if _, err := s.Submit(cfg).Wait(); err != nil {
		t.Fatal(err)
	}
	want := RunID(cfg)
	log := buf.String()
	if !strings.Contains(log, "run_id="+want) {
		t.Fatalf("retry log missing run_id=%s:\n%s", want, log)
	}
	if !strings.Contains(log, "retrying run") {
		t.Fatalf("retry log missing message:\n%s", log)
	}
}
