package exp

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"ccsim"
	"ccsim/internal/store"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestJobQueueRemoteRoundTrip walks the whole worker wire protocol inline:
// with the coordinator's only slot pinned by a running job, a second job is
// leased, heartbeated and delivered by a simulated worker, resolves every
// waiter with the delivered Result, and a stale re-delivery is rejected.
func TestJobQueueRemoteRoundTrip(t *testing.T) {
	release := make(chan struct{})
	withRunSim(t, func(cfg ccsim.Config) (*ccsim.Result, error) {
		<-release
		return &ccsim.Result{Workload: cfg.Workload, Protocol: cfg.ProtocolName(), ExecTime: 1}, nil
	})
	s := NewScheduler(1, "")
	q := NewJobQueue(s, JobQueueOptions{LeaseTTL: time.Minute})
	defer q.Close()

	cfgA := tiny().config("mp3d")
	cfgA.MaxEvents = 1_000_001
	cfgB := tiny().config("mp3d")
	cfgB.MaxEvents = 1_000_002
	keyB, _ := Fingerprint(cfgB)

	s.Submit(cfgA)
	waitUntil(t, "job A claimed locally", func() bool { return q.Stats().LocalClaimed == 1 })
	pb := s.Submit(cfgB)

	wj, err := q.Lease("w1", ResultSchemaVersion())
	if err != nil || wj == nil {
		t.Fatalf("Lease = %v, %v; want job B", wj, err)
	}
	if wj.Key != keyB {
		t.Fatalf("leased key = %q, want job B's %q", wj.Key, keyB)
	}
	if wj.Config.MaxEvents != cfgB.MaxEvents || wj.Config.Workload != "mp3d" {
		t.Fatalf("leased config mangled: %+v", wj.Config)
	}
	if got, _ := Fingerprint(wj.Config); got != wj.Key {
		t.Fatalf("wire config re-fingerprints to %q, want %q", got, wj.Key)
	}
	if !q.Heartbeat(wj.ID, wj.Lease, "w1") {
		t.Fatal("heartbeat on a live lease rejected")
	}
	if q.Heartbeat(wj.ID, "bogus-lease", "w1") {
		t.Fatal("heartbeat with a wrong lease accepted")
	}
	if v, ok := q.Job(wj.ID); !ok || v.State != "leased" || v.Worker != "w1" {
		t.Fatalf("leased job view = %+v", v)
	}

	delivered := &ccsim.Result{Workload: "mp3d", Protocol: "BASIC", ExecTime: 42}
	if !q.Complete(WireResult{ID: wj.ID, Lease: wj.Lease, Worker: "w1",
		Result: delivered, ElapsedMicros: 1500}) {
		t.Fatal("delivery on a live lease rejected")
	}
	rb, err := pb.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rb.ExecTime != 42 {
		t.Fatalf("remote result lost: ExecTime = %v, want 42", rb.ExecTime)
	}
	if q.Complete(WireResult{ID: wj.ID, Lease: wj.Lease, Worker: "w1", Result: delivered}) {
		t.Fatal("second delivery of a resolved job accepted")
	}
	if v, ok := q.Job(wj.ID); !ok || v.State != "completed" || v.Result == nil || v.Worker != "w1" {
		t.Fatalf("delivered job view = %+v", v)
	}

	close(release)
	waitUntil(t, "job A completing locally", func() bool { return s.Stats().Completed == 2 })
	st := q.Stats()
	if st.Submitted != 2 || st.LocalClaimed != 1 || st.RemoteCompleted != 1 || st.Rejected != 1 {
		t.Fatalf("queue stats = %+v", st)
	}
	if st.Leased != 0 || st.Queued != 0 {
		t.Fatalf("drained queue still shows work: %+v", st)
	}
	if len(st.Workers) != 1 || st.Workers[0].Name != "w1" || st.Workers[0].Jobs != 1 {
		t.Fatalf("worker registry = %+v", st.Workers)
	}
	if views := q.Jobs(); len(views) != 2 || views[0].State != "completed" || views[1].State != "completed" {
		t.Fatalf("job listing = %+v", views)
	}
	ss := s.Stats()
	if ss.Completed != 2 || ss.Failed != 0 || ss.Queued != 0 {
		t.Fatalf("scheduler stats after mixed local/remote sweep: %+v", ss)
	}
	// The remote run's engine snapshot and simulate phase merged like a
	// local one's would.
	byPhase := map[string]DurationStats{}
	for _, d := range ss.Lifecycle {
		byPhase[d.Phase] = d
	}
	if byPhase["simulate"].Count != 2 {
		t.Fatalf("simulate samples = %d, want 2 (one local, one remote)", byPhase["simulate"].Count)
	}
}

// TestJobQueueLeaseExpiryRequeues proves a crashed worker cannot lose a
// run: a leased job whose worker never heartbeats re-queues after the TTL
// and the coordinator finishes it locally; the dead worker's late delivery
// and heartbeat are rejected.
func TestJobQueueLeaseExpiryRequeues(t *testing.T) {
	block := make(chan struct{})
	var calls atomic.Int32
	withRunSim(t, func(cfg ccsim.Config) (*ccsim.Result, error) {
		if calls.Add(1) == 1 {
			<-block
		}
		return &ccsim.Result{Workload: cfg.Workload, Protocol: cfg.ProtocolName(), ExecTime: 7}, nil
	})
	s := NewScheduler(1, "")
	q := NewJobQueue(s, JobQueueOptions{LeaseTTL: 40 * time.Millisecond})
	defer q.Close()

	blocker := tiny().config("mp3d")
	blocker.MaxEvents = 2_000_001
	pa := s.Submit(blocker)
	waitUntil(t, "blocker claiming the slot", func() bool { return q.Stats().LocalClaimed == 1 })

	cfgB := tiny().config("mp3d")
	cfgB.MaxEvents = 2_000_002
	pb := s.Submit(cfgB)
	wj, err := q.Lease("crashy", ResultSchemaVersion())
	if err != nil || wj == nil {
		t.Fatalf("Lease = %v, %v", wj, err)
	}
	// The worker "crashes": no heartbeat, no delivery. The sweeper must
	// expire the lease and re-queue the job.
	waitUntil(t, "lease expiry", func() bool { return q.Stats().LeaseExpired >= 1 })
	if q.Heartbeat(wj.ID, wj.Lease, "crashy") {
		t.Fatal("heartbeat on an expired lease accepted")
	}
	if q.Complete(WireResult{ID: wj.ID, Lease: wj.Lease, Worker: "crashy",
		Result: &ccsim.Result{ExecTime: 666}}) {
		t.Fatal("delivery on an expired lease accepted")
	}
	// Free the slot: the re-queued job must now run locally, losing nothing.
	close(block)
	ra, err := pa.Wait()
	if err != nil || ra.ExecTime != 7 {
		t.Fatalf("blocker result = %v, %v", ra, err)
	}
	rb, err := pb.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rb.ExecTime != 7 {
		t.Fatalf("re-queued run's result = %+v, want the local simulation's (the dead worker's 666 must not land)", rb)
	}
	st := q.Stats()
	if st.LocalClaimed != 2 || st.RemoteCompleted != 0 || st.LeaseExpired < 1 || st.Rejected < 1 {
		t.Fatalf("queue stats = %+v", st)
	}
	if ss := s.Stats(); ss.Completed != 2 || ss.Failed != 0 {
		t.Fatalf("scheduler stats = %+v", ss)
	}
}

// TestJobQueueSchemaSkewRejected: a worker built with a different Result
// schema never gets a lease.
func TestJobQueueSchemaSkewRejected(t *testing.T) {
	withRunSim(t, func(cfg ccsim.Config) (*ccsim.Result, error) {
		return &ccsim.Result{ExecTime: 1}, nil
	})
	s := NewScheduler(1, "")
	q := NewJobQueue(s, JobQueueOptions{})
	defer q.Close()
	wj, err := q.Lease("old-build", "deadbeef0000")
	if !errors.Is(err, ErrSchemaSkew) || wj != nil {
		t.Fatalf("Lease = %v, %v; want ErrSchemaSkew", wj, err)
	}
	st := q.Stats()
	if st.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", st.Rejected)
	}
	if len(st.Workers) != 1 || st.Workers[0].Name != "old-build" {
		t.Fatalf("skewed worker missing from registry: %+v", st.Workers)
	}
}

// TestJobQueueStoreContainedNotLeasable: a run the durable store already
// holds resolves from disk and is never offered to workers — resume sweeps
// must not ship already-completed work over the wire.
func TestJobQueueStoreContainedNotLeasable(t *testing.T) {
	withRunSim(t, func(cfg ccsim.Config) (*ccsim.Result, error) {
		return &ccsim.Result{Workload: cfg.Workload, Protocol: cfg.ProtocolName(), ExecTime: 3}, nil
	})
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := tiny().config("mp3d")
	cfg.MaxEvents = 3_000_001
	warm := NewScheduler(1, "")
	warm.UseStore(st, false)
	if _, err := warm.Submit(cfg).Wait(); err != nil {
		t.Fatal(err)
	}

	s := NewScheduler(1, "")
	s.UseStore(st, true)
	q := NewJobQueue(s, JobQueueOptions{})
	defer q.Close()
	p := s.Submit(cfg)
	if wj, err := q.Lease("w1", ResultSchemaVersion()); err != nil || wj != nil {
		t.Fatalf("Lease = %v, %v; want nothing (run is store-contained)", wj, err)
	}
	r, err := p.Wait()
	if err != nil || r.ExecTime != 3 {
		t.Fatalf("store-served run = %v, %v", r, err)
	}
	qs := q.Stats()
	if qs.Submitted != 1 || qs.Queued != 0 || qs.LocalClaimed != 1 {
		t.Fatalf("queue stats = %+v", qs)
	}
	if ss := s.Stats(); ss.Store == nil || ss.Store.Hits != 1 {
		t.Fatalf("store hit lost: %+v", ss.Store)
	}
}

// TestJobQueueSubmitAPI: POST /jobs' backing call deduplicates by
// fingerprint, rejects side-channel configs, and exposes results through
// the job view once resolved.
func TestJobQueueSubmitAPI(t *testing.T) {
	withRunSim(t, func(cfg ccsim.Config) (*ccsim.Result, error) {
		return &ccsim.Result{Workload: cfg.Workload, Protocol: cfg.ProtocolName(), ExecTime: 9}, nil
	})
	s := NewScheduler(2, "")
	q := NewJobQueue(s, JobQueueOptions{})
	defer q.Close()
	cfg := tiny().config("mp3d")
	cfg.MaxEvents = 4_000_001
	v1, err := q.SubmitJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := q.SubmitJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v1.ID != v2.ID {
		t.Fatalf("duplicate submission got a new job: %d vs %d", v1.ID, v2.ID)
	}
	waitUntil(t, "API job resolving", func() bool {
		v, ok := q.Job(v1.ID)
		return ok && v.State == "completed"
	})
	v, _ := q.Job(v1.ID)
	if v.Result == nil || v.Result.ExecTime != 9 {
		t.Fatalf("resolved view = %+v", v)
	}
	if v.RunID == "" || v.Workload != "mp3d" {
		t.Fatalf("view identity = %+v", v)
	}
	if qs := q.Stats(); qs.APISubmitted != 2 || qs.Submitted != 1 {
		t.Fatalf("queue stats = %+v", qs)
	}
	bad := cfg
	bad.Progress = &ccsim.Progress{}
	if _, err := q.SubmitJob(bad); !errors.Is(err, ErrUncacheable) {
		t.Fatalf("side-channel submission error = %v, want ErrUncacheable", err)
	}
	if _, ok := q.Job(999); ok {
		t.Fatal("unknown job ID resolved")
	}
}

// TestJobQueueInterruptWithLeasedJob: graceful shutdown abandons a job a
// worker holds — the sweep does not hang waiting for the worker, and the
// worker's eventual delivery is rejected.
func TestJobQueueInterruptWithLeasedJob(t *testing.T) {
	block := make(chan struct{})
	var calls atomic.Int32
	withRunSim(t, func(cfg ccsim.Config) (*ccsim.Result, error) {
		if calls.Add(1) == 1 {
			<-block
		}
		return &ccsim.Result{Workload: cfg.Workload, Protocol: cfg.ProtocolName(), ExecTime: 5}, nil
	})
	s := NewScheduler(1, "")
	q := NewJobQueue(s, JobQueueOptions{LeaseTTL: time.Minute})
	defer q.Close()
	blocker := tiny().config("mp3d")
	blocker.MaxEvents = 5_000_001
	pa := s.Submit(blocker)
	waitUntil(t, "blocker claiming the slot", func() bool { return q.Stats().LocalClaimed == 1 })
	cfgB := tiny().config("mp3d")
	cfgB.MaxEvents = 5_000_002
	pb := s.Submit(cfgB)
	wj, err := q.Lease("slowpoke", ResultSchemaVersion())
	if err != nil || wj == nil {
		t.Fatalf("Lease = %v, %v", wj, err)
	}
	s.Interrupt()
	if _, err := pb.Wait(); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("leased job's error after interrupt = %v, want ErrInterrupted", err)
	}
	if q.Complete(WireResult{ID: wj.ID, Lease: wj.Lease, Worker: "slowpoke",
		Result: &ccsim.Result{ExecTime: 5}}) {
		t.Fatal("delivery for an abandoned job accepted")
	}
	if v, ok := q.Job(wj.ID); !ok || v.State != "interrupted" {
		t.Fatalf("abandoned job view = %+v", v)
	}
	close(block)
	if _, err := pa.Wait(); err != nil {
		t.Fatal(err)
	}
	ss := s.Stats()
	if ss.Interrupted != 1 || ss.Failed != 1 || ss.Completed != 1 || ss.Queued != 0 {
		t.Fatalf("scheduler stats = %+v", ss)
	}
}
