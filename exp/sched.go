package exp

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"

	"ccsim"
)

// runSim executes one simulation. A package variable so tests can
// substitute a run that panics or fails without needing a real protocol
// bug; production code never reassigns it.
var runSim = ccsim.Run

// Scheduler fans independent simulations out across a bounded pool of
// goroutines and memoizes completed runs by configuration fingerprint, so
// a sweep that names the same configuration many times — the BASIC
// baseline of every figure, the default grid shared by both sensitivity
// studies — simulates it exactly once. Each simulation stays
// single-threaded and deterministic; only the scheduling of whole runs is
// concurrent, so results are bit-identical to a sequential harness at any
// worker count.
//
// The zero value is not usable; call NewScheduler. A Scheduler is safe for
// concurrent use and is normally shared across every experiment of one
// invocation (cmd/experiments builds one for -exp all).
type Scheduler struct {
	jobs       int
	metricsDir string

	// slots bounds the number of simulations running at once.
	slots chan struct{}

	mu        sync.Mutex
	runs      map[string]*Pending
	unique    uint64
	failed    []FailedRun
	submitted uint64
	dedupHits uint64
	queued    int
	completed uint64
	nextID    uint64
	live      map[uint64]LiveRun

	// droppedSpans accumulates Result.DroppedSpans over completed runs so
	// sweeps can alert on telemetry overflow from /metrics.
	droppedSpans uint64

	// sharing aggregates per-run analyzer totals across the sweep
	// (Options.Sharing runs; see SharingReport).
	sharing ccsim.SharingTotals
}

// SchedStats is one consistent snapshot of the scheduler's counters — the
// gauges the ops plane exports at /metrics.
type SchedStats struct {
	Submitted uint64 // Submit calls, including cache hits
	Unique    uint64 // distinct cacheable configurations started
	DedupHits uint64 // Submit calls served by the run cache
	Queued    int    // runs waiting for a worker slot
	Running   int    // runs executing right now
	Completed uint64 // runs finished without error
	Failed    uint64 // runs finished with an error (see Failed())

	// DroppedSpans sums Result.DroppedSpans over completed runs: nonzero
	// means telemetry span buffers overflowed somewhere in the sweep and
	// exported timelines undercount transactions.
	DroppedSpans uint64
}

// LiveRun describes one currently-executing simulation. Progress is the
// run's lock-free probe: snapshot it at any time for the run's position
// without disturbing the simulation.
type LiveRun struct {
	ID       uint64 // scheduler-assigned, ascending in start order
	Workload string
	Protocol string
	Progress *ccsim.Progress
}

// FailedRun records one run that completed with an error — a contained
// panic (a *ccsim.SimFault), a watchdog abort, or a metrics-write failure.
// The sweep continues past it; cmd/experiments dumps the ledger at the end
// and exits non-zero.
type FailedRun struct {
	Cfg ccsim.Config
	Err error
}

// Pending is a handle to a submitted run; Wait blocks until it completes.
// The same Pending is returned to every submitter of one fingerprint.
type Pending struct {
	done chan struct{}
	res  *ccsim.Result
	err  error
}

// NewScheduler returns a scheduler running at most jobs simulations
// concurrently (jobs <= 0 selects GOMAXPROCS). When metricsDir is
// non-empty, every unique run writes its Result there as JSON, exactly
// once, named by writeMetrics' encoding.
func NewScheduler(jobs int, metricsDir string) *Scheduler {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	return &Scheduler{
		jobs:       jobs,
		metricsDir: metricsDir,
		slots:      make(chan struct{}, jobs),
		runs:       make(map[string]*Pending),
		live:       make(map[uint64]LiveRun),
	}
}

// Stats snapshots the scheduler's counters.
func (s *Scheduler) Stats() SchedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SchedStats{
		Submitted:    s.submitted,
		Unique:       s.unique,
		DedupHits:    s.dedupHits,
		Queued:       s.queued,
		Running:      len(s.live),
		Completed:    s.completed,
		Failed:       uint64(len(s.failed)),
		DroppedSpans: s.droppedSpans,
	}
}

// LiveRuns snapshots the registry of currently-executing runs, oldest
// first. Each entry's Progress probe stays valid after the run completes;
// its Done flag flips when the run leaves the registry.
func (s *Scheduler) LiveRuns() []LiveRun {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]LiveRun, 0, len(s.live))
	for _, lr := range s.live {
		out = append(out, lr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SharingReport renders the sweep-wide sharing-pattern aggregate: every
// completed analyzed run's (Options.Sharing) per-class totals merged. Nil
// until at least one analyzed run completes.
func (s *Scheduler) SharingReport() *ccsim.SharingReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sharing.Report()
}

// Jobs returns the worker-pool size.
func (s *Scheduler) Jobs() int { return s.jobs }

// Unique returns how many distinct simulations have been submitted so far;
// the difference against the number of Submit calls is the work the run
// cache saved.
func (s *Scheduler) Unique() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.unique
}

// Submit queues cfg for simulation and returns its handle immediately. A
// configuration already submitted — by this experiment or any other
// sharing the scheduler — returns the existing handle without a new run.
// Configurations carrying side channels (TraceWriter, Telemetry) bypass
// the cache: their runs are observable and must execute per submission.
func (s *Scheduler) Submit(cfg ccsim.Config) *Pending {
	key, cacheable := Fingerprint(cfg)
	p := &Pending{done: make(chan struct{})}
	if !cacheable {
		s.mu.Lock()
		s.submitted++
		s.queued++
		s.mu.Unlock()
		go s.exec(p, cfg)
		return p
	}
	s.mu.Lock()
	s.submitted++
	if prev, ok := s.runs[key]; ok {
		s.dedupHits++
		s.mu.Unlock()
		return prev
	}
	s.runs[key] = p
	s.unique++
	s.queued++
	s.mu.Unlock()
	go s.exec(p, cfg)
	return p
}

// Failed returns every run that completed with an error, in completion
// order. The order depends on worker scheduling; callers wanting
// deterministic output sort by configuration.
func (s *Scheduler) Failed() []FailedRun {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]FailedRun(nil), s.failed...)
}

func (s *Scheduler) exec(p *Pending, cfg ccsim.Config) {
	s.slots <- struct{}{}
	defer func() { <-s.slots }()
	// Register in the live table once a worker slot is held: the run is
	// about to execute, so its probe starts advancing. A caller-supplied
	// probe is reused (the submitter is watching); otherwise the scheduler
	// attaches its own so the ops plane sees every run.
	prog := cfg.Progress
	if prog == nil {
		prog = &ccsim.Progress{Label: cfg.Workload + "/" + cfg.ProtocolName()}
		cfg.Progress = prog
	}
	if cfg.Check != nil {
		// A checker holds per-run shadow state; sweeps copy one base config
		// across many concurrent cells, so each run gets its own oracle.
		cfg.Check = ccsim.NewChecker()
	}
	if cfg.Sharing != nil {
		// Same per-run-state rule as the checker; totals merge into the
		// sweep aggregate on completion.
		cfg.Sharing = ccsim.NewSharingAnalytics()
	}
	s.mu.Lock()
	s.queued--
	s.nextID++
	id := s.nextID
	s.live[id] = LiveRun{ID: id, Workload: cfg.Workload, Protocol: cfg.ProtocolName(), Progress: prog}
	s.mu.Unlock()
	// done closes on every path — a panicking run must never leave Wait()
	// callers hanging. Deferred before the recover handler so the handler
	// has set p.err by the time done closes (LIFO order).
	defer close(p.done)
	defer func() {
		if v := recover(); v != nil {
			p.res = nil
			p.err = fmt.Errorf("run panicked outside the simulation: %v\n%s", v, debug.Stack())
		}
		s.mu.Lock()
		delete(s.live, id)
		if p.err != nil {
			s.failed = append(s.failed, FailedRun{Cfg: cfg, Err: p.err})
		} else {
			s.completed++
			if p.res != nil {
				s.droppedSpans += p.res.DroppedSpans
			}
			if cfg.Sharing != nil {
				s.sharing.Merge(cfg.Sharing.Totals())
			}
		}
		s.mu.Unlock()
	}()
	p.res, p.err = runSim(cfg)
	if p.err == nil && s.metricsDir != "" {
		if werr := writeMetrics(s.metricsDir, cfg, p.res); werr != nil {
			// The simulation itself succeeded: keep the Result for
			// in-process waiters and report the metrics failure as this
			// run's error.
			p.err = fmt.Errorf("metrics: %w", werr)
		}
	}
}

// Wait blocks until the run completes and returns its result. The Result
// is shared between all submitters of one configuration and must be
// treated as read-only.
func (p *Pending) Wait() (*ccsim.Result, error) {
	<-p.done
	return p.res, p.err
}

// Cell resolves the run for one table cell of a fault-tolerant sweep: the
// Result, or nil when the run faulted. The error itself is not lost — it
// sits in the scheduler's Failed ledger. A run whose simulation succeeded
// but whose metrics write failed still yields its Result here.
func (p *Pending) Cell() *ccsim.Result {
	r, _ := p.Wait()
	return r
}

// Fingerprint canonicalizes cfg into the scheduler's cache key. The second
// return is false when the configuration cannot be cached (it carries a
// trace, telemetry, progress, live-checker, sharing-analytics or
// self-profiler side channel, so running it has observable effects beyond
// the Result).
func Fingerprint(cfg ccsim.Config) (string, bool) {
	if cfg.TraceWriter != nil || cfg.Telemetry != nil || cfg.Progress != nil ||
		cfg.Check != nil || cfg.Sharing != nil || cfg.SelfProfile != nil {
		return "", false
	}
	scale := cfg.Scale
	if scale == 0 {
		scale = 1.0 // Run applies the same default
	}
	e := cfg.Extensions
	return fmt.Sprintf("%s|x%g|p%d|P%t|M%t|CW%t|SC%t|net%d|link%d|slc%d|ways%d|flwb%d|slwb%d|pfk%d|cwt%d|wcb%d|nack%t|dir%d|vd%t|me%d|dl%d|np%d|inj%s",
		cfg.Workload, scale, cfg.Procs, e.P, e.M, e.CW, cfg.SC,
		cfg.Net, cfg.LinkBits, cfg.SLCBlocks, cfg.SLCWays,
		cfg.FLWBEntries, cfg.SLWBEntries,
		cfg.PrefetchMaxK, cfg.CWThreshold, cfg.WriteCacheBlocks,
		cfg.PrefetchNackDirty, cfg.DirPointers, cfg.VerifyData,
		cfg.MaxEvents, cfg.Deadline, cfg.NoProgressEvents, cfg.FaultInject), true
}
