package exp

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"ccsim"
	"ccsim/internal/stats"
	"ccsim/internal/store"
)

// ErrInterrupted marks a run abandoned before execution because the sweep
// was interrupted (Scheduler.Interrupt): no worker ever picked it up. A
// resumed sweep re-submits and runs it normally.
var ErrInterrupted = errors.New("sweep interrupted before this run started")

// runSim executes one simulation. A package variable so tests can
// substitute a run that panics or fails without needing a real protocol
// bug; production code never reassigns it.
var runSim = ccsim.Run

// Scheduler fans independent simulations out across a bounded pool of
// goroutines and memoizes completed runs by configuration fingerprint, so
// a sweep that names the same configuration many times — the BASIC
// baseline of every figure, the default grid shared by both sensitivity
// studies — simulates it exactly once. Each simulation stays
// single-threaded and deterministic; only the scheduling of whole runs is
// concurrent, so results are bit-identical to a sequential harness at any
// worker count.
//
// The zero value is not usable; call NewScheduler. A Scheduler is safe for
// concurrent use and is normally shared across every experiment of one
// invocation (cmd/experiments builds one for -exp all).
type Scheduler struct {
	jobs       int
	metricsDir string

	// slots bounds the number of simulations running at once.
	slots chan struct{}

	// resStore, when non-nil, is the durable read-through/write-behind
	// result cache (UseStore): completed cacheable runs persist there and
	// later invocations resume by skipping its hits. storeRead gates the
	// read side (`-resume=false` refreshes entries without reading them).
	resStore  *store.Store
	storeRead bool

	// retry bounds re-execution of transiently-faulted runs (SetRetryPolicy).
	retry RetryPolicy

	// queue, when non-nil, is the distributed job queue (NewJobQueue):
	// cacheable submissions are offered to it so remote workers can lease
	// and execute them, with exec falling back to the local slot pool when
	// no worker claims a job first.
	queue *JobQueue

	// stop closes on Interrupt: queued runs abandon instead of starting,
	// and cancel — attached to every executing run — aborts in-flight
	// simulations cleanly at their next event batch.
	stop     chan struct{}
	stopOnce sync.Once
	cancel   *ccsim.Cancel

	mu          sync.Mutex
	runs        map[string]*Pending
	unique      uint64
	failed      []FailedRun
	submitted   uint64
	dedupHits   uint64
	queued      int
	completed   uint64
	retries     uint64
	interrupted uint64
	nextID      uint64
	live        map[uint64]LiveRun

	// droppedSpans accumulates Result.DroppedSpans over completed runs so
	// sweeps can alert on telemetry overflow from /metrics.
	droppedSpans uint64

	// sharing aggregates per-run analyzer totals across the sweep
	// (Options.Sharing runs; see SharingReport).
	sharing ccsim.SharingTotals

	// clock reads wall time for lifecycle histograms; SetClock substitutes
	// a deterministic one in tests. Never nil after NewScheduler.
	clock func() time.Time

	// phases holds the per-run lifecycle duration histograms in
	// microseconds, indexed by phaseQueueWait..phaseMetricsWrite and
	// guarded by mu.
	phases [numPhases]stats.Hist

	// engine aggregates completed runs' Result.Queue snapshots (simulated
	// runs only — store hits carry another sweep's numbers); engineRuns
	// counts contributions. Guarded by mu.
	engine     ccsim.QueueStats
	engineRuns uint64

	// logger, when non-nil, receives retry and store-quarantine records
	// tagged with the run's run_id (SetLogger). Nil stays silent.
	logger *slog.Logger
}

// Lifecycle phase indexes into Scheduler.phases; phaseNames names them in
// Stats() snapshots and Prometheus labels.
const (
	phaseQueueWait    = iota // Submit to worker-slot acquisition
	phaseSimulate            // one simulation attempt (each retry is its own sample)
	phaseRetryWait           // backoff sleeps between retry attempts
	phaseStorePut            // persisting the Result to the durable store
	phaseMetricsWrite        // writing the per-run metrics JSON file
	numPhases
)

var phaseNames = [numPhases]string{
	phaseQueueWait:    "queue_wait",
	phaseSimulate:     "simulate",
	phaseRetryWait:    "retry_wait",
	phaseStorePut:     "store_put",
	phaseMetricsWrite: "metrics_write",
}

// DurationStats is one phase's (or store op's) duration distribution as
// Stats() snapshots it, in seconds — the shape the ops plane exports as
// ccsim_sched_duration_seconds / ccsim_store_duration_seconds.
type DurationStats struct {
	Phase      string  `json:"phase"`
	Count      uint64  `json:"count"`
	SumSeconds float64 `json:"sum_seconds"`
	P50Seconds float64 `json:"p50_seconds"`
	P95Seconds float64 `json:"p95_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
	MaxSeconds float64 `json:"max_seconds"`
}

// SchedStats is one consistent snapshot of the scheduler's counters — the
// gauges the ops plane exports at /metrics.
type SchedStats struct {
	Submitted uint64 // Submit calls, including cache hits
	Unique    uint64 // distinct cacheable configurations started
	DedupHits uint64 // Submit calls served by the run cache
	Queued    int    // runs waiting for a worker slot
	Running   int    // runs executing right now
	Completed uint64 // runs finished without error
	Failed    uint64 // runs finished with an error (see Failed())

	// DroppedSpans sums Result.DroppedSpans over completed runs: nonzero
	// means telemetry span buffers overflowed somewhere in the sweep and
	// exported timelines undercount transactions.
	DroppedSpans uint64

	// Lifecycle decomposes completed runs' wall-clock into the scheduler's
	// five phases (queue_wait, simulate, retry_wait, store_put,
	// metrics_write), one entry per phase in that fixed order. Each
	// simulation attempt is one simulate sample; retry backoff sleeps land
	// in retry_wait, never in simulate.
	Lifecycle []DurationStats

	// Engine aggregates the event engine's queue-internals counters over
	// every run this sweep actually simulated (store hits excluded — their
	// snapshots describe the sweep that produced them). Nil until the first
	// simulated run completes.
	Engine *ccsim.QueueStats

	// Retries counts re-executions of transiently-faulted runs under the
	// retry policy (each retry is one increment; the final outcome lands in
	// Completed or Failed as usual).
	Retries uint64

	// Interrupted counts runs abandoned by graceful shutdown: runs that
	// never started (they sit in the Failed ledger with ErrInterrupted)
	// plus runs cut off mid-retry, which land there with a canceled
	// SimFault instead of their stale transient fault.
	Interrupted uint64

	// Store snapshots the durable result cache's counters, nil when the
	// scheduler runs without one (no -cache-dir).
	Store *StoreStats

	// Jobs snapshots the distributed job queue's counters and worker
	// registry, nil when the scheduler runs without one (no -serve-jobs).
	Jobs *JobStats
}

// StoreStats is the durable result store's state as the ops plane exports
// it (/status, ccsim_store_* on /metrics).
type StoreStats struct {
	Dir         string
	Hits        uint64 // runs served from disk without simulating
	Misses      uint64 // lookups that fell through to a real run
	Writes      uint64 // results persisted
	Quarantined uint64 // corrupt/truncated entries moved aside and re-run

	// Ops holds the store's per-operation latency distributions (read,
	// validate, write), in that fixed order.
	Ops []DurationStats
}

// LiveRun describes one currently-executing simulation. Progress is the
// run's lock-free probe: snapshot it at any time for the run's position
// without disturbing the simulation.
type LiveRun struct {
	ID       uint64 // scheduler-assigned, ascending in start order
	RunID    string // stable cross-cutting identifier (see RunID)
	Workload string
	Protocol string
	Progress *ccsim.Progress
}

// FailedRun records one run that completed with an error — a contained
// panic (a *ccsim.SimFault), a watchdog abort, or a metrics-write failure.
// The sweep continues past it; cmd/experiments dumps the ledger at the end
// and exits non-zero.
type FailedRun struct {
	Cfg ccsim.Config
	Err error
}

// Pending is a handle to a submitted run; Wait blocks until it completes.
// The same Pending is returned to every submitter of one fingerprint.
type Pending struct {
	done chan struct{}
	res  *ccsim.Result
	err  error
}

// NewScheduler returns a scheduler running at most jobs simulations
// concurrently (jobs <= 0 selects GOMAXPROCS). When metricsDir is
// non-empty, every unique run writes its Result there as JSON, exactly
// once, named by writeMetrics' encoding.
func NewScheduler(jobs int, metricsDir string) *Scheduler {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	return &Scheduler{
		jobs:       jobs,
		metricsDir: metricsDir,
		slots:      make(chan struct{}, jobs),
		runs:       make(map[string]*Pending),
		live:       make(map[uint64]LiveRun),
		stop:       make(chan struct{}),
		cancel:     &ccsim.Cancel{},
		clock:      time.Now,
	}
}

// SetClock substitutes the wall clock the lifecycle histograms read.
// Call before submitting; tests use it for deterministic durations.
func (s *Scheduler) SetClock(now func() time.Time) { s.clock = now }

// SetLogger installs the logger for the scheduler's operational records —
// retries and store quarantines, each tagged with the run's run_id so logs
// and the dashboard cross-reference the same identifier. Call before
// submitting; nil (the default) disables the records.
func (s *Scheduler) SetLogger(l *slog.Logger) { s.logger = l }

// observe records one lifecycle phase duration.
func (s *Scheduler) observe(phase int, d time.Duration) {
	s.mu.Lock()
	s.phases[phase].Add(d.Microseconds())
	s.mu.Unlock()
}

// durationStats renders one histogram of microsecond samples as a
// DurationStats in seconds. Callers hold s.mu (or the store's latMu
// equivalent) as needed.
func durationStats(name string, h *stats.Hist) DurationStats {
	return DurationStats{
		Phase:      name,
		Count:      h.Count(),
		SumSeconds: float64(h.Sum) / 1e6,
		P50Seconds: float64(h.Quantile(50)) / 1e6,
		P95Seconds: float64(h.Quantile(95)) / 1e6,
		P99Seconds: float64(h.Quantile(99)) / 1e6,
		MaxSeconds: float64(h.Max()) / 1e6,
	}
}

// RetryPolicy bounds re-execution of transiently-faulted runs: a run whose
// error is a watchdog SimFault (max-events, deadline, deadlock, livelock —
// the kinds that can be load- or environment-dependent) is retried up to
// MaxAttempts total executions, sleeping Backoff before the first retry
// and doubling it each time. Terminal faults — contained panics, checker
// invariant violations, cancellations — never retry; they land in the
// Failed ledger immediately.
type RetryPolicy struct {
	MaxAttempts int           // total attempts per run; <= 1 disables retry
	Backoff     time.Duration // sleep before the first retry, doubled per attempt
}

// SetRetryPolicy installs the scheduler's retry policy. Call before
// submitting; the zero policy (the default) runs everything exactly once.
func (s *Scheduler) SetRetryPolicy(rp RetryPolicy) { s.retry = rp }

// UseStore attaches a durable result store: every completed cacheable run
// persists its Result there (write-behind), and — when readBack is true —
// submissions whose key already has a valid entry are served from disk
// without simulating (read-through), which is how an interrupted sweep
// resumes. readBack=false refreshes every entry while ignoring existing
// ones. Call before submitting.
func (s *Scheduler) UseStore(st *store.Store, readBack bool) {
	s.resStore = st
	s.storeRead = readBack
}

// Interrupt begins graceful shutdown: runs still waiting for a worker slot
// abandon with ErrInterrupted instead of starting, and every in-flight
// simulation is cancelled cooperatively (it aborts at its next event batch
// with a canceled SimFault). Results completed before the interrupt —
// including their durable-store entries — are untouched, so a re-run
// against the same store resumes where this sweep stopped. Idempotent and
// safe from any goroutine (it is meant for signal handlers).
func (s *Scheduler) Interrupt() {
	s.stopOnce.Do(func() {
		s.cancel.Cancel()
		close(s.stop)
	})
}

// Interrupted reports whether Interrupt has been called.
func (s *Scheduler) Interrupted() bool {
	select {
	case <-s.stop:
		return true
	default:
		return false
	}
}

// Retryable reports whether err is a transient fault under the retry
// policy: a watchdog SimFault (event ceiling, deadline, deadlock,
// livelock). Panics, invariant violations, cancellations and
// non-simulation errors are terminal.
func Retryable(err error) bool {
	f, ok := ccsim.AsFault(err)
	if !ok {
		return false
	}
	switch f.Kind {
	case ccsim.FaultMaxEvents, ccsim.FaultDeadline, ccsim.FaultDeadlock, ccsim.FaultLivelock:
		return true
	}
	return false
}

// Stats snapshots the scheduler's counters.
func (s *Scheduler) Stats() SchedStats {
	s.mu.Lock()
	st := SchedStats{
		Submitted:    s.submitted,
		Unique:       s.unique,
		DedupHits:    s.dedupHits,
		Queued:       s.queued,
		Running:      len(s.live),
		Completed:    s.completed,
		Failed:       uint64(len(s.failed)),
		DroppedSpans: s.droppedSpans,
		Retries:      s.retries,
		Interrupted:  s.interrupted,
	}
	st.Lifecycle = make([]DurationStats, numPhases)
	for i := range s.phases {
		st.Lifecycle[i] = durationStats(phaseNames[i], &s.phases[i])
	}
	if s.engineRuns > 0 {
		eng := s.engine
		st.Engine = &eng
	}
	s.mu.Unlock()
	if s.queue != nil {
		js := s.queue.Stats()
		st.Jobs = &js
	}
	if s.resStore != nil {
		ss := s.resStore.Stats()
		st.Store = &StoreStats{
			Dir:         s.resStore.Root(),
			Hits:        ss.Hits,
			Misses:      ss.Misses,
			Writes:      ss.Writes,
			Quarantined: ss.Quarantined,
		}
		for _, l := range s.resStore.Latencies() {
			st.Store.Ops = append(st.Store.Ops, DurationStats{
				Phase: l.Op, Count: l.Count, SumSeconds: l.SumSeconds,
				P50Seconds: l.P50Seconds, P95Seconds: l.P95Seconds,
				P99Seconds: l.P99Seconds, MaxSeconds: l.MaxSeconds,
			})
		}
	}
	return st
}

// LiveRuns snapshots the registry of currently-executing runs, oldest
// first. Each entry's Progress probe stays valid after the run completes;
// its Done flag flips when the run leaves the registry.
func (s *Scheduler) LiveRuns() []LiveRun {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]LiveRun, 0, len(s.live))
	for _, lr := range s.live {
		out = append(out, lr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SharingReport renders the sweep-wide sharing-pattern aggregate: every
// completed analyzed run's (Options.Sharing) per-class totals merged. Nil
// until at least one analyzed run completes.
func (s *Scheduler) SharingReport() *ccsim.SharingReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sharing.Report()
}

// Jobs returns the worker-pool size.
func (s *Scheduler) Jobs() int { return s.jobs }

// Unique returns how many distinct simulations have been submitted so far;
// the difference against the number of Submit calls is the work the run
// cache saved.
func (s *Scheduler) Unique() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.unique
}

// Submit queues cfg for simulation and returns its handle immediately. A
// configuration already submitted — by this experiment or any other
// sharing the scheduler — returns the existing handle without a new run.
// Configurations carrying side channels (TraceWriter, Telemetry) bypass
// the cache: their runs are observable and must execute per submission.
func (s *Scheduler) Submit(cfg ccsim.Config) *Pending {
	key, cacheable := Fingerprint(cfg)
	p := &Pending{done: make(chan struct{})}
	submittedAt := s.clock()
	if !cacheable {
		s.mu.Lock()
		s.submitted++
		s.queued++
		s.mu.Unlock()
		// Uncacheable runs carry side channels that cannot cross the wire;
		// they always execute locally and are never offered to the queue.
		go s.exec(p, cfg, key, false, submittedAt, nil)
		return p
	}
	s.mu.Lock()
	s.submitted++
	if prev, ok := s.runs[key]; ok {
		s.dedupHits++
		s.mu.Unlock()
		return prev
	}
	s.runs[key] = p
	s.unique++
	s.queued++
	var j *job
	if s.queue != nil {
		// Offer the run to the distributed queue. Runs already present in
		// the durable store stay unleasable: they resolve from disk in a
		// stat + read, so shipping them to a worker would only re-simulate
		// what resume already has.
		leasable := !(s.resStore != nil && s.storeRead && s.resStore.Contains(key))
		j = s.queue.offer(p, cfg, key, submittedAt, leasable)
	}
	s.mu.Unlock()
	go s.exec(p, cfg, key, true, submittedAt, j)
	return p
}

// Failed returns every run that completed with an error, in completion
// order. The order depends on worker scheduling; callers wanting
// deterministic output sort by configuration.
func (s *Scheduler) Failed() []FailedRun {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]FailedRun(nil), s.failed...)
}

func (s *Scheduler) exec(p *Pending, cfg ccsim.Config, key string, cacheable bool, submittedAt time.Time, j *job) {
	// abandonQueued records one run interrupted while it waited: never ran,
	// and under graceful shutdown never will. The error routes through the
	// Failed ledger so cmd/experiments can count abandoned runs and print
	// the resume hint; a resumed sweep re-runs them from scratch (or from
	// the store, for the ones that did complete). With a job queue attached
	// the queue state arbitrates against a racing remote delivery: if the
	// job is already done, the delivery's accounting wins and exec only
	// waits it out.
	abandonQueued := func() {
		if j != nil && !s.queue.abandon(j) {
			<-p.done
			return
		}
		p.err = ErrInterrupted
		s.mu.Lock()
		s.queued--
		s.interrupted++
		s.failed = append(s.failed, FailedRun{Cfg: cfg, Err: p.err})
		s.mu.Unlock()
		close(p.done)
	}
	for {
		select {
		case s.slots <- struct{}{}:
		case <-s.stop:
			abandonQueued()
			return
		case <-p.done:
			// A remote worker delivered this run's result while we waited
			// for a local slot; deliverRemote did all the accounting.
			return
		}
		if j == nil {
			break
		}
		verdict, wake := s.queue.claimLocal(j)
		if verdict == claimOK {
			break
		}
		<-s.slots // the run is remote: release the local slot
		if verdict == claimDone {
			<-p.done
			return
		}
		// Leased by a worker: wait for its delivery, its lease expiring
		// (the job re-queues and we loop to claim it), or shutdown.
		select {
		case <-p.done:
			return
		case <-wake:
			continue
		case <-s.stop:
			abandonQueued()
			return
		}
	}
	defer func() { <-s.slots }()
	if j != nil {
		defer s.queue.finishLocal(j)
	}
	s.observe(phaseQueueWait, s.clock().Sub(submittedAt))
	// Read-through: a valid store entry for this exact key — same schema,
	// same canonical configuration — serves the run without simulating.
	// That is the whole resume path: an interrupted sweep's completed runs
	// hit here, only the missing ones execute. Metrics files are still
	// written so a resumed `-metrics` sweep produces the full directory.
	if s.resStore != nil && s.storeRead && cacheable {
		if res, ok := s.storeGet(key, cfg); ok {
			p.res = res
			if s.metricsDir != "" {
				t0 := s.clock()
				werr := writeMetrics(s.metricsDir, cfg, res)
				s.observe(phaseMetricsWrite, s.clock().Sub(t0))
				if werr != nil {
					p.err = fmt.Errorf("metrics: %w", werr)
				}
			}
			s.mu.Lock()
			s.queued--
			if p.err != nil {
				s.failed = append(s.failed, FailedRun{Cfg: cfg, Err: p.err})
			} else {
				s.completed++
			}
			s.mu.Unlock()
			close(p.done)
			return
		}
	}
	// Register in the live table once a worker slot is held: the run is
	// about to execute, so its probe starts advancing. A caller-supplied
	// probe is reused (the submitter is watching); otherwise the scheduler
	// attaches its own so the ops plane sees every run.
	prog := cfg.Progress
	if prog == nil {
		prog = &ccsim.Progress{Label: cfg.Workload + "/" + cfg.ProtocolName()}
		cfg.Progress = prog
	}
	if cfg.Cancel == nil {
		// The scheduler's shared flag: Interrupt stops this run at its next
		// event batch. Attached after fingerprinting, like the probe, so it
		// never affects cacheability.
		cfg.Cancel = s.cancel
	}
	if cfg.Check != nil {
		// A checker holds per-run shadow state; sweeps copy one base config
		// across many concurrent cells, so each run gets its own oracle.
		cfg.Check = ccsim.NewChecker()
	}
	if cfg.Sharing != nil {
		// Same per-run-state rule as the checker; totals merge into the
		// sweep aggregate on completion.
		cfg.Sharing = ccsim.NewSharingAnalytics()
	}
	s.mu.Lock()
	s.queued--
	s.nextID++
	id := s.nextID
	s.live[id] = LiveRun{ID: id, RunID: RunID(cfg), Workload: cfg.Workload,
		Protocol: cfg.ProtocolName(), Progress: prog}
	s.mu.Unlock()
	// done closes on every path — a panicking run must never leave Wait()
	// callers hanging. Deferred before the recover handler so the handler
	// has set p.err by the time done closes (LIFO order).
	defer close(p.done)
	defer func() {
		if v := recover(); v != nil {
			p.res = nil
			p.err = fmt.Errorf("run panicked outside the simulation: %v\n%s", v, debug.Stack())
		}
		s.mu.Lock()
		delete(s.live, id)
		if p.err != nil {
			s.failed = append(s.failed, FailedRun{Cfg: cfg, Err: p.err})
		} else {
			s.completed++
			if p.res != nil {
				s.droppedSpans += p.res.DroppedSpans
				s.engine.Merge(p.res.Queue)
				s.engineRuns++
			}
			if cfg.Sharing != nil {
				s.sharing.Merge(cfg.Sharing.Totals())
			}
		}
		s.mu.Unlock()
	}()
	p.res, p.err = s.runWithRetry(cfg)
	if p.err == nil && s.resStore != nil && cacheable {
		// Write-behind: persist before the metrics write so a crash between
		// the two still resumes (the store is the source of truth; metrics
		// files regenerate from it on the resumed run).
		t1 := s.clock()
		serr := s.storePut(key, p.res)
		s.observe(phaseStorePut, s.clock().Sub(t1))
		if serr != nil {
			// The simulation itself succeeded: keep the Result for
			// in-process waiters and surface the persistence failure as this
			// run's error, same contract as a metrics-write failure.
			p.err = fmt.Errorf("store: %w", serr)
		}
	}
	if p.err == nil && s.metricsDir != "" {
		t2 := s.clock()
		werr := writeMetrics(s.metricsDir, cfg, p.res)
		s.observe(phaseMetricsWrite, s.clock().Sub(t2))
		if werr != nil {
			// The simulation itself succeeded: keep the Result for
			// in-process waiters and report the metrics failure as this
			// run's error.
			p.err = fmt.Errorf("metrics: %w", werr)
		}
	}
}

// runWithRetry executes one simulation under the retry policy: transient
// watchdog faults re-run with doubling backoff up to the attempt cap;
// terminal faults, success, or an interrupted sweep return immediately.
// Each attempt contributes its own simulate lifecycle sample and backoff
// sleeps land in retry_wait, so the simulate histogram never inflates with
// time spent deliberately asleep.
func (s *Scheduler) runWithRetry(cfg ccsim.Config) (*ccsim.Result, error) {
	attempts := s.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	backoff := s.retry.Backoff
	for attempt := 1; ; attempt++ {
		t0 := s.clock()
		res, err := runSim(cfg)
		s.observe(phaseSimulate, s.clock().Sub(t0))
		if err == nil || attempt >= attempts || !Retryable(err) {
			return res, err
		}
		if s.Interrupted() {
			// The run would retry, but the sweep is shutting down: its last
			// transient fault is stale state of an abandoned retry loop, not
			// this run's outcome. Classify it as canceled so the ledger, the
			// shutdown condensation and the interrupted counter all agree.
			return nil, s.retryInterrupted(err)
		}
		s.mu.Lock()
		s.retries++
		s.mu.Unlock()
		if s.logger != nil {
			kind := ""
			if f, ok := ccsim.AsFault(err); ok {
				kind = f.Kind
			}
			s.logger.Warn("transient fault; retrying run",
				"run_id", RunID(cfg), "attempt", attempt, "max_attempts", attempts,
				"kind", kind, "backoff", backoff.String())
		}
		if backoff > 0 {
			t1 := s.clock()
			interrupted := false
			select {
			case <-time.After(backoff):
			case <-s.stop:
				interrupted = true
			}
			s.observe(phaseRetryWait, s.clock().Sub(t1))
			if interrupted {
				return nil, s.retryInterrupted(err)
			}
			backoff *= 2
		}
	}
}

// retryInterrupted classifies a retry loop cut off by graceful shutdown:
// the stale transient fault of the last attempt is replaced by a canceled
// SimFault naming it, and the run counts as interrupted.
func (s *Scheduler) retryInterrupted(last error) error {
	kind := "unknown"
	if f, ok := ccsim.AsFault(last); ok {
		kind = f.Kind
	}
	s.mu.Lock()
	s.interrupted++
	s.mu.Unlock()
	return &ccsim.SimFault{
		Kind: ccsim.FaultCanceled,
		Message: fmt.Sprintf(
			"sweep interrupted during retry backoff (last transient fault: %s)", kind),
	}
}

// deliverRemote completes one job from a worker's delivered result: the
// same write-behind store put, metrics write and completion accounting the
// local path performs, so a distributed sweep's store, metrics directory
// and stdout are byte-identical to a single-process run. The caller (the
// job queue) has already transitioned the job to done under its own lock,
// so exactly one deliverRemote runs per job and exec's claim loop can only
// observe the job as finished.
func (s *Scheduler) deliverRemote(j *job, res *ccsim.Result, err error, elapsed time.Duration) {
	p := j.p
	p.res, p.err = res, err
	s.observe(phaseSimulate, elapsed)
	if p.err == nil && s.resStore != nil {
		t0 := s.clock()
		serr := s.storePut(j.key, p.res)
		s.observe(phaseStorePut, s.clock().Sub(t0))
		if serr != nil {
			p.err = fmt.Errorf("store: %w", serr)
		}
	}
	if p.err == nil && s.metricsDir != "" {
		t1 := s.clock()
		werr := writeMetrics(s.metricsDir, j.cfg, p.res)
		s.observe(phaseMetricsWrite, s.clock().Sub(t1))
		if werr != nil {
			p.err = fmt.Errorf("metrics: %w", werr)
		}
	}
	s.mu.Lock()
	s.queued--
	if p.err != nil {
		s.failed = append(s.failed, FailedRun{Cfg: j.cfg, Err: p.err})
	} else {
		s.completed++
		if p.res != nil {
			s.droppedSpans += p.res.DroppedSpans
			s.engine.Merge(p.res.Queue)
			s.engineRuns++
		}
	}
	s.mu.Unlock()
	close(p.done)
}

// storeGet resolves key through the durable store: a valid entry decodes
// into the Result a fresh run would have produced. An entry whose bytes
// verify but whose payload no longer deserializes is dropped (quarantined)
// and treated as a miss — belt and braces under the schema tag.
func (s *Scheduler) storeGet(key string, cfg ccsim.Config) (*ccsim.Result, bool) {
	b, ok, quarantined := s.resStore.GetEntry(key)
	if quarantined && s.logger != nil {
		s.logger.Warn("corrupt store entry quarantined; re-running",
			"run_id", RunID(cfg), "store", s.resStore.Root())
	}
	if !ok {
		return nil, false
	}
	var r ccsim.Result
	if err := json.Unmarshal(b, &r); err != nil {
		s.resStore.Drop(key)
		if s.logger != nil {
			s.logger.Warn("undecodable store entry dropped; re-running",
				"run_id", RunID(cfg), "err", err.Error())
		}
		return nil, false
	}
	return &r, true
}

// storePut persists one completed run's Result under its cache key.
func (s *Scheduler) storePut(key string, r *ccsim.Result) error {
	b, err := json.Marshal(r)
	if err != nil {
		return err
	}
	return s.resStore.Put(key, b)
}

// Wait blocks until the run completes and returns its result. The Result
// is shared between all submitters of one configuration and must be
// treated as read-only.
func (p *Pending) Wait() (*ccsim.Result, error) {
	<-p.done
	return p.res, p.err
}

// Cell resolves the run for one table cell of a fault-tolerant sweep: the
// Result, or nil when the run faulted. The error itself is not lost — it
// sits in the scheduler's Failed ledger. A run whose simulation succeeded
// but whose metrics write failed still yields its Result here.
func (p *Pending) Cell() *ccsim.Result {
	r, _ := p.Wait()
	return r
}

// Fingerprint canonicalizes cfg into the scheduler's cache key. The second
// return is false when the configuration cannot be cached (it carries a
// trace, telemetry, progress, cancel, live-checker, sharing-analytics or
// self-profiler side channel, so running it has observable effects beyond
// the Result).
//
// The key is prefixed with ResultSchemaVersion(), so durable-store entries
// written by a build with a different Result JSON shape land in different
// slots and read as misses — stale on-disk results from older builds can
// never deserialize into the wrong struct.
func Fingerprint(cfg ccsim.Config) (string, bool) {
	if cfg.TraceWriter != nil || cfg.Telemetry != nil || cfg.Progress != nil ||
		cfg.Check != nil || cfg.Sharing != nil || cfg.SelfProfile != nil ||
		cfg.Cancel != nil {
		return "", false
	}
	scale := cfg.Scale
	if scale == 0 {
		scale = 1.0 // Run applies the same default
	}
	e := cfg.Extensions
	return fmt.Sprintf("v%s|%s|x%g|p%d|P%t|M%t|CW%t|SC%t|net%d|link%d|slc%d|ways%d|flwb%d|slwb%d|pfk%d|cwt%d|wcb%d|nack%t|dir%d|vd%t|me%d|dl%d|np%d|inj%s",
		ResultSchemaVersion(),
		cfg.Workload, scale, cfg.Procs, e.P, e.M, e.CW, cfg.SC,
		cfg.Net, cfg.LinkBits, cfg.SLCBlocks, cfg.SLCWays,
		cfg.FLWBEntries, cfg.SLWBEntries,
		cfg.PrefetchMaxK, cfg.CWThreshold, cfg.WriteCacheBlocks,
		cfg.PrefetchNackDirty, cfg.DirPointers, cfg.VerifyData,
		cfg.MaxEvents, cfg.Deadline, cfg.NoProgressEvents, cfg.FaultInject), true
}
