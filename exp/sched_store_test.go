package exp

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ccsim"
	"ccsim/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// countingRun substitutes a deterministic fake simulation that counts its
// invocations — the instrument behind every resume assertion below.
func countingRun(t *testing.T, calls *atomic.Int64) {
	t.Helper()
	withRunSim(t, func(cfg ccsim.Config) (*ccsim.Result, error) {
		calls.Add(1)
		return &ccsim.Result{Workload: cfg.Workload, Procs: cfg.Procs, ExecTime: 1000 + int64(cfg.Procs)}, nil
	})
}

// cfgN returns distinct cacheable configurations (varying MaxEvents keeps
// the workload identical but the fingerprints apart).
func cfgN(i int) ccsim.Config {
	c := tiny().config("mp3d")
	c.MaxEvents = uint64(1_000_000 + i)
	return c
}

// TestSchedulerStoreResume is the tentpole contract: a second sweep over a
// store populated by the first simulates nothing it already holds, and only
// the genuinely new configuration executes.
func TestSchedulerStoreResume(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	countingRun(t, &calls)

	s1 := NewScheduler(2, "")
	s1.UseStore(openStore(t, dir), true)
	for i := 0; i < 3; i++ {
		if _, err := s1.Submit(cfgN(i)).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if calls.Load() != 3 {
		t.Fatalf("first sweep simulated %d runs, want 3", calls.Load())
	}
	if st := s1.Stats().Store; st == nil || st.Writes != 3 || st.Hits != 0 {
		t.Fatalf("first sweep store stats = %+v", st)
	}

	// "Resume": a fresh scheduler (fresh dedup cache) over the same store.
	calls.Store(0)
	s2 := NewScheduler(2, "")
	s2.UseStore(openStore(t, dir), true)
	for i := 0; i < 4; i++ { // 3 old + 1 new
		r, err := s2.Submit(cfgN(i)).Wait()
		if err != nil {
			t.Fatal(err)
		}
		if r == nil || r.ExecTime != 1000+int64(tiny().Procs) {
			t.Fatalf("run %d result = %+v", i, r)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("resumed sweep simulated %d runs, want only the new one", calls.Load())
	}
	st := s2.Stats().Store
	if st == nil || st.Hits != 3 || st.Misses != 1 || st.Writes != 1 {
		t.Fatalf("resumed sweep store stats = %+v", st)
	}
	if s2.Stats().Completed != 4 {
		t.Fatalf("completed = %d, want 4 (hits count as completions)", s2.Stats().Completed)
	}
}

// TestSchedulerStoreHitWritesMetrics: the resume path must still produce
// the metrics files a fresh sweep would — byte-identical — or the golden
// gate breaks on resumed runs.
func TestSchedulerStoreHitWritesMetrics(t *testing.T) {
	dir := t.TempDir()
	mdir1, mdir2 := t.TempDir(), t.TempDir()
	var calls atomic.Int64
	countingRun(t, &calls)

	s1 := NewScheduler(1, mdir1)
	s1.UseStore(openStore(t, dir), true)
	if _, err := s1.Submit(cfgN(0)).Wait(); err != nil {
		t.Fatal(err)
	}
	s2 := NewScheduler(1, mdir2)
	s2.UseStore(openStore(t, dir), true)
	if _, err := s2.Submit(cfgN(0)).Wait(); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("second sweep re-simulated (%d calls)", calls.Load())
	}
	ents, err := os.ReadDir(mdir1)
	if err != nil || len(ents) != 1 {
		t.Fatalf("metrics dir 1: %v, %v", ents, err)
	}
	name := ents[0].Name()
	b1, err := os.ReadFile(filepath.Join(mdir1, name))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(filepath.Join(mdir2, name))
	if err != nil {
		t.Fatalf("resumed sweep did not write %s: %v", name, err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("metrics from a store hit differ from the original:\n%s\nvs\n%s", b1, b2)
	}
}

// TestSchedulerStoreCorruptEntryReruns: damage an on-disk entry between
// sweeps; the resumed sweep must quarantine it and re-execute that run —
// never crash, never serve garbage.
func TestSchedulerStoreCorruptEntryReruns(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	countingRun(t, &calls)

	s1 := NewScheduler(1, "")
	s1.UseStore(openStore(t, dir), true)
	if _, err := s1.Submit(cfgN(0)).Wait(); err != nil {
		t.Fatal(err)
	}
	ents, err := filepath.Glob(filepath.Join(dir, "*.res"))
	if err != nil || len(ents) != 1 {
		t.Fatalf("entries = %v, %v", ents, err)
	}
	// Truncate mid-payload — the kill -9 shape.
	b, err := os.ReadFile(ents[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ents[0], b[:len(b)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	calls.Store(0)
	s2 := NewScheduler(1, "")
	s2.UseStore(openStore(t, dir), true)
	r, err := s2.Submit(cfgN(0)).Wait()
	if err != nil || r == nil {
		t.Fatalf("resume over a corrupt entry: %v, %v", r, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("corrupt entry was not re-run (%d calls)", calls.Load())
	}
	st := s2.Stats().Store
	if st == nil || st.Quarantined != 1 || st.Hits != 0 || st.Writes != 1 {
		t.Fatalf("store stats = %+v, want quarantine + rewrite", st)
	}
	q, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(q) != 1 {
		t.Fatalf("quarantine dir = %v, %v", q, err)
	}
	// The healed entry serves the third sweep without simulating.
	calls.Store(0)
	s3 := NewScheduler(1, "")
	s3.UseStore(openStore(t, dir), true)
	if _, err := s3.Submit(cfgN(0)).Wait(); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 0 {
		t.Fatal("healed entry did not serve as a hit")
	}
}

// TestSchedulerStoreUndeserializablePayloadDropped covers storeGet's second
// line of defence: an entry whose bytes checksum correctly but whose
// payload is not Result JSON must be dropped and re-run.
func TestSchedulerStoreUndeserializablePayloadDropped(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	key, ok := Fingerprint(cfgN(0))
	if !ok {
		t.Fatal("config not cacheable")
	}
	if err := st.Put(key, []byte("certainly not json")); err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	countingRun(t, &calls)
	s := NewScheduler(1, "")
	s.UseStore(st, true)
	if _, err := s.Submit(cfgN(0)).Wait(); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("bad payload was not re-run (%d calls)", calls.Load())
	}
	if ss := st.Stats(); ss.Quarantined != 1 {
		t.Fatalf("store stats = %+v, want the payload quarantined via Drop", ss)
	}
}

// TestSchedulerStoreNoReadBack: -resume=false semantics — existing entries
// are ignored on read but refreshed on write.
func TestSchedulerStoreNoReadBack(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	countingRun(t, &calls)

	s1 := NewScheduler(1, "")
	s1.UseStore(openStore(t, dir), true)
	if _, err := s1.Submit(cfgN(0)).Wait(); err != nil {
		t.Fatal(err)
	}
	calls.Store(0)
	s2 := NewScheduler(1, "")
	s2.UseStore(openStore(t, dir), false)
	if _, err := s2.Submit(cfgN(0)).Wait(); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("readBack=false still served from disk (%d calls)", calls.Load())
	}
	st := s2.Stats().Store
	if st == nil || st.Hits != 0 || st.Writes != 1 {
		t.Fatalf("store stats = %+v, want no hits and one refresh write", st)
	}
}

// TestSchedulerRetryTransientSucceeds: a run that faults with a watchdog
// kind on its first attempts and then succeeds must end up Completed, with
// the retries counted and nothing in the ledger.
func TestSchedulerRetryTransientSucceeds(t *testing.T) {
	var calls atomic.Int64
	withRunSim(t, func(cfg ccsim.Config) (*ccsim.Result, error) {
		if calls.Add(1) < 3 {
			return nil, &ccsim.SimFault{Kind: ccsim.FaultDeadlock, Message: "transient"}
		}
		return &ccsim.Result{Workload: cfg.Workload, ExecTime: 42}, nil
	})
	s := NewScheduler(1, "")
	s.SetRetryPolicy(RetryPolicy{MaxAttempts: 3})
	r, err := s.Submit(cfgN(0)).Wait()
	if err != nil || r == nil || r.ExecTime != 42 {
		t.Fatalf("retried run: %+v, %v", r, err)
	}
	if calls.Load() != 3 {
		t.Fatalf("%d attempts, want 3", calls.Load())
	}
	st := s.Stats()
	if st.Retries != 2 || st.Failed != 0 || st.Completed != 1 {
		t.Fatalf("stats = %+v, want 2 retries and a clean completion", st)
	}
}

// TestSchedulerRetryTerminalNotRetried: panics, invariant violations and
// cancellations run exactly once regardless of the policy.
func TestSchedulerRetryTerminalNotRetried(t *testing.T) {
	for _, kind := range []string{ccsim.FaultPanic, ccsim.FaultInvariant, ccsim.FaultCanceled} {
		t.Run(kind, func(t *testing.T) {
			var calls atomic.Int64
			withRunSim(t, func(cfg ccsim.Config) (*ccsim.Result, error) {
				calls.Add(1)
				return nil, &ccsim.SimFault{Kind: kind, Message: "terminal"}
			})
			s := NewScheduler(1, "")
			s.SetRetryPolicy(RetryPolicy{MaxAttempts: 5})
			if _, err := s.Submit(cfgN(0)).Wait(); err == nil {
				t.Fatal("terminal fault reported success")
			}
			if calls.Load() != 1 {
				t.Fatalf("terminal %s fault ran %d times, want 1", kind, calls.Load())
			}
			if st := s.Stats(); st.Retries != 0 || st.Failed != 1 {
				t.Fatalf("stats = %+v", st)
			}
		})
	}
}

// TestSchedulerRetryExhausted: a persistently-faulting run stops at the
// attempt cap and lands in the ledger with the final fault.
func TestSchedulerRetryExhausted(t *testing.T) {
	var calls atomic.Int64
	withRunSim(t, func(cfg ccsim.Config) (*ccsim.Result, error) {
		calls.Add(1)
		return nil, &ccsim.SimFault{Kind: ccsim.FaultLivelock, Message: "permanent"}
	})
	s := NewScheduler(1, "")
	s.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond})
	_, err := s.Submit(cfgN(0)).Wait()
	f, ok := ccsim.AsFault(err)
	if !ok || f.Kind != ccsim.FaultLivelock {
		t.Fatalf("err = %v, want the livelock fault", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("%d attempts, want the cap of 3", calls.Load())
	}
	st := s.Stats()
	if st.Retries != 2 || st.Failed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if failed := s.Failed(); len(failed) != 1 {
		t.Fatalf("ledger = %+v", failed)
	}
}

// TestSchedulerInterruptAbandonsQueued: with one worker slot held by a
// blocking run, Interrupt must fail every queued run with ErrInterrupted —
// promptly, without waiting for the in-flight run — and count them.
func TestSchedulerInterruptAbandonsQueued(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	withRunSim(t, func(cfg ccsim.Config) (*ccsim.Result, error) {
		once.Do(func() { close(started) })
		<-release
		return &ccsim.Result{Workload: cfg.Workload, ExecTime: 1}, nil
	})
	s := NewScheduler(1, "")
	var pending []*Pending
	for i := 0; i < 3; i++ {
		pending = append(pending, s.Submit(cfgN(i)))
	}
	<-started // one run holds the slot; two are queued
	s.Interrupt()
	if !s.Interrupted() {
		t.Fatal("Interrupted() false after Interrupt")
	}
	// The two queued runs abandon without the slot ever freeing. Which of
	// the three holds the slot depends on goroutine scheduling, so poll the
	// counter rather than naming them.
	deadline := time.After(5 * time.Second)
	for s.Stats().Interrupted != 2 {
		select {
		case <-deadline:
			t.Fatalf("queued runs did not abandon after Interrupt: %+v", s.Stats())
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	var interrupted, completed int
	for _, p := range pending {
		if _, err := p.Wait(); errors.Is(err, ErrInterrupted) {
			interrupted++
		} else if err == nil {
			completed++
		} else {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if interrupted != 2 || completed != 1 {
		t.Fatalf("%d interrupted / %d completed, want 2 / 1", interrupted, completed)
	}
	st := s.Stats()
	if st.Interrupted != 2 || st.Failed != 2 || st.Completed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	for _, f := range s.Failed() {
		if !errors.Is(f.Err, ErrInterrupted) {
			t.Fatalf("ledger entry %v, want ErrInterrupted", f.Err)
		}
	}
}

// TestSchedulerInterruptCancelsInFlight drives a real simulation (no stub)
// and interrupts it mid-run: the shared cancel flag must abort it with a
// canceled SimFault rather than letting it run to completion.
func TestSchedulerInterruptCancelsInFlight(t *testing.T) {
	s := NewScheduler(1, "")
	// A large config so the run is still in flight when the interrupt lands;
	// the watchdog polls the flag every batch, so the abort is prompt.
	o := Options{Scale: 1.0, Procs: 16}
	prog := &ccsim.Progress{}
	cfg := o.config("mp3d")
	cfg.Progress = prog // watch the run so we can interrupt mid-flight
	p := s.Submit(cfg)
	deadline := time.After(10 * time.Second)
	for prog.Snapshot().Events == 0 {
		select {
		case <-deadline:
			t.Fatal("run never started")
		case <-time.After(time.Millisecond):
		}
	}
	s.Interrupt()
	_, err := p.Wait()
	f, ok := ccsim.AsFault(err)
	if !ok || f.Kind != ccsim.FaultCanceled {
		t.Fatalf("interrupted in-flight run: err = %v, want a canceled SimFault", err)
	}
	if !strings.Contains(err.Error(), "cancelled") {
		t.Errorf("fault message %q", err)
	}
}
