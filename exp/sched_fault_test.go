package exp

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ccsim"
	"ccsim/internal/store"
)

// withRunSim swaps the scheduler's simulation entry point for the test's
// and restores it afterward.
func withRunSim(t *testing.T, fn func(ccsim.Config) (*ccsim.Result, error)) {
	t.Helper()
	orig := runSim
	runSim = fn
	t.Cleanup(func() { runSim = orig })
}

// TestSchedulerWorkerPanicUnblocksWaiters is the Pending.done leak
// regression test: a run that panics outside ccsim.Run's own recovery must
// still complete every Wait() — with an error — instead of deadlocking
// them.
func TestSchedulerWorkerPanicUnblocksWaiters(t *testing.T) {
	withRunSim(t, func(cfg ccsim.Config) (*ccsim.Result, error) {
		panic("synthetic worker crash")
	})
	s := NewScheduler(2, "")
	p := s.Submit(tiny().config("mp3d"))
	const waiters = 8
	errs := make([]error, waiters)
	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = p.Wait()
		}(i)
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Wait() callers deadlocked after a worker panic")
	}
	for i, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "synthetic worker crash") {
			t.Errorf("waiter %d: err = %v, want the panic surfaced", i, err)
		}
	}
	failed := s.Failed()
	if len(failed) != 1 || !strings.Contains(failed[0].Err.Error(), "synthetic worker crash") {
		t.Errorf("fault ledger = %+v, want the one panicked run", failed)
	}
}

// TestSchedulerSimFaultInLedger checks a contained simulation fault (not a
// raw panic) lands in the ledger and nils only its own cell.
func TestSchedulerSimFaultInLedger(t *testing.T) {
	s := NewScheduler(4, "")
	bad := tiny().config("mp3d")
	bad.FaultInject = "mp3d/BASIC" // matches: this cell faults
	good := tiny().config("mp3d")
	good.Extensions = ccsim.Ext{P: true} // mp3d/P: untouched
	pBad, pGood := s.Submit(bad), s.Submit(good)
	if r := pBad.Cell(); r != nil {
		t.Errorf("faulted run yielded a result: %+v", r)
	}
	if r := pGood.Cell(); r == nil {
		t.Error("clean run's cell is nil")
	}
	_, err := pBad.Wait()
	f, ok := ccsim.AsFault(err)
	if !ok || f.Kind != ccsim.FaultPanic {
		t.Fatalf("faulted cell's error = %v, want a contained panic SimFault", err)
	}
	failed := s.Failed()
	if len(failed) != 1 || failed[0].Cfg.FaultInject == "" {
		t.Errorf("fault ledger = %+v, want exactly the injected run", failed)
	}
}

// TestSchedulerMetricsFailureKeepsResult is the satellite-6 regression: a
// writeMetrics failure must surface as the run's error WITHOUT discarding
// the computed Result for in-process waiters.
func TestSchedulerMetricsFailureKeepsResult(t *testing.T) {
	// A regular file where the metrics directory should be makes MkdirAll
	// fail deterministically.
	dir := t.TempDir()
	blocked := filepath.Join(dir, "metrics")
	if err := os.WriteFile(blocked, []byte("in the way"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(2, blocked)
	p := s.Submit(tiny().config("mp3d"))
	r, err := p.Wait()
	if err == nil || !strings.Contains(err.Error(), "metrics") {
		t.Fatalf("err = %v, want the metrics-write failure", err)
	}
	if r == nil {
		t.Fatal("metrics-write failure discarded the computed Result")
	}
	if r.ExecTime <= 0 {
		t.Fatalf("kept Result looks empty: %+v", r)
	}
	if p.Cell() == nil {
		t.Fatal("Cell() dropped a Result that survived its metrics failure")
	}
	if len(s.Failed()) != 1 {
		t.Fatalf("metrics failure missing from the fault ledger: %+v", s.Failed())
	}
}

// TestConcurrentSubmitInterruptAccounting races many concurrent Submit
// calls — duplicates for dedup traffic, a pre-warmed store for read-through
// hits — against an Interrupt landing while workers are mid-flight, and
// asserts the counter sum invariants hold once everything drains: every
// submission is a unique run or a dedup hit, every unique run resolves into
// exactly one of completed or failed, the ledger matches the failed count,
// and nothing is left queued or running. Run under -race (verify.sh's exp
// race pass), this is the scheduler's shutdown-accounting stress test.
func TestConcurrentSubmitInterruptAccounting(t *testing.T) {
	withRunSim(t, func(cfg ccsim.Config) (*ccsim.Result, error) {
		time.Sleep(2 * time.Millisecond)
		return &ccsim.Result{Workload: cfg.Workload, Protocol: cfg.ProtocolName(), ExecTime: 1}, nil
	})
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mkcfg := func(i int) ccsim.Config {
		cfg := tiny().config("mp3d")
		cfg.MaxEvents = uint64(1_000_000 + i) // distinct fingerprints per i
		return cfg
	}
	// Warm the store with the first 8 configurations so the racing sweep
	// below serves them as read-through hits.
	warm := NewScheduler(4, "")
	warm.UseStore(st, false)
	for i := 0; i < 8; i++ {
		if _, err := warm.Submit(mkcfg(i)).Wait(); err != nil {
			t.Fatal(err)
		}
	}

	s := NewScheduler(2, "")
	s.UseStore(st, true)
	const (
		submitters   = 8
		perSubmitter = 24
		distinct     = 32 // i%distinct duplicates many submissions
	)
	var (
		mu   sync.Mutex
		pend []*Pending
		wg   sync.WaitGroup
	)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				p := s.Submit(mkcfg((g*perSubmitter + i) % distinct))
				mu.Lock()
				pend = append(pend, p)
				mu.Unlock()
			}
		}(g)
	}
	// Interrupt while submissions and simulations are both in flight —
	// but only after at least one store hit has landed, so the race always
	// covers the read-through path too.
	go func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if st := s.Stats(); st.Store != nil && st.Store.Hits > 0 {
				break
			}
			time.Sleep(time.Millisecond)
		}
		s.Interrupt()
	}()
	wg.Wait()
	for _, p := range pend {
		p.Wait() //nolint:errcheck // the invariant below covers outcomes
	}

	stats := s.Stats()
	if stats.Queued != 0 || stats.Running != 0 {
		t.Errorf("drained scheduler still has queued=%d running=%d", stats.Queued, stats.Running)
	}
	if want := uint64(submitters * perSubmitter); stats.Submitted != want {
		t.Errorf("Submitted = %d, want %d", stats.Submitted, want)
	}
	if stats.Unique+stats.DedupHits != stats.Submitted {
		t.Errorf("Unique(%d) + DedupHits(%d) != Submitted(%d)",
			stats.Unique, stats.DedupHits, stats.Submitted)
	}
	if stats.Completed+stats.Failed != stats.Unique {
		t.Errorf("Completed(%d) + Failed(%d) != Unique(%d): a run was lost or double-counted",
			stats.Completed, stats.Failed, stats.Unique)
	}
	if got := uint64(len(s.Failed())); got != stats.Failed {
		t.Errorf("ledger has %d entries, Failed counter says %d", got, stats.Failed)
	}
	if stats.Interrupted > stats.Failed {
		t.Errorf("Interrupted(%d) > Failed(%d)", stats.Interrupted, stats.Failed)
	}
	// Every ledger entry must be a shutdown casualty: this sweep's runs
	// cannot fail any other way.
	for _, f := range s.Failed() {
		if errors.Is(f.Err, ErrInterrupted) {
			continue
		}
		if sf, ok := ccsim.AsFault(f.Err); ok && sf.Kind == ccsim.FaultCanceled {
			continue
		}
		t.Errorf("unexpected non-shutdown failure in ledger: %v", f.Err)
	}
	if stats.Store == nil || stats.Store.Hits == 0 {
		t.Error("store read-through hits never happened; the race never covered the hit path")
	}
}

// TestFailedLedgerConcurrentMixedFaults hammers the ledger from many
// concurrent workers with every failure shape at once — raw worker panics,
// contained SimFaults of several kinds, plain errors — interleaved with
// clean runs, and checks nothing is lost, double-counted or misfiled.
func TestFailedLedgerConcurrentMixedFaults(t *testing.T) {
	const n = 48 // 12 of each shape
	withRunSim(t, func(cfg ccsim.Config) (*ccsim.Result, error) {
		switch cfg.MaxEvents % 4 {
		case 0:
			panic(fmt.Sprintf("raw crash %d", cfg.MaxEvents))
		case 1:
			return nil, &ccsim.SimFault{Kind: ccsim.FaultDeadlock, Message: "stuck"}
		case 2:
			return nil, errors.New("plain failure")
		default:
			return &ccsim.Result{Workload: cfg.Workload, ExecTime: 1}, nil
		}
	})
	s := NewScheduler(8, "")
	var pending []*Pending
	for i := 0; i < n; i++ {
		cfg := tiny().config("mp3d")
		cfg.MaxEvents = uint64(1_000_000 + i)
		pending = append(pending, s.Submit(cfg))
	}
	var wg sync.WaitGroup
	for _, p := range pending {
		wg.Add(1)
		go func(p *Pending) { defer wg.Done(); p.Wait() }(p)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("waiters deadlocked under concurrent mixed faults")
	}
	var panics, faults, plain int
	for _, f := range s.Failed() {
		msg := f.Err.Error()
		switch {
		case strings.Contains(msg, "raw crash"):
			panics++
		case strings.Contains(msg, "stuck"):
			faults++
		case strings.Contains(msg, "plain failure"):
			plain++
		default:
			t.Errorf("unrecognized ledger entry: %v", f.Err)
		}
	}
	if panics != 12 || faults != 12 || plain != 12 {
		t.Fatalf("ledger = %d panics / %d faults / %d plain, want 12 each", panics, faults, plain)
	}
	st := s.Stats()
	if st.Failed != 36 || st.Completed != 12 {
		t.Fatalf("stats = %+v, want 36 failed / 12 completed", st)
	}
	if st.Running != 0 || st.Queued != 0 {
		t.Fatalf("stats = %+v, want an idle scheduler", st)
	}
	// Every cell resolved: failed ones nil, clean ones populated.
	for i, p := range pending {
		if r := p.Cell(); (i%4 == 3) != (r != nil) {
			t.Errorf("cell %d = %v", i, r)
		}
	}
}
