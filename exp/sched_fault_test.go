package exp

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ccsim"
)

// withRunSim swaps the scheduler's simulation entry point for the test's
// and restores it afterward.
func withRunSim(t *testing.T, fn func(ccsim.Config) (*ccsim.Result, error)) {
	t.Helper()
	orig := runSim
	runSim = fn
	t.Cleanup(func() { runSim = orig })
}

// TestSchedulerWorkerPanicUnblocksWaiters is the Pending.done leak
// regression test: a run that panics outside ccsim.Run's own recovery must
// still complete every Wait() — with an error — instead of deadlocking
// them.
func TestSchedulerWorkerPanicUnblocksWaiters(t *testing.T) {
	withRunSim(t, func(cfg ccsim.Config) (*ccsim.Result, error) {
		panic("synthetic worker crash")
	})
	s := NewScheduler(2, "")
	p := s.Submit(tiny().config("mp3d"))
	const waiters = 8
	errs := make([]error, waiters)
	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = p.Wait()
		}(i)
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Wait() callers deadlocked after a worker panic")
	}
	for i, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "synthetic worker crash") {
			t.Errorf("waiter %d: err = %v, want the panic surfaced", i, err)
		}
	}
	failed := s.Failed()
	if len(failed) != 1 || !strings.Contains(failed[0].Err.Error(), "synthetic worker crash") {
		t.Errorf("fault ledger = %+v, want the one panicked run", failed)
	}
}

// TestSchedulerSimFaultInLedger checks a contained simulation fault (not a
// raw panic) lands in the ledger and nils only its own cell.
func TestSchedulerSimFaultInLedger(t *testing.T) {
	s := NewScheduler(4, "")
	bad := tiny().config("mp3d")
	bad.FaultInject = "mp3d/BASIC" // matches: this cell faults
	good := tiny().config("mp3d")
	good.Extensions = ccsim.Ext{P: true} // mp3d/P: untouched
	pBad, pGood := s.Submit(bad), s.Submit(good)
	if r := pBad.Cell(); r != nil {
		t.Errorf("faulted run yielded a result: %+v", r)
	}
	if r := pGood.Cell(); r == nil {
		t.Error("clean run's cell is nil")
	}
	_, err := pBad.Wait()
	f, ok := ccsim.AsFault(err)
	if !ok || f.Kind != ccsim.FaultPanic {
		t.Fatalf("faulted cell's error = %v, want a contained panic SimFault", err)
	}
	failed := s.Failed()
	if len(failed) != 1 || failed[0].Cfg.FaultInject == "" {
		t.Errorf("fault ledger = %+v, want exactly the injected run", failed)
	}
}

// TestSchedulerMetricsFailureKeepsResult is the satellite-6 regression: a
// writeMetrics failure must surface as the run's error WITHOUT discarding
// the computed Result for in-process waiters.
func TestSchedulerMetricsFailureKeepsResult(t *testing.T) {
	// A regular file where the metrics directory should be makes MkdirAll
	// fail deterministically.
	dir := t.TempDir()
	blocked := filepath.Join(dir, "metrics")
	if err := os.WriteFile(blocked, []byte("in the way"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(2, blocked)
	p := s.Submit(tiny().config("mp3d"))
	r, err := p.Wait()
	if err == nil || !strings.Contains(err.Error(), "metrics") {
		t.Fatalf("err = %v, want the metrics-write failure", err)
	}
	if r == nil {
		t.Fatal("metrics-write failure discarded the computed Result")
	}
	if r.ExecTime <= 0 {
		t.Fatalf("kept Result looks empty: %+v", r)
	}
	if p.Cell() == nil {
		t.Fatal("Cell() dropped a Result that survived its metrics failure")
	}
	if len(s.Failed()) != 1 {
		t.Fatalf("metrics failure missing from the fault ledger: %+v", s.Failed())
	}
}
