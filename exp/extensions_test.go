package exp

import (
	"bytes"
	"strings"
	"testing"

	"ccsim"
)

func TestDirectoryStudyShape(t *testing.T) {
	rows, err := DirectoryStudy(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ccsim.Workloads())*len(DirPointerSweep) {
		t.Fatalf("%d rows", len(rows))
	}
	byKey := map[string]DirRow{}
	for _, r := range rows {
		byKey[r.Workload+"/"+itoa(r.Pointers)] = r
		if r.Basic <= 0 || r.PCW <= 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
	// The full map never overflows; Dir1B must overflow for workloads with
	// any read sharing, and its BASIC must not beat the full map.
	for _, wl := range ccsim.Workloads() {
		full := byKey[wl+"/0"]
		one := byKey[wl+"/1"]
		if full.Overflows != 0 {
			t.Errorf("%s: full map recorded overflows", wl)
		}
		if one.Basic < full.Basic-0.01 {
			t.Errorf("%s: Dir1B BASIC (%.3f) beats full map (%.3f)", wl, one.Basic, full.Basic)
		}
	}
	var buf bytes.Buffer
	FprintDirectory(&buf, rows)
	if !strings.Contains(buf.String(), "Dir1B") || !strings.Contains(buf.String(), "full map") {
		t.Fatal("rendering lost directory labels")
	}
}

func TestAssociativityStudyShape(t *testing.T) {
	rows, err := AssociativityStudy(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ccsim.Workloads())*len(AssocWays) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Basic <= 0 || r.P <= 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
	var buf bytes.Buffer
	FprintAssoc(&buf, rows)
	if !strings.Contains(buf.String(), "ways") {
		t.Fatal("rendering lost header")
	}
}

func TestScalingStudyShape(t *testing.T) {
	rows, err := ScalingStudy(Options{Scale: 0.12, Procs: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ccsim.Workloads())*len(ScaleProcs) {
		t.Fatalf("%d rows", len(rows))
	}
	byKey := map[string]ScaleRow{}
	for _, r := range rows {
		byKey[r.Workload+"/"+itoa(r.Procs)] = r
	}
	// Strong scaling: 8 processors must beat 4 for every workload. (At the
	// test's tiny problem sizes, larger machines become communication-bound
	// — e.g. Ocean with two rows per processor — which is correct behavior,
	// so the 16- and 32-processor points are only checked for validity.)
	for _, wl := range ccsim.Workloads() {
		if byKey[wl+"/8"].Basic >= byKey[wl+"/4"].Basic {
			t.Errorf("%s: no speedup from 4 to 8 processors (%.3f vs %.3f)",
				wl, byKey[wl+"/8"].Basic, byKey[wl+"/4"].Basic)
		}
	}
	var buf bytes.Buffer
	FprintScaling(&buf, rows)
	if !strings.Contains(buf.String(), "32") {
		t.Fatal("rendering lost sizes")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestCostPerformanceShape(t *testing.T) {
	rows, err := CostPerformance(tiny(), "ocean")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Combos()) {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]CostRow{}
	for _, r := range rows {
		byName[r.Protocol] = r
	}
	if byName["BASIC"].ExtraBits != 0 || byName["BASIC"].Relative != 1.0 {
		t.Fatalf("BASIC row wrong: %+v", byName["BASIC"])
	}
	for _, name := range []string{"P", "CW", "M", "P+CW", "P+M", "CW+M", "P+CW+M"} {
		if byName[name].ExtraBits <= 0 {
			t.Errorf("%s adds no storage", name)
		}
	}
	// M's cost is directory-dominated (a pointer per memory line), so it
	// must cost more bits than P's counters.
	if byName["M"].ExtraBits <= byName["P"].ExtraBits {
		t.Errorf("M (%d bits) not above P (%d bits)",
			byName["M"].ExtraBits, byName["P"].ExtraBits)
	}
	var buf bytes.Buffer
	FprintCost(&buf, "ocean", rows)
	if !strings.Contains(buf.String(), "gain %/kbit") {
		t.Fatal("rendering lost header")
	}
}
