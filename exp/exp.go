// Package exp regenerates every table and figure of the paper's evaluation
// (Dahlgren, Dubois & Stenström, ISCA 1994, §5). Each function runs the
// required simulations and returns structured rows; the Fprint helpers
// render them in the paper's layout. cmd/experiments and the repository's
// benchmarks are thin wrappers around this package.
package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"text/tabwriter"

	"ccsim"
)

// Fault-tolerant sweeps: every experiment collects its grid with
// Pending.Cell(), which yields nil for a faulted run instead of aborting
// the sweep. A faulted cell's derived metrics become NaN — the sentinel
// the Fprint helpers render as FAULT — and the fault itself sits in the
// scheduler's Failed ledger for cmd/experiments to dump.

// relCell returns r's execution time relative to base, or NaN when either
// run faulted.
func relCell(r, base *ccsim.Result) float64 {
	if r == nil || base == nil || base.ExecTime == 0 {
		return math.NaN()
	}
	return r.RelativeTo(base)
}

// cellf formats one numeric table cell, rendering the NaN fault sentinel
// as FAULT.
func cellf(format string, v float64) string {
	if math.IsNaN(v) {
		return "FAULT"
	}
	return fmt.Sprintf(format, v)
}

// Combo names one protocol-extension combination in the paper's order.
type Combo struct {
	Name string
	Ext  ccsim.Ext
}

// Combos returns the eight combinations as Figure 2 orders them:
// BASIC, P, CW, M, P+CW, P+M, CW+M, P+CW+M.
func Combos() []Combo {
	return []Combo{
		{"BASIC", ccsim.Ext{}},
		{"P", ccsim.Ext{P: true}},
		{"CW", ccsim.Ext{CW: true}},
		{"M", ccsim.Ext{M: true}},
		{"P+CW", ccsim.Ext{P: true, CW: true}},
		{"P+M", ccsim.Ext{P: true, M: true}},
		{"CW+M", ccsim.Ext{CW: true, M: true}},
		{"P+CW+M", ccsim.Ext{P: true, CW: true, M: true}},
	}
}

// Options tune a whole experiment sweep.
type Options struct {
	Scale float64 // workload problem-size multiplier (1.0 = default)
	Procs int     // processors (paper: 16)

	// Jobs bounds the number of simulations run concurrently when an
	// experiment has to create its own scheduler (Sched == nil); 0 selects
	// GOMAXPROCS. Worker count never changes results: runs are
	// deterministic and collected in declaration order.
	Jobs int

	// Sched, when non-nil, is the shared run scheduler: its cache
	// deduplicates identical configurations across every experiment using
	// it, and its MetricsDir (not this struct's) governs metrics output.
	// When nil, each experiment function builds a private scheduler from
	// Jobs and MetricsDir.
	Sched *Scheduler

	// MetricsDir, when non-empty, makes every simulation in a sweep write
	// its full Result as an indented JSON file into this directory (created
	// on first use). Filenames encode the workload, protocol, network and
	// any non-default machine parameters, so distinct configurations never
	// collide.
	MetricsDir string

	// InjectFault, when non-empty, arms the deliberate panic in every run
	// whose "workload/protocol" identity matches (ccsim.Config.FaultInject).
	// Exactly the named cell faults; the sweep renders it as FAULT and
	// completes the rest.
	InjectFault string

	// MaxEvents and Deadline, when non-zero, bound every run in the sweep
	// (ccsim.Config fields of the same names). Exceeding either aborts the
	// run with a SimFault instead of hanging the sweep.
	MaxEvents uint64
	Deadline  int64

	// Check attaches a fresh live coherence checker (ccsim.Config.Check)
	// to every run in the sweep: each simulation's protocol transitions
	// are asserted against shadow state, and the first violation aborts
	// that run with a SimFault. Checked runs bypass the scheduler's dedup
	// cache and cost simulation speed; meant for validation sweeps.
	Check bool

	// Sharing attaches a fresh sharing-pattern analyzer (ccsim.Config.
	// Sharing) to every run; each run's per-class totals merge into the
	// scheduler's aggregate (Scheduler.SharingReport, the ops plane's
	// /sharing endpoint). Analyzed runs bypass the dedup cache.
	Sharing bool

	// SelfProfile, when non-nil, attaches this engine self-profiler to
	// every run, aggregating sampled wall-clock attribution across the
	// whole sweep. Profiled runs bypass the dedup cache.
	SelfProfile *ccsim.SelfProfiler
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options { return Options{Scale: 1.0, Procs: 16} }

func (o Options) config(wl string) ccsim.Config {
	cfg := ccsim.DefaultConfig()
	cfg.Workload = wl
	cfg.Scale = o.Scale
	cfg.Procs = o.Procs
	cfg.FaultInject = o.InjectFault
	cfg.MaxEvents = o.MaxEvents
	cfg.Deadline = o.Deadline
	if o.Check {
		cfg.Check = ccsim.NewChecker()
	}
	if o.Sharing {
		cfg.Sharing = ccsim.NewSharingAnalytics()
	}
	cfg.SelfProfile = o.SelfProfile
	return cfg
}

// scheduler returns the sweep's run scheduler: the shared one when set,
// otherwise a fresh private pool.
func (o Options) scheduler() *Scheduler {
	if o.Sched != nil {
		return o.Sched
	}
	return NewScheduler(o.Jobs, o.MetricsDir)
}

// metricsName builds a collision-safe filename for one run's metrics: every
// configuration axis a sweep varies appears in the name.
func metricsName(cfg ccsim.Config) string {
	name := fmt.Sprintf("%s_%s", cfg.Workload, cfg.ProtocolName())
	if cfg.Net == ccsim.Mesh {
		name += fmt.Sprintf("_mesh%d", cfg.LinkBits)
	}
	name += fmt.Sprintf("_p%d", cfg.Procs)
	if cfg.SLCBlocks > 0 {
		name += fmt.Sprintf("_slc%d", cfg.SLCBlocks)
	}
	if cfg.SLCWays > 1 {
		name += fmt.Sprintf("_w%d", cfg.SLCWays)
	}
	if cfg.FLWBEntries > 0 || cfg.SLWBEntries > 0 {
		name += fmt.Sprintf("_wb%d-%d", cfg.FLWBEntries, cfg.SLWBEntries)
	}
	if cfg.DirPointers > 0 {
		name += fmt.Sprintf("_dir%d", cfg.DirPointers)
	}
	if cfg.Scale != 1.0 {
		name += fmt.Sprintf("_x%g", cfg.Scale)
	}
	return name + ".json"
}

func writeMetrics(dir string, cfg ccsim.Config, r *ccsim.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, metricsName(cfg)))
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Fig2Row is one bar of Figure 2: a protocol's execution time under RC
// relative to BASIC, decomposed into busy, read-stall and acquire-stall
// shares (of the BASIC execution time, so bars compare directly).
type Fig2Row struct {
	Workload string
	Protocol string
	Relative float64 // execution time / BASIC's
	Busy     float64 // per-processor busy share of BASIC exec time
	Read     float64
	Acquire  float64

	Result *ccsim.Result
}

// Figure2 reproduces Figure 2: all eight protocols under release
// consistency on the contention-free network. The whole grid is submitted
// to the run scheduler up front and collected in the paper's order.
func Figure2(o Options) ([]Fig2Row, error) {
	s := o.scheduler()
	type cell struct {
		wl   string
		c    Combo
		pend *Pending
	}
	var grid []cell
	for _, wl := range ccsim.Workloads() {
		for _, c := range Combos() {
			cfg := o.config(wl)
			cfg.Extensions = c.Ext
			grid = append(grid, cell{wl, c, s.Submit(cfg)})
		}
	}
	var rows []Fig2Row
	var base *ccsim.Result
	for i, g := range grid {
		r := g.pend.Cell()
		if i%len(Combos()) == 0 { // first combo of each workload is the baseline
			base = r
		}
		row := Fig2Row{
			Workload: g.wl,
			Protocol: g.c.Name,
			Relative: relCell(r, base),
			Busy:     math.NaN(),
			Read:     math.NaN(),
			Acquire:  math.NaN(),
			Result:   r,
		}
		if r != nil && base != nil && base.ExecTime != 0 {
			denom := float64(base.ExecTime) * float64(o.Procs)
			row.Busy = float64(r.Busy) / denom
			row.Read = float64(r.ReadStall) / denom
			row.Acquire = float64(r.AcquireStall) / denom
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FprintFigure2 renders Figure 2 rows.
func FprintFigure2(w io.Writer, rows []Fig2Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tprotocol\trelative\tbusy\tread\tacquire")
	last := ""
	for _, r := range rows {
		name := r.Workload
		if name == last {
			name = ""
		} else {
			last = r.Workload
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\n",
			name, r.Protocol, cellf("%.3f", r.Relative), cellf("%.3f", r.Busy),
			cellf("%.3f", r.Read), cellf("%.3f", r.Acquire))
	}
	tw.Flush()
}

// Table2Row is one application row of Table 2: the cold and coherence
// miss-rate components (percent of shared reads) for BASIC, P, CW and P+CW.
type Table2Row struct {
	Workload string
	Cold     map[string]float64 // protocol -> cold %
	Coh      map[string]float64 // protocol -> coherence %
}

// Table2Protocols lists the protocols Table 2 compares.
var Table2Protocols = []string{"BASIC", "P", "CW", "P+CW"}

// Table2 reproduces Table 2's miss-rate components under RC. Its four
// protocols are a subset of Figure 2's grid, so under a shared scheduler
// the whole table comes from the cache.
func Table2(o Options) ([]Table2Row, error) {
	s := o.scheduler()
	combos := map[string]ccsim.Ext{
		"BASIC": {}, "P": {P: true}, "CW": {CW: true}, "P+CW": {P: true, CW: true},
	}
	grid := make(map[string]map[string]*Pending)
	for _, wl := range ccsim.Workloads() {
		grid[wl] = make(map[string]*Pending)
		for _, name := range Table2Protocols {
			cfg := o.config(wl)
			cfg.Extensions = combos[name]
			grid[wl][name] = s.Submit(cfg)
		}
	}
	var rows []Table2Row
	for _, wl := range ccsim.Workloads() {
		row := Table2Row{Workload: wl, Cold: map[string]float64{}, Coh: map[string]float64{}}
		for _, name := range Table2Protocols {
			r := grid[wl][name].Cell()
			if r == nil {
				row.Cold[name], row.Coh[name] = math.NaN(), math.NaN()
				continue
			}
			row.Cold[name] = r.ColdMissRate()
			row.Coh[name] = r.CoherenceMissRate()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FprintTable2 renders Table 2.
func FprintTable2(w io.Writer, rows []Table2Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "appl.")
	for _, p := range Table2Protocols {
		fmt.Fprintf(tw, "\t%s cold\t%s coh", p, p)
	}
	fmt.Fprintln(tw)
	for _, r := range rows {
		fmt.Fprintf(tw, "%s", r.Workload)
		for _, p := range Table2Protocols {
			fmt.Fprintf(tw, "\t%s\t%s", cellf("%.2f", r.Cold[p]), cellf("%.2f", r.Coh[p]))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// Fig3Row is one bar of Figure 3: execution time under sequential
// consistency relative to B-SC, decomposed into all five components, plus
// the comparison against BASIC under RC (the figure's dashed line).
type Fig3Row struct {
	Workload  string
	Protocol  string
	Relative  float64 // vs B-SC
	Busy      float64
	Read      float64
	Write     float64
	Acquire   float64
	Release   float64
	VsBasicRC float64 // execution time / BASIC-RC's (dashed line = 1.0)

	Result *ccsim.Result
}

// Figure3Protocols lists the SC designs of Figure 3.
var Figure3Protocols = []Combo{
	{"B-SC", ccsim.Ext{}},
	{"P", ccsim.Ext{P: true}},
	{"M-SC", ccsim.Ext{M: true}},
	{"P+M", ccsim.Ext{P: true, M: true}},
}

// Figure3 reproduces Figure 3: P and M under sequential consistency (CW is
// not feasible under SC), with BASIC-RC as the reference line.
func Figure3(o Options) ([]Fig3Row, error) {
	s := o.scheduler()
	type group struct {
		wl    string
		rc    *Pending
		cells []*Pending
	}
	var grid []group
	for _, wl := range ccsim.Workloads() {
		g := group{wl: wl, rc: s.Submit(o.config(wl))}
		for _, c := range Figure3Protocols {
			cfg := o.config(wl)
			cfg.Extensions = c.Ext
			cfg.SC = true
			g.cells = append(g.cells, s.Submit(cfg))
		}
		grid = append(grid, g)
	}
	var rows []Fig3Row
	for _, g := range grid {
		basicRC := g.rc.Cell()
		var base *ccsim.Result
		for i, c := range Figure3Protocols {
			r := g.cells[i].Cell()
			if i == 0 {
				base = r
			}
			row := Fig3Row{
				Workload:  g.wl,
				Protocol:  c.Name,
				Relative:  relCell(r, base),
				Busy:      math.NaN(),
				Read:      math.NaN(),
				Write:     math.NaN(),
				Acquire:   math.NaN(),
				Release:   math.NaN(),
				VsBasicRC: math.NaN(),
				Result:    r,
			}
			if r != nil && base != nil && base.ExecTime != 0 {
				denom := float64(base.ExecTime) * float64(o.Procs)
				row.Busy = float64(r.Busy) / denom
				row.Read = float64(r.ReadStall) / denom
				row.Write = float64(r.WriteStall) / denom
				row.Acquire = float64(r.AcquireStall) / denom
				row.Release = float64(r.ReleaseStall) / denom
			}
			if r != nil && basicRC != nil && basicRC.ExecTime != 0 {
				row.VsBasicRC = float64(r.ExecTime) / float64(basicRC.ExecTime)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FprintFigure3 renders Figure 3 rows.
func FprintFigure3(w io.Writer, rows []Fig3Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tprotocol\trel(B-SC)\tbusy\tread\twrite\tacquire\trelease\tvs BASIC-RC")
	last := ""
	for _, r := range rows {
		name := r.Workload
		if name == last {
			name = ""
		} else {
			last = r.Workload
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			name, r.Protocol, cellf("%.3f", r.Relative), cellf("%.3f", r.Busy),
			cellf("%.3f", r.Read), cellf("%.3f", r.Write), cellf("%.3f", r.Acquire),
			cellf("%.3f", r.Release), cellf("%.3f", r.VsBasicRC))
	}
	tw.Flush()
}

// Table3Row is one application row of Table 3: execution-time ratios of
// P+CW and P+M to BASIC on wormhole meshes of each link width, under RC.
type Table3Row struct {
	Workload string
	PCW      map[int]float64 // link bits -> exec(P+CW)/exec(BASIC)
	PM       map[int]float64
}

// Table3LinkWidths are the mesh link widths the paper sweeps.
var Table3LinkWidths = []int{64, 32, 16}

// Table3 reproduces Table 3: the impact of network contention. The shared
// per-link-width BASIC baseline is submitted once per (workload, width)
// cell and deduplicated by the run cache — the paper's three protocols per
// width never re-simulate it.
func Table3(o Options) ([]Table3Row, error) {
	s := o.scheduler()
	submit := func(wl string, bits int, e ccsim.Ext) *Pending {
		cfg := o.config(wl)
		cfg.Extensions = e
		cfg.Net = ccsim.Mesh
		cfg.LinkBits = bits
		return s.Submit(cfg)
	}
	type cell struct{ base, pcw, pm *Pending }
	grid := make(map[string]map[int]cell)
	for _, wl := range ccsim.Workloads() {
		grid[wl] = make(map[int]cell)
		for _, bits := range Table3LinkWidths {
			grid[wl][bits] = cell{
				base: submit(wl, bits, ccsim.Ext{}),
				pcw:  submit(wl, bits, ccsim.Ext{P: true, CW: true}),
				pm:   submit(wl, bits, ccsim.Ext{P: true, M: true}),
			}
		}
	}
	var rows []Table3Row
	for _, wl := range ccsim.Workloads() {
		row := Table3Row{Workload: wl, PCW: map[int]float64{}, PM: map[int]float64{}}
		for _, bits := range Table3LinkWidths {
			c := grid[wl][bits]
			base := c.base.Cell()
			row.PCW[bits] = relCell(c.pcw.Cell(), base)
			row.PM[bits] = relCell(c.pm.Cell(), base)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FprintTable3 renders Table 3.
func FprintTable3(w io.Writer, rows []Table3Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "links")
	for _, r := range rows {
		fmt.Fprintf(tw, "\t%s", r.Workload)
	}
	fmt.Fprintln(tw)
	for _, proto := range []string{"P+CW", "P+M"} {
		fmt.Fprintf(tw, "%s\n", proto)
		for _, bits := range Table3LinkWidths {
			fmt.Fprintf(tw, "  %d-bit", bits)
			for _, r := range rows {
				v := r.PCW[bits]
				if proto == "P+M" {
					v = r.PM[bits]
				}
				fmt.Fprintf(tw, "\t%s", cellf("%.2f", v))
			}
			fmt.Fprintln(tw)
		}
	}
	tw.Flush()
}

// Fig4Row is one bar of Figure 4: a protocol's total network traffic
// normalized to BASIC's.
type Fig4Row struct {
	Workload string
	Protocol string
	Traffic  float64 // bytes / BASIC bytes
}

// Figure4Protocols lists the protocols Figure 4 plots.
var Figure4Protocols = []Combo{
	{"BASIC", ccsim.Ext{}},
	{"P", ccsim.Ext{P: true}},
	{"CW", ccsim.Ext{CW: true}},
	{"M", ccsim.Ext{M: true}},
	{"P+CW", ccsim.Ext{P: true, CW: true}},
	{"P+M", ccsim.Ext{P: true, M: true}},
}

// Figure4 reproduces Figure 4: total network traffic per protocol,
// normalized to BASIC, under RC on the uniform network. Every cell is
// shared with Figure 2's grid under a shared scheduler.
func Figure4(o Options) ([]Fig4Row, error) {
	s := o.scheduler()
	type cell struct {
		wl   string
		c    Combo
		pend *Pending
	}
	var grid []cell
	for _, wl := range ccsim.Workloads() {
		for _, c := range Figure4Protocols {
			cfg := o.config(wl)
			cfg.Extensions = c.Ext
			grid = append(grid, cell{wl, c, s.Submit(cfg)})
		}
	}
	var rows []Fig4Row
	var base *ccsim.Result
	for i, g := range grid {
		r := g.pend.Cell()
		if i%len(Figure4Protocols) == 0 {
			base = r
		}
		traffic := math.NaN()
		if r != nil && base != nil {
			traffic = r.TrafficRelativeTo(base)
		}
		rows = append(rows, Fig4Row{
			Workload: g.wl,
			Protocol: g.c.Name,
			Traffic:  traffic,
		})
	}
	return rows, nil
}

// FprintFigure4 renders Figure 4 rows as the paper's percentages.
func FprintFigure4(w io.Writer, rows []Fig4Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "workload")
	for _, c := range Figure4Protocols {
		fmt.Fprintf(tw, "\t%s", c.Name)
	}
	fmt.Fprintln(tw)
	byWl := map[string][]Fig4Row{}
	var order []string
	for _, r := range rows {
		if len(byWl[r.Workload]) == 0 {
			order = append(order, r.Workload)
		}
		byWl[r.Workload] = append(byWl[r.Workload], r)
	}
	for _, wl := range order {
		fmt.Fprintf(tw, "%s", wl)
		for _, r := range byWl[wl] {
			fmt.Fprintf(tw, "\t%s", cellf("%.0f%%", 100*r.Traffic))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}
