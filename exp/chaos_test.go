package exp

import (
	"math/rand"
	"testing"

	"ccsim"
	"ccsim/internal/litmus"
)

// TestChaos is the randomized robustness sweep: every protocol-extension
// combination under both consistency models and both networks, at
// seed-randomized small scales and machine geometries, each run under the
// watchdog with data verification on. Any protocol bug, deadlock or
// livelock these tiny-but-diverse configurations can provoke surfaces as a
// test failure with the full SimFault diagnostic instead of a hang.
//
// The grid is deterministic: a fixed seed draws every random parameter
// before any -short subsetting, so the same configurations run every time
// and a failure reproduces by name.
func TestChaos(t *testing.T) {
	rng := rand.New(rand.NewSource(1994))
	workloads := ccsim.Workloads()
	var grid []ccsim.Config
	for _, sc := range []bool{false, true} {
		for _, c := range Combos() {
			if sc && c.Ext.CW {
				// Competitive update requires release consistency;
				// params.Validate rejects CW+SC by design.
				continue
			}
			for _, net := range []ccsim.Network{ccsim.Uniform, ccsim.Mesh} {
				cfg := ccsim.DefaultConfig()
				cfg.Workload = workloads[rng.Intn(len(workloads))]
				cfg.Scale = 0.04 + 0.04*rng.Float64()
				cfg.Procs = 4 << rng.Intn(2) // 4 or 8
				cfg.Extensions = c.Ext
				cfg.SC = sc
				cfg.Net = net
				if net == ccsim.Mesh {
					cfg.LinkBits = []int{64, 32, 16}[rng.Intn(3)]
				}
				if rng.Intn(2) == 1 {
					cfg.SLCBlocks = 128 // finite SLC: evictions in play
				}
				cfg.VerifyData = true
				// Generous watchdog backstop: a correct run never comes
				// near it, a stuck one aborts with diagnostics.
				cfg.MaxEvents = 50_000_000
				grid = append(grid, cfg)
			}
		}
	}
	if testing.Short() {
		// Every 4th cell still crosses both models, several combos and
		// both networks; the seed above fixed the grid already so the
		// subset is stable too.
		var sub []ccsim.Config
		for i := 0; i < len(grid); i += 4 {
			sub = append(sub, grid[i])
		}
		grid = sub
	}
	s := NewScheduler(0, "")
	pends := make([]*Pending, len(grid))
	for i, cfg := range grid {
		pends[i] = s.Submit(cfg)
	}
	for i, p := range pends {
		cfg := grid[i]
		r, err := p.Wait()
		name := cfg.Workload + "/" + cfg.ProtocolName()
		if err != nil {
			t.Errorf("chaos cell %d (%s, net %d, scale %.3f, %d procs, slc %d): %v",
				i, name, cfg.Net, cfg.Scale, cfg.Procs, cfg.SLCBlocks, err)
			continue
		}
		if r.ExecTime <= 0 {
			t.Errorf("chaos cell %d (%s): empty result", i, name)
		}
	}
	if faulted := s.Failed(); len(faulted) > 0 {
		t.Logf("%d of %d chaos cells faulted", len(faulted), len(grid))
	}
}

// TestChaosLitmus is the litmus sub-mode of the chaos sweep: seeded
// random-walk micro-programs and the fixed litmus shapes, each run under a
// deterministically drawn protocol cell with the live coherence checker
// attached. A failing program is delta-minimized before it is reported, so
// the failure message carries the shortest reproducing sequence.
func TestChaosLitmus(t *testing.T) {
	rng := rand.New(rand.NewSource(1994))
	cells := litmus.Cells()
	type job struct {
		p    litmus.Program
		cell litmus.Cell
	}
	var jobs []job
	// Every fixed shape under two random cells each.
	for _, mk := range litmus.Shapes() {
		for i := 0; i < 2; i++ {
			jobs = append(jobs, job{mk(), cells[rng.Intn(len(cells))]})
		}
	}
	// Random walks: varied shape parameters, one drawn cell per walk.
	walks := 12
	if testing.Short() {
		walks = 4
	}
	for i := 0; i < walks; i++ {
		p := litmus.RandomWalk(int64(1000+i), 2+rng.Intn(3), 2+rng.Intn(5), 20+rng.Intn(30))
		jobs = append(jobs, job{p, cells[rng.Intn(len(cells))]})
	}
	for _, j := range jobs {
		err := litmus.Run(j.p, j.cell)
		if err == nil {
			continue
		}
		min := litmus.Minimize(j.p, j.cell, 100)
		t.Errorf("litmus %s under %s failed (%s); minimized to %d ops: %+v\nerror: %v",
			j.p.Name, j.cell.Name(), litmus.FailureClass(err), min.OpCount(), min.Threads, err)
	}
}
