package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"

	"ccsim"
)

// ResultSchemaVersion returns a short tag derived from ccsim.Result's JSON
// shape — every effective field name and type, recursively. The tag
// prefixes Fingerprint's cache keys, so on-disk entries written by a build
// with a different Result layout hash to different store slots and read as
// misses instead of deserializing into the wrong struct. It changes
// automatically whenever the Result schema does; no hand-maintained
// version number to forget.
func ResultSchemaVersion() string {
	schemaOnce.Do(func() {
		sum := sha256.Sum256([]byte(schemaSignature(reflect.TypeOf(ccsim.Result{}))))
		schemaTag = hex.EncodeToString(sum[:6])
	})
	return schemaTag
}

var (
	schemaOnce sync.Once
	schemaTag  string
)

// schemaSignature renders t's JSON-visible shape canonically: struct
// fields by effective JSON name (tag-renamed, "-" and unexported fields
// skipped) in sorted order, containers by their element shapes, leaves by
// kind. Cycles are cut by naming the revisited type.
func schemaSignature(t reflect.Type) string {
	var b strings.Builder
	writeSignature(&b, t, map[reflect.Type]bool{})
	return b.String()
}

func writeSignature(b *strings.Builder, t reflect.Type, seen map[reflect.Type]bool) {
	switch t.Kind() {
	case reflect.Pointer:
		b.WriteByte('*')
		writeSignature(b, t.Elem(), seen)
	case reflect.Slice, reflect.Array:
		b.WriteString("[]")
		writeSignature(b, t.Elem(), seen)
	case reflect.Map:
		b.WriteString("map[")
		writeSignature(b, t.Key(), seen)
		b.WriteByte(']')
		writeSignature(b, t.Elem(), seen)
	case reflect.Struct:
		if seen[t] {
			// A recursive type: name it instead of descending forever.
			fmt.Fprintf(b, "rec(%s)", t.String())
			return
		}
		seen[t] = true
		defer delete(seen, t)
		type field struct {
			name string
			typ  reflect.Type
		}
		var fields []field
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			name := f.Name
			if tag, _, _ := strings.Cut(f.Tag.Get("json"), ","); tag != "" {
				name = tag
			}
			if name == "-" {
				continue
			}
			fields = append(fields, field{name, f.Type})
		}
		sort.Slice(fields, func(i, j int) bool { return fields[i].name < fields[j].name })
		b.WriteString("struct{")
		for _, f := range fields {
			b.WriteString(f.name)
			b.WriteByte(':')
			writeSignature(b, f.typ, seen)
			b.WriteByte(';')
		}
		b.WriteByte('}')
	default:
		b.WriteString(t.Kind().String())
	}
}
