package exp

import (
	"crypto/sha256"
	"encoding/hex"

	"ccsim"
)

// RunID derives the stable cross-cutting identifier for one run:
// workload/protocol/fingerprint-prefix, e.g. "mp3d/CW/1a2b3c4d". Every
// operational surface — scheduler retry and store-quarantine log records,
// the fault ledger, /status, and the dashboard — tags the same run with
// the same id, so logs and the dashboard cross-reference directly.
//
// The identity is the configuration's canonical fingerprint, computed with
// side channels stripped: attaching a probe, checker, or trace writer
// never changes a run's id, and two sweeps naming the same configuration
// name the same id.
func RunID(cfg ccsim.Config) string {
	bare := cfg
	bare.TraceWriter = nil
	bare.Telemetry = nil
	bare.Progress = nil
	bare.Check = nil
	bare.Sharing = nil
	bare.SelfProfile = nil
	bare.Cancel = nil
	key, _ := Fingerprint(bare)
	sum := sha256.Sum256([]byte(key))
	return cfg.Workload + "/" + cfg.ProtocolName() + "/" + hex.EncodeToString(sum[:4])
}
