package exp

import (
	"reflect"
	"strings"
	"testing"

	"ccsim"
)

// TestFingerprintCarriesSchemaVersion pins satellite #1: cache keys are
// prefixed with the Result schema tag, so on-disk entries written by a
// build with a different Result shape can never read as hits.
func TestFingerprintCarriesSchemaVersion(t *testing.T) {
	key, ok := Fingerprint(ccsim.Config{Workload: "mp3d", Procs: 4})
	if !ok {
		t.Fatal("plain config not cacheable")
	}
	want := "v" + ResultSchemaVersion() + "|"
	if !strings.HasPrefix(key, want) {
		t.Fatalf("key %q lacks schema prefix %q", key, want)
	}
}

func TestResultSchemaVersionStable(t *testing.T) {
	a, b := ResultSchemaVersion(), ResultSchemaVersion()
	if a != b {
		t.Fatalf("version not stable: %q vs %q", a, b)
	}
	if len(a) != 12 {
		t.Fatalf("version %q: want 12 hex chars", a)
	}
	for _, c := range a {
		if !strings.ContainsRune("0123456789abcdef", c) {
			t.Fatalf("version %q is not lowercase hex", a)
		}
	}
}

// TestSchemaSignatureTracksShape: the signature must change when the
// JSON-visible shape changes (field added, renamed, retyped) and must NOT
// change for JSON-invisible differences (unexported fields, json:"-",
// declaration order).
func TestSchemaSignatureTracksShape(t *testing.T) {
	type base struct {
		A int     `json:"a"`
		B float64 `json:"b"`
	}
	type added struct {
		A int     `json:"a"`
		B float64 `json:"b"`
		C string  `json:"c"`
	}
	type renamed struct {
		A int     `json:"a2"`
		B float64 `json:"b"`
	}
	type retyped struct {
		A string  `json:"a"`
		B float64 `json:"b"`
	}
	type reordered struct {
		B float64 `json:"b"`
		A int     `json:"a"`
	}
	type invisible struct {
		A      int     `json:"a"`
		B      float64 `json:"b"`
		hidden int
		Skip   bool `json:"-"`
	}
	_ = invisible{hidden: 0} // silence unused-field vet

	sig := func(v any) string { return schemaSignature(reflect.TypeOf(v)) }
	b := sig(base{})
	for name, other := range map[string]string{
		"added field":   sig(added{}),
		"renamed field": sig(renamed{}),
		"retyped field": sig(retyped{}),
	} {
		if other == b {
			t.Errorf("%s: signature unchanged", name)
		}
	}
	if sig(reordered{}) != b {
		t.Error("declaration order changed the signature; fields must be sorted")
	}
	if sig(invisible{}) != b {
		t.Error("JSON-invisible fields changed the signature")
	}
}

// TestSchemaSignatureContainers covers the recursive cases: pointers,
// slices, maps and nested structs all contribute to the shape.
func TestSchemaSignatureContainers(t *testing.T) {
	type inner struct {
		X int `json:"x"`
	}
	type withPtr struct {
		I *inner `json:"i"`
	}
	type withSlice struct {
		I []inner `json:"i"`
	}
	type withMap struct {
		I map[string]inner `json:"i"`
	}
	sig := func(v any) string { return schemaSignature(reflect.TypeOf(v)) }
	sigs := map[string]bool{sig(withPtr{}): true, sig(withSlice{}): true, sig(withMap{}): true}
	if len(sigs) != 3 {
		t.Fatalf("container kinds collided: ptr=%q slice=%q map=%q",
			sig(withPtr{}), sig(withSlice{}), sig(withMap{}))
	}
}

// TestSchemaSignatureRecursiveType: self-referential types terminate.
func TestSchemaSignatureRecursiveType(t *testing.T) {
	type node struct {
		Next *node `json:"next"`
		V    int   `json:"v"`
	}
	s := schemaSignature(reflect.TypeOf(node{}))
	if !strings.Contains(s, "rec(") {
		t.Fatalf("recursive type not cut: %q", s)
	}
}
