package exp

import (
	"bytes"
	"strings"
	"testing"

	"ccsim"
)

// tiny shrinks everything so the whole evaluation runs in seconds.
func tiny() Options { return Options{Scale: 0.08, Procs: 8} }

func TestCombosMatchPaperOrder(t *testing.T) {
	want := []string{"BASIC", "P", "CW", "M", "P+CW", "P+M", "CW+M", "P+CW+M"}
	combos := Combos()
	if len(combos) != len(want) {
		t.Fatalf("%d combos", len(combos))
	}
	for i, c := range combos {
		if c.Name != want[i] {
			t.Fatalf("combo %d = %s, want %s", i, c.Name, want[i])
		}
		cfg := ccsim.DefaultConfig()
		cfg.Extensions = c.Ext
		if got := cfg.ProtocolName(); got != c.Name {
			t.Fatalf("combo %s builds protocol %s", c.Name, got)
		}
	}
}

func TestFigure2Shape(t *testing.T) {
	rows, err := Figure2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ccsim.Workloads())*len(Combos()) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Protocol == "BASIC" && r.Relative != 1.0 {
			t.Fatalf("%s BASIC relative = %v", r.Workload, r.Relative)
		}
		if r.Relative <= 0 || r.Busy < 0 || r.Read < 0 || r.Acquire < 0 {
			t.Fatalf("bad row %+v", r)
		}
		// The decomposition shares must roughly bound the relative time
		// (per-processor components cannot exceed the wall time by much;
		// load imbalance makes them smaller).
		if sum := r.Busy + r.Read + r.Acquire; sum > r.Relative*1.05 {
			t.Fatalf("%s/%s decomposition %v exceeds relative %v", r.Workload, r.Protocol, sum, r.Relative)
		}
	}
	var buf bytes.Buffer
	FprintFigure2(&buf, rows)
	if !strings.Contains(buf.String(), "P+CW+M") {
		t.Fatal("rendering lost rows")
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := Table2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ccsim.Workloads()) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		for _, p := range Table2Protocols {
			if r.Cold[p] < 0 || r.Cold[p] > 100 || r.Coh[p] < 0 || r.Coh[p] > 100 {
				t.Fatalf("%s/%s rates out of range: %v / %v", r.Workload, p, r.Cold[p], r.Coh[p])
			}
		}
		// P must cut the cold component; CW must not increase it.
		if r.Cold["P"] >= r.Cold["BASIC"] {
			t.Errorf("%s: P cold %.2f >= BASIC %.2f", r.Workload, r.Cold["P"], r.Cold["BASIC"])
		}
	}
	var buf bytes.Buffer
	FprintTable2(&buf, rows)
	if !strings.Contains(buf.String(), "mp3d") {
		t.Fatal("rendering lost rows")
	}
}

func TestFigure3Shape(t *testing.T) {
	rows, err := Figure3(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ccsim.Workloads())*len(Figure3Protocols) {
		t.Fatalf("%d rows", len(rows))
	}
	byKey := map[string]Fig3Row{}
	for _, r := range rows {
		byKey[r.Workload+"/"+r.Protocol] = r
	}
	// M-SC must cut the write stall for the migratory applications.
	for _, wl := range []string{"mp3d", "cholesky", "water"} {
		if byKey[wl+"/M-SC"].Write >= byKey[wl+"/B-SC"].Write {
			t.Errorf("%s: M-SC write share %.3f >= B-SC %.3f", wl,
				byKey[wl+"/M-SC"].Write, byKey[wl+"/B-SC"].Write)
		}
	}
	var buf bytes.Buffer
	FprintFigure3(&buf, rows)
	if !strings.Contains(buf.String(), "M-SC") {
		t.Fatal("rendering lost rows")
	}
}

func TestTable3Shape(t *testing.T) {
	rows, err := Table3(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ccsim.Workloads()) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		for _, bits := range Table3LinkWidths {
			if r.PCW[bits] <= 0 || r.PM[bits] <= 0 {
				t.Fatalf("%s: missing ratios at %d bits", r.Workload, bits)
			}
		}
	}
	var buf bytes.Buffer
	FprintTable3(&buf, rows)
	out := buf.String()
	if !strings.Contains(out, "16-bit") || !strings.Contains(out, "P+M") {
		t.Fatalf("rendering wrong:\n%s", out)
	}
}

func TestFigure4Shape(t *testing.T) {
	rows, err := Figure4(tiny())
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]float64{}
	for _, r := range rows {
		byKey[r.Workload+"/"+r.Protocol] = r.Traffic
		if r.Protocol == "BASIC" && r.Traffic != 1.0 {
			t.Fatalf("%s BASIC traffic = %v", r.Workload, r.Traffic)
		}
	}
	// M must reduce traffic for the migratory applications (fewer
	// ownership/invalidation transactions).
	for _, wl := range []string{"mp3d", "cholesky"} {
		if byKey[wl+"/M"] >= 1.0 {
			t.Errorf("%s: M traffic %.2f >= BASIC", wl, byKey[wl+"/M"])
		}
	}
	var buf bytes.Buffer
	FprintFigure4(&buf, rows)
	if !strings.Contains(buf.String(), "%") {
		t.Fatal("rendering lost percentages")
	}
}

func TestSensitivityShapes(t *testing.T) {
	buf, err := SensBuffers(tiny())
	if err != nil {
		t.Fatal(err)
	}
	cache, err := SensCache(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != len(cache) || len(buf) != len(ccsim.Workloads())*len(Combos()) {
		t.Fatalf("row counts: %d, %d", len(buf), len(cache))
	}
	for _, r := range append(buf, cache...) {
		if r.Default <= 0 || r.Limited <= 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
	var out bytes.Buffer
	FprintSens(&out, buf, "4-entry buffers")
	if !strings.Contains(out.String(), "4-entry buffers") {
		t.Fatal("rendering lost header")
	}
}

func TestFprintTable1(t *testing.T) {
	var buf bytes.Buffer
	FprintTable1(&buf, 16)
	out := buf.String()
	for _, want := range []string{"BASIC", "write cache with four blocks", "16 presence bits"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, out)
		}
	}
}
