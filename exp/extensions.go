package exp

import (
	"fmt"
	"io"
	"text/tabwriter"

	"ccsim"
)

// The studies in this file go beyond the paper's evaluation: they exercise
// design axes the paper's framework invites but does not sweep — directory
// organization, cache associativity, and machine size. DESIGN.md lists them
// as extension experiments.

// DirRow compares directory organizations for one workload under the best
// RC combination (P+CW) and under BASIC.
type DirRow struct {
	Workload   string
	Pointers   int // 0 = full map
	Basic      float64
	PCW        float64
	Overflows  uint64
	Broadcasts uint64
}

// DirPointerSweep lists the directory organizations DirectoryStudy sweeps:
// the paper's full map plus Dir4B, Dir2B and Dir1B limited-pointer
// directories.
var DirPointerSweep = []int{0, 4, 2, 1}

// DirectoryStudy sweeps limited-pointer directories: execution time
// relative to the full-map BASIC of the same workload, plus overflow and
// broadcast counts.
func DirectoryStudy(o Options) ([]DirRow, error) {
	s := o.scheduler()
	type cell struct {
		wl         string
		ptrs       int
		basic, pcw *Pending
	}
	var grid []cell
	for _, wl := range ccsim.Workloads() {
		for _, ptrs := range DirPointerSweep {
			submit := func(e ccsim.Ext) *Pending {
				cfg := o.config(wl)
				cfg.Extensions = e
				cfg.DirPointers = ptrs
				return s.Submit(cfg)
			}
			grid = append(grid, cell{wl, ptrs,
				submit(ccsim.Ext{}), submit(ccsim.Ext{P: true, CW: true})})
		}
	}
	var rows []DirRow
	var fullBasic *ccsim.Result
	for i, g := range grid {
		basic, err := g.basic.Wait()
		if err != nil {
			return nil, fmt.Errorf("dir %s/%d: %w", g.wl, g.ptrs, err)
		}
		pcw, err := g.pcw.Wait()
		if err != nil {
			return nil, fmt.Errorf("dir %s/%d: %w", g.wl, g.ptrs, err)
		}
		if i%len(DirPointerSweep) == 0 {
			fullBasic = basic
		}
		rows = append(rows, DirRow{
			Workload:   g.wl,
			Pointers:   g.ptrs,
			Basic:      basic.RelativeTo(fullBasic),
			PCW:        pcw.RelativeTo(fullBasic),
			Overflows:  basic.PointerOverflows,
			Broadcasts: basic.BroadcastInvs,
		})
	}
	return rows, nil
}

// FprintDirectory renders the directory study.
func FprintDirectory(w io.Writer, rows []DirRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tdirectory\tBASIC\tP+CW\toverflows\tbroadcasts")
	last := ""
	for _, r := range rows {
		name := r.Workload
		if name == last {
			name = ""
		} else {
			last = r.Workload
		}
		dir := "full map"
		if r.Pointers > 0 {
			dir = fmt.Sprintf("Dir%dB", r.Pointers)
		}
		fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.3f\t%d\t%d\n",
			name, dir, r.Basic, r.PCW, r.Overflows, r.Broadcasts)
	}
	tw.Flush()
}

// AssocRow compares SLC associativities at a fixed 16-KB capacity.
type AssocRow struct {
	Workload string
	Ways     int
	Basic    float64 // relative to 1-way BASIC
	P        float64
}

// AssocWays lists the associativities AssociativityStudy sweeps.
var AssocWays = []int{1, 2, 4}

// AssociativityStudy sweeps the 16-KB SLC's associativity: the paper uses
// direct-mapped caches; associativity absorbs the conflict misses that
// prefetching otherwise hides.
func AssociativityStudy(o Options) ([]AssocRow, error) {
	s := o.scheduler()
	type cell struct {
		wl       string
		ways     int
		basic, p *Pending
	}
	var grid []cell
	for _, wl := range ccsim.Workloads() {
		for _, ways := range AssocWays {
			submit := func(e ccsim.Ext) *Pending {
				cfg := o.config(wl)
				cfg.Extensions = e
				cfg.SLCBlocks = 512 // 16 KB
				cfg.SLCWays = ways
				return s.Submit(cfg)
			}
			grid = append(grid, cell{wl, ways,
				submit(ccsim.Ext{}), submit(ccsim.Ext{P: true})})
		}
	}
	var rows []AssocRow
	var base *ccsim.Result
	for i, g := range grid {
		basic, err := g.basic.Wait()
		if err != nil {
			return nil, fmt.Errorf("assoc %s/%d: %w", g.wl, g.ways, err)
		}
		p, err := g.p.Wait()
		if err != nil {
			return nil, fmt.Errorf("assoc %s/%d: %w", g.wl, g.ways, err)
		}
		if i%len(AssocWays) == 0 {
			base = basic
		}
		rows = append(rows, AssocRow{
			Workload: g.wl,
			Ways:     g.ways,
			Basic:    basic.RelativeTo(base),
			P:        p.RelativeTo(base),
		})
	}
	return rows, nil
}

// FprintAssoc renders the associativity study.
func FprintAssoc(w io.Writer, rows []AssocRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tways\tBASIC\tP")
	last := ""
	for _, r := range rows {
		name := r.Workload
		if name == last {
			name = ""
		} else {
			last = r.Workload
		}
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.3f\n", name, r.Ways, r.Basic, r.P)
	}
	tw.Flush()
}

// ScaleRow reports one workload's execution time at a machine size, for
// BASIC and P+CW, normalized to the 4-processor BASIC run of the same
// workload (smaller is better; perfect scaling would quarter per step).
type ScaleRow struct {
	Workload string
	Procs    int
	Basic    float64
	PCW      float64
}

// ScaleProcs lists the machine sizes ScalingStudy sweeps.
var ScaleProcs = []int{4, 8, 16, 32}

// ScalingStudy sweeps the processor count at a fixed problem size (strong
// scaling). The combined extensions should keep their advantage as the
// machine grows — communication grows with sharing, which is exactly what
// P and CW attack.
func ScalingStudy(o Options) ([]ScaleRow, error) {
	s := o.scheduler()
	type cell struct {
		wl         string
		procs      int
		basic, pcw *Pending
	}
	var grid []cell
	for _, wl := range ccsim.Workloads() {
		for _, procs := range ScaleProcs {
			submit := func(e ccsim.Ext) *Pending {
				cfg := o.config(wl)
				cfg.Procs = procs
				cfg.Extensions = e
				return s.Submit(cfg)
			}
			grid = append(grid, cell{wl, procs,
				submit(ccsim.Ext{}), submit(ccsim.Ext{P: true, CW: true})})
		}
	}
	var rows []ScaleRow
	var base *ccsim.Result
	for i, g := range grid {
		basic, err := g.basic.Wait()
		if err != nil {
			return nil, fmt.Errorf("scale %s/%d: %w", g.wl, g.procs, err)
		}
		pcw, err := g.pcw.Wait()
		if err != nil {
			return nil, fmt.Errorf("scale %s/%d: %w", g.wl, g.procs, err)
		}
		if i%len(ScaleProcs) == 0 {
			base = basic
		}
		rows = append(rows, ScaleRow{
			Workload: g.wl,
			Procs:    g.procs,
			Basic:    basic.RelativeTo(base),
			PCW:      pcw.RelativeTo(base),
		})
	}
	return rows, nil
}

// FprintScaling renders the scaling study.
func FprintScaling(w io.Writer, rows []ScaleRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tprocs\tBASIC\tP+CW")
	last := ""
	for _, r := range rows {
		name := r.Workload
		if name == last {
			name = ""
		} else {
			last = r.Workload
		}
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.3f\n", name, r.Procs, r.Basic, r.PCW)
	}
	tw.Flush()
}

// CostRow relates one combination's performance gain to the storage it
// adds — the companion technical report's cost/performance trade-off,
// computed for one workload.
type CostRow struct {
	Protocol  string
	Relative  float64 // execution time / BASIC's
	ExtraBits int64   // storage added per node over BASIC
	// GainPerKbit is the percentage-point execution-time reduction bought
	// per kilobit of added state (0 when nothing was added).
	GainPerKbit float64
}

// CostPerformance runs every combination on the named workload and prices
// its gain against its storage cost. Geometry: a 16-KB SLC (512 frames)
// and 1 MB of local memory (32 K blocks).
func CostPerformance(o Options, workloadName string) ([]CostRow, error) {
	const slcFrames, memBlocks = 512, 1 << 15
	s := o.scheduler()
	baseCfg := o.config(workloadName)
	basePend := s.Submit(baseCfg)
	type cell struct {
		c    Combo
		cfg  ccsim.Config
		pend *Pending
	}
	var grid []cell
	for _, c := range Combos() {
		cfg := o.config(workloadName)
		cfg.Extensions = c.Ext
		grid = append(grid, cell{c, cfg, s.Submit(cfg)})
	}
	base, err := basePend.Wait()
	if err != nil {
		return nil, err
	}
	baseBits := ccsim.ComputeStorage(baseCfg, slcFrames, memBlocks)
	var rows []CostRow
	for _, g := range grid {
		r, err := g.pend.Wait()
		if err != nil {
			return nil, fmt.Errorf("cost %s/%s: %w", workloadName, g.c.Name, err)
		}
		extra := ccsim.ComputeStorage(g.cfg, slcFrames, memBlocks).ExtraBitsOver(baseBits)
		row := CostRow{
			Protocol:  g.c.Name,
			Relative:  r.RelativeTo(base),
			ExtraBits: extra,
		}
		if extra > 0 {
			row.GainPerKbit = 100 * (1 - row.Relative) / (float64(extra) / 1024)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FprintCost renders the cost/performance table.
func FprintCost(w io.Writer, workloadName string, rows []CostRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "protocol\trelative (%s)\textra bits/node\tgain %%/kbit\n", workloadName)
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%d\t%.2f\n", r.Protocol, r.Relative, r.ExtraBits, r.GainPerKbit)
	}
	tw.Flush()
}
