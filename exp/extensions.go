package exp

import (
	"fmt"
	"io"
	"text/tabwriter"

	"ccsim"
)

// The studies in this file go beyond the paper's evaluation: they exercise
// design axes the paper's framework invites but does not sweep — directory
// organization, cache associativity, and machine size. DESIGN.md lists them
// as extension experiments.

// DirRow compares directory organizations for one workload under the best
// RC combination (P+CW) and under BASIC.
type DirRow struct {
	Workload   string
	Pointers   int // 0 = full map
	Basic      float64
	PCW        float64
	Overflows  uint64
	Broadcasts uint64
	// Faulted marks a row whose BASIC run produced no Result, so the
	// overflow and broadcast counts are meaningless (the relative columns
	// carry NaN on their own).
	Faulted bool
}

// DirPointerSweep lists the directory organizations DirectoryStudy sweeps:
// the paper's full map plus Dir4B, Dir2B and Dir1B limited-pointer
// directories.
var DirPointerSweep = []int{0, 4, 2, 1}

// DirectoryStudy sweeps limited-pointer directories: execution time
// relative to the full-map BASIC of the same workload, plus overflow and
// broadcast counts.
func DirectoryStudy(o Options) ([]DirRow, error) {
	s := o.scheduler()
	type cell struct {
		wl         string
		ptrs       int
		basic, pcw *Pending
	}
	var grid []cell
	for _, wl := range ccsim.Workloads() {
		for _, ptrs := range DirPointerSweep {
			submit := func(e ccsim.Ext) *Pending {
				cfg := o.config(wl)
				cfg.Extensions = e
				cfg.DirPointers = ptrs
				return s.Submit(cfg)
			}
			grid = append(grid, cell{wl, ptrs,
				submit(ccsim.Ext{}), submit(ccsim.Ext{P: true, CW: true})})
		}
	}
	var rows []DirRow
	var fullBasic *ccsim.Result
	for i, g := range grid {
		basic, pcw := g.basic.Cell(), g.pcw.Cell()
		if i%len(DirPointerSweep) == 0 {
			fullBasic = basic
		}
		row := DirRow{
			Workload: g.wl,
			Pointers: g.ptrs,
			Basic:    relCell(basic, fullBasic),
			PCW:      relCell(pcw, fullBasic),
			Faulted:  basic == nil,
		}
		if basic != nil {
			row.Overflows = basic.PointerOverflows
			row.Broadcasts = basic.BroadcastInvs
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FprintDirectory renders the directory study.
func FprintDirectory(w io.Writer, rows []DirRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tdirectory\tBASIC\tP+CW\toverflows\tbroadcasts")
	last := ""
	for _, r := range rows {
		name := r.Workload
		if name == last {
			name = ""
		} else {
			last = r.Workload
		}
		dir := "full map"
		if r.Pointers > 0 {
			dir = fmt.Sprintf("Dir%dB", r.Pointers)
		}
		counts := fmt.Sprintf("%d\t%d", r.Overflows, r.Broadcasts)
		if r.Faulted {
			counts = "FAULT\tFAULT"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n",
			name, dir, cellf("%.3f", r.Basic), cellf("%.3f", r.PCW), counts)
	}
	tw.Flush()
}

// AssocRow compares SLC associativities at a fixed 16-KB capacity.
type AssocRow struct {
	Workload string
	Ways     int
	Basic    float64 // relative to 1-way BASIC
	P        float64
}

// AssocWays lists the associativities AssociativityStudy sweeps.
var AssocWays = []int{1, 2, 4}

// AssociativityStudy sweeps the 16-KB SLC's associativity: the paper uses
// direct-mapped caches; associativity absorbs the conflict misses that
// prefetching otherwise hides.
func AssociativityStudy(o Options) ([]AssocRow, error) {
	s := o.scheduler()
	type cell struct {
		wl       string
		ways     int
		basic, p *Pending
	}
	var grid []cell
	for _, wl := range ccsim.Workloads() {
		for _, ways := range AssocWays {
			submit := func(e ccsim.Ext) *Pending {
				cfg := o.config(wl)
				cfg.Extensions = e
				cfg.SLCBlocks = 512 // 16 KB
				cfg.SLCWays = ways
				return s.Submit(cfg)
			}
			grid = append(grid, cell{wl, ways,
				submit(ccsim.Ext{}), submit(ccsim.Ext{P: true})})
		}
	}
	var rows []AssocRow
	var base *ccsim.Result
	for i, g := range grid {
		basic, p := g.basic.Cell(), g.p.Cell()
		if i%len(AssocWays) == 0 {
			base = basic
		}
		rows = append(rows, AssocRow{
			Workload: g.wl,
			Ways:     g.ways,
			Basic:    relCell(basic, base),
			P:        relCell(p, base),
		})
	}
	return rows, nil
}

// FprintAssoc renders the associativity study.
func FprintAssoc(w io.Writer, rows []AssocRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tways\tBASIC\tP")
	last := ""
	for _, r := range rows {
		name := r.Workload
		if name == last {
			name = ""
		} else {
			last = r.Workload
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\n", name, r.Ways,
			cellf("%.3f", r.Basic), cellf("%.3f", r.P))
	}
	tw.Flush()
}

// ScaleRow reports one workload's execution time at a machine size, for
// BASIC and P+CW, normalized to the 4-processor BASIC run of the same
// workload (smaller is better; perfect scaling would quarter per step).
type ScaleRow struct {
	Workload string
	Procs    int
	Basic    float64
	PCW      float64
}

// ScaleProcs lists the machine sizes ScalingStudy sweeps.
var ScaleProcs = []int{4, 8, 16, 32}

// ScalingStudy sweeps the processor count at a fixed problem size (strong
// scaling). The combined extensions should keep their advantage as the
// machine grows — communication grows with sharing, which is exactly what
// P and CW attack.
func ScalingStudy(o Options) ([]ScaleRow, error) {
	s := o.scheduler()
	type cell struct {
		wl         string
		procs      int
		basic, pcw *Pending
	}
	var grid []cell
	for _, wl := range ccsim.Workloads() {
		for _, procs := range ScaleProcs {
			submit := func(e ccsim.Ext) *Pending {
				cfg := o.config(wl)
				cfg.Procs = procs
				cfg.Extensions = e
				return s.Submit(cfg)
			}
			grid = append(grid, cell{wl, procs,
				submit(ccsim.Ext{}), submit(ccsim.Ext{P: true, CW: true})})
		}
	}
	var rows []ScaleRow
	var base *ccsim.Result
	for i, g := range grid {
		basic, pcw := g.basic.Cell(), g.pcw.Cell()
		if i%len(ScaleProcs) == 0 {
			base = basic
		}
		rows = append(rows, ScaleRow{
			Workload: g.wl,
			Procs:    g.procs,
			Basic:    relCell(basic, base),
			PCW:      relCell(pcw, base),
		})
	}
	return rows, nil
}

// FprintScaling renders the scaling study.
func FprintScaling(w io.Writer, rows []ScaleRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tprocs\tBASIC\tP+CW")
	last := ""
	for _, r := range rows {
		name := r.Workload
		if name == last {
			name = ""
		} else {
			last = r.Workload
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\n", name, r.Procs,
			cellf("%.3f", r.Basic), cellf("%.3f", r.PCW))
	}
	tw.Flush()
}

// CostRow relates one combination's performance gain to the storage it
// adds — the companion technical report's cost/performance trade-off,
// computed for one workload.
type CostRow struct {
	Protocol  string
	Relative  float64 // execution time / BASIC's
	ExtraBits int64   // storage added per node over BASIC
	// GainPerKbit is the percentage-point execution-time reduction bought
	// per kilobit of added state (0 when nothing was added).
	GainPerKbit float64
}

// CostPerformance runs every combination on the named workload and prices
// its gain against its storage cost. Geometry: a 16-KB SLC (512 frames)
// and 1 MB of local memory (32 K blocks).
func CostPerformance(o Options, workloadName string) ([]CostRow, error) {
	const slcFrames, memBlocks = 512, 1 << 15
	s := o.scheduler()
	baseCfg := o.config(workloadName)
	basePend := s.Submit(baseCfg)
	type cell struct {
		c    Combo
		cfg  ccsim.Config
		pend *Pending
	}
	var grid []cell
	for _, c := range Combos() {
		cfg := o.config(workloadName)
		cfg.Extensions = c.Ext
		grid = append(grid, cell{c, cfg, s.Submit(cfg)})
	}
	base := basePend.Cell()
	baseBits := ccsim.ComputeStorage(baseCfg, slcFrames, memBlocks)
	var rows []CostRow
	for _, g := range grid {
		r := g.pend.Cell()
		// The storage side is pure arithmetic: it stays meaningful even
		// when the run behind the performance side faulted.
		extra := ccsim.ComputeStorage(g.cfg, slcFrames, memBlocks).ExtraBitsOver(baseBits)
		row := CostRow{
			Protocol:  g.c.Name,
			Relative:  relCell(r, base),
			ExtraBits: extra,
		}
		if extra > 0 {
			row.GainPerKbit = 100 * (1 - row.Relative) / (float64(extra) / 1024)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FprintCost renders the cost/performance table.
func FprintCost(w io.Writer, workloadName string, rows []CostRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "protocol\trelative (%s)\textra bits/node\tgain %%/kbit\n", workloadName)
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\n", r.Protocol,
			cellf("%.3f", r.Relative), r.ExtraBits, cellf("%.2f", r.GainPerKbit))
	}
	tw.Flush()
}
