package exp

import (
	"fmt"
	"io"
	"text/tabwriter"

	"ccsim"
)

// SensRow compares a protocol's execution time under a constrained
// configuration against the paper's default, both relative to the
// constrained BASIC.
type SensRow struct {
	Workload string
	Protocol string
	Default  float64 // relative exec time, default configuration
	Limited  float64 // relative exec time, constrained configuration
}

// SensBuffers reproduces §5.4's buffer study: FLWB and SLWB shrunk to 4
// entries each under RC. The paper finds only BASIC and P suffer (pending
// writes); CW, M and their combinations are unaffected.
func SensBuffers(o Options) ([]SensRow, error) {
	return sensitivity(o, func(cfg *ccsim.Config) {
		cfg.FLWBEntries = 4
		cfg.SLWBEntries = 4
	})
}

// SensCache reproduces §5.4's cache study: a finite 16-KB direct-mapped SLC
// (512 blocks of 32 B). The paper finds the gains persist and P gets even
// better (replacement misses).
func SensCache(o Options) ([]SensRow, error) {
	return sensitivity(o, func(cfg *ccsim.Config) {
		cfg.SLCBlocks = 512
	})
}

func sensitivity(o Options, constrain func(*ccsim.Config)) ([]SensRow, error) {
	s := o.scheduler()
	type cell struct {
		wl       string
		c        Combo
		def, lim *Pending
	}
	var grid []cell
	for _, wl := range ccsim.Workloads() {
		for _, c := range Combos() {
			defCfg := o.config(wl)
			defCfg.Extensions = c.Ext
			limCfg := o.config(wl)
			limCfg.Extensions = c.Ext
			constrain(&limCfg)
			// The default half of every pair is Figure 2's grid; under a
			// shared scheduler both sensitivity studies reuse those runs.
			grid = append(grid, cell{wl, c, s.Submit(defCfg), s.Submit(limCfg)})
		}
	}
	var rows []SensRow
	var defBase, limBase *ccsim.Result
	for i, g := range grid {
		def, lim := g.def.Cell(), g.lim.Cell()
		if i%len(Combos()) == 0 {
			defBase, limBase = def, lim
		}
		rows = append(rows, SensRow{
			Workload: g.wl,
			Protocol: g.c.Name,
			Default:  relCell(def, defBase),
			Limited:  relCell(lim, limBase),
		})
	}
	return rows, nil
}

// FprintSens renders a sensitivity comparison.
func FprintSens(w io.Writer, rows []SensRow, limitedLabel string) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "workload\tprotocol\tdefault\t%s\n", limitedLabel)
	last := ""
	for _, r := range rows {
		name := r.Workload
		if name == last {
			name = ""
		} else {
			last = r.Workload
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", name, r.Protocol,
			cellf("%.3f", r.Default), cellf("%.3f", r.Limited))
	}
	tw.Flush()
}

// FprintTable1 renders the paper's Table 1 hardware-cost inventory.
func FprintTable1(w io.Writer, procs int) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "protocol\tSLC state bits/line\tadditional mechanisms\tSLWB features\tmemory bits/line")
	for _, row := range ccsim.CostTable(procs) {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\n",
			row.Protocol, row.SLCStateBitsPerLine, row.ExtraCacheMechanisms,
			row.SLWBNote, row.MemoryBitsPerLine)
	}
	tw.Flush()
}
