package exp

import (
	"encoding/json"
	"fmt"
	"testing"

	"ccsim"
)

// schedGrid is a small but representative run grid: two workloads crossed
// with protocol combinations, consistency models and both networks.
func schedGrid() []ccsim.Config {
	var grid []ccsim.Config
	o := tiny()
	for _, wl := range []string{"mp3d", "ocean"} {
		for _, c := range Combos()[:4] {
			cfg := o.config(wl)
			cfg.Extensions = c.Ext
			grid = append(grid, cfg)

			mesh := cfg
			mesh.Net = ccsim.Mesh
			grid = append(grid, mesh)
		}
		sc := o.config(wl)
		sc.SC = true
		grid = append(grid, sc)
	}
	return grid
}

// TestSchedulerDeterminism is the parallelism regression gate: the same
// grid simulated at 1 worker and at 8 workers must produce byte-identical
// Result JSON for every cell.
func TestSchedulerDeterminism(t *testing.T) {
	grid := schedGrid()
	collect := func(jobs int) [][]byte {
		s := NewScheduler(jobs, "")
		pends := make([]*Pending, len(grid))
		for i, cfg := range grid {
			pends[i] = s.Submit(cfg)
		}
		out := make([][]byte, len(grid))
		for i, p := range pends {
			r, err := p.Wait()
			if err != nil {
				t.Fatalf("jobs=%d cell %d: %v", jobs, i, err)
			}
			b, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = b
		}
		return out
	}
	seq := collect(1)
	par := collect(8)
	for i := range grid {
		if string(seq[i]) != string(par[i]) {
			t.Errorf("cell %d (%s): -jobs 1 and -jobs 8 results differ\nseq: %s\npar: %s",
				i, grid[i].Workload, seq[i], par[i])
		}
	}
}

// TestSchedulerDedup checks the run cache: resubmitting a configuration
// returns the original handle, and equivalent-but-not-identical
// configurations (explicit defaults) share one run.
func TestSchedulerDedup(t *testing.T) {
	s := NewScheduler(2, "")
	cfg := tiny().config("mp3d")
	p1 := s.Submit(cfg)
	p2 := s.Submit(cfg)
	if p1 != p2 {
		t.Fatal("identical configs got distinct runs")
	}
	// Scale 0 means 1.0 inside ccsim.Run; the fingerprint must agree.
	a, b := cfg, cfg
	a.Scale, b.Scale = 0, 1.0
	ka, oka := Fingerprint(a)
	kb, okb := Fingerprint(b)
	if !oka || !okb || ka != kb {
		t.Fatalf("scale 0 and 1.0 fingerprints differ: %q vs %q", ka, kb)
	}
	other := cfg
	other.Extensions = ccsim.Ext{P: true}
	if s.Submit(other) == p1 {
		t.Fatal("distinct configs shared a run")
	}
	if got := s.Unique(); got != 2 {
		t.Fatalf("Unique() = %d after 2 distinct configs", got)
	}
	if _, err := p1.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerSharedAcrossExperiments verifies the cross-experiment reuse
// the -exp all path relies on: Table 2's grid is a subset of Figure 2's,
// so running Table 2 after Figure 2 on a shared scheduler adds no runs.
func TestSchedulerSharedAcrossExperiments(t *testing.T) {
	o := tiny()
	o.Sched = NewScheduler(4, "")
	if _, err := Figure2(o); err != nil {
		t.Fatal(err)
	}
	after2 := o.Sched.Unique()
	if _, err := Table2(o); err != nil {
		t.Fatal(err)
	}
	if got := o.Sched.Unique(); got != after2 {
		t.Fatalf("Table2 added %d runs beyond Figure2's grid", got-after2)
	}
	// Figure 4 shares the full RC grid too.
	if _, err := Figure4(o); err != nil {
		t.Fatal(err)
	}
	if got := o.Sched.Unique(); got != after2 {
		t.Fatalf("Figure4 added %d runs beyond Figure2's grid", got-after2)
	}
}

// TestSchedulerUncacheable checks that configurations with side channels
// run once per submission instead of hitting the cache.
func TestSchedulerUncacheable(t *testing.T) {
	cfg := tiny().config("mp3d")
	cfg.TraceWriter = discard{}
	if _, ok := Fingerprint(cfg); ok {
		t.Fatal("config with TraceWriter fingerprinted as cacheable")
	}
	probed := tiny().config("mp3d")
	probed.Progress = &ccsim.Progress{}
	if _, ok := Fingerprint(probed); ok {
		t.Fatal("config with Progress probe fingerprinted as cacheable")
	}
	checked := tiny().config("mp3d")
	checked.Check = ccsim.NewChecker()
	if _, ok := Fingerprint(checked); ok {
		t.Fatal("config with live checker fingerprinted as cacheable")
	}
	s := NewScheduler(2, "")
	if s.Submit(cfg) == s.Submit(cfg) {
		t.Fatal("uncacheable submissions shared a run")
	}
	if got := s.Unique(); got != 0 {
		t.Fatalf("uncacheable runs counted as unique: %d", got)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// TestFingerprintCoversConfig guards the fingerprint against new Config
// fields silently aliasing distinct runs: every field that changes a
// simulation must change the key.
func TestFingerprintCoversConfig(t *testing.T) {
	base := tiny().config("mp3d")
	mutants := []func(*ccsim.Config){
		func(c *ccsim.Config) { c.Workload = "ocean" },
		func(c *ccsim.Config) { c.Scale = 0.5 },
		func(c *ccsim.Config) { c.Procs = 4 },
		func(c *ccsim.Config) { c.Extensions.P = true },
		func(c *ccsim.Config) { c.Extensions.M = true },
		func(c *ccsim.Config) { c.Extensions.CW = true },
		func(c *ccsim.Config) { c.SC = true },
		func(c *ccsim.Config) { c.Net = ccsim.Mesh },
		func(c *ccsim.Config) { c.LinkBits = 16 },
		func(c *ccsim.Config) { c.SLCBlocks = 512 },
		func(c *ccsim.Config) { c.SLCWays = 2 },
		func(c *ccsim.Config) { c.FLWBEntries = 4 },
		func(c *ccsim.Config) { c.SLWBEntries = 4 },
		func(c *ccsim.Config) { c.PrefetchMaxK = 3 },
		func(c *ccsim.Config) { c.CWThreshold = 5 },
		func(c *ccsim.Config) { c.WriteCacheBlocks = 8 },
		func(c *ccsim.Config) { c.PrefetchNackDirty = true },
		func(c *ccsim.Config) { c.DirPointers = 4 },
		func(c *ccsim.Config) { c.VerifyData = true },
		// Watchdog limits and fault injection change whether a run
		// completes, so they must key the cache. (FlightRecorder is
		// deliberately absent: recorder depth never changes a Result.)
		func(c *ccsim.Config) { c.MaxEvents = 1000 },
		func(c *ccsim.Config) { c.Deadline = 1000 },
		func(c *ccsim.Config) { c.NoProgressEvents = 1000 },
		func(c *ccsim.Config) { c.FaultInject = "mp3d/BASIC" },
	}
	baseKey, ok := Fingerprint(base)
	if !ok {
		t.Fatal("base config not cacheable")
	}
	seen := map[string]int{baseKey: -1}
	for i, mut := range mutants {
		cfg := base
		mut(&cfg)
		key, ok := Fingerprint(cfg)
		if !ok {
			t.Fatalf("mutant %d not cacheable", i)
		}
		if prev, dup := seen[key]; dup {
			t.Fatalf("mutant %d aliases mutant %d: %q", i, prev, key)
		}
		seen[key] = i
	}
}

// TestSchedulerStats drives a small grid through the scheduler and checks
// the counters the ops plane exports: every Submit is accounted, dedup
// hits are split out, and the scheduler ends drained (nothing queued or
// running, everything completed).
func TestSchedulerStats(t *testing.T) {
	s := NewScheduler(2, "")
	o := tiny()
	var pends []*Pending
	for _, wl := range []string{"mp3d", "ocean"} {
		for _, c := range Combos()[:2] {
			cfg := o.config(wl)
			cfg.Extensions = c.Ext
			pends = append(pends, s.Submit(cfg))
			pends = append(pends, s.Submit(cfg)) // dedup hit
		}
	}
	for _, p := range pends {
		if _, err := p.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Submitted != 8 {
		t.Fatalf("Submitted = %d, want 8", st.Submitted)
	}
	if st.Unique != 4 || st.DedupHits != 4 {
		t.Fatalf("Unique/DedupHits = %d/%d, want 4/4", st.Unique, st.DedupHits)
	}
	if st.Completed != 4 || st.Failed != 0 {
		t.Fatalf("Completed/Failed = %d/%d, want 4/0", st.Completed, st.Failed)
	}
	if st.Queued != 0 || st.Running != 0 {
		t.Fatalf("drained scheduler still shows queued=%d running=%d", st.Queued, st.Running)
	}
	if n := len(s.LiveRuns()); n != 0 {
		t.Fatalf("drained scheduler still lists %d live runs", n)
	}
}

// TestSchedulerLiveRuns holds the worker pool on a caller-controlled run
// and checks the live registry names it with an advancing probe, then
// empties on completion.
func TestSchedulerLiveRuns(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	old := runSim
	runSim = func(cfg ccsim.Config) (*ccsim.Result, error) {
		// Simulate probe traffic the way the engine would.
		if cfg.Progress == nil {
			t.Error("scheduler did not attach a Progress probe")
		}
		close(started)
		<-release
		return &ccsim.Result{Workload: cfg.Workload}, nil
	}
	defer func() { runSim = old }()

	s := NewScheduler(1, "")
	cfg := tiny().config("mp3d")
	cfg.Extensions = ccsim.Ext{P: true}
	p := s.Submit(cfg)
	<-started

	live := s.LiveRuns()
	if len(live) != 1 {
		t.Fatalf("LiveRuns() = %d entries, want 1", len(live))
	}
	lr := live[0]
	if lr.Workload != "mp3d" || lr.Protocol != "P" {
		t.Fatalf("live run identity = %s/%s", lr.Workload, lr.Protocol)
	}
	if lr.Progress == nil || lr.Progress.Label != "mp3d/P" {
		t.Fatalf("live run probe missing or mislabelled: %+v", lr.Progress)
	}
	if st := s.Stats(); st.Running != 1 {
		t.Fatalf("Stats().Running = %d with a held run", st.Running)
	}
	close(release)
	if _, err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if n := len(s.LiveRuns()); n != 0 {
		t.Fatalf("registry kept %d entries after completion", n)
	}
	if st := s.Stats(); st.Completed != 1 || st.Running != 0 {
		t.Fatalf("post-run stats = %+v", st)
	}
}

// TestSchedulerStatsFailed checks the failure counter matches the ledger.
func TestSchedulerStatsFailed(t *testing.T) {
	old := runSim
	runSim = func(cfg ccsim.Config) (*ccsim.Result, error) {
		return nil, fmt.Errorf("boom %s", cfg.Workload)
	}
	defer func() { runSim = old }()
	s := NewScheduler(2, "")
	if _, err := s.Submit(tiny().config("mp3d")).Wait(); err == nil {
		t.Fatal("stubbed failure did not surface")
	}
	st := s.Stats()
	if st.Failed != 1 || st.Completed != 0 {
		t.Fatalf("Failed/Completed = %d/%d, want 1/0", st.Failed, st.Completed)
	}
	if len(s.Failed()) != 1 {
		t.Fatalf("ledger holds %d entries", len(s.Failed()))
	}
}

// TestCheckedSweepRuns pins Options.Check end to end: the option attaches a
// live checker to every generated config, checked submissions bypass the
// dedup cache, and a clean workload passes under the checker through the
// scheduler path.
func TestCheckedSweepRuns(t *testing.T) {
	o := tiny()
	o.Check = true
	cfg := o.config("mp3d")
	if cfg.Check == nil {
		t.Fatal("Options.Check did not attach a checker")
	}
	s := NewScheduler(2, "")
	a, b := s.Submit(cfg), s.Submit(cfg)
	if a == b {
		t.Fatal("checked submissions shared a run")
	}
	for _, p := range []*Pending{a, b} {
		if _, err := p.Wait(); err != nil {
			t.Fatalf("checked run failed: %v", err)
		}
	}
}
