package ccsim_test

import (
	"strings"
	"testing"

	"ccsim"
)

// TestRunRecoversInjectedPanic drives the whole fault-containment path: a
// deliberately injected panic must come back from Run as a structured
// *SimFault carrying stack, snapshot and flight-recorder tail — never as a
// process crash.
func TestRunRecoversInjectedPanic(t *testing.T) {
	cfg := tinyCfg("mp3d")
	cfg.FaultInject = "mp3d/BASIC"
	r, err := ccsim.Run(cfg)
	if err == nil || r != nil {
		t.Fatalf("injected panic produced result %v, err %v", r, err)
	}
	f, ok := ccsim.AsFault(err)
	if !ok {
		t.Fatalf("error is not a *SimFault: %v", err)
	}
	if f.Kind != ccsim.FaultPanic {
		t.Fatalf("fault kind %q, want %q", f.Kind, ccsim.FaultPanic)
	}
	if !strings.Contains(f.Message, "deliberate fault injection") {
		t.Errorf("fault message lost the panic value: %q", f.Message)
	}
	if len(f.Stack) == 0 {
		t.Error("panic fault carries no stack")
	}
	if f.Snapshot == nil {
		t.Fatal("panic fault carries no snapshot")
	}
	if f.Snapshot.MessagesSeen == 0 || len(f.Snapshot.Messages) == 0 {
		t.Errorf("flight recorder empty at fault: seen %d, tail %d",
			f.Snapshot.MessagesSeen, len(f.Snapshot.Messages))
	}
	var sb strings.Builder
	f.Dump(&sb)
	if !strings.Contains(sb.String(), "flight recorder") {
		t.Error("Dump does not render the flight recorder")
	}
}

// TestFaultInjectMatchesIdentity checks the injection key is precise: a
// key naming a different protocol must leave the run untouched.
func TestFaultInjectMatchesIdentity(t *testing.T) {
	cfg := tinyCfg("mp3d")
	cfg.FaultInject = "mp3d/P+CW" // this run is mp3d/BASIC
	if _, err := ccsim.Run(cfg); err != nil {
		t.Fatalf("non-matching FaultInject key affected the run: %v", err)
	}
}

// TestDeadlockAborts runs the classic ABBA lock cycle: processor 0 takes
// lock A then wants B, processor 1 takes B then wants A. The watchdog must
// abort with a deadlock SimFault naming both stuck processors instead of
// hanging (or running into its event ceiling).
func TestDeadlockAborts(t *testing.T) {
	const lockA, lockB = 0, 4096
	cfg := ccsim.DefaultConfig()
	cfg.Procs = 2
	cfg.MaxEvents = 1_000_000 // backstop: the test must never hang
	streams := []ccsim.Stream{
		ccsim.Ops(
			ccsim.Op{Kind: ccsim.StatsOn},
			ccsim.Op{Kind: ccsim.Acquire, Addr: lockA},
			ccsim.Op{Kind: ccsim.Busy, Cycles: 500},
			ccsim.Op{Kind: ccsim.Acquire, Addr: lockB},
		),
		ccsim.Ops(
			ccsim.Op{Kind: ccsim.StatsOn},
			ccsim.Op{Kind: ccsim.Acquire, Addr: lockB},
			ccsim.Op{Kind: ccsim.Busy, Cycles: 500},
			ccsim.Op{Kind: ccsim.Acquire, Addr: lockA},
		),
	}
	_, err := ccsim.RunStreams(cfg, streams)
	if err == nil {
		t.Fatal("ABBA deadlock completed successfully")
	}
	f, ok := ccsim.AsFault(err)
	if !ok {
		t.Fatalf("deadlock error is not a *SimFault: %v", err)
	}
	if f.Kind != ccsim.FaultDeadlock {
		t.Fatalf("fault kind %q, want %q (err: %v)", f.Kind, ccsim.FaultDeadlock, err)
	}
	for _, agent := range []string{"proc 0", "proc 1"} {
		if !strings.Contains(f.Message, agent) {
			t.Errorf("deadlock fault does not name %s: %q", agent, f.Message)
		}
	}
	if !strings.Contains(f.Message, "waiting for lock") {
		t.Errorf("deadlock fault does not name the locks: %q", f.Message)
	}
}

// TestMaxEventsAborts checks Config.MaxEvents: a ceiling far below the
// workload's needs must abort with a max-events fault, and the identical
// configuration without the ceiling must pass — tight-but-sufficient
// limits never fire (the chaos test runs whole sweeps under them).
func TestMaxEventsAborts(t *testing.T) {
	cfg := tinyCfg("mp3d")
	cfg.MaxEvents = 2_000
	_, err := ccsim.Run(cfg)
	f, ok := ccsim.AsFault(err)
	if !ok || f.Kind != ccsim.FaultMaxEvents {
		t.Fatalf("err = %v, want a %s fault", err, ccsim.FaultMaxEvents)
	}
	cfg.MaxEvents = 0
	if _, err := ccsim.Run(tinyCfg("mp3d")); err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
}

// TestDeadlineAborts checks Config.Deadline maps to the watchdog's
// simulated-time ceiling.
func TestDeadlineAborts(t *testing.T) {
	cfg := tinyCfg("mp3d")
	cfg.Deadline = 100 // pclocks: far too early
	_, err := ccsim.Run(cfg)
	f, ok := ccsim.AsFault(err)
	if !ok || f.Kind != ccsim.FaultDeadline {
		t.Fatalf("err = %v, want a %s fault", err, ccsim.FaultDeadline)
	}
}
