package ccsim

import (
	"errors"

	"ccsim/internal/fault"
)

// SimFault is the structured simulation failure Run returns when a run
// crashes or the watchdog aborts it: simulated time, faulting component,
// the protocol message being handled, the panic stack, and a diagnostic
// snapshot (pending transactions, directory state, blocked agents, flight
// recorder). Its Dump method renders the full report.
type SimFault = fault.SimFault

// Fault kinds a SimFault carries (SimFault.Kind).
const (
	FaultPanic     = fault.KindPanic
	FaultMaxEvents = fault.KindMaxEvents
	FaultDeadline  = fault.KindDeadline
	FaultDeadlock  = fault.KindDeadlock
	FaultLivelock  = fault.KindLivelock
	// FaultInvariant is the live coherence checker (Config.Check): a
	// shadow-state invariant failed at the protocol transition that broke
	// it.
	FaultInvariant = fault.KindInvariant
	// FaultCanceled is a cooperative shutdown (Config.Cancel): the run was
	// asked to stop and aborted cleanly at the next event batch.
	FaultCanceled = fault.KindCanceled
)

// AsFault extracts the *SimFault from an error returned by Run (directly
// or wrapped), if there is one.
func AsFault(err error) (*SimFault, bool) {
	var f *SimFault
	if errors.As(err, &f) {
		return f, true
	}
	return nil, false
}
