package ccsim_test

import (
	"strings"
	"testing"

	"ccsim"
)

func tinyCfg(wl string) ccsim.Config {
	cfg := ccsim.DefaultConfig()
	cfg.Workload = wl
	cfg.Scale = 0.08
	cfg.Procs = 8
	return cfg
}

func TestRunAllWorkloads(t *testing.T) {
	for _, wl := range ccsim.Workloads() {
		r, err := ccsim.Run(tinyCfg(wl))
		if err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
		if r.ExecTime <= 0 || r.Reads == 0 {
			t.Fatalf("%s: empty result %+v", wl, r)
		}
		if r.Workload != wl || r.Protocol != "BASIC" {
			t.Fatalf("%s: labels wrong: %s/%s", wl, r.Workload, r.Protocol)
		}
	}
}

func TestRunRequiresWorkload(t *testing.T) {
	cfg := ccsim.DefaultConfig()
	if _, err := ccsim.Run(cfg); err == nil {
		t.Fatal("Run without workload succeeded")
	}
	cfg.Workload = "no-such-kernel"
	if _, err := ccsim.Run(cfg); err == nil {
		t.Fatal("Run with unknown workload succeeded")
	}
}

func TestCWUnderSCIsRejected(t *testing.T) {
	cfg := tinyCfg("ocean")
	cfg.SC = true
	cfg.Extensions = ccsim.Ext{CW: true}
	_, err := ccsim.Run(cfg)
	if err == nil || !strings.Contains(err.Error(), "sequential consistency") {
		t.Fatalf("CW under SC not rejected: %v", err)
	}
}

func TestProtocolNames(t *testing.T) {
	cases := []struct {
		ext  ccsim.Ext
		sc   bool
		want string
	}{
		{ccsim.Ext{}, false, "BASIC"},
		{ccsim.Ext{P: true}, false, "P"},
		{ccsim.Ext{CW: true}, false, "CW"},
		{ccsim.Ext{M: true}, true, "M-SC"},
		{ccsim.Ext{P: true, CW: true}, false, "P+CW"},
		{ccsim.Ext{P: true, M: true}, false, "P+M"},
		{ccsim.Ext{CW: true, M: true}, false, "CW+M"},
		{ccsim.Ext{P: true, CW: true, M: true}, false, "P+CW+M"},
	}
	for _, c := range cases {
		cfg := ccsim.DefaultConfig()
		cfg.Extensions = c.ext
		cfg.SC = c.sc
		if got := cfg.ProtocolName(); got != c.want {
			t.Errorf("ProtocolName(%+v, sc=%v) = %q, want %q", c.ext, c.sc, got, c.want)
		}
	}
}

func TestDeterministicResults(t *testing.T) {
	cfg := tinyCfg("cholesky")
	cfg.Extensions = ccsim.Ext{P: true, M: true}
	a, err := ccsim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ccsim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.ExecTime != b.ExecTime || a.TrafficBytes != b.TrafficBytes ||
		a.ColdMisses != b.ColdMisses || a.PrefetchesIssued != b.PrefetchesIssued {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestRunStreamsCustomWorkload(t *testing.T) {
	cfg := ccsim.DefaultConfig()
	cfg.Procs = 2
	streams := []ccsim.Stream{
		ccsim.Ops(
			ccsim.Op{Kind: ccsim.StatsOn},
			ccsim.Op{Kind: ccsim.Write, Addr: 0},
			ccsim.Op{Kind: ccsim.Barrier, Bar: 0},
		),
		ccsim.Ops(
			ccsim.Op{Kind: ccsim.StatsOn},
			ccsim.Op{Kind: ccsim.Barrier, Bar: 0},
			ccsim.Op{Kind: ccsim.Read, Addr: 0},
		),
	}
	r, err := ccsim.RunStreams(cfg, streams)
	if err != nil {
		t.Fatal(err)
	}
	if r.Reads != 1 || r.Writes != 1 {
		t.Fatalf("reads=%d writes=%d", r.Reads, r.Writes)
	}
	// The read crossed the barrier after the write: coherence-correct and a
	// cold miss for the reader.
	if r.ColdMisses != 1 {
		t.Fatalf("cold misses = %d", r.ColdMisses)
	}
}

func TestMissRateAccessors(t *testing.T) {
	r := &ccsim.Result{Reads: 200, ColdMisses: 10, CoherenceMisses: 4, ReplacementMisses: 2}
	if r.ColdMissRate() != 5.0 {
		t.Fatalf("ColdMissRate = %v", r.ColdMissRate())
	}
	if r.CoherenceMissRate() != 2.0 {
		t.Fatalf("CoherenceMissRate = %v", r.CoherenceMissRate())
	}
	if r.ReplacementMissRate() != 1.0 {
		t.Fatalf("ReplacementMissRate = %v", r.ReplacementMissRate())
	}
	empty := &ccsim.Result{}
	if empty.ColdMissRate() != 0 {
		t.Fatal("zero-read rate not 0")
	}
}

func TestRelativeHelpers(t *testing.T) {
	base := &ccsim.Result{ExecTime: 1000, TrafficBytes: 500}
	r := &ccsim.Result{ExecTime: 800, TrafficBytes: 750}
	if r.RelativeTo(base) != 0.8 {
		t.Fatalf("RelativeTo = %v", r.RelativeTo(base))
	}
	if r.TrafficRelativeTo(base) != 1.5 {
		t.Fatalf("TrafficRelativeTo = %v", r.TrafficRelativeTo(base))
	}
}

func TestCostTable(t *testing.T) {
	rows := ccsim.CostTable(16)
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Protocol != "BASIC" || !strings.Contains(rows[0].MemoryBitsPerLine, "16 presence bits") {
		t.Fatalf("BASIC row wrong: %+v", rows[0])
	}
}

func TestMeshConfig(t *testing.T) {
	cfg := tinyCfg("ocean")
	cfg.Net = ccsim.Mesh
	cfg.LinkBits = 16
	r, err := ccsim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Network, "mesh") || !strings.Contains(r.Network, "16-bit") {
		t.Fatalf("network label %q", r.Network)
	}
}

func TestNarrowLinksSlowDown(t *testing.T) {
	exec := func(bits int) int64 {
		cfg := tinyCfg("mp3d")
		cfg.Net = ccsim.Mesh
		cfg.LinkBits = bits
		r, err := ccsim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r.ExecTime
	}
	if !(exec(16) > exec(64)) {
		t.Fatal("16-bit mesh not slower than 64-bit")
	}
}

func TestExtensionTuningKnobs(t *testing.T) {
	cfg := tinyCfg("mp3d")
	cfg.Extensions = ccsim.Ext{P: true, CW: true}
	cfg.PrefetchMaxK = 2
	cfg.CWThreshold = 4
	cfg.WriteCacheBlocks = 8
	if _, err := ccsim.Run(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.PrefetchNackDirty = true
	if _, err := ccsim.Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSCConfiguration(t *testing.T) {
	cfg := tinyCfg("water")
	cfg.SC = true
	r, err := ccsim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Protocol != "BASIC-SC" {
		t.Fatalf("protocol %q", r.Protocol)
	}
	if r.WriteStall == 0 {
		t.Fatal("no write stall under SC")
	}
	rc, err := ccsim.Run(tinyCfg("water"))
	if err != nil {
		t.Fatal(err)
	}
	if rc.ExecTime >= r.ExecTime {
		t.Fatalf("RC (%d) not faster than SC (%d)", rc.ExecTime, r.ExecTime)
	}
}

func TestWorkloadsDataVerified(t *testing.T) {
	// Every kernel, under the heaviest extension stack, with the
	// data-value invariant checked end to end.
	for _, wl := range ccsim.Workloads() {
		for _, ext := range []ccsim.Ext{{}, {P: true, CW: true, M: true}} {
			cfg := tinyCfg(wl)
			cfg.Extensions = ext
			cfg.VerifyData = true
			if _, err := ccsim.Run(cfg); err != nil {
				t.Fatalf("%s %+v: %v", wl, ext, err)
			}
		}
	}
}

func TestWorkloadsDataVerifiedUnderSC(t *testing.T) {
	for _, wl := range ccsim.Workloads() {
		cfg := tinyCfg(wl)
		cfg.SC = true
		cfg.Extensions = ccsim.Ext{P: true, M: true}
		cfg.VerifyData = true
		if _, err := ccsim.Run(cfg); err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
	}
}

func TestWorkloadsDataVerifiedFiniteAssociative(t *testing.T) {
	for _, wl := range ccsim.Workloads() {
		cfg := tinyCfg(wl)
		cfg.SLCBlocks = 64
		cfg.SLCWays = 2
		cfg.DirPointers = 2
		cfg.Extensions = ccsim.Ext{P: true, CW: true}
		cfg.VerifyData = true
		if _, err := ccsim.Run(cfg); err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
	}
}
