// Contention: the paper's §5.3 story in one program. P+CW is the best
// combination when the network has bandwidth to spare, but its extra
// traffic makes it sensitive to narrow links; P+M frees bandwidth (the
// migratory optimization removes ownership traffic) and barely notices.
// Sweep the wormhole mesh's link width and watch the crossover.
package main

import (
	"fmt"
	"log"

	"ccsim"
)

func main() {
	const workload = "mp3d" // the paper's most bandwidth-hungry application

	fmt.Printf("%s on a 4x4 wormhole mesh, execution time relative to BASIC at each width:\n\n", workload)
	fmt.Printf("%-8s %10s %10s %14s\n", "links", "P+CW", "P+M", "BASIC traffic")
	for _, bits := range []int{64, 32, 16} {
		run := func(e ccsim.Ext) *ccsim.Result {
			cfg := ccsim.DefaultConfig()
			cfg.Workload = workload
			cfg.Scale = 0.5
			cfg.Net = ccsim.Mesh
			cfg.LinkBits = bits
			cfg.Extensions = e
			r, err := ccsim.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			return r
		}
		base := run(ccsim.Ext{})
		pcw := run(ccsim.Ext{P: true, CW: true})
		pm := run(ccsim.Ext{P: true, M: true})
		fmt.Printf("%3d-bit  %10.2f %10.2f %11d B\n",
			bits, pcw.RelativeTo(base), pm.RelativeTo(base), base.TrafficBytes)
	}
	fmt.Println("\nExpect P+CW's advantage to shrink (or invert) as links narrow, while")
	fmt.Println("P+M stays nearly flat — the paper's conclusion about limited-bandwidth")
	fmt.Println("networks (§5.3, Table 3).")
}
