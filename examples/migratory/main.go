// Migratory: build a custom workload with the public Stream API — the
// classic lock-protected counter (x := x+1 in a critical section, the very
// pattern paper §3.2 attributes migratory sharing to) — and show what the
// migratory-sharing optimization does to it under sequential consistency,
// where the write penalty is exposed.
package main

import (
	"fmt"
	"log"

	"ccsim"
)

const (
	counterAddr = 0       // the shared counter's block
	lockAddr    = 1 << 20 // its lock variable, far away
	increments  = 200     // per processor
	procs       = 8
)

// counterStream produces one processor's loop of lock / read / write /
// unlock / think.
func counterStream() ccsim.Stream {
	ops := []ccsim.Op{{Kind: ccsim.StatsOn}}
	for i := 0; i < increments; i++ {
		ops = append(ops,
			ccsim.Op{Kind: ccsim.Acquire, Addr: lockAddr},
			ccsim.Op{Kind: ccsim.Read, Addr: counterAddr},
			ccsim.Op{Kind: ccsim.Write, Addr: counterAddr},
			ccsim.Op{Kind: ccsim.Release, Addr: lockAddr},
			ccsim.Op{Kind: ccsim.Busy, Cycles: 120},
		)
	}
	return ccsim.Ops(ops...)
}

func run(m bool) *ccsim.Result {
	cfg := ccsim.DefaultConfig()
	cfg.Procs = procs
	cfg.SC = true // sequential consistency exposes the write penalty M cuts
	cfg.Extensions = ccsim.Ext{M: m}
	streams := make([]ccsim.Stream, procs)
	for i := range streams {
		streams[i] = counterStream()
	}
	r, err := ccsim.RunStreams(cfg, streams)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	basic := run(false)
	mig := run(true)

	fmt.Printf("%d processors, each incrementing a lock-protected counter %d times (SC):\n\n", procs, increments)
	for _, r := range []*ccsim.Result{basic, mig} {
		n := float64(r.Procs)
		fmt.Printf("%-8s exec %8d | write stall %7.0f  acquire stall %7.0f | ownership requests %5d\n",
			r.Protocol, r.ExecTime, float64(r.WriteStall)/n, float64(r.AcquireStall)/n,
			r.OwnershipRequests)
	}
	fmt.Printf("\nmigratory detections: %d, exclusive supplies: %d\n", mig.MigDetections, mig.ExclSupplies)
	fmt.Printf("ownership requests cut by %.0f%%  (the read miss already returns an exclusive copy,\n",
		100*(1-float64(mig.OwnershipRequests)/float64(basic.OwnershipRequests)))
	fmt.Printf("so the write in the critical section hits locally)\n")
	fmt.Printf("execution time cut by %.0f%%\n", 100*(1-mig.RelativeTo(basic)))
}
