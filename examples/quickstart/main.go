// Quickstart: simulate one of the paper's workloads under the BASIC
// write-invalidate protocol and under its best extension combination, and
// compare — the smallest end-to-end use of the ccsim API.
package main

import (
	"fmt"
	"log"

	"ccsim"
)

func main() {
	// The paper's baseline machine: 16 processors, release consistency,
	// contention-free network, infinite second-level caches.
	cfg := ccsim.DefaultConfig()
	cfg.Workload = "mp3d"
	cfg.Scale = 0.5 // half-size problem; keeps this example fast

	base, err := ccsim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Add adaptive sequential prefetching plus the competitive-update
	// mechanism — the combination the paper finds best under release
	// consistency with enough network bandwidth.
	cfg.Extensions = ccsim.Ext{P: true, CW: true}
	pcw, err := ccsim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("MP3D on %d processors (%s):\n\n", base.Procs, base.Network)
	for _, r := range []*ccsim.Result{base, pcw} {
		n := float64(r.Procs)
		fmt.Printf("%-8s exec %8d pclocks | busy %7.0f  read stall %7.0f  sync %6.0f | cold %.2f%%  coherence %.2f%%\n",
			r.Protocol, r.ExecTime,
			float64(r.Busy)/n, float64(r.ReadStall)/n, float64(r.AcquireStall)/n,
			r.ColdMissRate(), r.CoherenceMissRate())
	}
	fmt.Printf("\nP+CW speedup over BASIC: %.2fx\n", 1/pcw.RelativeTo(base))
	fmt.Printf("extra network traffic:   %+.0f%%\n", 100*(pcw.TrafficRelativeTo(base)-1))
}
