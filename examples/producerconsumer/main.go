// Producerconsumer: a phase-synchronized producer/consumer kernel built on
// the public Stream API, showing how the competitive-update mechanism turns
// a write-invalidate protocol's steady coherence misses into updates — and
// what that costs in write traffic, the trade-off CW exists to balance.
package main

import (
	"fmt"
	"log"

	"ccsim"
)

const (
	procs  = 8
	blocks = 16 // shared buffer: one producer-written block each, read by all
	phases = 30
)

func stream(id int) ccsim.Stream {
	ops := []ccsim.Op{{Kind: ccsim.StatsOn}}
	for ph := 0; ph < phases; ph++ {
		if id == 0 {
			// The producer rewrites the shared buffer each phase.
			for b := 0; b < blocks; b++ {
				ops = append(ops,
					ccsim.Op{Kind: ccsim.Write, Addr: uint64(b * 32)},
					ccsim.Op{Kind: ccsim.Busy, Cycles: 20},
				)
			}
		} else {
			// Consumers read it.
			for b := 0; b < blocks; b++ {
				ops = append(ops,
					ccsim.Op{Kind: ccsim.Read, Addr: uint64(b * 32)},
					ccsim.Op{Kind: ccsim.Busy, Cycles: 20},
				)
			}
		}
		ops = append(ops, ccsim.Op{Kind: ccsim.Barrier, Bar: ph})
	}
	return ccsim.Ops(ops...)
}

func run(cw bool) *ccsim.Result {
	cfg := ccsim.DefaultConfig()
	cfg.Procs = procs
	cfg.Extensions = ccsim.Ext{CW: cw}
	streams := make([]ccsim.Stream, procs)
	for i := range streams {
		streams[i] = stream(i)
	}
	r, err := ccsim.RunStreams(cfg, streams)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	basic := run(false)
	cw := run(true)

	fmt.Printf("1 producer, %d consumers, %d phases over a %d-block buffer:\n\n", procs-1, phases, blocks)
	for _, r := range []*ccsim.Result{basic, cw} {
		n := float64(r.Procs)
		fmt.Printf("%-6s exec %8d | read stall/proc %7.0f | coherence misses %5d | traffic %7d B (updates %6d B)\n",
			r.Protocol, r.ExecTime, float64(r.ReadStall)/n,
			r.CoherenceMisses, r.TrafficBytes, r.UpdateBytes)
	}
	fmt.Printf("\ncoherence misses cut by %.0f%% — the consumers keep reading, so their\n",
		100*(1-float64(cw.CoherenceMisses)/float64(basic.CoherenceMisses)))
	fmt.Println("competitive counters keep being preset and the copies stay alive,")
	fmt.Println("receiving updates instead of invalidations (paper §3.3).")
}
