// Command ccsim runs a single simulation of the paper's machine and prints
// its measurements.
//
// Examples:
//
//	ccsim -workload mp3d                         # BASIC under RC
//	ccsim -workload mp3d -ext P+CW               # prefetching + competitive update
//	ccsim -workload cholesky -ext P+M -sc        # under sequential consistency
//	ccsim -workload ocean -net mesh -link 16     # 16-bit wormhole mesh
//	ccsim -workload lu -slc 512 -scale 0.5       # 16-KB SLC, half-size problem
//	ccsim -workload water -verify                # data-value-checked run
//	ccsim -workload mp3d -trace - -traceaddrs 0  # protocol trace for one block
//	ccsim -workload lu -dump lu.trace            # export the kernel as a trace file
//	ccsim -in lu.trace -ext P                    # replay a trace file
//	ccsim -workload mp3d -json                   # machine-readable result
//	ccsim -workload mp3d -timeline t.json        # Perfetto/Chrome trace timeline
//	ccsim -workload mp3d -max-events 5000000000  # watchdog event ceiling
//	ccsim -workload mp3d -log-json               # JSON stderr diagnostics
//
// Diagnostics are structured log/slog records on stderr (text by default,
// JSON under -log-json); results stay on stdout. A run that panics,
// deadlocks or exceeds a watchdog bound exits non-zero with a structured
// fault record naming the workload, protocol, component and simulated
// time, followed in text mode by the full diagnostic dump: pending
// transactions per cache, directory state, blocked
// processors/locks/barriers, and the flight-recorder tail of recent
// protocol messages.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"ccsim"
	"ccsim/internal/prof"
)

func parseExt(s string) (ccsim.Ext, error) {
	var e ccsim.Ext
	if s == "" || strings.EqualFold(s, "basic") {
		return e, nil
	}
	for _, part := range strings.Split(s, "+") {
		switch strings.ToUpper(strings.TrimSpace(part)) {
		case "P":
			e.P = true
		case "M":
			e.M = true
		case "CW":
			e.CW = true
		default:
			return e, fmt.Errorf("unknown extension %q (want P, M, CW, e.g. P+CW)", part)
		}
	}
	return e, nil
}

// writeSide writes one side-channel artifact to path ("-" = stderr),
// logging and returning false on failure.
func writeSide(logger *slog.Logger, what, path string, write func(io.Writer) error) bool {
	w := io.Writer(os.Stderr)
	var f *os.File
	if path != "-" {
		var err error
		if f, err = os.Create(path); err != nil {
			logger.Error(what+" export failed", "err", err)
			return false
		}
		w = f
	}
	if err := write(w); err != nil {
		logger.Error(what+" export failed", "err", err)
		return false
	}
	if f != nil {
		if err := f.Close(); err != nil {
			logger.Error(what+" export failed", "err", err)
			return false
		}
	}
	return true
}

// main delegates to run so deferred profile flushing survives every exit
// path (os.Exit would skip it).
func main() { os.Exit(run()) }

func run() int {
	workload := flag.String("workload", "mp3d", "kernel: "+strings.Join(ccsim.Workloads(), ", "))
	ext := flag.String("ext", "BASIC", "protocol extensions: BASIC, P, M, CW, P+CW, P+M, CW+M, P+CW+M")
	sc := flag.Bool("sc", false, "sequential consistency (default: release consistency)")
	netKind := flag.String("net", "uniform", "network: uniform or mesh")
	link := flag.Int("link", 64, "mesh link width in bits (64, 32, 16)")
	procs := flag.Int("procs", 16, "processor count")
	scale := flag.Float64("scale", 1.0, "workload problem-size multiplier")
	slc := flag.Int("slc", 0, "SLC size in 32-byte blocks (0 = infinite)")
	flwb := flag.Int("flwb", 0, "FLWB entries (0 = paper default)")
	slwb := flag.Int("slwb", 0, "SLWB entries (0 = paper default)")
	in := flag.String("in", "", "run a trace file (see ccsim.ParseTrace) instead of a named workload")
	dump := flag.String("dump", "", "write the selected workload as a trace file and exit")
	verify := flag.Bool("verify", false, "check the data-value invariant of coherence during the run")
	liveCheck := flag.Bool("check", false, "attach the live coherence checker: shadow-state invariants asserted at every protocol transition (implies -verify)")
	traceOut := flag.String("trace", "", "stream a protocol trace to this file (\"-\" = stderr)")
	traceAddrs := flag.String("traceaddrs", "", "comma-separated byte addresses restricting the trace")
	jsonOut := flag.Bool("json", false, "print the full result as JSON instead of the text report")
	timeline := flag.String("timeline", "", "write a Perfetto/Chrome trace-event timeline to this file")
	sharingOut := flag.String("sharing", "", "attach the sharing-pattern analyzer and write its per-class report to this file (\"-\" = stderr); also lands in -json output")
	selfprofile := flag.String("selfprofile", "", "attach the engine self-profiler and write benchjson-compatible JSON to this file (\"-\" = stderr)")
	maxEvents := flag.Uint64("max-events", 0, "abort after this many simulation events (0 = unlimited)")
	deadline := flag.Int64("deadline", 0, "abort past this simulated time in pclocks (0 = unlimited)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	logJSON := flag.Bool("log-json", false, "emit stderr diagnostics as JSON log records")
	flag.Parse()

	// Diagnostics are structured slog records on stderr; results stay on
	// stdout untouched.
	hopts := &slog.HandlerOptions{Level: slog.LevelInfo}
	var handler slog.Handler = slog.NewTextHandler(os.Stderr, hopts)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, hopts)
	}
	logger := slog.New(handler)

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		logger.Error("profiling setup failed", "err", err)
		return 1
	}
	defer stopProf()

	cfg := ccsim.DefaultConfig()
	cfg.Workload = *workload
	cfg.Procs = *procs
	cfg.Scale = *scale
	cfg.SC = *sc
	cfg.SLCBlocks = *slc
	cfg.FLWBEntries = *flwb
	cfg.SLWBEntries = *slwb
	cfg.LinkBits = *link
	cfg.VerifyData = *verify
	if *liveCheck {
		cfg.Check = ccsim.NewChecker()
	}
	cfg.MaxEvents = *maxEvents
	cfg.Deadline = *deadline
	switch *netKind {
	case "uniform":
		cfg.Net = ccsim.Uniform
	case "mesh":
		cfg.Net = ccsim.Mesh
	default:
		logger.Error("unknown network", "net", *netKind)
		return 2
	}
	e, err := parseExt(*ext)
	if err != nil {
		logger.Error("bad -ext", "err", err)
		return 2
	}
	cfg.Extensions = e
	if *timeline != "" {
		cfg.Telemetry = ccsim.NewTelemetry()
	}
	if *sharingOut != "" {
		cfg.Sharing = ccsim.NewSharingAnalytics()
	}
	if *selfprofile != "" {
		cfg.SelfProfile = ccsim.NewSelfProfiler()
	}

	if *traceOut != "" {
		w := os.Stderr
		if *traceOut != "-" {
			f, err := os.Create(*traceOut)
			if err != nil {
				logger.Error("trace file", "err", err)
				return 1
			}
			defer f.Close()
			w = f
		}
		cfg.TraceWriter = w
		if *traceAddrs != "" {
			for _, part := range strings.Split(*traceAddrs, ",") {
				var a uint64
				if _, err := fmt.Sscanf(strings.TrimSpace(part), "%v", &a); err != nil {
					logger.Error("bad trace address", "addr", part)
					return 2
				}
				cfg.TraceBlocks = append(cfg.TraceBlocks, a)
			}
		}
	}

	if *dump != "" {
		ops, err := ccsim.WorkloadOps(*workload, *procs, *scale)
		if err != nil {
			logger.Error("workload export failed", "workload", *workload, "err", err)
			return 1
		}
		f, err := os.Create(*dump)
		if err != nil {
			logger.Error("workload export failed", "err", err)
			return 1
		}
		if err := ccsim.WriteTrace(f, ops); err != nil {
			logger.Error("workload export failed", "err", err)
			return 1
		}
		if err := f.Close(); err != nil {
			logger.Error("workload export failed", "err", err)
			return 1
		}
		fmt.Printf("wrote %s\n", *dump)
		return 0
	}

	// Graceful shutdown: the first SIGINT/SIGTERM fires the cooperative
	// cancel flag and the watchdog aborts the run cleanly at its next event
	// batch; a second signal exits immediately.
	cancel := &ccsim.Cancel{}
	cfg.Cancel = cancel
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		sig := <-sigc
		logger.Warn("shutdown requested: cancelling the run (signal again to exit now)", "signal", sig.String())
		cancel.Cancel()
		<-sigc
		os.Exit(130)
	}()

	var r *ccsim.Result
	if *in != "" {
		f, ferr := os.Open(*in)
		if ferr != nil {
			logger.Error("trace input", "err", ferr)
			return 1
		}
		streams, perr := ccsim.ParseTrace(f)
		f.Close()
		if perr != nil {
			logger.Error("trace input", "file", *in, "err", perr)
			return 1
		}
		cfg.Procs = len(streams)
		cfg.Workload = "trace:" + *in
		r, err = ccsim.RunStreams(cfg, streams)
	} else {
		r, err = ccsim.Run(cfg)
	}
	if err != nil {
		// A structured fault logs as one machine-parseable record carrying
		// its identity fields; in text mode the full diagnostic dump —
		// snapshot, blocked agents, flight-recorder tail — follows it.
		if f, ok := ccsim.AsFault(err); ok {
			if f.Kind == ccsim.FaultCanceled {
				// Not a protocol bug: the user asked the run to stop. One
				// record, no diagnostic dump, the conventional 128+SIGINT exit.
				logger.Warn("run cancelled before completion",
					"workload", cfg.Workload,
					"protocol", cfg.ProtocolName(),
					"sim_time", f.Time,
					"events", f.Steps,
				)
				return 130
			}
			logger.Error("simulation fault",
				"workload", cfg.Workload,
				"protocol", cfg.ProtocolName(),
				"kind", f.Kind,
				"component", f.Component,
				"sim_time", f.Time,
				"events", f.Steps,
				"cause", f.Message,
			)
			if !*logJSON {
				f.Dump(os.Stderr)
			}
		} else {
			logger.Error("run failed", "workload", cfg.Workload, "err", err)
		}
		return 1
	}

	// The checker's verdict goes to stderr so stdout stays byte-identical
	// with and without -check.
	if cfg.Check != nil {
		logger.Info("live coherence checker passed", "assertions", cfg.Check.Checks())
	}

	// Span-buffer overflow silently truncates timelines and phase totals;
	// make it loud.
	if n := cfg.Telemetry.DroppedSpans(); n > 0 {
		logger.Warn("telemetry span buffer overflowed; timeline and phase totals undercount",
			"dropped_spans", n, "kept_spans", len(cfg.Telemetry.Spans()))
	}

	if *timeline != "" {
		f, ferr := os.Create(*timeline)
		if ferr != nil {
			logger.Error("timeline export failed", "err", ferr)
			return 1
		}
		if werr := cfg.Telemetry.WriteTimeline(f); werr != nil {
			logger.Error("timeline export failed", "err", werr)
			return 1
		}
		if cerr := f.Close(); cerr != nil {
			logger.Error("timeline export failed", "err", cerr)
			return 1
		}
	}

	// The sharing report and self-profile go to their own files (or
	// stderr), never stdout: a run with analytics on stays byte-identical
	// on stdout to one without.
	if *sharingOut != "" {
		if !writeSide(logger, "sharing report", *sharingOut, func(w io.Writer) error {
			cfg.Sharing.Report().Fprint(w)
			return nil
		}) {
			return 1
		}
	}
	if *selfprofile != "" {
		if !writeSide(logger, "self-profile", *selfprofile, cfg.SelfProfile.WriteJSON) {
			return 1
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if jerr := enc.Encode(r); jerr != nil {
			logger.Error("result encoding failed", "err", jerr)
			return 1
		}
		return 0
	}

	n := float64(r.Procs)
	fmt.Printf("workload    %s (scale %g)\n", r.Workload, cfg.Scale)
	fmt.Printf("protocol    %s on %s, %d processors\n", r.Protocol, r.Network, r.Procs)
	fmt.Printf("exec time   %d pclocks (%.2f ms simulated)\n", r.ExecTime, float64(r.ExecTime)*10e-6)
	fmt.Printf("per-processor time decomposition (pclocks):\n")
	fmt.Printf("  busy      %12.0f\n", float64(r.Busy)/n)
	fmt.Printf("  read      %12.0f\n", float64(r.ReadStall)/n)
	fmt.Printf("  write     %12.0f\n", float64(r.WriteStall)/n)
	fmt.Printf("  acquire   %12.0f  (of which barrier %0.f)\n", float64(r.AcquireStall)/n, float64(r.BarrierStall)/n)
	fmt.Printf("  release   %12.0f\n", float64(r.ReleaseStall)/n)
	fmt.Printf("references  %d reads, %d writes\n", r.Reads, r.Writes)
	fmt.Printf("miss rates  cold %.2f%%  coherence %.2f%%  replacement %.2f%%\n",
		r.ColdMissRate(), r.CoherenceMissRate(), r.ReplacementMissRate())
	fmt.Printf("miss lat.   %.0f pclocks average demand read miss (P50 <= %d, P95 <= %d, P99 <= %d, max %d)\n",
		r.AvgReadMissLatency, r.MissLatencyP50, r.MissLatencyP95, r.MissLatencyP99, r.MissLatencyMax)
	fmt.Printf("traffic     %d bytes in %d messages (updates %d B, data %d B)\n",
		r.TrafficBytes, r.TrafficMsgs, r.UpdateBytes, r.DataBytes)
	if e.P {
		fmt.Printf("prefetch    issued %d, useful %d, partial hits %d, nacked %d\n",
			r.PrefetchesIssued, r.PrefetchesUseful, r.PrefetchPartHits, r.PrefetchesNacked)
	}
	if e.M {
		fmt.Printf("migratory   %d detections, %d reverts, %d exclusive supplies\n",
			r.MigDetections, r.MigReverts, r.ExclSupplies)
	}
	if e.CW {
		fmt.Printf("updates     %d update requests, %d write-cache read hits\n",
			r.UpdateRequests, r.WriteCacheHits)
	}
	fmt.Printf("ownership   %d ownership requests\n", r.OwnershipRequests)
	fmt.Printf("event queue %d dispatched (%d wheel, %d migrated via overflow), %d cohorts (max %d), wheel high-water %d\n",
		r.Queue.Dispatched, r.Queue.WheelScheduled, r.Queue.Migrations,
		r.Queue.Cohorts, r.Queue.MaxCohort, r.Queue.WheelHighWater)
	return 0
}
