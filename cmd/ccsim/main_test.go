package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ccsim/internal/prof"
)

// runCLI invokes run() in-process with the given arguments, capturing
// stdout, and returns the exit code and captured output.
func runCLI(t *testing.T, args ...string) (int, string) {
	t.Helper()
	flag.CommandLine = flag.NewFlagSet(args[0], flag.ExitOnError)
	oldArgs, oldStdout := os.Args, os.Stdout
	t.Cleanup(func() { os.Args, os.Stdout = oldArgs, oldStdout })
	os.Args = args
	out, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = out
	code := run()
	os.Stdout = oldStdout
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
	body, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	return code, string(body)
}

// TestProfileFlagsRoundTrip runs a tiny simulation with both profiling
// flags and checks the CLI leaves parseable pprof files behind — the
// user-facing contract of -cpuprofile/-memprofile.
func TestProfileFlagsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	code, out := runCLI(t, "ccsim",
		"-workload", "mp3d", "-scale", "0.02", "-procs", "2",
		"-cpuprofile", cpu, "-memprofile", mem)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out, "event queue") {
		t.Errorf("text report missing the queue-internals line:\n%s", out)
	}
	for _, p := range []string{cpu, mem} {
		if err := prof.ValidateProfile(p); err != nil {
			t.Errorf("profile invalid: %v", err)
		}
	}
}
