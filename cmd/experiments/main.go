// Command experiments regenerates the tables and figures of Dahlgren,
// Dubois & Stenström's ISCA 1994 evaluation. Each experiment prints the
// same rows or series the paper reports; EXPERIMENTS.md records the
// paper-vs-measured comparison.
//
// Usage:
//
//	experiments -exp all            # everything (minutes at scale 1.0)
//	experiments -exp fig2           # Figure 2: relative exec times under RC
//	experiments -exp table2         # Table 2: cold/coherence miss rates
//	experiments -exp fig3           # Figure 3: sequential consistency
//	experiments -exp table3         # Table 3: mesh link-width sweep
//	experiments -exp fig4           # Figure 4: relative network traffic
//	experiments -exp table1         # Table 1: hardware cost inventory
//	experiments -exp sens-buffers   # §5.4: 4-entry write buffers
//	experiments -exp sens-cache     # §5.4: 16-KB SLC
//	experiments -scale 0.25 ...     # shrink the workloads for a quick pass
//	experiments -jobs 8 ...         # simulate up to 8 configurations at once
//	experiments -metrics out/ ...   # also write each run's result as JSON
//	experiments -listen :8099       # live ops plane: /metrics, /status, /dashboard
//	experiments -listen :8099 -pprof  # also mount Go's /debug/pprof/ endpoints
//	experiments -log-json ...       # structured stderr logs as JSON
//	experiments -q ...              # quiet: suppress per-experiment timing
//	experiments -cpuprofile p.out   # write a runtime/pprof CPU profile
//	experiments -max-events 5000000000  # watchdog: bound every run's events
//	experiments -inject-fault mp3d/P+CW  # crash one run, prove containment
//	experiments -sharing ...        # sharing-pattern analytics per run, sweep aggregate at exit
//	experiments -selfprofile sp.json  # engine self-profile aggregated across the sweep
//	experiments -cache-dir cache/   # durable result store: crash, re-run, resume
//	experiments -resume=false ...   # refresh the store, ignoring existing entries
//	experiments -retries 2          # re-run transiently-faulted runs up to 2 extra times
//	experiments -retry-backoff 5s   # sleep before the first retry, doubling per attempt
//	experiments -listen :8099 -serve-jobs  # coordinator: job API + worker wire protocol
//	experiments -worker http://host:8099   # worker: pull jobs from a coordinator
//
// All experiments of one invocation share a scheduler: a configuration
// named by several experiments (every figure's BASIC baseline, Table 2's
// subset of Figure 2's grid) simulates exactly once. Worker count changes
// wall-clock time only — printed results are identical at any -jobs value.
//
// Results go to stdout; every diagnostic — timing, faults, the ops
// server's address — goes to stderr as structured log/slog records (text
// by default, JSON under -log-json), so stdout is byte-identical across
// -jobs values, verbosity levels, and ops-server on/off.
//
// Sweeps are crash-contained: a run that panics, deadlocks or trips the
// watchdog renders as a FAULT cell in its tables while every other cell
// prints normally; the fault diagnostics go to stderr and the exit status
// is non-zero.
//
// Sweeps can also be distributed: -serve-jobs (with -listen) promotes the
// ops server into a coordinator serving a job-submission API (POST/GET
// /jobs) and a worker wire protocol, and -worker URL turns the same binary
// into a stateless worker that leases jobs over HTTP, simulates them
// locally, heartbeats, and delivers results back. Leases that stop
// heartbeating expire and re-queue, so killing a worker mid-job loses no
// runs, and the distributed sweep's stdout and -metrics output stay
// byte-identical to a single-process run.
//
// Sweeps are also crash-safe and interruptible: -cache-dir persists every
// completed run's Result to an atomic, checksummed on-disk store, so a
// sweep killed at any instant resumes by re-running the same command —
// completed runs load from disk, only missing ones simulate, stdout stays
// byte-identical. SIGINT/SIGTERM drain gracefully (queued runs abandon,
// in-flight runs abort cleanly, finished results are kept) and exit 130
// with a resume hint; a second signal exits immediately.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"ccsim"
	"ccsim/exp"
	"ccsim/internal/ops"
	"ccsim/internal/prof"
	"ccsim/internal/store"
)

func main() { os.Exit(run()) }

// newLogger builds the process logger: slog to stderr, text for humans or
// JSON for machine ingestion, with -q raising the level past the
// per-experiment Info chatter.
func newLogger(jsonOut, quiet bool) *slog.Logger {
	level := slog.LevelInfo
	if quiet {
		level = slog.LevelWarn
	}
	opts := &slog.HandlerOptions{Level: level}
	if jsonOut {
		return slog.New(slog.NewJSONHandler(os.Stderr, opts))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, opts))
}

func run() int {
	which := flag.String("exp", "all", "experiment: all, table1, fig2, table2, fig3, table3, fig4, sens-buffers, sens-cache, dir, assoc, scaling, cost")
	scale := flag.Float64("scale", 1.0, "workload problem-size multiplier")
	procs := flag.Int("procs", 16, "processor count")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "max simulations to run concurrently")
	metrics := flag.String("metrics", "", "write each run's full result as JSON into this directory")
	listen := flag.String("listen", "", "serve the live ops plane (/metrics, /status, /dashboard) on this address, e.g. :8099")
	pprofOn := flag.Bool("pprof", false, "with -listen, mount Go's live profiling endpoints under /debug/pprof/")
	logJSON := flag.Bool("log-json", false, "emit stderr diagnostics as JSON log records")
	quiet := flag.Bool("q", false, "quiet: suppress per-experiment timing lines (warnings and faults still log)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	injectFault := flag.String("inject-fault", "", `crash the run matching "workload/protocol" (e.g. mp3d/P+CW) to exercise fault containment`)
	liveCheck := flag.Bool("check", false, "attach the live coherence checker to every run (validation sweeps; slower, disables run dedup)")
	maxEvents := flag.Uint64("max-events", 0, "abort any single run after this many events (0 = unlimited)")
	deadline := flag.Int64("deadline", 0, "abort any single run past this simulated time in pclocks (0 = unlimited)")
	sharing := flag.Bool("sharing", false, "attach the sharing-pattern analyzer to every run; the sweep-wide aggregate prints to stderr at the end and serves live at /sharing (disables run dedup)")
	selfprofile := flag.String("selfprofile", "", "attach one engine self-profiler across every run and write benchjson-compatible JSON to this file (disables run dedup)")
	cacheDir := flag.String("cache-dir", "", "persist every completed run's result into this durable store; an interrupted sweep resumes by re-running with the same directory")
	resume := flag.Bool("resume", true, "with -cache-dir, serve runs from existing store entries; -resume=false refreshes every entry")
	retries := flag.Int("retries", 0, "re-run a transiently-faulted run (watchdog aborts, not panics) up to this many extra times")
	retryBackoff := flag.Duration("retry-backoff", 0, "sleep this long before the first retry, doubling each attempt")
	serveJobs := flag.Bool("serve-jobs", false, "with -listen, serve the job-submission API and worker wire protocol (POST /jobs, /worker/*): the sweep's runs become leasable by -worker processes")
	leaseTTL := flag.Duration("lease-ttl", 30*time.Second, "with -serve-jobs, how long a worker lease survives without a heartbeat before its job re-queues")
	workerURL := flag.String("worker", "", "run as a stateless worker pulling jobs from this coordinator URL (e.g. http://host:8099) instead of sweeping; exits when the coordinator goes away")
	workerPoll := flag.Duration("worker-poll", 250*time.Millisecond, "with -worker, how long to sleep between lease polls when the queue is empty")
	workerHold := flag.Duration("worker-hold", 0, "with -worker, sit on each lease this long before simulating (test hook for lease-expiry harnesses)")
	workerName := flag.String("worker-name", "", "with -worker, the identity reported to the coordinator (default host-pid)")
	flag.Parse()

	logger := newLogger(*logJSON, *quiet)

	stop, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		logger.Error("profiling setup failed", "err", err)
		return 1
	}
	defer stop()

	if *workerURL != "" {
		name := *workerName
		if name == "" {
			name = defaultWorkerName()
		}
		return runWorker(logger, *workerURL, name, *workerPoll, *workerHold, *retries, *retryBackoff)
	}
	if *serveJobs && *listen == "" {
		logger.Error("-serve-jobs requires -listen: workers need an address to pull from")
		return 2
	}

	sched := exp.NewScheduler(*jobs, *metrics)
	sched.SetLogger(logger)
	if *cacheDir != "" {
		st, err := store.Open(*cacheDir)
		if err != nil {
			logger.Error("result store failed to open", "dir", *cacheDir, "err", err)
			return 1
		}
		sched.UseStore(st, *resume)
		logger.Info("result store open", "dir", st.Root(), "resume", *resume)
	}
	if *retries > 0 {
		sched.SetRetryPolicy(exp.RetryPolicy{MaxAttempts: *retries + 1, Backoff: *retryBackoff})
	}
	// Graceful shutdown: the first SIGINT/SIGTERM drains the sweep (queued
	// runs abandon, in-flight runs abort at their next event batch, results
	// already completed — and their store entries — are kept); a second
	// signal exits immediately.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		sig, ok := <-sigc
		if !ok {
			return
		}
		logger.Warn("shutdown requested: draining the sweep (signal again to exit now)", "signal", sig.String())
		sched.Interrupt()
		if _, ok := <-sigc; ok {
			os.Exit(130)
		}
	}()
	if *listen != "" {
		srv := ops.NewServer(sched)
		endpoints := "/metrics /status /sharing /dashboard"
		if *serveJobs {
			q := exp.NewJobQueue(sched, exp.JobQueueOptions{LeaseTTL: *leaseTTL})
			defer q.Close()
			srv.SetJobs(q)
			endpoints += " /jobs /worker/*"
		}
		if *pprofOn {
			srv.EnablePprof()
			endpoints += " /debug/pprof/"
		}
		if err := srv.Start(*listen); err != nil {
			logger.Error("ops server failed to start", "addr", *listen, "err", err)
			return 1
		}
		defer srv.Close()
		logger.Info("ops server listening", "addr", srv.Addr(), "endpoints", endpoints)
	}
	o := exp.Options{
		Scale: *scale, Procs: *procs, MetricsDir: *metrics, Sched: sched,
		InjectFault: *injectFault, MaxEvents: *maxEvents, Deadline: *deadline,
		Check: *liveCheck, Sharing: *sharing,
	}
	if *selfprofile != "" {
		o.SelfProfile = ccsim.NewSelfProfiler()
	}
	// finish emits the end-of-sweep observability artifacts on every exit
	// path: the sharing aggregate to stderr, the self-profile to its file.
	finish := func(code int) int {
		if *sharing {
			if rep := sched.SharingReport(); rep != nil {
				fmt.Fprintln(os.Stderr, "sweep-wide sharing-pattern aggregate:")
				rep.Fprint(os.Stderr)
			}
		}
		if *selfprofile != "" {
			f, err := os.Create(*selfprofile)
			if err == nil {
				err = o.SelfProfile.WriteJSON(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				logger.Error("self-profile export failed", "err", err)
				if code == 0 {
					code = 1
				}
			}
		}
		if sched.Interrupted() {
			hint := "re-run with -cache-dir DIR to make interrupted sweeps resumable"
			if *cacheDir != "" {
				hint = "re-run the same command to resume; completed runs load from " + *cacheDir
			}
			st := sched.Stats()
			logger.Warn("sweep interrupted before completion",
				"completed", st.Completed, "abandoned", st.Interrupted, "resume", hint)
			code = 130
		}
		return code
	}
	runExp := func(name string, fn func() error) error {
		t0 := time.Now()
		fmt.Printf("==== %s (scale %g, %d processors) ====\n", name, o.Scale, o.Procs)
		if err := fn(); err != nil {
			logger.Error("experiment failed", "experiment", name, "err", err)
			return err
		}
		// Timing goes to the stderr logger so stdout is byte-identical
		// across runs, -jobs values and verbosity levels (diffable results).
		fmt.Printf("---- %s done ----\n\n", name)
		logger.Info("experiment done", "experiment", name,
			"elapsed", time.Since(t0).Round(time.Millisecond).String())
		return nil
	}

	experiments := map[string]func() error{
		"table1": func() error {
			exp.FprintTable1(os.Stdout, o.Procs)
			return nil
		},
		"fig2": func() error {
			rows, err := exp.Figure2(o)
			if err != nil {
				return err
			}
			exp.FprintFigure2(os.Stdout, rows)
			return nil
		},
		"table2": func() error {
			rows, err := exp.Table2(o)
			if err != nil {
				return err
			}
			exp.FprintTable2(os.Stdout, rows)
			return nil
		},
		"fig3": func() error {
			rows, err := exp.Figure3(o)
			if err != nil {
				return err
			}
			exp.FprintFigure3(os.Stdout, rows)
			return nil
		},
		"table3": func() error {
			rows, err := exp.Table3(o)
			if err != nil {
				return err
			}
			exp.FprintTable3(os.Stdout, rows)
			return nil
		},
		"fig4": func() error {
			rows, err := exp.Figure4(o)
			if err != nil {
				return err
			}
			exp.FprintFigure4(os.Stdout, rows)
			return nil
		},
		"sens-buffers": func() error {
			rows, err := exp.SensBuffers(o)
			if err != nil {
				return err
			}
			exp.FprintSens(os.Stdout, rows, "4-entry buffers")
			return nil
		},
		"sens-cache": func() error {
			rows, err := exp.SensCache(o)
			if err != nil {
				return err
			}
			exp.FprintSens(os.Stdout, rows, "16-KB SLC")
			return nil
		},
		"dir": func() error {
			rows, err := exp.DirectoryStudy(o)
			if err != nil {
				return err
			}
			exp.FprintDirectory(os.Stdout, rows)
			return nil
		},
		"assoc": func() error {
			rows, err := exp.AssociativityStudy(o)
			if err != nil {
				return err
			}
			exp.FprintAssoc(os.Stdout, rows)
			return nil
		},
		"cost": func() error {
			rows, err := exp.CostPerformance(o, "mp3d")
			if err != nil {
				return err
			}
			exp.FprintCost(os.Stdout, "mp3d", rows)
			return nil
		},
		"scaling": func() error {
			rows, err := exp.ScalingStudy(o)
			if err != nil {
				return err
			}
			exp.FprintScaling(os.Stdout, rows)
			return nil
		},
	}

	order := []string{"table1", "fig2", "table2", "fig3", "table3", "fig4", "sens-buffers", "sens-cache", "dir", "assoc", "scaling", "cost"}
	if *which == "all" {
		code := 0
		for _, name := range order {
			// A failed experiment doesn't stop the sweep: faulted runs render
			// as FAULT cells and the rest of the tables still print.
			if runExp(name, experiments[name]) != nil {
				code = 1
			}
		}
		// The stderr logger, not stdout: results must be byte-identical at
		// any -jobs.
		st := sched.Stats()
		logger.Info("sweep complete", "unique", st.Unique, "dedup_hits", st.DedupHits,
			"completed", st.Completed, "failed", st.Failed, "workers", sched.Jobs())
		if reportFaults(logger, *logJSON, sched) {
			code = 1
		}
		return finish(code)
	}
	fn, ok := experiments[*which]
	if !ok {
		logger.Error("unknown experiment", "experiment", *which,
			"have", strings.Join(append(order, "all"), " "))
		return 2
	}
	code := 0
	if runExp(*which, fn) != nil {
		code = 1
	}
	if reportFaults(logger, *logJSON, sched) {
		code = 1
	}
	return finish(code)
}

// reportFaults logs every faulted run from the scheduler's ledger as one
// structured record carrying the run's identity (workload, protocol) and,
// for simulation faults, the fault's kind, component, simulated time and
// event count. In text mode the full diagnostic dump (snapshot, blocked
// agents, flight recorder) follows each record; under -log-json the
// records stay machine-parseable one-per-line and the dump is elided.
// Reports whether any run faulted. Everything goes to stderr: FAULT cells
// aside, a sweep with faults prints the same stdout as one without.
func reportFaults(logger *slog.Logger, jsonMode bool, sched *exp.Scheduler) bool {
	failed := sched.Failed()
	if len(failed) == 0 {
		return false
	}
	// Graceful-shutdown casualties are expected, not protocol bugs: condense
	// abandoned (never-started) and cancelled (in-flight, aborted cleanly)
	// runs into one summary line each instead of per-run dump spam.
	var abandoned, cancelled int
	kept := failed[:0]
	for _, f := range failed {
		if errors.Is(f.Err, exp.ErrInterrupted) {
			abandoned++
			continue
		}
		if sf, ok := ccsim.AsFault(f.Err); ok && sf.Kind == ccsim.FaultCanceled {
			cancelled++
			continue
		}
		kept = append(kept, f)
	}
	if abandoned > 0 {
		logger.Warn("runs abandoned by shutdown before starting", "count", abandoned)
	}
	if cancelled > 0 {
		logger.Warn("in-flight runs cancelled by shutdown", "count", cancelled)
	}
	if len(kept) == 0 {
		return true
	}
	failed = kept
	sort.Slice(failed, func(i, j int) bool {
		a, b := failed[i].Cfg, failed[j].Cfg
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		return a.ProtocolName() < b.ProtocolName()
	})
	logger.Error("sweep had faulted runs", "count", len(failed))
	for _, f := range failed {
		attrs := []any{
			"run_id", exp.RunID(f.Cfg),
			"workload", f.Cfg.Workload,
			"protocol", f.Cfg.ProtocolName(),
		}
		sf, isFault := ccsim.AsFault(f.Err)
		if isFault {
			attrs = append(attrs,
				"kind", sf.Kind,
				"component", sf.Component,
				"sim_time", sf.Time,
				"events", sf.Steps,
				"cause", sf.Message,
			)
		} else {
			attrs = append(attrs, "err", f.Err.Error())
		}
		logger.Error("run faulted", attrs...)
		if isFault && !jsonMode {
			sf.Dump(os.Stderr)
		}
	}
	return true
}
