package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"time"

	"ccsim"
	"ccsim/exp"
)

// worker is the pull side of the distributed-sweep wire protocol: it polls
// a coordinator (`experiments -listen ... -serve-jobs`) for leased jobs,
// simulates each locally, keeps the lease alive with heartbeats, and
// delivers the Result back. It carries no sweep state of its own — the
// full Config travels with the lease — so any number of workers can join
// or leave a sweep at any time.
type worker struct {
	client  *http.Client
	base    string
	name    string
	poll    time.Duration
	hold    time.Duration
	retries int
	backoff time.Duration
	logger  *slog.Logger
}

// defaultWorkerName is the worker identity when -worker-name is unset:
// host-pid, unique per process across a fleet of identical machines.
func defaultWorkerName() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

// post sends body as JSON to the coordinator and, on a 200, decodes the
// response into out (when non-nil). A transport error means the
// coordinator is unreachable; HTTP-level rejections come back as the
// status code.
func (w *worker) post(path string, body, out any) (int, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := w.client.Post(w.base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("bad coordinator response: %w", err)
		}
	}
	return resp.StatusCode, nil
}

// runWorker is the -worker entry point: poll for jobs until the
// coordinator goes away. Exit 0 once the coordinator disappears after at
// least one successful contact (the sweep ended — normal fleet teardown);
// exit 1 if it was never reachable or refuses this build's schema.
func runWorker(logger *slog.Logger, base, name string, poll, hold time.Duration, retries int, backoff time.Duration) int {
	w := &worker{
		client:  &http.Client{Timeout: 30 * time.Second},
		base:    strings.TrimRight(base, "/"),
		name:    name,
		poll:    poll,
		hold:    hold,
		retries: retries,
		backoff: backoff,
		logger:  logger,
	}
	logger.Info("worker starting", "coordinator", w.base, "worker", w.name)
	connected := false
	failures := 0
	for {
		var wj exp.WireJob
		code, err := w.post("/worker/lease", exp.LeaseRequest{Worker: w.name, Schema: exp.ResultSchemaVersion()}, &wj)
		if err != nil {
			if connected {
				logger.Info("coordinator gone; worker exiting", "coordinator", w.base)
				return 0
			}
			failures++
			if failures >= 40 {
				logger.Error("coordinator unreachable", "coordinator", w.base, "err", err)
				return 1
			}
			time.Sleep(w.poll)
			continue
		}
		connected = true
		switch code {
		case http.StatusOK:
			if !w.execute(wj) {
				logger.Info("coordinator gone; worker exiting", "coordinator", w.base)
				return 0
			}
		case http.StatusNoContent:
			// Nothing queued right now; the sweep may still produce more.
			time.Sleep(w.poll)
		case http.StatusConflict:
			logger.Error("schema skew: this worker build's Result schema does not match the coordinator's; rebuild from the same source", "coordinator", w.base)
			return 1
		default:
			logger.Warn("unexpected lease response", "status", code)
			time.Sleep(w.poll)
		}
	}
}

// execute simulates one leased job and delivers its outcome, heartbeating
// every third of the lease TTL while the simulation runs. Reports false
// when the coordinator became unreachable (the worker should exit).
func (w *worker) execute(wj exp.WireJob) bool {
	runID := exp.RunID(wj.Config)
	// The coordinator's key is authoritative; a fingerprint mismatch means
	// the config was mangled in transit, and simulating it would deliver a
	// result under the wrong identity.
	if key, ok := exp.Fingerprint(wj.Config); !ok || key != wj.Key {
		w.logger.Error("leased config does not match its key; refusing", "run_id", runID, "job", wj.ID)
		code, perr := w.post("/worker/result", exp.WireResult{
			ID: wj.ID, Lease: wj.Lease, Worker: w.name,
			Error: "worker: leased config does not re-fingerprint to its key",
		}, nil)
		_ = code
		return perr == nil
	}
	w.logger.Info("job leased", "run_id", runID, "job", wj.ID)

	cfg := wj.Config
	cancel := &ccsim.Cancel{}
	cfg.Cancel = cancel
	var (
		res     *ccsim.Result
		rerr    error
		elapsed time.Duration
		done    = make(chan struct{})
	)
	go func() {
		defer close(done)
		defer func() {
			if r := recover(); r != nil {
				rerr = fmt.Errorf("worker: simulation panic: %v", r)
			}
		}()
		// -worker-hold is a test hook: sit on the lease before simulating,
		// so harnesses can kill the worker mid-job deterministically.
		if w.hold > 0 {
			time.Sleep(w.hold)
		}
		t0 := time.Now()
		defer func() { elapsed = time.Since(t0) }()
		// The same retry semantics the coordinator applies locally:
		// transient watchdog faults re-run with doubling backoff,
		// deterministic faults don't.
		sleep := w.backoff
		for attempt := 1; ; attempt++ {
			res, rerr = ccsim.Run(cfg)
			if rerr == nil || attempt > w.retries || !exp.Retryable(rerr) || cancel.Cancelled() {
				return
			}
			w.logger.Warn("retrying run", "run_id", runID, "attempt", attempt, "err", rerr)
			if sleep > 0 {
				time.Sleep(sleep)
				sleep *= 2
			}
		}
	}()

	hb := time.Duration(wj.LeaseTTLSeconds * float64(time.Second) / 3)
	if hb <= 0 {
		hb = 10 * time.Second
	}
	ticker := time.NewTicker(hb)
	defer ticker.Stop()
	lost := false
	for running := true; running; {
		select {
		case <-done:
			running = false
		case <-ticker.C:
			code, err := w.post("/worker/heartbeat", exp.HeartbeatRequest{ID: wj.ID, Lease: wj.Lease, Worker: w.name}, nil)
			if err == nil && code == http.StatusGone {
				// The lease expired or the job resolved elsewhere: abandon
				// the simulation and drop its result.
				w.logger.Warn("lease lost; abandoning job", "run_id", runID, "job", wj.ID)
				cancel.Cancel()
				lost = true
				<-done
				running = false
			}
			// A transport error here is not fatal: keep simulating; if the
			// coordinator is really gone the result delivery below fails and
			// the worker exits.
		}
	}
	if lost {
		return true
	}

	wr := exp.WireResult{ID: wj.ID, Lease: wj.Lease, Worker: w.name,
		Result: res, ElapsedMicros: elapsed.Microseconds()}
	if rerr != nil {
		wr.Result = nil
		wr.Error = rerr.Error()
		if sf, ok := ccsim.AsFault(rerr); ok {
			wr.FaultKind = sf.Kind
		}
	}
	code, err := w.post("/worker/result", wr, nil)
	if err != nil {
		return false
	}
	switch code {
	case http.StatusNoContent:
		w.logger.Info("job completed", "run_id", runID, "job", wj.ID,
			"elapsed", elapsed.Round(time.Millisecond).String(), "ok", rerr == nil)
	case http.StatusGone:
		w.logger.Warn("delivery rejected: lease expired before the result landed", "run_id", runID, "job", wj.ID)
	default:
		w.logger.Warn("unexpected delivery response", "status", code, "run_id", runID)
	}
	return true
}
