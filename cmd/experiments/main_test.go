package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ccsim/internal/prof"
)

// runCLI invokes run() in-process with the given arguments, capturing
// stdout, and returns the exit code and captured output.
func runCLI(t *testing.T, args ...string) (int, string) {
	t.Helper()
	flag.CommandLine = flag.NewFlagSet(args[0], flag.ExitOnError)
	oldArgs, oldStdout := os.Args, os.Stdout
	t.Cleanup(func() { os.Args, os.Stdout = oldArgs, oldStdout })
	os.Args = args
	out, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = out
	code := run()
	os.Stdout = oldStdout
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
	body, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	return code, string(body)
}

// TestProfileFlagsRoundTrip runs the cheapest experiment with both
// profiling flags and checks the CLI leaves parseable pprof files behind.
func TestProfileFlagsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	code, out := runCLI(t, "experiments",
		"-exp", "table1", "-q",
		"-cpuprofile", cpu, "-memprofile", mem)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out, "table1") {
		t.Errorf("experiment output missing:\n%s", out)
	}
	for _, p := range []string{cpu, mem} {
		if err := prof.ValidateProfile(p); err != nil {
			t.Errorf("profile invalid: %v", err)
		}
	}
}

// TestServeJobsRequiresListen: a coordinator with no address is a usage
// error, caught before any simulation starts.
func TestServeJobsRequiresListen(t *testing.T) {
	code, _ := runCLI(t, "experiments", "-exp", "table1", "-q", "-serve-jobs")
	if code != 2 {
		t.Fatalf("exit code %d, want 2 (usage error)", code)
	}
}

// TestWorkerUnreachableCoordinatorExitsNonzero: a worker that never
// reaches its coordinator gives up with a failure exit instead of polling
// forever.
func TestWorkerUnreachableCoordinatorExitsNonzero(t *testing.T) {
	// Port 1 is never listening; 1ms polls make the bounded retry loop
	// (~40 attempts) fail fast.
	code, _ := runCLI(t, "experiments", "-q",
		"-worker", "http://127.0.0.1:1", "-worker-poll", "1ms")
	if code != 1 {
		t.Fatalf("exit code %d, want 1 (coordinator unreachable)", code)
	}
}
