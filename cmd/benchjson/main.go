// Command benchjson converts `go test -bench` output into machine-readable
// JSON so benchmark results can be archived and diffed across PRs (see
// `make bench`, which writes BENCH_PR2.json).
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -o BENCH.json
//
// Input lines it understands look like
//
//	BenchmarkEngineCallEvents-8   7670774   151.4 ns/op   0 B/op   0 allocs/op
//
// Everything else (pass/fail lines, package headers) passes through to
// stdout untouched, so the tool can sit at the end of a pipe without hiding
// the run from the terminal.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Bench is one benchmark result. Extra records units beyond the standard
// three (custom b.ReportMetric values, MB/s, ...).
type Bench struct {
	Name        string             `json:"name"`
	Procs       int                `json:"procs"` // GOMAXPROCS suffix, 1 if absent
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

func parseLine(line string) (Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Bench{}, false
	}
	b := Bench{Name: fields[0], Procs: 1}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b.Iterations = iters
	// The remainder alternates value / unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Bench{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Extra == nil {
				b.Extra = map[string]float64{}
			}
			b.Extra[unit] = v
		}
	}
	return b, true
}

func main() { os.Exit(run()) }

func run() int {
	out := flag.String("o", "", "write the JSON array to this file (default stdout, after the passthrough)")
	flag.Parse()

	var benches []Bench
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if b, ok := parseLine(line); ok {
			benches = append(benches, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(benches); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}
