// Command benchjson converts `go test -bench` output into machine-readable
// JSON so benchmark results can be archived and diffed across PRs (see
// `make bench`, which writes the current baseline).
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -o BENCH.json
//	go test -bench=. ./... | benchjson -compare BENCH_PR4.json
//	benchjson -compare BENCH_PR4.json BENCH_PR6.json
//
// Input lines it understands look like
//
//	BenchmarkEngineCallEvents-8   7670774   151.4 ns/op   0 B/op   0 allocs/op
//
// Everything else (pass/fail lines, package headers) passes through to
// stdout untouched, so the tool can sit at the end of a pipe without hiding
// the run from the terminal.
//
// With -compare OLD.json, a per-benchmark ns/op delta table against the old
// baseline prints after the passthrough, ending in a geomean summary row
// over the matched pairs; with a positional NEW.json argument the new
// results load from that file instead of stdin (no passthrough). Under
// -compare the parsed JSON is written only when -o names a file, and
// -fail-over PCT turns the comparison into a gate: exit 1 when any matched
// benchmark's ns/op regressed by more than PCT percent.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// Bench is one benchmark result. Extra records units beyond the standard
// three (custom b.ReportMetric values, MB/s, ...).
type Bench struct {
	Name        string             `json:"name"`
	Procs       int                `json:"procs"` // GOMAXPROCS suffix, 1 if absent
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

func parseLine(line string) (Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Bench{}, false
	}
	b := Bench{Name: fields[0], Procs: 1}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b.Iterations = iters
	// The remainder alternates value / unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Bench{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Extra == nil {
				b.Extra = map[string]float64{}
			}
			b.Extra[unit] = v
		}
	}
	return b, true
}

// key identifies a benchmark across runs: name plus GOMAXPROCS suffix.
func key(b Bench) string { return fmt.Sprintf("%s-%d", b.Name, b.Procs) }

// allocsDelta renders the allocs/op column of the comparison: the shared
// value when unchanged, "old->new" when an allocation count moved — the
// regression the zero-alloc gates care about.
func allocsDelta(ob, nb Bench) string {
	if ob.AllocsPerOp == nb.AllocsPerOp {
		return fmt.Sprintf("%g", nb.AllocsPerOp)
	}
	return fmt.Sprintf("%g->%g", ob.AllocsPerOp, nb.AllocsPerOp)
}

// compareBenches renders the per-benchmark ns/op (and allocs/op) delta
// table between two result sets, in the new set's order, with benchmarks
// present in only one set listed after it, then a geomean summary row over
// the matched pairs. It returns the worst single-benchmark ns/op
// regression in percent (0 when nothing matched or everything improved) —
// the quantity -fail-over gates on.
func compareBenches(w io.Writer, oldB, newB []Bench) (worstPct float64) {
	oldBy := make(map[string]Bench, len(oldB))
	for _, b := range oldB {
		oldBy[key(b)] = b
	}
	newSeen := make(map[string]bool, len(newB))
	var logSum float64
	matched := 0
	fmt.Fprintf(w, "%-44s %12s %12s %8s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs")
	for _, nb := range newB {
		k := key(nb)
		newSeen[k] = true
		ob, ok := oldBy[k]
		if !ok {
			fmt.Fprintf(w, "%-44s %12s %12.2f %8s %9g\n", k, "-", nb.NsPerOp, "new", nb.AllocsPerOp)
			continue
		}
		delta := "-"
		if ob.NsPerOp > 0 {
			pct := 100 * (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp
			delta = fmt.Sprintf("%+.1f%%", pct)
			if math.Abs(pct) < 0.05 {
				delta = "~"
			}
			if pct > worstPct {
				worstPct = pct
			}
			if nb.NsPerOp > 0 {
				logSum += math.Log(nb.NsPerOp / ob.NsPerOp)
				matched++
			}
		}
		fmt.Fprintf(w, "%-44s %12.2f %12.2f %8s %9s\n", k, ob.NsPerOp, nb.NsPerOp, delta, allocsDelta(ob, nb))
	}
	for _, ob := range oldB {
		if !newSeen[key(ob)] {
			fmt.Fprintf(w, "%-44s %12.2f %12s %8s %9s\n", key(ob), ob.NsPerOp, "-", "gone", "-")
		}
	}
	if matched > 0 {
		pct := 100 * (math.Exp(logSum/float64(matched)) - 1)
		delta := fmt.Sprintf("%+.1f%%", pct)
		if math.Abs(pct) < 0.05 {
			delta = "~"
		}
		fmt.Fprintf(w, "%-44s %12s %12s %8s %9s\n",
			fmt.Sprintf("geomean (%d matched)", matched), "-", "-", delta, "-")
	}
	return worstPct
}

func readBenchFile(path string) ([]Bench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var benches []Bench
	if err := json.Unmarshal(data, &benches); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return benches, nil
}

func main() { os.Exit(run()) }

func run() int {
	out := flag.String("o", "", "write the JSON array to this file (default stdout, after the passthrough; with -compare, only when set)")
	compare := flag.String("compare", "", "old benchjson JSON baseline: print a per-benchmark ns/op delta table against it")
	failOver := flag.Float64("fail-over", 0, "with -compare, exit 1 when any matched benchmark's ns/op regresses by more than this percentage (0 = advisory only)")
	flag.Parse()

	var benches []Bench
	if path := flag.Arg(0); path != "" {
		// Positional JSON file: compare two archived baselines without
		// re-running anything.
		var err error
		if benches, err = readBenchFile(path); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	} else {
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
		for sc.Scan() {
			line := sc.Text()
			fmt.Println(line)
			if b, ok := parseLine(line); ok {
				benches = append(benches, b)
			}
		}
		if err := sc.Err(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}

	if *compare != "" {
		oldB, err := readBenchFile(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		worst := compareBenches(os.Stdout, oldB, benches)
		if *failOver > 0 && worst > *failOver {
			fmt.Fprintf(os.Stderr, "benchjson: worst ns/op regression %+.1f%% exceeds -fail-over %g%%\n", worst, *failOver)
			return 1
		}
	}

	if *compare != "" && *out == "" {
		return 0 // comparison only; no JSON dump wanted
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(benches); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}
