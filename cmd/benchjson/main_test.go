package main

import "testing"

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkEngineCallEvents-8  \t 7670774\t       151.4 ns/op\t       0 B/op\t       0 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if b.Name != "BenchmarkEngineCallEvents" || b.Procs != 8 {
		t.Fatalf("name/procs = %q/%d", b.Name, b.Procs)
	}
	if b.Iterations != 7670774 || b.NsPerOp != 151.4 || b.BytesPerOp != 0 || b.AllocsPerOp != 0 {
		t.Fatalf("values = %+v", b)
	}
}

func TestParseLineCustomMetric(t *testing.T) {
	b, ok := parseLine("BenchmarkRun-4 10 1000 ns/op 42.5 events/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if b.Extra["events/op"] != 42.5 {
		t.Fatalf("extra = %v", b.Extra)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tccsim/internal/sim\t2.1s",
		"BenchmarkBroken-8 notanumber 5 ns/op",
		"Benchmark no fields",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("parsed noise line %q", line)
		}
	}
}
