package main

import (
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkEngineCallEvents-8  \t 7670774\t       151.4 ns/op\t       0 B/op\t       0 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if b.Name != "BenchmarkEngineCallEvents" || b.Procs != 8 {
		t.Fatalf("name/procs = %q/%d", b.Name, b.Procs)
	}
	if b.Iterations != 7670774 || b.NsPerOp != 151.4 || b.BytesPerOp != 0 || b.AllocsPerOp != 0 {
		t.Fatalf("values = %+v", b)
	}
}

func TestParseLineCustomMetric(t *testing.T) {
	b, ok := parseLine("BenchmarkRun-4 10 1000 ns/op 42.5 events/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if b.Extra["events/op"] != 42.5 {
		t.Fatalf("extra = %v", b.Extra)
	}
}

func TestCompareBenches(t *testing.T) {
	oldB := []Bench{
		{Name: "BenchmarkEngineCallEvents", Procs: 8, NsPerOp: 151.4},
		{Name: "BenchmarkGone", Procs: 8, NsPerOp: 10},
		{Name: "BenchmarkFlat", Procs: 8, NsPerOp: 200},
	}
	newB := []Bench{
		{Name: "BenchmarkEngineCallEvents", Procs: 8, NsPerOp: 148.2},
		{Name: "BenchmarkFlat", Procs: 8, NsPerOp: 200},
		{Name: "BenchmarkAdded", Procs: 8, NsPerOp: 33.3},
	}
	var sb strings.Builder
	compareBenches(&sb, oldB, newB)
	out := sb.String()
	for _, want := range []string{
		"BenchmarkEngineCallEvents-8",
		"151.40",
		"148.20",
		"-2.1%", // (148.2-151.4)/151.4
		"~",     // flat benchmark renders as unchanged
		"new",   // BenchmarkAdded has no old baseline
		"gone",  // BenchmarkGone vanished from the new set
		"BenchmarkAdded-8",
		"BenchmarkGone-8",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison output missing %q:\n%s", want, out)
		}
	}
	// Rows follow new-set order; removed benchmarks list last.
	if strings.Index(out, "BenchmarkAdded-8") > strings.Index(out, "BenchmarkGone-8") {
		t.Errorf("removed benchmarks should list after new-set rows:\n%s", out)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tccsim/internal/sim\t2.1s",
		"BenchmarkBroken-8 notanumber 5 ns/op",
		"Benchmark no fields",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("parsed noise line %q", line)
		}
	}
}
