package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkEngineCallEvents-8  \t 7670774\t       151.4 ns/op\t       0 B/op\t       0 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if b.Name != "BenchmarkEngineCallEvents" || b.Procs != 8 {
		t.Fatalf("name/procs = %q/%d", b.Name, b.Procs)
	}
	if b.Iterations != 7670774 || b.NsPerOp != 151.4 || b.BytesPerOp != 0 || b.AllocsPerOp != 0 {
		t.Fatalf("values = %+v", b)
	}
}

func TestParseLineCustomMetric(t *testing.T) {
	b, ok := parseLine("BenchmarkRun-4 10 1000 ns/op 42.5 events/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if b.Extra["events/op"] != 42.5 {
		t.Fatalf("extra = %v", b.Extra)
	}
}

func TestCompareBenches(t *testing.T) {
	oldB := []Bench{
		{Name: "BenchmarkEngineCallEvents", Procs: 8, NsPerOp: 151.4},
		{Name: "BenchmarkGone", Procs: 8, NsPerOp: 10},
		{Name: "BenchmarkFlat", Procs: 8, NsPerOp: 200},
	}
	newB := []Bench{
		{Name: "BenchmarkEngineCallEvents", Procs: 8, NsPerOp: 148.2},
		{Name: "BenchmarkFlat", Procs: 8, NsPerOp: 200},
		{Name: "BenchmarkAdded", Procs: 8, NsPerOp: 33.3},
	}
	var sb strings.Builder
	worst := compareBenches(&sb, oldB, newB)
	if worst != 0 {
		t.Errorf("worst regression = %g, want 0 (nothing got slower)", worst)
	}
	out := sb.String()
	for _, want := range []string{
		"BenchmarkEngineCallEvents-8",
		"151.40",
		"148.20",
		"-2.1%", // (148.2-151.4)/151.4
		"~",     // flat benchmark renders as unchanged
		"new",   // BenchmarkAdded has no old baseline
		"gone",  // BenchmarkGone vanished from the new set
		"BenchmarkAdded-8",
		"BenchmarkGone-8",
		"geomean (2 matched)",
		"-1.1%", // sqrt(148.2/151.4 * 1) - 1
	} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison output missing %q:\n%s", want, out)
		}
	}
	// Rows follow new-set order; removed benchmarks list last.
	if strings.Index(out, "BenchmarkAdded-8") > strings.Index(out, "BenchmarkGone-8") {
		t.Errorf("removed benchmarks should list after new-set rows:\n%s", out)
	}
}

// TestCompareWorstRegression checks the returned gate quantity is the
// single worst ns/op slowdown, not the geomean.
func TestCompareWorstRegression(t *testing.T) {
	oldB := []Bench{
		{Name: "BenchmarkA", Procs: 8, NsPerOp: 100},
		{Name: "BenchmarkB", Procs: 8, NsPerOp: 100},
	}
	newB := []Bench{
		{Name: "BenchmarkA", Procs: 8, NsPerOp: 110}, // +10%
		{Name: "BenchmarkB", Procs: 8, NsPerOp: 50},  // -50%
	}
	var sb strings.Builder
	worst := compareBenches(&sb, oldB, newB)
	if worst < 9.9 || worst > 10.1 {
		t.Errorf("worst regression = %g, want ~10", worst)
	}
	if !strings.Contains(sb.String(), "geomean (2 matched)") {
		t.Errorf("missing geomean row:\n%s", sb.String())
	}
}

// writeBenchJSON marshals benches to a temp file for run()-level tests.
func writeBenchJSON(t *testing.T, name string, benches []Bench) string {
	t.Helper()
	data, err := json.Marshal(benches)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// runCLI invokes run() in-process with the given arguments, suppressing
// stdout, and returns the exit code.
func runCLI(t *testing.T, args ...string) int {
	t.Helper()
	flag.CommandLine = flag.NewFlagSet(args[0], flag.ExitOnError)
	oldArgs, oldStdout := os.Args, os.Stdout
	t.Cleanup(func() { os.Args, os.Stdout = oldArgs, oldStdout })
	os.Args = args
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	os.Stdout = devnull
	return run()
}

// TestFailOverGate drives the CLI end to end: an over-threshold regression
// exits 1, an under-threshold one exits 0, and 0 disables the gate.
func TestFailOverGate(t *testing.T) {
	oldPath := writeBenchJSON(t, "old.json", []Bench{
		{Name: "BenchmarkA", Procs: 8, Iterations: 1, NsPerOp: 100},
	})
	newPath := writeBenchJSON(t, "new.json", []Bench{
		{Name: "BenchmarkA", Procs: 8, Iterations: 1, NsPerOp: 120},
	})
	if code := runCLI(t, "benchjson", "-compare", oldPath, "-fail-over", "10", newPath); code != 1 {
		t.Errorf("+20%% vs -fail-over 10: exit %d, want 1", code)
	}
	if code := runCLI(t, "benchjson", "-compare", oldPath, "-fail-over", "25", newPath); code != 0 {
		t.Errorf("+20%% vs -fail-over 25: exit %d, want 0", code)
	}
	if code := runCLI(t, "benchjson", "-compare", oldPath, newPath); code != 0 {
		t.Errorf("advisory compare without -fail-over: exit %d, want 0", code)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tccsim/internal/sim\t2.1s",
		"BenchmarkBroken-8 notanumber 5 ns/op",
		"Benchmark no fields",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("parsed noise line %q", line)
		}
	}
}
