package main

import (
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeJSON(t *testing.T, dir, name, body string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

const baseResult = `{
  "Workload": "mp3d",
  "Protocol": "P+CW under RC",
  "ExecTime": 1000000,
  "AvgReadMissLatency": 62.5,
  "Resources": [
    {"Name": "bus", "BusyPclocks": 400},
    {"Name": "dir", "BusyPclocks": 300}
  ]
}`

func twoDirs(t *testing.T) (string, string) {
	t.Helper()
	g, c := t.TempDir(), t.TempDir()
	writeJSON(t, g, "mp3d_P+CW.json", baseResult)
	writeJSON(t, c, "mp3d_P+CW.json", baseResult)
	return g, c
}

func TestFlatten(t *testing.T) {
	flat := make(map[string]any)
	flatten("", map[string]any{
		"A": 1.0,
		"B": map[string]any{"C": "x"},
		"R": []any{map[string]any{"N": 2.0}, 3.0},
	}, flat)
	want := map[string]any{"A": 1.0, "B.C": "x", "R[0].N": 2.0, "R[1]": 3.0}
	if len(flat) != len(want) {
		t.Fatalf("flatten = %v, want %v", flat, want)
	}
	for k, v := range want {
		if flat[k] != v {
			t.Errorf("flat[%q] = %v, want %v", k, flat[k], v)
		}
	}
}

func TestIdenticalDirsPass(t *testing.T) {
	g, c := twoDirs(t)
	if code := run([]string{g, c}); code != 0 {
		t.Fatalf("identical dirs: exit %d, want 0", code)
	}
	// Self-comparison must also pass.
	if code := run([]string{g, g}); code != 0 {
		t.Fatalf("self comparison: exit %d, want 0", code)
	}
}

func TestPerturbedValueFails(t *testing.T) {
	g, c := twoDirs(t)
	perturbed := `{
  "Workload": "mp3d",
  "Protocol": "P+CW under RC",
  "ExecTime": 1010000,
  "AvgReadMissLatency": 62.5,
  "Resources": [
    {"Name": "bus", "BusyPclocks": 400},
    {"Name": "dir", "BusyPclocks": 300}
  ]
}`
	writeJSON(t, c, "mp3d_P+CW.json", perturbed)
	if code := run([]string{g, c}); code != 1 {
		t.Fatalf("1%% ExecTime drift at exact tolerance: exit %d, want 1", code)
	}
	// A global 2% tolerance absorbs it.
	if code := run([]string{"-tol", "0.02", g, c}); code != 0 {
		t.Fatalf("1%% drift under -tol 0.02: exit %d, want 0", code)
	}
	// A per-metric override on just ExecTime also absorbs it.
	if code := run([]string{"-tol-metric", "ExecTime=0.02", g, c}); code != 0 {
		t.Fatalf("1%% drift under -tol-metric ExecTime=0.02: exit %d, want 0", code)
	}
	// An override on an unrelated metric does not.
	if code := run([]string{"-tol-metric", "AvgReadMissLatency=0.5", g, c}); code != 1 {
		t.Fatalf("unrelated override: exit %d, want 1", code)
	}
}

func TestNestedValueGated(t *testing.T) {
	g, c := twoDirs(t)
	writeJSON(t, c, "mp3d_P+CW.json", `{
  "Workload": "mp3d",
  "Protocol": "P+CW under RC",
  "ExecTime": 1000000,
  "AvgReadMissLatency": 62.5,
  "Resources": [
    {"Name": "bus", "BusyPclocks": 999},
    {"Name": "dir", "BusyPclocks": 300}
  ]
}`)
	if code := run([]string{g, c}); code != 1 {
		t.Fatalf("nested Resources drift: exit %d, want 1", code)
	}
	// Full-path override targets exactly the drifted leaf.
	if code := run([]string{"-tol-metric", "Resources[0].BusyPclocks=0.7", g, c}); code != 0 {
		t.Fatalf("full-path override: exit %d, want 0", code)
	}
}

func TestStringChangeFails(t *testing.T) {
	g, c := twoDirs(t)
	writeJSON(t, c, "mp3d_P+CW.json", `{
  "Workload": "mp3d",
  "Protocol": "P under RC",
  "ExecTime": 1000000,
  "AvgReadMissLatency": 62.5,
  "Resources": [
    {"Name": "bus", "BusyPclocks": 400},
    {"Name": "dir", "BusyPclocks": 300}
  ]
}`)
	// Strings gate exactly even under a generous numeric tolerance.
	if code := run([]string{"-tol", "0.5", g, c}); code != 1 {
		t.Fatalf("protocol string change: exit %d, want 1", code)
	}
}

func TestMissingAndExtraFiles(t *testing.T) {
	g, c := twoDirs(t)
	// Candidate missing a baseline file fails.
	if err := os.Remove(filepath.Join(c, "mp3d_P+CW.json")); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{g, c}); code != 1 {
		t.Fatalf("missing candidate file: exit %d, want 1", code)
	}
	// Candidate-only files are tolerated: a grown sweep is not a regression.
	writeJSON(t, c, "mp3d_P+CW.json", baseResult)
	writeJSON(t, c, "ocean_BASIC.json", baseResult)
	if code := run([]string{g, c}); code != 0 {
		t.Fatalf("extra candidate file: exit %d, want 0", code)
	}
}

func TestSchemaDriftFails(t *testing.T) {
	g, c := twoDirs(t)
	writeJSON(t, c, "mp3d_P+CW.json", `{
  "Workload": "mp3d",
  "Protocol": "P+CW under RC",
  "ExecTime": 1000000,
  "AvgReadMissLatency": 62.5,
  "NewCounter": 7,
  "Resources": [
    {"Name": "bus", "BusyPclocks": 400},
    {"Name": "dir", "BusyPclocks": 300}
  ]
}`)
	if code := run([]string{g, c}); code != 1 {
		t.Fatalf("candidate-only metric: exit %d, want 1", code)
	}
}

func TestUsageErrors(t *testing.T) {
	g, _ := twoDirs(t)
	if code := run([]string{g}); code != 2 {
		t.Fatalf("one arg: exit %d, want 2", code)
	}
	if code := run([]string{"-tol-metric", "garbage", g, g}); code != 2 {
		t.Fatalf("bad -tol-metric: exit %d, want 2", code)
	}
	if code := run([]string{"-tol", "-1", g, g}); code != 2 {
		t.Fatalf("negative -tol: exit %d, want 2", code)
	}
}

// captureStderr runs fn with os.Stderr redirected to a pipe and returns
// what it wrote.
func captureStderr(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stderr
	os.Stderr = w
	defer func() { os.Stderr = orig }()
	fn()
	w.Close()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestMissingBaselineDistinctExit pins the "no baseline" contract: exit 3
// (distinct from usage errors and gate failures) and exactly one stderr
// line telling the user to run `make golden`.
func TestMissingBaselineDistinctExit(t *testing.T) {
	g, _ := twoDirs(t)
	var code int
	out := captureStderr(t, func() { code = run([]string{filepath.Join(g, "absent"), g}) })
	if code != 3 {
		t.Fatalf("missing baseline dir: exit %d, want 3", code)
	}
	if n := strings.Count(out, "\n"); n != 1 {
		t.Fatalf("missing baseline dir: %d stderr lines, want exactly 1:\n%s", n, out)
	}
	if !strings.Contains(out, "does not exist") || !strings.Contains(out, "make golden") {
		t.Fatalf("missing baseline message %q must name the problem and the fix", out)
	}
}

// TestEmptyBaselineDistinctExit: a baseline directory with no .json files
// gets the same treatment as an absent one.
func TestEmptyBaselineDistinctExit(t *testing.T) {
	g, _ := twoDirs(t)
	empty := t.TempDir()
	// A non-JSON file must not count as a baseline entry.
	writeJSON(t, empty, "README.txt", "not a result")
	var code int
	out := captureStderr(t, func() { code = run([]string{empty, g}) })
	if code != 3 {
		t.Fatalf("empty baseline: exit %d, want 3", code)
	}
	if n := strings.Count(out, "\n"); n != 1 {
		t.Fatalf("empty baseline: %d stderr lines, want exactly 1:\n%s", n, out)
	}
	if !strings.Contains(out, "no .json files") || !strings.Contains(out, "make golden") {
		t.Fatalf("empty baseline message %q must name the problem and the fix", out)
	}
	// An empty CANDIDATE is not a baseline problem: every golden file is
	// missing, which is a gate failure (exit 1), not exit 3.
	if code := run([]string{g, t.TempDir()}); code != 1 {
		t.Fatalf("empty candidate: exit %d, want 1", code)
	}
}

func TestRelDelta(t *testing.T) {
	cases := []struct{ g, c, want float64 }{
		{0, 0, 0},
		{100, 100, 0},
		{100, 101, 1.0 / 101},
		{101, 100, 1.0 / 101}, // symmetric
		{0, 5, 1},
		{5, 0, 1},
		{-100, 100, 2},
	}
	for _, tc := range cases {
		if got := relDelta(tc.g, tc.c); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("relDelta(%g, %g) = %g, want %g", tc.g, tc.c, got, tc.want)
		}
	}
}
