// Command metricsdiff is the sweep's metrics regression gate: it compares
// a directory of per-run Result JSON files (as written by
// `experiments -metrics DIR`) against a committed golden baseline and
// exits non-zero when any metric moved beyond its tolerance.
//
// Usage:
//
//	metricsdiff GOLDEN_DIR CANDIDATE_DIR
//	metricsdiff -tol 0.01 golden out              # 1% slack on everything
//	metricsdiff -tol-metric AvgReadMissLatency=0.02,ExecTime=0 golden out
//
// The simulator is deterministic, so the default tolerance is exact
// equality; `-tol` sets a global relative tolerance and `-tol-metric`
// overrides it per metric (matched by full dotted path first, then by
// leaf name). Every comparison walks the flattened JSON, so nested
// fields (Resources[3].BusyPclocks) and scalar fields gate alike.
//
// Verdicts: a candidate file or metric missing from the baseline's view,
// a metric present only in the candidate (schema drift), a non-numeric
// mismatch, or a numeric delta beyond tolerance all fail the gate. Files
// present only in the candidate directory are reported but do not fail —
// a grown sweep is not a regression. `make golden` regenerates the
// baseline after an intentional change.
//
// Exit codes: 0 pass, 1 gate failure, 2 bad invocation or unreadable
// input, 3 missing or empty baseline directory (run `make golden`).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("metricsdiff", flag.ContinueOnError)
	tol := fs.Float64("tol", 0, "global relative tolerance (0 = exact; the simulator is deterministic)")
	tolMetric := fs.String("tol-metric", "", `comma-separated per-metric overrides, e.g. "AvgReadMissLatency=0.02,Resources[0].BusyPclocks=0.1"`)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: metricsdiff [-tol F] [-tol-metric M=F,...] GOLDEN_DIR CANDIDATE_DIR")
		return 2
	}
	tols, err := parseTolerances(*tol, *tolMetric)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	golden, err := loadDir(fs.Arg(0))
	if err != nil {
		// An absent baseline is a setup problem, not a regression: one clear
		// line naming the fix, and exit 3 so callers can tell "no baseline"
		// (3) apart from "bad invocation" (2) and "gate failed" (1).
		if errors.Is(err, os.ErrNotExist) {
			fmt.Fprintf(os.Stderr, "metricsdiff: baseline directory %s does not exist; run `make golden` to create it\n", fs.Arg(0))
			return 3
		}
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if len(golden) == 0 {
		fmt.Fprintf(os.Stderr, "metricsdiff: baseline directory %s has no .json files; run `make golden` to populate it\n", fs.Arg(0))
		return 3
	}
	candidate, err := loadDir(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	rep := compare(golden, candidate, tols)
	rep.render(os.Stdout, fs.Arg(0), fs.Arg(1))
	if len(rep.failures) > 0 {
		return 1
	}
	return 0
}

// tolerances resolves the allowed relative deviation for one metric:
// full-path override, then leaf-name override, then the global default.
type tolerances struct {
	def    float64
	byName map[string]float64
}

func parseTolerances(def float64, spec string) (tolerances, error) {
	t := tolerances{def: def, byName: map[string]float64{}}
	if def < 0 {
		return t, fmt.Errorf("metricsdiff: negative -tol %g", def)
	}
	if spec == "" {
		return t, nil
	}
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return t, fmt.Errorf("metricsdiff: bad -tol-metric entry %q (want Metric=frac)", part)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 {
			return t, fmt.Errorf("metricsdiff: bad tolerance in %q", part)
		}
		t.byName[name] = f
	}
	return t, nil
}

func (t tolerances) lookup(path string) float64 {
	if f, ok := t.byName[path]; ok {
		return f
	}
	if i := strings.LastIndexAny(path, ".]"); i >= 0 {
		if f, ok := t.byName[path[i+1:]]; ok {
			return f
		}
	}
	return t.def
}

// loadDir reads every .json file in dir into flattened metric maps keyed
// by filename.
func loadDir(dir string) (map[string]map[string]any, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("metricsdiff: %w", err)
	}
	out := make(map[string]map[string]any)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("metricsdiff: %w", err)
		}
		var v any
		if err := json.Unmarshal(b, &v); err != nil {
			return nil, fmt.Errorf("metricsdiff: %s: %w", e.Name(), err)
		}
		flat := make(map[string]any)
		flatten("", v, flat)
		out[e.Name()] = flat
	}
	return out, nil
}

// flatten walks decoded JSON, recording every leaf under its dotted path
// ("Resources[3].BusyPclocks", "Cache.SLCHits").
func flatten(prefix string, v any, out map[string]any) {
	switch x := v.(type) {
	case map[string]any:
		for k, sub := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flatten(p, sub, out)
		}
	case []any:
		for i, sub := range x {
			flatten(fmt.Sprintf("%s[%d]", prefix, i), sub, out)
		}
	default:
		out[prefix] = x
	}
}

// failure is one gate violation.
type failure struct {
	file   string
	metric string
	golden string
	got    string
	// relDelta is the relative deviation for numeric mismatches, NaN for
	// structural ones (missing files/metrics, type mismatches).
	relDelta float64
	tol      float64
	reason   string
}

type report struct {
	files    int // files compared
	metrics  int // metrics compared
	failures []failure
	extras   []string // candidate-only files (reported, not failed)
}

func compare(golden, candidate map[string]map[string]any, tols tolerances) *report {
	rep := &report{}
	for name := range candidate {
		if _, ok := golden[name]; !ok {
			rep.extras = append(rep.extras, name)
		}
	}
	sort.Strings(rep.extras)
	var files []string
	for name := range golden {
		files = append(files, name)
	}
	sort.Strings(files)
	for _, name := range files {
		g := golden[name]
		c, ok := candidate[name]
		if !ok {
			rep.failures = append(rep.failures, failure{
				file: name, relDelta: math.NaN(), reason: "file missing from candidate",
			})
			continue
		}
		rep.files++
		var paths []string
		for p := range g {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			rep.metrics++
			cv, ok := c[p]
			if !ok {
				rep.failures = append(rep.failures, failure{
					file: name, metric: p, golden: renderValue(g[p]),
					relDelta: math.NaN(), reason: "metric missing from candidate",
				})
				continue
			}
			rep.compareValue(name, p, g[p], cv, tols)
		}
		for p := range c {
			if _, ok := g[p]; !ok {
				rep.failures = append(rep.failures, failure{
					file: name, metric: p, got: renderValue(c[p]),
					relDelta: math.NaN(), reason: "metric absent from baseline (schema drift; run `make golden`)",
				})
			}
		}
	}
	sort.Slice(rep.failures, func(i, j int) bool {
		if rep.failures[i].file != rep.failures[j].file {
			return rep.failures[i].file < rep.failures[j].file
		}
		return rep.failures[i].metric < rep.failures[j].metric
	})
	return rep
}

func (rep *report) compareValue(file, path string, gv, cv any, tols tolerances) {
	gn, gIsNum := gv.(float64)
	cn, cIsNum := cv.(float64)
	if gIsNum != cIsNum {
		rep.failures = append(rep.failures, failure{
			file: file, metric: path, golden: renderValue(gv), got: renderValue(cv),
			relDelta: math.NaN(), reason: "type changed",
		})
		return
	}
	if !gIsNum {
		if gv != cv {
			rep.failures = append(rep.failures, failure{
				file: file, metric: path, golden: renderValue(gv), got: renderValue(cv),
				relDelta: math.NaN(), reason: "value changed",
			})
		}
		return
	}
	rel := relDelta(gn, cn)
	if tol := tols.lookup(path); rel > tol {
		rep.failures = append(rep.failures, failure{
			file: file, metric: path, golden: renderValue(gv), got: renderValue(cv),
			relDelta: rel, tol: tol, reason: "beyond tolerance",
		})
	}
}

// relDelta is |g-c| normalized by the larger magnitude, so it is symmetric
// and lands in [0, 1] for same-signed values (1 when one side is zero).
func relDelta(g, c float64) float64 {
	if g == c {
		return 0
	}
	denom := math.Max(math.Abs(g), math.Abs(c))
	return math.Abs(g-c) / denom
}

func renderValue(v any) string {
	switch x := v.(type) {
	case nil:
		return "null"
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	default:
		return fmt.Sprint(v)
	}
}

func (rep *report) render(w *os.File, goldenDir, candidateDir string) {
	for _, name := range rep.extras {
		fmt.Fprintf(w, "note: %s exists only in %s (not gated)\n", name, candidateDir)
	}
	if len(rep.failures) == 0 {
		fmt.Fprintf(w, "metricsdiff: OK — %d files, %d metrics within tolerance of %s\n",
			rep.files, rep.metrics, goldenDir)
		return
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "file\tmetric\tgolden\tgot\trel-delta\ttol\treason")
	for _, f := range rep.failures {
		delta := "-"
		if !math.IsNaN(f.relDelta) {
			delta = strconv.FormatFloat(f.relDelta, 'g', 4, 64)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%g\t%s\n",
			f.file, f.metric, f.golden, f.got, delta, f.tol, f.reason)
	}
	tw.Flush()
	fmt.Fprintf(w, "metricsdiff: FAIL — %d regression(s) across %d files, %d metrics\n",
		len(rep.failures), rep.files, rep.metrics)
}
