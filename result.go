package ccsim

import (
	"fmt"

	"ccsim/internal/machine"
	"ccsim/internal/memsys"
	"ccsim/internal/sim"
	"ccsim/internal/stats"
	"ccsim/internal/telemetry"
)

// QueueStats is the event engine's internal scheduling profile — wheel vs
// overflow routing counts, migrations, cohort-size histogram, and depth
// high-water marks. See sim.QueueStats for field documentation.
type QueueStats = sim.QueueStats

// CohortBucketMax returns the largest cohort size QueueStats.CohortSizeLog2
// bucket i covers (the last bucket is open-ended).
func CohortBucketMax(i int) uint64 { return sim.CohortBucketMax(i) }

func memAddr(a uint64) memsys.Addr { return memsys.Addr(a) }

// ResourceUtil reports one contended resource's occupancy over the run.
type ResourceUtil struct {
	Name          string  // "bus" or "slc"
	Node          int     // owning node
	Utilization   float64 // busy pclocks / TotalPclocks
	BusyPclocks   int64
	WaitPclocks   int64 // cumulative time requests queued for the resource
	Uses          uint64
	MaxQueueDepth int // peak simultaneous reservations
}

func convertResources(r *machine.Result) []ResourceUtil {
	out := make([]ResourceUtil, 0, len(r.Resources))
	for _, u := range r.Resources {
		ru := ResourceUtil{
			Name:          u.Name,
			Node:          u.Node,
			BusyPclocks:   u.Busy,
			WaitPclocks:   u.Wait,
			Uses:          u.Uses,
			MaxQueueDepth: u.MaxQueueDepth,
		}
		if r.TotalPclocks > 0 {
			ru.Utilization = float64(u.Busy) / float64(r.TotalPclocks)
		}
		out = append(out, ru)
	}
	return out
}

func missPhases(cfg Config) map[string]int64 {
	if cfg.Telemetry == nil {
		return nil
	}
	return cfg.Telemetry.PhaseTotals(telemetry.SpanRead)
}

// Result carries everything a run measures, in the units the paper
// reports.
type Result struct {
	Protocol string // BASIC, P, CW, M, P+CW, ... (-SC under SC)
	Workload string
	Network  string
	Procs    int

	// ExecTime is the measured parallel-section duration in pclocks
	// (1 pclock = 10 ns).
	ExecTime int64

	// Execution-time decomposition, summed over processors (divide by
	// Procs for the per-processor averages the figures plot).
	Busy         int64
	ReadStall    int64
	WriteStall   int64
	AcquireStall int64 // lock waits plus barrier waits (as the paper reports)
	BarrierStall int64 // the barrier component of AcquireStall, separately
	ReleaseStall int64

	// Reference counts (measured section only).
	Reads  uint64
	Writes uint64

	// SLC demand-miss components.
	ColdMisses        uint64
	CoherenceMisses   uint64
	ReplacementMisses uint64

	// Network traffic in bytes (messages that actually crossed the
	// network; local bus transactions excluded).
	TrafficBytes uint64
	TrafficMsgs  uint64
	UpdateBytes  uint64 // competitive-update component
	DataBytes    uint64

	// Mean demand read-miss service time in pclocks (the paper quotes
	// MP3D's dropping 41% under CW).
	AvgReadMissLatency float64
	// MissLatencyP50/P95/P99 are distribution points of the same (bucketed
	// upper bounds): contention shows in the tail long before the mean.
	// MissLatencyMax is exact.
	MissLatencyP50 int64
	MissLatencyP95 int64
	MissLatencyP99 int64
	MissLatencyMax int64

	// TotalPclocks is the full run duration including initialization — the
	// denominator of each ResourceUtil.Utilization.
	TotalPclocks int64

	// Resources reports lifetime occupancy of every node's bus and SLC.
	Resources []ResourceUtil

	// MissPhasePclocks decomposes sampled demand-miss spans by protocol
	// phase (request transit, directory wait, memory access, owner forward,
	// reply transit, FLC fill), summed over spans. Nil unless the run had a
	// Telemetry collector attached.
	MissPhasePclocks map[string]int64 `json:",omitempty"`

	// DroppedSpans counts telemetry spans discarded by the collector's
	// MaxSpans cap. Nonzero means MissPhasePclocks and exported timelines
	// undercount transactions; raise TelemetryOptions.MaxSpans to capture
	// everything. Zero (and omitted from JSON) when telemetry was off or
	// nothing overflowed.
	DroppedSpans uint64 `json:",omitempty"`

	// Sharing is the per-class sharing-pattern summary: block counts, event
	// attribution and miss-latency distribution for each observed access
	// pattern. Nil unless the run had an analyzer attached (Config.Sharing).
	Sharing *SharingReport `json:",omitempty"`

	// Extension activity.
	PrefetchesIssued  uint64
	PrefetchesUseful  uint64
	PrefetchPartHits  uint64
	PrefetchesNacked  uint64
	OwnershipRequests uint64
	UpdateRequests    uint64
	MigDetections     uint64
	MigReverts        uint64
	ExclSupplies      uint64
	WriteCacheHits    uint64
	PointerOverflows  uint64 // limited-pointer directory overflow events
	BroadcastInvs     uint64 // ownership grants that broadcast invalidations

	// Queue is the event engine's queue-internals profile for the run:
	// always-on counters the ops plane aggregates across a sweep.
	Queue QueueStats
}

func convertResult(cfg Config, r *machine.Result) *Result {
	return &Result{
		Protocol:           r.Protocol,
		Workload:           cfg.Workload,
		Network:            r.Network,
		Procs:              r.Nodes,
		ExecTime:           r.ExecTime,
		Busy:               r.Busy,
		ReadStall:          r.ReadStall,
		WriteStall:         r.WriteStall,
		AcquireStall:       r.AcquireStall + r.BarrierStall,
		BarrierStall:       r.BarrierStall,
		ReleaseStall:       r.ReleaseStall,
		Reads:              r.Reads,
		Writes:             r.Writes,
		ColdMisses:         r.Misses[stats.Cold],
		CoherenceMisses:    r.Misses[stats.Coherence],
		ReplacementMisses:  r.Misses[stats.Replacement],
		TrafficBytes:       r.Traffic.TotalBytes(),
		TrafficMsgs:        r.Traffic.TotalMsgs(),
		UpdateBytes:        r.Traffic.Bytes[stats.UpdateMsg],
		DataBytes:          r.Traffic.Bytes[stats.DataMsg],
		AvgReadMissLatency: r.AvgReadMissLatency(),
		MissLatencyP50:     r.Cache.LatencyHist.Quantile(50),
		MissLatencyP95:     r.Cache.LatencyHist.Quantile(95),
		MissLatencyP99:     r.Cache.LatencyHist.Quantile(99),
		MissLatencyMax:     r.Cache.LatencyHist.Max(),
		TotalPclocks:       r.TotalPclocks,
		Resources:          convertResources(r),
		MissPhasePclocks:   missPhases(cfg),
		DroppedSpans:       cfg.Telemetry.DroppedSpans(),
		Sharing:            cfg.Sharing.Report(),
		PrefetchesIssued:   r.Prefetch.Issued,
		PrefetchesUseful:   r.Prefetch.Useful,
		PrefetchPartHits:   r.Prefetch.PartHits,
		PrefetchesNacked:   r.Prefetch.Nacked,
		OwnershipRequests:  r.OwnReqs,
		UpdateRequests:     r.UpdateReqs,
		MigDetections:      r.MigDetections,
		MigReverts:         r.MigReverts,
		ExclSupplies:       r.ExclSupplies,
		WriteCacheHits:     r.Cache.WCHits,
		PointerOverflows:   r.PointerOverflows,
		BroadcastInvs:      r.BroadcastInvs,
		Queue:              r.Queue,
	}
}

// ColdMissRate returns the cold miss-rate component as a percentage of
// shared reads (the paper's Table 2 metric).
func (r *Result) ColdMissRate() float64 { return r.ratePct(r.ColdMisses) }

// CoherenceMissRate returns the coherence miss-rate component in percent.
func (r *Result) CoherenceMissRate() float64 { return r.ratePct(r.CoherenceMisses) }

// ReplacementMissRate returns the replacement miss-rate component in
// percent.
func (r *Result) ReplacementMissRate() float64 { return r.ratePct(r.ReplacementMisses) }

func (r *Result) ratePct(n uint64) float64 {
	if r.Reads == 0 {
		return 0
	}
	return 100 * float64(n) / float64(r.Reads)
}

// RelativeTo returns this run's execution time as a fraction of base's —
// the paper's "execution times relative to BASIC".
func (r *Result) RelativeTo(base *Result) float64 {
	if base.ExecTime == 0 {
		return 0
	}
	return float64(r.ExecTime) / float64(base.ExecTime)
}

// TrafficRelativeTo returns this run's network traffic normalized to
// base's (the paper's Figure 4 metric).
func (r *Result) TrafficRelativeTo(base *Result) float64 {
	if base.TrafficBytes == 0 {
		return 0
	}
	return float64(r.TrafficBytes) / float64(base.TrafficBytes)
}

// String summarizes the run on one line.
func (r *Result) String() string {
	return fmt.Sprintf("%s/%s: exec=%d busy=%d read=%d write=%d acq=%d rel=%d cold=%.2f%% coh=%.2f%% repl=%.2f%% traffic=%dB",
		r.Workload, r.Protocol, r.ExecTime,
		r.Busy, r.ReadStall, r.WriteStall, r.AcquireStall, r.ReleaseStall,
		r.ColdMissRate(), r.CoherenceMissRate(), r.ReplacementMissRate(),
		r.TrafficBytes)
}
