package cache

import "ccsim/internal/memsys"

// WCEntry is one block frame of the write cache: which block it buffers and
// the per-word dirty/valid bits (paper §3.3: "To keep track of the modified
// words in a block of the write cache, a dirty/valid bit is associated with
// each word").
type WCEntry struct {
	Valid bool
	Block memsys.Block
	Mask  memsys.WordMask
}

// WriteCache is the small direct-mapped cache that allocates blocks on
// write requests only and combines consecutive writes to the same block
// before they are issued (paper §3.3). The recommended size is four blocks.
type WriteCache struct {
	entries []WCEntry
	// Statistics.
	writes    uint64
	combined  uint64 // writes merged into an already-allocated entry
	evictions uint64
}

// NewWriteCache returns a write cache with the given number of block
// frames.
func NewWriteCache(blocks int) *WriteCache {
	return &WriteCache{entries: make([]WCEntry, blocks)}
}

// Size returns the number of block frames.
func (w *WriteCache) Size() int { return len(w.entries) }

func (w *WriteCache) idx(b memsys.Block) int {
	return int(uint64(b) % uint64(len(w.entries)))
}

// Write records a write to word word of block b, allocating a frame if
// needed. If the frame held a different block, that block is victimized and
// returned so the controller can flush it to home.
//
// Accounting contract: every call counts as exactly one write (the
// processor committed a write to the cache), a call that merges into an
// already-allocated entry additionally counts as combined, and a call that
// victimizes another block additionally counts as an eviction — so
// writes == allocations + combined, and combined/writes is the combining
// rate. A caller that may back off (the SLC controller stalls the write
// when WouldEvict finds the second-level write buffer full) must consult
// WouldEvict *before* calling Write: WouldEvict is a pure query and
// counts nothing, so a stalled-and-retried write is counted once, when it
// finally commits.
func (w *WriteCache) Write(b memsys.Block, word int) (victim WCEntry, evicted bool) {
	w.writes++
	e := &w.entries[w.idx(b)]
	if e.Valid && e.Block == b {
		w.combined++
		e.Mask = e.Mask.Set(word)
		return WCEntry{}, false
	}
	if e.Valid {
		victim, evicted = *e, true
		w.evictions++
	}
	*e = WCEntry{Valid: true, Block: b, Mask: memsys.WordMask(0).Set(word)}
	return victim, evicted
}

// WouldEvict reports whether a Write to block b would victimize another
// block's entry, so the controller can check buffer space before committing.
func (w *WriteCache) WouldEvict(b memsys.Block) bool {
	e := &w.entries[w.idx(b)]
	return e.Valid && e.Block != b
}

// Lookup returns the dirty-word mask for block b, or ok=false if b is not
// allocated.
func (w *WriteCache) Lookup(b memsys.Block) (mask memsys.WordMask, ok bool) {
	e := &w.entries[w.idx(b)]
	if e.Valid && e.Block == b {
		return e.Mask, true
	}
	return 0, false
}

// Remove deallocates block b (after its update has been issued) and
// returns its entry.
func (w *WriteCache) Remove(b memsys.Block) (WCEntry, bool) {
	e := &w.entries[w.idx(b)]
	if e.Valid && e.Block == b {
		v := *e
		e.Valid = false
		return v, true
	}
	return WCEntry{}, false
}

// DrainAll removes and returns every valid entry, in frame order. Used at
// releases, when all combined writes must be propagated.
func (w *WriteCache) DrainAll() []WCEntry {
	var out []WCEntry
	for i := range w.entries {
		if w.entries[i].Valid {
			out = append(out, w.entries[i])
			w.entries[i].Valid = false
		}
	}
	return out
}

// Occupancy returns the number of valid entries.
func (w *WriteCache) Occupancy() int {
	n := 0
	for i := range w.entries {
		if w.entries[i].Valid {
			n++
		}
	}
	return n
}

// Writes returns the total writes recorded.
func (w *WriteCache) Writes() uint64 { return w.writes }

// Combined returns how many writes merged into an existing entry — the
// write-traffic reduction the write cache exists for.
func (w *WriteCache) Combined() uint64 { return w.combined }

// Evictions returns how many entries were victimized by conflicts.
func (w *WriteCache) Evictions() uint64 { return w.evictions }
