package cache

import (
	"testing"
	"testing/quick"

	"ccsim/internal/memsys"
)

func TestAssocAvoidsDirectMappedConflict(t *testing.T) {
	// Blocks 1 and 5 conflict in a 4-frame direct-mapped cache but coexist
	// in a 2-way one (4 frames = 2 sets of 2; 1 % 2 == 5 % 2 but the set
	// holds both).
	c := NewSLCAssoc(4, 2)
	c.Insert(1, Shared)
	_, victim := c.Insert(5, Shared)
	if victim != nil {
		t.Fatalf("2-way cache evicted on second insert: %+v", victim)
	}
	if c.Lookup(1) == nil || c.Lookup(5) == nil {
		t.Fatal("both blocks should be resident")
	}
}

func TestAssocLRUReplacement(t *testing.T) {
	c := NewSLCAssoc(4, 2) // 2 sets x 2 ways
	// Fill set 1 (odd blocks).
	c.Insert(1, Shared)
	c.Insert(3, Shared)
	// Touch 1 so 3 becomes the LRU way.
	if c.Lookup(1) == nil {
		t.Fatal("lookup failed")
	}
	_, victim := c.Insert(5, Shared)
	if victim == nil || victim.Block != 3 {
		t.Fatalf("victim = %+v, want block 3 (LRU)", victim)
	}
	if c.Lookup(1) == nil || c.Lookup(5) == nil {
		t.Fatal("MRU block or new block lost")
	}
}

func TestAssocInvalidateFreesWay(t *testing.T) {
	c := NewSLCAssoc(4, 2)
	c.Insert(1, Shared)
	c.Insert(3, Dirty)
	c.Invalidate(1)
	_, victim := c.Insert(5, Shared)
	if victim != nil {
		t.Fatalf("insert into invalidated way evicted %+v", victim)
	}
	if c.Lookup(3) == nil || c.Lookup(5) == nil {
		t.Fatal("resident blocks lost")
	}
}

func TestAssocReinsertSameBlock(t *testing.T) {
	c := NewSLCAssoc(4, 2)
	l, _ := c.Insert(1, Shared)
	l.PrefetchBit = true
	l2, victim := c.Insert(1, Dirty)
	if victim != nil || l2.PrefetchBit || l2.State != Dirty {
		t.Fatalf("reinsert wrong: %+v victim=%v", l2, victim)
	}
	if c.Valid() != 1 {
		t.Fatalf("Valid = %d", c.Valid())
	}
}

func TestAssocConstructionPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewSLCAssoc(4, 0) },
		func() { NewSLCAssoc(5, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad construction did not panic")
				}
			}()
			f()
		}()
	}
	// Infinite cache ignores associativity gracefully.
	if c := NewSLCAssoc(0, 4); c.Sets() != 0 || c.Ways() != 4 {
		t.Fatal("infinite associative construction wrong")
	}
}

// Property: an N-frame fully associative cache driven by fewer than N+1
// distinct blocks never evicts.
func TestFullyAssociativeNoEvictionsProperty(t *testing.T) {
	f := func(refs []uint8) bool {
		const frames = 8
		c := NewSLCAssoc(frames, frames) // one set: fully associative
		for _, r := range refs {
			b := memsys.Block(r % frames)
			if c.Lookup(b) == nil {
				if _, victim := c.Insert(b, Shared); victim != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: associativity never loses blocks — after any mix of inserts
// and invalidates, Lookup agrees with an LRU reference model.
func TestAssocMatchesReferenceModelProperty(t *testing.T) {
	type refModel struct {
		order []memsys.Block // LRU order per set key, most recent last
	}
	f := func(ops []struct {
		B   uint8
		Inv bool
	}) bool {
		const frames, ways = 8, 2
		nsets := frames / ways
		c := NewSLCAssoc(frames, ways)
		model := make(map[int][]memsys.Block, nsets) // set -> MRU-last list
		find := func(l []memsys.Block, b memsys.Block) int {
			for i, x := range l {
				if x == b {
					return i
				}
			}
			return -1
		}
		for _, op := range ops {
			b := memsys.Block(op.B % 32)
			set := int(uint64(b) % uint64(nsets))
			l := model[set]
			if op.Inv {
				c.Invalidate(b)
				if i := find(l, b); i >= 0 {
					model[set] = append(l[:i], l[i+1:]...)
				}
				continue
			}
			// Simulate a demand fill: lookup (refresh) or insert.
			if c.Lookup(b) != nil {
				i := find(l, b)
				model[set] = append(append(l[:i], l[i+1:]...), b)
				continue
			}
			c.Insert(b, Shared)
			if len(l) == ways {
				l = l[1:] // evict LRU
			}
			model[set] = append(l, b)
		}
		for set, l := range model {
			for _, b := range l {
				if c.Lookup(b) == nil {
					return false
				}
				_ = set
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
