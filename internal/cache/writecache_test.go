package cache

import (
	"testing"

	"ccsim/internal/memsys"
)

// TestWriteCacheAccounting pins the statistics contract documented on
// Write: writes counts one per committed call, combined counts merges into
// an allocated entry, evictions counts victimized frames, and
// writes == allocations + combined.
func TestWriteCacheAccounting(t *testing.T) {
	w := NewWriteCache(2)
	if v, ev := w.Write(10, 0); ev {
		t.Fatalf("first write evicted %+v", v)
	}
	w.Write(10, 1) // merge
	w.Write(10, 1) // merge again (idempotent word)
	if v, ev := w.Write(12, 3); !ev || v.Block != 10 {
		t.Fatalf("conflicting write: victim %+v evicted=%v, want block 10", v, ev)
	}
	if got := w.Writes(); got != 4 {
		t.Errorf("Writes() = %d, want 4", got)
	}
	if got := w.Combined(); got != 2 {
		t.Errorf("Combined() = %d, want 2", got)
	}
	if got := w.Evictions(); got != 1 {
		t.Errorf("Evictions() = %d, want 1", got)
	}
	// allocations = writes - combined = 2 (blocks 10 and 12).
	if allocs := w.Writes() - w.Combined(); allocs != 2 {
		t.Errorf("allocations = %d, want 2", allocs)
	}
	mask, ok := w.Lookup(12)
	if !ok || mask != memsys.WordMask(0).Set(3) {
		t.Errorf("Lookup(12) = %v, %v; want word-3 mask", mask, ok)
	}
}

// TestWriteCacheQueriesCountNothing pins that WouldEvict, Lookup, Remove,
// DrainAll and Occupancy never touch the statistics — the controller
// consults WouldEvict before every potentially-stalling write, and a
// stalled-then-retried write must be counted exactly once.
func TestWriteCacheQueriesCountNothing(t *testing.T) {
	w := NewWriteCache(1)
	w.Write(5, 0)
	for i := 0; i < 3; i++ {
		// A stalled controller re-queries every retry; none of this counts.
		if !w.WouldEvict(6) {
			t.Fatalf("WouldEvict(6) = false with block 5 resident")
		}
		if w.WouldEvict(5) {
			t.Fatalf("WouldEvict(5) = true for the resident block")
		}
		w.Lookup(5)
		w.Occupancy()
	}
	if w.Writes() != 1 || w.Combined() != 0 || w.Evictions() != 0 {
		t.Fatalf("queries moved counters: writes=%d combined=%d evictions=%d",
			w.Writes(), w.Combined(), w.Evictions())
	}
	if _, ok := w.Remove(5); !ok {
		t.Fatalf("Remove(5) missed")
	}
	w.Write(7, 2)
	w.DrainAll()
	if w.Writes() != 2 || w.Evictions() != 0 {
		t.Fatalf("Remove/DrainAll are not evictions: writes=%d evictions=%d",
			w.Writes(), w.Evictions())
	}
}

// TestWriteCacheVictimCarriesMask pins that an evicted entry surfaces the
// full dirty-word mask accumulated by combining, and the new entry starts
// with only its own word.
func TestWriteCacheVictimCarriesMask(t *testing.T) {
	w := NewWriteCache(1)
	w.Write(3, 1)
	w.Write(3, 4)
	w.Write(3, 7)
	victim, ev := w.Write(9, 0)
	if !ev {
		t.Fatalf("no eviction on conflict")
	}
	want := memsys.WordMask(0).Set(1).Set(4).Set(7)
	if victim.Block != 3 || victim.Mask != want {
		t.Fatalf("victim = %+v, want block 3 mask %v", victim, want)
	}
	mask, ok := w.Lookup(9)
	if !ok || mask != memsys.WordMask(0).Set(0) {
		t.Fatalf("new entry mask = %v, want word-0 only", mask)
	}
}
