package cache

import (
	"testing"
	"testing/quick"

	"ccsim/internal/memsys"
)

func TestSLCInfiniteNeverEvicts(t *testing.T) {
	c := NewSLC(0)
	for b := memsys.Block(0); b < 1000; b++ {
		if _, victim := c.Insert(b, Shared); victim != nil {
			t.Fatalf("infinite cache evicted on insert of %d", b)
		}
	}
	if c.Valid() != 1000 {
		t.Fatalf("Valid = %d, want 1000", c.Valid())
	}
	for b := memsys.Block(0); b < 1000; b++ {
		if c.Lookup(b) == nil {
			t.Fatalf("block %d missing", b)
		}
	}
}

func TestSLCFiniteDirectMappedConflict(t *testing.T) {
	c := NewSLC(4)
	c.Insert(1, Shared)
	// Block 5 maps to the same frame (5 % 4 == 1).
	line, victim := c.Insert(5, Dirty)
	if victim == nil || victim.Block != 1 {
		t.Fatalf("expected victim block 1, got %v", victim)
	}
	if line.Block != 5 || line.State != Dirty {
		t.Fatalf("inserted line wrong: %+v", line)
	}
	if c.Lookup(1) != nil {
		t.Fatal("victim still present")
	}
}

func TestSLCInsertSameBlockNoVictim(t *testing.T) {
	c := NewSLC(4)
	l, _ := c.Insert(2, Shared)
	l.PrefetchBit = true
	l2, victim := c.Insert(2, Dirty)
	if victim != nil {
		t.Fatal("reinsert of same block reported a victim")
	}
	if l2.PrefetchBit {
		t.Fatal("reinsert did not reset extension bits")
	}
	if l2.State != Dirty {
		t.Fatal("reinsert did not set new state")
	}
}

func TestSLCInvalidate(t *testing.T) {
	c := NewSLC(8)
	c.Insert(3, Dirty)
	old := c.Invalidate(3)
	if old == nil || old.State != Dirty {
		t.Fatalf("Invalidate returned %v", old)
	}
	if c.Lookup(3) != nil {
		t.Fatal("block still present after invalidate")
	}
	if c.Invalidate(3) != nil {
		t.Fatal("second invalidate returned a line")
	}
	// Invalidate of a conflicting (different) block must not touch the line.
	c.Insert(3, Shared)
	if c.Invalidate(11) != nil { // 11 % 8 == 3 % 8
		t.Fatal("invalidate of absent conflicting block removed the line")
	}
	if c.Lookup(3) == nil {
		t.Fatal("line lost by invalidate of a different block")
	}
}

func TestSLCInsertInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Insert(Invalid) did not panic")
		}
	}()
	NewSLC(4).Insert(0, Invalid)
}

func TestSLCForEach(t *testing.T) {
	for _, sets := range []int{0, 16} {
		c := NewSLC(sets)
		for b := memsys.Block(0); b < 10; b++ {
			c.Insert(b, Shared)
		}
		n := 0
		c.ForEach(func(l *Line) { n++ })
		if n != 10 {
			t.Fatalf("sets=%d: ForEach visited %d, want 10", sets, n)
		}
	}
}

// Property: a finite SLC holds at most Sets() blocks, and Lookup agrees
// with the most recent Insert/Invalidate for any operation sequence.
func TestSLCConsistencyProperty(t *testing.T) {
	f := func(ops []struct {
		B   uint8
		Inv bool
	}) bool {
		c := NewSLC(8)
		ref := map[memsys.Block]bool{}
		for _, op := range ops {
			b := memsys.Block(op.B % 32)
			if op.Inv {
				c.Invalidate(b)
				delete(ref, b)
			} else {
				c.Insert(b, Shared)
				// Displace any block sharing the frame.
				for rb := range ref {
					if rb%8 == b%8 && rb != b {
						delete(ref, rb)
					}
				}
				ref[b] = true
			}
		}
		if c.Valid() > 8 {
			return false
		}
		for b := memsys.Block(0); b < 32; b++ {
			if (c.Lookup(b) != nil) != ref[b] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFLCBasic(t *testing.T) {
	f := NewFLC(128)
	if f.Lookup(7) {
		t.Fatal("hit in empty FLC")
	}
	f.Fill(7)
	if !f.Lookup(7) {
		t.Fatal("miss after fill")
	}
	// 135 = 7 + 128 conflicts with 7.
	f.Fill(135)
	if f.Lookup(7) {
		t.Fatal("conflicting fill did not displace")
	}
	if !f.Lookup(135) {
		t.Fatal("conflicting fill lost")
	}
	f.Invalidate(135)
	if f.Lookup(135) {
		t.Fatal("hit after invalidate")
	}
	// Invalidating an absent block must not disturb the resident one.
	f.Fill(7)
	f.Invalidate(135)
	if !f.Lookup(7) {
		t.Fatal("invalidate of absent block removed resident block")
	}
}

func TestWriteCacheCombining(t *testing.T) {
	w := NewWriteCache(4)
	if _, ev := w.Write(10, 0); ev {
		t.Fatal("first write evicted")
	}
	if _, ev := w.Write(10, 3); ev {
		t.Fatal("combining write evicted")
	}
	mask, ok := w.Lookup(10)
	if !ok || !mask.Has(0) || !mask.Has(3) || mask.Count() != 2 {
		t.Fatalf("mask = %v ok=%v", mask, ok)
	}
	if w.Combined() != 1 {
		t.Fatalf("Combined = %d, want 1", w.Combined())
	}
}

func TestWriteCacheConflictEviction(t *testing.T) {
	w := NewWriteCache(4)
	w.Write(2, 1)
	victim, evicted := w.Write(6, 0) // 6 % 4 == 2 % 4
	if !evicted || victim.Block != 2 || !victim.Mask.Has(1) {
		t.Fatalf("victim = %+v evicted=%v", victim, evicted)
	}
	if _, ok := w.Lookup(2); ok {
		t.Fatal("victim still allocated")
	}
	if w.Evictions() != 1 {
		t.Fatalf("Evictions = %d", w.Evictions())
	}
}

func TestWriteCacheDrainAll(t *testing.T) {
	w := NewWriteCache(4)
	w.Write(0, 0)
	w.Write(1, 1)
	w.Write(3, 7)
	out := w.DrainAll()
	if len(out) != 3 {
		t.Fatalf("drained %d entries, want 3", len(out))
	}
	if w.Occupancy() != 0 {
		t.Fatal("entries remain after drain")
	}
}

func TestWriteCacheRemove(t *testing.T) {
	w := NewWriteCache(4)
	w.Write(5, 2)
	e, ok := w.Remove(5)
	if !ok || e.Block != 5 || !e.Mask.Has(2) {
		t.Fatalf("Remove = %+v, %v", e, ok)
	}
	if _, ok := w.Remove(5); ok {
		t.Fatal("second remove succeeded")
	}
}

// Property: the mask for a block is exactly the union of words written
// since it was (re)allocated.
func TestWriteCacheMaskProperty(t *testing.T) {
	f := func(words []uint8) bool {
		w := NewWriteCache(4)
		var want memsys.WordMask
		for _, wd := range words {
			w.Write(42, int(wd%8))
			want = want.Set(int(wd % 8))
		}
		if len(words) == 0 {
			_, ok := w.Lookup(42)
			return !ok
		}
		mask, ok := w.Lookup(42)
		return ok && mask == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFIFOOrderAndBounds(t *testing.T) {
	f := NewFIFO[int](3)
	if !f.Empty() || f.Full() {
		t.Fatal("fresh FIFO state wrong")
	}
	f.Push(1)
	f.Push(2)
	f.Push(3)
	if !f.Full() || f.Len() != 3 {
		t.Fatal("FIFO not full after cap pushes")
	}
	if v, _ := f.Peek(); v != 1 {
		t.Fatalf("Peek = %d", v)
	}
	for want := 1; want <= 3; want++ {
		v, ok := f.Pop()
		if !ok || v != want {
			t.Fatalf("Pop = %d,%v want %d", v, ok, want)
		}
	}
	if _, ok := f.Pop(); ok {
		t.Fatal("Pop from empty succeeded")
	}
	if f.HighWater != 3 {
		t.Fatalf("HighWater = %d, want 3", f.HighWater)
	}
}

func TestFIFOOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("push to full FIFO did not panic")
		}
	}()
	f := NewFIFO[int](1)
	f.Push(1)
	f.Push(2)
}

// Property: FIFO preserves order for any push/pop interleaving that
// respects capacity.
func TestFIFOOrderProperty(t *testing.T) {
	f := func(ops []bool) bool {
		q := NewFIFO[int](8)
		next, expect := 0, 0
		for _, push := range ops {
			if push && !q.Full() {
				q.Push(next)
				next++
			} else if !push {
				if v, ok := q.Pop(); ok {
					if v != expect {
						return false
					}
					expect++
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
