// Package cache provides the cache data structures of a processor node: the
// first-level cache (FLC) tag array, the second-level cache (SLC) with the
// per-line state the protocol extensions need, the FIFO write buffers
// (FLWB/SLWB capacity is enforced by their owners), and the small write
// cache used by the competitive-update extension. Controller logic lives in
// internal/core; these types only hold state, which keeps every structure
// directly unit-testable.
package cache

import "ccsim/internal/memsys"

// LineState is an SLC line's stable coherence state. The SLC needs no
// transient states because pending accesses are kept in the SLWB (paper §2).
type LineState int

const (
	Invalid LineState = iota
	Shared
	Dirty
)

func (s LineState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Dirty:
		return "D"
	}
	return "?"
}

// Line is one SLC line plus the per-line bits each extension adds
// (paper Table 1).
type Line struct {
	Block memsys.Block
	State LineState

	// P: set when the block arrived by prefetch and has not yet been
	// referenced by the processor (one of P's two bits per line).
	PrefetchBit bool

	// CW: remaining competitive count; a foreign update when the counter is
	// zero invalidates the copy. Preset on load and on every local access.
	CWCount int

	// CW+M: set when the processor has written the block since the last
	// update left for home (the extra bit migratory detection needs).
	LocallyModified bool

	// M: the "extra state" of the migratory optimization — set when the
	// copy was supplied exclusively by a migratory read miss; Written
	// records whether the processor has actually written it since, which
	// decides whether the home reverts the block to ordinary sharing.
	MigSupplied bool
	Written     bool

	// Data carries the block's word versions when data verification is on.
	Data memsys.BlockData
}

// SLC is the second-level cache. frames == 0 selects the paper's default
// infinite cache (every block has its own frame); otherwise the cache has
// that many one-block frames arranged in ways-associative sets with LRU
// replacement (ways == 1 is the paper's direct-mapped organization).
type SLC struct {
	frames int
	ways   int
	nsets  int
	inf    map[memsys.Block]*Line
	array  []Line   // nsets * ways
	age    []uint64 // LRU timestamps, parallel to array
	tick   uint64
}

// NewSLC returns a direct-mapped SLC with the given number of frames, or an
// infinite one if frames == 0.
func NewSLC(frames int) *SLC { return NewSLCAssoc(frames, 1) }

// NewSLCAssoc returns a ways-associative SLC with the given total frame
// count (frames must be a multiple of ways), or an infinite one if
// frames == 0.
func NewSLCAssoc(frames, ways int) *SLC {
	if ways < 1 {
		panic("cache: SLC needs at least one way")
	}
	c := &SLC{frames: frames, ways: ways}
	if frames == 0 {
		c.inf = make(map[memsys.Block]*Line)
		return c
	}
	if frames%ways != 0 {
		panic("cache: SLC frame count not a multiple of the associativity")
	}
	c.nsets = frames / ways
	c.array = make([]Line, frames)
	c.age = make([]uint64, frames)
	return c
}

// Sets returns the frame count (0 = infinite).
func (c *SLC) Sets() int { return c.frames }

// Ways returns the associativity.
func (c *SLC) Ways() int { return c.ways }

// set returns the index range [lo, hi) of block b's set.
func (c *SLC) set(b memsys.Block) (lo, hi int) {
	s := int(uint64(b) % uint64(c.nsets))
	return s * c.ways, (s + 1) * c.ways
}

// Lookup returns the line holding block b, or nil if b is not present in a
// valid state. A hit refreshes the line's LRU age.
func (c *SLC) Lookup(b memsys.Block) *Line {
	if c.frames == 0 {
		return c.inf[b]
	}
	lo, hi := c.set(b)
	for i := lo; i < hi; i++ {
		l := &c.array[i]
		if l.State != Invalid && l.Block == b {
			c.tick++
			c.age[i] = c.tick
			return l
		}
	}
	return nil
}

// Insert installs block b in state st and returns its line. If a valid line
// holding a different block had to be displaced (the set's LRU way), a copy
// of it is returned as victim. Inserting over an existing line for the same
// block resets the extension bits (a fresh fill).
func (c *SLC) Insert(b memsys.Block, st LineState) (line *Line, victim *Line) {
	if st == Invalid {
		panic("cache: inserting an invalid line")
	}
	if c.frames == 0 {
		l := &Line{Block: b, State: st}
		c.inf[b] = l
		return l, nil
	}
	lo, hi := c.set(b)
	slot := -1
	for i := lo; i < hi; i++ {
		l := &c.array[i]
		if l.State != Invalid && l.Block == b {
			slot = i
			break
		}
		if l.State == Invalid && slot < 0 {
			slot = i
		}
	}
	if slot < 0 {
		// Set full: evict the least recently used way.
		slot = lo
		for i := lo + 1; i < hi; i++ {
			if c.age[i] < c.age[slot] {
				slot = i
			}
		}
		v := c.array[slot]
		victim = &v
	}
	c.tick++
	c.age[slot] = c.tick
	c.array[slot] = Line{Block: b, State: st}
	return &c.array[slot], victim
}

// Invalidate removes block b if present and returns the line content it had
// (nil if it was not present).
func (c *SLC) Invalidate(b memsys.Block) *Line {
	if c.frames == 0 {
		l := c.inf[b]
		if l != nil {
			delete(c.inf, b)
		}
		return l
	}
	lo, hi := c.set(b)
	for i := lo; i < hi; i++ {
		l := &c.array[i]
		if l.State != Invalid && l.Block == b {
			v := *l
			l.State = Invalid
			return &v
		}
	}
	return nil
}

// Valid returns the number of valid lines (O(frames) for finite caches).
func (c *SLC) Valid() int {
	if c.frames == 0 {
		return len(c.inf)
	}
	n := 0
	for i := range c.array {
		if c.array[i].State != Invalid {
			n++
		}
	}
	return n
}

// ForEach calls fn for every valid line. Iteration order is unspecified in
// infinite mode; fn must not insert or invalidate.
func (c *SLC) ForEach(fn func(*Line)) {
	if c.frames == 0 {
		for _, l := range c.inf {
			fn(l)
		}
		return
	}
	for i := range c.array {
		if c.array[i].State != Invalid {
			fn(&c.array[i])
		}
	}
}

// FLC is the first-level cache tag array: 4 KB direct-mapped, write-through,
// no allocation on write misses (paper §2). Only read hits matter for
// timing, so it holds tags only.
type FLC struct {
	sets  int
	tags  []memsys.Block
	valid []bool
}

// NewFLC returns an FLC with the given number of one-block frames.
func NewFLC(sets int) *FLC {
	return &FLC{sets: sets, tags: make([]memsys.Block, sets), valid: make([]bool, sets)}
}

func (f *FLC) idx(b memsys.Block) int { return int(uint64(b) % uint64(f.sets)) }

// Lookup reports whether block b hits.
func (f *FLC) Lookup(b memsys.Block) bool {
	i := f.idx(b)
	return f.valid[i] && f.tags[i] == b
}

// Fill installs block b (displacing whatever shared the frame).
func (f *FLC) Fill(b memsys.Block) {
	i := f.idx(b)
	f.tags[i] = b
	f.valid[i] = true
}

// Invalidate removes block b if present (inclusion with the SLC).
func (f *FLC) Invalidate(b memsys.Block) {
	i := f.idx(b)
	if f.valid[i] && f.tags[i] == b {
		f.valid[i] = false
	}
}
