package cache

// FIFO is a bounded first-in-first-out buffer used for the first- and
// second-level write buffers (FLWB/SLWB). The paper's buffers hold memory
// requests in issue order; capacity limits are what make small-buffer
// sensitivity studies (paper §5.4) meaningful.
type FIFO[T any] struct {
	cap   int
	items []T
	// HighWater tracks the deepest occupancy reached, for reports.
	HighWater int
}

// NewFIFO returns a buffer holding at most capacity items.
func NewFIFO[T any](capacity int) *FIFO[T] {
	return &FIFO[T]{cap: capacity}
}

// Cap returns the capacity.
func (f *FIFO[T]) Cap() int { return f.cap }

// Len returns the current occupancy.
func (f *FIFO[T]) Len() int { return len(f.items) }

// Full reports whether no more items fit.
func (f *FIFO[T]) Full() bool { return len(f.items) >= f.cap }

// Empty reports whether the buffer holds nothing.
func (f *FIFO[T]) Empty() bool { return len(f.items) == 0 }

// Push appends v. It panics if the buffer is full; callers must check Full
// first — overflowing a hardware queue is a controller bug.
func (f *FIFO[T]) Push(v T) {
	if f.Full() {
		panic("cache: push to full FIFO")
	}
	f.items = append(f.items, v)
	if len(f.items) > f.HighWater {
		f.HighWater = len(f.items)
	}
}

// Pop removes and returns the oldest item. ok is false when empty.
func (f *FIFO[T]) Pop() (v T, ok bool) {
	if len(f.items) == 0 {
		return v, false
	}
	v = f.items[0]
	f.items = f.items[1:]
	return v, true
}

// Peek returns the oldest item without removing it.
func (f *FIFO[T]) Peek() (v T, ok bool) {
	if len(f.items) == 0 {
		return v, false
	}
	return f.items[0], true
}

// Items returns the buffered items oldest-first; the slice must not be
// mutated.
func (f *FIFO[T]) Items() []T { return f.items }
