package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// entryFiles lists committed entries in the store's root.
func entryFiles(t *testing.T, s *Store) []string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(s.Root(), "*"+entryExt))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func quarantined(t *testing.T, s *Store) []string {
	t.Helper()
	ents, err := os.ReadDir(s.QuarantineDir())
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		out = append(out, e.Name())
	}
	return out
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	key := "v1234|mp3d|x0.05|p4"
	payload := []byte(`{"ExecTime": 12345, "Workload": "mp3d"}`)
	if _, ok := s.Get(key); ok {
		t.Fatal("hit on an empty store")
	}
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("miss after Put")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q, want %q", got, payload)
	}
	if st := s.Stats(); st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Quarantined != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutReplacesEntry(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	if err := s.Put("k", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("k")
	if !ok || string(got) != "new" {
		t.Fatalf("Get = %q, %v; want the replacement", got, ok)
	}
	if n := len(entryFiles(t, s)); n != 1 {
		t.Fatalf("%d entry files after replace, want 1", n)
	}
}

func TestSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.Put("key", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir)
	got, ok := s2.Get("key")
	if !ok || string(got) != "payload" {
		t.Fatalf("entry lost across reopen: %q, %v", got, ok)
	}
}

// TestCorruptEntryQuarantinedAndHealed is the central robustness contract:
// any byte-level damage to an entry yields a quarantine + miss, never a
// crash or partial data, and a subsequent Put heals the slot.
func TestCorruptEntryQuarantinedAndHealed(t *testing.T) {
	payload := []byte(strings.Repeat(`{"m": 7}`, 20))
	corruptions := []struct {
		name string
		mod  func([]byte) []byte
	}{
		{"truncated-header", func(b []byte) []byte { return b[:10] }},
		{"truncated-payload", func(b []byte) []byte { return b[:len(b)-5] }},
		{"flipped-payload-byte", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-3] ^= 0xff
			return c
		}},
		{"garbage", func([]byte) []byte { return []byte("not a store entry at all") }},
		{"empty", func([]byte) []byte { return nil }},
		{"wrong-magic", func(b []byte) []byte {
			return append([]byte("xxsimstore9"), b[len(magic):]...)
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			s := mustOpen(t, t.TempDir())
			if err := s.Put("key", payload); err != nil {
				t.Fatal(err)
			}
			p := entryFiles(t, s)[0]
			b, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, tc.mod(b), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get("key"); ok {
				t.Fatalf("corrupt entry served as a hit: %q", got)
			}
			if q := quarantined(t, s); len(q) != 1 {
				t.Fatalf("quarantine = %v, want exactly the damaged entry", q)
			}
			if n := len(entryFiles(t, s)); n != 0 {
				t.Fatalf("%d entry files remain after quarantine", n)
			}
			if st := s.Stats(); st.Quarantined != 1 || st.Misses != 1 {
				t.Fatalf("stats = %+v", st)
			}
			// Heal: re-Put and the slot serves again.
			if err := s.Put("key", payload); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get("key"); !ok || !bytes.Equal(got, payload) {
				t.Fatalf("healed slot Get = %q, %v", got, ok)
			}
		})
	}
}

// TestKeyMismatchIsMiss guards the content addressing: an entry whose
// embedded key disagrees with the lookup key (a hash collision, or a file
// copied between slots) must miss, not serve the wrong run's result.
func TestKeyMismatchIsMiss(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	if err := s.Put("key-a", []byte("result-a")); err != nil {
		t.Fatal(err)
	}
	// Copy a's entry file into b's slot.
	b, err := os.ReadFile(s.path("key-a"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path("key-b"), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("key-b"); ok {
		t.Fatalf("mismatched entry served: %q", got)
	}
	if q := quarantined(t, s); len(q) != 1 {
		t.Fatalf("quarantine = %v", q)
	}
}

// TestOpenSweepsOrphanedTempFiles simulates a kill -9 mid-write: the temp
// file a crashed Put left behind must be quarantined on reopen and never
// be visible as an entry.
func TestOpenSweepsOrphanedTempFiles(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.Put("done", []byte("complete")); err != nil {
		t.Fatal(err)
	}
	// A partial write: header claims more payload than was flushed.
	orphan := filepath.Join(dir, "tmp-123456")
	if err := os.WriteFile(orphan, []byte(magic+" deadbeef 9999 some-key\n{\"Exec"), 0o600); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir)
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphaned temp file survived reopen")
	}
	if q := quarantined(t, s2); len(q) != 1 {
		t.Fatalf("quarantine after reopen = %v, want the orphan", q)
	}
	if got, ok := s2.Get("done"); !ok || string(got) != "complete" {
		t.Fatalf("committed entry lost in the sweep: %q, %v", got, ok)
	}
	if st := s2.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestQuarantineKeepsDistinctArtifacts: repeated corruption of the same
// slot must not overwrite earlier quarantined files.
func TestQuarantineKeepsDistinctArtifacts(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	for i := 0; i < 3; i++ {
		if err := s.Put("key", []byte("payload")); err != nil {
			t.Fatal(err)
		}
		p := entryFiles(t, s)[0]
		if err := os.WriteFile(p, []byte(fmt.Sprintf("garbage %d", i)), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get("key"); ok {
			t.Fatal("corrupt entry hit")
		}
	}
	if q := quarantined(t, s); len(q) != 3 {
		t.Fatalf("quarantine = %v, want 3 distinct artifacts", q)
	}
}

func TestDropQuarantinesEntry(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	if err := s.Put("key", []byte("stale")); err != nil {
		t.Fatal(err)
	}
	s.Drop("key")
	if _, ok := s.Get("key"); ok {
		t.Fatal("dropped entry still served")
	}
	if q := quarantined(t, s); len(q) != 1 {
		t.Fatalf("quarantine = %v", q)
	}
	s.Drop("key") // dropping a missing entry is a no-op
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestContainsIsAStatHint pins Contains' contract: true for committed
// entries, false for absent and dropped ones, no hit/miss accounting, and
// — crucially — true for a corrupt entry, because it never validates;
// Get remains the authoritative read that quarantines.
func TestContainsIsAStatHint(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	if s.Contains("key") {
		t.Fatal("Contains true before any Put")
	}
	if err := s.Put("key", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if !s.Contains("key") {
		t.Fatal("Contains false for a committed entry")
	}
	if st := s.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Contains touched hit/miss counters: %+v", st)
	}
	// Corrupt the entry in place: Contains still says true (it is a stat,
	// not a validation), and Get quarantines as usual.
	if err := os.WriteFile(s.path("key"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if !s.Contains("key") {
		t.Fatal("Contains false for a corrupt-but-present entry; it must not validate")
	}
	if _, ok := s.Get("key"); ok {
		t.Fatal("corrupt entry served")
	}
	if s.Contains("key") {
		t.Fatal("Contains true after Get quarantined the entry")
	}
}

func TestPutRejectsNewlineKey(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	if err := s.Put("bad\nkey", []byte("x")); err == nil {
		t.Fatal("newline key accepted: the header format would be ambiguous")
	}
}

// TestConcurrentAccess hammers the store from many goroutines (run under
// -race by verify.sh): distinct keys in parallel plus repeated same-key
// writes must stay consistent.
func TestConcurrentAccess(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				key := fmt.Sprintf("key-%d-%d", g, i)
				want := []byte(fmt.Sprintf("payload-%d-%d", g, i))
				if err := s.Put(key, want); err != nil {
					t.Errorf("Put %s: %v", key, err)
					return
				}
				if got, ok := s.Get(key); !ok || !bytes.Equal(got, want) {
					t.Errorf("Get %s = %q, %v", key, got, ok)
					return
				}
				// Contended slot: everyone rewrites and reads "shared".
				if err := s.Put("shared", []byte("shared-payload")); err != nil {
					t.Errorf("Put shared: %v", err)
					return
				}
				if got, ok := s.Get("shared"); !ok || string(got) != "shared-payload" {
					t.Errorf("Get shared = %q, %v", got, ok)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.Quarantined != 0 {
		t.Fatalf("concurrent access quarantined entries: %+v", st)
	}
}
