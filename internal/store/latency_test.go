package store

import (
	"os"
	"path/filepath"
	"testing"
)

// TestLatenciesTrackOps checks that each store operation lands in its own
// latency histogram: a Put populates write, a hit populates read+validate,
// and untouched ops stay at zero count.
func TestLatenciesTrackOps(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k1", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k1"); !ok {
		t.Fatal("expected hit")
	}
	lat := s.Latencies()
	if len(lat) != 3 {
		t.Fatalf("Latencies returned %d ops, want 3", len(lat))
	}
	byOp := map[string]OpLatency{}
	for _, l := range lat {
		byOp[l.Op] = l
	}
	for _, op := range []string{"read", "validate", "write"} {
		l, ok := byOp[op]
		if !ok {
			t.Fatalf("missing op %q in %v", op, lat)
		}
		if l.Count != 1 {
			t.Errorf("%s count = %d, want 1", op, l.Count)
		}
		if l.MaxSeconds < 0 || l.P99Seconds < l.P50Seconds {
			t.Errorf("%s quantiles inconsistent: %+v", op, l)
		}
	}
	// A miss reads nothing: counts must not move.
	if _, ok := s.Get("absent"); ok {
		t.Fatal("unexpected hit")
	}
	for _, l := range s.Latencies() {
		if l.Count != 1 {
			t.Errorf("after miss, %s count = %d, want 1", l.Op, l.Count)
		}
	}
}

// TestGetEntryQuarantineDisposition checks the three GetEntry outcomes:
// clean hit, clean miss, and corrupt-entry quarantine — the signal the
// scheduler logs with a run_id.
func TestGetEntryQuarantineDisposition(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, ok, q := s.GetEntry("k"); !ok || q {
		t.Fatalf("clean entry: ok=%v quarantined=%v, want true,false", ok, q)
	}
	if _, ok, q := s.GetEntry("never-stored"); ok || q {
		t.Fatalf("miss: ok=%v quarantined=%v, want false,false", ok, q)
	}
	// Truncate the committed entry (the kill -9 shape) and look it up again.
	matches, err := filepath.Glob(filepath.Join(dir, "*"+entryExt))
	if err != nil || len(matches) != 1 {
		t.Fatalf("glob: %v %v", matches, err)
	}
	if err := os.Truncate(matches[0], 5); err != nil {
		t.Fatal(err)
	}
	if _, ok, q := s.GetEntry("k"); ok || !q {
		t.Fatalf("corrupt entry: ok=%v quarantined=%v, want false,true", ok, q)
	}
	if got := s.Stats().Quarantined; got != 1 {
		t.Fatalf("Quarantined = %d, want 1", got)
	}
}
