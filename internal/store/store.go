// Package store is the sweep pipeline's crash-safe on-disk result cache:
// a content-addressed map from a scheduler cache key (the canonical
// configuration fingerprint, schema-tagged) to an opaque payload — in
// practice one run's Result JSON. It is the persistence layer behind
// `experiments -cache-dir`: a sweep killed at any instant, including
// mid-write, resumes by re-reading completed entries and re-running only
// what is missing, with byte-identical output.
//
// Durability model:
//
//   - Writes are atomic: each entry lands in a temp file in the store
//     directory, is fsynced, then renamed over its final name. A crash at
//     any point leaves either the old entry, the new entry, or an orphaned
//     temp file — never a half-visible entry.
//   - Every entry carries its own checksum and key. A read that finds a
//     truncated, corrupted or mismatched entry quarantines the file into
//     the `quarantine/` sidecar directory and reports a miss, so the run
//     re-executes and rewrites a good entry; corruption is never a crash
//     and never a silently-wrong result.
//   - Open sweeps orphaned temp files (a kill -9 mid-write) into the
//     quarantine directory, so partial writes are visible for post-mortems
//     but can never be mistaken for entries.
//
// The store is safe for concurrent use by multiple goroutines, and safe
// across processes in the sense that concurrent writers of the same key
// converge on one complete entry (rename is atomic) and readers only ever
// observe complete entries.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ccsim/internal/stats"
)

// magic is the entry format version; bump it if the on-disk layout
// changes, so old entries quarantine instead of misparse.
const magic = "ccsimstore1"

// entryExt is the extension of committed entries.
const entryExt = ".res"

// Stats is one consistent snapshot of the store's counters — what the ops
// plane exports as ccsim_store_* series.
type Stats struct {
	Hits        uint64 // Get calls served by a valid on-disk entry
	Misses      uint64 // Get calls finding no (valid) entry
	Writes      uint64 // entries committed by Put
	Quarantined uint64 // corrupt/truncated files moved to the sidecar dir
}

// Latency op indexes into Store.lat; opNames names them for snapshots.
const (
	opRead     = iota // os.ReadFile of an existing entry
	opValidate        // header/checksum/key validation of the read bytes
	opWrite           // full Put commit: temp write, fsync, rename
	numOps
)

// OpLatency is one operation's latency distribution snapshot, in seconds —
// the shape the ops plane exports as ccsim_store_duration_seconds.
type OpLatency struct {
	Op         string  `json:"op"` // "read", "validate", or "write"
	Count      uint64  `json:"count"`
	SumSeconds float64 `json:"sum_seconds"`
	P50Seconds float64 `json:"p50_seconds"`
	P95Seconds float64 `json:"p95_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
	MaxSeconds float64 `json:"max_seconds"`
}

// Store is one on-disk result cache rooted at a directory. Create with
// Open; the zero value is not usable.
type Store struct {
	root string

	hits        atomic.Uint64
	misses      atomic.Uint64
	writes      atomic.Uint64
	quarantined atomic.Uint64

	// lat holds per-operation latency histograms in microseconds: disk
	// reads, entry validation, and full Put commits. latMu guards them —
	// these are cold paths (one read or write per run), so a mutex is fine.
	latMu sync.Mutex
	lat   [numOps]stats.Hist
}

// Open creates (if needed) and opens the store rooted at dir, sweeping any
// temp files orphaned by a crash mid-write into the quarantine directory.
func Open(dir string) (*Store, error) {
	s := &Store{root: dir}
	if err := os.MkdirAll(s.QuarantineDir(), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// A kill -9 between CreateTemp and rename leaves tmp-* partials; they
	// were never visible as entries, but quarantine them anyway so the
	// interrupted write is inspectable and the store dir holds only
	// committed entries.
	orphans, err := filepath.Glob(filepath.Join(dir, "tmp-*"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, p := range orphans {
		s.quarantine(p)
	}
	return s, nil
}

// Root returns the store's directory.
func (s *Store) Root() string { return s.root }

// QuarantineDir returns the sidecar directory corrupt entries are moved
// into.
func (s *Store) QuarantineDir() string { return filepath.Join(s.root, "quarantine") }

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Writes:      s.writes.Load(),
		Quarantined: s.quarantined.Load(),
	}
}

// path is the content-addressed file name for key: entries are named by
// the key's hash, so arbitrary fingerprint strings map to safe, fixed-
// length file names.
func (s *Store) path(key string) string {
	h := sha256.Sum256([]byte(key))
	return filepath.Join(s.root, hex.EncodeToString(h[:20])+entryExt)
}

// observe records one operation's duration in the op's latency histogram,
// in microseconds.
func (s *Store) observe(op int, d time.Duration) {
	s.latMu.Lock()
	s.lat[op].Add(d.Microseconds())
	s.latMu.Unlock()
}

// Latencies snapshots the per-operation latency distributions, in seconds,
// in a fixed op order (read, validate, write). Operations that never ran
// report Count 0.
func (s *Store) Latencies() []OpLatency {
	names := [numOps]string{opRead: "read", opValidate: "validate", opWrite: "write"}
	out := make([]OpLatency, numOps)
	s.latMu.Lock()
	defer s.latMu.Unlock()
	for i := range s.lat {
		h := &s.lat[i]
		out[i] = OpLatency{
			Op:         names[i],
			Count:      h.Count(),
			SumSeconds: float64(h.Sum) / 1e6,
			P50Seconds: float64(h.Quantile(50)) / 1e6,
			P95Seconds: float64(h.Quantile(95)) / 1e6,
			P99Seconds: float64(h.Quantile(99)) / 1e6,
			MaxSeconds: float64(h.Max()) / 1e6,
		}
	}
	return out
}

// Contains reports whether a committed entry file exists for key, without
// reading or validating it — a single stat, cheap enough for hot submit
// paths deciding whether a run is worth distributing. A corrupt entry can
// report true; the authoritative read (Get) still quarantines it and
// misses, so Contains is a hint, never a promise.
func (s *Store) Contains(key string) bool {
	_, err := os.Stat(s.path(key))
	return err == nil
}

// Get returns the payload stored under key, or ok=false on a miss. A file
// that exists but fails validation — truncated payload, checksum or key
// mismatch, unparseable header — is quarantined and reported as a miss,
// so callers re-run and re-Put; Get never returns partial data.
func (s *Store) Get(key string) (payload []byte, ok bool) {
	payload, ok, _ = s.GetEntry(key)
	return payload, ok
}

// GetEntry is Get plus the disposition: quarantined reports whether this
// lookup found an entry file but had to quarantine it (corrupt, truncated,
// or unreadable), so callers holding run context can log the event with a
// stable identifier instead of inferring it from counter deltas.
func (s *Store) GetEntry(key string) (payload []byte, ok, quarantined bool) {
	p := s.path(key)
	t0 := time.Now()
	b, err := os.ReadFile(p)
	if err != nil {
		if !os.IsNotExist(err) {
			// Unreadable entry (permissions, I/O error): get it out of the
			// lookup path so the sweep proceeds by re-running.
			s.quarantine(p)
			quarantined = true
		}
		s.misses.Add(1)
		return nil, false, quarantined
	}
	s.observe(opRead, time.Since(t0))
	t1 := time.Now()
	payload, err = decode(b, key)
	s.observe(opValidate, time.Since(t1))
	if err != nil {
		s.quarantine(p)
		s.misses.Add(1)
		return nil, false, true
	}
	s.hits.Add(1)
	return payload, true, false
}

// Put commits payload under key atomically: temp file, fsync, rename. An
// existing entry for key is replaced; a crash at any instant leaves the
// old or the new entry intact, never a torn one.
func (s *Store) Put(key string, payload []byte) error {
	if strings.Contains(key, "\n") {
		return fmt.Errorf("store: key contains a newline: %q", key)
	}
	t0 := time.Now()
	f, err := os.CreateTemp(s.root, "tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %s %d %s\n", magic, hex.EncodeToString(sum[:]), len(payload), key)
	if _, err := f.WriteString(header); err != nil {
		return fail(err)
	}
	if _, err := f.Write(payload); err != nil {
		return fail(err)
	}
	// fsync before rename: the entry must be durable before it becomes
	// visible, or a crash could expose a name pointing at unwritten blocks.
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, s.path(key)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	s.observe(opWrite, time.Since(t0))
	s.writes.Add(1)
	return nil
}

// Drop quarantines the entry stored under key, if any — the caller-level
// eviction for entries whose bytes are intact but whose content turned out
// to be unusable (e.g. a payload that no longer deserializes).
func (s *Store) Drop(key string) {
	p := s.path(key)
	if _, err := os.Stat(p); err == nil {
		s.quarantine(p)
	}
}

// quarantine moves p into the sidecar directory (removing it outright if
// the move fails) so it can never be read as an entry again.
func (s *Store) quarantine(p string) {
	dest := filepath.Join(s.QuarantineDir(), filepath.Base(p)+".corrupt")
	// Keep distinct artifacts distinct: suffix if a prior quarantine of the
	// same entry name is already there.
	for i := 1; ; i++ {
		if _, err := os.Stat(dest); os.IsNotExist(err) {
			break
		}
		dest = filepath.Join(s.QuarantineDir(), filepath.Base(p)+".corrupt."+strconv.Itoa(i))
	}
	if err := os.Rename(p, dest); err != nil {
		os.Remove(p)
	}
	s.quarantined.Add(1)
}

// decode validates one entry file against its expected key and returns the
// payload. Any deviation — bad magic, short header, length or checksum
// mismatch, key mismatch — is an error; the caller quarantines.
func decode(b []byte, key string) ([]byte, error) {
	header, payload, found := bytes.Cut(b, []byte{'\n'})
	if !found {
		return nil, fmt.Errorf("truncated entry: no header line")
	}
	fields := strings.SplitN(string(header), " ", 4)
	if len(fields) != 4 || fields[0] != magic {
		return nil, fmt.Errorf("bad entry header")
	}
	n, err := strconv.Atoi(fields[2])
	if err != nil {
		return nil, fmt.Errorf("bad entry length: %w", err)
	}
	if fields[3] != key {
		return nil, fmt.Errorf("entry key mismatch")
	}
	if len(payload) != n {
		return nil, fmt.Errorf("truncated entry: %d of %d payload bytes", len(payload), n)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != fields[1] {
		return nil, fmt.Errorf("entry checksum mismatch")
	}
	return payload, nil
}
