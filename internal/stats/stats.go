// Package stats collects the measurements the paper reports: per-processor
// execution-time decomposition (busy / read / write / acquire / release
// stall), miss-rate components classified cold / coherence / replacement,
// and network traffic in bytes. Statistics can be gated so that only the
// parallel section is measured, per the SPLASH methodology the paper
// follows.
package stats

// Proc accumulates one processor's time decomposition and reference counts.
// All times are in pclocks.
type Proc struct {
	Busy         int64
	ReadStall    int64
	WriteStall   int64
	AcquireStall int64 // lock-acquire waits
	BarrierStall int64 // barrier waits (reported with acquire stall, as the paper does)
	ReleaseStall int64

	Reads          uint64 // shared-data reads issued
	Writes         uint64 // shared-data writes issued
	FLCReadMisses  uint64
	SLCReadMisses  uint64 // demand read misses at the SLC (incl. partial hits on pending prefetches)
	WriteCacheHits uint64 // reads serviced by the write cache

	Acquires uint64
	Releases uint64
	Barriers uint64
}

// Total returns the processor's total execution time.
func (p *Proc) Total() int64 {
	return p.Busy + p.ReadStall + p.WriteStall + p.AcquireStall + p.BarrierStall + p.ReleaseStall
}

// MissKind classifies an SLC read miss.
type MissKind int

const (
	// Cold: the processor has never had this block in its SLC.
	Cold MissKind = iota
	// Coherence: the block was present but was invalidated by a coherence
	// action (invalidation, competitive-update counter expiry, or a
	// migratory exclusive transfer to another node).
	Coherence
	// Replacement: the block was present but was evicted to make room.
	Replacement
	nMissKinds
)

func (k MissKind) String() string {
	switch k {
	case Cold:
		return "cold"
	case Coherence:
		return "coherence"
	case Replacement:
		return "replacement"
	}
	return "?"
}

// Misses counts SLC read misses by kind.
type Misses [nMissKinds]uint64

// Add records one miss of kind k.
func (m *Misses) Add(k MissKind) { m[k]++ }

// Total returns the total number of misses.
func (m *Misses) Total() uint64 {
	var t uint64
	for _, v := range m {
		t += v
	}
	return t
}

// MsgClass categorizes network messages for traffic accounting.
type MsgClass int

const (
	CtlMsg    MsgClass = iota // requests, invalidations, acks
	DataMsg                   // replies carrying a whole block
	UpdateMsg                 // competitive-update messages (partial blocks)
	SyncMsg                   // lock and barrier messages
	nMsgClasses
)

// NumMsgClasses is the number of message classes, for per-class arrays and
// label iteration outside this package.
const NumMsgClasses = int(nMsgClasses)

func (c MsgClass) String() string {
	switch c {
	case CtlMsg:
		return "control"
	case DataMsg:
		return "data"
	case UpdateMsg:
		return "update"
	case SyncMsg:
		return "sync"
	}
	return "?"
}

// Traffic accumulates network traffic by message class.
type Traffic struct {
	Msgs  [nMsgClasses]uint64
	Bytes [nMsgClasses]uint64
}

// Add records one message of class c and the given size in bytes.
func (t *Traffic) Add(c MsgClass, bytes int) {
	t.Msgs[c]++
	t.Bytes[c] += uint64(bytes)
}

// TotalBytes returns total bytes across all classes.
func (t *Traffic) TotalBytes() uint64 {
	var s uint64
	for _, b := range t.Bytes {
		s += b
	}
	return s
}

// TotalMsgs returns total messages across all classes.
func (t *Traffic) TotalMsgs() uint64 {
	var s uint64
	for _, m := range t.Msgs {
		s += m
	}
	return s
}

// Prefetch accumulates prefetching-effectiveness counters.
type Prefetch struct {
	Issued   uint64 // prefetch requests sent to memory
	Useful   uint64 // prefetched blocks later referenced by the processor
	Discard  uint64 // prefetched blocks invalidated or replaced unreferenced
	PartHits uint64 // demand misses that hit a pending prefetch
	Nacked   uint64 // prefetches rejected because the block was dirty remotely
}

// The demand-miss latency distribution is recorded in a Hist (hist.go), the
// log-bucketed histogram shared by the per-cache statistics and the
// telemetry sampler.
