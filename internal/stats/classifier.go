package stats

import "ccsim/internal/memsys"

// blockHist is the per-(processor, block) history needed to classify the
// next miss to that block.
type blockHist uint8

const (
	neverCached blockHist = iota
	cached
	evicted     // left the cache by replacement
	invalidated // left the cache by a coherence action
)

// Classifier implements the standard cold / coherence / replacement miss
// taxonomy. One Classifier serves one processor's SLC; the cache calls
// Fill, Evict and Invalidate as lines come and go, and Classify on each
// demand read miss.
type Classifier struct {
	hist map[memsys.Block]blockHist
}

// NewClassifier returns an empty classifier.
func NewClassifier() *Classifier {
	return &Classifier{hist: make(map[memsys.Block]blockHist)}
}

// Classify returns the kind of a demand miss to block b.
func (c *Classifier) Classify(b memsys.Block) MissKind {
	switch c.hist[b] {
	case neverCached:
		return Cold
	case invalidated:
		return Coherence
	default: // evicted, or (defensively) cached — a miss on a cached block
		// can only mean the line was displaced without notice; count it as
		// replacement.
		return Replacement
	}
}

// Fill records that block b is now cached.
func (c *Classifier) Fill(b memsys.Block) { c.hist[b] = cached }

// Evict records that block b was replaced to make room.
func (c *Classifier) Evict(b memsys.Block) {
	if c.hist[b] == cached {
		c.hist[b] = evicted
	}
}

// Invalidate records that block b was removed by a coherence action
// (invalidation message, update-counter expiry, or migratory transfer).
func (c *Classifier) Invalidate(b memsys.Block) {
	if c.hist[b] == cached {
		c.hist[b] = invalidated
	}
}

// Seen reports whether block b has ever been cached by this processor.
func (c *Classifier) Seen(b memsys.Block) bool { return c.hist[b] != neverCached }
