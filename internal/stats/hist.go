package stats

import "math/bits"

// Hist is a log-bucketed histogram of non-negative durations (pclocks). Each
// power-of-two octave is split into histSub sub-buckets, bounding the
// relative quantile error at 1/histSub (12.5%); values below histSub are
// recorded exactly. The count, sum and exact maximum ride along, so
// Quantile(100) is exact and means need no second counter. The zero value is
// an empty histogram ready for use, and merging per-processor histograms is
// element-wise addition — both properties the per-node cache statistics and
// the telemetry sampler rely on.
type Hist struct {
	N       uint64
	Sum     int64
	MaxV    int64
	Buckets [histBuckets]uint64
}

const (
	histSub = 8
	// histBuckets covers values up to (2*histSub)<<histMaxOctave - 1
	// (~1.7e10 pclocks, minutes of simulated time); larger values clamp
	// into the last bucket, whose reported bound is the exact maximum.
	histBuckets = 256
)

// histIndex maps a value to its bucket.
func histIndex(v int64) int {
	if v < histSub {
		return int(v)
	}
	o := bits.Len64(uint64(v)) - 4 // octave; 0 for v in [8,16)
	i := o*histSub + int(v>>uint(o))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// histBound returns the inclusive upper bound of bucket i.
func histBound(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	o := i/histSub - 1
	return ((int64(i-o*histSub) + 1) << uint(o)) - 1
}

// Add records one value. Negative values clamp to zero.
func (h *Hist) Add(v int64) {
	if v < 0 {
		v = 0
	}
	h.N++
	h.Sum += v
	if v > h.MaxV {
		h.MaxV = v
	}
	h.Buckets[histIndex(v)]++
}

// Merge accumulates another histogram into h.
func (h *Hist) Merge(o Hist) {
	h.N += o.N
	h.Sum += o.Sum
	if o.MaxV > h.MaxV {
		h.MaxV = o.MaxV
	}
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Count returns the number of recorded values.
func (h *Hist) Count() uint64 { return h.N }

// Total is a legacy alias for Count.
func (h *Hist) Total() uint64 { return h.N }

// Max returns the exact largest recorded value (0 when empty).
func (h *Hist) Max() int64 { return h.MaxV }

// Mean returns the exact arithmetic mean (0 when empty).
func (h *Hist) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// Quantile returns an upper bound for the p-th percentile (0 < p <= 100): the
// upper bound of the bucket holding the p-th ranked value, clamped to the
// exact maximum. Empty histograms return 0.
func (h *Hist) Quantile(p float64) int64 {
	if h.N == 0 {
		return 0
	}
	target := uint64(p / 100 * float64(h.N))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, n := range h.Buckets {
		seen += n
		if n > 0 && seen >= target {
			if b := histBound(i); i < histBuckets-1 && b < h.MaxV {
				return b
			}
			return h.MaxV
		}
	}
	return h.MaxV
}

// Percentile is a legacy alias for Quantile.
func (h *Hist) Percentile(p float64) int64 { return h.Quantile(p) }
