package stats

import (
	"testing"
	"testing/quick"

	"ccsim/internal/memsys"
)

func TestProcTotal(t *testing.T) {
	p := Proc{Busy: 10, ReadStall: 20, WriteStall: 5, AcquireStall: 3, ReleaseStall: 2}
	if p.Total() != 40 {
		t.Fatalf("Total = %d, want 40", p.Total())
	}
}

func TestMissesAddAndTotal(t *testing.T) {
	var m Misses
	m.Add(Cold)
	m.Add(Cold)
	m.Add(Coherence)
	m.Add(Replacement)
	if m[Cold] != 2 || m[Coherence] != 1 || m[Replacement] != 1 {
		t.Fatalf("misses = %v", m)
	}
	if m.Total() != 4 {
		t.Fatalf("Total = %d, want 4", m.Total())
	}
}

func TestMissKindString(t *testing.T) {
	if Cold.String() != "cold" || Coherence.String() != "coherence" || Replacement.String() != "replacement" {
		t.Fatal("MissKind strings wrong")
	}
}

func TestTraffic(t *testing.T) {
	var tr Traffic
	tr.Add(CtlMsg, 8)
	tr.Add(DataMsg, 40)
	tr.Add(DataMsg, 40)
	tr.Add(UpdateMsg, 16)
	if tr.TotalBytes() != 104 || tr.TotalMsgs() != 4 {
		t.Fatalf("bytes=%d msgs=%d", tr.TotalBytes(), tr.TotalMsgs())
	}
	if tr.Bytes[DataMsg] != 80 || tr.Msgs[CtlMsg] != 1 {
		t.Fatalf("per-class wrong: %+v", tr)
	}
}

func TestClassifierColdFirstMiss(t *testing.T) {
	c := NewClassifier()
	if got := c.Classify(7); got != Cold {
		t.Fatalf("first miss classified %v, want cold", got)
	}
	if c.Seen(7) {
		t.Fatal("Seen before any fill")
	}
}

func TestClassifierCoherence(t *testing.T) {
	c := NewClassifier()
	c.Fill(3)
	c.Invalidate(3)
	if got := c.Classify(3); got != Coherence {
		t.Fatalf("miss after invalidation classified %v, want coherence", got)
	}
}

func TestClassifierReplacement(t *testing.T) {
	c := NewClassifier()
	c.Fill(3)
	c.Evict(3)
	if got := c.Classify(3); got != Replacement {
		t.Fatalf("miss after eviction classified %v, want replacement", got)
	}
}

func TestClassifierRefillResets(t *testing.T) {
	c := NewClassifier()
	c.Fill(3)
	c.Invalidate(3)
	c.Fill(3) // brought back
	c.Evict(3)
	if got := c.Classify(3); got != Replacement {
		t.Fatalf("invalidate->fill->evict classified %v, want replacement", got)
	}
}

func TestClassifierEvictWithoutFillIgnored(t *testing.T) {
	c := NewClassifier()
	c.Evict(9)      // spurious
	c.Invalidate(9) // spurious
	if got := c.Classify(9); got != Cold {
		t.Fatalf("never-filled block classified %v, want cold", got)
	}
}

// Property: classification is never Cold once the block has been filled,
// for any sequence of events.
func TestClassifierNeverColdAfterFillProperty(t *testing.T) {
	f := func(events []uint8) bool {
		c := NewClassifier()
		b := memsys.Block(1)
		c.Fill(b)
		for _, e := range events {
			switch e % 3 {
			case 0:
				c.Fill(b)
			case 1:
				c.Evict(b)
			case 2:
				c.Invalidate(b)
			}
		}
		return c.Classify(b) != Cold && c.Seen(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: after Fill, only the most recent departure event decides the
// classification.
func TestClassifierLastDepartureWinsProperty(t *testing.T) {
	f := func(n uint8, lastIsInv bool) bool {
		c := NewClassifier()
		b := memsys.Block(2)
		for i := 0; i < int(n%8)+1; i++ {
			c.Fill(b)
			if i%2 == 0 {
				c.Evict(b)
			} else {
				c.Invalidate(b)
			}
		}
		c.Fill(b)
		if lastIsInv {
			c.Invalidate(b)
			return c.Classify(b) == Coherence
		}
		c.Evict(b)
		return c.Classify(b) == Replacement
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistEmpty(t *testing.T) {
	var h Hist
	if h.Quantile(50) != 0 || h.Quantile(100) != 0 {
		t.Fatal("empty histogram quantile not 0")
	}
	if h.Count() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram counters not 0")
	}
}

func TestHistExactSmallValues(t *testing.T) {
	// Values below two octaves of sub-buckets land in exact buckets, so
	// every quantile of a small-value set is exact.
	var h Hist
	for v := int64(0); v < 16; v++ {
		h.Add(v)
	}
	if got := h.Quantile(100); got != 15 {
		t.Fatalf("P100 = %d, want 15", got)
	}
	if got := h.Quantile(50); got != 7 {
		t.Fatalf("P50 = %d, want 7", got)
	}
	if got := h.Quantile(6.25); got != 0 {
		t.Fatalf("P6.25 = %d, want 0", got)
	}
}

func TestHistBucketBoundaries(t *testing.T) {
	// 16 and 17 share the first coarse bucket: the quantile may not resolve
	// between them but must stay inside the bucket, and the max stays exact.
	var h Hist
	h.Add(16)
	h.Add(17)
	if p := h.Quantile(50); p < 16 || p > 17 {
		t.Fatalf("P50 = %d, want within [16,17]", p)
	}
	if p := h.Quantile(100); p != 17 {
		t.Fatalf("P100 = %d, want exact max 17", p)
	}
	// A quantile upper bound never exceeds the exact maximum, even when the
	// max sits at the bottom of its bucket.
	var g Hist
	g.Add(1 << 20)
	if p := g.Quantile(50); p != 1<<20 {
		t.Fatalf("single-sample P50 = %d, want %d", p, 1<<20)
	}
}

func TestHistQuantileUpperBound(t *testing.T) {
	// The quantile estimate brackets the true order statistic from above
	// with bounded relative error.
	var h Hist
	var vals []int64
	for i := int64(1); i < 40000; i += 37 {
		h.Add(i)
		vals = append(vals, i)
	}
	if h.Count() != uint64(len(vals)) {
		t.Fatalf("Count = %d, want %d", h.Count(), len(vals))
	}
	last := int64(0)
	for _, p := range []float64{10, 25, 50, 75, 90, 99, 100} {
		got := h.Quantile(p)
		rank := int(p / 100 * float64(len(vals)))
		if rank == 0 {
			rank = 1
		}
		truth := vals[rank-1]
		if got < truth {
			t.Fatalf("P%v = %d below true order statistic %d", p, got, truth)
		}
		if float64(got) > float64(truth)*1.125+1 {
			t.Fatalf("P%v = %d overshoots true %d by more than 12.5%%", p, got, truth)
		}
		if got < last {
			t.Fatalf("quantiles not monotonic at %v: %d < %d", p, got, last)
		}
		last = got
	}
}

func TestHistMergeAcrossProcessors(t *testing.T) {
	// Merging per-processor histograms must be indistinguishable from one
	// processor having recorded everything.
	var parts [4]Hist
	var whole Hist
	for i := int64(0); i < 4000; i++ {
		v := (i * i) % 9001
		parts[i%4].Add(v)
		whole.Add(v)
	}
	var merged Hist
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged != whole {
		t.Fatal("merged histogram differs from directly accumulated one")
	}
	for _, p := range []float64{1, 50, 95, 99, 100} {
		if merged.Quantile(p) != whole.Quantile(p) {
			t.Fatalf("P%v differs after merge", p)
		}
	}
}

func TestHistExtremes(t *testing.T) {
	var h Hist
	h.Add(-5) // clamps to 0
	h.Add(1 << 50)
	if h.Max() != 1<<50 {
		t.Fatalf("Max = %d", h.Max())
	}
	if h.Quantile(100) != 1<<50 {
		t.Fatal("overflow bucket must report the exact max")
	}
	if h.Quantile(1) != 0 {
		t.Fatal("clamped negative must land at 0")
	}
}
