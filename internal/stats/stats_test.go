package stats

import (
	"testing"
	"testing/quick"

	"ccsim/internal/memsys"
)

func TestProcTotal(t *testing.T) {
	p := Proc{Busy: 10, ReadStall: 20, WriteStall: 5, AcquireStall: 3, ReleaseStall: 2}
	if p.Total() != 40 {
		t.Fatalf("Total = %d, want 40", p.Total())
	}
}

func TestMissesAddAndTotal(t *testing.T) {
	var m Misses
	m.Add(Cold)
	m.Add(Cold)
	m.Add(Coherence)
	m.Add(Replacement)
	if m[Cold] != 2 || m[Coherence] != 1 || m[Replacement] != 1 {
		t.Fatalf("misses = %v", m)
	}
	if m.Total() != 4 {
		t.Fatalf("Total = %d, want 4", m.Total())
	}
}

func TestMissKindString(t *testing.T) {
	if Cold.String() != "cold" || Coherence.String() != "coherence" || Replacement.String() != "replacement" {
		t.Fatal("MissKind strings wrong")
	}
}

func TestTraffic(t *testing.T) {
	var tr Traffic
	tr.Add(CtlMsg, 8)
	tr.Add(DataMsg, 40)
	tr.Add(DataMsg, 40)
	tr.Add(UpdateMsg, 16)
	if tr.TotalBytes() != 104 || tr.TotalMsgs() != 4 {
		t.Fatalf("bytes=%d msgs=%d", tr.TotalBytes(), tr.TotalMsgs())
	}
	if tr.Bytes[DataMsg] != 80 || tr.Msgs[CtlMsg] != 1 {
		t.Fatalf("per-class wrong: %+v", tr)
	}
}

func TestClassifierColdFirstMiss(t *testing.T) {
	c := NewClassifier()
	if got := c.Classify(7); got != Cold {
		t.Fatalf("first miss classified %v, want cold", got)
	}
	if c.Seen(7) {
		t.Fatal("Seen before any fill")
	}
}

func TestClassifierCoherence(t *testing.T) {
	c := NewClassifier()
	c.Fill(3)
	c.Invalidate(3)
	if got := c.Classify(3); got != Coherence {
		t.Fatalf("miss after invalidation classified %v, want coherence", got)
	}
}

func TestClassifierReplacement(t *testing.T) {
	c := NewClassifier()
	c.Fill(3)
	c.Evict(3)
	if got := c.Classify(3); got != Replacement {
		t.Fatalf("miss after eviction classified %v, want replacement", got)
	}
}

func TestClassifierRefillResets(t *testing.T) {
	c := NewClassifier()
	c.Fill(3)
	c.Invalidate(3)
	c.Fill(3) // brought back
	c.Evict(3)
	if got := c.Classify(3); got != Replacement {
		t.Fatalf("invalidate->fill->evict classified %v, want replacement", got)
	}
}

func TestClassifierEvictWithoutFillIgnored(t *testing.T) {
	c := NewClassifier()
	c.Evict(9)      // spurious
	c.Invalidate(9) // spurious
	if got := c.Classify(9); got != Cold {
		t.Fatalf("never-filled block classified %v, want cold", got)
	}
}

// Property: classification is never Cold once the block has been filled,
// for any sequence of events.
func TestClassifierNeverColdAfterFillProperty(t *testing.T) {
	f := func(events []uint8) bool {
		c := NewClassifier()
		b := memsys.Block(1)
		c.Fill(b)
		for _, e := range events {
			switch e % 3 {
			case 0:
				c.Fill(b)
			case 1:
				c.Evict(b)
			case 2:
				c.Invalidate(b)
			}
		}
		return c.Classify(b) != Cold && c.Seen(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: after Fill, only the most recent departure event decides the
// classification.
func TestClassifierLastDepartureWinsProperty(t *testing.T) {
	f := func(n uint8, lastIsInv bool) bool {
		c := NewClassifier()
		b := memsys.Block(2)
		for i := 0; i < int(n%8)+1; i++ {
			c.Fill(b)
			if i%2 == 0 {
				c.Evict(b)
			} else {
				c.Invalidate(b)
			}
		}
		c.Fill(b)
		if lastIsInv {
			c.Invalidate(b)
			return c.Classify(b) == Coherence
		}
		c.Evict(b)
		return c.Classify(b) == Replacement
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyHist(t *testing.T) {
	var h LatencyHist
	if h.Percentile(50) != 0 {
		t.Fatal("empty histogram percentile not 0")
	}
	for _, v := range []int64{10, 30, 60, 100, 300, 3000} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Buckets[0] != 2 { // 10, 30 <= 32
		t.Fatalf("bucket 0 = %d", h.Buckets[0])
	}
	if h.Buckets[len(h.Buckets)-1] != 1 { // 3000 overflows
		t.Fatal("overflow bucket wrong")
	}
	if p := h.Percentile(50); p != 64 {
		t.Fatalf("P50 = %d, want 64 (bucket bound of the 3rd sample)", p)
	}
	if p := h.Percentile(100); p != 2048 {
		t.Fatalf("P100 = %d", p)
	}
	var o LatencyHist
	o.Add(10)
	h.Merge(o)
	if h.Total() != 7 || h.Buckets[0] != 3 {
		t.Fatal("merge wrong")
	}
}

func TestLatencyHistMonotonicProperty(t *testing.T) {
	var h LatencyHist
	for i := int64(1); i < 4000; i += 37 {
		h.Add(i)
	}
	last := int64(0)
	for _, p := range []float64{10, 25, 50, 75, 90, 99} {
		v := h.Percentile(p)
		if v < last {
			t.Fatalf("percentiles not monotonic at %v: %d < %d", p, v, last)
		}
		last = v
	}
}
