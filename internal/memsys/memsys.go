// Package memsys defines the memory-system geometry of the simulated
// machine: 4-byte words, 32-byte cache blocks, 4-KB pages, and the
// round-robin allocation of pages to home nodes that the paper specifies
// ("memory pages of size 4 Kbytes are allocated across nodes in a
// round-robin fashion based on the least significant bits of the virtual
// page number").
package memsys

import "fmt"

// Geometry constants (paper §4).
const (
	WordSize      = 4                    // bytes per word (SPARC word)
	BlockSize     = 32                   // bytes per cache block
	PageSize      = 4096                 // bytes per page
	WordsPerBlock = BlockSize / WordSize // 8
	BlocksPerPage = PageSize / BlockSize // 128
)

// Addr is a byte address in the shared virtual address space (which the
// simulator identity-maps to physical).
type Addr uint64

// Block is a block number: Addr >> 5.
type Block uint64

// Page is a page number: Addr >> 12.
type Page uint64

// BlockOf returns the block containing a.
func BlockOf(a Addr) Block { return Block(a / BlockSize) }

// PageOf returns the page containing a.
func PageOf(a Addr) Page { return Page(a / PageSize) }

// PageOfBlock returns the page containing block b.
func PageOfBlock(b Block) Page { return Page(b / BlocksPerPage) }

// Addr returns the first byte address of block b.
func (b Block) Addr() Addr { return Addr(b) * BlockSize }

// Next returns the block k blocks after b in the address space.
func (b Block) Next(k int) Block { return b + Block(k) }

// WordIndex returns the index (0..7) of the word containing a within its
// block.
func WordIndex(a Addr) int { return int(a/WordSize) % WordsPerBlock }

// HomeOf returns the node whose memory holds block b, given the machine's
// node count: round-robin by page number.
func HomeOf(b Block, nodes int) int {
	return int(PageOfBlock(b)) % nodes
}

// WordMask is a bitmask over the 8 words of a block; used for the write
// cache's per-word dirty/valid bits and for selective updates.
type WordMask uint8

// FullMask marks every word of a block.
const FullMask WordMask = (1 << WordsPerBlock) - 1

// Set returns m with word w marked.
func (m WordMask) Set(w int) WordMask { return m | 1<<uint(w) }

// Has reports whether word w is marked.
func (m WordMask) Has(w int) bool { return m&(1<<uint(w)) != 0 }

// Count returns the number of marked words.
func (m WordMask) Count() int {
	n := 0
	for v := m; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Bytes returns the number of data bytes the mask selects.
func (m WordMask) Bytes() int { return m.Count() * WordSize }

func (m WordMask) String() string { return fmt.Sprintf("%08b", uint8(m)) }

// BlockData models a block's contents as one version number per word. The
// simulator does not carry application data; it carries these versions so
// the machine can verify the data-value invariant of coherence — a
// processor never observes a location's value moving backward in time.
type BlockData [WordsPerBlock]int64

// Merge overwrites the words selected by mask with src's values.
func (d *BlockData) Merge(src BlockData, mask WordMask) {
	for w := 0; w < WordsPerBlock; w++ {
		if mask.Has(w) {
			d[w] = src[w]
		}
	}
}
