package memsys

import (
	"testing"
	"testing/quick"
)

func TestGeometryConstants(t *testing.T) {
	if WordsPerBlock != 8 {
		t.Errorf("WordsPerBlock = %d, want 8", WordsPerBlock)
	}
	if BlocksPerPage != 128 {
		t.Errorf("BlocksPerPage = %d, want 128", BlocksPerPage)
	}
}

func TestBlockOf(t *testing.T) {
	cases := []struct {
		a Addr
		b Block
	}{
		{0, 0}, {31, 0}, {32, 1}, {63, 1}, {64, 2}, {4095, 127}, {4096, 128},
	}
	for _, c := range cases {
		if got := BlockOf(c.a); got != c.b {
			t.Errorf("BlockOf(%d) = %d, want %d", c.a, got, c.b)
		}
	}
}

func TestBlockAddrRoundTrip(t *testing.T) {
	f := func(a Addr) bool {
		b := BlockOf(a)
		return b.Addr() <= a && a < b.Addr()+BlockSize && BlockOf(b.Addr()) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWordIndex(t *testing.T) {
	if WordIndex(0) != 0 || WordIndex(4) != 1 || WordIndex(28) != 7 || WordIndex(32) != 0 {
		t.Errorf("WordIndex wrong: %d %d %d %d",
			WordIndex(0), WordIndex(4), WordIndex(28), WordIndex(32))
	}
	// Any byte in a word maps to the same index.
	if WordIndex(5) != 1 || WordIndex(7) != 1 {
		t.Error("WordIndex not stable within a word")
	}
}

func TestHomeOfRoundRobin(t *testing.T) {
	const nodes = 16
	// Every block of a page has the same home; consecutive pages cycle
	// through the nodes.
	for p := Page(0); p < 40; p++ {
		first := Block(uint64(p) * BlocksPerPage)
		home := HomeOf(first, nodes)
		if home != int(p)%nodes {
			t.Fatalf("page %d home = %d, want %d", p, home, int(p)%nodes)
		}
		for i := 0; i < BlocksPerPage; i++ {
			if HomeOf(first.Next(i), nodes) != home {
				t.Fatalf("block %d of page %d has a different home", i, p)
			}
		}
	}
}

func TestHomeOfInRangeProperty(t *testing.T) {
	f := func(b Block, n uint8) bool {
		nodes := int(n%64) + 1
		h := HomeOf(b, nodes)
		return h >= 0 && h < nodes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWordMask(t *testing.T) {
	var m WordMask
	if m.Count() != 0 || m.Bytes() != 0 {
		t.Fatal("zero mask not empty")
	}
	m = m.Set(0).Set(7).Set(3)
	if !m.Has(0) || !m.Has(3) || !m.Has(7) || m.Has(1) {
		t.Fatalf("mask bits wrong: %s", m)
	}
	if m.Count() != 3 || m.Bytes() != 12 {
		t.Fatalf("Count=%d Bytes=%d, want 3/12", m.Count(), m.Bytes())
	}
	if FullMask.Count() != WordsPerBlock || FullMask.Bytes() != BlockSize {
		t.Fatal("FullMask does not cover the block")
	}
}

func TestWordMaskSetIdempotentProperty(t *testing.T) {
	f := func(m WordMask, w uint8) bool {
		i := int(w % WordsPerBlock)
		once := m.Set(i)
		return once == once.Set(i) && once.Has(i) && once.Count() >= m.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
