package syncprim

import (
	"testing"
	"testing/quick"
)

func TestLockFreeAcquire(t *testing.T) {
	var l Lock
	if !l.Acquire(3) {
		t.Fatal("acquire of free lock not granted")
	}
	if !l.Held() || l.Holder() != 3 {
		t.Fatal("lock state wrong after grant")
	}
}

func TestLockQueuesFIFO(t *testing.T) {
	var l Lock
	l.Acquire(0)
	for _, p := range []int{1, 2, 3} {
		if l.Acquire(p) {
			t.Fatalf("acquire by %d granted while held", p)
		}
	}
	if l.QueueLen() != 3 {
		t.Fatalf("queue length %d, want 3", l.QueueLen())
	}
	order := []int{}
	holder := 0
	for l.QueueLen() > 0 || l.Held() {
		next, ok := l.Release(holder)
		if !ok {
			break
		}
		order = append(order, next)
		holder = next
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want %v", order, want)
		}
	}
	if l.Held() {
		t.Fatal("lock still held after final release")
	}
}

func TestLockReleaseWithoutWaiters(t *testing.T) {
	var l Lock
	l.Acquire(5)
	if _, ok := l.Release(5); ok {
		t.Fatal("release with empty queue reported a next holder")
	}
	if l.Held() {
		t.Fatal("lock held after release")
	}
	if !l.Acquire(6) {
		t.Fatal("reacquire after release not granted")
	}
}

func TestLockBadReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("release by non-holder did not panic")
		}
	}()
	var l Lock
	l.Acquire(1)
	l.Release(2)
}

func TestLockReleaseUnheldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("release of unheld lock did not panic")
		}
	}()
	var l Lock
	l.Release(0)
}

// Property: mutual exclusion and FIFO grant order hold for any acquire
// pattern.
func TestLockFIFOProperty(t *testing.T) {
	f := func(procs []uint8) bool {
		var l Lock
		var expect []int
		holder := -1
		for _, pb := range procs {
			p := int(pb % 16)
			if l.Acquire(p) {
				if holder != -1 {
					return false // granted while held
				}
				holder = p
			} else {
				expect = append(expect, p)
			}
		}
		for i := 0; holder != -1; i++ {
			next, ok := l.Release(holder)
			if !ok {
				holder = -1
				break
			}
			if i >= len(expect) || next != expect[i] {
				return false
			}
			holder = next
		}
		return l.QueueLen() == 0 && !l.Held()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierReleasesAllAtOnce(t *testing.T) {
	b := NewBarrier(4)
	for p := 0; p < 3; p++ {
		if rel, done := b.Arrive(p); done || rel != nil {
			t.Fatalf("barrier released early at arrival %d", p)
		}
	}
	rel, done := b.Arrive(3)
	if !done || len(rel) != 4 {
		t.Fatalf("final arrival: done=%v released=%v", done, rel)
	}
	seen := map[int]bool{}
	for _, p := range rel {
		seen[p] = true
	}
	for p := 0; p < 4; p++ {
		if !seen[p] {
			t.Fatalf("processor %d missing from release set %v", p, rel)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	b := NewBarrier(2)
	for episode := 0; episode < 3; episode++ {
		b.Arrive(0)
		rel, done := b.Arrive(1)
		if !done || len(rel) != 2 {
			t.Fatalf("episode %d did not release", episode)
		}
		if b.Waiting() != 0 {
			t.Fatalf("episode %d left %d waiting", episode, b.Waiting())
		}
	}
}

func TestBarrierDoubleArrivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double arrival did not panic")
		}
	}()
	b := NewBarrier(3)
	b.Arrive(1)
	b.Arrive(1)
}

// Property: for any party count n >= 1 and any arrival order, exactly the
// n-th arrival releases, and the release set is the arrival set.
func TestBarrierCountingProperty(t *testing.T) {
	f := func(n uint8) bool {
		parties := int(n%16) + 1
		b := NewBarrier(parties)
		for p := 0; p < parties-1; p++ {
			if _, done := b.Arrive(p); done {
				return false
			}
		}
		rel, done := b.Arrive(parties - 1)
		return done && len(rel) == parties && b.Waiting() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
