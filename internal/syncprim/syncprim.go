// Package syncprim implements the synchronization primitives of the
// simulated machine as pure state machines: the DASH-style queue-based lock
// kept at the memory of the lock variable's home node (one lock variable per
// memory block, paper §4), and a centralized barrier. The home controller
// drives these with messages; keeping them free of simulator dependencies
// makes them directly unit-testable.
package syncprim

// Lock is a queue-based lock held at its home memory module. Waiters queue
// in FIFO order and are granted the lock directly on release, so a release
// costs a single node-to-node transfer to the next waiter.
type Lock struct {
	held   bool
	holder int
	queue  []int
}

// Acquire requests the lock for processor p. It returns true if the lock
// was free and is now granted to p; otherwise p is appended to the wait
// queue and false is returned.
func (l *Lock) Acquire(p int) bool {
	if !l.held {
		l.held = true
		l.holder = p
		return true
	}
	l.queue = append(l.queue, p)
	return false
}

// Release releases the lock held by p. If a waiter is queued, the lock
// passes to it and (next, true) is returned so the caller can send the
// grant; otherwise the lock becomes free and ok is false.
// Releasing a lock not held by p panics: it indicates a protocol bug.
func (l *Lock) Release(p int) (next int, ok bool) {
	if !l.held || l.holder != p {
		panic("syncprim: release of lock not held by releaser")
	}
	if len(l.queue) == 0 {
		l.held = false
		return 0, false
	}
	next = l.queue[0]
	l.queue = l.queue[1:]
	l.holder = next
	return next, true
}

// Held reports whether the lock is currently held.
func (l *Lock) Held() bool { return l.held }

// Holder returns the current holder; only meaningful when Held.
func (l *Lock) Holder() int { return l.holder }

// QueueLen returns the number of queued waiters.
func (l *Lock) QueueLen() int { return len(l.queue) }

// Barrier is a centralized N-party barrier: processors send an arrive
// message to the barrier's home; when the N-th arrives, the home releases
// everyone. It is reusable (episodes are implicit).
type Barrier struct {
	n       int
	arrived []int
}

// NewBarrier returns a barrier for n parties.
func NewBarrier(n int) *Barrier { return &Barrier{n: n} }

// Arrive records processor p's arrival. When p completes the party, the
// list of all waiting processors (including p) is returned with done=true
// and the barrier resets for the next episode. Arriving twice in one
// episode panics: a processor cannot pass a barrier it is blocked on.
func (b *Barrier) Arrive(p int) (release []int, done bool) {
	for _, q := range b.arrived {
		if q == p {
			panic("syncprim: processor arrived twice at barrier")
		}
	}
	b.arrived = append(b.arrived, p)
	if len(b.arrived) < b.n {
		return nil, false
	}
	release = b.arrived
	b.arrived = nil
	return release, true
}

// Waiting returns how many processors are blocked at the barrier.
func (b *Barrier) Waiting() int { return len(b.arrived) }

// Parties returns the number of processors the barrier synchronizes.
func (b *Barrier) Parties() int { return b.n }
