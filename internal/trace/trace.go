// Package trace provides structured event tracing for the coherence
// protocol: every message send and delivery, directory transitions, and
// processor stalls can be captured, filtered and rendered. Traces are the
// primary debugging tool for protocol work — the ABA races fixed during
// this reproduction were all found by reading them — and they feed the
// cmd/ccsim -trace flag.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Kind classifies trace events.
type Kind int

const (
	// MsgSend: a protocol message entered its source node's bus.
	MsgSend Kind = iota
	// MsgDeliver: a protocol message reached its destination controller.
	MsgDeliver
	// DirTransition: a directory entry changed stable state.
	DirTransition
	// CacheFill: a line was installed in an SLC.
	CacheFill
	// CacheEvict: a line left an SLC (replacement or invalidation).
	CacheEvict
	// ProcStall: a processor began waiting on the memory system.
	ProcStall
	nKinds
)

var kindNames = [nKinds]string{
	"send", "deliver", "dir", "fill", "evict", "stall",
}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return "?"
	}
	return kindNames[k]
}

// Event is one trace record. Fields are generic so the tracer stays
// decoupled from the protocol package: What carries the message type or
// transition name, Block the address, Node the acting node, Peer the other
// endpoint (-1 if none).
type Event struct {
	At    int64 // pclocks
	Kind  Kind
	What  string
	Block uint64
	Node  int
	Peer  int
	Note  string
}

// String renders the event as one line.
func (e Event) String() string {
	peer := ""
	if e.Peer >= 0 {
		peer = fmt.Sprintf("->%d", e.Peer)
	}
	note := ""
	if e.Note != "" {
		note = " " + e.Note
	}
	return fmt.Sprintf("T%-8d %-7s n%d%-4s %-10s blk%d%s",
		e.At, e.Kind, e.Node, peer, e.What, e.Block, note)
}

// Filter selects which events a tracer records. The zero value records
// everything.
type Filter struct {
	Kinds  []Kind   // empty = all kinds
	Blocks []uint64 // empty = all blocks
	Nodes  []int    // empty = all nodes
}

func (f *Filter) match(e Event) bool {
	if len(f.Kinds) > 0 && !containsKind(f.Kinds, e.Kind) {
		return false
	}
	if len(f.Blocks) > 0 && !containsU64(f.Blocks, e.Block) {
		return false
	}
	if len(f.Nodes) > 0 && !containsInt(f.Nodes, e.Node) {
		return false
	}
	return true
}

func containsKind(s []Kind, v Kind) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func containsU64(s []uint64, v uint64) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Tracer collects events. It is safe for use from a single simulation
// goroutine; the mutex only guards concurrent readers (e.g. a test
// inspecting while the simulation runs).
type Tracer struct {
	mu     sync.Mutex
	filter Filter
	out    io.Writer // nil: buffer only
	events []Event
	limit  int // 0 = unbounded
	drops  uint64
}

// New returns a tracer that buffers matching events and, if out is
// non-nil, streams them there as they happen.
func New(out io.Writer, filter Filter) *Tracer {
	return &Tracer{out: out, filter: filter}
}

// SetLimit bounds the in-memory buffer; once full, older events are kept
// and newer ones counted as drops (the stream output is unaffected).
func (t *Tracer) SetLimit(n int) { t.limit = n }

// Record adds an event if it passes the filter.
func (t *Tracer) Record(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.filter.match(e) {
		return
	}
	if t.out != nil {
		fmt.Fprintln(t.out, e.String())
	}
	if t.limit > 0 && len(t.events) >= t.limit {
		t.drops++
		return
	}
	t.events = append(t.events, e)
}

// Events returns a copy of the buffered events.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Drops returns how many events the buffer limit discarded.
func (t *Tracer) Drops() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drops
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Summary aggregates the buffered events into per-What counts, rendered
// most-frequent first. Handy for a quick view of protocol activity.
func (t *Tracer) Summary() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	counts := map[string]int{}
	for _, e := range t.events {
		counts[e.Kind.String()+"/"+e.What]++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%8d  %s\n", counts[k], k)
	}
	return b.String()
}

// BlockHistory returns the buffered events for one block, in order — the
// view protocol debugging wants.
func (t *Tracer) BlockHistory(block uint64) []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Event
	for _, e := range t.events {
		if e.Block == block {
			out = append(out, e)
		}
	}
	return out
}
