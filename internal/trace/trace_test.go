package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func ev(at int64, k Kind, what string, blk uint64, node int) Event {
	return Event{At: at, Kind: k, What: what, Block: blk, Node: node, Peer: -1}
}

func TestTracerBuffersAndStreams(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf, Filter{})
	tr.Record(ev(10, MsgSend, "ReadReq", 5, 0))
	tr.Record(ev(20, MsgDeliver, "ReadReq", 5, 1))
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	out := buf.String()
	if !strings.Contains(out, "ReadReq") || !strings.Contains(out, "T10") {
		t.Fatalf("stream output wrong:\n%s", out)
	}
	evs := tr.Events()
	if evs[0].At != 10 || evs[1].At != 20 {
		t.Fatal("buffered order wrong")
	}
}

func TestTracerKindFilter(t *testing.T) {
	tr := New(nil, Filter{Kinds: []Kind{DirTransition}})
	tr.Record(ev(1, MsgSend, "x", 0, 0))
	tr.Record(ev(2, DirTransition, "grant", 0, 0))
	if tr.Len() != 1 || tr.Events()[0].Kind != DirTransition {
		t.Fatalf("filter failed: %v", tr.Events())
	}
}

func TestTracerBlockAndNodeFilter(t *testing.T) {
	tr := New(nil, Filter{Blocks: []uint64{7}, Nodes: []int{2}})
	tr.Record(ev(1, MsgSend, "a", 7, 2)) // match
	tr.Record(ev(2, MsgSend, "b", 7, 3)) // wrong node
	tr.Record(ev(3, MsgSend, "c", 8, 2)) // wrong block
	if tr.Len() != 1 || tr.Events()[0].What != "a" {
		t.Fatalf("filter failed: %v", tr.Events())
	}
}

func TestTracerLimitDrops(t *testing.T) {
	tr := New(nil, Filter{})
	tr.SetLimit(2)
	for i := 0; i < 5; i++ {
		tr.Record(ev(int64(i), MsgSend, "x", 0, 0))
	}
	if tr.Len() != 2 || tr.Drops() != 3 {
		t.Fatalf("len=%d drops=%d", tr.Len(), tr.Drops())
	}
}

func TestSummaryOrdersByCount(t *testing.T) {
	tr := New(nil, Filter{})
	for i := 0; i < 3; i++ {
		tr.Record(ev(int64(i), MsgSend, "ReadReq", 0, 0))
	}
	tr.Record(ev(9, MsgSend, "Inv", 0, 0))
	s := tr.Summary()
	if !strings.Contains(s, "3  send/ReadReq") {
		t.Fatalf("summary wrong:\n%s", s)
	}
	if strings.Index(s, "ReadReq") > strings.Index(s, "Inv") {
		t.Fatalf("summary not frequency-ordered:\n%s", s)
	}
}

func TestBlockHistory(t *testing.T) {
	tr := New(nil, Filter{})
	tr.Record(ev(1, MsgSend, "a", 10, 0))
	tr.Record(ev(2, MsgSend, "b", 11, 0))
	tr.Record(ev(3, MsgSend, "c", 10, 0))
	h := tr.BlockHistory(10)
	if len(h) != 2 || h[0].What != "a" || h[1].What != "c" {
		t.Fatalf("history wrong: %v", h)
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 42, Kind: MsgSend, What: "OwnReq", Block: 9, Node: 1, Peer: 3, Note: "excl"}
	s := e.String()
	for _, want := range []string{"T42", "send", "n1", "->3", "OwnReq", "blk9", "excl"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	noPeer := ev(1, CacheFill, "S", 2, 0)
	if strings.Contains(noPeer.String(), "->") {
		t.Fatal("peerless event rendered a peer")
	}
}

func TestKindString(t *testing.T) {
	if MsgSend.String() != "send" || CacheEvict.String() != "evict" || Kind(99).String() != "?" {
		t.Fatal("kind names wrong")
	}
}

// Property: the zero filter matches every event.
func TestZeroFilterMatchesAll(t *testing.T) {
	f := func(at int64, k uint8, blk uint64, node int8) bool {
		tr := New(nil, Filter{})
		before := tr.Len()
		tr.Record(Event{At: at, Kind: Kind(int(k) % int(nKinds)), Block: blk, Node: int(node), Peer: -1})
		return tr.Len() == before+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
