// Package network models the machine interconnect. Two models from the
// paper are provided:
//
//   - Uniform: the default contention-free network with a fixed 54-pclock
//     node-to-node latency ("we assume a contention-free uniform access time
//     network", paper §4). Node-internal contention is modeled elsewhere.
//
//   - Mesh: the wormhole-routed 2-D mesh of §5.3, dimension-order (X then Y)
//     routed, two phases (routing + transfer) per hop, clocked at the
//     processor frequency, with configurable link width (64/32/16 bits).
//     Link contention is modeled by FIFO reservation of every directed link
//     along the route.
package network

import (
	"fmt"

	"ccsim/internal/sim"
)

// Net delivers messages between nodes. deliver runs at the destination when
// the message's last byte arrives.
type Net interface {
	// Send transmits a message of the given size in bytes from src to dst
	// and schedules deliver at arrival time. src == dst is legal and
	// delivers on the next event with no latency (the local case is
	// handled by the node's bus, not the network).
	Send(src, dst, bytes int, deliver func())
	// SendCall is Send with the engine's static-function event form:
	// deliver(arg) runs at arrival. Callers that pool arg transmit without
	// allocating a closure per message.
	SendCall(src, dst, bytes int, deliver func(any), arg any)
	// Name identifies the network model for reports.
	Name() string
}

// Uniform is the contention-free fixed-latency network.
type Uniform struct {
	eng     *sim.Engine
	latency sim.Time
}

// NewUniform returns a uniform network with the given one-way latency.
func NewUniform(eng *sim.Engine, latency sim.Time) *Uniform {
	return &Uniform{eng: eng, latency: latency}
}

// Send implements Net.
func (u *Uniform) Send(src, dst, bytes int, deliver func()) {
	if src == dst {
		u.eng.After(0, deliver)
		return
	}
	u.eng.After(u.latency, deliver)
}

// SendCall implements Net.
func (u *Uniform) SendCall(src, dst, bytes int, deliver func(any), arg any) {
	if src == dst {
		u.eng.AfterCall(0, deliver, arg)
		return
	}
	u.eng.AfterCall(u.latency, deliver, arg)
}

// Name implements Net.
func (u *Uniform) Name() string { return fmt.Sprintf("uniform(%d)", u.latency) }

// Mesh is the wormhole-routed 2-D mesh. For a message of F flits crossing H
// hops, the header advances one hop per 2 cycles (routing phase + transfer
// phase) and the body streams behind it at one flit per cycle, so the
// uncontended latency is 2*H + F cycles. Each directed link is reserved
// FIFO for the duration the worm occupies it; a blocked header waits for
// the link to free, which is the coarse-grain equivalent of wormhole
// blocking.
type Mesh struct {
	eng           *sim.Engine
	width, height int
	bytesPerFlit  int

	// freeAt[l] is when directed link l is next free. Links are indexed by
	// (from, to) pairs of adjacent nodes.
	freeAt map[[2]int]sim.Time

	// routeBuf is transit's reusable route scratch space.
	routeBuf []int

	// Statistics.
	msgs      uint64
	flitsSent uint64
	waitTime  sim.Time
}

// NewMesh returns a width x height wormhole mesh with links of the given
// width in bits (must be a multiple of 8).
func NewMesh(eng *sim.Engine, width, height, linkBits int) *Mesh {
	if linkBits%8 != 0 || linkBits <= 0 {
		panic("network: link width must be a positive multiple of 8 bits")
	}
	return &Mesh{
		eng:          eng,
		width:        width,
		height:       height,
		bytesPerFlit: linkBits / 8,
		freeAt:       make(map[[2]int]sim.Time),
	}
}

// Name implements Net.
func (m *Mesh) Name() string {
	return fmt.Sprintf("mesh%dx%d(%d-bit)", m.width, m.height, m.bytesPerFlit*8)
}

func (m *Mesh) xy(n int) (x, y int) { return n % m.width, n / m.width }
func (m *Mesh) node(x, y int) int   { return y*m.width + x }

// Route returns the dimension-order (X then Y) route from src to dst as a
// node sequence including both endpoints.
func (m *Mesh) Route(src, dst int) []int { return m.routeAppend(nil, src, dst) }

// routeAppend appends the route to buf; transit passes a reused scratch
// buffer so the per-message path allocates nothing once warm.
func (m *Mesh) routeAppend(buf []int, src, dst int) []int {
	x, y := m.xy(src)
	dx, dy := m.xy(dst)
	route := append(buf, src)
	for x != dx {
		if x < dx {
			x++
		} else {
			x--
		}
		route = append(route, m.node(x, y))
	}
	for y != dy {
		if y < dy {
			y++
		} else {
			y--
		}
		route = append(route, m.node(x, y))
	}
	return route
}

// Flits returns the number of flits a message of the given size occupies.
func (m *Mesh) Flits(bytes int) int {
	f := (bytes + m.bytesPerFlit - 1) / m.bytesPerFlit
	if f < 1 {
		f = 1
	}
	return f
}

// Send implements Net.
func (m *Mesh) Send(src, dst, bytes int, deliver func()) {
	if src == dst {
		m.eng.After(0, deliver)
		return
	}
	m.eng.At(m.transit(src, dst, bytes), deliver)
}

// SendCall implements Net.
func (m *Mesh) SendCall(src, dst, bytes int, deliver func(any), arg any) {
	if src == dst {
		m.eng.AfterCall(0, deliver, arg)
		return
	}
	m.eng.AtCall(m.transit(src, dst, bytes), deliver, arg)
}

// transit reserves every link of the worm's route, updates the contention
// statistics, and returns the absolute arrival time of the message's tail.
func (m *Mesh) transit(src, dst, bytes int) sim.Time {
	flits := sim.Time(m.Flits(bytes))
	m.routeBuf = m.routeAppend(m.routeBuf[:0], src, dst)
	route := m.routeBuf
	t := m.eng.Now()
	for i := 0; i+1 < len(route); i++ {
		link := [2]int{route[i], route[i+1]}
		start := t
		if f := m.freeAt[link]; f > start {
			m.waitTime += f - start
			start = f
			// Wormhole blocking: while the header waits here, the worm's
			// body keeps occupying every upstream link of its route — the
			// tree saturation that makes wormhole meshes degrade sharply
			// near their capacity.
			for k := 0; k < i; k++ {
				up := [2]int{route[k], route[k+1]}
				if hold := start + flits; m.freeAt[up] < hold {
					m.freeAt[up] = hold
				}
			}
		}
		// The worm occupies the link from header entry until the tail has
		// passed: routing + transfer phases plus the body flits.
		m.freeAt[link] = start + 2 + flits
		m.flitsSent += uint64(flits)
		// The header is through this hop after the two phases.
		t = start + 2
	}
	m.msgs++
	// The tail arrives one flit time per body flit after the header.
	return t + flits
}

// Msgs returns the number of messages sent.
func (m *Mesh) Msgs() uint64 { return m.msgs }

// WaitTime returns the cumulative header blocking time across all links, a
// direct measure of network contention.
func (m *Mesh) WaitTime() sim.Time { return m.waitTime }
