package network

import (
	"testing"
	"testing/quick"

	"ccsim/internal/sim"
)

func TestUniformLatency(t *testing.T) {
	eng := sim.NewEngine()
	n := NewUniform(eng, 54)
	var at sim.Time = -1
	n.Send(0, 5, 40, func() { at = eng.Now() })
	eng.Run()
	if at != 54 {
		t.Fatalf("delivered at %d, want 54", at)
	}
}

func TestUniformLocalIsImmediate(t *testing.T) {
	eng := sim.NewEngine()
	n := NewUniform(eng, 54)
	var at sim.Time = -1
	n.Send(3, 3, 8, func() { at = eng.Now() })
	eng.Run()
	if at != 0 {
		t.Fatalf("local delivery at %d, want 0", at)
	}
}

func TestUniformNoContention(t *testing.T) {
	eng := sim.NewEngine()
	n := NewUniform(eng, 54)
	delivered := 0
	for i := 0; i < 100; i++ {
		n.Send(0, 1, 40, func() {
			if eng.Now() != 54 {
				t.Errorf("message delivered at %d, want 54", eng.Now())
			}
			delivered++
		})
	}
	eng.Run()
	if delivered != 100 {
		t.Fatalf("delivered %d, want 100", delivered)
	}
}

func TestMeshRouteDimensionOrder(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMesh(eng, 4, 4, 16)
	// Node 1 = (1,0), node 14 = (2,3): route X first 1->2, then Y down.
	route := m.Route(1, 14)
	want := []int{1, 2, 6, 10, 14}
	if len(route) != len(want) {
		t.Fatalf("route %v, want %v", route, want)
	}
	for i := range want {
		if route[i] != want[i] {
			t.Fatalf("route %v, want %v", route, want)
		}
	}
}

func TestMeshRouteSelf(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMesh(eng, 4, 4, 16)
	if r := m.Route(5, 5); len(r) != 1 || r[0] != 5 {
		t.Fatalf("self-route = %v", r)
	}
}

func TestMeshFlits(t *testing.T) {
	eng := sim.NewEngine()
	cases := []struct{ bits, bytes, want int }{
		{64, 40, 5}, {32, 40, 10}, {16, 40, 20},
		{64, 8, 1}, {16, 8, 4}, {64, 0, 1}, {64, 1, 1},
	}
	for _, c := range cases {
		m := NewMesh(eng, 4, 4, c.bits)
		if got := m.Flits(c.bytes); got != c.want {
			t.Errorf("Flits(%dB @ %d-bit) = %d, want %d", c.bytes, c.bits, got, c.want)
		}
	}
}

func TestMeshUncontendedLatency(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMesh(eng, 4, 4, 64)
	// 0 -> 3: 3 hops. 40 bytes @ 64-bit = 5 flits. Latency = 2*3 + 5 = 11.
	var at sim.Time = -1
	m.Send(0, 3, 40, func() { at = eng.Now() })
	eng.Run()
	if at != 11 {
		t.Fatalf("delivered at %d, want 11", at)
	}
}

func TestMeshNarrowLinksAreSlower(t *testing.T) {
	lat := func(bits int) sim.Time {
		eng := sim.NewEngine()
		m := NewMesh(eng, 4, 4, bits)
		var at sim.Time
		m.Send(0, 15, 40, func() { at = eng.Now() })
		eng.Run()
		return at
	}
	l64, l32, l16 := lat(64), lat(32), lat(16)
	if !(l64 < l32 && l32 < l16) {
		t.Fatalf("latencies not ordered: 64=%d 32=%d 16=%d", l64, l32, l16)
	}
}

func TestMeshLinkContention(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMesh(eng, 4, 4, 16)
	// Two messages over the same single link 0->1 at t=0. 40B @ 16-bit = 20
	// flits. First arrives at 2+20=22; second waits for the link (free at
	// 22) and arrives at 22+2+20=44.
	var first, second sim.Time
	m.Send(0, 1, 40, func() { first = eng.Now() })
	m.Send(0, 1, 40, func() { second = eng.Now() })
	eng.Run()
	if first != 22 || second != 44 {
		t.Fatalf("arrivals %d, %d; want 22, 44", first, second)
	}
	if m.WaitTime() == 0 {
		t.Fatal("contention not recorded in WaitTime")
	}
}

func TestMeshDisjointRoutesDoNotInterfere(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMesh(eng, 4, 4, 16)
	var a, b sim.Time
	m.Send(0, 1, 40, func() { a = eng.Now() })
	m.Send(4, 5, 40, func() { b = eng.Now() })
	eng.Run()
	if a != 22 || b != 22 {
		t.Fatalf("disjoint messages at %d, %d; want both 22", a, b)
	}
	if m.WaitTime() != 0 {
		t.Fatal("disjoint routes recorded contention")
	}
}

func TestMeshBadLinkWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-multiple-of-8 link width did not panic")
		}
	}()
	NewMesh(sim.NewEngine(), 4, 4, 12)
}

// Property: every route is a valid path of adjacent mesh nodes from src to
// dst, with length <= width+height hops.
func TestMeshRouteValidityProperty(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMesh(eng, 4, 4, 32)
	f := func(s, d uint8) bool {
		src, dst := int(s%16), int(d%16)
		r := m.Route(src, dst)
		if r[0] != src || r[len(r)-1] != dst {
			return false
		}
		if len(r) > 1+3+3 {
			return false
		}
		for i := 0; i+1 < len(r); i++ {
			ax, ay := r[i]%4, r[i]/4
			bx, by := r[i+1]%4, r[i+1]/4
			manhattan := abs(ax-bx) + abs(ay-by)
			if manhattan != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: delivery time is never earlier than the uncontended bound
// 2*hops + flits.
func TestMeshLatencyLowerBoundProperty(t *testing.T) {
	f := func(pairs []struct{ S, D uint8 }) bool {
		eng := sim.NewEngine()
		m := NewMesh(eng, 4, 4, 16)
		ok := true
		for _, p := range pairs {
			src, dst := int(p.S%16), int(p.D%16)
			if src == dst {
				continue
			}
			hops := len(m.Route(src, dst)) - 1
			bound := sim.Time(2*hops + m.Flits(40))
			m.Send(src, dst, 40, func() {
				if eng.Now() < bound {
					ok = false
				}
			})
		}
		eng.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
