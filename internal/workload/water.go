package workload

import (
	"ccsim/internal/memsys"
	"ccsim/internal/proc"
)

// Water reproduces the reference behavior of SPLASH Water (molecular
// dynamics, 288 molecules / 4 steps in the paper): a compute-heavy O(N^2/2)
// pairwise force phase in which molecule positions are read-only-shared
// (cached after the first touch each step) and partial forces accumulate in
// private storage; the accumulated contributions are then committed to the
// per-molecule force records under per-molecule locks — one lock-protected
// read-modify-write per (processor, molecule), the migratory pattern M
// exploits. An update phase integrates owned molecules, overwriting the
// positions everyone just read (the next step's coherence misses, which CW
// turns into updates). Default here: 224 molecules over 3 steps.
func Water(procs int, scale float64) []proc.Stream {
	mols := scaled(224, scale, procs*2)
	steps := scaled(3, scale, 2)
	if steps > 4 {
		steps = 4
	}

	// Layout (block indices): the position array [0, mols) is dense and
	// sequential (what the prefetcher feeds on); force accumulators sit in
	// the per-molecule record region above it, one record every few blocks
	// as in the original's ~676-byte molecule records — so a sequential
	// prefetch from one molecule's forces never lands on the next
	// molecule's lock-protected accumulator.
	const recBlocks = 3
	posBlock := func(i int) memsys.Addr {
		return dataBase + memsys.Addr(i)*memsys.BlockSize
	}
	forceBlock := func(i int) memsys.Addr {
		return dataBase + memsys.Addr(mols+i*recBlocks)*memsys.BlockSize
	}

	streams := make([]proc.Stream, procs)
	for p := 0; p < procs; p++ {
		s := &script{}
		s.statsOn()
		bar := 0
		for step := 0; step < steps; step++ {
			// Force phase: pairs (i, j), i < j, dealt round-robin. The
			// pairwise interaction itself reads both positions (hits after
			// the first touch per step) and computes privately.
			pair := 0
			touched := make([]bool, mols)
			for i := 0; i < mols; i++ {
				for j := i + 1; j < mols; j++ {
					if pair%procs == p {
						// Distance check reads both positions; only pairs
						// within the cutoff radius (about half, by a
						// deterministic hash) compute the full potential
						// and contribute forces.
						s.readBlock(posBlock(i), 2)
						s.readBlock(posBlock(j), 2)
						if (i*2654435761+j*40503)%100 < 50 {
							s.busy(280)
							touched[i], touched[j] = true, true
						} else {
							s.busy(30)
						}
					}
					pair++
				}
			}
			// Commit accumulated contributions: one lock-protected
			// read-modify-write per touched molecule (the classic
			// migratory critical section). Processors start at different
			// molecules so the sweeps do not convoy on the same locks.
			start := p * mols / procs
			for n := 0; n < mols; n++ {
				i := (start + n) % mols
				if !touched[i] {
					continue
				}
				s.acquire(i)
				s.read(forceBlock(i))
				s.busy(6)
				s.write(forceBlock(i))
				s.release(i)
				s.busy(15)
			}
			s.barrier(bar)
			bar++
			// Update phase: integrate owned molecules; positions written
			// here are the ones everyone reads next step.
			for i := p; i < mols; i += procs {
				s.read(forceBlock(i))
				s.write(forceBlock(i))
				s.readBlock(posBlock(i), 2)
				s.write(posBlock(i))
				s.write(posBlock(i) + 4)
				s.busy(40)
			}
			s.barrier(bar)
			bar++
		}
		streams[p] = s.stream()
	}
	return streams
}
