package workload

import (
	"ccsim/internal/memsys"
	"ccsim/internal/proc"
)

// Cholesky reproduces the reference behavior of SPLASH Cholesky (sparse
// factorization, bcsstk14 in the paper): a lock-protected task queue hands
// out columns; each task streams through fresh column data once — which is
// why the cold miss rate stays high for the whole execution, the paper's
// point about direct solution methods — and then applies lock-protected
// read-modify-write updates to a few destination columns, the migratory
// pattern M exploits. Column data is laid out in consecutive blocks, the
// spatial locality adaptive prefetching feeds on (paper: P cuts Cholesky's
// cold rate 0.90 % -> 0.19 %).
func Cholesky(procs int, scale float64) []proc.Stream {
	cols := scaled(1024, scale, procs*4)
	const blocksPerCol = 4
	const updatesPerTask = 3
	const destLocks = 31

	// Layout (block indices): column j occupies blocks
	// [j*blocksPerCol, ...); the task-queue head counter follows.
	qhead := dataBase + memsys.Addr(cols*blocksPerCol)*memsys.BlockSize
	colBlock := func(j, b int) memsys.Addr {
		return dataBase + memsys.Addr(j*blocksPerCol+b)*memsys.BlockSize
	}

	streams := make([]proc.Stream, procs)
	for p := 0; p < procs; p++ {
		r := rng("cholesky", p)
		s := &script{}
		s.statsOn()
		// Tasks are dequeued in batches of four columns; the generator
		// assigns them round-robin (the queue traffic — a migratory
		// counter under a lock — is modeled faithfully either way).
		taskno := 0
		for j := p; j < cols; j += procs {
			if taskno%4 == 0 {
				s.acquire(0)
				s.read(qhead)
				s.write(qhead)
				s.release(0)
			}
			taskno++
			// Factor column j: stream through its blocks once.
			for b := 0; b < blocksPerCol; b++ {
				s.readBlock(colBlock(j, b), 2)
				s.busy(55)
			}
			// Update destination columns beyond j (read-modify-write under
			// per-column locks: migratory sharing).
			for u := 0; u < updatesPerTask; u++ {
				if j+1 >= cols {
					break
				}
				k := j + 1 + r.Intn(cols-j-1)
				s.acquire(1 + k%destLocks)
				for b := 0; b < blocksPerCol; b++ {
					s.read(colBlock(k, b))
					s.busy(12)
					s.write(colBlock(k, b))
				}
				s.release(1 + k%destLocks)
				s.busy(40)
			}
		}
		s.barrier(0)
		streams[p] = s.stream()
	}
	return streams
}
