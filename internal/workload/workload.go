// Package workload provides the five benchmark kernels that drive the
// evaluation. The paper runs MP3D, Water and Cholesky from the SPLASH suite
// plus LU and Ocean; we do not have SPLASH binaries or a SPARC front end, so
// each application is replaced by a deterministic synthetic kernel that
// issues the same kind of shared-memory reference stream — the same sharing
// pattern (migratory, producer-consumer, read-only), synchronization
// structure (locks, barriers, task queues) and locality profile the paper
// attributes to it. The protocol extensions react to exactly these
// properties, so the substitution preserves the evaluation's behavior (see
// DESIGN.md §3).
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"ccsim/internal/memsys"
	"ccsim/internal/proc"
)

// Address-space layout: shared data grows from dataBase; lock variables
// live far above it (one lock variable per memory block, paper §4).
const (
	dataBase memsys.Addr = 0
	lockBase memsys.Addr = 1 << 30
)

// lockAddr returns the address of lock variable i.
func lockAddr(i int) memsys.Addr {
	return lockBase + memsys.Addr(i)*memsys.BlockSize
}

// script builds one processor's operation stream.
type script struct {
	ops []proc.Op
}

func (s *script) statsOn()            { s.ops = append(s.ops, proc.Op{Kind: proc.OpStatsOn}) }
func (s *script) read(a memsys.Addr)  { s.ops = append(s.ops, proc.Op{Kind: proc.OpRead, Addr: a}) }
func (s *script) write(a memsys.Addr) { s.ops = append(s.ops, proc.Op{Kind: proc.OpWrite, Addr: a}) }
func (s *script) busy(c int64)        { s.ops = append(s.ops, proc.Op{Kind: proc.OpBusy, Cycles: c}) }
func (s *script) acquire(l int) {
	s.ops = append(s.ops, proc.Op{Kind: proc.OpAcquire, Addr: lockAddr(l)})
}
func (s *script) release(l int) {
	s.ops = append(s.ops, proc.Op{Kind: proc.OpRelease, Addr: lockAddr(l)})
}
func (s *script) barrier(id int)      { s.ops = append(s.ops, proc.Op{Kind: proc.OpBarrier, Bar: id}) }
func (s *script) stream() proc.Stream { return proc.NewSliceStream(s.ops...) }

// readBlock touches n words of the block at a (spatial locality within a
// block appears as FLC hits after the first touch).
func (s *script) readBlock(a memsys.Addr, words int) {
	for w := 0; w < words; w++ {
		s.read(a + memsys.Addr(4*w))
	}
}

// Generator builds the per-processor streams of one kernel.
type Generator func(procs int, scale float64) []proc.Stream

var registry = map[string]Generator{
	"mp3d":     MP3D,
	"cholesky": Cholesky,
	"water":    Water,
	"lu":       LU,
	"ocean":    Ocean,
}

// Names returns the registered kernel names in the paper's order.
func Names() []string { return []string{"mp3d", "cholesky", "water", "lu", "ocean"} }

// namesSorted returns all registered names alphabetically (for errors).
func namesSorted() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Streams builds the streams for the named kernel. scale multiplies the
// problem size: 1.0 is the default size (seconds of host time per run),
// smaller values shrink it proportionally for tests and quick sweeps.
func Streams(name string, procs int, scale float64) ([]proc.Stream, error) {
	g, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown kernel %q (have %v)", name, namesSorted())
	}
	if procs < 1 {
		return nil, fmt.Errorf("workload: procs = %d", procs)
	}
	if scale <= 0 {
		return nil, fmt.Errorf("workload: scale = %g", scale)
	}
	return g(procs, scale), nil
}

// scaled returns max(lo, round(v*scale)).
func scaled(v int, scale float64, lo int) int {
	n := int(float64(v)*scale + 0.5)
	if n < lo {
		n = lo
	}
	return n
}

// rng returns a deterministic per-processor random source.
func rng(kernel string, p int) *rand.Rand {
	seed := int64(1)
	for _, c := range kernel {
		seed = seed*131 + int64(c)
	}
	return rand.New(rand.NewSource(seed*1000003 + int64(p)*7919))
}
