package workload

import (
	"ccsim/internal/memsys"
	"ccsim/internal/proc"
)

// MP3D reproduces the reference behavior of SPLASH MP3D (rarefied
// hypersonic flow, particle-in-cell): each processor owns a static share of
// particle records and, per time step, moves every particle and scatters an
// unsynchronized read-modify-write into a shared space-cell array. The cell
// updates give MP3D its signature behavior in the paper: migratory sharing
// without locks (the "x := x+1 on shared variables" pattern of §3.2), the
// highest coherence miss rate of the suite, and the highest bandwidth
// demand. Particles move smoothly, so a processor's particles cluster in a
// region of cells with some overlap into neighbors' regions — the overlap
// is what migrates. Particle records are sequential per processor, which
// adaptive prefetching exploits.
//
// Paper input: 10 K particles, 10 steps. Default here: 4 K particles, 1 K
// cells, 5 steps (pattern-preserving; see DESIGN.md §3).
func MP3D(procs int, scale float64) []proc.Stream {
	particles := scaled(4096, scale, procs*8)
	steps := scaled(5, scale, 2)
	if steps > 5 {
		steps = 5
	}
	cells := particles / 4
	// A third of cell accesses land outside the processor's own region,
	// in line with MP3D's cross-cell collision rate.
	const overlapPct = 33

	// Layout (block indices): particle i uses blocks [2i, 2i+1]
	// (position + velocity); the cell array follows.
	cellBase := 2 * particles
	blockAddr := func(idx int) memsys.Addr {
		return dataBase + memsys.Addr(idx)*memsys.BlockSize
	}

	streams := make([]proc.Stream, procs)
	for p := 0; p < procs; p++ {
		r := rng("mp3d", p)
		s := &script{}
		s.statsOn()
		lo, hi := p*particles/procs, (p+1)*particles/procs
		clo, chi := p*cells/procs, (p+1)*cells/procs
		for step := 0; step < steps; step++ {
			for i := lo; i < hi; i++ {
				pos, vel := blockAddr(2*i), blockAddr(2*i+1)
				// Move the particle: read position and velocity, advance,
				// write position back.
				s.readBlock(pos, 3)
				s.readBlock(vel, 3)
				s.busy(12)
				s.write(pos)
				s.write(pos + 4)
				// Collision bookkeeping in the particle's cell: an
				// unsynchronized read-modify-write on a shared block.
				var cell int
				if r.Intn(100) < overlapPct {
					cell = r.Intn(cells)
				} else {
					cell = clo + r.Intn(chi-clo)
				}
				ca := blockAddr(cellBase + cell)
				s.read(ca)
				s.busy(4)
				s.write(ca)
				s.busy(8)
			}
			s.barrier(step)
		}
		streams[p] = s.stream()
	}
	return streams
}
