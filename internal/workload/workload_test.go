package workload

import (
	"testing"

	"ccsim/internal/memsys"
	"ccsim/internal/proc"
)

func drain(t *testing.T, s proc.Stream) []proc.Op {
	t.Helper()
	var ops []proc.Op
	for {
		op, ok := s.Next()
		if !ok {
			return ops
		}
		ops = append(ops, op)
		if len(ops) > 10_000_000 {
			t.Fatal("stream does not terminate")
		}
	}
}

func TestRegistryNames(t *testing.T) {
	for _, n := range Names() {
		if _, err := Streams(n, 4, 0.05); err != nil {
			t.Fatalf("%s: %v", n, err)
		}
	}
	if _, err := Streams("nope", 4, 1); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	if _, err := Streams("lu", 0, 1); err == nil {
		t.Fatal("zero procs accepted")
	}
	if _, err := Streams("lu", 4, 0); err == nil {
		t.Fatal("zero scale accepted")
	}
}

// checkWellFormed verifies the invariants every kernel must satisfy:
// exactly one StatsOn per stream (first op), balanced acquire/release per
// lock, identical barrier sequences across processors, and lock addresses
// disjoint from data addresses.
func checkWellFormed(t *testing.T, name string, streams []proc.Stream) {
	t.Helper()
	var barSeqs [][]int
	for p, s := range streams {
		ops := drain(t, s)
		if len(ops) == 0 || ops[0].Kind != proc.OpStatsOn {
			t.Fatalf("%s proc %d: first op is not StatsOn", name, p)
		}
		held := map[memsys.Addr]bool{}
		var bars []int
		for i, op := range ops {
			switch op.Kind {
			case proc.OpStatsOn:
				if i != 0 {
					t.Fatalf("%s proc %d: StatsOn at op %d", name, p, i)
				}
			case proc.OpAcquire:
				if op.Addr < lockBase {
					t.Fatalf("%s proc %d: acquire of data address %d", name, p, op.Addr)
				}
				if held[op.Addr] {
					t.Fatalf("%s proc %d: recursive acquire", name, p)
				}
				held[op.Addr] = true
			case proc.OpRelease:
				if !held[op.Addr] {
					t.Fatalf("%s proc %d: release of unheld lock", name, p)
				}
				delete(held, op.Addr)
			case proc.OpRead, proc.OpWrite:
				if op.Addr >= lockBase {
					t.Fatalf("%s proc %d: data access to lock region", name, p)
				}
			case proc.OpBarrier:
				bars = append(bars, op.Bar)
			case proc.OpBusy:
				if op.Cycles < 0 {
					t.Fatalf("%s proc %d: negative busy", name, p)
				}
			}
		}
		if len(held) != 0 {
			t.Fatalf("%s proc %d: %d locks still held at end", name, p, len(held))
		}
		barSeqs = append(barSeqs, bars)
	}
	for p := 1; p < len(barSeqs); p++ {
		if len(barSeqs[p]) != len(barSeqs[0]) {
			t.Fatalf("%s: proc %d has %d barriers, proc 0 has %d",
				name, p, len(barSeqs[p]), len(barSeqs[0]))
		}
		for i := range barSeqs[p] {
			if barSeqs[p][i] != barSeqs[0][i] {
				t.Fatalf("%s: barrier sequences diverge at %d", name, i)
			}
		}
	}
}

func TestAllKernelsWellFormed(t *testing.T) {
	for _, name := range Names() {
		for _, procs := range []int{4, 16} {
			streams, err := Streams(name, procs, 0.12)
			if err != nil {
				t.Fatal(err)
			}
			if len(streams) != procs {
				t.Fatalf("%s: %d streams for %d procs", name, len(streams), procs)
			}
			checkWellFormed(t, name, streams)
		}
	}
}

func TestKernelsAreDeterministic(t *testing.T) {
	for _, name := range Names() {
		a, _ := Streams(name, 4, 0.1)
		b, _ := Streams(name, 4, 0.1)
		for p := range a {
			oa, ob := drain(t, a[p]), drain(t, b[p])
			if len(oa) != len(ob) {
				t.Fatalf("%s proc %d: nondeterministic length", name, p)
			}
			for i := range oa {
				if oa[i] != ob[i] {
					t.Fatalf("%s proc %d: op %d differs", name, p, i)
				}
			}
		}
	}
}

func TestScaleShrinksWork(t *testing.T) {
	for _, name := range Names() {
		big, _ := Streams(name, 4, 0.5)
		small, _ := Streams(name, 4, 0.1)
		nb := len(drain(t, big[0]))
		ns := len(drain(t, small[0]))
		if ns >= nb {
			t.Fatalf("%s: scale 0.1 (%d ops) not smaller than 0.5 (%d ops)", name, ns, nb)
		}
	}
}

// Sharing-pattern signatures: each kernel must exhibit the property the
// paper attributes to it, at the reference-stream level.

func TestMP3DHasSharedUnsynchronizedRMW(t *testing.T) {
	streams, _ := Streams("mp3d", 4, 0.1)
	// Count blocks written by more than one processor without locks.
	writers := map[memsys.Block]map[int]bool{}
	for p, s := range streams {
		for _, op := range drain(t, s) {
			if op.Kind == proc.OpWrite {
				b := memsys.BlockOf(op.Addr)
				if writers[b] == nil {
					writers[b] = map[int]bool{}
				}
				writers[b][p] = true
			}
		}
	}
	multi := 0
	for _, w := range writers {
		if len(w) > 1 {
			multi++
		}
	}
	if multi < 16 {
		t.Fatalf("only %d multi-writer blocks; MP3D needs heavy cell sharing", multi)
	}
}

func TestWaterUsesPerMoleculeLocks(t *testing.T) {
	streams, _ := Streams("water", 4, 0.2)
	locks := map[memsys.Addr]bool{}
	for _, s := range streams {
		for _, op := range drain(t, s) {
			if op.Kind == proc.OpAcquire {
				locks[op.Addr] = true
			}
		}
	}
	if len(locks) < 8 {
		t.Fatalf("only %d distinct locks; Water needs per-molecule locks", len(locks))
	}
}

func TestLUReadsEachPivotColumnOnceEverywhere(t *testing.T) {
	const procs = 4
	streams, _ := Streams("lu", procs, 0.2)
	// Every processor must read every column's blocks (the pivot
	// broadcast); reads of a block by a non-owner happen a bounded number
	// of times.
	for p, s := range streams {
		reads := map[memsys.Block]int{}
		for _, op := range drain(t, s) {
			if op.Kind == proc.OpRead {
				reads[memsys.BlockOf(op.Addr)]++
			}
		}
		if len(reads) == 0 {
			t.Fatalf("proc %d reads nothing", p)
		}
	}
}

func TestOceanBoundaryRowsShared(t *testing.T) {
	const procs = 4
	streams, _ := Streams("ocean", procs, 0.25)
	readersOf := map[memsys.Block]map[int]bool{}
	writersOf := map[memsys.Block]map[int]bool{}
	for p, s := range streams {
		for _, op := range drain(t, s) {
			b := memsys.BlockOf(op.Addr)
			switch op.Kind {
			case proc.OpRead:
				if readersOf[b] == nil {
					readersOf[b] = map[int]bool{}
				}
				readersOf[b][p] = true
			case proc.OpWrite:
				if writersOf[b] == nil {
					writersOf[b] = map[int]bool{}
				}
				writersOf[b][p] = true
			}
		}
	}
	// Every written block has exactly one writer (row ownership)...
	producerConsumer := 0
	for b, w := range writersOf {
		if len(w) != 1 {
			t.Fatalf("block %d written by %d processors", b, len(w))
		}
		if len(readersOf[b]) > 1 {
			producerConsumer++
		}
	}
	// ...and boundary rows are read by a neighbor too.
	if producerConsumer == 0 {
		t.Fatal("no producer-consumer blocks; Ocean needs shared boundary rows")
	}
}

func TestCholeskyStreamsColumnsOnce(t *testing.T) {
	streams, _ := Streams("cholesky", 4, 0.1)
	// The factor-read of a column (outside locks) must happen on exactly
	// one processor: columns are dealt, not shared, so their misses are
	// cold.
	inLock := map[int]bool{}
	factorReaders := map[memsys.Block]map[int]bool{}
	for p, s := range streams {
		for _, op := range drain(t, s) {
			switch op.Kind {
			case proc.OpAcquire:
				inLock[p] = true
			case proc.OpRelease:
				inLock[p] = false
			case proc.OpRead:
				if !inLock[p] {
					b := memsys.BlockOf(op.Addr)
					if factorReaders[b] == nil {
						factorReaders[b] = map[int]bool{}
					}
					factorReaders[b][p] = true
				}
			}
		}
	}
	multi := 0
	for _, rd := range factorReaders {
		if len(rd) > 1 {
			multi++
		}
	}
	if multi > len(factorReaders)/4 {
		t.Fatalf("%d of %d factor-read blocks read by several procs", multi, len(factorReaders))
	}
}
