package workload

import (
	"ccsim/internal/memsys"
	"ccsim/internal/proc"
)

// LU reproduces the reference behavior of the dense LU kernel (200x200 in
// the paper): columns are dealt round-robin to processors; at elimination
// step k the owner factorizes column k, everyone then reads the pivot
// column (a one-shot producer-consumer broadcast — every one of those reads
// is a cold miss, which is why LU's cold rate stays high all run) and
// updates its own columns to the right (which stay dirty in their owner's
// cache, so almost no coherence misses arise — paper Table 2 gives LU a
// 0.019 % coherence component). The pivot column's consecutive blocks are
// what adaptive prefetching exploits (cold rate 1.40 % -> 0.22 % in the
// paper). Default here: a 192x192-word matrix.
func LU(procs int, scale float64) []proc.Stream {
	n := scaled(192, scale, 16)
	blocksPerCol := (n + memsys.WordsPerBlock - 1) / memsys.WordsPerBlock

	colBlock := func(j, b int) memsys.Addr {
		return dataBase + memsys.Addr(j*blocksPerCol+b)*memsys.BlockSize
	}

	streams := make([]proc.Stream, procs)
	for p := 0; p < procs; p++ {
		s := &script{}
		s.statsOn()
		for k := 0; k < n; k++ {
			if k%procs == p {
				// Factorize the pivot column.
				for b := 0; b < blocksPerCol; b++ {
					s.read(colBlock(k, b))
					s.busy(40)
					s.write(colBlock(k, b))
				}
			}
			s.barrier(2 * k)
			// Read the pivot column and update owned columns right of k.
			for b := 0; b < blocksPerCol; b++ {
				s.read(colBlock(k, b))
				s.busy(20)
			}
			for j := k + 1; j < n; j++ {
				if j%procs != p {
					continue
				}
				for b := 0; b < blocksPerCol; b++ {
					s.read(colBlock(j, b))
					s.busy(40)
					s.write(colBlock(j, b))
				}
			}
			s.barrier(2*k + 1)
		}
		streams[p] = s.stream()
	}
	return streams
}
