package workload

import (
	"ccsim/internal/memsys"
	"ccsim/internal/proc"
)

// Ocean reproduces the reference behavior of the Ocean grid solver (128x128
// grid in the paper): the grid is partitioned by rows; each iteration every
// processor sweeps its rows with a five-point nearest-neighbor stencil and
// a barrier closes the iteration. Interior rows stay dirty in their owner's
// cache; the two boundary rows of every partition are read by the adjacent
// processor each iteration and rewritten by the owner — the steady
// producer-consumer coherence misses that the competitive-update mechanism
// removes (paper Table 2: Ocean coherence 1.12 % -> 0.15 % under CW).
// Rows are block-aligned and sequential, so prefetching feeds on the sweep.
// Default here: a 128x128-word grid over 10 iterations.
func Ocean(procs int, scale float64) []proc.Stream {
	g := scaled(128, scale, procs*2)
	iters := scaled(10, scale, 3)
	if iters > 10 {
		iters = 10
	}
	blocksPerRow := (g + memsys.WordsPerBlock - 1) / memsys.WordsPerBlock

	rowBlock := func(r, b int) memsys.Addr {
		return dataBase + memsys.Addr(r*blocksPerRow+b)*memsys.BlockSize
	}

	streams := make([]proc.Stream, procs)
	for p := 0; p < procs; p++ {
		s := &script{}
		s.statsOn()
		lo, hi := p*g/procs, (p+1)*g/procs
		for it := 0; it < iters; it++ {
			for r := lo; r < hi; r++ {
				for b := 0; b < blocksPerRow; b++ {
					if r > 0 {
						s.read(rowBlock(r-1, b))
					}
					s.read(rowBlock(r, b))
					if r < g-1 {
						s.read(rowBlock(r+1, b))
					}
					s.busy(14)
					s.write(rowBlock(r, b))
				}
			}
			s.barrier(it)
		}
		streams[p] = s.stream()
	}
	return streams
}
