package proc

// SliceStream replays a fixed slice of operations; handy for tests and
// hand-built scenarios.
type SliceStream struct {
	ops []Op
	i   int
}

// NewSliceStream returns a stream over ops.
func NewSliceStream(ops ...Op) *SliceStream { return &SliceStream{ops: ops} }

// Next implements Stream.
func (s *SliceStream) Next() (Op, bool) {
	if s.i >= len(s.ops) {
		return Op{}, false
	}
	op := s.ops[s.i]
	s.i++
	return op, true
}

// FuncStream adapts a generator function to a Stream.
type FuncStream func() (Op, bool)

// Next implements Stream.
func (f FuncStream) Next() (Op, bool) { return f() }
