// Package proc models the paper's processors: standard, off-the-shelf,
// single-context processors with blocking loads (paper §2). A processor
// executes an operation stream produced by a workload generator and
// accumulates the execution-time decomposition the paper reports: busy time
// and read / write / acquire / release stall times.
package proc

import (
	"ccsim/internal/memsys"
	"ccsim/internal/sim"
	"ccsim/internal/stats"
	"ccsim/internal/telemetry"
)

// OpKind enumerates workload operations.
type OpKind int

const (
	// OpBusy models local computation and private references (simulated as
	// FLC hits, per the paper's methodology) for Cycles pclocks.
	OpBusy OpKind = iota
	// OpRead is a shared-data load from Addr; the processor blocks until
	// the data reaches the FLC.
	OpRead
	// OpWrite is a shared-data store to Addr. Under RC it only blocks on a
	// full write buffer; under SC it blocks until globally performed.
	OpWrite
	// OpAcquire acquires the queue-based lock whose variable lives at Addr.
	OpAcquire
	// OpRelease releases that lock.
	OpRelease
	// OpBarrier joins the machine-wide barrier identified by Bar.
	OpBarrier
	// OpStatsOn marks the start of the measured parallel section. Every
	// workload must emit it exactly once per processor.
	OpStatsOn
)

// Op is one workload operation.
type Op struct {
	Kind   OpKind
	Addr   memsys.Addr
	Cycles int64 // for OpBusy
	Bar    int   // for OpBarrier
}

// Stream produces a processor's operations one at a time; the generator's
// state advances only when the simulated processor completes the previous
// operation, exactly like the program-driven simulation the paper uses.
type Stream interface {
	Next() (Op, bool)
}

// Memory is the node's memory system as the processor sees it (implemented
// by core.CacheCtl). Callbacks are always invoked asynchronously, on a
// later event.
type Memory interface {
	// Read returns true on an FLC hit; otherwise unblock runs when the
	// block reaches the FLC.
	Read(a memsys.Addr, unblock func()) bool
	// Write returns true if the FLWB accepted the write now; otherwise
	// accepted runs when a slot frees. performed (nil allowed) runs when
	// the write is globally performed.
	Write(a memsys.Addr, accepted, performed func()) bool
	Acquire(a memsys.Addr, unblock func())
	// Release returns true if the processor may continue immediately (RC);
	// under SC it returns false and unblock runs at the acknowledgment.
	Release(a memsys.Addr, unblock func()) bool
	Barrier(id int, unblock func())
}

// Processor drives one operation stream against one memory system.
type Processor struct {
	ID int

	eng    *sim.Engine
	mem    Memory
	stream Stream
	sc     bool

	flcAccess sim.Time
	flcFill   sim.Time

	// Stats is the time decomposition; counters accumulate only while
	// statsOn (the measured parallel section).
	Stats   stats.Proc
	statsOn bool

	// StatsOnHook is called when the stream emits OpStatsOn (used by the
	// machine to start the measured region globally).
	StatsOnHook func()

	// Tele, when non-nil, receives the processor's stall intervals (nil is
	// a no-op sink).
	Tele *telemetry.Collector

	// stepFn is the step method value, bound once at construction: every
	// operation schedules it, and rebinding per call would allocate a
	// closure per simulated instruction.
	stepFn func()

	done     bool
	doneTime sim.Time
	// DoneHook is called when the stream is exhausted.
	DoneHook func()
}

// Config bundles processor construction parameters.
type Config struct {
	ID        int
	SC        bool
	FLCAccess sim.Time
	FLCFill   sim.Time
}

// New returns a processor ready to Start.
func New(eng *sim.Engine, mem Memory, stream Stream, cfg Config) *Processor {
	p := &Processor{
		ID:        cfg.ID,
		eng:       eng,
		mem:       mem,
		stream:    stream,
		sc:        cfg.SC,
		flcAccess: cfg.FLCAccess,
		flcFill:   cfg.FLCFill,
	}
	p.stepFn = p.step
	return p
}

// Start schedules the processor's first operation at the current time.
func (p *Processor) Start() { p.eng.After(0, p.stepFn) }

// Done reports whether the stream is exhausted.
func (p *Processor) Done() bool { return p.done }

// DoneTime returns when the processor finished (valid once Done).
func (p *Processor) DoneTime() sim.Time { return p.doneTime }

// SetStatsEnabled switches stall/busy accounting on or off.
func (p *Processor) SetStatsEnabled(on bool) { p.statsOn = on }

func (p *Processor) busy(t sim.Time) {
	if p.statsOn {
		p.Stats.Busy += int64(t)
	}
}

// stall records the blocked interval [from, now] on the timeline.
func (p *Processor) stall(kind string, from sim.Time) {
	if p.statsOn && p.Tele != nil {
		p.Tele.StallInterval(p.ID, kind, int64(from), int64(p.eng.Now()))
	}
}

func (p *Processor) step() {
	// Reaching step means the previous operation retired — the forward
	// progress the watchdog's livelock detector watches for.
	p.eng.Progress()
	op, ok := p.stream.Next()
	if !ok {
		p.done = true
		p.doneTime = p.eng.Now()
		if p.DoneHook != nil {
			p.DoneHook()
		}
		return
	}
	switch op.Kind {
	case OpBusy:
		p.busy(sim.Time(op.Cycles))
		p.eng.After(sim.Time(op.Cycles), p.stepFn)

	case OpRead:
		if p.statsOn {
			p.Stats.Reads++
		}
		start := p.eng.Now()
		hit := p.mem.Read(op.Addr, func() {
			// Data reached the FLC; the fill completes before the load
			// retires. Everything beyond the 1-pclock access is read stall.
			elapsed := p.eng.Now() - start + p.flcFill
			p.busy(p.flcAccess)
			if p.statsOn {
				p.Stats.ReadStall += int64(elapsed - p.flcAccess)
			}
			p.stall("read", start)
			p.eng.After(p.flcFill, p.stepFn)
		})
		if hit {
			p.busy(p.flcAccess)
			p.eng.After(p.flcAccess, p.stepFn)
		}

	case OpWrite:
		if p.statsOn {
			p.Stats.Writes++
		}
		start := p.eng.Now()
		if p.sc {
			// Sequential consistency: stall until globally performed.
			p.mem.Write(op.Addr, nil, func() {
				elapsed := p.eng.Now() - start
				p.busy(p.flcAccess)
				if p.statsOn {
					p.Stats.WriteStall += int64(elapsed)
				}
				p.stall("write", start)
				p.eng.After(p.flcAccess, p.stepFn)
			})
			return
		}
		accepted := p.mem.Write(op.Addr, func() {
			// Buffered at last; the wait was write stall.
			if p.statsOn {
				p.Stats.WriteStall += int64(p.eng.Now() - start)
			}
			p.stall("write", start)
			p.busy(p.flcAccess)
			p.eng.After(p.flcAccess, p.stepFn)
		}, nil)
		if accepted {
			p.busy(p.flcAccess)
			p.eng.After(p.flcAccess, p.stepFn)
		}

	case OpAcquire:
		if p.statsOn {
			p.Stats.Acquires++
		}
		start := p.eng.Now()
		p.mem.Acquire(op.Addr, func() {
			if p.statsOn {
				p.Stats.AcquireStall += int64(p.eng.Now() - start)
			}
			p.stall("acquire", start)
			p.eng.After(0, p.stepFn)
		})

	case OpRelease:
		if p.statsOn {
			p.Stats.Releases++
		}
		start := p.eng.Now()
		proceed := p.mem.Release(op.Addr, func() {
			if p.statsOn {
				p.Stats.ReleaseStall += int64(p.eng.Now() - start)
			}
			p.stall("release", start)
			p.eng.After(0, p.stepFn)
		})
		if proceed {
			p.busy(p.flcAccess)
			p.eng.After(p.flcAccess, p.stepFn)
		}

	case OpBarrier:
		if p.statsOn {
			p.Stats.Barriers++
		}
		start := p.eng.Now()
		p.mem.Barrier(op.Bar, func() {
			if p.statsOn {
				p.Stats.BarrierStall += int64(p.eng.Now() - start)
			}
			p.stall("barrier", start)
			p.eng.After(0, p.stepFn)
		})

	case OpStatsOn:
		if p.StatsOnHook != nil {
			p.StatsOnHook()
		}
		p.eng.After(0, p.stepFn)
	}
}
