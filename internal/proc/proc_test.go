package proc

import (
	"testing"

	"ccsim/internal/memsys"
	"ccsim/internal/sim"
)

// fakeMem is a scriptable Memory for processor-level tests.
type fakeMem struct {
	eng *sim.Engine

	readHit   bool
	readDelay sim.Time

	writeAccept bool
	writeDelay  sim.Time // to accepted (RC) or performed (SC)

	acqDelay sim.Time
	relDelay sim.Time
	relNow   bool
	barDelay sim.Time
}

func (f *fakeMem) Read(a memsys.Addr, unblock func()) bool {
	if f.readHit {
		return true
	}
	f.eng.After(f.readDelay, unblock)
	return false
}

func (f *fakeMem) Write(a memsys.Addr, accepted, performed func()) bool {
	if performed != nil {
		f.eng.After(f.writeDelay, performed)
	}
	if f.writeAccept {
		return true
	}
	if accepted != nil {
		f.eng.After(f.writeDelay, accepted)
	}
	return false
}

func (f *fakeMem) Acquire(a memsys.Addr, unblock func()) { f.eng.After(f.acqDelay, unblock) }

func (f *fakeMem) Release(a memsys.Addr, unblock func()) bool {
	if f.relNow {
		return true
	}
	f.eng.After(f.relDelay, unblock)
	return false
}

func (f *fakeMem) Barrier(id int, unblock func()) { f.eng.After(f.barDelay, unblock) }

func runProc(t *testing.T, sc bool, mem *fakeMem, ops ...Op) *Processor {
	t.Helper()
	eng := mem.eng
	p := New(eng, mem, NewSliceStream(ops...), Config{SC: sc, FLCAccess: 1, FLCFill: 3})
	p.SetStatsEnabled(true)
	p.Start()
	eng.Run()
	if !p.Done() {
		t.Fatal("processor did not finish")
	}
	return p
}

func TestBusyAccumulates(t *testing.T) {
	mem := &fakeMem{eng: sim.NewEngine()}
	p := runProc(t, false, mem, Op{Kind: OpBusy, Cycles: 100}, Op{Kind: OpBusy, Cycles: 23})
	if p.Stats.Busy != 123 {
		t.Fatalf("Busy = %d, want 123", p.Stats.Busy)
	}
	if p.DoneTime() != 123 {
		t.Fatalf("DoneTime = %d", p.DoneTime())
	}
}

func TestReadHitCostsOneCycle(t *testing.T) {
	mem := &fakeMem{eng: sim.NewEngine(), readHit: true}
	p := runProc(t, false, mem, Op{Kind: OpRead})
	if p.Stats.Busy != 1 || p.Stats.ReadStall != 0 {
		t.Fatalf("busy=%d readStall=%d", p.Stats.Busy, p.Stats.ReadStall)
	}
	if p.Stats.Reads != 1 {
		t.Fatalf("Reads = %d", p.Stats.Reads)
	}
}

func TestReadMissStall(t *testing.T) {
	mem := &fakeMem{eng: sim.NewEngine(), readDelay: 30}
	p := runProc(t, false, mem, Op{Kind: OpRead})
	// Elapsed 30 + 3 FLC fill; 1 cycle is busy, the rest is read stall.
	if p.Stats.ReadStall != 32 {
		t.Fatalf("ReadStall = %d, want 32", p.Stats.ReadStall)
	}
	if p.Stats.Busy != 1 {
		t.Fatalf("Busy = %d, want 1", p.Stats.Busy)
	}
	if p.DoneTime() != 33 {
		t.Fatalf("DoneTime = %d, want 33 (30 miss + 3 fill)", p.DoneTime())
	}
}

func TestWriteRCBuffered(t *testing.T) {
	mem := &fakeMem{eng: sim.NewEngine(), writeAccept: true}
	p := runProc(t, false, mem, Op{Kind: OpWrite})
	if p.Stats.WriteStall != 0 || p.Stats.Busy != 1 {
		t.Fatalf("busy=%d writeStall=%d", p.Stats.Busy, p.Stats.WriteStall)
	}
}

func TestWriteRCBufferFullStalls(t *testing.T) {
	mem := &fakeMem{eng: sim.NewEngine(), writeAccept: false, writeDelay: 25}
	p := runProc(t, false, mem, Op{Kind: OpWrite})
	if p.Stats.WriteStall != 25 {
		t.Fatalf("WriteStall = %d, want 25", p.Stats.WriteStall)
	}
}

func TestWriteSCStallsUntilPerformed(t *testing.T) {
	mem := &fakeMem{eng: sim.NewEngine(), writeDelay: 200}
	p := runProc(t, true, mem, Op{Kind: OpWrite})
	if p.Stats.WriteStall != 200 {
		t.Fatalf("WriteStall = %d, want 200", p.Stats.WriteStall)
	}
}

func TestAcquireStall(t *testing.T) {
	mem := &fakeMem{eng: sim.NewEngine(), acqDelay: 120}
	p := runProc(t, false, mem, Op{Kind: OpAcquire})
	if p.Stats.AcquireStall != 120 || p.Stats.Acquires != 1 {
		t.Fatalf("AcquireStall = %d Acquires = %d", p.Stats.AcquireStall, p.Stats.Acquires)
	}
}

func TestReleaseRCIsFree(t *testing.T) {
	mem := &fakeMem{eng: sim.NewEngine(), relNow: true}
	p := runProc(t, false, mem, Op{Kind: OpRelease})
	if p.Stats.ReleaseStall != 0 {
		t.Fatalf("ReleaseStall = %d, want 0 under RC", p.Stats.ReleaseStall)
	}
}

func TestReleaseSCStalls(t *testing.T) {
	mem := &fakeMem{eng: sim.NewEngine(), relDelay: 77}
	p := runProc(t, true, mem, Op{Kind: OpRelease})
	if p.Stats.ReleaseStall != 77 {
		t.Fatalf("ReleaseStall = %d, want 77", p.Stats.ReleaseStall)
	}
}

func TestBarrierWaitCountsAsBarrierStall(t *testing.T) {
	mem := &fakeMem{eng: sim.NewEngine(), barDelay: 500}
	p := runProc(t, false, mem, Op{Kind: OpBarrier, Bar: 1})
	if p.Stats.BarrierStall != 500 || p.Stats.Barriers != 1 {
		t.Fatalf("BarrierStall = %d Barriers = %d", p.Stats.BarrierStall, p.Stats.Barriers)
	}
}

func TestStatsGating(t *testing.T) {
	mem := &fakeMem{eng: sim.NewEngine(), readHit: true}
	eng := mem.eng
	hooked := false
	p := New(eng, mem, NewSliceStream(
		Op{Kind: OpBusy, Cycles: 50}, // before StatsOn: not counted
		Op{Kind: OpStatsOn},
		Op{Kind: OpBusy, Cycles: 7},
	), Config{FLCAccess: 1, FLCFill: 3})
	p.StatsOnHook = func() {
		hooked = true
		p.SetStatsEnabled(true)
	}
	p.Start()
	eng.Run()
	if !hooked {
		t.Fatal("StatsOnHook not called")
	}
	if p.Stats.Busy != 7 {
		t.Fatalf("Busy = %d, want 7 (pre-StatsOn work excluded)", p.Stats.Busy)
	}
}

func TestSliceStream(t *testing.T) {
	s := NewSliceStream(Op{Kind: OpBusy, Cycles: 1}, Op{Kind: OpRead})
	op, ok := s.Next()
	if !ok || op.Kind != OpBusy {
		t.Fatal("first op wrong")
	}
	op, ok = s.Next()
	if !ok || op.Kind != OpRead {
		t.Fatal("second op wrong")
	}
	if _, ok := s.Next(); ok {
		t.Fatal("stream did not end")
	}
}

func TestFuncStream(t *testing.T) {
	n := 0
	s := FuncStream(func() (Op, bool) {
		if n >= 2 {
			return Op{}, false
		}
		n++
		return Op{Kind: OpBusy, Cycles: int64(n)}, true
	})
	total := int64(0)
	for {
		op, ok := s.Next()
		if !ok {
			break
		}
		total += op.Cycles
	}
	if total != 3 {
		t.Fatalf("total = %d", total)
	}
}
