package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartNoop(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	stop() // must be safe with both profiles disabled
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to flush.
	n := 0
	for i := 0; i < 1<<20; i++ {
		n += i
	}
	_ = n
	stop()
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
		if err := ValidateProfile(p); err != nil {
			t.Errorf("round-trip produced an unparseable profile: %v", err)
		}
	}
}

// TestValidateProfileRejects checks the validator fails on missing and
// non-gzip files rather than rubber-stamping anything on disk.
func TestValidateProfileRejects(t *testing.T) {
	dir := t.TempDir()
	if err := ValidateProfile(filepath.Join(dir, "absent")); err == nil {
		t.Error("missing file validated")
	}
	plain := filepath.Join(dir, "plain")
	if err := os.WriteFile(plain, []byte("not a profile"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ValidateProfile(plain); err == nil {
		t.Error("non-gzip file validated")
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "x"), ""); err == nil {
		t.Fatal("expected error for uncreatable profile path")
	}
}
