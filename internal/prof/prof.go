// Package prof wires the standard runtime/pprof profilers to the CLI
// -cpuprofile/-memprofile flags shared by cmd/ccsim and cmd/experiments.
package prof

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (no-op when empty) and returns a
// stop function that ends the CPU profile and writes a heap profile to
// memPath (no-op when empty). Callers must run stop on every exit path —
// typically via defer from a run function that returns an exit code rather
// than calling os.Exit directly.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			runtime.GC() // publish up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
	}, nil
}

// ValidateProfile checks that path holds a well-formed runtime/pprof
// profile: a non-empty gzip stream (the pprof wire format) that
// decompresses to a non-empty protobuf payload. It is the round-trip
// check both CLIs' -cpuprofile/-memprofile tests share.
func ValidateProfile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return fmt.Errorf("%s is not a gzip stream (pprof wire format): %w", path, err)
	}
	defer zr.Close()
	n, err := io.Copy(io.Discard, zr)
	if err != nil {
		return fmt.Errorf("%s decompression failed: %w", path, err)
	}
	if n == 0 {
		return fmt.Errorf("%s decompressed to an empty profile", path)
	}
	return nil
}
