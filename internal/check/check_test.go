package check

import (
	"strings"
	"testing"

	"ccsim/internal/fault"
	"ccsim/internal/memsys"
)

// mustFault runs fn expecting it to panic with a *fault.SimFault and
// returns the fault.
func mustFault(t *testing.T, fn func()) *fault.SimFault {
	t.Helper()
	var got *fault.SimFault
	func() {
		defer func() {
			v := recover()
			if v == nil {
				t.Fatalf("expected an invariant fault, got none")
			}
			f, ok := v.(*fault.SimFault)
			if !ok {
				t.Fatalf("panic value %T, want *fault.SimFault", v)
			}
			got = f
		}()
		fn()
	}()
	if got.Kind != fault.KindInvariant {
		t.Fatalf("fault kind %q, want %q", got.Kind, fault.KindInvariant)
	}
	if !got.HasBlock {
		t.Fatalf("invariant fault without a block")
	}
	return got
}

func TestCleanTransitionsPass(t *testing.T) {
	o := New()
	o.Reset(4)
	b := memsys.Block(0)
	// Read share: home adds the sharer, the reply installs a shared copy.
	o.OnDirState(0, b, false, -1, 1<<2, "read-share")
	o.OnLine(2, b, false, "install")
	// Ownership: the sharer upgrades; home registers the grant first.
	o.OnDirState(0, b, true, 2, 1<<2, "grant")
	o.OnLine(2, b, true, "own-upgrade")
	// Writeback: the owner drops its copy, then home goes clean and empty.
	o.OnLineDrop(2, b, "replace")
	o.OnDirState(0, b, false, -1, 0, "writeback")
	if o.Checks() == 0 {
		t.Fatalf("no checks counted")
	}
}

func TestSWMRViolation(t *testing.T) {
	o := New()
	o.Reset(4)
	b := memsys.Block(0)
	o.OnDirState(0, b, true, 1, 1<<1, "grant")
	o.OnLine(1, b, true, "install")
	f := mustFault(t, func() {
		// A second dirty copy without the first dropping is a SWMR break
		// even though the directory was (bogusly) retargeted.
		o.OnLine(3, b, true, "install")
	})
	if !strings.Contains(f.Message, "SWMR") && !strings.Contains(f.Message, "directory") {
		t.Fatalf("unexpected message: %s", f.Message)
	}
}

func TestDirtyNeedsModifiedOwner(t *testing.T) {
	o := New()
	o.Reset(2)
	b := memsys.Block(0)
	o.OnDirState(0, b, false, -1, 1, "read-share")
	f := mustFault(t, func() { o.OnLine(0, b, true, "bogus-upgrade") })
	if !strings.Contains(f.Message, "CLEAN") {
		t.Fatalf("unexpected message: %s", f.Message)
	}
}

func TestPresenceSupersetViolation(t *testing.T) {
	o := New()
	o.Reset(4)
	b := memsys.Block(0)
	o.OnDirState(0, b, false, -1, 1<<3, "read-share")
	o.OnLine(3, b, false, "install")
	// Home drops node 3's bit while it still holds the copy.
	f := mustFault(t, func() { o.OnDirState(0, b, false, -1, 0, "bogus-clear") })
	if !strings.Contains(f.Message, "presence") {
		t.Fatalf("unexpected message: %s", f.Message)
	}
}

func TestInstallOutsidePresence(t *testing.T) {
	o := New()
	o.Reset(4)
	b := memsys.Block(0)
	o.OnDirState(0, b, false, -1, 1<<1, "read-share")
	// The reply installs at node 2 but only node 1's bit is set — the
	// skip-sharer mutation's signature.
	f := mustFault(t, func() { o.OnLine(2, b, false, "install") })
	if !strings.Contains(f.Message, "presence") {
		t.Fatalf("unexpected message: %s", f.Message)
	}
}

func TestModifiedGrantWithStrayCopy(t *testing.T) {
	o := New()
	o.Reset(4)
	b := memsys.Block(0)
	o.OnDirState(0, b, false, -1, (1<<1)|(1<<2), "read-share")
	o.OnLine(1, b, false, "install")
	o.OnLine(2, b, false, "install")
	// Granting exclusivity to 1 while 2 never acknowledged an invalidation.
	f := mustFault(t, func() { o.OnDirState(0, b, true, 1, 1<<1, "grant") })
	if !strings.Contains(f.Message, "still holds") {
		t.Fatalf("unexpected message: %s", f.Message)
	}
}

func TestWrongHome(t *testing.T) {
	o := New()
	o.Reset(2)
	// Block 128 lives on page 1, homed at node 1 of 2.
	f := mustFault(t, func() { o.OnDirState(0, memsys.Block(128), false, -1, 0, "read-share") })
	if !strings.Contains(f.Message, "home") {
		t.Fatalf("unexpected message: %s", f.Message)
	}
}

func TestWriteCacheMaskConsistency(t *testing.T) {
	o := New()
	o.Reset(1)
	b := memsys.Block(0)
	o.OnWCWrite(0, b, 2, memsys.WordMask(0).Set(2))
	o.OnWCWrite(0, b, 5, memsys.WordMask(0).Set(2).Set(5))
	f := mustFault(t, func() {
		// The real mask lost word 2.
		o.OnWCWrite(0, b, 6, memsys.WordMask(0).Set(5).Set(6))
	})
	if !strings.Contains(f.Message, "mask") {
		t.Fatalf("unexpected message: %s", f.Message)
	}
	o.Reset(1)
	o.OnWCWrite(0, b, 1, memsys.WordMask(0).Set(1))
	f = mustFault(t, func() { o.OnWCFlush(0, b, memsys.WordMask(0).Set(1).Set(3), "evict") })
	if !strings.Contains(f.Message, "mask") {
		t.Fatalf("unexpected message: %s", f.Message)
	}
	o.Reset(1)
	f = mustFault(t, func() { o.OnWCFlush(0, b, memsys.WordMask(0).Set(1), "evict") })
	if !strings.Contains(f.Message, "never saw") {
		t.Fatalf("unexpected message: %s", f.Message)
	}
}

func TestSerializationOrder(t *testing.T) {
	o := New()
	o.Reset(1)
	b := memsys.Block(0)
	o.OnWrite(0, b, 0, 1)
	o.OnWrite(0, b, 0, 2)
	f := mustFault(t, func() { o.OnWrite(0, b, 0, 4) })
	if !strings.Contains(f.Message, "serialized") {
		t.Fatalf("unexpected message: %s", f.Message)
	}
}

func TestReadBeyondHighWater(t *testing.T) {
	o := New()
	o.Reset(1)
	b := memsys.Block(0)
	o.OnWrite(0, b, 3, 1)
	o.OnRead(0, b, 3, 1) // fine
	o.OnRead(0, b, 3, 0) // stale but not the oracle's concern (per-reader monotonicity is core's)
	f := mustFault(t, func() { o.OnRead(0, b, 3, 2) })
	if !strings.Contains(f.Message, "high-water") {
		t.Fatalf("unexpected message: %s", f.Message)
	}
}

func TestDispatchContextAttribution(t *testing.T) {
	o := New()
	o.Reset(2)
	b := memsys.Block(0)
	o.OnDirState(0, b, false, -1, 1<<1, "read-share")
	o.OnDispatch("ReadReply", b, 0, false)
	f := mustFault(t, func() { o.OnLine(0, b, false, "install") })
	if f.MsgKind != "ReadReply" {
		t.Fatalf("MsgKind %q, want ReadReply", f.MsgKind)
	}
	if f.Component != "cache 0" {
		t.Fatalf("Component %q, want cache 0", f.Component)
	}
	if f.Block != 0 {
		t.Fatalf("Block %d, want 0", f.Block)
	}
}

func TestObservationLog(t *testing.T) {
	o := New()
	o.LogObs = true
	o.Reset(2)
	b := memsys.Block(0)
	o.OnWrite(0, b, 0, 1)
	o.OnRead(1, b, 0, 1)
	o.OnRead(1, b, 0, 1)
	if got := len(o.Observations(1)); got != 2 {
		t.Fatalf("node 1 observations = %d, want 2", got)
	}
	if o.Observations(1)[0].Write || !o.Observations(0)[0].Write {
		t.Fatalf("observation write flags wrong")
	}
	o.Reset(2)
	if len(o.Observations(1)) != 0 {
		t.Fatalf("Reset kept observations")
	}
}
