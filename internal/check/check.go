// Package check implements the live coherence checker: a transition-time
// oracle that mirrors the protocol's architectural state in shadow
// structures and asserts the coherence invariants at every SLC and home
// (directory) state transition, instead of once at end-of-run quiescence.
//
// The oracle maintains, per memory block:
//
//   - a directory shadow (MODIFIED/CLEAN, owner, presence vector), updated
//     from a hook after every directory mutation;
//   - a cache shadow (which nodes hold a copy, and whether it is dirty),
//     updated at every SLC install, upgrade, downgrade and invalidation;
//   - a write-cache shadow (the per-word dirty mask each node's write
//     cache should carry), updated at every combining write and flush;
//   - a sequential value oracle (the high-water version of every word),
//     advanced at each write's global serialization point.
//
// At each hook it asserts the invariants that hold at *every instant* of
// this protocol, not just at quiescence: at most one dirty copy per block
// (SWMR); a dirty copy only at the registered owner of a MODIFIED entry;
// the presence vector a superset of the actual holders; in MODIFIED state
// the presence vector a subset of {owner}; write-cache masks agreeing with
// the shadow; versions serializing without gaps; and no read observing a
// version above the serialization high-water mark.
//
// A violation panics with a structured *fault.SimFault (KindInvariant)
// naming the protocol message being handled, the block and the transition
// — ccsim.Run recovers it into the ordinary fault path, so the dump
// carries the machine snapshot and the flight-recorder tail for the exact
// event where coherence first broke.
//
// The package is a leaf over fault and memsys so internal/core can hook it
// without cycles. A disabled checker is a nil pointer in core.System; every
// hook site is guarded by one nil check, the same zero-cost-off pattern as
// the tracer and the flight recorder.
package check

import (
	"fmt"

	"ccsim/internal/fault"
	"ccsim/internal/memsys"
)

// Obs is one data observation: a processor reading or serializing a word
// version. The litmus harness reconstructs consistency outcomes from these.
type Obs struct {
	Node  int
	Block memsys.Block
	Word  int
	Ver   int64
	Write bool // true: a write serialized; false: a processor read
}

// dirShadow mirrors one block's directory entry as last reported by its
// home.
type dirShadow struct {
	known    bool
	modified bool
	owner    int
	presence uint64
}

// Oracle is the live checker's shadow state for one run. Attach one oracle
// to one run only: Reset rebinds it, but a run mutates it freely from the
// simulation goroutine.
type Oracle struct {
	nodes int
	dir   map[memsys.Block]dirShadow
	// lines[n][b] is true when node n's shadow copy of b is dirty.
	lines []map[memsys.Block]bool
	wc    []map[memsys.Block]memsys.WordMask
	hwm   map[memsys.Block]*memsys.BlockData

	// Dispatch context: the protocol message whose handling triggered the
	// current hooks; a violation is attributed to it.
	ctxValid  bool
	ctxMsg    string
	ctxBlock  memsys.Block
	ctxDst    int
	ctxToHome bool

	checks uint64

	// LogObs, when set before the run, records every read observation and
	// write serialization in per-node program order for the litmus
	// harness's outcome predicates.
	LogObs bool
	obs    [][]Obs
}

// New returns an idle oracle; the machine calls Reset when the run is
// assembled.
func New() *Oracle { return &Oracle{} }

// Reset binds the oracle to a fresh run over the given node count,
// discarding all shadow state.
func (o *Oracle) Reset(nodes int) {
	o.nodes = nodes
	o.dir = make(map[memsys.Block]dirShadow)
	o.lines = make([]map[memsys.Block]bool, nodes)
	o.wc = make([]map[memsys.Block]memsys.WordMask, nodes)
	for i := 0; i < nodes; i++ {
		o.lines[i] = make(map[memsys.Block]bool)
		o.wc[i] = make(map[memsys.Block]memsys.WordMask)
	}
	o.hwm = make(map[memsys.Block]*memsys.BlockData)
	o.ctxValid = false
	o.checks = 0
	o.obs = make([][]Obs, nodes)
}

// Checks returns how many transition-time assertions the oracle evaluated.
func (o *Oracle) Checks() uint64 { return o.checks }

// Observations returns node n's observation log (LogObs must have been
// set), in per-node program order.
func (o *Oracle) Observations(n int) []Obs { return o.obs[n] }

// OnDispatch records the protocol message now being handled; violations
// raised until the next dispatch are attributed to it.
func (o *Oracle) OnDispatch(msg string, b memsys.Block, dst int, toHome bool) {
	o.ctxMsg, o.ctxBlock, o.ctxDst, o.ctxToHome, o.ctxValid = msg, b, dst, toHome, true
}

// violate raises a structured invariant fault for block b attributed to
// the given component ("" derives it from the dispatch context).
func (o *Oracle) violate(component string, b memsys.Block, format string, args ...any) {
	f := &fault.SimFault{
		Kind:     fault.KindInvariant,
		Block:    uint64(b),
		HasBlock: true,
		Message:  fmt.Sprintf(format, args...),
	}
	if component == "" && o.ctxValid {
		if o.ctxToHome {
			component = fmt.Sprintf("home %d", o.ctxDst)
		} else {
			component = fmt.Sprintf("cache %d", o.ctxDst)
		}
	}
	f.Component = component
	if o.ctxValid {
		f.MsgKind = o.ctxMsg
	}
	panic(f)
}

// Failf lets the hooked code raise an invariant violation it detected
// itself (FLC inclusion, data-value regressions) through the same
// structured fault path. component may be empty to use the dispatch
// context.
func (o *Oracle) Failf(component string, b memsys.Block, format string, args ...any) {
	o.violate(component, b, format, args...)
}

// OnLine records that node's SLC now holds b (dirty or shared) after the
// named transition, and asserts directory-cache agreement for the new
// state.
func (o *Oracle) OnLine(node int, b memsys.Block, dirty bool, event string) {
	o.checks++
	o.lines[node][b] = dirty
	d := o.dir[b]
	if dirty {
		// SWMR: no other node may hold a dirty copy at any instant.
		for n := 0; n < o.nodes; n++ {
			if n != node && o.lines[n][b] {
				o.violate("", b, "%s: node %d turned block %d dirty while node %d already holds it dirty (SWMR)",
					event, node, b, n)
			}
		}
		// A dirty copy exists only at the registered owner of a MODIFIED
		// entry — the home always registers the grant before the ack can
		// arrive.
		if !d.known || !d.modified || d.owner != node {
			o.violate("", b, "%s: node %d holds block %d dirty but directory is %s",
				event, node, b, d.describe())
		}
	} else if d.modified && d.owner != node {
		// A shared copy under a MODIFIED entry is legal only at the owner
		// (the instant between its downgrade and the home's transition).
		o.violate("", b, "%s: node %d holds block %d shared but directory is %s",
			event, node, b, d.describe())
	}
	if d.known && d.presence&(1<<uint(node)) == 0 {
		o.violate("", b, "%s: node %d holds block %d outside the presence vector (%s)",
			event, node, b, d.describe())
	}
}

// OnLineDrop records that node's SLC no longer holds b (invalidation or
// replacement).
func (o *Oracle) OnLineDrop(node int, b memsys.Block, event string) {
	o.checks++
	delete(o.lines[node], b)
}

func (d dirShadow) describe() string {
	if !d.known {
		return "untracked"
	}
	if d.modified {
		return fmt.Sprintf("MODIFIED owner %d presence %#x", d.owner, d.presence)
	}
	return fmt.Sprintf("CLEAN presence %#x", d.presence)
}

// OnDirState records block b's directory entry after the named transition
// at its home, and asserts the directory-side invariants against the cache
// shadow.
func (o *Oracle) OnDirState(home int, b memsys.Block, modified bool, owner int, presence uint64, event string) {
	o.checks++
	if h := memsys.HomeOf(b, o.nodes); h != home {
		o.violate("", b, "%s: directory entry for block %d mutated at node %d, home is %d",
			event, b, home, h)
	}
	o.dir[b] = dirShadow{known: true, modified: modified, owner: owner, presence: presence}
	if modified {
		if owner < 0 || owner >= o.nodes {
			o.violate("", b, "%s: block %d MODIFIED with owner %d out of range", event, b, owner)
		}
		// In MODIFIED state the presence vector collapses to at most the
		// owner, and no other node may hold any copy.
		if presence&^(1<<uint(owner)) != 0 {
			o.violate("", b, "%s: block %d MODIFIED owner %d but presence %#x tracks other nodes",
				event, b, owner, presence)
		}
		for n := 0; n < o.nodes; n++ {
			if n != owner {
				if _, held := o.lines[n][b]; held {
					o.violate("", b, "%s: block %d granted MODIFIED to %d while node %d still holds a copy",
						event, b, owner, n)
				}
			}
		}
		return
	}
	// CLEAN: no dirty copy anywhere, and presence a superset of holders.
	for n := 0; n < o.nodes; n++ {
		dirty, held := o.lines[n][b]
		if !held {
			continue
		}
		if dirty {
			o.violate("", b, "%s: block %d CLEAN at home while node %d holds it dirty", event, b, n)
		}
		if presence&(1<<uint(n)) == 0 {
			o.violate("", b, "%s: block %d presence %#x dropped node %d which still holds a copy",
				event, b, presence, n)
		}
	}
}

// OnWCWrite records a combining write of word w into node's write cache
// and asserts the real per-word dirty mask matches the shadow.
func (o *Oracle) OnWCWrite(node int, b memsys.Block, w int, got memsys.WordMask) {
	o.checks++
	want := o.wc[node][b].Set(w)
	o.wc[node][b] = want
	if got != want {
		o.violate("", b, "write cache: node %d block %d word %d: dirty mask %s, shadow %s",
			node, b, w, got, want)
	}
}

// OnWCFlush records node's write cache giving up its entry for b (update
// issue, victimization or fence drain) and asserts the flushed mask is the
// shadow mask and nonempty — a combined update must carry exactly the
// words that were written.
func (o *Oracle) OnWCFlush(node int, b memsys.Block, got memsys.WordMask, event string) {
	o.checks++
	want, held := o.wc[node][b]
	delete(o.wc[node], b)
	if !held {
		o.violate("", b, "%s: node %d flushed write-cache block %d the shadow never saw written", event, node, b)
	}
	if got != want || got == 0 {
		o.violate("", b, "%s: node %d flushed block %d with mask %s, shadow %s",
			event, node, b, got, want)
	}
}

// OnWrite records a write to (b, w) serializing as version ver and asserts
// the global serialization order has no gaps or replays: each location's
// versions advance exactly one at a time.
func (o *Oracle) OnWrite(node int, b memsys.Block, w int, ver int64) {
	o.checks++
	c := o.hwm[b]
	if c == nil {
		c = &memsys.BlockData{}
		o.hwm[b] = c
	}
	if ver != c[w]+1 {
		o.violate("", b, "write by node %d to block %d word %d serialized as version %d after %d",
			node, b, w, ver, c[w])
	}
	c[w] = ver
	if o.LogObs {
		o.obs[node] = append(o.obs[node], Obs{Node: node, Block: b, Word: w, Ver: ver, Write: true})
	}
}

// OnRead records a processor observing version ver of (b, w) and asserts
// it does not exceed the serialization high-water mark — a version from
// the future means a data path fabricated or double-applied a write.
func (o *Oracle) OnRead(node int, b memsys.Block, w int, ver int64) {
	o.checks++
	if c := o.hwm[b]; ver > 0 && (c == nil || ver > c[w]) {
		hw := int64(0)
		if c != nil {
			hw = c[w]
		}
		o.violate("", b, "node %d read block %d word %d version %d beyond serialization high-water %d",
			node, b, w, ver, hw)
	}
	if o.LogObs {
		o.obs[node] = append(o.obs[node], Obs{Node: node, Block: b, Word: w, Ver: ver})
	}
}
