package fault

import (
	"strings"
	"testing"
)

func TestErrorSummary(t *testing.T) {
	f := &SimFault{
		Kind: KindPanic, Time: 1234, Component: "cache 3",
		MsgKind: "ReadReply", Block: 42, HasBlock: true,
		Message: "fill without mshr",
	}
	got := f.Error()
	for _, want := range []string{"panic", "t=1234", "cache 3", "ReadReply", "block 42", "fill without mshr"} {
		if !strings.Contains(got, want) {
			t.Errorf("Error() = %q, missing %q", got, want)
		}
	}
}

func TestDumpSections(t *testing.T) {
	f := &SimFault{
		Kind: KindDeadlock, Time: 99, Steps: 1000,
		Message: "queue empty, 2 processors blocked",
		Snapshot: &Snapshot{
			Caches: []CacheState{{Node: 1, SLWBUsed: 2, Pending: []string{"block 7: read (1 readers)"}}},
			Dir: &DirState{Block: 7, Home: 0, State: "MODIFIED", Owner: 1,
				Presence: 0b10, Busy: true, Txn: "fwd", Deferred: 3},
			Resources:    []ResourceState{{Name: "bus1", Depth: 2}},
			Blocked:      []string{"proc 0 waiting for lock 9"},
			Messages:     []Record{{At: 80, Op: "send", Kind: "ReadReq", Block: 7, Src: 0, Dst: 1}},
			MessagesSeen: 500,
		},
	}
	var b strings.Builder
	f.Dump(&b)
	got := b.String()
	for _, want := range []string{
		"SIMULATION FAULT (deadlock)", "99 pclocks", "1000 events",
		"cache 1", "block 7: read", "MODIFIED owner 1", "BUSY(fwd)", "deferred 3",
		"bus1: depth 2", "proc 0 waiting for lock 9",
		"last 1 of 500 messages", "ReadReq", "END FAULT",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("Dump missing %q in:\n%s", want, got)
		}
	}
}

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(int64(i), "send", "ReadReq", uint64(i), i, 0)
	}
	tail := r.Tail()
	if len(tail) != 4 {
		t.Fatalf("tail length %d, want 4", len(tail))
	}
	for i, rec := range tail {
		if want := int64(6 + i); rec.At != want {
			t.Errorf("tail[%d].At = %d, want %d (oldest first)", i, rec.At, want)
		}
	}
	if r.Seen() != 10 {
		t.Errorf("Seen() = %d, want 10", r.Seen())
	}
}

func TestRecorderPartial(t *testing.T) {
	r := NewRecorder(8)
	r.Record(1, "send", "Inv", 5, 0, 1)
	r.Record(2, "recv", "Inv", 5, 0, 1)
	tail := r.Tail()
	if len(tail) != 2 || tail[0].At != 1 || tail[1].At != 2 {
		t.Fatalf("partial tail wrong: %+v", tail)
	}
}

func TestRecorderNil(t *testing.T) {
	var r *Recorder // disabled
	r.Record(1, "send", "Inv", 5, 0, 1)
	if r.Tail() != nil || r.Seen() != 0 {
		t.Fatal("nil recorder must be a no-op")
	}
	if NewRecorder(0) != nil {
		t.Fatal("NewRecorder(0) must return the nil no-op recorder")
	}
}

func TestRecorderZeroAlloc(t *testing.T) {
	r := NewRecorder(64)
	allocs := testing.AllocsPerRun(100, func() {
		r.Record(1, "send", "ReadReq", 7, 0, 1)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %v times per call, want 0", allocs)
	}
	var nilRec *Recorder
	allocs = testing.AllocsPerRun(100, func() {
		nilRec.Record(1, "send", "ReadReq", 7, 0, 1)
	})
	if allocs != 0 {
		t.Fatalf("disabled Record allocates %v times per call, want 0", allocs)
	}
}
