// Package fault defines the simulator's structured fault model. A
// protocol assertion failure, a watchdog abort or a worker panic all
// surface as a *SimFault: a single error value carrying the simulated
// time, the faulting component, the protocol message being handled, the
// Go stack (for panics) and a diagnostic Snapshot of the machine —
// pending transactions, directory state, resource queues, blocked agents
// and the flight recorder's last protocol messages.
//
// The package is a leaf: it imports only the standard library, so every
// layer of the simulator (engine, coherence fabric, machine, scheduler)
// can build and return faults without import cycles. Simulated time is
// carried as a bare int64 in pclocks for the same reason.
package fault

import (
	"fmt"
	"io"
	"strings"
)

// Fault kinds: what detected the failure.
const (
	// KindPanic is a recovered protocol assertion (a panic inside the
	// simulation).
	KindPanic = "panic"
	// KindMaxEvents is the watchdog's event-count ceiling.
	KindMaxEvents = "max-events"
	// KindDeadline is the watchdog's simulated-time ceiling.
	KindDeadline = "deadline"
	// KindDeadlock is the watchdog's no-progress detector: the event queue
	// drained while processors remained blocked.
	KindDeadlock = "deadlock"
	// KindLivelock is the watchdog's quiescence-free-spin detector: events
	// kept firing past a threshold without any processor making progress.
	KindLivelock = "livelock"
	// KindInvariant is the live coherence checker: a shadow-state assertion
	// (SWMR, directory-cache agreement, presence supersetting, inclusion,
	// write-cache mask consistency, or the data-value invariant) failed at
	// the protocol transition where it was violated.
	KindInvariant = "invariant"
	// KindCanceled is a cooperative shutdown: the run was asked to stop
	// (SIGINT/SIGTERM, an interrupted sweep) and aborted cleanly at the next
	// event batch instead of being killed mid-state.
	KindCanceled = "canceled"
)

// SimFault is a structured simulation failure. It implements error; the
// one-line Error() names the cause and context, and Dump renders the full
// diagnostic snapshot.
type SimFault struct {
	Kind string // one of the Kind* constants

	Time  int64  // simulated time of the fault, in pclocks
	Steps uint64 // events executed when the fault fired

	// Component names the faulting agent when known: "cache 3", "home 0",
	// "machine", "scheduler worker".
	Component string
	// MsgKind is the protocol message being handled at the fault, when the
	// fault struck inside a message handler ("ReadReq", "Inv", ...).
	MsgKind string
	// Block is the memory block involved; HasBlock distinguishes block 0
	// from no block.
	Block    uint64
	HasBlock bool

	// Message describes the failure: the panic value, or the watchdog's
	// explanation naming the stuck agents.
	Message string

	// Stack is the Go stack at the panic site (nil for watchdog faults).
	Stack []byte

	// Snapshot is the machine's diagnostic state at the fault (may be nil
	// when the machine was too damaged to snapshot).
	Snapshot *Snapshot
}

// Error returns the one-line summary; use Dump for the full diagnostics.
func (f *SimFault) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "simulation fault (%s) at t=%d", f.Kind, f.Time)
	if f.Component != "" {
		fmt.Fprintf(&b, " in %s", f.Component)
	}
	if f.MsgKind != "" {
		fmt.Fprintf(&b, " handling %s", f.MsgKind)
	}
	if f.HasBlock {
		fmt.Fprintf(&b, " (block %d)", f.Block)
	}
	fmt.Fprintf(&b, ": %s", f.Message)
	return b.String()
}

// Dump writes the full human-readable fault report: the summary line, the
// diagnostic snapshot section by section, the flight recorder's last
// messages, and the panic stack when there is one.
func (f *SimFault) Dump(w io.Writer) {
	fmt.Fprintf(w, "=== SIMULATION FAULT (%s) ===\n", f.Kind)
	fmt.Fprintf(w, "time      %d pclocks (%d events executed)\n", f.Time, f.Steps)
	if f.Component != "" {
		fmt.Fprintf(w, "component %s\n", f.Component)
	}
	if f.MsgKind != "" {
		fmt.Fprintf(w, "message   %s\n", f.MsgKind)
	}
	if f.HasBlock {
		fmt.Fprintf(w, "block     %d\n", f.Block)
	}
	fmt.Fprintf(w, "cause     %s\n", f.Message)
	if s := f.Snapshot; s != nil {
		s.write(w)
	}
	if len(f.Stack) > 0 {
		fmt.Fprintf(w, "stack:\n%s", f.Stack)
	}
	fmt.Fprintf(w, "=== END FAULT ===\n")
}

// Snapshot is the machine's diagnostic state at a fault, captured by the
// Snapshotter (core.System). Every slice is deterministically ordered so
// two identical faults dump identically.
type Snapshot struct {
	// Caches describes each cache controller with in-flight state.
	Caches []CacheState
	// Dir is the directory state of the faulting block (nil when the fault
	// names no block or the block has no directory entry).
	Dir *DirState
	// Resources lists the contended resources with queued work.
	Resources []ResourceState
	// Blocked names every blocked agent: processors stuck on reads, locks
	// or barriers, and the sync primitives holding them.
	Blocked []string
	// Invariants holds the best-effort invariant findings gathered at the
	// fault: the non-quiescent checker skips blocks with in-flight
	// transactions and reports what is provably wrong in the rest, so the
	// coherence violation that caused a hang appears in the dump.
	Invariants []string
	// Messages is the flight recorder's tail: the last protocol messages
	// sent and delivered, oldest first.
	Messages []Record
	// MessagesSeen counts every message the recorder observed over the
	// run, so a reader can tell how much history the ring kept.
	MessagesSeen uint64
}

// CacheState summarizes one cache controller's in-flight work.
type CacheState struct {
	Node     int
	SLWBUsed int      // pending-transaction entries in use
	FLWBUsed int      // buffered first-level writes
	RelQueue int      // queued releases/barriers awaiting prior writes
	Pending  []string // one line per pending transaction
}

// DirState is the directory entry of the faulting block.
type DirState struct {
	Block    uint64
	Home     int
	State    string // "CLEAN" or "MODIFIED"
	Owner    int    // valid when State == "MODIFIED"
	Presence uint64 // sharer bit vector
	Busy     bool
	Txn      string // in-flight transaction kind while busy
	Deferred int    // requests queued behind the transaction
	Parked   int
}

// ResourceState is one contended resource's queue at the fault.
type ResourceState struct {
	Name  string
	Depth int // requests currently queued or in service
}

func (s *Snapshot) write(w io.Writer) {
	if len(s.Caches) > 0 {
		fmt.Fprintf(w, "caches with pending transactions:\n")
		for _, c := range s.Caches {
			fmt.Fprintf(w, "  cache %d: slwb %d, flwb %d, relq %d\n",
				c.Node, c.SLWBUsed, c.FLWBUsed, c.RelQueue)
			for _, p := range c.Pending {
				fmt.Fprintf(w, "    %s\n", p)
			}
		}
	}
	if d := s.Dir; d != nil {
		fmt.Fprintf(w, "directory entry of block %d (home %d): %s", d.Block, d.Home, d.State)
		if d.State == "MODIFIED" {
			fmt.Fprintf(w, " owner %d", d.Owner)
		}
		fmt.Fprintf(w, " presence %#x", d.Presence)
		if d.Busy {
			fmt.Fprintf(w, " BUSY(%s)", d.Txn)
		}
		if d.Deferred > 0 {
			fmt.Fprintf(w, " deferred %d", d.Deferred)
		}
		if d.Parked > 0 {
			fmt.Fprintf(w, " parked %d", d.Parked)
		}
		fmt.Fprintln(w)
	}
	if len(s.Resources) > 0 {
		fmt.Fprintf(w, "resource queues:\n")
		for _, r := range s.Resources {
			fmt.Fprintf(w, "  %s: depth %d\n", r.Name, r.Depth)
		}
	}
	if len(s.Blocked) > 0 {
		fmt.Fprintf(w, "blocked agents:\n")
		for _, b := range s.Blocked {
			fmt.Fprintf(w, "  %s\n", b)
		}
	}
	if len(s.Invariants) > 0 {
		fmt.Fprintf(w, "invariant findings (best effort, in-flight blocks skipped):\n")
		for _, v := range s.Invariants {
			fmt.Fprintf(w, "  %s\n", v)
		}
	}
	if len(s.Messages) > 0 {
		fmt.Fprintf(w, "flight recorder (last %d of %d messages, oldest first):\n",
			len(s.Messages), s.MessagesSeen)
		for _, m := range s.Messages {
			fmt.Fprintf(w, "  t=%-10d %-4s %-10s block %-8d %d->%d\n",
				m.At, m.Op, m.Kind, m.Block, m.Src, m.Dst)
		}
	}
}

// Snapshotter captures a machine's diagnostic state at a fault. The
// faulting block (when known) selects which directory entry to include.
// core.System implements it.
type Snapshotter interface {
	FaultSnapshot(block uint64, hasBlock bool) *Snapshot
}

// Record is one flight-recorder entry: a protocol message send or
// delivery.
type Record struct {
	At    int64  // simulated time, pclocks
	Op    string // "send" or "recv"
	Kind  string // message type name
	Block uint64
	Src   int
	Dst   int
}

// Recorder is a fixed-size ring buffer of the last N protocol messages.
// Record costs one slot store and two integer ops — no allocation — so it
// is cheap enough to leave on for every run; a nil *Recorder is a no-op,
// making the disabled case free.
type Recorder struct {
	buf []Record
	n   uint64 // total records ever written
}

// NewRecorder returns a recorder keeping the last depth messages, or nil
// (a valid no-op recorder) when depth <= 0.
func NewRecorder(depth int) *Recorder {
	if depth <= 0 {
		return nil
	}
	return &Recorder{buf: make([]Record, depth)}
}

// Record appends one entry, overwriting the oldest when full. Safe on a
// nil receiver. The caller must pass interned/constant strings (message
// type names are) so recording allocates nothing.
func (r *Recorder) Record(at int64, op, kind string, block uint64, src, dst int) {
	if r == nil {
		return
	}
	r.buf[r.n%uint64(len(r.buf))] = Record{At: at, Op: op, Kind: kind, Block: block, Src: src, Dst: dst}
	r.n++
}

// Seen returns how many records were ever written (>= len(Tail())).
func (r *Recorder) Seen() uint64 {
	if r == nil {
		return 0
	}
	return r.n
}

// Tail copies out the retained records, oldest first.
func (r *Recorder) Tail() []Record {
	if r == nil || r.n == 0 {
		return nil
	}
	depth := uint64(len(r.buf))
	kept := r.n
	if kept > depth {
		kept = depth
	}
	out := make([]Record, 0, kept)
	for i := r.n - kept; i < r.n; i++ {
		out = append(out, r.buf[i%depth])
	}
	return out
}
