package litmus

import (
	"testing"

	"ccsim"
)

// TestSharingClassification runs each nominal sharing shape under every
// protocol and asserts the telemetry classifier recovers the intended class
// for addrX's block. Classification reads only the program-order access
// stream (reads at issue, writes at write-buffer accept), so the verdict
// must be protocol-independent.
func TestSharingClassification(t *testing.T) {
	protocols := []struct {
		name string
		ext  ccsim.Ext
	}{
		{"BASIC", ccsim.Ext{}},
		{"P", ccsim.Ext{P: true}},
		{"CW", ccsim.Ext{CW: true}},
		{"M", ccsim.Ext{M: true}},
	}
	for want, mk := range SharingShapes() {
		p := mk()
		for _, proto := range protocols {
			t.Run(p.Name+"/"+proto.name, func(t *testing.T) {
				cfg := ccsim.DefaultConfig()
				cfg.Procs = len(p.Threads)
				cfg.Extensions = proto.ext
				cfg.MaxEvents = maxEvents
				sh := ccsim.NewSharingAnalytics()
				cfg.Sharing = sh
				streams := make([]ccsim.Stream, len(p.Threads))
				for i, th := range p.Threads {
					ops := make([]ccsim.Op, 0, len(th)+1)
					ops = append(ops, ccsim.Op{Kind: ccsim.StatsOn})
					ops = append(ops, th...)
					streams[i] = ccsim.Ops(ops...)
				}
				if _, err := ccsim.RunStreams(cfg, streams); err != nil {
					t.Fatalf("run: %v", err)
				}
				class, ok := sh.ClassOf(uint64(blockOf(addrX)))
				if !ok {
					t.Fatalf("no sharing record for addrX block")
				}
				if got := class.String(); got != want {
					t.Errorf("addrX classified %q, want %q", got, want)
				}
			})
		}
	}
}
