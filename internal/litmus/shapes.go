package litmus

import (
	"fmt"
	"math/rand"

	"ccsim"
	"ccsim/internal/check"
	"ccsim/internal/memsys"
)

// The shared locations live on distinct pages so their homes land on
// different nodes (HomeOf distributes by page), exercising the distributed
// directory rather than a single home controller.
const (
	addrX    = 1 * memsys.PageSize // "data"
	addrY    = 2 * memsys.PageSize // "flag"
	addrLock = 3 * memsys.PageSize
)

// Shapes returns the deterministic litmus corpus by name.
func Shapes() map[string]func() Program {
	return map[string]func() Program{
		"mp":      MP,
		"mp_sync": MPSync,
		"sb":      SB,
		"iriw":    IRIW,
		"corr":    CoRR,
		"combine": Combine,
	}
}

func read(addr uint64) ccsim.Op  { return ccsim.Op{Kind: ccsim.Read, Addr: addr} }
func write(addr uint64) ccsim.Op { return ccsim.Op{Kind: ccsim.Write, Addr: addr} }
func busy(c int64) ccsim.Op      { return ccsim.Op{Kind: ccsim.Busy, Cycles: c} }
func barrier(id int) ccsim.Op    { return ccsim.Op{Kind: ccsim.Barrier, Bar: id} }

// firstVer returns the version of thread obs' n-th observation of (block,
// word) with the given direction, or -1 if there is no such observation.
func firstVer(obs []check.Obs, addr uint64, isWrite bool) int64 {
	b, w := blockOf(addr), wordOf(addr)
	for _, o := range obs {
		if o.Block == b && o.Word == w && o.Write == isWrite {
			return o.Ver
		}
	}
	return -1
}

// MP is the message-passing shape: T0 writes data x then flag y; T1 reads
// flag then data, repeatedly. Under SC, once T1 has seen the flag write it
// must see the data write on every later read — a stale x after a fresh y
// would order W(x) and W(y) against program order.
func MP() Program {
	t0 := []ccsim.Op{busy(40), write(addrX), write(addrY)}
	var t1 []ccsim.Op
	for i := 0; i < 8; i++ {
		t1 = append(t1, read(addrY), busy(10), read(addrX), busy(10))
	}
	return Program{
		Name:    "mp",
		Threads: [][]ccsim.Op{t0, t1},
		SCOnly:  true,
		Verify: func(out *Outcome) error {
			bx, by := blockOf(addrX), blockOf(addrY)
			sawFlag := false
			for _, o := range out.Obs[1] {
				if o.Write {
					continue
				}
				if o.Block == by && o.Ver >= 1 {
					sawFlag = true
				}
				if o.Block == bx && o.Ver == 0 && sawFlag {
					return fmt.Errorf("mp: read flag y version >= 1 but a later read of data x saw version 0")
				}
			}
			return nil
		},
	}
}

// MPSync is message passing with a global barrier standing in for the
// synchronization: the barrier's release semantics make T0's writes
// performed before T1 leaves it, so T1 must see every written word under
// both consistency models.
func MPSync() Program {
	t0 := []ccsim.Op{
		write(addrX), write(addrX + memsys.WordSize), write(addrX + 2*memsys.WordSize),
		barrier(0),
	}
	t1 := []ccsim.Op{
		barrier(0),
		read(addrX), read(addrX + memsys.WordSize), read(addrX + 2*memsys.WordSize),
	}
	return Program{
		Name:    "mp_sync",
		Threads: [][]ccsim.Op{t0, t1},
		Verify: func(out *Outcome) error {
			for w := 0; w < 3; w++ {
				a := uint64(addrX + w*memsys.WordSize)
				if v := firstVer(out.Obs[1], a, false); v < 1 {
					return fmt.Errorf("mp_sync: word %d of x read version %d after the barrier, want >= 1", w, v)
				}
			}
			return nil
		},
	}
}

// SB is the store-buffering shape: T0 writes x then reads y; T1 writes y
// then reads x. Under SC the writes are performed before the program-order
// later reads, so at most one thread may read the other's location
// unwritten.
func SB() Program {
	t0 := []ccsim.Op{write(addrX), read(addrY)}
	t1 := []ccsim.Op{write(addrY), read(addrX)}
	return Program{
		Name:    "sb",
		Threads: [][]ccsim.Op{t0, t1},
		SCOnly:  true,
		Verify: func(out *Outcome) error {
			ry := firstVer(out.Obs[0], addrY, false)
			rx := firstVer(out.Obs[1], addrX, false)
			if ry == 0 && rx == 0 {
				return fmt.Errorf("sb: both threads read version 0 (r(y)=0 and r(x)=0), forbidden under SC")
			}
			return nil
		},
	}
}

// IRIW is independent-reads-of-independent-writes: two writers to x and y,
// two readers observing them in opposite orders. Under SC all processors
// agree on one order of W(x) and W(y); T2 concluding x-before-y while T3
// concludes y-before-x is forbidden. Reads are monotonic per processor
// (the data-value invariant), so "v then later 0" orders the writes.
func IRIW() Program {
	t0 := []ccsim.Op{busy(30), write(addrX)}
	t1 := []ccsim.Op{busy(50), write(addrY)}
	var t2, t3 []ccsim.Op
	for i := 0; i < 6; i++ {
		t2 = append(t2, read(addrX), read(addrY), busy(7))
		t3 = append(t3, read(addrY), read(addrX), busy(11))
	}
	order := func(obs []check.Obs, first, second uint64) bool {
		// Reports whether the thread observed the write to first strictly
		// before the write to second: some read of first with version >= 1
		// followed by a read of second with version 0.
		fb, sb := blockOf(first), blockOf(second)
		sawFirst := false
		for _, o := range obs {
			if o.Write {
				continue
			}
			if o.Block == fb && o.Ver >= 1 {
				sawFirst = true
			}
			if o.Block == sb && o.Ver == 0 && sawFirst {
				return true
			}
		}
		return false
	}
	return Program{
		Name:    "iriw",
		Threads: [][]ccsim.Op{t0, t1, t2, t3},
		SCOnly:  true,
		Verify: func(out *Outcome) error {
			if order(out.Obs[2], addrX, addrY) && order(out.Obs[3], addrY, addrX) {
				return fmt.Errorf("iriw: T2 ordered W(x) before W(y) while T3 ordered W(y) before W(x)")
			}
			return nil
		},
	}
}

// CoRR is coherence-of-read-read: one writer hammering a location while
// another thread reads it back-to-back. It carries no predicate of its own;
// the live checker's per-word version oracle and the core's read
// monotonicity check are the assertion (same-location reads never go
// backward).
func CoRR() Program {
	var t0, t1 []ccsim.Op
	for i := 0; i < 12; i++ {
		t0 = append(t0, write(addrX), busy(5))
		t1 = append(t1, read(addrX), read(addrX), busy(3))
	}
	return Program{Name: "corr", Threads: [][]ccsim.Op{t0, t1}}
}

// Combine targets the write cache's word-mask bookkeeping under CW: T0
// writes three of a block's words inside an acquire/release pair (the
// writes combine in the write cache and drain at the release), then both
// threads cross a barrier and T1 reads all four words. The written words
// must arrive (version >= 1) and the unwritten word must still be version
// 0 — a mask bug shows up as either a lost word or a fabricated one. The
// shape also runs (and must pass) under every non-CW protocol.
func Combine() Program {
	t0 := []ccsim.Op{
		ccsim.Op{Kind: ccsim.Acquire, Addr: addrLock},
		write(addrX), write(addrX + memsys.WordSize), write(addrX + 2*memsys.WordSize),
		ccsim.Op{Kind: ccsim.Release, Addr: addrLock},
		barrier(0),
	}
	t1 := []ccsim.Op{
		barrier(0),
		read(addrX), read(addrX + memsys.WordSize),
		read(addrX + 2*memsys.WordSize), read(addrX + 3*memsys.WordSize),
	}
	return Program{
		Name:    "combine",
		Threads: [][]ccsim.Op{t0, t1},
		Verify: func(out *Outcome) error {
			for w := 0; w < 4; w++ {
				a := uint64(addrX + w*memsys.WordSize)
				v := firstVer(out.Obs[1], a, false)
				if w < 3 && v < 1 {
					return fmt.Errorf("combine: written word %d read version %d after release+barrier, want >= 1", w, v)
				}
				if w == 3 && v != 0 {
					return fmt.Errorf("combine: unwritten word 3 read version %d, want 0", v)
				}
			}
			return nil
		},
	}
}

// RandomWalk builds a deterministic seeded micro-program: procs threads
// issuing ops reads/writes over a small set of shared blocks (one per
// page, so homes are spread), with busy padding, paired acquire/release
// critical sections, and machine-wide barriers at aligned positions. It is
// oracle-gated (Verify nil): the live checker plus the data-value
// invariant judge the run.
func RandomWalk(seed int64, procs, blocks, ops int) Program {
	rng := rand.New(rand.NewSource(seed))
	addr := func() uint64 {
		b := uint64(rng.Intn(blocks)) + 4 // pages 0-3 are the fixed shapes'
		w := uint64(rng.Intn(memsys.WordsPerBlock))
		return b*memsys.PageSize + w*memsys.WordSize
	}
	threads := make([][]ccsim.Op, procs)
	// Barriers at aligned positions: every thread arrives at the same
	// barrier ids in the same order.
	barEvery := ops / 3
	if barEvery < 1 {
		barEvery = ops + 1
	}
	for t := range threads {
		var th []ccsim.Op
		locked := false
		for i := 0; i < ops; i++ {
			if i > 0 && i%barEvery == 0 {
				if locked {
					th = append(th, ccsim.Op{Kind: ccsim.Release, Addr: addrLock})
					locked = false
				}
				th = append(th, barrier(i/barEvery-1))
			}
			switch r := rng.Intn(10); {
			case r < 4:
				th = append(th, read(addr()))
			case r < 8:
				th = append(th, write(addr()))
			case r < 9:
				th = append(th, busy(int64(1+rng.Intn(20))))
			default:
				if locked {
					th = append(th, ccsim.Op{Kind: ccsim.Release, Addr: addrLock})
				} else {
					th = append(th, ccsim.Op{Kind: ccsim.Acquire, Addr: addrLock})
				}
				locked = !locked
			}
		}
		if locked {
			th = append(th, ccsim.Op{Kind: ccsim.Release, Addr: addrLock})
		}
		threads[t] = th
	}
	return Program{Name: fmt.Sprintf("walk-%d", seed), Threads: threads}
}
