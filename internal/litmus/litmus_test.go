package litmus

import (
	"fmt"
	"testing"

	"ccsim"
	"ccsim/internal/check"
)

// TestShapesAllCells runs every deterministic litmus shape under the full
// protocol grid (every extension combination × SC/RC × both networks,
// minus CW×SC). Every run must pass: the live checker sees no coherence
// violation and each shape's outcome predicate accepts.
func TestShapesAllCells(t *testing.T) {
	cells := Cells()
	if len(cells) != 24 {
		t.Fatalf("Cells() = %d cells, want 24", len(cells))
	}
	for name, mk := range Shapes() {
		for _, cell := range cells {
			if err := Run(mk(), cell); err != nil {
				t.Errorf("%s under %s: %v", name, cell.Name(), err)
			}
		}
	}
}

// TestRandomWalkChecked is the bounded checked-random-walk pass invoked by
// verify.sh: seeded walks under a spread of protocol cells, judged by the
// live checker and the data-value invariant.
func TestRandomWalkChecked(t *testing.T) {
	cells := Cells()
	for seed := int64(1); seed <= 4; seed++ {
		p := RandomWalk(seed, 4, 6, 40)
		for i, cell := range cells {
			// Spread seeds over the grid instead of running the full cross
			// product; four seeds × six cells each still covers all 24.
			if int64(i%4)+1 != seed {
				continue
			}
			if err := Run(p, cell); err != nil {
				t.Errorf("%s under %s: %v", p.Name, cell.Name(), err)
			}
		}
	}
}

// TestRandomWalkDeterministic pins that the same seed yields the same
// program — the corpus must be reproducible across runs and platforms.
func TestRandomWalkDeterministic(t *testing.T) {
	a := RandomWalk(7, 3, 4, 30)
	b := RandomWalk(7, 3, 4, 30)
	if fmt.Sprint(a.Threads) != fmt.Sprint(b.Threads) {
		t.Fatalf("RandomWalk(7, ...) is not deterministic")
	}
	if a.OpCount() == 0 {
		t.Fatalf("RandomWalk produced an empty program")
	}
}

func TestFailureClass(t *testing.T) {
	if got := FailureClass(nil); got != "" {
		t.Errorf("FailureClass(nil) = %q, want \"\"", got)
	}
	if got := FailureClass(fmt.Errorf("litmus mp: verify: bad")); got != "verify" {
		t.Errorf("FailureClass(plain) = %q, want \"verify\"", got)
	}
	f := &ccsim.SimFault{Kind: ccsim.FaultDeadlock}
	if got := FailureClass(fmt.Errorf("wrapped: %w", f)); got != "fault:"+ccsim.FaultDeadlock {
		t.Errorf("FailureClass(fault) = %q, want %q", got, "fault:"+ccsim.FaultDeadlock)
	}
}

// TestMinimize drives the delta-minimizer with an always-failing predicate:
// the failure class survives any removal, so minimization must strip the
// program down to (near) nothing without ever deadlocking a partial
// barrier or unbalancing an acquire/release pair.
func TestMinimize(t *testing.T) {
	p := Combine()
	orig := p.OpCount()
	p.Verify = func(*Outcome) error { return fmt.Errorf("synthetic failure") }
	p.SCOnly = false
	cell := Cell{Ext: ccsim.Ext{CW: true}, SC: false, Net: ccsim.Uniform}
	min := Minimize(p, cell, 200)
	if got := FailureClass(Run(min, cell)); got != "verify" {
		t.Fatalf("minimized program lost its failure class: %q", got)
	}
	if min.OpCount() >= orig {
		t.Fatalf("Minimize did not shrink: %d ops, started with %d", min.OpCount(), orig)
	}
	if min.OpCount() != 0 {
		t.Errorf("with an unconditional failure, Minimize should reach 0 ops; got %d: %v", min.OpCount(), min.Threads)
	}
	// A program that passes is returned untouched.
	ok := Combine()
	if got := Minimize(ok, cell, 50); got.OpCount() != ok.OpCount() {
		t.Errorf("Minimize changed a passing program")
	}
}

// TestPredicatesCatchForbiddenOutcomes feeds hand-built forbidden
// observation logs to the shape predicates, pinning that a green grid
// means something: the predicates do reject the outcomes they claim to.
func TestPredicatesCatchForbiddenOutcomes(t *testing.T) {
	rd := func(addr uint64, ver int64) check.Obs {
		return check.Obs{Block: blockOf(addr), Word: wordOf(addr), Ver: ver}
	}
	// mp: flag y seen written, later data x seen unwritten.
	mp := MP()
	bad := &Outcome{Obs: [][]check.Obs{nil, {rd(addrY, 1), rd(addrX, 0)}}}
	if mp.Verify(bad) == nil {
		t.Errorf("mp predicate accepted y=1 then x=0")
	}
	good := &Outcome{Obs: [][]check.Obs{nil, {rd(addrX, 0), rd(addrY, 1), rd(addrX, 1)}}}
	if err := mp.Verify(good); err != nil {
		t.Errorf("mp predicate rejected a legal outcome: %v", err)
	}
	// sb: both threads read version 0.
	sb := SB()
	if sb.Verify(&Outcome{Obs: [][]check.Obs{{rd(addrY, 0)}, {rd(addrX, 0)}}}) == nil {
		t.Errorf("sb predicate accepted the both-zero outcome")
	}
	if err := sb.Verify(&Outcome{Obs: [][]check.Obs{{rd(addrY, 0)}, {rd(addrX, 1)}}}); err != nil {
		t.Errorf("sb predicate rejected a legal outcome: %v", err)
	}
	// iriw: the two readers order the independent writes oppositely.
	iriw := IRIW()
	if iriw.Verify(&Outcome{Obs: [][]check.Obs{nil, nil,
		{rd(addrX, 1), rd(addrY, 0)},
		{rd(addrY, 1), rd(addrX, 0)},
	}}) == nil {
		t.Errorf("iriw predicate accepted the opposite-orders outcome")
	}
	// combine: a written word lost, or the unwritten word fabricated.
	cb := Combine()
	lost := &Outcome{Obs: [][]check.Obs{nil, {
		rd(addrX, 1), rd(addrX+4, 0), rd(addrX+8, 1), rd(addrX+12, 0),
	}}}
	if cb.Verify(lost) == nil {
		t.Errorf("combine predicate accepted a lost written word")
	}
	fab := &Outcome{Obs: [][]check.Obs{nil, {
		rd(addrX, 1), rd(addrX+4, 1), rd(addrX+8, 1), rd(addrX+12, 2),
	}}}
	if cb.Verify(fab) == nil {
		t.Errorf("combine predicate accepted a fabricated unwritten word")
	}
}
