// Package litmus runs small concurrent micro-programs — classic memory
// consistency litmus shapes (message passing, store buffering, IRIW) plus
// deterministic random walks — against the full simulator with the live
// coherence checker attached, under any protocol combination × consistency
// model × network. A program fails either structurally (the checker or the
// watchdog raises a *ccsim.SimFault) or behaviorally (its Verify predicate
// rejects the observation logs); on failure, Minimize shrinks the program
// to a shorter sequence reproducing the same failure class.
//
// The harness leans on the checker's version oracle for observations: with
// LogObs set, every processor read and every write serialization is logged
// in per-processor program order (reads block, so program order is
// observation order), and predicates are stated over word *versions* — "T1
// saw y's first write" is "an observation of y with version >= 1".
package litmus

import (
	"fmt"

	"ccsim"
	"ccsim/internal/check"
	"ccsim/internal/memsys"
)

// Cell is one point of the protocol grid a program runs under.
type Cell struct {
	Ext ccsim.Ext
	SC  bool
	Net ccsim.Network
}

// Name returns e.g. "P+CW+M/uniform" or "BASIC-SC/mesh".
func (c Cell) Name() string {
	cfg := ccsim.DefaultConfig()
	cfg.Extensions, cfg.SC = c.Ext, c.SC
	net := "uniform"
	if c.Net == ccsim.Mesh {
		net = "mesh"
	}
	return cfg.ProtocolName() + "/" + net
}

// Cells returns the full grid: every extension combination × SC/RC × both
// networks, minus the CW×SC points (invalid per the paper §5.2).
func Cells() []Cell {
	var out []Cell
	for i := 0; i < 8; i++ {
		ext := ccsim.Ext{P: i&1 != 0, M: i&2 != 0, CW: i&4 != 0}
		for _, sc := range []bool{false, true} {
			if ext.CW && sc {
				continue
			}
			for _, net := range []ccsim.Network{ccsim.Uniform, ccsim.Mesh} {
				out = append(out, Cell{Ext: ext, SC: sc, Net: net})
			}
		}
	}
	return out
}

// Outcome is what a program's Verify predicate examines: the checker's
// observation log per thread, in program order. Obs[t] holds thread t's
// reads (Write=false, the version the processor saw) and its writes'
// serializations (Write=true).
type Outcome struct {
	Obs [][]check.Obs
}

// Program is one litmus test: named threads of operations plus an optional
// outcome predicate. A nil Verify means the program is oracle-gated only —
// the live checker and the data-value invariant are the assertion. SCOnly
// marks predicates that state a sequential-consistency guarantee; Run
// skips them under release consistency (where the outcome is legal).
type Program struct {
	Name    string
	Threads [][]ccsim.Op
	Verify  func(*Outcome) error
	SCOnly  bool
}

// maxEvents bounds every litmus run; the shapes are tiny, so anything near
// this is a hang and should fault, not spin.
const maxEvents = 5_000_000

// Run executes p under cell with the live checker attached and returns the
// failure, if any: a *ccsim.SimFault for a structural violation (unwrap
// with ccsim.AsFault) or a plain error from the Verify predicate.
func Run(p Program, cell Cell) error {
	_, err := run(p, cell)
	return err
}

func run(p Program, cell Cell) (*Outcome, error) {
	cfg := ccsim.DefaultConfig()
	cfg.Procs = len(p.Threads)
	cfg.Extensions = cell.Ext
	cfg.SC = cell.SC
	cfg.Net = cell.Net
	cfg.MaxEvents = maxEvents
	ck := ccsim.NewChecker()
	ck.LogObs = true
	cfg.Check = ck
	streams := make([]ccsim.Stream, len(p.Threads))
	for i, th := range p.Threads {
		ops := make([]ccsim.Op, 0, len(th)+1)
		ops = append(ops, ccsim.Op{Kind: ccsim.StatsOn})
		ops = append(ops, th...)
		streams[i] = ccsim.Ops(ops...)
	}
	if _, err := ccsim.RunStreams(cfg, streams); err != nil {
		return nil, fmt.Errorf("litmus %s under %s: %w", p.Name, cell.Name(), err)
	}
	out := &Outcome{Obs: make([][]check.Obs, len(p.Threads))}
	for i := range p.Threads {
		out.Obs[i] = ck.Observations(i)
	}
	if p.Verify != nil && (!p.SCOnly || cell.SC) {
		if err := p.Verify(out); err != nil {
			return out, fmt.Errorf("litmus %s under %s: %w", p.Name, cell.Name(), err)
		}
	}
	return out, nil
}

// blockOf maps a program address to the oracle's block naming.
func blockOf(addr uint64) memsys.Block { return memsys.BlockOf(memsys.Addr(addr)) }

// wordOf maps a program address to its word index within the block.
func wordOf(addr uint64) int { return memsys.WordIndex(memsys.Addr(addr)) }

// FailureClass buckets a Run error so minimization can preserve it: "" for
// success, "fault:<kind>" for a structural SimFault, "verify" for a
// predicate rejection.
func FailureClass(err error) string {
	if err == nil {
		return ""
	}
	if f, ok := ccsim.AsFault(err); ok {
		return "fault:" + f.Kind
	}
	return "verify"
}

// Minimize greedily shrinks a failing program while its failure class under
// cell is preserved, running at most maxRuns trial simulations. It removes
// one operation at a time, with the structural pairings respected: an
// Acquire goes together with its matching Release, and a barrier is
// removed from every thread at once (a partial barrier would deadlock).
// The returned program reproduces the original failure class.
func Minimize(p Program, cell Cell, maxRuns int) Program {
	want := FailureClass(Run(p, cell))
	if want == "" {
		return p
	}
	runs := 1
	for {
		shrunk := false
		for t := 0; t < len(p.Threads) && runs < maxRuns; t++ {
			for i := 0; i < len(p.Threads[t]) && runs < maxRuns; i++ {
				cand, ok := remove(p, t, i)
				if !ok {
					continue
				}
				runs++
				if FailureClass(Run(cand, cell)) == want {
					p = cand
					shrunk = true
					i-- // the next op slid into this slot
				}
			}
		}
		if !shrunk || runs >= maxRuns {
			return p
		}
	}
}

// remove returns a copy of p without thread t's op i (and its structural
// partners), or ok=false when the op cannot be removed alone (a Release,
// whose removal is driven by its Acquire).
func remove(p Program, t, i int) (Program, bool) {
	op := p.Threads[t][i]
	switch op.Kind {
	case ccsim.Release:
		return Program{}, false
	case ccsim.Barrier:
		// Count which arrival this is for thread t, then drop the same
		// barrier id from every thread.
		out := cloneProgram(p)
		for tt := range out.Threads {
			out.Threads[tt] = removeFirstBarrier(out.Threads[tt], op.Bar)
		}
		return out, true
	case ccsim.Acquire:
		out := cloneProgram(p)
		th := out.Threads[t]
		// Drop the acquire and its matching release (the next release of
		// the same lock address in this thread).
		th = append(th[:i:i], th[i+1:]...)
		for j := i; j < len(th); j++ {
			if th[j].Kind == ccsim.Release && th[j].Addr == op.Addr {
				th = append(th[:j:j], th[j+1:]...)
				break
			}
		}
		out.Threads[t] = th
		return out, true
	default:
		out := cloneProgram(p)
		th := out.Threads[t]
		out.Threads[t] = append(th[:i:i], th[i+1:]...)
		return out, true
	}
}

func removeFirstBarrier(th []ccsim.Op, bar int) []ccsim.Op {
	for i, op := range th {
		if op.Kind == ccsim.Barrier && op.Bar == bar {
			return append(th[:i:i], th[i+1:]...)
		}
	}
	return th
}

func cloneProgram(p Program) Program {
	out := Program{Name: p.Name, Verify: p.Verify, SCOnly: p.SCOnly}
	out.Threads = make([][]ccsim.Op, len(p.Threads))
	for t, th := range p.Threads {
		out.Threads[t] = append([]ccsim.Op(nil), th...)
	}
	return out
}

// OpCount returns the total operation count across threads — what Minimize
// drives down.
func (p Program) OpCount() int {
	n := 0
	for _, th := range p.Threads {
		n += len(th)
	}
	return n
}
