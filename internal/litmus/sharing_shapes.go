package litmus

import (
	"ccsim"
	"ccsim/internal/memsys"
)

// SharingShapes returns micro-programs whose access pattern on addrX is a
// nominal instance of one sharing class, keyed by the class name the
// telemetry classifier should recover (telemetry.SharingClass.String()).
// Each shape is barrier-paced where the classification depends on the
// cross-thread interleaving, so the classifier sees the same access stream
// under every protocol, consistency model, and network.
func SharingShapes() map[string]func() Program {
	return map[string]func() Program{
		"migratory":         Migratory,
		"producer-consumer": ProducerConsumer,
		"false-sharing":     FalseSharing,
		"read-mostly":       ReadMostly,
	}
}

// Migratory passes a token for addrX between two threads: on its turn a
// thread reads the block, computes, and writes it back, then both threads
// synchronize. The read-before-write on each turn is the migratory handoff
// signature (exclusive read-modify-write episodes moving between nodes);
// the barriers guarantee strict alternation so every writer change follows
// the new writer's own read.
func Migratory() Program {
	const rounds = 6
	var t0, t1 []ccsim.Op
	for i := 0; i < rounds; i++ {
		turn := []ccsim.Op{read(addrX), busy(5), write(addrX)}
		if i%2 == 0 {
			t0 = append(t0, turn...)
		} else {
			t1 = append(t1, turn...)
		}
		t0 = append(t0, barrier(i))
		t1 = append(t1, barrier(i))
	}
	return Program{Name: "share_migratory", Threads: [][]ccsim.Op{t0, t1}}
}

// ProducerConsumer has a single writer feeding two readers: each round T0
// writes addrX, a barrier publishes it, T1 and T2 read it, and a second
// barrier closes the round. One stable writer with disjoint readers is the
// producer-consumer signature.
func ProducerConsumer() Program {
	const rounds = 6
	var t0, t1, t2 []ccsim.Op
	for i := 0; i < rounds; i++ {
		t0 = append(t0, write(addrX), barrier(2*i))
		t1 = append(t1, barrier(2*i), read(addrX))
		t2 = append(t2, barrier(2*i), read(addrX))
		t0 = append(t0, barrier(2*i+1))
		t1 = append(t1, barrier(2*i+1))
		t2 = append(t2, barrier(2*i+1))
	}
	return Program{Name: "share_producer_consumer", Threads: [][]ccsim.Op{t0, t1, t2}}
}

// FalseSharing has two threads repeatedly writing different words of the
// same block (word 0 and word 4) with no synchronization: multiple writers
// whose word footprints never overlap. No pacing is needed — the word
// disjointness alone is the signature, independent of interleaving.
func FalseSharing() Program {
	const rounds = 8
	var t0, t1 []ccsim.Op
	for i := 0; i < rounds; i++ {
		t0 = append(t0, write(addrX), busy(5))
		t1 = append(t1, write(addrX+4*memsys.WordSize), busy(5))
	}
	return Program{Name: "share_false_sharing", Threads: [][]ccsim.Op{t0, t1}}
}

// ReadMostly initializes addrX with a single write, publishes it with a
// barrier, then has all four threads read it repeatedly: a read/write ratio
// far above the classifier's threshold with multiple reader nodes.
func ReadMostly() Program {
	const reads = 12
	threads := make([][]ccsim.Op, 4)
	threads[0] = append(threads[0], write(addrX))
	for t := range threads {
		threads[t] = append(threads[t], barrier(0))
		for i := 0; i < reads; i++ {
			threads[t] = append(threads[t], read(addrX), busy(7))
		}
	}
	return Program{Name: "share_read_mostly", Threads: threads}
}
