// Package ops is the sweep's live operations plane: an opt-in HTTP server
// exposing the experiment scheduler's state while a sweep runs. Every
// endpoint is read-only and safe to scrape at any rate:
//
//   - /metrics — Prometheus text exposition: scheduler gauges
//     (queued/running/completed/failed/dedup-hits), the fault and
//     dropped-span counters, per-live-run series (events executed,
//     simulated time, events/sec, heartbeat age), engine queue-internals
//     aggregates (ccsim_engine_*), scheduler lifecycle and store latency
//     summaries (ccsim_sched_duration_seconds,
//     ccsim_store_duration_seconds), and per-sharing-class series when a
//     sweep runs with analytics on. The full series catalogue lives in
//     EXPERIMENTS.md (a test keeps it in sync).
//   - /status — one JSON document: the same scheduler counters plus a full
//     per-run table, including each run's watchdog heartbeat age, so a run
//     stuck inside a single event (invisible to the event-counting
//     watchdog) shows up before anything kills it — plus the failed-run
//     ledger, each entry tagged with its run_id.
//   - /sharing — the sweep-wide sharing-pattern aggregate as JSON (null
//     until an analyzed run completes).
//   - /dashboard — a single self-contained auto-refreshing HTML page
//     rendering /status live: progress bar, per-run table with events/sec
//     sparklines, queue and latency histograms, fault ledger.
//   - /debug/pprof/ — the standard net/http/pprof handlers, mounted only
//     when EnablePprof was called (the CLI's -pprof flag), for continuous
//     CPU/heap/goroutine profiling of live sweeps.
//
// Every read goes through lock-free Progress probes or the scheduler's
// short-lived mutex; scraping never blocks a simulation.
package ops

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"ccsim"
	"ccsim/exp"
)

// Source is the scheduler-shaped state the server scrapes. *exp.Scheduler
// implements it; tests substitute fakes.
type Source interface {
	Stats() exp.SchedStats
	LiveRuns() []exp.LiveRun
	// SharingReport returns the sweep-wide sharing-pattern aggregate, nil
	// when no analyzed run has completed.
	SharingReport() *ccsim.SharingReport
	// Failed returns the ledger of runs that completed with an error.
	Failed() []exp.FailedRun
}

// Server serves the ops endpoints for one Source.
type Server struct {
	src     Source
	ln      net.Listener
	srv     *http.Server
	pprofOn bool
}

// NewServer returns a server for src; call Handler to mount it yourself or
// Start to listen in the background.
func NewServer(src Source) *Server {
	return &Server{src: src}
}

// EnablePprof mounts the net/http/pprof handlers under /debug/pprof/ on
// the handler built afterwards. Opt-in (the CLI's -pprof flag) because the
// profile endpoints expose build and runtime internals and can run the
// CPU profiler on demand. Call before Handler or Start.
func (s *Server) EnablePprof() { s.pprofOn = true }

// Start begins listening on addr (e.g. ":8099"; ":0" picks a free port)
// and serves in a background goroutine until Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("ops: %w", err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler()}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return nil
}

// Serve starts an ops server on addr and serves in a background goroutine
// until Close — NewServer plus Start for callers that need no options.
func Serve(addr string, src Source) (*Server, error) {
	s := NewServer(src)
	if err := s.Start(addr); err != nil {
		return nil, err
	}
	return s, nil
}

// Addr returns the bound listen address ("127.0.0.1:8099"), or "" before
// Serve.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener. In-flight scrapes are abandoned; the endpoints
// are stateless so nothing is lost.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

//go:embed dashboard.html
var dashboardHTML []byte

// Handler returns the ops mux: /metrics, /status, /sharing, /dashboard,
// a plain-text index at /, and — when EnablePprof was called — the
// net/http/pprof handlers under /debug/pprof/.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/status", s.status)
	mux.HandleFunc("/sharing", s.sharing)
	mux.HandleFunc("/dashboard", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write(dashboardHTML) //nolint:errcheck // client hangup is benign
	})
	if s.pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "ccsim sweep ops plane\n/metrics    Prometheus text\n/status     JSON run table\n/sharing    JSON sharing-pattern aggregate\n/dashboard  live HTML sweep dashboard\n")
		if s.pprofOn {
			fmt.Fprint(w, "/debug/pprof/  live profiling (pprof)\n")
		}
	})
	return mux
}

// RunStatus is one row of /status's run table.
type RunStatus struct {
	ID       uint64 `json:"id"`
	RunID    string `json:"run_id"`
	Workload string `json:"workload"`
	Protocol string `json:"protocol"`
	// Events and SimTimePclocks are the run's position, published by the
	// engine every few thousand events.
	Events         uint64 `json:"events"`
	SimTimePclocks int64  `json:"sim_time_pclocks"`
	// EventsPerSec is the run's average event rate since its start.
	EventsPerSec float64 `json:"events_per_sec"`
	// WallSeconds is the run's age; HeartbeatAgeSeconds is the time since
	// the engine last published. A heartbeat age far above WallSeconds'
	// growth rate means the run is wedged inside one event.
	WallSeconds         float64 `json:"wall_seconds"`
	HeartbeatAgeSeconds float64 `json:"heartbeat_age_seconds"`
}

// FailureStatus is one row of /status's fault ledger.
type FailureStatus struct {
	RunID    string `json:"run_id"`
	Workload string `json:"workload"`
	Protocol string `json:"protocol"`
	// Kind is the structured fault kind ("max-events", "panic", ...) or
	// "error" for failures that are not simulation faults (e.g. a
	// metrics-write error).
	Kind  string `json:"kind"`
	Error string `json:"error"`
}

// Status is the /status document.
type Status struct {
	UnixNanos int64           `json:"unix_nanos"`
	Scheduler exp.SchedStats  `json:"scheduler"`
	Runs      []RunStatus     `json:"runs"`
	Failures  []FailureStatus `json:"failures"`
}

// snapshot assembles the full status view at one instant.
func (s *Server) snapshot() Status {
	now := time.Now()
	live := s.src.LiveRuns()
	st := Status{
		UnixNanos: now.UnixNano(),
		Scheduler: s.src.Stats(),
		Runs:      make([]RunStatus, 0, len(live)),
	}
	for _, lr := range live {
		ps := lr.Progress.Snapshot()
		rs := RunStatus{
			ID:             lr.ID,
			RunID:          lr.RunID,
			Workload:       lr.Workload,
			Protocol:       lr.Protocol,
			Events:         ps.Events,
			SimTimePclocks: ps.SimTime,
			EventsPerSec:   ps.EventsPerSec(),
		}
		if ps.Start > 0 {
			rs.WallSeconds = now.Sub(time.Unix(0, ps.Start)).Seconds()
		}
		if age := ps.HeartbeatAge(now); age > 0 {
			rs.HeartbeatAgeSeconds = age.Seconds()
		}
		st.Runs = append(st.Runs, rs)
	}
	for _, f := range s.src.Failed() {
		fs := FailureStatus{
			RunID:    exp.RunID(f.Cfg),
			Workload: f.Cfg.Workload,
			Protocol: f.Cfg.ProtocolName(),
			Kind:     "error",
		}
		if f.Err != nil {
			fs.Error = f.Err.Error()
			if sf, ok := ccsim.AsFault(f.Err); ok {
				fs.Kind = sf.Kind
			}
		}
		st.Failures = append(st.Failures, fs)
	}
	return st
}

func (s *Server) status(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.snapshot()) //nolint:errcheck // client hangup mid-scrape is benign
}

// sharing serves the sweep-wide sharing-pattern aggregate. The report is
// null until at least one run with analytics attached completes.
func (s *Server) sharing(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	doc := struct {
		UnixNanos int64                `json:"unix_nanos"`
		Sharing   *ccsim.SharingReport `json:"sharing"`
	}{time.Now().UnixNano(), s.src.SharingReport()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc) //nolint:errcheck // client hangup mid-scrape is benign
}

func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	st := s.snapshot()
	var b strings.Builder

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	sch := st.Scheduler
	counter("ccsim_sched_submitted_total", "Simulations submitted, including run-cache hits.", sch.Submitted)
	counter("ccsim_sched_unique_total", "Distinct configurations actually simulated.", sch.Unique)
	counter("ccsim_sched_dedup_hits_total", "Submissions served by the run cache without a new simulation.", sch.DedupHits)
	counter("ccsim_sched_completed_total", "Runs finished without error.", sch.Completed)
	counter("ccsim_sched_faults_total", "Runs finished with an error: contained panics, watchdog aborts, metrics-write failures.", sch.Failed)
	counter("ccsim_dropped_spans_total", "Telemetry spans discarded by span-buffer overflow across completed runs; nonzero means timelines undercount.", sch.DroppedSpans)
	counter("ccsim_sched_retries_total", "Re-executions of transiently-faulted runs under the retry policy.", sch.Retries)
	counter("ccsim_sched_interrupted_total", "Runs abandoned before execution by graceful shutdown.", sch.Interrupted)
	gauge("ccsim_sched_queued", "Runs waiting for a worker slot.", sch.Queued)
	gauge("ccsim_sched_running", "Runs executing right now.", sch.Running)

	if sch.Store != nil {
		counter("ccsim_store_hits_total", "Runs served from the durable result store without simulating.", sch.Store.Hits)
		counter("ccsim_store_misses_total", "Store lookups that fell through to a real simulation.", sch.Store.Misses)
		counter("ccsim_store_writes_total", "Results persisted to the durable store.", sch.Store.Writes)
		counter("ccsim_store_quarantined_total", "Corrupt or truncated store entries moved to the quarantine directory and re-run.", sch.Store.Quarantined)
	}

	if eng := sch.Engine; eng != nil {
		counter("ccsim_engine_events_dispatched_total", "Events executed by simulated runs' event engines (store hits excluded).", eng.Dispatched)
		counter("ccsim_engine_wheel_scheduled_total", "Events scheduled directly into a calendar-wheel bucket.", eng.WheelScheduled)
		counter("ccsim_engine_overflow_scheduled_total", "Events scheduled beyond the wheel window into the overflow heap.", eng.OverflowScheduled)
		counter("ccsim_engine_migrations_total", "Overflow events migrated into the wheel as the window reached them.", eng.Migrations)
		counter("ccsim_engine_cohorts_total", "Same-timestamp dispatch batches executed.", eng.Cohorts)
		counter("ccsim_engine_capped_batches_total", "Dispatch batches stopped at the watchdog's event budget with the cohort still non-empty.", eng.CappedBatches)
		gauge("ccsim_engine_wheel_occupancy_highwater", "Peak number of events resident in wheel buckets in any single run.", eng.WheelHighWater)
		gauge("ccsim_engine_overflow_highwater", "Peak overflow-heap depth in any single run.", eng.OverflowHighWater)
		gauge("ccsim_engine_max_cohort_events", "Largest single dispatch batch across simulated runs.", int(eng.MaxCohort))
		const ch = "ccsim_engine_cohort_size_events"
		fmt.Fprintf(&b, "# HELP %s Distribution of same-timestamp cohort sizes (log2 buckets; cumulative histogram).\n# TYPE %s histogram\n", ch, ch)
		var cum uint64
		for i, n := range eng.CohortSizeLog2 {
			cum += n
			fmt.Fprintf(&b, "%s_bucket{le=%s} %d\n", ch, labelValue(fmt.Sprint(ccsim.CohortBucketMax(i))), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", ch, cum)
		fmt.Fprintf(&b, "%s_sum %d\n", ch, eng.Dispatched)
		fmt.Fprintf(&b, "%s_count %d\n", ch, eng.Cohorts)
	}

	// durations renders a []DurationStats as one Prometheus summary family
	// with quantile samples plus _sum/_count, skipping phases that never
	// ran (and the whole family when nothing has).
	durations := func(name, help, label string, ds []exp.DurationStats) {
		any := false
		for _, d := range ds {
			if d.Count > 0 {
				any = true
				break
			}
		}
		if !any {
			return
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s summary\n", name, help, name)
		for _, d := range ds {
			if d.Count == 0 {
				continue
			}
			for _, qv := range []struct {
				q string
				v float64
			}{{"0.5", d.P50Seconds}, {"0.95", d.P95Seconds}, {"0.99", d.P99Seconds}, {"max", d.MaxSeconds}} {
				fmt.Fprintf(&b, "%s{%s=%s,quantile=%s} %g\n", name, label, labelValue(d.Phase), labelValue(qv.q), qv.v)
			}
		}
		for _, d := range ds {
			if d.Count == 0 {
				continue
			}
			fmt.Fprintf(&b, "%s_sum{%s=%s} %g\n", name, label, labelValue(d.Phase), d.SumSeconds)
			fmt.Fprintf(&b, "%s_count{%s=%s} %d\n", name, label, labelValue(d.Phase), d.Count)
		}
	}
	durations("ccsim_sched_duration_seconds",
		"Per-run lifecycle decomposition: time spent per scheduler phase (bucketed upper-bound quantiles; max exact).",
		"phase", sch.Lifecycle)
	if sch.Store != nil {
		durations("ccsim_store_duration_seconds",
			"Durable-store operation latencies: entry reads, validation, and atomic commits (bucketed upper-bound quantiles; max exact).",
			"op", sch.Store.Ops)
	}

	perRun := func(name, help, typ string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	if len(st.Runs) > 0 {
		perRun("ccsim_run_events_total", "Simulation events executed by a live run.", "counter")
		for _, r := range st.Runs {
			fmt.Fprintf(&b, "ccsim_run_events_total{%s} %d\n", runLabels(r), r.Events)
		}
		perRun("ccsim_run_sim_time_pclocks", "A live run's current simulated time.", "gauge")
		for _, r := range st.Runs {
			fmt.Fprintf(&b, "ccsim_run_sim_time_pclocks{%s} %d\n", runLabels(r), r.SimTimePclocks)
		}
		perRun("ccsim_run_events_per_second", "A live run's average event rate since start.", "gauge")
		for _, r := range st.Runs {
			fmt.Fprintf(&b, "ccsim_run_events_per_second{%s} %g\n", runLabels(r), r.EventsPerSec)
		}
		perRun("ccsim_run_heartbeat_age_seconds", "Seconds since a live run's engine last published progress.", "gauge")
		for _, r := range st.Runs {
			fmt.Fprintf(&b, "ccsim_run_heartbeat_age_seconds{%s} %g\n", runLabels(r), r.HeartbeatAgeSeconds)
		}
	}

	if rep := s.src.SharingReport(); rep != nil && len(rep.Classes) > 0 {
		perClass := func(name, help, typ string, v func(c ccsim.SharingClassStats) uint64) {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
			for _, c := range rep.Classes {
				fmt.Fprintf(&b, "%s{class=%s} %d\n", name, labelValue(c.Class), v(c))
			}
		}
		perClass("ccsim_sharing_blocks", "Blocks carrying each sharing-pattern label across analyzed runs.", "gauge",
			func(c ccsim.SharingClassStats) uint64 { return c.Blocks })
		perClass("ccsim_sharing_reads_total", "Processor reads attributed to each sharing class.", "counter",
			func(c ccsim.SharingClassStats) uint64 { return c.Reads })
		perClass("ccsim_sharing_writes_total", "Processor writes attributed to each sharing class.", "counter",
			func(c ccsim.SharingClassStats) uint64 { return c.Writes })
		perClass("ccsim_sharing_misses_total", "SLC demand read misses attributed to each sharing class.", "counter",
			func(c ccsim.SharingClassStats) uint64 { return c.Misses })
		perClass("ccsim_sharing_invalidations_total", "Coherence invalidations attributed to each sharing class.", "counter",
			func(c ccsim.SharingClassStats) uint64 { return c.Invalidations })
		perClass("ccsim_sharing_updates_total", "Write-update deliveries attributed to each sharing class.", "counter",
			func(c ccsim.SharingClassStats) uint64 { return c.Updates })

		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n",
			"ccsim_sharing_traffic_bytes_total", "Network bytes attributed to each sharing class, by message kind.",
			"ccsim_sharing_traffic_bytes_total")
		for _, c := range rep.Classes {
			for _, kb := range []struct {
				kind string
				v    uint64
			}{{"control", c.CtlBytes}, {"data", c.DataBytes}, {"update", c.UpdateBytes}} {
				fmt.Fprintf(&b, "ccsim_sharing_traffic_bytes_total{class=%s,kind=%s} %d\n",
					labelValue(c.Class), labelValue(kb.kind), kb.v)
			}
		}

		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n",
			"ccsim_sharing_miss_latency_pclocks", "Demand-miss service-time distribution per sharing class (bucketed upper bounds; max is exact).",
			"ccsim_sharing_miss_latency_pclocks")
		for _, c := range rep.Classes {
			for _, qv := range []struct {
				q string
				v int64
			}{{"0.5", c.MissLatencyP50}, {"0.95", c.MissLatencyP95}, {"0.99", c.MissLatencyP99}, {"max", c.MissLatencyMax}} {
				fmt.Fprintf(&b, "ccsim_sharing_miss_latency_pclocks{class=%s,quantile=%s} %d\n",
					labelValue(c.Class), labelValue(qv.q), qv.v)
			}
		}
	}
	w.Write([]byte(b.String())) //nolint:errcheck // client hangup mid-scrape is benign
}

func runLabels(r RunStatus) string {
	return fmt.Sprintf(`run="%d",workload=%s,protocol=%s`,
		r.ID, labelValue(r.Workload), labelValue(r.Protocol))
}

// labelValue quotes a Prometheus label value, escaping backslash, quote
// and newline per the text exposition format.
func labelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return `"` + v + `"`
}
