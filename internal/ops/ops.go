// Package ops is the sweep's live operations plane: an opt-in HTTP server
// exposing the experiment scheduler's state while a sweep runs. Every
// endpoint is read-only and safe to scrape at any rate:
//
//   - /metrics — Prometheus text exposition: scheduler gauges
//     (queued/running/completed/failed/dedup-hits), the fault and
//     dropped-span counters, per-live-run series (events executed,
//     simulated time, events/sec, heartbeat age), engine queue-internals
//     aggregates (ccsim_engine_*), scheduler lifecycle and store latency
//     summaries (ccsim_sched_duration_seconds,
//     ccsim_store_duration_seconds), and per-sharing-class series when a
//     sweep runs with analytics on. The full series catalogue lives in
//     EXPERIMENTS.md (a test keeps it in sync).
//   - /status — one JSON document: the same scheduler counters plus a full
//     per-run table, including each run's watchdog heartbeat age, so a run
//     stuck inside a single event (invisible to the event-counting
//     watchdog) shows up before anything kills it — plus the failed-run
//     ledger, each entry tagged with its run_id.
//   - /sharing — the sweep-wide sharing-pattern aggregate as JSON (null
//     until an analyzed run completes).
//   - /dashboard — a single self-contained auto-refreshing HTML page
//     rendering /status live: progress bar, per-run table with events/sec
//     sparklines, queue and latency histograms, fault ledger.
//   - /debug/pprof/ — the standard net/http/pprof handlers, mounted only
//     when EnablePprof was called (the CLI's -pprof flag), for continuous
//     CPU/heap/goroutine profiling of live sweeps.
//
// When the server is wired to a job queue (SetJobs; the CLI's -serve-jobs
// flag) it additionally becomes the sweep coordinator — the only
// read-write surface of the ops plane:
//
//   - POST /jobs — submit one simulation Config as JSON; responds with the
//     job's view (deduplicated by fingerprint: re-submitting a config
//     returns the existing job).
//   - GET /jobs, GET /jobs/{id} — job listing / one job's state and, once
//     resolved, its Result.
//   - POST /worker/lease, /worker/heartbeat, /worker/result — the worker
//     wire protocol (`experiments -worker <url>`): pull a leased job,
//     keep its lease alive, deliver its Result. Leases that stop
//     heartbeating expire and the job re-queues, so a crashed worker
//     loses no runs.
//
// Every read goes through lock-free Progress probes or the scheduler's
// short-lived mutex; scraping never blocks a simulation.
package ops

import (
	_ "embed"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"ccsim"
	"ccsim/exp"
)

// Source is the scheduler-shaped state the server scrapes. *exp.Scheduler
// implements it; tests substitute fakes.
type Source interface {
	Stats() exp.SchedStats
	LiveRuns() []exp.LiveRun
	// SharingReport returns the sweep-wide sharing-pattern aggregate, nil
	// when no analyzed run has completed.
	SharingReport() *ccsim.SharingReport
	// Failed returns the ledger of runs that completed with an error.
	Failed() []exp.FailedRun
}

// Server serves the ops endpoints for one Source.
type Server struct {
	src     Source
	jobs    *exp.JobQueue
	ln      net.Listener
	srv     *http.Server
	pprofOn bool
}

// NewServer returns a server for src; call Handler to mount it yourself or
// Start to listen in the background.
func NewServer(src Source) *Server {
	return &Server{src: src}
}

// SetJobs wires a job queue into the server, turning it into a sweep
// coordinator: Handler additionally mounts the job-submission API and the
// worker wire protocol. Call before Handler or Start.
func (s *Server) SetJobs(q *exp.JobQueue) { s.jobs = q }

// EnablePprof mounts the net/http/pprof handlers under /debug/pprof/ on
// the handler built afterwards. Opt-in (the CLI's -pprof flag) because the
// profile endpoints expose build and runtime internals and can run the
// CPU profiler on demand. Call before Handler or Start.
func (s *Server) EnablePprof() { s.pprofOn = true }

// Start begins listening on addr (e.g. ":8099"; ":0" picks a free port)
// and serves in a background goroutine until Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("ops: %w", err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler()}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return nil
}

// Serve starts an ops server on addr and serves in a background goroutine
// until Close — NewServer plus Start for callers that need no options.
func Serve(addr string, src Source) (*Server, error) {
	s := NewServer(src)
	if err := s.Start(addr); err != nil {
		return nil, err
	}
	return s, nil
}

// Addr returns the bound listen address ("127.0.0.1:8099"), or "" before
// Serve.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener. In-flight scrapes are abandoned; the endpoints
// are stateless so nothing is lost.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

//go:embed dashboard.html
var dashboardHTML []byte

// Handler returns the ops mux: /metrics, /status, /sharing, /dashboard,
// a plain-text index at /, the job-submission API and worker wire
// protocol when SetJobs was called, and — when EnablePprof was called —
// the net/http/pprof handlers under /debug/pprof/.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/status", s.status)
	mux.HandleFunc("/sharing", s.sharing)
	mux.HandleFunc("/dashboard", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write(dashboardHTML) //nolint:errcheck // client hangup is benign
	})
	if s.jobs != nil {
		mux.HandleFunc("POST /jobs", s.submitJob)
		mux.HandleFunc("GET /jobs", s.listJobs)
		mux.HandleFunc("GET /jobs/{id}", s.getJob)
		mux.HandleFunc("POST /worker/lease", s.workerLease)
		mux.HandleFunc("POST /worker/heartbeat", s.workerHeartbeat)
		mux.HandleFunc("POST /worker/result", s.workerResult)
	}
	if s.pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "ccsim sweep ops plane\n/metrics    Prometheus text\n/status     JSON run table\n/sharing    JSON sharing-pattern aggregate\n/dashboard  live HTML sweep dashboard\n")
		if s.jobs != nil {
			fmt.Fprint(w, "/jobs       job-submission API (POST a Config; GET to list)\n/worker/*   worker wire protocol (lease, heartbeat, result)\n")
		}
		if s.pprofOn {
			fmt.Fprint(w, "/debug/pprof/  live profiling (pprof)\n")
		}
	})
	return mux
}

// submitJob is POST /jobs: decode one simulation Config, enqueue it (or
// join the existing job for the same fingerprint), and return the job's
// view.
func (s *Server) submitJob(w http.ResponseWriter, r *http.Request) {
	var cfg ccsim.Config
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		http.Error(w, "bad config: "+err.Error(), http.StatusBadRequest)
		return
	}
	v, err := s.jobs.SubmitJob(cfg)
	if err != nil {
		if errors.Is(err, exp.ErrUncacheable) {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, v)
}

// listJobs is GET /jobs: every job in submission order.
func (s *Server) listJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.jobs.Jobs())
}

// getJob is GET /jobs/{id}: one job's state and, once resolved, its
// Result or error.
func (s *Server) getJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad job id", http.StatusBadRequest)
		return
	}
	v, ok := s.jobs.Job(id)
	if !ok {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, v)
}

// workerLease is POST /worker/lease: hand the longest-queued leasable job
// to the calling worker. 204 when nothing is queued; 409 when the worker's
// Result schema does not match this coordinator's.
func (s *Server) workerLease(w http.ResponseWriter, r *http.Request) {
	var req exp.LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad lease request: "+err.Error(), http.StatusBadRequest)
		return
	}
	wj, err := s.jobs.Lease(req.Worker, req.Schema)
	if err != nil {
		if errors.Is(err, exp.ErrSchemaSkew) {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if wj == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, wj)
}

// workerHeartbeat is POST /worker/heartbeat: extend a lease. 410 means the
// lease already expired or resolved — the worker must abandon the job.
func (s *Server) workerHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req exp.HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad heartbeat: "+err.Error(), http.StatusBadRequest)
		return
	}
	if !s.jobs.Heartbeat(req.ID, req.Lease, req.Worker) {
		http.Error(w, "lease gone", http.StatusGone)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// workerResult is POST /worker/result: deliver a leased job's outcome.
// 410 means the lease already expired or the job resolved elsewhere; the
// delivery is discarded.
func (s *Server) workerResult(w http.ResponseWriter, r *http.Request) {
	var wr exp.WireResult
	if err := json.NewDecoder(r.Body).Decode(&wr); err != nil {
		http.Error(w, "bad result: "+err.Error(), http.StatusBadRequest)
		return
	}
	if !s.jobs.Complete(wr) {
		http.Error(w, "lease gone", http.StatusGone)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// writeJSON writes v as an indented JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client hangup is benign
}

// RunStatus is one row of /status's run table.
type RunStatus struct {
	ID       uint64 `json:"id"`
	RunID    string `json:"run_id"`
	Workload string `json:"workload"`
	Protocol string `json:"protocol"`
	// Events and SimTimePclocks are the run's position, published by the
	// engine every few thousand events.
	Events         uint64 `json:"events"`
	SimTimePclocks int64  `json:"sim_time_pclocks"`
	// EventsPerSec is the run's average event rate since its start.
	EventsPerSec float64 `json:"events_per_sec"`
	// WallSeconds is the run's age; HeartbeatAgeSeconds is the time since
	// the engine last published. A heartbeat age far above WallSeconds'
	// growth rate means the run is wedged inside one event.
	WallSeconds         float64 `json:"wall_seconds"`
	HeartbeatAgeSeconds float64 `json:"heartbeat_age_seconds"`
}

// FailureStatus is one row of /status's fault ledger.
type FailureStatus struct {
	RunID    string `json:"run_id"`
	Workload string `json:"workload"`
	Protocol string `json:"protocol"`
	// Kind is the structured fault kind ("max-events", "panic", ...) or
	// "error" for failures that are not simulation faults (e.g. a
	// metrics-write error).
	Kind  string `json:"kind"`
	Error string `json:"error"`
}

// Status is the /status document.
type Status struct {
	UnixNanos int64           `json:"unix_nanos"`
	Scheduler exp.SchedStats  `json:"scheduler"`
	Runs      []RunStatus     `json:"runs"`
	Failures  []FailureStatus `json:"failures"`
}

// snapshot assembles the full status view at one instant.
func (s *Server) snapshot() Status {
	now := time.Now()
	live := s.src.LiveRuns()
	st := Status{
		UnixNanos: now.UnixNano(),
		Scheduler: s.src.Stats(),
		Runs:      make([]RunStatus, 0, len(live)),
	}
	for _, lr := range live {
		ps := lr.Progress.Snapshot()
		rs := RunStatus{
			ID:             lr.ID,
			RunID:          lr.RunID,
			Workload:       lr.Workload,
			Protocol:       lr.Protocol,
			Events:         ps.Events,
			SimTimePclocks: ps.SimTime,
			EventsPerSec:   ps.EventsPerSec(),
		}
		if ps.Start > 0 {
			rs.WallSeconds = now.Sub(time.Unix(0, ps.Start)).Seconds()
		}
		if age := ps.HeartbeatAge(now); age > 0 {
			rs.HeartbeatAgeSeconds = age.Seconds()
		}
		st.Runs = append(st.Runs, rs)
	}
	for _, f := range s.src.Failed() {
		fs := FailureStatus{
			RunID:    exp.RunID(f.Cfg),
			Workload: f.Cfg.Workload,
			Protocol: f.Cfg.ProtocolName(),
			Kind:     "error",
		}
		if f.Err != nil {
			fs.Error = f.Err.Error()
			if sf, ok := ccsim.AsFault(f.Err); ok {
				fs.Kind = sf.Kind
			}
		}
		st.Failures = append(st.Failures, fs)
	}
	return st
}

func (s *Server) status(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.snapshot()) //nolint:errcheck // client hangup mid-scrape is benign
}

// sharing serves the sweep-wide sharing-pattern aggregate. The report is
// null until at least one run with analytics attached completes.
func (s *Server) sharing(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	doc := struct {
		UnixNanos int64                `json:"unix_nanos"`
		Sharing   *ccsim.SharingReport `json:"sharing"`
	}{time.Now().UnixNano(), s.src.SharingReport()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc) //nolint:errcheck // client hangup mid-scrape is benign
}

func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	st := s.snapshot()
	var b strings.Builder

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	sch := st.Scheduler
	counter("ccsim_sched_submitted_total", "Simulations submitted, including run-cache hits.", sch.Submitted)
	counter("ccsim_sched_unique_total", "Distinct configurations actually simulated.", sch.Unique)
	counter("ccsim_sched_dedup_hits_total", "Submissions served by the run cache without a new simulation.", sch.DedupHits)
	counter("ccsim_sched_completed_total", "Runs finished without error.", sch.Completed)
	counter("ccsim_sched_faults_total", "Runs finished with an error: contained panics, watchdog aborts, metrics-write failures.", sch.Failed)
	counter("ccsim_dropped_spans_total", "Telemetry spans discarded by span-buffer overflow across completed runs; nonzero means timelines undercount.", sch.DroppedSpans)
	counter("ccsim_sched_retries_total", "Re-executions of transiently-faulted runs under the retry policy.", sch.Retries)
	counter("ccsim_sched_interrupted_total", "Runs abandoned by graceful shutdown: before execution or mid-retry-backoff.", sch.Interrupted)
	gauge("ccsim_sched_queued", "Runs waiting for a worker slot.", sch.Queued)
	gauge("ccsim_sched_running", "Runs executing right now.", sch.Running)

	if jq := sch.Jobs; jq != nil {
		counter("ccsim_jobs_submitted_total", "Jobs entered into the coordinator's queue (one per unique cacheable run).", jq.Submitted)
		counter("ccsim_jobs_api_submitted_total", "POST /jobs submissions accepted, including fingerprint duplicates joining existing jobs.", jq.APISubmitted)
		gauge("ccsim_jobs_queued", "Jobs waiting to be claimed by a local slot or leased by a worker.", jq.Queued)
		gauge("ccsim_jobs_leased", "Jobs currently leased to remote workers.", jq.Leased)
		counter("ccsim_jobs_local_claimed_total", "Jobs claimed by the coordinator's own worker slots.", jq.LocalClaimed)
		counter("ccsim_jobs_remote_completed_total", "Jobs whose Result a remote worker delivered.", jq.RemoteCompleted)
		counter("ccsim_jobs_remote_failed_total", "Jobs whose remote worker delivered a fault instead of a Result.", jq.RemoteFailed)
		counter("ccsim_jobs_lease_expired_total", "Worker leases that stopped heartbeating and re-queued their job.", jq.LeaseExpired)
		counter("ccsim_jobs_rejected_total", "Worker requests refused: schema skew, stale leases, deliveries for resolved jobs.", jq.Rejected)
		if len(jq.Workers) > 0 {
			workerHdr := func(name, help, typ string) {
				fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
			}
			workerHdr("ccsim_worker_leases", "Jobs a worker currently holds leases on.", "gauge")
			for _, ws := range jq.Workers {
				fmt.Fprintf(&b, "ccsim_worker_leases{worker=%s} %d\n", labelValue(ws.Name), ws.Leases)
			}
			workerHdr("ccsim_worker_jobs_total", "Jobs a worker has delivered results for.", "counter")
			for _, ws := range jq.Workers {
				fmt.Fprintf(&b, "ccsim_worker_jobs_total{worker=%s} %d\n", labelValue(ws.Name), ws.Jobs)
			}
			workerHdr("ccsim_worker_heartbeat_age_seconds", "Seconds since a worker last contacted the coordinator; ages past the lease TTL mean its leases are expiring.", "gauge")
			for _, ws := range jq.Workers {
				fmt.Fprintf(&b, "ccsim_worker_heartbeat_age_seconds{worker=%s} %g\n", labelValue(ws.Name), ws.HeartbeatAgeSeconds)
			}
		}
	}

	if sch.Store != nil {
		counter("ccsim_store_hits_total", "Runs served from the durable result store without simulating.", sch.Store.Hits)
		counter("ccsim_store_misses_total", "Store lookups that fell through to a real simulation.", sch.Store.Misses)
		counter("ccsim_store_writes_total", "Results persisted to the durable store.", sch.Store.Writes)
		counter("ccsim_store_quarantined_total", "Corrupt or truncated store entries moved to the quarantine directory and re-run.", sch.Store.Quarantined)
	}

	if eng := sch.Engine; eng != nil {
		counter("ccsim_engine_events_dispatched_total", "Events executed by simulated runs' event engines (store hits excluded).", eng.Dispatched)
		counter("ccsim_engine_wheel_scheduled_total", "Events scheduled directly into a calendar-wheel bucket.", eng.WheelScheduled)
		counter("ccsim_engine_overflow_scheduled_total", "Events scheduled beyond the wheel window into the overflow heap.", eng.OverflowScheduled)
		counter("ccsim_engine_migrations_total", "Overflow events migrated into the wheel as the window reached them.", eng.Migrations)
		counter("ccsim_engine_cohorts_total", "Same-timestamp dispatch batches executed.", eng.Cohorts)
		counter("ccsim_engine_capped_batches_total", "Dispatch batches stopped at the watchdog's event budget with the cohort still non-empty.", eng.CappedBatches)
		gauge("ccsim_engine_wheel_occupancy_highwater", "Peak number of events resident in wheel buckets in any single run.", eng.WheelHighWater)
		gauge("ccsim_engine_overflow_highwater", "Peak overflow-heap depth in any single run.", eng.OverflowHighWater)
		gauge("ccsim_engine_max_cohort_events", "Largest single dispatch batch across simulated runs.", int(eng.MaxCohort))
		const ch = "ccsim_engine_cohort_size_events"
		fmt.Fprintf(&b, "# HELP %s Distribution of same-timestamp cohort sizes (log2 buckets; cumulative histogram).\n# TYPE %s histogram\n", ch, ch)
		var cum uint64
		for i, n := range eng.CohortSizeLog2 {
			cum += n
			fmt.Fprintf(&b, "%s_bucket{le=%s} %d\n", ch, labelValue(fmt.Sprint(ccsim.CohortBucketMax(i))), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", ch, cum)
		fmt.Fprintf(&b, "%s_sum %d\n", ch, eng.Dispatched)
		fmt.Fprintf(&b, "%s_count %d\n", ch, eng.Cohorts)
	}

	// durations renders a []DurationStats as one Prometheus summary family
	// with quantile samples plus _sum/_count, skipping phases that never
	// ran (and the whole family when nothing has).
	durations := func(name, help, label string, ds []exp.DurationStats) {
		any := false
		for _, d := range ds {
			if d.Count > 0 {
				any = true
				break
			}
		}
		if !any {
			return
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s summary\n", name, help, name)
		for _, d := range ds {
			if d.Count == 0 {
				continue
			}
			for _, qv := range []struct {
				q string
				v float64
			}{{"0.5", d.P50Seconds}, {"0.95", d.P95Seconds}, {"0.99", d.P99Seconds}, {"max", d.MaxSeconds}} {
				fmt.Fprintf(&b, "%s{%s=%s,quantile=%s} %g\n", name, label, labelValue(d.Phase), labelValue(qv.q), qv.v)
			}
		}
		for _, d := range ds {
			if d.Count == 0 {
				continue
			}
			fmt.Fprintf(&b, "%s_sum{%s=%s} %g\n", name, label, labelValue(d.Phase), d.SumSeconds)
			fmt.Fprintf(&b, "%s_count{%s=%s} %d\n", name, label, labelValue(d.Phase), d.Count)
		}
	}
	durations("ccsim_sched_duration_seconds",
		"Per-run lifecycle decomposition: time spent per scheduler phase (bucketed upper-bound quantiles; max exact).",
		"phase", sch.Lifecycle)
	if sch.Store != nil {
		durations("ccsim_store_duration_seconds",
			"Durable-store operation latencies: entry reads, validation, and atomic commits (bucketed upper-bound quantiles; max exact).",
			"op", sch.Store.Ops)
	}

	perRun := func(name, help, typ string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	if len(st.Runs) > 0 {
		perRun("ccsim_run_events_total", "Simulation events executed by a live run.", "counter")
		for _, r := range st.Runs {
			fmt.Fprintf(&b, "ccsim_run_events_total{%s} %d\n", runLabels(r), r.Events)
		}
		perRun("ccsim_run_sim_time_pclocks", "A live run's current simulated time.", "gauge")
		for _, r := range st.Runs {
			fmt.Fprintf(&b, "ccsim_run_sim_time_pclocks{%s} %d\n", runLabels(r), r.SimTimePclocks)
		}
		perRun("ccsim_run_events_per_second", "A live run's average event rate since start.", "gauge")
		for _, r := range st.Runs {
			fmt.Fprintf(&b, "ccsim_run_events_per_second{%s} %g\n", runLabels(r), r.EventsPerSec)
		}
		perRun("ccsim_run_heartbeat_age_seconds", "Seconds since a live run's engine last published progress.", "gauge")
		for _, r := range st.Runs {
			fmt.Fprintf(&b, "ccsim_run_heartbeat_age_seconds{%s} %g\n", runLabels(r), r.HeartbeatAgeSeconds)
		}
	}

	if rep := s.src.SharingReport(); rep != nil && len(rep.Classes) > 0 {
		perClass := func(name, help, typ string, v func(c ccsim.SharingClassStats) uint64) {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
			for _, c := range rep.Classes {
				fmt.Fprintf(&b, "%s{class=%s} %d\n", name, labelValue(c.Class), v(c))
			}
		}
		perClass("ccsim_sharing_blocks", "Blocks carrying each sharing-pattern label across analyzed runs.", "gauge",
			func(c ccsim.SharingClassStats) uint64 { return c.Blocks })
		perClass("ccsim_sharing_reads_total", "Processor reads attributed to each sharing class.", "counter",
			func(c ccsim.SharingClassStats) uint64 { return c.Reads })
		perClass("ccsim_sharing_writes_total", "Processor writes attributed to each sharing class.", "counter",
			func(c ccsim.SharingClassStats) uint64 { return c.Writes })
		perClass("ccsim_sharing_misses_total", "SLC demand read misses attributed to each sharing class.", "counter",
			func(c ccsim.SharingClassStats) uint64 { return c.Misses })
		perClass("ccsim_sharing_invalidations_total", "Coherence invalidations attributed to each sharing class.", "counter",
			func(c ccsim.SharingClassStats) uint64 { return c.Invalidations })
		perClass("ccsim_sharing_updates_total", "Write-update deliveries attributed to each sharing class.", "counter",
			func(c ccsim.SharingClassStats) uint64 { return c.Updates })

		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n",
			"ccsim_sharing_traffic_bytes_total", "Network bytes attributed to each sharing class, by message kind.",
			"ccsim_sharing_traffic_bytes_total")
		for _, c := range rep.Classes {
			for _, kb := range []struct {
				kind string
				v    uint64
			}{{"control", c.CtlBytes}, {"data", c.DataBytes}, {"update", c.UpdateBytes}} {
				fmt.Fprintf(&b, "ccsim_sharing_traffic_bytes_total{class=%s,kind=%s} %d\n",
					labelValue(c.Class), labelValue(kb.kind), kb.v)
			}
		}

		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n",
			"ccsim_sharing_miss_latency_pclocks", "Demand-miss service-time distribution per sharing class (bucketed upper bounds; max is exact).",
			"ccsim_sharing_miss_latency_pclocks")
		for _, c := range rep.Classes {
			for _, qv := range []struct {
				q string
				v int64
			}{{"0.5", c.MissLatencyP50}, {"0.95", c.MissLatencyP95}, {"0.99", c.MissLatencyP99}, {"max", c.MissLatencyMax}} {
				fmt.Fprintf(&b, "ccsim_sharing_miss_latency_pclocks{class=%s,quantile=%s} %d\n",
					labelValue(c.Class), labelValue(qv.q), qv.v)
			}
		}
	}
	w.Write([]byte(b.String())) //nolint:errcheck // client hangup mid-scrape is benign
}

func runLabels(r RunStatus) string {
	return fmt.Sprintf(`run="%d",workload=%s,protocol=%s`,
		r.ID, labelValue(r.Workload), labelValue(r.Protocol))
}

// labelValue quotes a Prometheus label value, escaping backslash, quote
// and newline per the text exposition format.
func labelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return `"` + v + `"`
}
