package ops

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"ccsim"
	"ccsim/exp"
	"ccsim/internal/sim"
)

// fakeSource is a Source with fixed stats, runs, failures and sharing
// report.
type fakeSource struct {
	mu      sync.Mutex
	stats   exp.SchedStats
	runs    []exp.LiveRun
	failed  []exp.FailedRun
	sharing *ccsim.SharingReport
}

func (f *fakeSource) Stats() exp.SchedStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

func (f *fakeSource) LiveRuns() []exp.LiveRun {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]exp.LiveRun(nil), f.runs...)
}

func (f *fakeSource) Failed() []exp.FailedRun {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]exp.FailedRun(nil), f.failed...)
}

func (f *fakeSource) SharingReport() *ccsim.SharingReport {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sharing
}

// driveProbe runs a real engine with the probe attached so its counters
// hold simulation-realistic values.
func driveProbe(t *testing.T, p *ccsim.Progress) {
	t.Helper()
	e := sim.NewEngine()
	e.SetProgress(p)
	n := 0
	var tick func()
	tick = func() {
		n++
		e.Progress()
		if n < 20000 {
			e.After(3, tick)
		}
	}
	e.After(1, tick)
	if f := e.RunWatched(&sim.Watchdog{}); f != nil {
		t.Fatalf("probe drive faulted: %v", f)
	}
}

func testSource(t *testing.T) *fakeSource {
	t.Helper()
	p := &ccsim.Progress{Label: "mp3d/P+CW"}
	driveProbe(t, p)
	engine := ccsim.QueueStats{
		Dispatched: 40000, WheelScheduled: 39000, OverflowScheduled: 1000,
		Migrations: 1000, Cohorts: 9000, CappedBatches: 6, MaxCohort: 32,
		WheelHighWater: 512, OverflowHighWater: 48,
	}
	engine.CohortSizeLog2[0] = 7000
	engine.CohortSizeLog2[2] = 2000
	dur := func(phase string, n uint64) exp.DurationStats {
		return exp.DurationStats{
			Phase: phase, Count: n, SumSeconds: float64(n) * 0.002,
			P50Seconds: 0.001, P95Seconds: 0.003, P99Seconds: 0.004, MaxSeconds: 0.005,
		}
	}
	failedCfg := ccsim.DefaultConfig()
	failedCfg.Workload = "water"
	return &fakeSource{
		stats: exp.SchedStats{
			Submitted: 275, Unique: 200, DedupHits: 75,
			Queued: 10, Running: 2, Completed: 180, Failed: 8,
			DroppedSpans: 3, Retries: 5, Interrupted: 4,
			Engine: &engine,
			Lifecycle: []exp.DurationStats{
				dur("queue_wait", 180), dur("simulate", 185),
				dur("retry_wait", 5),
				dur("store_put", 140), dur("metrics_write", 180),
			},
			Jobs: &exp.JobStats{
				Submitted: 200, APISubmitted: 30, Queued: 10, Leased: 2,
				LocalClaimed: 150, RemoteCompleted: 37, RemoteFailed: 1,
				LeaseExpired: 2, Rejected: 3,
				Workers: []exp.WorkerStatus{
					{Name: "node-a-4711", Leases: 2, Jobs: 38, HeartbeatAgeSeconds: 0.4},
				},
			},
			Store: &exp.StoreStats{
				Dir: "/tmp/cache", Hits: 60, Misses: 140, Writes: 140, Quarantined: 2,
				Ops: []exp.DurationStats{
					dur("read", 60), dur("validate", 60), dur("write", 140),
				},
			},
		},
		runs: []exp.LiveRun{
			{ID: 1, RunID: "mp3d/P+CW/0a1b2c3d", Workload: "mp3d", Protocol: "P+CW", Progress: p},
			{ID: 2, Workload: "ocean", Protocol: "BASIC-SC", Progress: &ccsim.Progress{}},
		},
		failed: []exp.FailedRun{
			{Cfg: failedCfg, Err: &ccsim.SimFault{Kind: ccsim.FaultMaxEvents}},
		},
		sharing: &ccsim.SharingReport{
			Blocks: 11,
			Classes: []ccsim.SharingClassStats{
				{Class: "read-only", Blocks: 7, Reads: 700},
				{Class: "migratory", Blocks: 4, Reads: 40, Writes: 40,
					Misses: 12, Invalidations: 9, Updates: 2, Msgs: 60,
					CtlBytes: 480, DataBytes: 384, UpdateBytes: 24,
					MissLatencyP50: 30, MissLatencyP95: 60, MissLatencyP99: 70, MissLatencyMax: 81},
			},
		},
	}
}

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.String()
}

// promLine matches one Prometheus text-format sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [-+0-9.eE]+$`)

// TestMetricsParses checks /metrics is well-formed exposition text and
// carries the scheduler gauges and per-run series.
func TestMetricsParses(t *testing.T) {
	h := NewServer(testSource(t)).Handler()
	code, body := get(t, h, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
	for _, want := range []string{
		"ccsim_sched_submitted_total 275",
		"ccsim_sched_dedup_hits_total 75",
		"ccsim_sched_queued 10",
		"ccsim_sched_running 2",
		"ccsim_sched_completed_total 180",
		"ccsim_sched_faults_total 8",
		`ccsim_run_events_total{run="1",workload="mp3d",protocol="P+CW"} 20000`,
		`ccsim_run_sim_time_pclocks{run="1",workload="mp3d",protocol="P+CW"}`,
		`ccsim_run_events_per_second{run="1"`,
		`ccsim_run_heartbeat_age_seconds{run="2",workload="ocean",protocol="BASIC-SC"} 0`,
		"ccsim_dropped_spans_total 3",
		"ccsim_sched_retries_total 5",
		"ccsim_sched_interrupted_total 4",
		"ccsim_store_hits_total 60",
		"ccsim_store_misses_total 140",
		"ccsim_store_writes_total 140",
		"ccsim_store_quarantined_total 2",
		`ccsim_sharing_blocks{class="migratory"} 4`,
		`ccsim_sharing_misses_total{class="migratory"} 12`,
		`ccsim_sharing_reads_total{class="read-only"} 700`,
		`ccsim_sharing_traffic_bytes_total{class="migratory",kind="update"} 24`,
		`ccsim_sharing_miss_latency_pclocks{class="migratory",quantile="0.95"} 60`,
		"ccsim_engine_events_dispatched_total 40000",
		"ccsim_engine_wheel_scheduled_total 39000",
		"ccsim_engine_overflow_scheduled_total 1000",
		"ccsim_engine_migrations_total 1000",
		"ccsim_engine_cohorts_total 9000",
		"ccsim_engine_capped_batches_total 6",
		"ccsim_engine_wheel_occupancy_highwater 512",
		"ccsim_engine_overflow_highwater 48",
		"ccsim_engine_max_cohort_events 32",
		`ccsim_engine_cohort_size_events_bucket{le="1"} 7000`,
		`ccsim_engine_cohort_size_events_bucket{le="7"} 9000`,
		`ccsim_engine_cohort_size_events_bucket{le="+Inf"} 9000`,
		"ccsim_engine_cohort_size_events_sum 40000",
		"ccsim_engine_cohort_size_events_count 9000",
		"ccsim_jobs_submitted_total 200",
		"ccsim_jobs_api_submitted_total 30",
		"ccsim_jobs_queued 10",
		"ccsim_jobs_leased 2",
		"ccsim_jobs_local_claimed_total 150",
		"ccsim_jobs_remote_completed_total 37",
		"ccsim_jobs_remote_failed_total 1",
		"ccsim_jobs_lease_expired_total 2",
		"ccsim_jobs_rejected_total 3",
		`ccsim_worker_leases{worker="node-a-4711"} 2`,
		`ccsim_worker_jobs_total{worker="node-a-4711"} 38`,
		`ccsim_worker_heartbeat_age_seconds{worker="node-a-4711"} 0.4`,
		`ccsim_sched_duration_seconds{phase="queue_wait",quantile="0.5"} 0.001`,
		`ccsim_sched_duration_seconds{phase="simulate",quantile="max"} 0.005`,
		`ccsim_sched_duration_seconds{phase="retry_wait",quantile="0.95"} 0.003`,
		`ccsim_sched_duration_seconds_sum{phase="simulate"} 0.37`,
		`ccsim_sched_duration_seconds_count{phase="retry_wait"} 5`,
		`ccsim_sched_duration_seconds_count{phase="store_put"} 140`,
		`ccsim_store_duration_seconds{op="write",quantile="0.99"} 0.004`,
		`ccsim_store_duration_seconds_sum{op="read"} 0.12`,
		`ccsim_store_duration_seconds_count{op="validate"} 60`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\nbody:\n%s", want, body)
		}
	}
}

// docSeries matches a backticked ccsim_* series name in the EXPERIMENTS.md
// catalogue table.
var docSeries = regexp.MustCompile("`(ccsim_[a-z0-9_]+)`")

// TestMetricsCatalogueInSync asserts the Prometheus catalogue table in
// EXPERIMENTS.md names exactly the series a fully-populated /metrics scrape
// serves — no undocumented series, no stale documentation.
func TestMetricsCatalogueInSync(t *testing.T) {
	doc, err := os.ReadFile("../../EXPERIMENTS.md")
	if err != nil {
		t.Fatal(err)
	}
	documented := map[string]bool{}
	for _, m := range docSeries.FindAllStringSubmatch(string(doc), -1) {
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("no ccsim_* series documented in EXPERIMENTS.md")
	}

	// testSource populates every series family: scheduler counters and
	// gauges, live runs, dropped spans, and a sharing report.
	_, body := get(t, NewServer(testSource(t)).Handler(), "/metrics")
	served := map[string]bool{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		served[name] = true
	}

	for name := range served {
		if !documented[name] {
			t.Errorf("series %s served by /metrics but missing from the EXPERIMENTS.md catalogue", name)
		}
	}
	for name := range documented {
		if !served[name] {
			t.Errorf("series %s documented in EXPERIMENTS.md but never served by a fully-populated /metrics", name)
		}
	}
}

func post(t *testing.T, h http.Handler, path string, body any) (int, string) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", path, strings.NewReader(string(b))))
	return rec.Code, rec.Body.String()
}

// TestJobsAPIEndToEnd drives the whole coordinator surface over HTTP: a
// config POSTed to /jobs is leased by a (simulated) worker through
// /worker/lease, kept alive via /worker/heartbeat, delivered through
// /worker/result, and its Result then shows on GET /jobs/{id} — plus every
// rejection path: bad JSON, unknown job, schema skew, stale lease.
func TestJobsAPIEndToEnd(t *testing.T) {
	sched := exp.NewScheduler(1, "")
	q := exp.NewJobQueue(sched, exp.JobQueueOptions{LeaseTTL: time.Minute})
	defer q.Close()
	srv := NewServer(sched)
	srv.SetJobs(q)
	h := srv.Handler()

	// Pin the only slot with an uncacheable run (side channel attached →
	// never offered to the job queue), so the POSTed job below stays queued
	// and the lease is deterministic.
	blocker := ccsim.DefaultConfig()
	blocker.Workload = "mp3d"
	blocker.Scale = 0.25
	blocker.Procs = 8
	blocker.Progress = &ccsim.Progress{}
	pa := sched.Submit(blocker)
	for sched.Stats().Running == 0 {
		time.Sleep(time.Millisecond)
	}

	cfg := ccsim.DefaultConfig()
	cfg.Workload = "mp3d"
	cfg.Scale = 0.05
	cfg.Procs = 4
	code, body := post(t, h, "/jobs", cfg)
	if code != 200 {
		t.Fatalf("POST /jobs status %d: %s", code, body)
	}
	var v exp.JobView
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatalf("POST /jobs response not a JobView: %v\n%s", err, body)
	}
	if v.State != "queued" || v.Workload != "mp3d" || v.RunID == "" {
		t.Fatalf("submitted job view = %+v", v)
	}
	// A duplicate submission joins the existing job.
	if _, body2 := post(t, h, "/jobs", cfg); !strings.Contains(body2, v.RunID) {
		t.Fatalf("duplicate POST /jobs made a new job: %s", body2)
	}
	if code, _ := post(t, h, "/jobs", "not a config"); code != 400 {
		t.Fatalf("POST /jobs with garbage: status %d, want 400", code)
	}
	if code, _ := get(t, h, "/jobs/999999"); code != 404 {
		t.Fatalf("GET /jobs/999999 status %d, want 404", code)
	}
	if code, body := get(t, h, "/jobs"); code != 200 || !strings.Contains(body, v.RunID) {
		t.Fatalf("GET /jobs = %d %s", code, body)
	}

	// Worker protocol: schema skew is refused before any job moves.
	if code, _ := post(t, h, "/worker/lease", exp.LeaseRequest{Worker: "w1", Schema: "feedface0000"}); code != 409 {
		t.Fatalf("skewed lease status %d, want 409", code)
	}
	code, body = post(t, h, "/worker/lease", exp.LeaseRequest{Worker: "w1", Schema: exp.ResultSchemaVersion()})
	if code != 200 {
		t.Fatalf("lease status %d: %s", code, body)
	}
	var wj exp.WireJob
	if err := json.Unmarshal([]byte(body), &wj); err != nil {
		t.Fatalf("lease response not a WireJob: %v\n%s", err, body)
	}
	if wj.Key != v.Key || wj.Config.Workload != "mp3d" || wj.LeaseTTLSeconds != 60 {
		t.Fatalf("leased job = %+v, want the POSTed one", wj)
	}
	// The queue is now empty: the next lease polls dry.
	if code, _ := post(t, h, "/worker/lease", exp.LeaseRequest{Worker: "w2", Schema: exp.ResultSchemaVersion()}); code != 204 {
		t.Fatalf("dry lease status %d, want 204", code)
	}
	if code, _ := post(t, h, "/worker/heartbeat", exp.HeartbeatRequest{ID: wj.ID, Lease: wj.Lease, Worker: "w1"}); code != 204 {
		t.Fatalf("heartbeat status %d, want 204", code)
	}
	if code, _ := post(t, h, "/worker/heartbeat", exp.HeartbeatRequest{ID: wj.ID, Lease: "stale", Worker: "w1"}); code != 410 {
		t.Fatalf("stale heartbeat status %d, want 410", code)
	}

	res := &ccsim.Result{Workload: "mp3d", Protocol: "BASIC", ExecTime: 42}
	if code, _ := post(t, h, "/worker/result", exp.WireResult{ID: wj.ID, Lease: wj.Lease, Worker: "w1",
		Result: res, ElapsedMicros: 2500}); code != 204 {
		t.Fatalf("result delivery status %d, want 204", code)
	}
	if code, _ := post(t, h, "/worker/result", exp.WireResult{ID: wj.ID, Lease: wj.Lease, Worker: "w1",
		Result: res}); code != 410 {
		t.Fatalf("double delivery status %d, want 410", code)
	}
	code, body = get(t, h, fmt.Sprintf("/jobs/%d", wj.ID))
	if code != 200 {
		t.Fatalf("GET /jobs/{id} status %d", code)
	}
	var done exp.JobView
	if err := json.Unmarshal([]byte(body), &done); err != nil {
		t.Fatal(err)
	}
	if done.State != "completed" || done.Result == nil || done.Result.ExecTime != 42 || done.Worker != "w1" {
		t.Fatalf("delivered job view = %+v", done)
	}

	// /metrics and the index now carry the coordinator surface.
	if _, body := get(t, h, "/metrics"); !strings.Contains(body, "ccsim_jobs_remote_completed_total 1") ||
		!strings.Contains(body, `ccsim_worker_jobs_total{worker="w1"} 1`) {
		t.Fatalf("coordinator metrics missing:\n%s", body)
	}
	if _, body := get(t, h, "/"); !strings.Contains(body, "/jobs") || !strings.Contains(body, "/worker/") {
		t.Fatalf("index missing coordinator endpoints:\n%s", body)
	}

	// Shut the blocker down; its cancellation fault is expected.
	sched.Interrupt()
	pa.Wait() //nolint:errcheck // canceled by the interrupt above
}

// TestStatusJSON checks /status decodes and reports the driven probe's
// position.
func TestStatusJSON(t *testing.T) {
	h := NewServer(testSource(t)).Handler()
	code, body := get(t, h, "/status")
	if code != 200 {
		t.Fatalf("/status status %d", code)
	}
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status not JSON: %v\n%s", err, body)
	}
	if st.Scheduler.Submitted != 275 || st.Scheduler.Failed != 8 {
		t.Fatalf("scheduler stats lost: %+v", st.Scheduler)
	}
	if len(st.Runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(st.Runs))
	}
	r := st.Runs[0]
	if r.Workload != "mp3d" || r.Protocol != "P+CW" {
		t.Fatalf("run identity = %s/%s", r.Workload, r.Protocol)
	}
	if r.Events != 20000 {
		t.Fatalf("run events = %d, want 20000", r.Events)
	}
	if r.SimTimePclocks <= 0 {
		t.Fatalf("run sim time = %d, want > 0", r.SimTimePclocks)
	}
	if r.WallSeconds < 0 || r.HeartbeatAgeSeconds < 0 {
		t.Fatalf("negative wall/heartbeat: %+v", r)
	}
	if r.RunID != "mp3d/P+CW/0a1b2c3d" {
		t.Fatalf("run_id = %q, want scheduler-assigned id", r.RunID)
	}
	// Run 2 never started: all zeros, no NaN/Inf leakage into JSON
	// (json.Marshal would have failed on either).
	if st.Runs[1].Events != 0 || st.Runs[1].EventsPerSec != 0 {
		t.Fatalf("unstarted run reports progress: %+v", st.Runs[1])
	}
	if len(st.Failures) != 1 {
		t.Fatalf("failures = %d, want 1", len(st.Failures))
	}
	f := st.Failures[0]
	if f.Workload != "water" || f.Kind != ccsim.FaultMaxEvents {
		t.Fatalf("failure row = %+v", f)
	}
	if !strings.HasPrefix(f.RunID, "water/") || f.Error == "" {
		t.Fatalf("failure row missing run_id/error: %+v", f)
	}
}

// TestDashboardServes checks /dashboard ships the embedded HTML page.
func TestDashboardServes(t *testing.T) {
	rec := httptest.NewRecorder()
	NewServer(testSource(t)).Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/dashboard", nil))
	if rec.Code != 200 {
		t.Fatalf("/dashboard status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("/dashboard content type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{"ccsim sweep dashboard", "/status"} {
		if !strings.Contains(body, want) {
			t.Errorf("/dashboard missing %q", want)
		}
	}
}

// TestPprofGating checks the profiling endpoints stay dark unless the
// server was built with EnablePprof.
func TestPprofGating(t *testing.T) {
	srv := NewServer(testSource(t))
	if code, _ := get(t, srv.Handler(), "/debug/pprof/"); code != 404 {
		t.Fatalf("/debug/pprof/ status %d without opt-in, want 404", code)
	}
	srv.EnablePprof()
	code, body := get(t, srv.Handler(), "/debug/pprof/")
	if code != 200 {
		t.Fatalf("/debug/pprof/ status %d after EnablePprof", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index missing profile listing")
	}
	if code, _ := get(t, srv.Handler(), "/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}

// TestServeEndToEnd exercises the real listener path: Serve on :0, scrape
// both endpoints over TCP, Close.
func TestServeEndToEnd(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", testSource(t))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Addr() == "" {
		t.Fatal("no bound address")
	}
	for _, path := range []string{"/", "/metrics", "/status", "/sharing"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Fatalf("GET %s: empty body", path)
		}
	}
	if resp, err := http.Get("http://" + srv.Addr() + "/nope"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != 404 {
			t.Fatalf("GET /nope: status %d, want 404", resp.StatusCode)
		}
	}
}

// TestScrapeDuringSweep scrapes a live scheduler mid-sweep — the
// acceptance path: every live run visible with advancing simulated time.
// Run under -race this also proves scrape vs simulation safety.
func TestScrapeDuringSweep(t *testing.T) {
	sched := exp.NewScheduler(2, "")
	h := NewServer(sched).Handler()
	var pends []*exp.Pending
	for _, wl := range []string{"mp3d", "ocean"} {
		for _, ext := range []ccsim.Ext{{}, {P: true}, {M: true}, {CW: true}} {
			cfg := ccsim.DefaultConfig()
			cfg.Workload = wl
			// Big enough that the sweep outlasts scheduling hiccups of the
			// scraping goroutine even on a loaded machine; the loop below
			// stops at first drain, so the typical cost stays low.
			cfg.Scale = 0.25
			cfg.Procs = 8
			cfg.Extensions = ext
			pends = append(pends, sched.Submit(cfg))
		}
	}
	// Scrape continuously until the sweep drains.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, p := range pends {
			p.Wait() //nolint:errcheck // failures checked below
		}
	}()
	sawLive := false
	for {
		select {
		case <-done:
		default:
		}
		code, body := get(t, h, "/status")
		if code != 200 {
			t.Fatalf("/status status %d", code)
		}
		var st Status
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatalf("mid-sweep /status not JSON: %v", err)
		}
		if len(st.Runs) > 0 {
			sawLive = true
		}
		if code, _ := get(t, h, "/metrics"); code != 200 {
			t.Fatalf("/metrics status %d", code)
		}
		select {
		case <-done:
		default:
			continue
		}
		break
	}
	for i, p := range pends {
		if _, err := p.Wait(); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if !sawLive {
		t.Error("scrapes never observed a live run during an 8-run sweep")
	}
	if st := sched.Stats(); st.Completed != 8 || st.Running != 0 {
		t.Fatalf("post-sweep stats: %+v", st)
	}
}
