package sim

import "testing"

// TestQueueStatsCounting drives both scheduling paths and checks the
// counter invariants: every dispatched event entered the wheel either
// directly (WheelScheduled) or by migration from the overflow heap
// (Migrations), and the cohort histogram accounts for every batch.
func TestQueueStatsCounting(t *testing.T) {
	eng := NewEngine()
	ran := 0
	for i := 0; i < 3; i++ {
		eng.After(Time(i*5), func() { ran++ })
	}
	// Far beyond the wheel window: overflow heap, then migration.
	eng.After(100_000, func() { ran++ })
	eng.After(100_001, func() { ran++ })
	eng.Run()

	q := eng.QueueStats()
	if ran != 5 || q.Dispatched != 5 {
		t.Fatalf("dispatched = %d (ran %d), want 5", q.Dispatched, ran)
	}
	if q.WheelScheduled != 3 {
		t.Errorf("WheelScheduled = %d, want 3", q.WheelScheduled)
	}
	if q.OverflowScheduled != 2 {
		t.Errorf("OverflowScheduled = %d, want 2", q.OverflowScheduled)
	}
	if q.Migrations != 2 {
		t.Errorf("Migrations = %d, want 2 (both overflow events must migrate)", q.Migrations)
	}
	if q.WheelScheduled+q.Migrations != q.Dispatched {
		t.Errorf("WheelScheduled %d + Migrations %d != Dispatched %d",
			q.WheelScheduled, q.Migrations, q.Dispatched)
	}
	if q.Cohorts == 0 || q.Cohorts > q.Dispatched {
		t.Errorf("Cohorts = %d, want in [1, %d]", q.Cohorts, q.Dispatched)
	}
	var histTotal uint64
	for _, n := range q.CohortSizeLog2 {
		histTotal += n
	}
	if histTotal != q.Cohorts {
		t.Errorf("cohort histogram sums to %d, want Cohorts %d", histTotal, q.Cohorts)
	}
	if q.MaxCohort == 0 || q.MaxCohort > q.Dispatched {
		t.Errorf("MaxCohort = %d, want in [1, %d]", q.MaxCohort, q.Dispatched)
	}
	if q.WheelHighWater < 3 {
		t.Errorf("WheelHighWater = %d, want >= 3 (three events were wheel-resident)", q.WheelHighWater)
	}
	if q.OverflowHighWater != 2 {
		t.Errorf("OverflowHighWater = %d, want 2", q.OverflowHighWater)
	}
	if q.CappedBatches != 0 {
		t.Errorf("CappedBatches = %d, want 0 (Run never caps)", q.CappedBatches)
	}
}

// TestQueueStatsCappedBatches pins the watchdog-batching signal: a Step()
// against a multi-event cohort stops at its one-event budget with the
// cohort non-empty, and must count as a capped batch.
func TestQueueStatsCappedBatches(t *testing.T) {
	eng := NewEngine()
	n := 0
	for i := 0; i < 3; i++ {
		eng.After(10, func() { n++ })
	}
	if !eng.Step() {
		t.Fatal("Step ran nothing")
	}
	q := eng.QueueStats()
	if q.CappedBatches != 1 {
		t.Fatalf("CappedBatches after split cohort = %d, want 1", q.CappedBatches)
	}
	eng.Run()
	q = eng.QueueStats()
	if q.Dispatched != 3 || n != 3 {
		t.Fatalf("Dispatched = %d (ran %d), want 3", q.Dispatched, n)
	}
	if q.MaxCohort != 2 {
		t.Fatalf("MaxCohort = %d, want 2 (remainder of the split cohort)", q.MaxCohort)
	}
}

// TestQueueStatsMerge checks the sweep-aggregation semantics: counters and
// histogram buckets add, high-water marks take the max.
func TestQueueStatsMerge(t *testing.T) {
	a := QueueStats{Dispatched: 10, WheelScheduled: 8, OverflowScheduled: 2,
		Migrations: 2, Cohorts: 4, CappedBatches: 1, MaxCohort: 5,
		WheelHighWater: 7, OverflowHighWater: 2}
	a.CohortSizeLog2[0] = 3
	a.CohortSizeLog2[2] = 1
	b := QueueStats{Dispatched: 6, WheelScheduled: 6, Cohorts: 2,
		MaxCohort: 3, WheelHighWater: 9, OverflowHighWater: 1}
	b.CohortSizeLog2[0] = 1
	b.CohortSizeLog2[1] = 1

	a.Merge(b)
	if a.Dispatched != 16 || a.WheelScheduled != 14 || a.OverflowScheduled != 2 ||
		a.Migrations != 2 || a.Cohorts != 6 || a.CappedBatches != 1 {
		t.Fatalf("counter merge wrong: %+v", a)
	}
	if a.MaxCohort != 5 || a.WheelHighWater != 9 || a.OverflowHighWater != 2 {
		t.Fatalf("high-water merge wrong: %+v", a)
	}
	if a.CohortSizeLog2[0] != 4 || a.CohortSizeLog2[1] != 1 || a.CohortSizeLog2[2] != 1 {
		t.Fatalf("histogram merge wrong: %v", a.CohortSizeLog2)
	}
}

// TestCohortBucketMax pins the bucket-bound mapping the Prometheus
// exposition renders as histogram `le` labels.
func TestCohortBucketMax(t *testing.T) {
	for i, want := range []uint64{1, 3, 7, 15, 31} {
		if got := CohortBucketMax(i); got != want {
			t.Errorf("CohortBucketMax(%d) = %d, want %d", i, got, want)
		}
	}
}

// TestQueueStatsZeroAllocs pins the tentpole's cost contract: the always-on
// queue counters (and taking a QueueStats snapshot) add zero allocations
// per event on a warm engine, across both the wheel and overflow paths.
func TestQueueStatsZeroAllocs(t *testing.T) {
	eng := NewEngine()
	arg := &benchArg{}
	var snap QueueStats
	if n := testing.AllocsPerRun(50, func() {
		for i := 0; i < 512; i++ {
			eng.AfterCall(Time(i%7), benchStep, arg)
		}
		for i := 0; i < 64; i++ {
			eng.AfterCall(Time(100_000+i*997), benchStep, arg)
		}
		eng.Run()
		snap = eng.QueueStats()
	}); n != 0 {
		t.Fatalf("queue-stats instrumentation allocates %v times per run, want 0", n)
	}
	if snap.Dispatched == 0 {
		t.Fatal("snapshot empty after runs")
	}
}

// TestBenchGuardEngineCallEvents is the in-suite regression guard for the
// hot dispatch path: BenchmarkEngineCallEvents must stay allocation-free
// and within noise of the BENCH_PR7 archive's 23.7 ns/op now that the
// queue-stats counters ride it. The ceiling is deliberately loose (shared
// CI machines) — it catches an accidental O(1)→O(log n) or allocation
// regression, not a nanosecond drift; the archived benchjson compares
// track those. Skipped under -short and under the race detector, whose
// per-access instrumentation swamps the budget.
func TestBenchGuardEngineCallEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark guard skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("benchmark guard skipped under the race detector")
	}
	res := testing.Benchmark(BenchmarkEngineCallEvents)
	if res.AllocsPerOp() != 0 {
		t.Fatalf("engine call-event dispatch allocates %d allocs/op, want 0", res.AllocsPerOp())
	}
	const ceilingNs = 120
	if ns := res.NsPerOp(); ns > ceilingNs {
		t.Fatalf("engine call-event dispatch = %d ns/op, want <= %d (BENCH_PR7 baseline 23.7)", ns, ceilingNs)
	}
}
