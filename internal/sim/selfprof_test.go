package sim

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestSelfProfilerDisabledAddsNoAllocs pins the disabled path's cost: an
// engine with no profiler attached (the default) must dispatch events
// without allocating — the Step hook is a single nil check.
func TestSelfProfilerDisabledAddsNoAllocs(t *testing.T) {
	eng := NewEngine()
	arg := &benchArg{}
	if n := testing.AllocsPerRun(100, func() {
		for i := 0; i < 256; i++ {
			eng.AfterCall(Time(i%7), benchStep, arg)
		}
		eng.Run()
	}); n != 0 {
		t.Fatalf("profiler-less engine allocates %v times per run, want 0", n)
	}
}

// TestSelfProfilerAttributesCallbacks attaches a profiler, drains well over
// one sampling stride of events, and checks the profile resolves the
// callback by name and round-trips through the benchjson-shaped JSON.
func TestSelfProfilerAttributesCallbacks(t *testing.T) {
	eng := NewEngine()
	p := NewSelfProfiler()
	eng.SetSelfProfiler(p)
	arg := &benchArg{}
	const events = 64 * selfProfStride
	for i := 0; i < events; i++ {
		eng.AfterCall(Time(i%7), benchStep, arg)
	}
	eng.Run()
	if arg.n != events {
		t.Fatalf("ran %d of %d events", arg.n, events)
	}

	entries := p.Entries()
	if len(entries) == 0 {
		t.Fatal("profiler saw no samples after 64 strides of events")
	}
	var total float64
	found := false
	for _, e := range entries {
		total += e.Share
		if e.Samples <= 0 || e.Nanos < 0 {
			t.Errorf("entry %+v has non-positive samples or negative time", e)
		}
		if e.Name == "sim.benchStep" {
			found = true
		}
	}
	if !found {
		t.Errorf("no entry resolved to sim.benchStep: %+v", entries)
	}
	if total < 0.99 || total > 1.01 {
		t.Errorf("shares sum to %v, want ~1", total)
	}

	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var rows []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rows); err != nil {
		t.Fatalf("WriteJSON output not valid JSON: %v\n%s", err, buf.String())
	}
	if len(rows) != len(entries) {
		t.Fatalf("JSON has %d rows, Entries has %d", len(rows), len(entries))
	}
}
