package sim

import (
	"strconv"
	"strings"
	"testing"

	"ccsim/internal/fault"
)

// TestWatchdogMaxEvents runs a self-perpetuating event chain into the
// event ceiling and checks the fault blames it.
func TestWatchdogMaxEvents(t *testing.T) {
	e := NewEngine()
	var tick func()
	tick = func() { e.After(1, tick) }
	e.After(0, tick)
	f := e.RunWatched(&Watchdog{MaxEvents: 100})
	if f == nil {
		t.Fatal("runaway event chain completed under a 100-event ceiling")
	}
	if f.Kind != fault.KindMaxEvents {
		t.Fatalf("fault kind %q, want %q", f.Kind, fault.KindMaxEvents)
	}
	if e.Steps() != 100 {
		t.Fatalf("executed %d events before aborting, want exactly 100", e.Steps())
	}
}

// TestWatchdogDeadlock models two agents each waiting for the other's
// signal: the queue drains without quiescence, and the fault must name
// both stuck agents.
func TestWatchdogDeadlock(t *testing.T) {
	e := NewEngine()
	// Agent A grabs resource 1, agent B grabs resource 2; each then requests
	// the other's resource and parks its continuation in a wait list that
	// nothing will ever service — the classic ABBA deadlock, reduced to the
	// engine's view: activity, then an empty queue with both agents blocked.
	holder := map[int]string{}
	waiting := map[string]int{}
	grab := func(who string, res int) func() {
		return func() {
			if _, held := holder[res]; held {
				waiting[who] = res // parked forever: no release event exists
				return
			}
			holder[res] = who
		}
	}
	e.After(0, grab("A", 1))
	e.After(0, grab("B", 2))
	e.After(1, grab("A", 2))
	e.After(1, grab("B", 1))
	f := e.RunWatched(&Watchdog{
		Quiesced: func() bool { return len(waiting) == 0 },
		Blocked: func() []string {
			return []string{"agent A waiting for resource 2", "agent B waiting for resource 1"}
		},
	})
	if f == nil {
		t.Fatal("deadlocked run reported as complete")
	}
	if f.Kind != fault.KindDeadlock {
		t.Fatalf("fault kind %q, want %q", f.Kind, fault.KindDeadlock)
	}
	for _, agent := range []string{"agent A waiting for resource 2", "agent B waiting for resource 1"} {
		if !strings.Contains(f.Message, agent) {
			t.Errorf("fault message %q does not name %q", f.Message, agent)
		}
	}
	if f.Snapshot == nil || len(f.Snapshot.Blocked) != 2 {
		t.Errorf("fault snapshot missing the blocked-agent list: %+v", f.Snapshot)
	}
}

// TestWatchdogLivelock ping-pongs events without ever marking progress and
// checks the no-progress detector fires.
func TestWatchdogLivelock(t *testing.T) {
	e := NewEngine()
	var a, b func()
	a = func() { e.After(1, b) }
	b = func() { e.After(1, a) }
	e.After(0, a)
	f := e.RunWatched(&Watchdog{
		NoProgressEvents: 50,
		Blocked:          func() []string { return []string{"proc 7 spinning on block 3"} },
	})
	if f == nil || f.Kind != fault.KindLivelock {
		t.Fatalf("fault = %v, want kind %q", f, fault.KindLivelock)
	}
	if !strings.Contains(f.Message, "proc 7 spinning on block 3") {
		t.Errorf("livelock fault does not name the spinning agent: %q", f.Message)
	}
}

// TestWatchdogProgressDefersLivelock interleaves Progress marks into the
// same ping-pong; the detector must then never fire.
func TestWatchdogProgressDefersLivelock(t *testing.T) {
	e := NewEngine()
	n := 0
	var a func()
	a = func() {
		e.Progress()
		if n++; n < 500 {
			e.After(1, a)
		}
	}
	e.After(0, a)
	if f := e.RunWatched(&Watchdog{NoProgressEvents: 50}); f != nil {
		t.Fatalf("progressing run tripped the livelock detector: %v", f)
	}
}

// TestWatchdogDeadline checks the simulated-time ceiling aborts before
// executing events beyond it.
func TestWatchdogDeadline(t *testing.T) {
	e := NewEngine()
	ran := false
	e.After(10, func() {})
	e.After(1000, func() { ran = true })
	f := e.RunWatched(&Watchdog{Deadline: 500})
	if f == nil || f.Kind != fault.KindDeadline {
		t.Fatalf("fault = %v, want kind %q", f, fault.KindDeadline)
	}
	if ran {
		t.Fatal("event beyond the deadline executed")
	}
	// The message is pinned exactly: it must come from the PeekTime
	// accessor, naming both the ceiling and the next event's timestamp.
	if want := "simulated-time ceiling 500 reached (next event at t=1000)"; f.Message != want {
		t.Errorf("deadline fault message %q, want %q", f.Message, want)
	}
}

// TestWatchdogDeadlinePeeksOverflow puts the next event far beyond the
// calendar wheel's window: the deadline check must peek it from the
// overflow heap without executing or migrating anything visible.
func TestWatchdogDeadlinePeeksOverflow(t *testing.T) {
	e := NewEngine()
	e.After(10, func() {})
	next := Time(2*wheelSize + 77)
	e.After(next, func() { t.Error("event beyond the deadline executed") })
	f := e.RunWatched(&Watchdog{Deadline: 500})
	if f == nil || f.Kind != fault.KindDeadline {
		t.Fatalf("fault = %v, want kind %q", f, fault.KindDeadline)
	}
	if want := "simulated-time ceiling 500 reached (next event at t=" +
		strconv.FormatInt(int64(next), 10) + ")"; f.Message != want {
		t.Errorf("deadline fault message %q, want %q", f.Message, want)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d after deadline fault, want 1", e.Pending())
	}
}

// TestWatchdogCleanRun drives a normal program under tight-but-sufficient
// limits: no fault, every event executed.
func TestWatchdogCleanRun(t *testing.T) {
	e := NewEngine()
	ran := 0
	var step func()
	step = func() {
		e.Progress()
		if ran++; ran < 20 {
			e.After(5, step)
		}
	}
	e.After(0, step)
	done := false
	f := e.RunWatched(&Watchdog{
		MaxEvents:        25,  // 20 needed
		Deadline:         100, // last event at t=95
		NoProgressEvents: 3,   // every event marks progress
		Quiesced:         func() bool { done = ran == 20; return done },
	})
	if f != nil {
		t.Fatalf("clean run faulted: %v", f)
	}
	if ran != 20 || !done {
		t.Fatalf("ran %d of 20 events (quiesced %v)", ran, done)
	}
}

// TestWatchdogCancelPreFired: a cancel flag fired before the run starts
// aborts it before any event executes.
func TestWatchdogCancelPreFired(t *testing.T) {
	e := NewEngine()
	e.After(0, func() { t.Error("event executed after cancellation") })
	c := &Cancel{}
	c.Cancel()
	f := e.RunWatched(&Watchdog{Cancel: c})
	if f == nil || f.Kind != fault.KindCanceled {
		t.Fatalf("fault = %v, want kind %q", f, fault.KindCanceled)
	}
	if e.Steps() != 0 {
		t.Fatalf("executed %d events after a pre-fired cancel", e.Steps())
	}
}

// TestWatchdogCancelMidRun fires the flag from inside an event callback —
// the shape of a signal handler interrupting an in-flight run — and checks
// the batched poll stops the run at the next cohort boundary.
func TestWatchdogCancelMidRun(t *testing.T) {
	e := NewEngine()
	c := &Cancel{}
	ran := 0
	var tick func()
	tick = func() {
		if ran++; ran == 5 {
			c.Cancel()
		}
		e.After(1, tick) // self-perpetuating: only the cancel can stop it
	}
	e.After(0, tick)
	f := e.RunWatched(&Watchdog{Cancel: c, MaxEvents: 1_000_000})
	if f == nil || f.Kind != fault.KindCanceled {
		t.Fatalf("fault = %v, want kind %q", f, fault.KindCanceled)
	}
	if ran < 5 || ran > 16 {
		t.Fatalf("ran %d events; cancel at 5 should stop within one batch", ran)
	}
	if !strings.Contains(f.Message, "cancelled") {
		t.Errorf("cancel fault message %q does not say cancelled", f.Message)
	}
}

// TestCancelNilReceiver: Cancelled on a nil *Cancel (the un-attached
// default) must be false, not a panic.
func TestCancelNilReceiver(t *testing.T) {
	var c *Cancel
	if c.Cancelled() {
		t.Fatal("nil Cancel reports cancelled")
	}
}
