package sim

import (
	"fmt"
	"strings"

	"ccsim/internal/fault"
)

// Watchdog bounds a simulation run and diagnoses the classic coherence
// failure modes — runaway event storms, deadlock and livelock — instead of
// letting a protocol bug hang the process. All limits are optional; a zero
// field disables that check.
type Watchdog struct {
	// MaxEvents aborts once this many events have executed.
	MaxEvents uint64

	// Deadline aborts before executing any event scheduled after this
	// simulated time.
	Deadline Time

	// NoProgressEvents aborts when this many consecutive events execute
	// without Engine.Progress being called — a quiescence-free spin, the
	// signature of protocol livelock.
	NoProgressEvents uint64

	// Quiesced reports whether the run is complete (every agent finished).
	// When the event queue drains with Quiesced() false, the run
	// deadlocked. A nil Quiesced treats a drained queue as completion.
	Quiesced func() bool

	// Blocked names the stuck agents for deadlock/livelock reports
	// ("proc 3 waiting for lock 512", ...). May be nil.
	Blocked func() []string

	// Cancel, when non-nil, is polled once per batch: a fired flag aborts
	// the run with a canceled fault — the cooperative half of graceful
	// shutdown (the caller decides when to fire it).
	Cancel *Cancel
}

// RunWatched executes events like Run but under the watchdog's limits. It
// returns nil when the queue drains with the run quiesced, and a
// *fault.SimFault naming the cause and the stuck agents otherwise. The
// fault's Snapshot carries only the blocked-agent list; callers with a
// richer Snapshotter (the machine) replace it.
//
// Dispatch is batched: each loop iteration checks the limits and the live
// probe once, then drains up to one timestamp cohort. The batch budget is
// capped at the distance to the nearest limit, so every ceiling fires at
// exactly the event count per-event checking would produce — and a cohort
// that never empties (a zero-delay livelock) cannot starve the watchdog.
func (e *Engine) RunWatched(w *Watchdog) *fault.SimFault {
	// Publish to the live probe, if one is attached: once at entry, once
	// every progressStride events, and once at exit. The stride check costs
	// one nil check and one masked compare per batch — the hot path stays
	// allocation-free and branch-cheap whether or not anyone is watching.
	if e.progress != nil {
		e.progress.begin(e.now, e.nsteps)
		defer func() { e.progress.finish(e.now, e.nsteps) }()
	}
	for e.pending > 0 {
		if e.progress != nil && e.nsteps&(progressStride-1) == 0 {
			e.progress.update(e.now, e.nsteps)
		}
		if w.Cancel.Cancelled() {
			return e.watchdogFault(w, fault.KindCanceled,
				fmt.Sprintf("run cancelled by shutdown request after %d events", e.nsteps))
		}
		if w.MaxEvents > 0 && e.nsteps >= w.MaxEvents {
			return e.watchdogFault(w, fault.KindMaxEvents,
				fmt.Sprintf("event ceiling reached: %d events executed without completing", e.nsteps))
		}
		if w.NoProgressEvents > 0 && e.nsteps-e.progressAt >= w.NoProgressEvents {
			return e.watchdogFault(w, fault.KindLivelock,
				fmt.Sprintf("suspected livelock: %d events executed with no processor progress", e.nsteps-e.progressAt))
		}
		if w.Deadline > 0 {
			if next, ok := e.PeekTime(); ok && next > w.Deadline {
				return e.watchdogFault(w, fault.KindDeadline,
					fmt.Sprintf("simulated-time ceiling %d reached (next event at t=%d)", w.Deadline, next))
			}
		}
		// Batch budget: run to the next stride boundary or limit threshold,
		// whichever comes first.
		budget := uint64(progressStride) - e.nsteps&(progressStride-1)
		if w.MaxEvents > 0 {
			if left := w.MaxEvents - e.nsteps; left < budget {
				budget = left
			}
		}
		if w.NoProgressEvents > 0 {
			if left := w.NoProgressEvents - (e.nsteps - e.progressAt); left < budget {
				budget = left
			}
		}
		e.runCohort(budget)
	}
	if w.Quiesced != nil && !w.Quiesced() {
		return e.watchdogFault(w, fault.KindDeadlock,
			"deadlock: event queue empty but the run did not complete")
	}
	return nil
}

// watchdogFault builds the fault, folding the blocked-agent names into the
// message (the issue's contract: the SimFault names the stuck agents) and
// into a minimal snapshot.
func (e *Engine) watchdogFault(w *Watchdog, kind, msg string) *fault.SimFault {
	var blocked []string
	if w.Blocked != nil {
		blocked = w.Blocked()
	}
	if len(blocked) > 0 {
		msg += "; blocked: " + strings.Join(blocked, ", ")
	}
	return &fault.SimFault{
		Kind:      kind,
		Time:      int64(e.now),
		Steps:     e.nsteps,
		Component: "watchdog",
		Message:   msg,
		Snapshot:  &fault.Snapshot{Blocked: blocked},
	}
}
