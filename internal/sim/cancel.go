package sim

import "sync/atomic"

// Cancel is a cooperative shutdown flag for a watched run: any goroutine
// (a signal handler, an interrupted sweep scheduler) calls Cancel, and the
// engine aborts at the next event batch with a structured canceled fault
// instead of being killed mid-state. The zero value is ready to use; one
// flag may be shared across many concurrent runs to stop them all.
type Cancel struct {
	flag atomic.Bool
}

// Cancel requests the shutdown. Safe from any goroutine, idempotent.
func (c *Cancel) Cancel() { c.flag.Store(true) }

// Cancelled reports whether Cancel has been called. A nil receiver reads
// as not cancelled, so the watchdog's check stays one nil test when no
// flag is attached.
func (c *Cancel) Cancelled() bool { return c != nil && c.flag.Load() }
