package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, d := range []Time{30, 10, 20, 10, 5} {
		d := d
		e.After(d, func() { got = append(got, e.Now()) })
	}
	e.Run()
	want := []Time{5, 10, 10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d ran at %d, want %d", i, got[i], want[i])
		}
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events ran out of order: %v", order)
		}
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var trace []Time
	e.At(1, func() {
		trace = append(trace, e.Now())
		e.After(2, func() {
			trace = append(trace, e.Now())
			e.After(0, func() { trace = append(trace, e.Now()) })
		})
	})
	e.Run()
	want := []Time{1, 3, 3}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(5, func() { ran++ })
	e.At(10, func() { ran++ })
	e.At(15, func() { ran++ })
	e.RunUntil(10)
	if ran != 2 {
		t.Fatalf("ran %d events by t=10, want 2", ran)
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %d after RunUntil(10)", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	e.Run()
	if ran != 3 || e.Now() != 15 {
		t.Fatalf("after Run: ran=%d now=%d", ran, e.Now())
	}
}

func TestEngineRunWhile(t *testing.T) {
	e := NewEngine()
	ran := 0
	for i := 1; i <= 100; i++ {
		e.At(Time(i), func() { ran++ })
	}
	e.RunWhile(func() bool { return ran < 10 })
	if ran != 10 {
		t.Fatalf("RunWhile stopped after %d events, want 10", ran)
	}
}

// TestEnginePeekTime pins the queue-agnostic peek accessor the watchdog
// and RunUntil are built on: it reports the earliest pending timestamp —
// wherever that event lives, wheel or overflow — without advancing the
// clock or executing anything.
func TestEnginePeekTime(t *testing.T) {
	e := NewEngine()
	if _, ok := e.PeekTime(); ok {
		t.Fatal("PeekTime on an empty queue reported an event")
	}
	e.At(50, func() {})
	e.At(7, func() {})
	if at, ok := e.PeekTime(); !ok || at != 7 {
		t.Fatalf("PeekTime = %d, %v; want 7, true", at, ok)
	}
	if e.Now() != 0 || e.Pending() != 2 {
		t.Fatalf("peek disturbed the engine: now=%d pending=%d", e.Now(), e.Pending())
	}
	e.Step()
	if at, ok := e.PeekTime(); !ok || at != 50 {
		t.Fatalf("PeekTime after Step = %d, %v; want 50, true", at, ok)
	}

	// An event far beyond the wheel window peeks from the overflow heap,
	// still without moving the clock.
	far := NewEngine()
	far.At(3*wheelSize+5, func() {})
	if at, ok := far.PeekTime(); !ok || at != 3*wheelSize+5 {
		t.Fatalf("far-future PeekTime = %d, %v; want %d, true", at, ok, 3*wheelSize+5)
	}
	if far.Now() != 0 {
		t.Fatalf("far-future peek advanced the clock to %d", far.Now())
	}
}

func TestEngineStepOnEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step() on empty queue returned true")
	}
	if e.Now() != 0 {
		t.Fatal("time advanced with no events")
	}
}

// Property: for any random schedule, events execute in nondecreasing time
// order and every scheduled event executes exactly once.
func TestEngineOrderingProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) > 500 {
			delays = delays[:500]
		}
		e := NewEngine()
		var times []Time
		for _, d := range delays {
			e.After(Time(d), func() { times = append(times, e.Now()) })
		}
		e.Run()
		if len(times) != len(delays) {
			return false
		}
		if !sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] }) {
			return false
		}
		sorted := make([]Time, len(delays))
		for i, d := range delays {
			sorted[i] = Time(d)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range sorted {
			if times[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		rng := rand.New(rand.NewSource(42))
		var trace []Time
		var spawn func(depth int)
		spawn = func(depth int) {
			trace = append(trace, e.Now())
			if depth < 3 {
				for i := 0; i < 2; i++ {
					e.After(Time(rng.Intn(20)), func() { spawn(depth + 1) })
				}
			}
		}
		for i := 0; i < 8; i++ {
			e.After(Time(rng.Intn(50)), func() { spawn(0) })
		}
		e.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic event count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic trace at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestResourceFIFOQueueing(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "bus")
	var done []Time
	// Three back-to-back requests of 10 pclocks each, all issued at t=0:
	// they must complete at 10, 20, 30.
	for i := 0; i < 3; i++ {
		r.Use(10, func() { done = append(done, e.Now()) })
	}
	e.Run()
	want := []Time{10, 20, 30}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions = %v, want %v", done, want)
		}
	}
	if r.BusyTime() != 30 {
		t.Fatalf("BusyTime = %d, want 30", r.BusyTime())
	}
	if r.WaitTime() != 10+20 {
		t.Fatalf("WaitTime = %d, want 30", r.WaitTime())
	}
}

func TestResourceIdleGap(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "mem")
	var done []Time
	r.Use(5, func() { done = append(done, e.Now()) })
	e.At(100, func() {
		start := r.Use(5, func() { done = append(done, e.Now()) })
		if start != 100 {
			t.Errorf("request to idle resource started at %d, want 100", start)
		}
	})
	e.Run()
	if done[0] != 5 || done[1] != 105 {
		t.Fatalf("completions = %v, want [5 105]", done)
	}
	if r.WaitTime() != 0 {
		t.Fatalf("WaitTime = %d for uncontended uses", r.WaitTime())
	}
}

func TestResourceZeroDuration(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "r")
	fired := false
	r.Use(0, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("zero-duration use never completed")
	}
}

// Property: a resource never overlaps two services, regardless of the
// request pattern.
func TestResourceNoOverlapProperty(t *testing.T) {
	f := func(reqs []struct{ At, Dur uint8 }) bool {
		e := NewEngine()
		r := NewResource(e, "x")
		type span struct{ start, end Time }
		var spans []span
		for _, q := range reqs {
			q := q
			e.At(Time(q.At), func() {
				start := r.Use(Time(q.Dur), nil)
				spans = append(spans, span{start, start + Time(q.Dur)})
			})
		}
		e.Run()
		sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
		for i := 1; i < len(spans); i++ {
			if spans[i].start < spans[i-1].end {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestResourcePipelined(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "slc")
	var done []Time
	// Occupancy 3, latency 6: back-to-back requests complete at 6, 9, 12
	// (pipelined), not 6, 12, 18.
	for i := 0; i < 3; i++ {
		r.UsePipelined(3, 6, func() { done = append(done, e.Now()) })
	}
	e.Run()
	want := []Time{6, 9, 12}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions %v, want %v", done, want)
		}
	}
	if r.BusyTime() != 9 {
		t.Fatalf("BusyTime = %d, want 9", r.BusyTime())
	}
}

func TestResourcePipelinedBadLatencyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("latency < occupancy did not panic")
		}
	}()
	e := NewEngine()
	NewResource(e, "x").UsePipelined(6, 3, nil)
}

func TestResourceQueueDepth(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "bus")
	if r.QueueDepth() != 0 || r.MaxQueueDepth() != 0 {
		t.Fatal("fresh resource reports nonzero depth")
	}
	// Three back-to-back requests at t=0: depth peaks at 3 (one in service,
	// two queued).
	for i := 0; i < 3; i++ {
		r.Use(10, nil)
	}
	if r.QueueDepth() != 3 {
		t.Fatalf("QueueDepth = %d at t=0, want 3", r.QueueDepth())
	}
	e.At(15, func() {
		if r.QueueDepth() != 2 {
			t.Errorf("QueueDepth = %d at t=15, want 2", r.QueueDepth())
		}
	})
	e.At(29, func() {
		if r.QueueDepth() != 1 {
			t.Errorf("QueueDepth = %d at t=29, want 1", r.QueueDepth())
		}
	})
	e.At(30, func() {
		if r.QueueDepth() != 0 {
			t.Errorf("QueueDepth = %d at t=30, want 0", r.QueueDepth())
		}
	})
	// An uncontended request after the burst must not raise the max.
	e.At(50, func() { r.Use(5, nil) })
	e.At(60, func() {}) // advance the clock past the last reservation
	e.Run()
	if r.MaxQueueDepth() != 3 {
		t.Fatalf("MaxQueueDepth = %d, want 3", r.MaxQueueDepth())
	}
	if r.QueueDepth() != 0 {
		t.Fatalf("QueueDepth = %d after drain, want 0", r.QueueDepth())
	}
}

func TestResourceQueueDepthPipelined(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "slc")
	// Pipelined occupancy 3: reservations end at 3, 6, 9, so at t=0 all
	// three are pending.
	for i := 0; i < 3; i++ {
		r.UsePipelined(3, 6, nil)
	}
	if r.MaxQueueDepth() != 3 {
		t.Fatalf("MaxQueueDepth = %d, want 3", r.MaxQueueDepth())
	}
	e.At(7, func() {
		if r.QueueDepth() != 1 {
			t.Errorf("QueueDepth = %d at t=7, want 1", r.QueueDepth())
		}
	})
	e.Run()
}
