package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// Differential validation of the calendar-queue engine: every schedule a
// fuzzer (or a seeded generator) can express runs through both the real
// engine and a naive reference queue — an unsorted slice scanned for the
// (at, seq) minimum, too slow to ship but obviously correct — and the two
// execution traces must match event for event. Scripts exercise the
// queue's distinct regimes: dense short delays (wheel), far-future delays
// (overflow heap + migration), heavy same-timestamp collisions (cohort
// batching), events spawning events at the current instant (append during
// cohort drain), and RunUntil stopping between cohorts.

// queueAPI is the surface both engines implement; scripts run against it.
type queueAPI interface {
	Now() Time
	Pending() int
	At(Time, func())
	AtCall(Time, func(any), any)
	Run()
	RunUntil(Time)
}

// naiveQueue is the reference: an unsorted slice, linear-scan minimum by
// (at, seq), same past-time panic contract as the engine.
type naiveQueue struct {
	now Time
	seq uint64
	evs []event
}

func (n *naiveQueue) Now() Time    { return n.now }
func (n *naiveQueue) Pending() int { return len(n.evs) }

func (n *naiveQueue) At(t Time, fn func()) {
	if t < n.now {
		panic(fmt.Sprintf("sim: scheduling event at %d, before now %d", t, n.now))
	}
	n.seq++
	n.evs = append(n.evs, event{at: t, seq: n.seq, fn: fn})
}

func (n *naiveQueue) AtCall(t Time, call func(any), arg any) {
	if t < n.now {
		panic(fmt.Sprintf("sim: scheduling event at %d, before now %d", t, n.now))
	}
	n.seq++
	n.evs = append(n.evs, event{at: t, seq: n.seq, call: call, arg: arg})
}

func (n *naiveQueue) step() bool {
	if len(n.evs) == 0 {
		return false
	}
	best := 0
	for i := 1; i < len(n.evs); i++ {
		if n.evs[i].at < n.evs[best].at ||
			(n.evs[i].at == n.evs[best].at && n.evs[i].seq < n.evs[best].seq) {
			best = i
		}
	}
	ev := n.evs[best]
	n.evs = append(n.evs[:best], n.evs[best+1:]...)
	n.now = ev.at
	if ev.call != nil {
		ev.call(ev.arg)
	} else {
		ev.fn()
	}
	return true
}

func (n *naiveQueue) Run() {
	for n.step() {
	}
}

func (n *naiveQueue) RunUntil(t Time) {
	for {
		if len(n.evs) == 0 {
			break
		}
		best := 0
		for i := 1; i < len(n.evs); i++ {
			if n.evs[i].at < n.evs[best].at ||
				(n.evs[i].at == n.evs[best].at && n.evs[i].seq < n.evs[best].seq) {
				best = i
			}
		}
		if n.evs[best].at > t {
			break
		}
		n.step()
	}
	if n.now < t {
		n.now = t
	}
}

// scriptRun interprets an op stream against one queue, recording every
// event firing as "id@time". Spawned children get ids from a counter whose
// evolution depends on execution order — any ordering divergence between
// the two queues therefore shows up in the traces immediately.
type scriptRun struct {
	q      queueAPI
	trace  []string
	nextID int
}

func (s *scriptRun) fire(id int) {
	s.trace = append(s.trace, fmt.Sprintf("%d@%d", id, s.q.Now()))
}

type scriptArg struct {
	s  *scriptRun
	id int
}

func scriptFire(a any) { sa := a.(*scriptArg); sa.s.fire(sa.id) }

// spawner returns a callback that fires and, while depth remains, schedules
// two children: one at the current instant (appending to the cohort being
// drained) and one d pclocks out.
func (s *scriptRun) spawner(id, depth int, d Time) func() {
	return func() {
		s.fire(id)
		if depth > 0 {
			cid := s.nextID
			s.nextID++
			s.q.At(s.q.Now(), s.spawner(cid, depth-1, d))
			cid = s.nextID
			s.nextID++
			s.q.At(s.q.Now()+d, s.spawner(cid, depth-1, d))
		}
	}
}

// interpret decodes data as (op, val) byte pairs and drives q. The final
// Run drains everything so every script ends quiescent.
func interpret(q queueAPI, data []byte) *scriptRun {
	s := &scriptRun{q: q}
	for i := 0; i+1 < len(data); i += 2 {
		op, val := data[i]%6, Time(data[i+1])
		id := s.nextID
		s.nextID++
		switch op {
		case 0: // dense short delay, closure form
			id := id
			s.q.At(s.q.Now()+val%64, func() { s.fire(id) })
		case 1: // mid-range delay, static-call form
			s.q.AtCall(s.q.Now()+val, scriptFire, &scriptArg{s: s, id: id})
		case 2: // far beyond the wheel window: overflow heap + migration
			s.q.At(s.q.Now()+wheelSize+val*37, s.spawner(id, 0, 0))
		case 3: // same-timestamp collision
			id := id
			s.q.At(s.q.Now(), func() { s.fire(id) })
		case 4: // partial drain between cohorts
			s.nextID-- // no event consumed the id
			s.q.RunUntil(s.q.Now() + val*16)
		case 5: // nested spawning, including same-instant children
			s.q.At(s.q.Now()+val%128, s.spawner(id, 2, 1+val%70))
		}
	}
	s.q.Run()
	return s
}

// diffQueues runs one script through both queues and reports the first
// divergence, if any.
func diffQueues(t *testing.T, data []byte) {
	t.Helper()
	real := interpret(NewEngine(), data)
	ref := interpret(&naiveQueue{}, data)
	if len(real.trace) != len(ref.trace) {
		t.Fatalf("engine ran %d events, reference ran %d\nengine: %v\nref:    %v",
			len(real.trace), len(ref.trace), real.trace, ref.trace)
	}
	for i := range real.trace {
		if real.trace[i] != ref.trace[i] {
			t.Fatalf("execution order diverges at event %d: engine %s, reference %s",
				i, real.trace[i], ref.trace[i])
		}
	}
	if rn, nn := real.q.Now(), ref.q.Now(); rn != nn {
		t.Fatalf("final clocks diverge: engine %d, reference %d", rn, nn)
	}
	if real.q.Pending() != 0 || ref.q.Pending() != 0 {
		t.Fatalf("queues not drained: engine %d, reference %d pending",
			real.q.Pending(), ref.q.Pending())
	}
}

// FuzzEventOrder fuzzes random schedules through both queues. `go test`
// runs the seed corpus; `go test -fuzz=FuzzEventOrder ./internal/sim`
// explores beyond it.
func FuzzEventOrder(f *testing.F) {
	f.Add([]byte{0, 5, 0, 5, 3, 0, 3, 0, 3, 0})             // dense + collisions
	f.Add([]byte{2, 9, 0, 1, 2, 200, 1, 255, 4, 20})        // overflow + partial drain
	f.Add([]byte{5, 33, 5, 33, 3, 0, 2, 3, 4, 255, 5, 130}) // nested spawns across regimes
	f.Add([]byte{4, 1, 4, 200, 2, 0, 2, 0, 3, 7})           // RunUntil before anything queued
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			data = data[:512]
		}
		diffQueues(t, data)
	})
}

// TestEventOrderDifferential drives seeded random scripts (heavier than the
// fuzz seeds) through both queues on every `go test` run.
func TestEventOrderDifferential(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, 400)
		rng.Read(data)
		// Bias toward same-timestamp collisions and overflow hops: every
		// fourth op becomes a collision, every seventh a far-future event.
		for i := 0; i < len(data); i += 2 {
			switch {
			case i%8 == 0:
				data[i] = 3
			case i%14 == 0:
				data[i] = 2
			}
		}
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) { diffQueues(t, data) })
	}
}

// TestEventOrderPastTimePanics pins the past-time contract on both queues:
// scheduling before now must panic identically after arbitrary time travel
// (RunUntil far forward, including past the wheel window).
func TestEventOrderPastTimePanics(t *testing.T) {
	for _, q := range []queueAPI{NewEngine(), &naiveQueue{}} {
		q.RunUntil(3 * wheelSize)
		for _, form := range []string{"closure", "call"} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%T: past-time %s schedule did not panic", q, form)
					}
				}()
				if form == "closure" {
					q.At(q.Now()-1, func() {})
				} else {
					q.AtCall(q.Now()-1, scriptFire, nil)
				}
			}()
		}
	}
}
