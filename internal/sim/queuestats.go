package sim

// cohortLogBuckets sizes the cohort-size log2 histogram: bucket i counts
// cohorts of [2^i, 2^(i+1)) events, with the last bucket absorbing
// everything larger (a 64Ki-event cohort would need every processor's
// traffic stacked on one pclock — anything that big is pathological and
// only its existence matters, not its exact magnitude).
const cohortLogBuckets = 17

// QueueStats is a snapshot of the calendar queue's internal behavior over
// a run: how events were routed (direct wheel insert vs overflow heap),
// how much migration the window slide forced, how large the same-timestamp
// dispatch cohorts ran, and how deep the structures got. All fields are
// plain counters bumped on the engine's single-threaded hot path — no
// atomics, no allocation — so keeping them always-on costs a handful of
// integer ops per event.
type QueueStats struct {
	// Dispatched is the total number of events executed.
	Dispatched uint64
	// WheelScheduled counts events that landed directly in a wheel bucket
	// (at - now < wheelSize at scheduling time).
	WheelScheduled uint64
	// OverflowScheduled counts events routed to the overflow heap because
	// they were scheduled beyond the wheel window.
	OverflowScheduled uint64
	// Migrations counts overflow events later moved into the wheel as the
	// window reached them. It never exceeds OverflowScheduled.
	Migrations uint64
	// Cohorts is the number of runCohort dispatch batches that executed at
	// least one event; Dispatched/Cohorts is the mean cohort size.
	Cohorts uint64
	// CappedBatches counts dispatch batches that stopped at the caller's
	// event budget with the cohort still non-empty — i.e. how often the
	// watchdog's batching actually split a cohort.
	CappedBatches uint64
	// MaxCohort is the largest number of events any single batch executed.
	MaxCohort uint64
	// WheelHighWater is the peak number of events resident in wheel
	// buckets at once; OverflowHighWater is the peak overflow-heap depth.
	WheelHighWater    int
	OverflowHighWater int
	// CohortSizeLog2 is a log2 histogram of batch sizes: bucket i counts
	// batches of [2^i, 2^(i+1)) events (the last bucket is open-ended).
	CohortSizeLog2 [cohortLogBuckets]uint64
}

// CohortBucketMax returns the largest cohort size bucket i of
// CohortSizeLog2 covers: 2^(i+1)-1 events (callers render the last,
// open-ended bucket as unbounded).
func CohortBucketMax(i int) uint64 { return 1<<(uint(i)+1) - 1 }

// Merge folds o into q: counters and histogram buckets add, high-water
// marks take the max. It is how a sweep aggregates per-run snapshots into
// fleet-wide totals.
func (q *QueueStats) Merge(o QueueStats) {
	q.Dispatched += o.Dispatched
	q.WheelScheduled += o.WheelScheduled
	q.OverflowScheduled += o.OverflowScheduled
	q.Migrations += o.Migrations
	q.Cohorts += o.Cohorts
	q.CappedBatches += o.CappedBatches
	if o.MaxCohort > q.MaxCohort {
		q.MaxCohort = o.MaxCohort
	}
	if o.WheelHighWater > q.WheelHighWater {
		q.WheelHighWater = o.WheelHighWater
	}
	if o.OverflowHighWater > q.OverflowHighWater {
		q.OverflowHighWater = o.OverflowHighWater
	}
	for i := range q.CohortSizeLog2 {
		q.CohortSizeLog2[i] += o.CohortSizeLog2[i]
	}
}

// QueueStats returns a snapshot of the queue counters. The returned value
// is a copy; taking it allocates nothing and the engine keeps counting.
func (e *Engine) QueueStats() QueueStats { return e.qstats }
