package sim

import (
	"sync"
	"testing"
	"time"
)

// TestProgressPublishes checks the probe tracks a watched run: position
// advances, the start stamp is set once, and the final snapshot matches
// the engine's resting state exactly.
func TestProgressPublishes(t *testing.T) {
	e := NewEngine()
	p := &Progress{Label: "test/BASIC"}
	e.SetProgress(p)

	const n = 3 * progressStride
	var tick func()
	i := 0
	tick = func() {
		i++
		e.Progress()
		if i < n {
			e.After(1, tick)
		}
	}
	e.After(1, tick)
	if f := e.RunWatched(&Watchdog{}); f != nil {
		t.Fatalf("clean run faulted: %v", f)
	}

	s := p.Snapshot()
	if !s.Done {
		t.Fatal("probe not marked done after RunWatched returned")
	}
	if s.Events != e.Steps() {
		t.Fatalf("final snapshot events = %d, engine executed %d", s.Events, e.Steps())
	}
	if s.SimTime != int64(e.Now()) {
		t.Fatalf("final snapshot sim time = %d, engine at %d", s.SimTime, e.Now())
	}
	if s.Start == 0 || s.Beat < s.Start {
		t.Fatalf("wall-clock stamps not set: start=%d beat=%d", s.Start, s.Beat)
	}
	if s.Label != "test/BASIC" {
		t.Fatalf("label = %q", s.Label)
	}
	if eps := s.EventsPerSec(); eps < 0 {
		t.Fatalf("negative events/sec %f", eps)
	}
}

// TestProgressConcurrentSnapshots is the race gate: reader goroutines
// snapshot the probe continuously while the simulation runs. Under
// -race this proves the probe is lock-free-safe; the assertions prove the
// readings are monotone.
func TestProgressConcurrentSnapshots(t *testing.T) {
	e := NewEngine()
	p := &Progress{Label: "race/BASIC"}
	e.SetProgress(p)

	const n = 20 * progressStride
	var tick func()
	i := 0
	tick = func() {
		i++
		e.Progress()
		if i < n {
			e.After(1, tick)
		}
	}
	e.After(1, tick)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEvents uint64
			var lastTime int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := p.Snapshot()
				if s.Events < lastEvents || s.SimTime < lastTime {
					t.Errorf("probe moved backward: events %d->%d, time %d->%d",
						lastEvents, s.Events, lastTime, s.SimTime)
					return
				}
				lastEvents, lastTime = s.Events, s.SimTime
			}
		}()
	}
	if f := e.RunWatched(&Watchdog{}); f != nil {
		t.Fatalf("clean run faulted: %v", f)
	}
	close(stop)
	wg.Wait()

	if s := p.Snapshot(); !s.Done || s.Events != e.Steps() {
		t.Fatalf("final snapshot done=%v events=%d (want %d)", s.Done, s.Events, e.Steps())
	}
}

// TestProgressNil checks the zero cases: a nil probe snapshots as zero and
// an engine without a probe runs unchanged.
func TestProgressNil(t *testing.T) {
	var p *Progress
	if s := p.Snapshot(); s != (ProgressSnapshot{}) {
		t.Fatalf("nil probe snapshot = %+v", s)
	}
	e := NewEngine()
	e.After(1, func() { e.Progress() })
	if f := e.RunWatched(&Watchdog{}); f != nil {
		t.Fatalf("probe-less run faulted: %v", f)
	}
}

// TestProgressHeartbeatAge checks the staleness arithmetic used by the ops
// plane to spot a run stuck inside one event.
func TestProgressHeartbeatAge(t *testing.T) {
	var s ProgressSnapshot
	if got := s.HeartbeatAge(time.Now()); got != 0 {
		t.Fatalf("unstarted probe heartbeat age = %v", got)
	}
	now := time.Now()
	s.Beat = now.Add(-3 * time.Second).UnixNano()
	if got := s.HeartbeatAge(now); got != 3*time.Second {
		t.Fatalf("heartbeat age = %v, want 3s", got)
	}
	s.Start = 0
	s.Events = 100
	if got := s.EventsPerSec(); got != 0 {
		t.Fatalf("unstarted probe events/sec = %f", got)
	}
	s.Start = now.Add(-2 * time.Second).UnixNano()
	s.Beat = now.UnixNano()
	eps := s.EventsPerSec()
	if eps < 49 || eps > 51 {
		t.Fatalf("events/sec = %f, want ~50", eps)
	}
}
