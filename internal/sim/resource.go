package sim

// Resource models a unit that services requests one at a time in FIFO order
// of arrival: a split-transaction bus, an interleaved memory module, a mesh
// link. A request occupies the resource for a caller-specified duration;
// requests arriving while it is occupied queue behind it. This is the whole
// of the paper's "contention is accurately modelled in each node".
//
// Resources stay queue-agnostic: completions go through the engine's
// ordinary At/AtCall scheduling. They are also why the calendar wheel's
// window is sized in the thousands of pclocks — under heavy contention a
// completion lands at freeAt + dur, which stacks queue-depth × occupancy
// into the future (see wheelBits in engine.go).
type Resource struct {
	eng    *Engine
	name   string
	freeAt Time

	// Statistics.
	uses     uint64
	busyTime Time
	waitTime Time

	// Queue-depth tracking: end-of-service times of reservations not yet
	// finished at the last observation. FIFO order makes these monotone, so
	// expiring the head is enough. pendHead trims lazily to avoid O(n)
	// copies per reservation.
	pend     []Time
	pendHead int
	maxDepth int
}

// NewResource returns an idle resource attached to eng.
func NewResource(eng *Engine, name string) *Resource {
	return &Resource{eng: eng, name: name}
}

// Name returns the identifier given at construction.
func (r *Resource) Name() string { return r.name }

// reserve books the resource for occupy pclocks at the earliest free
// instant >= now, updating statistics and depth tracking, and returns the
// service start time.
func (r *Resource) reserve(occupy Time) Time {
	now := r.eng.Now()
	start := now
	if r.freeAt > start {
		start = r.freeAt
	}
	r.uses++
	r.waitTime += start - now
	r.busyTime += occupy
	r.freeAt = start + occupy

	r.expire(now)
	r.pend = append(r.pend, start+occupy)
	if d := len(r.pend) - r.pendHead; d > r.maxDepth {
		r.maxDepth = d
	}
	return start
}

// expire drops reservations whose service ended at or before now.
func (r *Resource) expire(now Time) {
	for r.pendHead < len(r.pend) && r.pend[r.pendHead] <= now {
		r.pendHead++
	}
	if r.pendHead == len(r.pend) {
		r.pend = r.pend[:0]
		r.pendHead = 0
	}
}

// Use reserves the resource for dur pclocks starting at the earliest instant
// >= now at which it is free, and schedules done to run when service
// completes. It returns the time at which service will begin.
func (r *Resource) Use(dur Time, done func()) Time {
	start := r.reserve(dur)
	if done != nil {
		r.eng.At(start+dur, done)
	}
	return start
}

// UsePipelined reserves the resource for occupy pclocks (its cycle time)
// but schedules done only after latency pclocks from service start — the
// behavior of a pipelined SRAM whose cycle time is shorter than its access
// latency. latency must be >= occupy.
func (r *Resource) UsePipelined(occupy, latency Time, done func()) Time {
	if latency < occupy {
		panic("sim: pipelined latency shorter than occupancy")
	}
	start := r.reserve(occupy)
	if done != nil {
		r.eng.At(start+latency, done)
	}
	return start
}

// UseCall is Use with the engine's static-function event form: done(arg)
// runs at service completion. Callers that pool arg schedule the event with
// zero allocations.
func (r *Resource) UseCall(dur Time, done func(any), arg any) Time {
	start := r.reserve(dur)
	r.eng.AtCall(start+dur, done, arg)
	return start
}

// UsePipelinedCall is UsePipelined with the static-function event form.
func (r *Resource) UsePipelinedCall(occupy, latency Time, done func(any), arg any) Time {
	if latency < occupy {
		panic("sim: pipelined latency shorter than occupancy")
	}
	start := r.reserve(occupy)
	r.eng.AtCall(start+latency, done, arg)
	return start
}

// FreeAt returns the time at which the resource next becomes idle.
func (r *Resource) FreeAt() Time { return r.freeAt }

// Uses returns how many requests have been serviced or queued.
func (r *Resource) Uses() uint64 { return r.uses }

// BusyTime returns total occupied pclocks.
func (r *Resource) BusyTime() Time { return r.busyTime }

// WaitTime returns total pclocks requests spent queued before service.
func (r *Resource) WaitTime() Time { return r.waitTime }

// QueueDepth returns the number of reservations in service or queued now.
func (r *Resource) QueueDepth() int {
	r.expire(r.eng.Now())
	return len(r.pend) - r.pendHead
}

// MaxQueueDepth returns the largest instantaneous queue depth observed,
// counting the reservation in service.
func (r *Resource) MaxQueueDepth() int { return r.maxDepth }
