package sim

import (
	"sync/atomic"
	"time"
)

// progressStride is how many events pass between Progress updates inside
// RunWatched. The hot loop pays one nil check and one masked compare per
// event; the atomic stores and the wall-clock read happen once per stride.
// 8192 events is a few microseconds of real time, far finer than any
// scrape interval.
const progressStride = 8192

// Progress is a lock-free probe into a running simulation. The simulation
// goroutine publishes its position (events executed, simulated time, a
// wall-clock heartbeat) through atomic stores inside RunWatched; any other
// goroutine — the ops server's scrape handler, a test — reads a consistent
// enough view with Snapshot without taking a lock or disturbing the run.
//
// Label carries the run's workload/protocol fingerprint ("mp3d/P+CW"). It
// must be set before the probe is shared (it is a plain string); the
// counters are the only fields written during the run.
type Progress struct {
	// Label identifies the run; set once before the run starts.
	Label string

	events  atomic.Uint64
	simTime atomic.Int64
	start   atomic.Int64 // wall clock at run start, UnixNano (0 = not started)
	beat    atomic.Int64 // wall clock of the last update, UnixNano
	done    atomic.Bool
}

// ProgressSnapshot is one coherent-enough reading of a Progress probe.
// Fields are sampled individually (the probe is lock-free), so a snapshot
// taken mid-update can pair an event count with a heartbeat one stride
// newer — harmless for monitoring.
type ProgressSnapshot struct {
	Label   string
	Events  uint64 // simulation events executed
	SimTime int64  // current simulated time, pclocks
	Start   int64  // wall clock at run start, UnixNano (0 = not started)
	Beat    int64  // wall clock of the last probe update, UnixNano
	Done    bool   // the watched run returned (completed or faulted)
}

// begin stamps the wall-clock start (first call only) and the heartbeat.
func (p *Progress) begin(now Time, steps uint64) {
	wall := time.Now().UnixNano()
	p.start.CompareAndSwap(0, wall)
	p.update(now, steps)
}

// update publishes the simulation's position and refreshes the heartbeat.
func (p *Progress) update(now Time, steps uint64) {
	p.events.Store(steps)
	p.simTime.Store(int64(now))
	p.beat.Store(time.Now().UnixNano())
}

// finish publishes the final position and marks the probe done.
func (p *Progress) finish(now Time, steps uint64) {
	p.update(now, steps)
	p.done.Store(true)
}

// Snapshot reads the probe. Safe to call from any goroutine at any time,
// including on a nil probe (which reads as zero).
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	return ProgressSnapshot{
		Label:   p.Label,
		Events:  p.events.Load(),
		SimTime: p.simTime.Load(),
		Start:   p.start.Load(),
		Beat:    p.beat.Load(),
		Done:    p.done.Load(),
	}
}

// EventsPerSec derives the run's average event rate from the snapshot, or
// 0 before the run has any wall-clock extent.
func (s ProgressSnapshot) EventsPerSec() float64 {
	if s.Start == 0 || s.Beat <= s.Start {
		return 0
	}
	return float64(s.Events) / (float64(s.Beat-s.Start) / float64(time.Second))
}

// HeartbeatAge returns how stale the probe is relative to now: the time
// since the simulation goroutine last published. A run that stopped
// beating but is not Done is stuck inside a single event — invisible to
// the event-counting watchdog, visible here.
func (s ProgressSnapshot) HeartbeatAge(now time.Time) time.Duration {
	if s.Beat == 0 {
		return 0
	}
	return now.Sub(time.Unix(0, s.Beat))
}

// SetProgress attaches a probe to the engine; RunWatched publishes through
// it. A nil probe detaches. Attach before the run starts: the engine
// goroutine is the only writer thereafter.
func (e *Engine) SetProgress(p *Progress) { e.progress = p }
