package sim

import "testing"

// The engine's two event forms — closure (At/After/Use) and static
// function + pooled argument (AtCall/AfterCall/UseCall) — are benchmarked
// side by side. The closure form allocates once per event; the call form
// amortizes to zero, which is what the simulator's hot paths (message hops,
// SLC accesses, processor steps) rely on. BENCH_PR2.json records both so
// regressions show up as allocs/op.

// BenchmarkEngineClosureEvents schedules and drains events carrying a
// capturing closure, the allocation-heavy form.
func BenchmarkEngineClosureEvents(b *testing.B) {
	eng := NewEngine()
	n := 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := Time(i % 7)
		eng.After(d, func() { n += int(d) })
		if eng.Pending() >= 1024 {
			eng.Run()
		}
	}
	eng.Run()
	if n < 0 {
		b.Fatal("unreachable")
	}
}

type benchArg struct{ n int }

func benchStep(a any) { a.(*benchArg).n++ }

// BenchmarkEngineCallEvents schedules and drains events through the
// static-function form with a reused argument: the pooled pattern.
func BenchmarkEngineCallEvents(b *testing.B) {
	eng := NewEngine()
	arg := &benchArg{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.AfterCall(Time(i%7), benchStep, arg)
		if eng.Pending() >= 1024 {
			eng.Run()
		}
	}
	eng.Run()
	if arg.n != b.N {
		b.Fatalf("ran %d of %d events", arg.n, b.N)
	}
}

// BenchmarkResourceUseClosure drives a contended resource with a closure
// completion per reservation.
func BenchmarkResourceUseClosure(b *testing.B) {
	eng := NewEngine()
	r := NewResource(eng, "bench")
	n := 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Use(3, func() { n++ })
		if eng.Pending() >= 1024 {
			eng.Run()
		}
	}
	eng.Run()
	if n != b.N {
		b.Fatalf("ran %d of %d completions", n, b.N)
	}
}

// BenchmarkResourceUseCall drives the same pattern through UseCall with a
// reused argument.
func BenchmarkResourceUseCall(b *testing.B) {
	eng := NewEngine()
	r := NewResource(eng, "bench")
	arg := &benchArg{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.UseCall(3, benchStep, arg)
		if eng.Pending() >= 1024 {
			eng.Run()
		}
	}
	eng.Run()
	if arg.n != b.N {
		b.Fatalf("ran %d of %d completions", arg.n, b.N)
	}
}

// BenchmarkResourceUsePipelinedCall exercises the pipelined variant the SLC
// model uses on every access.
func BenchmarkResourceUsePipelinedCall(b *testing.B) {
	eng := NewEngine()
	r := NewResource(eng, "bench")
	arg := &benchArg{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.UsePipelinedCall(2, 6, benchStep, arg)
		if eng.Pending() >= 1024 {
			eng.Run()
		}
	}
	eng.Run()
	if arg.n != b.N {
		b.Fatalf("ran %d of %d completions", arg.n, b.N)
	}
}
