package sim

import "testing"

// The engine's two event forms — closure (At/After/Use) and static
// function + pooled argument (AtCall/AfterCall/UseCall) — are benchmarked
// side by side. The closure form allocates once per event; the call form
// amortizes to zero, which is what the simulator's hot paths (message hops,
// SLC accesses, processor steps) rely on. BENCH_PR2.json records both so
// regressions show up as allocs/op.

// BenchmarkEngineClosureEvents schedules and drains events carrying a
// capturing closure, the allocation-heavy form.
func BenchmarkEngineClosureEvents(b *testing.B) {
	eng := NewEngine()
	n := 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := Time(i % 7)
		eng.After(d, func() { n += int(d) })
		if eng.Pending() >= 1024 {
			eng.Run()
		}
	}
	eng.Run()
	if n < 0 {
		b.Fatal("unreachable")
	}
}

type benchArg struct{ n int }

func benchStep(a any) { a.(*benchArg).n++ }

// BenchmarkEngineCallEvents schedules and drains events through the
// static-function form with a reused argument: the pooled pattern.
func BenchmarkEngineCallEvents(b *testing.B) {
	eng := NewEngine()
	arg := &benchArg{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.AfterCall(Time(i%7), benchStep, arg)
		if eng.Pending() >= 1024 {
			eng.Run()
		}
	}
	eng.Run()
	if arg.n != b.N {
		b.Fatalf("ran %d of %d events", arg.n, b.N)
	}
}

// BenchmarkEngineSameTimeFanout schedules whole batches of events at a
// single instant — the shape cohort dispatch wins big on: one clock update
// and one bucket lookup serve all 1024 events of each cohort.
func BenchmarkEngineSameTimeFanout(b *testing.B) {
	eng := NewEngine()
	arg := &benchArg{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.AfterCall(64, benchStep, arg)
		if eng.Pending() >= 1024 {
			eng.Run()
		}
	}
	eng.Run()
	if arg.n != b.N {
		b.Fatalf("ran %d of %d events", arg.n, b.N)
	}
}

// BenchmarkEngineSparseHorizon spreads events far beyond the wheel window —
// the adversarial shape for a calendar queue: every event takes the
// overflow heap, a window jump, and a migration before it dispatches.
func BenchmarkEngineSparseHorizon(b *testing.B) {
	eng := NewEngine()
	arg := &benchArg{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.AfterCall(Time(100_000+(i%13)*7919), benchStep, arg)
		if eng.Pending() >= 256 {
			eng.Run()
		}
	}
	eng.Run()
	if arg.n != b.N {
		b.Fatalf("ran %d of %d events", arg.n, b.N)
	}
}

// TestEngineDispatchShapesNoAllocs pins both new dispatch shapes to zero
// steady-state allocations: the arena free list and the overflow heap's
// retained capacity must absorb any schedule once warm.
func TestEngineDispatchShapesNoAllocs(t *testing.T) {
	eng := NewEngine()
	arg := &benchArg{}
	if n := testing.AllocsPerRun(50, func() {
		for i := 0; i < 512; i++ {
			eng.AfterCall(64, benchStep, arg)
		}
		eng.Run()
	}); n != 0 {
		t.Fatalf("same-time fan-out allocates %v times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		for i := 0; i < 256; i++ {
			eng.AfterCall(Time(100_000+(i%13)*7919), benchStep, arg)
		}
		eng.Run()
	}); n != 0 {
		t.Fatalf("sparse long-horizon schedule allocates %v times per run, want 0", n)
	}
}

// BenchmarkResourceUseClosure drives a contended resource with a closure
// completion per reservation.
func BenchmarkResourceUseClosure(b *testing.B) {
	eng := NewEngine()
	r := NewResource(eng, "bench")
	n := 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Use(3, func() { n++ })
		if eng.Pending() >= 1024 {
			eng.Run()
		}
	}
	eng.Run()
	if n != b.N {
		b.Fatalf("ran %d of %d completions", n, b.N)
	}
}

// BenchmarkResourceUseCall drives the same pattern through UseCall with a
// reused argument.
func BenchmarkResourceUseCall(b *testing.B) {
	eng := NewEngine()
	r := NewResource(eng, "bench")
	arg := &benchArg{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.UseCall(3, benchStep, arg)
		if eng.Pending() >= 1024 {
			eng.Run()
		}
	}
	eng.Run()
	if arg.n != b.N {
		b.Fatalf("ran %d of %d completions", arg.n, b.N)
	}
}

// BenchmarkResourceUsePipelinedCall exercises the pipelined variant the SLC
// model uses on every access.
func BenchmarkResourceUsePipelinedCall(b *testing.B) {
	eng := NewEngine()
	r := NewResource(eng, "bench")
	arg := &benchArg{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.UsePipelinedCall(2, 6, benchStep, arg)
		if eng.Pending() >= 1024 {
			eng.Run()
		}
	}
	eng.Run()
	if arg.n != b.N {
		b.Fatalf("ran %d of %d completions", arg.n, b.N)
	}
}
