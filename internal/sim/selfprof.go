package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// selfProfStride is the sampling period in events. The engine samples one
// event out of every stride: the wall-clock window since the previous sample
// is attributed to the sampled event's callback, statistically charging each
// callback in proportion to how often it runs and how long it takes. A
// power of two keeps the Step-path check to a mask-and-compare, and 64 gives
// ~2% sampling overhead in the worst case (one time.Now per 64 events) while
// converging within a fraction of a second of simulated work.
const selfProfStride = 64

// SelfProfiler attributes engine wall-clock time to event callbacks, grouped
// by function and component (the package that registered the callback). The
// engine's hot path pays one nil check when no profiler is attached and one
// mask-compare per event when one is; the sample itself resolves the
// callback's PC and takes a mutex, but runs once per selfProfStride events.
// One profiler may be shared across concurrent engines (a sweep): samples
// funnel through the mutex, per-engine state stays in the engine.
type SelfProfiler struct {
	mu      sync.Mutex
	entries map[uintptr]*profEntry
	samples uint64
	nanos   int64
}

type profEntry struct {
	name      string
	component string
	samples   uint64
	nanos     int64
}

// NewSelfProfiler returns an empty profiler ready to attach via
// Engine.SetSelfProfiler (or Config.SelfProfile at the API layer).
func NewSelfProfiler() *SelfProfiler {
	return &SelfProfiler{entries: make(map[uintptr]*profEntry)}
}

// SetSelfProfiler attaches (or, with nil, detaches) the self-profiler.
func (e *Engine) SetSelfProfiler(p *SelfProfiler) {
	e.prof = p
	e.profLast = 0
}

// profSample charges the window since the previous sample to ev's callback.
func (e *Engine) profSample(ev *event) {
	now := time.Now().UnixNano()
	d := now - e.profLast
	if e.profLast == 0 || d < 0 {
		d = 0 // first sample, or clock went backwards
	}
	e.profLast = now
	var pc uintptr
	if ev.call != nil {
		pc = reflect.ValueOf(ev.call).Pointer()
	} else {
		pc = reflect.ValueOf(ev.fn).Pointer()
	}
	e.prof.record(pc, d)
}

func (p *SelfProfiler) record(pc uintptr, d int64) {
	p.mu.Lock()
	ent := p.entries[pc]
	if ent == nil {
		name, component := resolveCallback(pc)
		ent = &profEntry{name: name, component: component}
		p.entries[pc] = ent
	}
	ent.samples++
	ent.nanos += d
	p.samples++
	p.nanos += d
	p.mu.Unlock()
}

// resolveCallback names the callback function at pc: "component.Func" with
// the module prefix stripped ("core.hopSrcBus", "sim.(*Engine).Run-fm" →
// "sim.runWatchdog"-style names).
func resolveCallback(pc uintptr) (name, component string) {
	f := runtime.FuncForPC(pc)
	if f == nil {
		return "unknown", "unknown"
	}
	name = f.Name() // e.g. ccsim/internal/core.hopSrcBus
	if i := strings.LastIndex(name, "/"); i >= 0 {
		name = name[i+1:]
	}
	name = strings.TrimSuffix(name, "-fm")
	component = name
	if i := strings.Index(component, "."); i >= 0 {
		component = component[:i]
	}
	return name, component
}

// ProfEntry is one callback's attribution in a snapshot.
type ProfEntry struct {
	Name      string  // "core.hopSrcBus"
	Component string  // "core"
	Samples   uint64  // sampling hits
	Events    uint64  // events attributed (Samples * stride)
	Nanos     int64   // wall nanoseconds attributed
	Share     float64 // fraction of all attributed time
}

// Entries returns the attribution sorted by time descending (name as the
// tie-break, so output order is deterministic).
func (p *SelfProfiler) Entries() []ProfEntry {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]ProfEntry, 0, len(p.entries))
	for _, ent := range p.entries {
		e := ProfEntry{
			Name:      ent.name,
			Component: ent.component,
			Samples:   ent.samples,
			Events:    ent.samples * selfProfStride,
			Nanos:     ent.nanos,
		}
		if p.nanos > 0 {
			e.Share = float64(ent.nanos) / float64(p.nanos)
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Nanos != out[j].Nanos {
			return out[i].Nanos > out[j].Nanos
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// selfProfBench mirrors cmd/benchjson's record shape so a self-profile can
// feed the same comparison tooling as `make bench` output.
type selfProfBench struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Extra      map[string]float64 `json:"extra,omitempty"`
}

// WriteJSON emits the attribution as a benchjson-compatible array: one
// record per callback, named "SelfProfile/<func>", with iterations = events
// attributed and ns_per_op = wall nanoseconds per event. `share` and
// `samples` ride in extra.
func (p *SelfProfiler) WriteJSON(w io.Writer) error {
	entries := p.Entries()
	out := make([]selfProfBench, 0, len(entries))
	for _, e := range entries {
		rec := selfProfBench{
			Name:       "SelfProfile/" + e.Name,
			Procs:      1,
			Iterations: int64(e.Events),
			Extra: map[string]float64{
				"share":   e.Share,
				"samples": float64(e.Samples),
			},
		}
		if e.Events > 0 {
			rec.NsPerOp = float64(e.Nanos) / float64(e.Events)
		}
		out = append(out, rec)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Fprint renders a human-readable table of the top entries.
func (p *SelfProfiler) Fprint(w io.Writer) {
	entries := p.Entries()
	if len(entries) == 0 {
		io.WriteString(w, "self-profile: no samples\n")
		return
	}
	io.WriteString(w, "self-profile (wall time per event callback):\n")
	for _, e := range entries {
		ns := float64(0)
		if e.Events > 0 {
			ns = float64(e.Nanos) / float64(e.Events)
		}
		fmt.Fprintf(w, "  %-40s %5.1f%%  %7.1f ns/event  %d samples\n",
			e.Name, e.Share*100, ns, e.Samples)
	}
}
