// Package sim provides the deterministic discrete-event engine that drives
// the multiprocessor simulation. Time is counted in processor clocks
// (pclocks; 1 pclock = 10 ns at the paper's 100 MHz). Events scheduled for
// the same instant execute in the order they were scheduled, which makes
// every simulation bit-reproducible.
package sim

import (
	"fmt"
	"math/bits"
)

// Time is a point in simulated time, in pclocks.
type Time int64

// Event is a callback scheduled to run at a given simulated time. Two
// representations coexist: a plain closure (fn), and a static function plus
// argument (call, arg). The second is the allocation-free form the hot
// paths use — a package-level func(any) is a constant, and boxing a pointer
// argument in an interface allocates nothing, so components can pool their
// argument structs and schedule events without any per-event garbage.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	call func(any)
	arg  any
}

// The event queue is a calendar (timing-wheel) queue rather than a binary
// heap. The simulator's profile is the classic amortized-O(1) case: sim
// time is bounded and densely populated, and nearly every delay is a short
// fixed latency (network hops >= 54 pclocks, pipelined SLC/memory slots of
// a few pclocks), so almost every event lands within a small window of the
// current time.
//
//   - The wheel has wheelSize buckets of one pclock each. An event with
//     at - now < wheelSize goes to bucket at & wheelMask; because the
//     engine executes strictly in time order, every live wheel event
//     satisfies at ∈ [now, now+wheelSize), which makes the bucket mapping
//     injective: a bucket holds events of exactly one timestamp — a
//     cohort. Scheduling and dispatch are O(1) plus a bitmap scan.
//   - Events at or beyond now+wheelSize wait in a small (at, seq) min-heap
//     (overflow) and migrate into the wheel once the window reaches them.
//     Long delays are rare (processor compute phases), so heap cost is
//     negligible.
//   - Buckets are singly-linked lists threaded through a slab (arena) with
//     an intrusive free list, so steady-state scheduling allocates nothing
//     no matter which buckets the sliding window touches.
//
// FIFO order within a timestamp is preserved exactly: direct scheduling
// appends at the bucket tail (the global seq counter is monotone), and
// migration from the overflow heap — the only source of out-of-order
// arrivals — inserts by seq. Every run stays bit-identical to the
// binary-heap engine it replaced (the golden metrics gate enforces this).
// wheelBits sizes the window: 4096 pclocks comfortably covers every fixed
// latency in the machine plus completion times stacked a few hundred deep
// on a contended resource, at ~33 KB of per-engine bucket headers.
const (
	wheelBits  = 12
	wheelSize  = 1 << wheelBits // pclocks covered by the wheel window
	wheelMask  = wheelSize - 1
	wheelWords = wheelSize / 64 // occupancy bitmap words
)

// qnode is one arena slot: an event plus the intrusive link. next chains
// bucket lists (undefined for a bucket's tail) and the free list (-1 ends
// it).
type qnode struct {
	ev   event
	next int32
}

// Engine is a discrete-event simulation kernel. The zero value is not ready
// to use; call NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	nsteps  uint64
	pending int

	// arena holds wheel events; free heads the intrusive free list.
	arena []qnode
	free  int32

	// bhead/btail delimit each bucket's list; they are meaningful only
	// while the bucket's occupancy bit is set.
	bhead [wheelSize]int32
	btail [wheelSize]int32
	occ   [wheelWords]uint64

	// overflow is the (at, seq) min-heap of events beyond the wheel window.
	overflow []event

	// progressAt is the step count at the last Progress() call; RunWatched's
	// livelock detector measures event activity against it.
	progressAt uint64

	// progress, when non-nil, is the live probe RunWatched publishes
	// position updates through (see SetProgress).
	progress *Progress

	// prof, when non-nil, is the engine self-profiler; dispatch samples one
	// event in selfProfStride through it (see SetSelfProfiler). profLast is
	// the wall-clock nanosecond of the previous sample.
	prof     *SelfProfiler
	profLast int64

	// qstats holds the always-on queue introspection counters (see
	// QueueStats); wheelLive tracks the current wheel-resident event count
	// so schedule/migrate can maintain the occupancy high-water mark.
	qstats    QueueStats
	wheelLive int
}

// NewEngine returns an engine with an empty event queue at time 0.
func NewEngine() *Engine {
	return &Engine{arena: make([]qnode, 0, 1024), free: -1}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.nsteps }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return e.pending }

// PeekTime returns the timestamp of the earliest pending event. ok is false
// when the queue is empty. It is the queue-agnostic accessor the watchdog's
// deadline check and RunUntil use instead of reaching into the queue.
func (e *Engine) PeekTime() (t Time, ok bool) {
	if e.pending == 0 {
		return 0, false
	}
	e.migrate()
	if e.pending > len(e.overflow) {
		b := e.nextBucket()
		return e.arena[e.bhead[b]].ev.at, true
	}
	return e.overflow[0].at, true
}

// Progress marks forward progress at the agent level (a processor retiring
// an operation). The watchdog's livelock detector counts events since the
// last mark; protocol chatter that never lets any processor advance trips
// it. Calling it costs one store.
func (e *Engine) Progress() { e.progressAt = e.nsteps }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a bug in a component's timing arithmetic.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d, before now %d", t, e.now))
	}
	e.seq++
	e.schedule(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d pclocks from now. d must be >= 0.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// AtCall schedules call(arg) to run at absolute time t. Unlike At it takes
// a static function and an explicit argument, so callers that keep arg on a
// free list schedule events without allocating a closure.
func (e *Engine) AtCall(t Time, call func(any), arg any) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d, before now %d", t, e.now))
	}
	e.seq++
	e.schedule(event{at: t, seq: e.seq, call: call, arg: arg})
}

// AfterCall schedules call(arg) to run d pclocks from now. d must be >= 0.
func (e *Engine) AfterCall(d Time, call func(any), arg any) { e.AtCall(e.now+d, call, arg) }

// alloc places ev in an arena slot, reusing the free list when possible.
func (e *Engine) alloc(ev event) int32 {
	s := e.free
	if s >= 0 {
		e.free = e.arena[s].next
		e.arena[s].ev = ev
	} else {
		e.arena = append(e.arena, qnode{ev: ev})
		s = int32(len(e.arena) - 1)
	}
	return s
}

// schedule routes ev to its wheel bucket or, beyond the window, to the
// overflow heap. Callers have already validated ev.at >= e.now.
func (e *Engine) schedule(ev event) {
	e.pending++
	if ev.at-e.now >= wheelSize {
		e.qstats.OverflowScheduled++
		e.overflowPush(ev)
		if n := len(e.overflow); n > e.qstats.OverflowHighWater {
			e.qstats.OverflowHighWater = n
		}
		return
	}
	e.qstats.WheelScheduled++
	e.wheelLive++
	if e.wheelLive > e.qstats.WheelHighWater {
		e.qstats.WheelHighWater = e.wheelLive
	}
	s := e.alloc(ev)
	b := int(ev.at) & wheelMask
	w, bit := b>>6, uint64(1)<<uint(b&63)
	if e.occ[w]&bit != 0 {
		e.arena[e.btail[b]].next = s
	} else {
		e.occ[w] |= bit
		e.bhead[b] = s
	}
	e.btail[b] = s
}

// migrate moves overflow events whose time has come inside the wheel
// window into their buckets. A migrated event predates (by seq) anything
// scheduled directly into the window since, so it inserts by seq rather
// than appending; this is the only path that does, and it is rare.
func (e *Engine) migrate() {
	for len(e.overflow) > 0 && e.overflow[0].at-e.now < wheelSize {
		ev := e.overflowPop()
		e.qstats.Migrations++
		e.wheelLive++
		if e.wheelLive > e.qstats.WheelHighWater {
			e.qstats.WheelHighWater = e.wheelLive
		}
		s := e.alloc(ev)
		b := int(ev.at) & wheelMask
		w, bit := b>>6, uint64(1)<<uint(b&63)
		if e.occ[w]&bit == 0 {
			e.occ[w] |= bit
			e.bhead[b] = s
			e.btail[b] = s
			continue
		}
		if ev.seq < e.arena[e.bhead[b]].ev.seq {
			e.arena[s].next = e.bhead[b]
			e.bhead[b] = s
			continue
		}
		p := e.bhead[b]
		for p != e.btail[b] && e.arena[e.arena[p].next].ev.seq < ev.seq {
			p = e.arena[p].next
		}
		if p == e.btail[b] {
			e.btail[b] = s
		} else {
			e.arena[s].next = e.arena[p].next
		}
		e.arena[p].next = s
	}
}

// nextBucket returns the occupied bucket holding the earliest wheel
// timestamp: circular order starting at now's bucket is time order within
// the window. The caller guarantees the wheel is non-empty.
func (e *Engine) nextBucket() int {
	start := int(e.now) & wheelMask
	w := start >> 6
	if m := e.occ[w] &^ (uint64(1)<<uint(start&63) - 1); m != 0 {
		return w<<6 + bits.TrailingZeros64(m)
	}
	for i := 1; i < wheelWords; i++ {
		idx := (w + i) & (wheelWords - 1)
		if m := e.occ[idx]; m != 0 {
			return idx<<6 + bits.TrailingZeros64(m)
		}
	}
	m := e.occ[w] & (uint64(1)<<uint(start&63) - 1)
	return w<<6 + bits.TrailingZeros64(m)
}

// runCohort executes the earliest pending timestamp's cohort — including
// same-time events its callbacks schedule — in FIFO order, stopping after
// at most budget events. The whole batch shares one clock update and one
// queue lookup; per event the dispatch loop touches only the bucket list.
// It returns the number of events executed.
func (e *Engine) runCohort(budget uint64) uint64 {
	if e.pending == 0 || budget == 0 {
		return 0
	}
	e.migrate()
	if e.pending == len(e.overflow) {
		// Everything pending sits beyond the wheel window: jump the window
		// to the earliest event and pull its neighborhood in.
		e.now = e.overflow[0].at
		e.migrate()
	}
	b := e.nextBucket()
	w, bit := b>>6, uint64(1)<<uint(b&63)
	e.now = e.arena[e.bhead[b]].ev.at
	var ran uint64
	for ran < budget && e.occ[w]&bit != 0 {
		s := e.bhead[b]
		ev := e.arena[s].ev
		if s == e.btail[b] {
			e.occ[w] &^= bit
		} else {
			e.bhead[b] = e.arena[s].next
		}
		e.arena[s].next = e.free
		e.free = s
		e.pending--
		e.nsteps++
		ran++
		if e.prof != nil && e.nsteps&(selfProfStride-1) == 0 {
			e.profSample(&ev)
		}
		if ev.call != nil {
			ev.call(ev.arg)
		} else {
			ev.fn()
		}
	}
	if ran > 0 {
		e.wheelLive -= int(ran)
		q := &e.qstats
		q.Dispatched += ran
		q.Cohorts++
		if ran > q.MaxCohort {
			q.MaxCohort = ran
		}
		idx := bits.Len64(ran) - 1
		if idx >= cohortLogBuckets {
			idx = cohortLogBuckets - 1
		}
		q.CohortSizeLog2[idx]++
		if ran == budget && e.occ[w]&bit != 0 {
			q.CappedBatches++
		}
	}
	return ran
}

// Step executes the single earliest pending event and reports whether one
// was executed.
func (e *Engine) Step() bool {
	return e.runCohort(1) > 0
}

// Run executes events until the queue is empty, one timestamp cohort at a
// time.
func (e *Engine) Run() {
	for e.pending > 0 {
		e.runCohort(^uint64(0))
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t. Events scheduled beyond t remain queued.
func (e *Engine) RunUntil(t Time) {
	for {
		next, ok := e.PeekTime()
		if !ok || next > t {
			break
		}
		e.runCohort(^uint64(0))
	}
	if e.now < t {
		e.now = t
	}
}

// RunWhile executes events until the queue drains or cond returns false.
// cond is checked before each event.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.runCohort(1) > 0 {
	}
}

// overflowPush and overflowPop maintain the (at, seq) min-heap of events
// beyond the wheel window.
func overflowLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) overflowPush(ev event) {
	e.overflow = append(e.overflow, ev)
	i := len(e.overflow) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !overflowLess(e.overflow[i], e.overflow[parent]) {
			break
		}
		e.overflow[i], e.overflow[parent] = e.overflow[parent], e.overflow[i]
		i = parent
	}
}

func (e *Engine) overflowPop() event {
	top := e.overflow[0]
	last := len(e.overflow) - 1
	e.overflow[0] = e.overflow[last]
	e.overflow[last] = event{} // drop fn/arg references
	e.overflow = e.overflow[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && overflowLess(e.overflow[l], e.overflow[smallest]) {
			smallest = l
		}
		if r < last && overflowLess(e.overflow[r], e.overflow[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		e.overflow[i], e.overflow[smallest] = e.overflow[smallest], e.overflow[i]
		i = smallest
	}
	return top
}
