// Package sim provides the deterministic discrete-event engine that drives
// the multiprocessor simulation. Time is counted in processor clocks
// (pclocks; 1 pclock = 10 ns at the paper's 100 MHz). Events scheduled for
// the same instant execute in the order they were scheduled, which makes
// every simulation bit-reproducible.
package sim

import "fmt"

// Time is a point in simulated time, in pclocks.
type Time int64

// Event is a callback scheduled to run at a given simulated time. Two
// representations coexist: a plain closure (fn), and a static function plus
// argument (call, arg). The second is the allocation-free form the hot
// paths use — a package-level func(any) is a constant, and boxing a pointer
// argument in an interface allocates nothing, so components can pool their
// argument structs and schedule events without any per-event garbage.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	call func(any)
	arg  any
}

// Engine is a discrete-event simulation kernel. The zero value is not ready
// to use; call NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	heap   []event
	nsteps uint64

	// progressAt is the step count at the last Progress() call; RunWatched's
	// livelock detector measures event activity against it.
	progressAt uint64

	// progress, when non-nil, is the live probe RunWatched publishes
	// position updates through (see SetProgress).
	progress *Progress

	// prof, when non-nil, is the engine self-profiler; Step samples one
	// event in selfProfStride through it (see SetSelfProfiler). profLast is
	// the wall-clock nanosecond of the previous sample.
	prof     *SelfProfiler
	profLast int64
}

// NewEngine returns an engine with an empty event queue at time 0.
func NewEngine() *Engine {
	return &Engine{heap: make([]event, 0, 1024)}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.nsteps }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.heap) }

// Progress marks forward progress at the agent level (a processor retiring
// an operation). The watchdog's livelock detector counts events since the
// last mark; protocol chatter that never lets any processor advance trips
// it. Calling it costs one store.
func (e *Engine) Progress() { e.progressAt = e.nsteps }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a bug in a component's timing arithmetic.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d, before now %d", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d pclocks from now. d must be >= 0.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// AtCall schedules call(arg) to run at absolute time t. Unlike At it takes
// a static function and an explicit argument, so callers that keep arg on a
// free list schedule events without allocating a closure.
func (e *Engine) AtCall(t Time, call func(any), arg any) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d, before now %d", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, call: call, arg: arg})
}

// AfterCall schedules call(arg) to run d pclocks from now. d must be >= 0.
func (e *Engine) AfterCall(d Time, call func(any), arg any) { e.AtCall(e.now+d, call, arg) }

// Step executes the single earliest pending event and reports whether one
// was executed.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	e.nsteps++
	if e.prof != nil && e.nsteps&(selfProfStride-1) == 0 {
		e.profSample(&ev)
	}
	if ev.call != nil {
		ev.call(ev.arg)
	} else {
		ev.fn()
	}
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t. Events scheduled beyond t remain queued.
func (e *Engine) RunUntil(t Time) {
	for len(e.heap) > 0 && e.heap[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunWhile executes events until the queue drains or cond returns false.
// cond is checked before each event.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}

func (e *Engine) less(i, j int) bool {
	if e.heap[i].at != e.heap[j].at {
		return e.heap[i].at < e.heap[j].at
	}
	return e.heap[i].seq < e.heap[j].seq
}

func (e *Engine) push(ev event) {
	e.heap = append(e.heap, ev)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

func (e *Engine) pop() event {
	top := e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap = e.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && e.less(l, smallest) {
			smallest = l
		}
		if r < last && e.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		e.heap[i], e.heap[smallest] = e.heap[smallest], e.heap[i]
		i = smallest
	}
	return top
}
