//go:build race

package sim

// raceEnabled reports whether the binary was built with the race detector.
const raceEnabled = true
