//go:build !race

package sim

// raceEnabled reports whether the binary was built with the race detector.
// Timing-sensitive guards (the ns/op benchmark pin) skip under race, where
// every memory access carries instrumentation overhead.
const raceEnabled = false
