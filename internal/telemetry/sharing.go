package telemetry

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"text/tabwriter"

	"ccsim/internal/memsys"
	"ccsim/internal/stats"
)

// SharingClass labels a block's observed access pattern. The taxonomy is the
// one the paper's analysis implies: each protocol extension pays off on a
// specific pattern (prefetch on read-only/read-mostly streams, the migratory
// optimization on migratory blocks, competitive update on producer-consumer
// ones), so attributing misses and traffic per class explains *why* a
// combination wins.
type SharingClass int

const (
	// ShareReadOnly blocks were never written inside the measured section.
	ShareReadOnly SharingClass = iota
	// ShareReadMostly blocks are written rarely relative to reads and read
	// by several nodes (e.g. slowly-updated global state).
	ShareReadMostly
	// ShareMigratory blocks pass read-modify-write ownership from node to
	// node (the access stream shows writer changes that each follow the new
	// writer's own read).
	ShareMigratory
	// ShareProducerConsumer blocks have a single writer repeatedly feeding
	// one or more distinct reader nodes.
	ShareProducerConsumer
	// ShareFalseSharing blocks have several writers that touch disjoint
	// word sets — coherence activity without data communication.
	ShareFalseSharing
	// ShareIrregular is everything else, including thread-private
	// read-write blocks and streams too mixed to name.
	ShareIrregular

	// NumSharingClasses sizes per-class arrays.
	NumSharingClasses
)

var sharingClassNames = [NumSharingClasses]string{
	"read-only", "read-mostly", "migratory", "producer-consumer",
	"false-sharing", "irregular",
}

// String returns the class's hyphenated name ("producer-consumer", ...).
func (c SharingClass) String() string {
	if c < 0 || c >= NumSharingClasses {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return sharingClassNames[c]
}

// Classification thresholds. Tuned against the litmus sharing shapes; the
// exact values matter less than the ordering of the rules (see classify).
const (
	// readMostlyRatio: reads per write at or above which a multi-reader
	// block counts as read-mostly.
	readMostlyRatio = 16
	// migratoryMinChanges: writer changes before a block can be called
	// migratory (a single handoff is just data passing once).
	migratoryMinChanges = 2
)

// blockShare is the per-block classifier state: node sets, per-word writer
// sets, and the handoff detector. Nodes beyond 63 clamp into bit 63 — the
// classifier only needs "one node or several", not exact identity.
type blockShare struct {
	class SharingClass

	reads, writes uint64
	misses        uint64
	invals        uint64
	updates       uint64
	msgs          uint64
	ctlBytes      uint64
	dataBytes     uint64
	updateBytes   uint64
	readers       uint64                       // node bitmask
	writers       uint64                       // node bitmask
	wordWriters   [memsys.WordsPerBlock]uint64 // per-word writer bitmasks
	overlap       bool                         // two writers share a word
	writerChanges uint64                       // writes by a node other than the previous writer
	handoffs      uint64                       // writer changes preceded by the new writer's own read
	lastWriter    int16
	lastTouchNode int16
	lastTouchRead bool
}

func nodeBit(n int) uint64 {
	if n > 63 {
		n = 63
	}
	return 1 << uint(n)
}

// classify names the block from its accumulated state. Rule order matters:
// false sharing (several writers, disjoint words) is checked before
// migratory so alternating disjoint-word writers don't masquerade as
// ownership handoffs; migratory before read-mostly so a
// read-modify-write chain with a long read tail stays migratory.
func (bs *blockShare) classify() SharingClass {
	if bs.writes == 0 {
		return ShareReadOnly
	}
	nw := bits.OnesCount64(bs.writers)
	nr := bits.OnesCount64(bs.readers)
	switch {
	case nw >= 2 && !bs.overlap:
		return ShareFalseSharing
	case bs.writerChanges >= migratoryMinChanges && 2*bs.handoffs >= bs.writerChanges:
		return ShareMigratory
	case bs.reads >= readMostlyRatio*bs.writes && nr >= 2:
		return ShareReadMostly
	case nw == 1 && bs.readers&^bs.writers != 0 && bs.writes >= 2:
		return ShareProducerConsumer
	}
	return ShareIrregular
}

// ClassTotals accumulates one class's attribution: how many blocks currently
// carry the label and the events their access streams generated.
type ClassTotals struct {
	Blocks        uint64
	Reads         uint64
	Writes        uint64
	Misses        uint64
	Invalidations uint64
	Updates       uint64
	Msgs          uint64
	CtlBytes      uint64
	DataBytes     uint64
	UpdateBytes   uint64
}

func (t *ClassTotals) add(bs *blockShare) {
	t.Blocks++
	t.Reads += bs.reads
	t.Writes += bs.writes
	t.Misses += bs.misses
	t.Invalidations += bs.invals
	t.Updates += bs.updates
	t.Msgs += bs.msgs
	t.CtlBytes += bs.ctlBytes
	t.DataBytes += bs.dataBytes
	t.UpdateBytes += bs.updateBytes
}

func (t *ClassTotals) sub(bs *blockShare) {
	t.Blocks--
	t.Reads -= bs.reads
	t.Writes -= bs.writes
	t.Misses -= bs.misses
	t.Invalidations -= bs.invals
	t.Updates -= bs.updates
	t.Msgs -= bs.msgs
	t.CtlBytes -= bs.ctlBytes
	t.DataBytes -= bs.dataBytes
	t.UpdateBytes -= bs.updateBytes
}

func (t *ClassTotals) merge(o *ClassTotals) {
	t.Blocks += o.Blocks
	t.Reads += o.Reads
	t.Writes += o.Writes
	t.Misses += o.Misses
	t.Invalidations += o.Invalidations
	t.Updates += o.Updates
	t.Msgs += o.Msgs
	t.CtlBytes += o.CtlBytes
	t.DataBytes += o.DataBytes
	t.UpdateBytes += o.UpdateBytes
}

// SharingTotals is the per-class aggregate: event counters plus the
// miss-latency histogram of each class. The counters follow blocks as they
// reclassify (a block's whole accumulated history moves to its new class);
// latency samples are attributed at miss time and stay where they landed,
// since histograms can't be split retroactively.
type SharingTotals struct {
	Classes [NumSharingClasses]ClassTotals
	Latency [NumSharingClasses]stats.Hist
}

// Merge accumulates another run's totals, for sweep-wide aggregation.
func (t *SharingTotals) Merge(o *SharingTotals) {
	if o == nil {
		return
	}
	for i := range t.Classes {
		t.Classes[i].merge(&o.Classes[i])
		t.Latency[i].Merge(o.Latency[i])
	}
}

// Sharing is the online per-block sharing-pattern analyzer. Hooked into the
// cache controllers and the network with the same nil-pointer side-channel
// pattern the tracer and checker use: a nil *Sharing is a no-op on every
// method, and the instrumented paths test one pointer when it's off.
// Hooks fire only inside the measured section (statsOn), matching the
// SPLASH methodology everywhere else in the simulator. Not safe for
// concurrent use within one run (the engine is single-threaded); sweeps
// attach a fresh analyzer per run and Merge the totals.
type Sharing struct {
	blocks map[uint64]*blockShare
	tot    SharingTotals
}

// NewSharing returns an empty analyzer ready to attach to a run.
func NewSharing() *Sharing {
	return &Sharing{blocks: make(map[uint64]*blockShare)}
}

func (s *Sharing) get(b uint64) *blockShare {
	bs := s.blocks[b]
	if bs == nil {
		bs = &blockShare{class: ShareReadOnly, lastWriter: -1, lastTouchNode: -1}
		s.tot.Classes[ShareReadOnly].Blocks++
		s.blocks[b] = bs
	}
	return bs
}

// settle re-derives the block's class after a state change, migrating its
// accumulated counters between class totals when the label flips. mutate
// runs with the block's contribution removed from the totals, so every
// counter bump inside it is automatically reflected.
func (s *Sharing) settle(bs *blockShare, mutate func()) {
	s.tot.Classes[bs.class].sub(bs)
	mutate()
	bs.class = bs.classify()
	s.tot.Classes[bs.class].add(bs)
}

// OnRead records a processor read (FLC hits included — classification needs
// the full access stream, not just the miss stream).
func (s *Sharing) OnRead(node int, b uint64) {
	if s == nil {
		return
	}
	bs := s.get(b)
	s.settle(bs, func() {
		bs.reads++
		bs.readers |= nodeBit(node)
		bs.lastTouchNode = clampNode(node)
		bs.lastTouchRead = true
	})
}

// OnWrite records a processor write of one word (at first-level write-buffer
// accept time, so it is exactly once per program-order write under every
// protocol, write-cache combining included).
func (s *Sharing) OnWrite(node int, b uint64, word int) {
	if s == nil {
		return
	}
	bs := s.get(b)
	s.settle(bs, func() {
		bs.writes++
		bit := nodeBit(node)
		bs.writers |= bit
		if word >= 0 && word < memsys.WordsPerBlock {
			if bs.wordWriters[word]&^bit != 0 {
				bs.overlap = true
			}
			bs.wordWriters[word] |= bit
		}
		cn := clampNode(node)
		if bs.lastWriter >= 0 && bs.lastWriter != cn {
			bs.writerChanges++
			if bs.lastTouchRead && bs.lastTouchNode == cn {
				bs.handoffs++
			}
		}
		bs.lastWriter = cn
		bs.lastTouchNode = cn
		bs.lastTouchRead = false
	})
}

func clampNode(n int) int16 {
	if n > 63 {
		n = 63
	}
	return int16(n)
}

// OnMiss records an SLC demand read miss on the block.
func (s *Sharing) OnMiss(node int, b uint64) {
	if s == nil {
		return
	}
	bs := s.get(b)
	s.settle(bs, func() { bs.misses++ })
	_ = node
}

// OnMissLatency attributes one demand-miss service time (pclocks) to the
// block's class at completion time.
func (s *Sharing) OnMissLatency(b uint64, lat int64) {
	if s == nil {
		return
	}
	bs := s.get(b)
	s.tot.Latency[bs.class].Add(lat)
}

// OnInvalidate records a coherence invalidation of the block's SLC copy
// (replacement victims are not counted).
func (s *Sharing) OnInvalidate(node int, b uint64) {
	if s == nil {
		return
	}
	bs := s.get(b)
	s.settle(bs, func() { bs.invals++ })
	_ = node
}

// OnUpdate records a write-update delivery to the block's copy (competitive
// update protocol).
func (s *Sharing) OnUpdate(node int, b uint64) {
	if s == nil {
		return
	}
	bs := s.get(b)
	s.settle(bs, func() { bs.updates++ })
	_ = node
}

// OnTraffic attributes one network message to the block's class by message
// kind. Sync fabric messages carry no block and are skipped.
func (s *Sharing) OnTraffic(b uint64, class stats.MsgClass, bytes int) {
	if s == nil || class == stats.SyncMsg {
		return
	}
	bs := s.get(b)
	s.settle(bs, func() {
		bs.msgs++
		switch class {
		case stats.CtlMsg:
			bs.ctlBytes += uint64(bytes)
		case stats.DataMsg:
			bs.dataBytes += uint64(bytes)
		case stats.UpdateMsg:
			bs.updateBytes += uint64(bytes)
		}
	})
}

// ClassOf reports the block's current label; ok is false if the block was
// never observed.
func (s *Sharing) ClassOf(b uint64) (SharingClass, bool) {
	if s == nil {
		return 0, false
	}
	bs := s.blocks[b]
	if bs == nil {
		return 0, false
	}
	return bs.class, true
}

// ClassBlocks returns how many blocks currently carry the class — shaped for
// WatchGauge, so the timeline export grows one counter track per class.
func (s *Sharing) ClassBlocks(c SharingClass) int64 {
	if s == nil || c < 0 || c >= NumSharingClasses {
		return 0
	}
	return int64(s.tot.Classes[c].Blocks)
}

// ClassMisses returns the class's accumulated demand misses (WatchGauge
// shape, same as ClassBlocks).
func (s *Sharing) ClassMisses(c SharingClass) int64 {
	if s == nil || c < 0 || c >= NumSharingClasses {
		return 0
	}
	return int64(s.tot.Classes[c].Misses)
}

// Totals returns a copy of the per-class aggregate (nil receiver → nil).
func (s *Sharing) Totals() *SharingTotals {
	if s == nil {
		return nil
	}
	t := s.tot
	return &t
}

// SharingClassStats is one class's row in a report.
type SharingClassStats struct {
	Class         string
	Blocks        uint64
	Reads         uint64
	Writes        uint64
	Misses        uint64
	Invalidations uint64
	Updates       uint64
	Msgs          uint64
	CtlBytes      uint64
	DataBytes     uint64
	UpdateBytes   uint64

	// Miss-latency distribution points in pclocks (bucketed upper bounds;
	// Max is exact). Zero when the class took no misses.
	MissLatencyP50 int64
	MissLatencyP95 int64
	MissLatencyP99 int64
	MissLatencyMax int64
}

// SharingReport is the per-class summary exported in Result.Sharing and on
// the ops plane's /sharing endpoint. Classes appear in fixed taxonomy order;
// classes with no blocks are omitted.
type SharingReport struct {
	Blocks  uint64 // distinct blocks observed
	Classes []SharingClassStats
}

// Report renders the totals (nil or empty → nil, keeping Result JSON and
// the golden baselines byte-identical when analytics are off).
func (t *SharingTotals) Report() *SharingReport {
	if t == nil {
		return nil
	}
	r := &SharingReport{}
	for c := SharingClass(0); c < NumSharingClasses; c++ {
		ct := &t.Classes[c]
		if ct.Blocks == 0 && t.Latency[c].Count() == 0 {
			continue
		}
		r.Blocks += ct.Blocks
		h := &t.Latency[c]
		r.Classes = append(r.Classes, SharingClassStats{
			Class:         c.String(),
			Blocks:        ct.Blocks,
			Reads:         ct.Reads,
			Writes:        ct.Writes,
			Misses:        ct.Misses,
			Invalidations: ct.Invalidations,
			Updates:       ct.Updates,
			Msgs:          ct.Msgs,
			CtlBytes:      ct.CtlBytes,
			DataBytes:     ct.DataBytes,
			UpdateBytes:   ct.UpdateBytes,

			MissLatencyP50: h.Quantile(50),
			MissLatencyP95: h.Quantile(95),
			MissLatencyP99: h.Quantile(99),
			MissLatencyMax: h.Max(),
		})
	}
	if r.Blocks == 0 {
		return nil
	}
	return r
}

// Report summarizes the analyzer's current state (nil-safe).
func (s *Sharing) Report() *SharingReport {
	if s == nil {
		return nil
	}
	return s.tot.Report()
}

// Fprint renders the report as an aligned text table (nil receiver prints
// nothing), sorted by block count within the fixed class order already in
// Classes — callers route this to stderr or a file, never stdout.
func (r *SharingReport) Fprint(w io.Writer) {
	if r == nil {
		return
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "sharing patterns (%d blocks)\n", r.Blocks)
	fmt.Fprintln(tw, "class\tblocks\treads\twrites\tmisses\tinvals\tupdates\tctlB\tdataB\tupdB\tmissP50\tmissP95\tmissMax")
	rows := make([]SharingClassStats, len(r.Classes))
	copy(rows, r.Classes)
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Blocks > rows[j].Blocks })
	for _, c := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			c.Class, c.Blocks, c.Reads, c.Writes, c.Misses, c.Invalidations,
			c.Updates, c.CtlBytes, c.DataBytes, c.UpdateBytes,
			c.MissLatencyP50, c.MissLatencyP95, c.MissLatencyMax)
	}
	tw.Flush()
}
