// Package telemetry is the simulator's observability layer: causal
// transaction spans that decompose each coherence transaction's latency into
// protocol phases, processor stall intervals, directory-transition instants,
// and a time-series sampler of resource utilization. Everything is collected
// in simulated time (pclocks) from deterministic event ordering, so two
// identical runs produce identical telemetry byte for byte.
//
// A nil *Collector is valid everywhere and records nothing: the simulator
// core calls straight into nil-receiver methods on its hot paths, which keeps
// the disabled path free of allocations and branches beyond the nil check.
package telemetry

import (
	"ccsim/internal/sim"
)

// SpanKind identifies what a transaction span measures.
type SpanKind uint8

const (
	// SpanRead is a demand read miss, from SLC lookup to FLC fill.
	SpanRead SpanKind = iota
	// SpanPrefetch is a prefetcher-issued fetch.
	SpanPrefetch
	// SpanOwnership is a write's ownership acquisition.
	SpanOwnership
	// SpanUpdate is a competitive-update (combined write) round.
	SpanUpdate
)

func (k SpanKind) String() string {
	switch k {
	case SpanRead:
		return "read-miss"
	case SpanPrefetch:
		return "prefetch"
	case SpanOwnership:
		return "ownership"
	case SpanUpdate:
		return "update"
	}
	return "?"
}

// Phase labels one segment of a transaction's timeline. A mark names the
// phase that ends at it, so consecutive marks partition the span into
// contiguous segments: the per-phase durations always sum exactly to the
// span's end-to-end latency.
type Phase uint8

const (
	// PhaseRequest: requester bus + network transit of the request to home.
	PhaseRequest Phase = iota
	// PhaseDirWait: queueing behind a busy directory entry at home.
	PhaseDirWait
	// PhaseMemory: a memory/directory access at home.
	PhaseMemory
	// PhaseForward: home-to-dirty-owner transit of a forwarded request.
	PhaseForward
	// PhaseOwner: the owner's lookup plus its reply's transit back to home.
	PhaseOwner
	// PhaseGather: an invalidation/update fan-out round trip at home.
	PhaseGather
	// PhaseReply: home-to-requester transit of the reply.
	PhaseReply
	// PhaseFill: SLC handler occupancy and fill at the requester.
	PhaseFill
	// NumPhases bounds the enum.
	NumPhases
)

func (p Phase) String() string {
	switch p {
	case PhaseRequest:
		return "request"
	case PhaseDirWait:
		return "dir-wait"
	case PhaseMemory:
		return "memory"
	case PhaseForward:
		return "forward"
	case PhaseOwner:
		return "owner"
	case PhaseGather:
		return "gather"
	case PhaseReply:
		return "reply"
	case PhaseFill:
		return "fill"
	}
	return "?"
}

// Mark is one per-hop timestamp inside a span: the phase that ended at At.
type Mark struct {
	Phase Phase
	At    int64
}

// Span is one completed coherence transaction.
type Span struct {
	ID    uint64
	Node  int // requesting node
	Block uint64
	Kind  SpanKind
	Start int64
	End   int64
	Marks []Mark
}

// Latency returns the span's end-to-end duration in pclocks.
func (s *Span) Latency() int64 { return s.End - s.Start }

// Durations returns the per-phase time decomposition. The entries sum
// exactly to Latency().
func (s *Span) Durations() [NumPhases]int64 {
	var d [NumPhases]int64
	prev := s.Start
	for _, m := range s.Marks {
		d[m.Phase] += m.At - prev
		prev = m.At
	}
	return d
}

// Dominant returns the phase holding the largest share of the span's
// latency.
func (s *Span) Dominant() Phase {
	d := s.Durations()
	best := Phase(0)
	for p := Phase(1); p < NumPhases; p++ {
		if d[p] > d[best] {
			best = p
		}
	}
	return best
}

// Stall is one interval a processor spent blocked on the memory system.
type Stall struct {
	Node  int
	Kind  string // read, write, acquire, barrier, release
	Start int64
	End   int64
}

// Instant is a point event on a node's timeline (directory transitions).
type Instant struct {
	Node  int
	Name  string
	Block uint64
	At    int64
}

// Options bounds the collector's memory. Zero values select the defaults.
type Options struct {
	MaxSpans    int      // completed spans kept (default 50000)
	MaxStalls   int      // stall intervals kept (default 100000)
	MaxInstants int      // instants kept (default 100000)
	MaxSamples  int      // sampler snapshots kept (default 4096)
	SampleEvery sim.Time // sampling period in pclocks (default 1000)
}

// DefaultOptions returns the default bounds.
func DefaultOptions() Options {
	return Options{
		MaxSpans:    50000,
		MaxStalls:   100000,
		MaxInstants: 100000,
		MaxSamples:  4096,
		SampleEvery: 1000,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.MaxSpans <= 0 {
		o.MaxSpans = d.MaxSpans
	}
	if o.MaxStalls <= 0 {
		o.MaxStalls = d.MaxStalls
	}
	if o.MaxInstants <= 0 {
		o.MaxInstants = d.MaxInstants
	}
	if o.MaxSamples <= 0 {
		o.MaxSamples = d.MaxSamples
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = d.SampleEvery
	}
	return o
}

// Collector accumulates one run's telemetry. Construct with New; the zero
// value is not usable, but a nil *Collector is a valid no-op sink.
type Collector struct {
	opts Options

	nextID  uint64
	open    map[uint64]*Span
	spans   []*Span
	dropped uint64

	stalls   []Stall
	instants []Instant

	watches []*resourceWatch
	gauges  []gaugeWatch
	samples []Sample
	lastAt  sim.Time
}

// New returns an empty collector with the given bounds.
func New(opts Options) *Collector {
	return &Collector{opts: opts.withDefaults(), open: make(map[uint64]*Span)}
}

// Begin opens a span and returns its transaction ID, or 0 when the
// collector is nil or full. ID 0 is the universal "untracked" transaction:
// Mark and End ignore it.
func (c *Collector) Begin(node int, block uint64, kind SpanKind, at int64) uint64 {
	if c == nil {
		return 0
	}
	if len(c.open)+len(c.spans) >= c.opts.MaxSpans {
		c.dropped++
		return 0
	}
	c.nextID++
	id := c.nextID
	c.open[id] = &Span{ID: id, Node: node, Block: block, Kind: kind, Start: at}
	return id
}

// Mark timestamps the end of a phase inside span id. Unknown or zero IDs
// are ignored.
func (c *Collector) Mark(id uint64, ph Phase, at int64) {
	if c == nil || id == 0 {
		return
	}
	s := c.open[id]
	if s == nil {
		return
	}
	s.Marks = append(s.Marks, Mark{Phase: ph, At: at})
}

// End closes span id at the given time, labelling the final segment as
// PhaseFill.
func (c *Collector) End(id uint64, at int64) {
	if c == nil || id == 0 {
		return
	}
	s := c.open[id]
	if s == nil {
		return
	}
	delete(c.open, id)
	s.Marks = append(s.Marks, Mark{Phase: PhaseFill, At: at})
	s.End = at
	c.spans = append(c.spans, s)
}

// StallInterval records one processor-blocked interval. Empty intervals are
// dropped.
func (c *Collector) StallInterval(node int, kind string, start, end int64) {
	if c == nil || end <= start || len(c.stalls) >= c.opts.MaxStalls {
		return
	}
	c.stalls = append(c.stalls, Stall{Node: node, Kind: kind, Start: start, End: end})
}

// RecordInstant records a point event on a node's timeline.
func (c *Collector) RecordInstant(node int, name string, block uint64, at int64) {
	if c == nil || len(c.instants) >= c.opts.MaxInstants {
		return
	}
	c.instants = append(c.instants, Instant{Node: node, Name: name, Block: block, At: at})
}

// Spans returns the completed spans in completion order.
func (c *Collector) Spans() []*Span {
	if c == nil {
		return nil
	}
	return c.spans
}

// DroppedSpans reports how many spans the MaxSpans cap discarded.
func (c *Collector) DroppedSpans() uint64 {
	if c == nil {
		return 0
	}
	return c.dropped
}

// Stalls returns the recorded processor stall intervals.
func (c *Collector) Stalls() []Stall {
	if c == nil {
		return nil
	}
	return c.stalls
}

// Instants returns the recorded point events.
func (c *Collector) Instants() []Instant {
	if c == nil {
		return nil
	}
	return c.instants
}

// PhaseTotals sums the per-phase durations of all completed spans of the
// given kind, keyed by phase name. Phases that never occurred are omitted.
func (c *Collector) PhaseTotals(kind SpanKind) map[string]int64 {
	if c == nil || len(c.spans) == 0 {
		return nil
	}
	var tot [NumPhases]int64
	any := false
	for _, s := range c.spans {
		if s.Kind != kind {
			continue
		}
		any = true
		d := s.Durations()
		for p := Phase(0); p < NumPhases; p++ {
			tot[p] += d[p]
		}
	}
	if !any {
		return nil
	}
	out := make(map[string]int64)
	for p := Phase(0); p < NumPhases; p++ {
		if tot[p] != 0 {
			out[p.String()] = tot[p]
		}
	}
	return out
}
