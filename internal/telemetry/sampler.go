package telemetry

import (
	"ccsim/internal/sim"
	"ccsim/internal/stats"
)

// resourceWatch tracks one sim.Resource between samples.
type resourceWatch struct {
	name string
	node int
	res  *sim.Resource

	lastBusy sim.Time
	lastWait sim.Time

	// depths is the distribution of instantaneous queue depths across
	// samples — the shared log-bucketed histogram also used for miss
	// latencies.
	depths stats.Hist
}

// gaugeWatch samples an arbitrary monotone or instantaneous counter.
type gaugeWatch struct {
	name string
	node int
	fn   func() int64
}

// Sample is one sampler snapshot. Util, Wait and Depth are indexed like the
// collector's watches, Gauges like its gauges.
type Sample struct {
	At    int64
	Util  []float64 // busy fraction of each watched resource over the interval
	Wait  []int64   // queue-wait pclocks accrued over the interval
	Depth []int     // instantaneous queue depth
	Gauge []int64
}

// WatchResource registers a resource for periodic utilization sampling.
// node is the owning node's ID, or negative for machine-wide resources.
func (c *Collector) WatchResource(name string, node int, r *sim.Resource) {
	if c == nil || r == nil {
		return
	}
	c.watches = append(c.watches, &resourceWatch{name: name, node: node, res: r})
}

// WatchGauge registers a counter sampled alongside the resources.
func (c *Collector) WatchGauge(name string, node int, fn func() int64) {
	if c == nil || fn == nil {
		return
	}
	c.gauges = append(c.gauges, gaugeWatch{name: name, node: node, fn: fn})
}

// StartSampler schedules the first snapshot Options.SampleEvery pclocks from
// now. Each tick reschedules itself only while the engine still has pending
// events, so the sampler drains with the simulation instead of keeping it
// alive — an engine with no work at all (a zero-duration run) gets no tick
// and no samples. Sampling reads counters only; it never changes timing.
// Calling StartSampler again on a reused engine resumes cleanly: the
// interval baseline resets to the engine's current time, so the first new
// sample measures only the new run.
func (c *Collector) StartSampler(eng *sim.Engine) {
	if c == nil || (len(c.watches) == 0 && len(c.gauges) == 0) {
		return
	}
	if eng.Pending() == 0 {
		return
	}
	c.lastAt = eng.Now()
	every := c.opts.SampleEvery
	var tick func()
	tick = func() {
		c.sample(eng.Now())
		if eng.Pending() > 0 && len(c.samples) < c.opts.MaxSamples {
			eng.After(every, tick)
		}
	}
	eng.After(every, tick)
}

func (c *Collector) sample(now sim.Time) {
	dt := now - c.lastAt
	c.lastAt = now
	s := Sample{
		At:    int64(now),
		Util:  make([]float64, len(c.watches)),
		Wait:  make([]int64, len(c.watches)),
		Depth: make([]int, len(c.watches)),
		Gauge: make([]int64, len(c.gauges)),
	}
	for i, w := range c.watches {
		// BusyTime is booked wholesale at reservation time, but queued
		// reservations run contiguously up to FreeAt, so the portion already
		// realized by `now` is exact: total minus what still lies ahead.
		busy, wait := w.res.BusyTime(), w.res.WaitTime()
		if f := w.res.FreeAt(); f > now {
			busy -= f - now
		}
		if dt > 0 {
			s.Util[i] = float64(busy-w.lastBusy) / float64(dt)
		}
		s.Wait[i] = int64(wait - w.lastWait)
		w.lastBusy, w.lastWait = busy, wait
		d := w.res.QueueDepth()
		s.Depth[i] = d
		w.depths.Add(int64(d))
	}
	for i, g := range c.gauges {
		s.Gauge[i] = g.fn()
	}
	c.samples = append(c.samples, s)
}

// Samples returns the snapshots taken so far.
func (c *Collector) Samples() []Sample {
	if c == nil {
		return nil
	}
	return c.samples
}

// DepthHist returns the sampled queue-depth distribution of watch i (in
// registration order) and the watch's name, for tests and reports.
func (c *Collector) DepthHist(i int) (string, stats.Hist) {
	if c == nil || i < 0 || i >= len(c.watches) {
		return "", stats.Hist{}
	}
	return c.watches[i].name, c.watches[i].depths
}
