package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// Trace-event track IDs within each node's process.
const (
	tidStalls = 0 // processor stall intervals
	tidSpans  = 1 // transaction spans with nested phase slices
	tidDir    = 2 // directory-transition instants
)

// traceEvent is one Chrome trace-event object. Field order is fixed and maps
// marshal with sorted keys, so output bytes depend only on collected data.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTimeline renders the collected telemetry as Chrome trace-event JSON
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Each node is a
// process with three tracks — cpu stalls, transactions, directory — plus one
// counter track per watched resource. Timestamps are pclocks. Output is
// byte-identical across identical runs.
func (c *Collector) WriteTimeline(w io.Writer) error {
	if c == nil {
		return fmt.Errorf("telemetry: no collector")
	}
	maxNode := 0
	note := func(n int) {
		if n > maxNode {
			maxNode = n
		}
	}
	for _, s := range c.spans {
		note(s.Node)
	}
	for _, s := range c.stalls {
		note(s.Node)
	}
	for _, in := range c.instants {
		note(in.Node)
	}
	for _, rw := range c.watches {
		note(rw.node)
	}
	for _, g := range c.gauges {
		note(g.node)
	}
	machinePid := maxNode + 1 // synthetic process for machine-wide counters
	pid := func(node int) int {
		if node < 0 {
			return machinePid
		}
		return node
	}

	var ev []traceEvent
	// Metadata: name every process and track up front.
	for n := 0; n <= maxNode; n++ {
		ev = append(ev,
			traceEvent{Name: "process_name", Ph: "M", Pid: n, Args: map[string]any{"name": fmt.Sprintf("node %d", n)}},
			traceEvent{Name: "thread_name", Ph: "M", Pid: n, Tid: tidStalls, Args: map[string]any{"name": "cpu stalls"}},
			traceEvent{Name: "thread_name", Ph: "M", Pid: n, Tid: tidSpans, Args: map[string]any{"name": "transactions"}},
			traceEvent{Name: "thread_name", Ph: "M", Pid: n, Tid: tidDir, Args: map[string]any{"name": "directory"}},
		)
	}
	ev = append(ev, traceEvent{Name: "process_name", Ph: "M", Pid: machinePid, Args: map[string]any{"name": "machine"}})

	for _, s := range c.stalls {
		ev = append(ev, traceEvent{
			Name: s.Kind + " stall", Ph: "X", Ts: s.Start, Dur: s.End - s.Start,
			Pid: s.Node, Tid: tidStalls,
		})
	}

	for _, s := range c.spans {
		ev = append(ev, traceEvent{
			Name: s.Kind.String(), Ph: "X", Ts: s.Start, Dur: s.End - s.Start,
			Pid: s.Node, Tid: tidSpans,
			Args: map[string]any{
				"block":    s.Block,
				"txn":      s.ID,
				"dominant": s.Dominant().String(),
			},
		})
		// Phase slices nest under the span by containment on the same track.
		prev := s.Start
		for _, m := range s.Marks {
			if d := m.At - prev; d > 0 {
				ev = append(ev, traceEvent{
					Name: m.Phase.String(), Ph: "X", Ts: prev, Dur: d,
					Pid: s.Node, Tid: tidSpans,
					Args: map[string]any{"txn": s.ID},
				})
			}
			prev = m.At
		}
	}

	for _, in := range c.instants {
		ev = append(ev, traceEvent{
			Name: in.Name, Ph: "i", Ts: in.At, Pid: in.Node, Tid: tidDir, S: "t",
			Args: map[string]any{"block": in.Block},
		})
	}

	for _, s := range c.samples {
		for i, rw := range c.watches {
			ev = append(ev,
				traceEvent{
					Name: rw.name + " util", Ph: "C", Ts: s.At, Pid: pid(rw.node), Tid: 0,
					Args: map[string]any{"value": s.Util[i]},
				},
				traceEvent{
					Name: rw.name + " qdepth", Ph: "C", Ts: s.At, Pid: pid(rw.node), Tid: 0,
					Args: map[string]any{"value": s.Depth[i]},
				},
			)
		}
		for i, g := range c.gauges {
			ev = append(ev, traceEvent{
				Name: g.name, Ph: "C", Ts: s.At, Pid: pid(g.node), Tid: 0,
				Args: map[string]any{"value": s.Gauge[i]},
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: ev, DisplayTimeUnit: "ns"})
}
