package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"

	"ccsim/internal/sim"
)

func TestSpanSegmentsSumToLatency(t *testing.T) {
	c := New(Options{})
	id := c.Begin(3, 42, SpanRead, 100)
	if id == 0 {
		t.Fatal("Begin returned 0 on a live collector")
	}
	c.Mark(id, PhaseRequest, 160)
	c.Mark(id, PhaseDirWait, 165)
	c.Mark(id, PhaseMemory, 174)
	c.Mark(id, PhaseReply, 234)
	c.End(id, 250)

	spans := c.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Latency() != 150 {
		t.Fatalf("Latency = %d, want 150", s.Latency())
	}
	d := s.Durations()
	var sum int64
	for _, v := range d {
		sum += v
	}
	if sum != s.Latency() {
		t.Fatalf("phase durations sum to %d, latency is %d", sum, s.Latency())
	}
	if d[PhaseRequest] != 60 || d[PhaseDirWait] != 5 || d[PhaseMemory] != 9 ||
		d[PhaseReply] != 60 || d[PhaseFill] != 16 {
		t.Fatalf("durations = %v", d)
	}
	if s.Dominant() != PhaseRequest {
		// request and reply tie at 60; the earlier phase wins ties.
		t.Fatalf("Dominant = %v", s.Dominant())
	}
}

func TestRepeatedPhaseAccumulates(t *testing.T) {
	// A dirty-miss span visits memory twice (directory read, then the
	// post-forward write); the durations must accumulate.
	c := New(Options{})
	id := c.Begin(0, 7, SpanRead, 0)
	c.Mark(id, PhaseRequest, 60)
	c.Mark(id, PhaseMemory, 69)
	c.Mark(id, PhaseForward, 129)
	c.Mark(id, PhaseOwner, 191)
	c.Mark(id, PhaseMemory, 200)
	c.Mark(id, PhaseReply, 260)
	c.End(id, 270)
	d := c.Spans()[0].Durations()
	if d[PhaseMemory] != 18 {
		t.Fatalf("memory total = %d, want 18", d[PhaseMemory])
	}
	if c.Spans()[0].Dominant() != PhaseRequest && c.Spans()[0].Dominant() != PhaseForward {
		// 60-pclock transits dominate; exact winner is the first of the ties.
	}
}

func TestNilCollectorIsInert(t *testing.T) {
	var c *Collector
	id := c.Begin(0, 1, SpanRead, 0)
	if id != 0 {
		t.Fatal("nil collector issued a transaction ID")
	}
	c.Mark(id, PhaseRequest, 5)
	c.End(id, 10)
	c.StallInterval(0, "read", 0, 10)
	c.RecordInstant(0, "grant", 1, 5)
	c.WatchResource("bus", 0, nil)
	c.WatchGauge("g", 0, func() int64 { return 0 })
	if c.Spans() != nil || c.Stalls() != nil || c.Instants() != nil || c.Samples() != nil {
		t.Fatal("nil collector returned data")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		id := c.Begin(1, 2, SpanOwnership, 3)
		c.Mark(id, PhaseMemory, 4)
		c.End(id, 5)
		c.StallInterval(1, "write", 3, 9)
	})
	if allocs != 0 {
		t.Fatalf("nil collector allocated %.1f per op", allocs)
	}
}

func TestSpanCap(t *testing.T) {
	c := New(Options{MaxSpans: 2})
	a := c.Begin(0, 1, SpanRead, 0)
	b := c.Begin(0, 2, SpanRead, 0)
	c.End(a, 10)
	c.End(b, 10)
	if id := c.Begin(0, 3, SpanRead, 20); id != 0 {
		t.Fatal("cap exceeded: Begin should return 0")
	}
	if c.DroppedSpans() != 1 {
		t.Fatalf("DroppedSpans = %d, want 1", c.DroppedSpans())
	}
}

func TestStallIntervals(t *testing.T) {
	c := New(Options{})
	c.StallInterval(2, "read", 10, 30)
	c.StallInterval(2, "read", 30, 30) // empty: dropped
	st := c.Stalls()
	if len(st) != 1 || st[0].End-st[0].Start != 20 || st[0].Kind != "read" {
		t.Fatalf("stalls = %+v", st)
	}
}

func TestSamplerTerminatesAndMeasures(t *testing.T) {
	eng := sim.NewEngine()
	r := sim.NewResource(eng, "bus")
	c := New(Options{SampleEvery: 10})
	c.WatchResource("bus", 0, r)
	gauge := int64(7)
	c.WatchGauge("outstanding", -1, func() int64 { return gauge })

	// Occupy the bus fully for [0,20), then leave it idle until t=40.
	r.Use(20, nil)
	eng.At(40, func() {})
	c.StartSampler(eng)
	eng.Run()

	samples := c.Samples()
	// Ticks at 10, 20, 30, 40; the tick at 40 finds no pending events and
	// stops. The engine must not be kept alive past its own work.
	if len(samples) != 4 {
		t.Fatalf("got %d samples, want 4: %+v", len(samples), samples)
	}
	if eng.Now() != 40 {
		t.Fatalf("sampler kept the engine alive until %d", eng.Now())
	}
	if samples[0].Util[0] != 1.0 || samples[1].Util[0] != 1.0 {
		t.Fatalf("busy interval utilization = %v, %v, want 1.0", samples[0].Util[0], samples[1].Util[0])
	}
	if samples[2].Util[0] != 0 || samples[3].Util[0] != 0 {
		t.Fatalf("idle interval utilization nonzero: %+v", samples[2:])
	}
	for _, s := range samples {
		if s.Gauge[0] != 7 {
			t.Fatalf("gauge = %d, want 7", s.Gauge[0])
		}
	}
	name, dh := c.DepthHist(0)
	if name != "bus" || dh.Count() != 4 {
		t.Fatalf("depth hist %q count %d", name, dh.Count())
	}
}

func TestSamplerCap(t *testing.T) {
	eng := sim.NewEngine()
	r := sim.NewResource(eng, "bus")
	c := New(Options{SampleEvery: 1, MaxSamples: 3})
	c.WatchResource("bus", 0, r)
	eng.At(100, func() {})
	c.StartSampler(eng)
	eng.Run()
	if len(c.Samples()) != 3 {
		t.Fatalf("got %d samples, want cap 3", len(c.Samples()))
	}
}

func buildCollector() *Collector {
	c := New(Options{})
	id := c.Begin(1, 0x2a, SpanRead, 100)
	c.Mark(id, PhaseRequest, 160)
	c.Mark(id, PhaseMemory, 169)
	c.Mark(id, PhaseReply, 229)
	c.End(id, 245)
	c.StallInterval(1, "read", 98, 245)
	c.RecordInstant(0, "grant", 0x2a, 169)
	return c
}

func TestTimelineValidJSONAndDeterministic(t *testing.T) {
	var b1, b2 bytes.Buffer
	if err := buildCollector().WriteTimeline(&b1); err != nil {
		t.Fatal(err)
	}
	if err := buildCollector().WriteTimeline(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("identical collectors produced different timelines")
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b1.Bytes(), &parsed); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	var kinds []string
	for _, e := range parsed.TraceEvents {
		if e["ph"] == "X" {
			kinds = append(kinds, e["name"].(string))
		}
	}
	want := map[string]bool{"read-miss": false, "request": false, "memory": false, "reply": false, "fill": false, "read stall": false}
	for _, k := range kinds {
		if _, ok := want[k]; ok {
			want[k] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Fatalf("timeline missing %q slice; got %v", k, kinds)
		}
	}
}

func TestPhaseTotals(t *testing.T) {
	c := buildCollector()
	tot := c.PhaseTotals(SpanRead)
	if tot["request"] != 60 || tot["memory"] != 9 || tot["reply"] != 60 || tot["fill"] != 16 {
		t.Fatalf("PhaseTotals = %v", tot)
	}
	var sum int64
	for _, v := range tot {
		sum += v
	}
	if sum != 145 {
		t.Fatalf("phase totals sum %d, want 145", sum)
	}
	if c.PhaseTotals(SpanUpdate) != nil {
		t.Fatal("totals for an absent kind should be nil")
	}
}

// TestSamplerZeroDurationRun starts the sampler on an engine with no work:
// the run is zero-duration, so the sampler must record nothing and must not
// keep the engine alive past t=0.
func TestSamplerZeroDurationRun(t *testing.T) {
	eng := sim.NewEngine()
	r := sim.NewResource(eng, "bus")
	c := New(Options{SampleEvery: 10})
	c.WatchResource("bus", 0, r)
	c.StartSampler(eng)
	eng.Run()
	if len(c.Samples()) != 0 {
		t.Fatalf("zero-duration run produced %d samples: %+v", len(c.Samples()), c.Samples())
	}
	if eng.Now() != 0 {
		t.Fatalf("sampler advanced an empty engine to t=%d", eng.Now())
	}
	if _, dh := c.DepthHist(0); dh.Count() != 0 {
		t.Fatalf("depth hist counted %d entries on a zero-duration run", dh.Count())
	}
}

// TestDepthHistBounds checks DepthHist tolerates every out-of-range index
// and a nil receiver instead of panicking.
func TestDepthHistBounds(t *testing.T) {
	c := New(Options{SampleEvery: 10})
	eng := sim.NewEngine()
	c.WatchResource("bus", 0, sim.NewResource(eng, "bus"))
	for _, i := range []int{-1, 1, 2, 1 << 20} {
		if name, dh := c.DepthHist(i); name != "" || dh.Count() != 0 {
			t.Fatalf("DepthHist(%d) = %q, count %d; want empty", i, name, dh.Count())
		}
	}
	if name, _ := c.DepthHist(0); name != "bus" {
		t.Fatalf("DepthHist(0) = %q, want bus", name)
	}
	var nilC *Collector
	if name, dh := nilC.DepthHist(0); name != "" || dh.Count() != 0 {
		t.Fatal("nil collector DepthHist not inert")
	}
}

// TestSamplerRestartOnEngineReuse runs two back-to-back workloads on one
// engine with StartSampler called before each: the second start must reset
// the interval baseline to the engine's current time, so the first sample
// of the second run measures only the new interval (no negative or
// double-counted utilization).
func TestSamplerRestartOnEngineReuse(t *testing.T) {
	eng := sim.NewEngine()
	r := sim.NewResource(eng, "bus")
	c := New(Options{SampleEvery: 10})
	c.WatchResource("bus", 0, r)

	// Run 1: bus busy [0,10), with a completion event keeping the engine
	// populated through the interval.
	r.Use(10, func() {})
	c.StartSampler(eng)
	eng.Run()
	if n := len(c.Samples()); n != 1 {
		t.Fatalf("run 1: %d samples, want 1", n)
	}
	if u := c.Samples()[0].Util[0]; u != 1.0 {
		t.Fatalf("run 1 utilization = %g, want 1.0", u)
	}

	// Idle gap: the engine sits at t=10 with no events. Run 2 starts the
	// sampler again with the bus idle for its whole interval.
	eng.At(eng.Now()+20, func() {})
	c.StartSampler(eng)
	eng.Run()
	samples := c.Samples()
	if len(samples) != 3 {
		t.Fatalf("after run 2: %d samples, want 3: %+v", len(samples), samples)
	}
	for _, s := range samples[1:] {
		if s.Util[0] != 0 {
			t.Fatalf("run 2 idle utilization = %g at t=%d, want 0 (stale baseline?)", s.Util[0], s.At)
		}
		if s.Util[0] < 0 || s.Util[0] > 1 {
			t.Fatalf("utilization %g out of [0,1] at t=%d", s.Util[0], s.At)
		}
	}
	if samples[1].At != 20 || samples[2].At != 30 {
		t.Fatalf("run 2 sample times = %d, %d; want 20, 30", samples[1].At, samples[2].At)
	}
}
