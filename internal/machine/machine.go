// Package machine assembles a complete simulated multiprocessor — engine,
// interconnect, coherence system, processors and workload streams — runs it
// to completion, and collects the results the paper's evaluation reports.
package machine

import (
	"fmt"

	"ccsim/internal/check"
	"ccsim/internal/core"
	"ccsim/internal/fault"
	"ccsim/internal/network"
	"ccsim/internal/proc"
	"ccsim/internal/sim"
	"ccsim/internal/stats"
	"ccsim/internal/telemetry"
	"ccsim/internal/trace"
)

// NetKind selects the interconnect model.
type NetKind int

const (
	// NetUniform is the paper's default contention-free network.
	NetUniform NetKind = iota
	// NetMesh is the §5.3 wormhole mesh; LinkBits selects the width.
	NetMesh
)

// Config configures one simulation run.
type Config struct {
	Core core.Params

	Net      NetKind
	LinkBits int // mesh link width in bits (64/32/16)

	// MaxTime aborts runaway simulations past this simulated time
	// (0 = no limit); the watchdog reports the abort as a deadline fault.
	MaxTime sim.Time

	// MaxEvents aborts runs executing more than this many events
	// (0 = no limit).
	MaxEvents uint64

	// NoProgressEvents is the livelock threshold: abort when this many
	// consecutive events execute without any processor retiring an
	// operation. 0 selects DefaultNoProgressEvents; negative values are not
	// representable — use MaxEvents to bound a run outright.
	NoProgressEvents uint64

	// FlightRecorder is the fault flight recorder's depth in protocol
	// messages. 0 selects DefaultFlightRecorder; negative disables it.
	FlightRecorder int

	// InjectPanic deliberately panics inside the simulation shortly after
	// it starts — the chaos hook behind cmd/experiments -inject-fault,
	// exercising the whole fault-containment path on demand.
	InjectPanic bool

	// Tracer, when non-nil, receives protocol events.
	Tracer *trace.Tracer

	// Tele, when non-nil, collects transaction spans, processor stall
	// intervals and periodic utilization samples for the run.
	Tele *telemetry.Collector

	// Progress, when non-nil, is the live probe other goroutines snapshot
	// while the run executes (events, simulated time, wall-clock
	// heartbeat). The engine publishes through it lock-free.
	Progress *sim.Progress

	// Cancel, when non-nil, is the cooperative shutdown flag: firing it
	// from any goroutine aborts the run at the next event batch with a
	// canceled fault. May be shared across concurrent machines.
	Cancel *sim.Cancel

	// Check, when non-nil, attaches the live coherence checker: shadow
	// state updated at every directory/SLC transition, with a structured
	// SimFault at the first violated invariant. Forces VerifyData on (the
	// checker's value oracle rides the version plumbing). Nil is zero-cost
	// on the hot path, like Progress.
	Check *check.Oracle

	// Sharing, when non-nil, attaches the sharing-pattern analyzer to the
	// measured section's access stream. Nil costs one pointer test per hook,
	// like Check.
	Sharing *telemetry.Sharing

	// SelfProf, when non-nil, attaches the engine self-profiler (sampled
	// wall-clock attribution per event callback). May be shared across
	// concurrent machines.
	SelfProf *sim.SelfProfiler
}

// DefaultConfig returns the paper's baseline machine (BASIC, RC, uniform
// network).
func DefaultConfig() Config {
	return Config{Core: core.DefaultParams(), Net: NetUniform, LinkBits: 64}
}

// DefaultNoProgressEvents is the livelock threshold when the config leaves
// it zero. Legitimate no-progress spans are bounded by a few protocol
// round trips per processor (tens of events each); two million events
// without one operation retiring is orders of magnitude past any legal
// window at the paper's machine sizes.
const DefaultNoProgressEvents = 2_000_000

// DefaultFlightRecorder is the flight recorder's depth when the config
// leaves it zero: enough history to see the message pattern around a
// fault without bloating dumps.
const DefaultFlightRecorder = 64

// Machine is an assembled simulation.
type Machine struct {
	Cfg   Config
	Eng   *sim.Engine
	Sys   *core.System
	Net   network.Net
	Procs []*proc.Processor

	statsStart   sim.Time
	statsStarted bool
	doneCount    int
}

// meshSide returns the smallest square mesh holding n nodes.
func meshSide(n int) int {
	s := 1
	for s*s < n {
		s++
	}
	return s
}

// New builds a machine whose processor i executes streams[i].
func New(cfg Config, streams []proc.Stream) (*Machine, error) {
	if len(streams) != cfg.Core.Nodes {
		return nil, fmt.Errorf("machine: %d streams for %d nodes", len(streams), cfg.Core.Nodes)
	}
	if cfg.Check != nil {
		// The checker's sequential value oracle rides the VerifyData
		// version plumbing; force it on before the system is built.
		cfg.Core.VerifyData = true
	}
	eng := sim.NewEngine()
	var net network.Net
	switch cfg.Net {
	case NetUniform:
		net = network.NewUniform(eng, cfg.Core.Timing.NetLatency)
	case NetMesh:
		side := meshSide(cfg.Core.Nodes)
		net = network.NewMesh(eng, side, side, cfg.LinkBits)
	default:
		return nil, fmt.Errorf("machine: unknown network kind %d", cfg.Net)
	}
	sys, err := core.NewSystem(eng, net, cfg.Core)
	if err != nil {
		return nil, err
	}
	sys.Tracer = cfg.Tracer
	sys.Tele = cfg.Tele
	sys.Shr = cfg.Sharing
	if cfg.Check != nil {
		cfg.Check.Reset(cfg.Core.Nodes)
		sys.Check = cfg.Check
	}
	if depth := cfg.FlightRecorder; depth >= 0 {
		if depth == 0 {
			depth = DefaultFlightRecorder
		}
		sys.Rec = fault.NewRecorder(depth)
	}
	m := &Machine{Cfg: cfg, Eng: eng, Sys: sys, Net: net}
	// Measurement starts at the workloads' StatsOn marker.
	sys.SetStatsEnabled(false)
	for i, s := range streams {
		p := proc.New(eng, sys.Nodes[i].Cache, s, proc.Config{
			ID:        i,
			SC:        cfg.Core.SC,
			FLCAccess: cfg.Core.Timing.FLCAccess,
			FLCFill:   cfg.Core.Timing.FLCFill,
		})
		p.StatsOnHook = m.onStatsOn
		p.DoneHook = func() { m.doneCount++ }
		p.Tele = cfg.Tele
		m.Procs = append(m.Procs, p)
	}
	if cfg.Tele != nil {
		for _, n := range sys.Nodes {
			cfg.Tele.WatchResource("bus", n.ID, n.Bus)
			cfg.Tele.WatchResource("slc", n.ID, n.Cache.SLCResource())
			cache := n.Cache
			cfg.Tele.WatchGauge("mshrs", n.ID, func() int64 {
				return int64(cache.PendingTxns())
			})
		}
		if mesh, ok := net.(*network.Mesh); ok {
			cfg.Tele.WatchGauge("mesh-msgs", -1, func() int64 {
				return int64(mesh.Msgs())
			})
			cfg.Tele.WatchGauge("mesh-wait", -1, func() int64 {
				return int64(mesh.WaitTime())
			})
		}
		if shr := cfg.Sharing; shr != nil {
			// One machine-wide counter track per sharing class in the
			// timeline export, sampled alongside the utilization gauges.
			for c := telemetry.SharingClass(0); c < telemetry.NumSharingClasses; c++ {
				c := c
				cfg.Tele.WatchGauge("sharing-"+c.String()+"-blocks", -1, func() int64 {
					return shr.ClassBlocks(c)
				})
				cfg.Tele.WatchGauge("sharing-"+c.String()+"-misses", -1, func() int64 {
					return shr.ClassMisses(c)
				})
			}
		}
	}
	return m, nil
}

func (m *Machine) onStatsOn() {
	if m.statsStarted {
		return
	}
	m.statsStarted = true
	m.statsStart = m.Eng.Now()
	m.Sys.SetStatsEnabled(true)
	for _, p := range m.Procs {
		p.SetStatsEnabled(true)
	}
}

// Run executes the simulation to completion (all streams exhausted and all
// protocol activity drained) under the watchdog, verifies the coherence
// invariants, and returns the collected results. A watchdog abort —
// runaway event count, deadline, deadlock, livelock — returns a
// *fault.SimFault carrying the machine's diagnostic snapshot.
func (m *Machine) Run() (*Result, error) {
	for _, p := range m.Procs {
		p.Start()
	}
	if m.Cfg.Progress != nil {
		m.Eng.SetProgress(m.Cfg.Progress)
	}
	if m.Cfg.SelfProf != nil {
		m.Eng.SetSelfProfiler(m.Cfg.SelfProf)
	}
	if m.Cfg.Tele != nil {
		m.Cfg.Tele.StartSampler(m.Eng)
	}
	if m.Cfg.InjectPanic {
		m.Eng.After(1000, func() { panic("machine: deliberate fault injection") })
	}
	np := m.Cfg.NoProgressEvents
	if np == 0 {
		np = DefaultNoProgressEvents
	}
	wd := &sim.Watchdog{
		MaxEvents:        m.Cfg.MaxEvents,
		Deadline:         m.Cfg.MaxTime,
		NoProgressEvents: np,
		Quiesced: func() bool {
			return m.doneCount == len(m.Procs) && m.Sys.Quiesced()
		},
		Blocked: m.blockedAgents,
		Cancel:  m.Cfg.Cancel,
	}
	if f := m.Eng.RunWatched(wd); f != nil {
		if snap := m.faultSnapshot(f.Block, f.HasBlock); snap != nil {
			f.Snapshot = snap
		}
		return nil, f
	}
	if err := m.Sys.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("machine: invariant violation: %w", err)
	}
	if n := len(m.Sys.DataViolations); n > 0 {
		return nil, fmt.Errorf("machine: %d data-value violations, first: %s",
			n, m.Sys.DataViolations[0])
	}
	if !m.statsStarted {
		return nil, fmt.Errorf("machine: workload never emitted StatsOn")
	}
	return m.collect(), nil
}

// Recovered converts a panic recovered during this machine's run into a
// structured SimFault: the panic value, the dispatch context (which
// controller was handling which protocol message), the Go stack, and the
// machine's diagnostic snapshot.
func (m *Machine) Recovered(v any, stack []byte) *fault.SimFault {
	if f, ok := v.(*fault.SimFault); ok {
		// The live checker panics with an already-structured fault naming
		// the message, block and transition; fill in what only the machine
		// knows and keep its attribution.
		f.Time = int64(m.Eng.Now())
		f.Steps = m.Eng.Steps()
		f.Stack = stack
		f.Snapshot = m.faultSnapshot(f.Block, f.HasBlock)
		return f
	}
	f := &fault.SimFault{
		Kind:      fault.KindPanic,
		Time:      int64(m.Eng.Now()),
		Steps:     m.Eng.Steps(),
		Component: "machine",
		Message:   fmt.Sprint(v),
		Stack:     stack,
	}
	if comp, kind, b, ok := m.Sys.LastDispatch(); ok {
		f.Component, f.MsgKind, f.Block, f.HasBlock = comp, kind, uint64(b), true
	}
	f.Snapshot = m.faultSnapshot(f.Block, f.HasBlock)
	return f
}

// blockedAgents names everything still blocked: processors whose streams
// have not finished, plus the synchronization fabric's view (locks,
// barriers, pending reads).
func (m *Machine) blockedAgents() []string {
	var out []string
	for _, p := range m.Procs {
		if !p.Done() {
			out = append(out, fmt.Sprintf("proc %d (stream unfinished)", p.ID))
		}
	}
	return append(out, m.Sys.BlockedSync()...)
}

// faultSnapshot captures the diagnostic snapshot, shielding the fault path
// itself: a machine inconsistent enough to panic while snapshotting
// reports the fault without one rather than crashing the report.
func (m *Machine) faultSnapshot(block uint64, hasBlock bool) (snap *fault.Snapshot) {
	defer func() {
		if recover() != nil {
			snap = nil
		}
	}()
	snap = m.Sys.FaultSnapshot(block, hasBlock)
	snap.Blocked = m.blockedAgents()
	// Best-effort invariant findings: a coherence violation that caused a
	// hang or panic shows up in the dump even though the machine never
	// reached quiescence (blocks with in-flight transactions are skipped).
	snap.Invariants = m.Sys.CheckInvariantsBestEffort(8)
	return snap
}

func (m *Machine) collect() *Result {
	r := &Result{
		Protocol:     m.Cfg.Core.ProtocolName(),
		Network:      m.Net.Name(),
		Nodes:        m.Cfg.Core.Nodes,
		Traffic:      m.Sys.Traffic,
		TotalPclocks: int64(m.Eng.Now()),
		Queue:        m.Eng.QueueStats(),
	}
	for _, n := range m.Sys.Nodes {
		for _, w := range []struct {
			name string
			res  *sim.Resource
		}{{"bus", n.Bus}, {"slc", n.Cache.SLCResource()}} {
			r.Resources = append(r.Resources, ResourceUtil{
				Name:          w.name,
				Node:          n.ID,
				Busy:          int64(w.res.BusyTime()),
				Wait:          int64(w.res.WaitTime()),
				Uses:          w.res.Uses(),
				MaxQueueDepth: w.res.MaxQueueDepth(),
			})
		}
	}
	var lastDone sim.Time
	for _, p := range m.Procs {
		if p.DoneTime() > lastDone {
			lastDone = p.DoneTime()
		}
		r.Procs = append(r.Procs, p.Stats)
		r.Busy += p.Stats.Busy
		r.ReadStall += p.Stats.ReadStall
		r.WriteStall += p.Stats.WriteStall
		r.AcquireStall += p.Stats.AcquireStall
		r.BarrierStall += p.Stats.BarrierStall
		r.ReleaseStall += p.Stats.ReleaseStall
		r.Reads += p.Stats.Reads
		r.Writes += p.Stats.Writes
	}
	r.ExecTime = int64(lastDone - m.statsStart)
	for _, n := range m.Sys.Nodes {
		c := n.Cache
		for k, v := range c.Misses {
			r.Misses[k] += v
		}
		r.Cache.FLCReadMisses += c.CStats.FLCReadMisses
		r.Cache.SLCReadMisses += c.CStats.SLCReadMisses
		r.Cache.SLCHits += c.CStats.SLCHits
		r.Cache.WCHits += c.CStats.WCHits
		r.Cache.PartialHits += c.CStats.PartialHits
		r.Cache.ReadMissLatency += c.CStats.ReadMissLatency
		r.Cache.ReadMissCount += c.CStats.ReadMissCount
		r.Cache.LatencyHist.Merge(c.CStats.LatencyHist)
		if pf := c.Prefetcher(); pf != nil {
			r.Prefetch.Issued += pf.Stats.Issued
			r.Prefetch.Useful += pf.Stats.Useful
			r.Prefetch.Discard += pf.Stats.Discard
			r.Prefetch.PartHits += pf.Stats.PartHits
			r.Prefetch.Nacked += pf.Stats.Nacked
		}
		h := n.Home
		r.OwnReqs += h.OwnReqs
		r.UpdateReqs += h.UpdateReqs
		r.MigDetections += h.MigratoryDetections
		r.MigReverts += h.MigratoryReverts
		r.ExclSupplies += h.ExclusiveSupplies
		r.PointerOverflows += h.PointerOverflows
		r.BroadcastInvs += h.BroadcastInvalidations
	}
	return r
}

// ResourceUtil summarizes one contended resource's lifetime occupancy.
type ResourceUtil struct {
	Name          string
	Node          int
	Busy          int64 // total pclocks the resource was occupied
	Wait          int64 // total pclocks requests waited for it
	Uses          uint64
	MaxQueueDepth int // peak simultaneous reservations
}

// Result holds everything a run produces.
type Result struct {
	Protocol string
	Network  string
	Nodes    int

	// ExecTime is the measured parallel-section duration in pclocks (from
	// the StatsOn marker to the last processor's completion).
	ExecTime int64

	// TotalPclocks is the full run duration, including the unmeasured
	// initialization phase — the denominator for resource utilization.
	TotalPclocks int64

	// Resources reports each node's bus and SLC occupancy over the run.
	Resources []ResourceUtil

	// Summed per-processor time decomposition. BarrierStall is folded into
	// acquire stall in paper-style reports.
	Busy, ReadStall, WriteStall, AcquireStall, BarrierStall, ReleaseStall int64

	Reads, Writes uint64
	Procs         []stats.Proc

	Misses  stats.Misses
	Cache   core.CacheStats
	Traffic stats.Traffic

	Prefetch stats.Prefetch

	OwnReqs, UpdateReqs                     uint64
	MigDetections, MigReverts, ExclSupplies uint64
	PointerOverflows, BroadcastInvs         uint64

	// Queue is the event engine's internal scheduling profile for the run
	// (wheel vs overflow routing, migrations, cohort sizes, high-water
	// marks).
	Queue sim.QueueStats
}

// MissRatePct returns the given miss component as a percentage of shared
// reads, the denominator the paper's Table 2 uses.
func (r *Result) MissRatePct(k stats.MissKind) float64 {
	if r.Reads == 0 {
		return 0
	}
	return 100 * float64(r.Misses[k]) / float64(r.Reads)
}

// AvgReadMissLatency returns the mean demand read-miss service time in
// pclocks.
func (r *Result) AvgReadMissLatency() float64 {
	if r.Cache.ReadMissCount == 0 {
		return 0
	}
	return float64(r.Cache.ReadMissLatency) / float64(r.Cache.ReadMissCount)
}

// RelativeTo returns this run's execution time as a fraction of base's.
func (r *Result) RelativeTo(base *Result) float64 {
	if base.ExecTime == 0 {
		return 0
	}
	return float64(r.ExecTime) / float64(base.ExecTime)
}

// TimeShare returns the per-processor-average shares of busy and stall
// times, normalized so they can be plotted against another run.
func (r *Result) TimeShare() (busy, read, write, acq, rel float64) {
	n := float64(r.Nodes)
	return float64(r.Busy) / n, float64(r.ReadStall) / n, float64(r.WriteStall) / n,
		float64(r.AcquireStall) / n, float64(r.ReleaseStall) / n
}
