package machine

import "testing"

// TestBigFuzz is an extended randomized sweep (enable with -run TestBigFuzz).
func TestBigFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("long fuzz")
	}
	for seed := int64(100); seed < 150; seed++ {
		for _, v := range protoVariants() {
			for _, sc := range []bool{false, true} {
				if sc && v.cw {
					continue
				}
				cfg := DefaultConfig()
				cfg.Core.Nodes = 8
				cfg.Core.P, cfg.Core.M, cfg.Core.CW = v.p, v.m, v.cw
				cfg.Core.SC = sc
				cfg.Core.VerifyData = true
				cfg.Core.SLCSets = 16
				cfg.Core.FLWBEntries, cfg.Core.SLWBEntries = 2, 3
				m, err := New(cfg, randomStreams(8, 350, seed))
				if err != nil {
					t.Fatal(err)
				}
				if _, err := m.Run(); err != nil {
					t.Fatalf("seed %d proto %s sc=%v: %v", seed, v.name, sc, err)
				}
			}
		}
	}
}
