package machine

import (
	"fmt"
	"math/rand"
	"testing"

	"ccsim/internal/memsys"
	"ccsim/internal/proc"
	"ccsim/internal/stats"
)

// protoVariants enumerates every extension combination from the paper.
func protoVariants() []struct {
	name     string
	p, m, cw bool
} {
	return []struct {
		name     string
		p, m, cw bool
	}{
		{"BASIC", false, false, false},
		{"P", true, false, false},
		{"M", false, true, false},
		{"CW", false, false, true},
		{"P+CW", true, false, true},
		{"P+M", true, true, false},
		{"CW+M", false, true, true},
		{"P+CW+M", true, true, true},
	}
}

func trivialStreams(n int) []proc.Stream {
	out := make([]proc.Stream, n)
	for i := range out {
		out[i] = proc.NewSliceStream(
			proc.Op{Kind: proc.OpStatsOn},
			proc.Op{Kind: proc.OpBusy, Cycles: 10},
			proc.Op{Kind: proc.OpRead, Addr: memsys.Addr(i * memsys.PageSize)},
			proc.Op{Kind: proc.OpBarrier, Bar: 0},
		)
	}
	return out
}

func TestMachineRunsTrivialWorkload(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Core.Nodes = 4
	m, err := New(cfg, trivialStreams(4))
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.ExecTime <= 0 {
		t.Fatalf("ExecTime = %d", r.ExecTime)
	}
	if r.Reads != 4 {
		t.Fatalf("Reads = %d, want 4", r.Reads)
	}
	if r.Misses.Total() != 4 || r.Misses[stats.Cold] != 4 {
		t.Fatalf("misses = %v, want 4 cold", r.Misses)
	}
}

func TestMachineStreamCountMismatch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Core.Nodes = 4
	if _, err := New(cfg, trivialStreams(3)); err == nil {
		t.Fatal("no error for stream/node mismatch")
	}
}

func TestMachineRequiresStatsOn(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Core.Nodes = 1
	m, err := New(cfg, []proc.Stream{proc.NewSliceStream(proc.Op{Kind: proc.OpBusy, Cycles: 5})})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Fatal("run without StatsOn did not error")
	}
}

// randomStream generates a reproducible random mix of reads, writes,
// critical sections and barriers over a small shared region — a protocol
// fuzzer.
func randomStream(id, nprocs, nops int, seed int64, barriers bool) proc.Stream {
	rng := rand.New(rand.NewSource(seed + int64(id)))
	ops := []proc.Op{{Kind: proc.OpStatsOn}}
	const sharedBlocks = 24
	addr := func() memsys.Addr {
		// Spread over pages so several homes participate.
		b := rng.Intn(sharedBlocks)
		page := b % 4
		return memsys.Addr(page*memsys.PageSize + (b/4)*memsys.BlockSize + 4*rng.Intn(8))
	}
	lockAddr := func(l int) memsys.Addr {
		return memsys.Addr(100*memsys.PageSize + l*memsys.BlockSize)
	}
	barCount := 0
	for i := 0; i < nops; i++ {
		switch r := rng.Intn(100); {
		case r < 40:
			ops = append(ops, proc.Op{Kind: proc.OpRead, Addr: addr()})
		case r < 70:
			ops = append(ops, proc.Op{Kind: proc.OpWrite, Addr: addr()})
		case r < 85:
			ops = append(ops, proc.Op{Kind: proc.OpBusy, Cycles: int64(rng.Intn(50))})
		case r < 95:
			l := rng.Intn(3)
			ops = append(ops,
				proc.Op{Kind: proc.OpAcquire, Addr: lockAddr(l)},
				proc.Op{Kind: proc.OpRead, Addr: addr()},
				proc.Op{Kind: proc.OpWrite, Addr: addr()},
				proc.Op{Kind: proc.OpRelease, Addr: lockAddr(l)},
			)
		default:
			if barriers {
				ops = append(ops, proc.Op{Kind: proc.OpBarrier, Bar: barCount})
				barCount++
			}
		}
	}
	// Align barrier counts across processors: every processor must hit the
	// same barriers, so emit the maximum possible count at the end.
	for ; barCount < nops/10+1; barCount++ {
		ops = append(ops, proc.Op{Kind: proc.OpBarrier, Bar: barCount})
	}
	return proc.NewSliceStream(ops...)
}

// barrier alignment above requires identical barCount sequences; instead of
// relying on randomness, cap every stream at the same barrier schedule.
func randomStreams(nprocs, nops int, seed int64) []proc.Stream {
	out := make([]proc.Stream, nprocs)
	for i := range out {
		out[i] = randomStream(i, nprocs, nops, seed, false)
	}
	return out
}

func TestRandomWorkloadAllProtocols(t *testing.T) {
	for _, v := range protoVariants() {
		for _, sc := range []bool{false, true} {
			if sc && v.cw {
				continue // CW is not feasible under SC
			}
			name := v.name
			if sc {
				name += "-SC"
			}
			t.Run(name, func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.Core.Nodes = 8
				cfg.Core.P, cfg.Core.M, cfg.Core.CW = v.p, v.m, v.cw
				cfg.Core.VerifyData = true
				cfg.Core.SC = sc
				if sc {
					cfg.Core.FLWBEntries, cfg.Core.SLWBEntries = 1, 16
				}
				m, err := New(cfg, randomStreams(8, 400, 12345))
				if err != nil {
					t.Fatal(err)
				}
				r, err := m.Run()
				if err != nil {
					t.Fatal(err)
				}
				if r.ExecTime <= 0 {
					t.Fatal("no execution time")
				}
			})
		}
	}
}

func TestRandomWorkloadFiniteCachesAndSmallBuffers(t *testing.T) {
	for _, v := range protoVariants() {
		t.Run(v.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Core.Nodes = 8
			cfg.Core.P, cfg.Core.M, cfg.Core.CW = v.p, v.m, v.cw
			cfg.Core.VerifyData = true
			cfg.Core.SLCSets = 8 // brutal: constant replacement
			cfg.Core.FLWBEntries = 2
			cfg.Core.SLWBEntries = 2
			m, err := New(cfg, randomStreams(8, 400, 999))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRandomWorkloadOnMesh(t *testing.T) {
	for _, bits := range []int{64, 32, 16} {
		t.Run(fmt.Sprintf("%dbit", bits), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Core.Nodes = 16
			cfg.Core.P, cfg.Core.CW = true, true
			cfg.Net = NetMesh
			cfg.LinkBits = bits
			m, err := New(cfg, randomStreams(16, 200, 777))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		cfg := DefaultConfig()
		cfg.Core.Nodes = 8
		cfg.Core.P, cfg.Core.M = true, true
		m, err := New(cfg, randomStreams(8, 300, 42))
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.ExecTime != b.ExecTime {
		t.Fatalf("nondeterministic execution time: %d vs %d", a.ExecTime, b.ExecTime)
	}
	if a.Traffic.TotalBytes() != b.Traffic.TotalBytes() {
		t.Fatalf("nondeterministic traffic: %d vs %d", a.Traffic.TotalBytes(), b.Traffic.TotalBytes())
	}
	if a.Misses != b.Misses {
		t.Fatalf("nondeterministic misses: %v vs %v", a.Misses, b.Misses)
	}
}

func TestManySeedsStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for seed := int64(0); seed < 12; seed++ {
		for _, v := range protoVariants() {
			cfg := DefaultConfig()
			cfg.Core.Nodes = 8
			cfg.Core.P, cfg.Core.M, cfg.Core.CW = v.p, v.m, v.cw
			cfg.Core.VerifyData = true
			cfg.Core.SLCSets = 16
			m, err := New(cfg, randomStreams(8, 300, seed*31+7))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Run(); err != nil {
				t.Fatalf("seed %d proto %s: %v", seed, v.name, err)
			}
		}
	}
}

func TestCriticalSectionCounterIsMigratory(t *testing.T) {
	// The classic x:=x+1 critical-section pattern the paper attributes
	// migratory sharing to: under M the block must be detected migratory
	// and ownership requests must (almost) vanish.
	counter := memsys.Addr(0)
	lock := memsys.Addr(50 * memsys.PageSize)
	streams := func(n int) []proc.Stream {
		out := make([]proc.Stream, n)
		for i := range out {
			ops := []proc.Op{{Kind: proc.OpStatsOn}}
			for k := 0; k < 20; k++ {
				ops = append(ops,
					proc.Op{Kind: proc.OpAcquire, Addr: lock},
					proc.Op{Kind: proc.OpRead, Addr: counter},
					proc.Op{Kind: proc.OpWrite, Addr: counter},
					proc.Op{Kind: proc.OpRelease, Addr: lock},
					proc.Op{Kind: proc.OpBusy, Cycles: 20},
				)
			}
			out[i] = proc.NewSliceStream(ops...)
		}
		return out
	}
	results := map[bool]*Result{}
	for _, mOn := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.Core.Nodes = 4
		cfg.Core.M = mOn
		mach, err := New(cfg, streams(4))
		if err != nil {
			t.Fatal(err)
		}
		r, err := mach.Run()
		if err != nil {
			t.Fatal(err)
		}
		results[mOn] = r
	}
	if results[true].MigDetections == 0 {
		t.Fatal("counter block never detected migratory")
	}
	if results[true].OwnReqs >= results[false].OwnReqs/2 {
		t.Fatalf("M did not cut ownership requests: %d (M) vs %d (BASIC)",
			results[true].OwnReqs, results[false].OwnReqs)
	}
	if results[true].ExclSupplies == 0 {
		t.Fatal("no exclusive supplies under M")
	}
}

func TestProducerConsumerCWCutsCoherenceMisses(t *testing.T) {
	// Producer-consumer across barriers: one writer updates a block each
	// phase, readers consume it. CW must turn the readers' coherence
	// misses into updates.
	blockA := memsys.Addr(0)
	streams := func(n int) []proc.Stream {
		out := make([]proc.Stream, n)
		for i := range out {
			ops := []proc.Op{{Kind: proc.OpStatsOn}}
			for phase := 0; phase < 16; phase++ {
				if i == 0 {
					ops = append(ops, proc.Op{Kind: proc.OpWrite, Addr: blockA})
				} else {
					ops = append(ops, proc.Op{Kind: proc.OpRead, Addr: blockA})
				}
				ops = append(ops, proc.Op{Kind: proc.OpBarrier, Bar: phase})
			}
			out[i] = proc.NewSliceStream(ops...)
		}
		return out
	}
	results := map[bool]*Result{}
	for _, cw := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.Core.Nodes = 4
		cfg.Core.CW = cw
		mach, err := New(cfg, streams(4))
		if err != nil {
			t.Fatal(err)
		}
		r, err := mach.Run()
		if err != nil {
			t.Fatal(err)
		}
		results[cw] = r
	}
	basic, cw := results[false], results[true]
	if cw.Misses[stats.Coherence] >= basic.Misses[stats.Coherence] {
		t.Fatalf("CW did not cut coherence misses: %d vs %d",
			cw.Misses[stats.Coherence], basic.Misses[stats.Coherence])
	}
	if cw.UpdateReqs == 0 {
		t.Fatal("no updates issued under CW")
	}
}

func TestSequentialStreamPrefetchingCutsColdMisses(t *testing.T) {
	// A processor streaming through memory: P must eliminate most cold
	// misses.
	streams := func(n int) []proc.Stream {
		out := make([]proc.Stream, n)
		for i := range out {
			ops := []proc.Op{{Kind: proc.OpStatsOn}}
			base := memsys.Addr(i * 16 * memsys.PageSize)
			for k := 0; k < 256; k++ {
				ops = append(ops,
					proc.Op{Kind: proc.OpRead, Addr: base + memsys.Addr(k*memsys.BlockSize)},
					proc.Op{Kind: proc.OpBusy, Cycles: 10},
				)
			}
			out[i] = proc.NewSliceStream(ops...)
		}
		return out
	}
	results := map[bool]*Result{}
	for _, pOn := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.Core.Nodes = 4
		cfg.Core.P = pOn
		mach, err := New(cfg, streams(4))
		if err != nil {
			t.Fatal(err)
		}
		r, err := mach.Run()
		if err != nil {
			t.Fatal(err)
		}
		results[pOn] = r
	}
	basic, p := results[false], results[true]
	if p.Misses[stats.Cold]*3 > basic.Misses[stats.Cold] {
		t.Fatalf("P did not cut cold misses enough: %d vs %d",
			p.Misses[stats.Cold], basic.Misses[stats.Cold])
	}
	if p.ExecTime >= basic.ExecTime {
		t.Fatalf("P did not speed up streaming: %d vs %d", p.ExecTime, basic.ExecTime)
	}
	if p.Prefetch.Issued == 0 || p.Prefetch.Useful == 0 {
		t.Fatalf("prefetch stats empty: %+v", p.Prefetch)
	}
}

func TestMaxTimeAborts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Core.Nodes = 4
	cfg.MaxTime = 50 // far too short for any miss to complete
	streams := make([]proc.Stream, 4)
	for i := range streams {
		streams[i] = proc.NewSliceStream(
			proc.Op{Kind: proc.OpStatsOn},
			proc.Op{Kind: proc.OpRead, Addr: memsys.Addr(i * memsys.PageSize)},
			proc.Op{Kind: proc.OpBusy, Cycles: 10000},
		)
	}
	m, err := New(cfg, streams)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Fatal("MaxTime did not abort the run")
	}
}
