package machine

import "testing"

// TestFinalSoak is a last heavy randomized pass: long streams, all
// protocol combinations, adversarial cache/buffer geometry, data-value
// verification on.
func TestFinalSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for seed := int64(1000); seed < 1040; seed++ {
		v := protoVariants()[seed%8]
		cfg := DefaultConfig()
		cfg.Core.Nodes = 8
		cfg.Core.P, cfg.Core.M, cfg.Core.CW = v.p, v.m, v.cw
		cfg.Core.SC = seed%4 == 0 && !v.cw
		cfg.Core.VerifyData = true
		cfg.Core.SLCSets = []int{0, 8, 32}[seed%3]
		cfg.Core.SLCWays = 1 + int(seed%2)
		if cfg.Core.SLCSets%cfg.Core.SLCWays != 0 {
			cfg.Core.SLCWays = 1
		}
		cfg.Core.DirPointers = int(seed % 3)
		cfg.Core.FLWBEntries = 1 + int(seed%3)
		cfg.Core.SLWBEntries = 1 + int(seed%4)
		m, err := New(cfg, randomStreams(8, 2500, seed))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatalf("seed %d proto %s: %v", seed, v.name, err)
		}
	}
}
