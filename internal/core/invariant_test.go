package core

import (
	"ccsim/internal/memsys"

	"strings"
	"testing"
)

// TestInvariantUnknownDirState pins the exhaustive directory-state switch:
// an entry outside the known states must be reported as corrupt, not fall
// through a non-exhaustive switch silently.
func TestInvariantUnknownDirState(t *testing.T) {
	eng, s := testSystem(t, nil)
	a := blockHomedAt(s, 0)
	read(t, eng, s, 1, a)
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("clean run fails invariants: %v", err)
	}
	e := s.Nodes[0].Home.dir[memsys.BlockOf(a)]
	if e == nil {
		t.Fatalf("no directory entry after read")
	}
	e.state = 99
	err := s.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "unknown directory state 99") {
		t.Fatalf("CheckInvariants = %v, want unknown-directory-state error", err)
	}
}

// TestInvariantUncachedWithCopies pins the empty-presence assertion: a
// CLEAN entry with no presence bits claims the block is uncached
// machine-wide, so any surviving cached copy is a violation.
func TestInvariantUncachedWithCopies(t *testing.T) {
	eng, s := testSystem(t, nil)
	a := blockHomedAt(s, 0)
	read(t, eng, s, 1, a)
	s.Nodes[0].Home.dir[memsys.BlockOf(a)].presence = 0
	found := s.CheckInvariantsBestEffort(8)
	joined := strings.Join(found, "\n")
	if !strings.Contains(joined, "uncached at home") {
		t.Fatalf("findings %q lack the uncached-with-copies violation", joined)
	}
	if !strings.Contains(joined, "not in the presence vector") {
		t.Fatalf("findings %q lack the presence-superset violation", joined)
	}
}

// TestBestEffortSkipsInflightBlocks pins the two checker modes against each
// other: a non-quiesced home entry is itself a violation at quiescence, but
// best-effort mode must exclude that block from every check — it may be
// mid-transaction — while still reporting violations on settled blocks.
func TestBestEffortSkipsInflightBlocks(t *testing.T) {
	eng, s := testSystem(t, nil)
	a := blockHomedAt(s, 0)
	b := blockHomedAt(s, 1)
	read(t, eng, s, 1, a)
	read(t, eng, s, 1, b)

	// Corrupt block a's entry and mark it busy, as if a transaction were
	// mid-flight when the machine stopped.
	ea := s.Nodes[0].Home.dir[memsys.BlockOf(a)]
	ea.state = 99
	ea.busy = true
	// Corrupt block b's entry with nothing in flight.
	s.Nodes[1].Home.dir[memsys.BlockOf(b)].state = 77

	if err := s.CheckInvariants(); err == nil {
		t.Fatalf("quiescent checker accepted a busy home entry")
	}
	found := s.CheckInvariantsBestEffort(8)
	joined := strings.Join(found, "\n")
	if strings.Contains(joined, "99") || strings.Contains(joined, "not quiesced") {
		t.Fatalf("best-effort findings include the in-flight block: %q", joined)
	}
	if !strings.Contains(joined, "unknown directory state 77") {
		t.Fatalf("best-effort findings miss the settled block's violation: %q", joined)
	}
}

// TestBestEffortFindingsSortedAndCapped pins determinism of the fault-dump
// diagnostic: findings come out sorted and truncated to the requested max.
func TestBestEffortFindingsSortedAndCapped(t *testing.T) {
	eng, s := testSystem(t, nil)
	addrs := []int{0, 1, 2}
	for _, home := range addrs {
		a := blockHomedAt(s, home)
		read(t, eng, s, (home+1)%4, a)
		s.Nodes[home].Home.dir[memsys.BlockOf(a)].state = 99
	}
	found := s.CheckInvariantsBestEffort(2)
	if len(found) != 2 {
		t.Fatalf("got %d findings, want capped at 2: %q", len(found), found)
	}
	if !(found[0] < found[1]) {
		t.Fatalf("findings not sorted: %q", found)
	}
	all := s.CheckInvariantsBestEffort(8)
	if len(all) != 3 {
		t.Fatalf("got %d findings, want 3: %q", len(all), all)
	}
}
