package core

import (
	"fmt"

	"ccsim/internal/fault"
	"ccsim/internal/memsys"
	"ccsim/internal/network"
	"ccsim/internal/sim"
	"ccsim/internal/stats"
	"ccsim/internal/telemetry"
	"ccsim/internal/trace"
)

// System is the coherence fabric of one simulated machine: one node per
// processor, each with a local bus, a home (directory) controller for the
// memory pages it owns, and a second-level cache controller.
type System struct {
	Eng *sim.Engine
	Net network.Net
	P   Params

	Nodes []*Node

	// Traffic counts network messages (local bus transactions between a
	// cache and its own memory do not enter the network).
	Traffic stats.Traffic

	// statsOn gates the measurement counters so only the parallel section
	// is recorded (SPLASH methodology, paper §4).
	statsOn bool

	// Tracer, when non-nil, receives protocol events (message sends and
	// deliveries, directory transitions, cache fills and evictions).
	Tracer *trace.Tracer

	// Tele, when non-nil, collects transaction spans, stall intervals and
	// utilization samples. A nil collector is a no-op on every path.
	Tele *telemetry.Collector

	// Rec is the fault flight recorder: a fixed ring of the last protocol
	// messages, dumped with a SimFault. A nil recorder is a free no-op.
	Rec *fault.Recorder

	// Dispatch context: the protocol message most recently delivered to a
	// controller. A panic inside a handler is attributed to this message
	// (plain value fields — maintaining them costs no allocation).
	lastType   MsgType
	lastBlock  memsys.Block
	lastDst    int
	lastToHome bool
	lastValid  bool

	// Data-value verification state (Params.VerifyData): a per-word version
	// counter per block, advanced at each write's global serialization
	// point, and the violations found.
	verSeq         map[memsys.Block]*memsys.BlockData
	DataViolations []string

	// hopFree recycles the per-message event-chain records Send schedules;
	// see the hop type.
	hopFree []*hop
}

// nextVersion serializes a write to (b, w) and returns its version.
func (s *System) nextVersion(b memsys.Block, w int) int64 {
	c := s.verSeq[b]
	if c == nil {
		c = &memsys.BlockData{}
		s.verSeq[b] = c
	}
	c[w]++
	return c[w]
}

// dataViolation records one data-value invariant violation (bounded).
func (s *System) dataViolation(format string, args ...any) {
	if len(s.DataViolations) < 16 {
		s.DataViolations = append(s.DataViolations, fmt.Sprintf(format, args...))
	}
}

// traceMsg records a message event if tracing is enabled.
func (s *System) traceMsg(k trace.Kind, m *Msg) {
	if s.Tracer == nil {
		return
	}
	note := ""
	switch {
	case m.Excl:
		note = "excl"
	case m.Prefetch:
		note = "prefetch"
	case m.Mig:
		note = "mig"
	}
	s.Tracer.Record(trace.Event{
		At: int64(s.Eng.Now()), Kind: k, What: m.Type.String(),
		Block: uint64(m.Block), Node: m.Src, Peer: m.Dst, Note: note,
	})
}

// tmark timestamps the end of a telemetry phase on transaction txn at the
// current instant.
func (s *System) tmark(txn uint64, ph telemetry.Phase) {
	if txn != 0 && s.Tele != nil {
		s.Tele.Mark(txn, ph, int64(s.Eng.Now()))
	}
}

// traceNode records a node-local event (directory transition, fill,
// eviction) if tracing is enabled.
func (s *System) traceNode(k trace.Kind, what string, b memsys.Block, node int, note string) {
	if k == trace.DirTransition && s.Tele != nil && s.statsOn {
		s.Tele.RecordInstant(node, what, uint64(b), int64(s.Eng.Now()))
	}
	if s.Tracer == nil {
		return
	}
	s.Tracer.Record(trace.Event{
		At: int64(s.Eng.Now()), Kind: k, What: what,
		Block: uint64(b), Node: node, Peer: -1, Note: note,
	})
}

// SetStatsEnabled turns measurement gathering on or off; timing behavior is
// unaffected.
func (s *System) SetStatsEnabled(on bool) { s.statsOn = on }

// Node bundles one processor node's coherence machinery.
type Node struct {
	ID    int
	Bus   *sim.Resource
	Home  *HomeCtl
	Cache *CacheCtl
}

// NewSystem builds a machine from params over the given engine and network.
func NewSystem(eng *sim.Engine, net network.Net, params Params) (*System, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	s := &System{Eng: eng, Net: net, P: params, statsOn: true}
	if params.VerifyData {
		s.verSeq = make(map[memsys.Block]*memsys.BlockData)
	}
	s.Nodes = make([]*Node, params.Nodes)
	for i := range s.Nodes {
		n := &Node{
			ID:  i,
			Bus: sim.NewResource(eng, fmt.Sprintf("bus%d", i)),
		}
		n.Home = newHomeCtl(s, i)
		n.Cache = newCacheCtl(s, i)
		s.Nodes[i] = n
	}
	return s, nil
}

// HomeOf returns the home node of block b.
func (s *System) HomeOf(b memsys.Block) int { return memsys.HomeOf(b, s.P.Nodes) }

// busTime returns the local-bus occupancy of message m.
func (s *System) busTime(m *Msg) sim.Time {
	if m.Data || m.Type == MsgUpdateReq || m.Type == MsgUpdCopy {
		return s.P.Timing.BusData
	}
	return s.P.Timing.BusCtl
}

// hop carries one in-flight message across its source bus -> network ->
// destination bus event chain. Hops are recycled through System.hopFree, so
// the per-message event chain — the hottest scheduling pattern in the
// simulator — allocates nothing once the free list is warm.
type hop struct {
	s  *System
	m  *Msg
	bt sim.Time
}

func (s *System) getHop(m *Msg, bt sim.Time) *hop {
	if n := len(s.hopFree); n > 0 {
		h := s.hopFree[n-1]
		s.hopFree = s.hopFree[:n-1]
		h.m, h.bt = m, bt
		return h
	}
	return &hop{s: s, m: m, bt: bt}
}

func (s *System) putHop(h *hop) {
	h.m = nil
	s.hopFree = append(s.hopFree, h)
}

// hopSrcBus runs when the message clears its source node's bus.
func hopSrcBus(a any) {
	h := a.(*hop)
	s, m := h.s, h.m
	if m.Src == m.Dst {
		// Local: one bus transaction carries the message to the memory
		// module or cache; no network involvement.
		s.putHop(h)
		s.dispatch(m)
		return
	}
	if s.statsOn {
		s.Traffic.Add(m.Class(), m.Size())
	}
	s.Net.SendCall(m.Src, m.Dst, m.Size(), hopArrive, h)
}

// hopArrive runs when the message's last byte reaches the destination node.
func hopArrive(a any) {
	h := a.(*hop)
	h.s.Nodes[h.m.Dst].Bus.UseCall(h.bt, hopDstBus, h)
}

// hopDstBus runs when the message clears the destination node's bus.
func hopDstBus(a any) {
	h := a.(*hop)
	s, m := h.s, h.m
	s.putHop(h)
	s.dispatch(m)
}

// Send transmits m from m.Src to m.Dst: across the source node's bus, then
// the network (when the destination is remote), then the destination node's
// bus, and finally dispatches it to the home or cache controller.
func (s *System) Send(m *Msg) {
	s.traceMsg(trace.MsgSend, m)
	s.Rec.Record(int64(s.Eng.Now()), "send", m.Type.String(), uint64(m.Block), m.Src, m.Dst)
	bt := s.busTime(m)
	s.Nodes[m.Src].Bus.UseCall(bt, hopSrcBus, s.getHop(m, bt))
}

// arrivalPhase maps a delivered message to the span phase ending at its
// arrival: requests end the requester-to-home transit, forwards the
// home-to-owner transit, forward replies the owner leg, and replies the
// home-to-requester transit. Fan-out messages (Inv/UpdCopy and their acks)
// carry no transaction — their round trip is marked as PhaseGather at the
// home when the last ack arrives.
func arrivalPhase(t MsgType) (telemetry.Phase, bool) {
	switch t {
	case MsgReadReq, MsgOwnReq, MsgUpdateReq:
		return telemetry.PhaseRequest, true
	case MsgFwd:
		return telemetry.PhaseForward, true
	case MsgFwdReply:
		return telemetry.PhaseOwner, true
	case MsgReadReply, MsgOwnAck, MsgUpdateAck, MsgPrefNack:
		return telemetry.PhaseReply, true
	}
	return 0, false
}

func (s *System) dispatch(m *Msg) {
	s.traceMsg(trace.MsgDeliver, m)
	s.Rec.Record(int64(s.Eng.Now()), "recv", m.Type.String(), uint64(m.Block), m.Src, m.Dst)
	s.lastType, s.lastBlock, s.lastDst, s.lastToHome, s.lastValid =
		m.Type, m.Block, m.Dst, m.toHome(), true
	if m.Txn != 0 && s.Tele != nil {
		if ph, ok := arrivalPhase(m.Type); ok {
			s.Tele.Mark(m.Txn, ph, int64(s.Eng.Now()))
		}
	}
	if m.toHome() {
		s.Nodes[m.Dst].Home.Handle(m)
	} else {
		s.Nodes[m.Dst].Cache.Handle(m)
	}
}

// Quiesced reports whether no coherence transactions are pending anywhere
// (used by the machine-level invariant checker at the end of a run).
func (s *System) Quiesced() bool {
	for _, n := range s.Nodes {
		if !n.Cache.idle() || !n.Home.idle() {
			return false
		}
	}
	return s.Eng.Pending() == 0
}

// CheckInvariants verifies global coherence invariants. It must be called
// at quiescence (no in-flight transactions). It returns a descriptive error
// on the first violation found.
func (s *System) CheckInvariants() error {
	// Gather every cached copy.
	type copyInfo struct {
		node  int
		state string
		dirty bool
	}
	copies := make(map[memsys.Block][]copyInfo)
	for _, n := range s.Nodes {
		n.Cache.forEachLine(func(b memsys.Block, st string, dirty bool) {
			copies[b] = append(copies[b], copyInfo{n.ID, st, dirty})
		})
	}
	for _, n := range s.Nodes {
		for b, e := range n.Home.dir {
			if s.HomeOf(b) != n.ID {
				return fmt.Errorf("block %d: directory entry at node %d, home is %d", b, n.ID, s.HomeOf(b))
			}
			if e.busy || len(e.deferred) > 0 || len(e.parked) > 0 {
				return fmt.Errorf("block %d: home not quiesced", b)
			}
			dirties := 0
			for _, c := range copies[b] {
				if c.dirty {
					dirties++
				}
			}
			switch e.state {
			case dirClean:
				if dirties != 0 {
					return fmt.Errorf("block %d: CLEAN at home but %d dirty copies", b, dirties)
				}
				// Presence must be a superset of actual holders (silent
				// replacement makes it a superset, not an exact set).
				for _, c := range copies[b] {
					if e.presence&(1<<uint(c.node)) == 0 {
						return fmt.Errorf("block %d: node %d holds a copy not in the presence vector", b, c.node)
					}
				}
			case dirModified:
				if dirties > 1 {
					return fmt.Errorf("block %d: %d dirty copies", b, dirties)
				}
				for _, c := range copies[b] {
					if c.node != e.owner {
						return fmt.Errorf("block %d: MODIFIED owner %d but node %d holds a %s copy", b, e.owner, c.node, c.state)
					}
				}
			}
		}
	}
	// No cache may hold a dirty copy of a block its home believes clean —
	// covered above — and every dirty copy must be the registered owner.
	for b, cs := range copies {
		for _, c := range cs {
			if c.dirty {
				e := s.Nodes[s.HomeOf(b)].Home.dir[b]
				if e == nil || e.state != dirModified || e.owner != c.node {
					return fmt.Errorf("block %d: dirty at node %d without matching directory state", b, c.node)
				}
			}
		}
	}
	return nil
}
