package core

import (
	"fmt"
	"sort"

	"ccsim/internal/check"
	"ccsim/internal/fault"
	"ccsim/internal/memsys"
	"ccsim/internal/network"
	"ccsim/internal/sim"
	"ccsim/internal/stats"
	"ccsim/internal/telemetry"
	"ccsim/internal/trace"
)

// System is the coherence fabric of one simulated machine: one node per
// processor, each with a local bus, a home (directory) controller for the
// memory pages it owns, and a second-level cache controller.
type System struct {
	Eng *sim.Engine
	Net network.Net
	P   Params

	Nodes []*Node

	// Traffic counts network messages (local bus transactions between a
	// cache and its own memory do not enter the network).
	Traffic stats.Traffic

	// statsOn gates the measurement counters so only the parallel section
	// is recorded (SPLASH methodology, paper §4).
	statsOn bool

	// Tracer, when non-nil, receives protocol events (message sends and
	// deliveries, directory transitions, cache fills and evictions).
	Tracer *trace.Tracer

	// Tele, when non-nil, collects transaction spans, stall intervals and
	// utilization samples. A nil collector is a no-op on every path.
	Tele *telemetry.Collector

	// Rec is the fault flight recorder: a fixed ring of the last protocol
	// messages, dumped with a SimFault. A nil recorder is a free no-op.
	Rec *fault.Recorder

	// Check, when non-nil, is the live coherence checker: every directory
	// and SLC state transition reports to it and a violated invariant
	// panics with a structured *fault.SimFault at the offending event.
	// Hook sites cost one nil check when disabled, like Tracer and Rec.
	Check *check.Oracle

	// Shr, when non-nil, is the sharing-pattern analyzer: processor
	// accesses, demand misses, invalidations, updates and network messages
	// report per block so each block's access stream can be classified
	// (read-only, migratory, producer-consumer, ...). Hooks fire only
	// inside the measured section and cost one nil check when disabled.
	Shr *telemetry.Sharing

	// mutArmed is the one-shot protocol-mutation trigger (Params.Mutate):
	// the first transition matching the mutation kind takes it and
	// misbehaves once, giving the checker a deterministic bug to catch.
	mutArmed bool

	// Dispatch context: the protocol message most recently delivered to a
	// controller. A panic inside a handler is attributed to this message
	// (plain value fields — maintaining them costs no allocation).
	lastType   MsgType
	lastBlock  memsys.Block
	lastDst    int
	lastToHome bool
	lastValid  bool

	// Data-value verification state (Params.VerifyData): a per-word version
	// counter per block, advanced at each write's global serialization
	// point, and the violations found.
	verSeq         map[memsys.Block]*memsys.BlockData
	DataViolations []string

	// hopFree recycles the per-message event-chain records Send schedules;
	// see the hop type.
	hopFree []*hop
}

// nextVersion serializes a write to (b, w) and returns its version.
func (s *System) nextVersion(b memsys.Block, w int) int64 {
	c := s.verSeq[b]
	if c == nil {
		c = &memsys.BlockData{}
		s.verSeq[b] = c
	}
	c[w]++
	return c[w]
}

// serialize is a write's global serialization point on behalf of node: it
// draws the next version for (b, w) and reports it to the live checker,
// which asserts the serialization order is gapless and (under LogObs)
// records it for litmus outcome predicates.
func (s *System) serialize(node int, b memsys.Block, w int) int64 {
	v := s.nextVersion(b, w)
	if s.Check != nil {
		s.Check.OnWrite(node, b, w, v)
	}
	return v
}

// takeMutation fires the armed protocol mutation if it matches kind,
// disarming it so the injected bug happens exactly once.
func (s *System) takeMutation(kind string) bool {
	if !s.mutArmed || s.P.Mutate != kind {
		return false
	}
	s.mutArmed = false
	return true
}

// dataViolation records one data-value invariant violation on block b
// (bounded). With the live checker attached it fails fast instead, so the
// fault names the event where the value invariant first broke.
func (s *System) dataViolation(b memsys.Block, format string, args ...any) {
	if s.Check != nil {
		s.Check.Failf("", b, format, args...)
	}
	if len(s.DataViolations) < 16 {
		s.DataViolations = append(s.DataViolations, fmt.Sprintf(format, args...))
	}
}

// traceMsg records a message event if tracing is enabled.
func (s *System) traceMsg(k trace.Kind, m *Msg) {
	if s.Tracer == nil {
		return
	}
	note := ""
	switch {
	case m.Excl:
		note = "excl"
	case m.Prefetch:
		note = "prefetch"
	case m.Mig:
		note = "mig"
	}
	s.Tracer.Record(trace.Event{
		At: int64(s.Eng.Now()), Kind: k, What: m.Type.String(),
		Block: uint64(m.Block), Node: m.Src, Peer: m.Dst, Note: note,
	})
}

// tmark timestamps the end of a telemetry phase on transaction txn at the
// current instant.
func (s *System) tmark(txn uint64, ph telemetry.Phase) {
	if txn != 0 && s.Tele != nil {
		s.Tele.Mark(txn, ph, int64(s.Eng.Now()))
	}
}

// traceNode records a node-local event (directory transition, fill,
// eviction) if tracing is enabled.
func (s *System) traceNode(k trace.Kind, what string, b memsys.Block, node int, note string) {
	if k == trace.DirTransition && s.Tele != nil && s.statsOn {
		s.Tele.RecordInstant(node, what, uint64(b), int64(s.Eng.Now()))
	}
	if s.Tracer == nil {
		return
	}
	s.Tracer.Record(trace.Event{
		At: int64(s.Eng.Now()), Kind: k, What: what,
		Block: uint64(b), Node: node, Peer: -1, Note: note,
	})
}

// SetStatsEnabled turns measurement gathering on or off; timing behavior is
// unaffected.
func (s *System) SetStatsEnabled(on bool) { s.statsOn = on }

// Node bundles one processor node's coherence machinery.
type Node struct {
	ID    int
	Bus   *sim.Resource
	Home  *HomeCtl
	Cache *CacheCtl
}

// NewSystem builds a machine from params over the given engine and network.
func NewSystem(eng *sim.Engine, net network.Net, params Params) (*System, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	s := &System{Eng: eng, Net: net, P: params, statsOn: true}
	if params.VerifyData {
		s.verSeq = make(map[memsys.Block]*memsys.BlockData)
	}
	s.mutArmed = params.Mutate != ""
	s.Nodes = make([]*Node, params.Nodes)
	for i := range s.Nodes {
		n := &Node{
			ID:  i,
			Bus: sim.NewResource(eng, fmt.Sprintf("bus%d", i)),
		}
		n.Home = newHomeCtl(s, i)
		n.Cache = newCacheCtl(s, i)
		s.Nodes[i] = n
	}
	return s, nil
}

// HomeOf returns the home node of block b.
func (s *System) HomeOf(b memsys.Block) int { return memsys.HomeOf(b, s.P.Nodes) }

// busTime returns the local-bus occupancy of message m.
func (s *System) busTime(m *Msg) sim.Time {
	if m.Data || m.Type == MsgUpdateReq || m.Type == MsgUpdCopy {
		return s.P.Timing.BusData
	}
	return s.P.Timing.BusCtl
}

// hop carries one in-flight message across its source bus -> network ->
// destination bus event chain. Hops are recycled through System.hopFree, so
// the per-message event chain — the hottest scheduling pattern in the
// simulator — allocates nothing once the free list is warm.
type hop struct {
	s  *System
	m  *Msg
	bt sim.Time
}

func (s *System) getHop(m *Msg, bt sim.Time) *hop {
	if n := len(s.hopFree); n > 0 {
		h := s.hopFree[n-1]
		s.hopFree = s.hopFree[:n-1]
		h.m, h.bt = m, bt
		return h
	}
	return &hop{s: s, m: m, bt: bt}
}

func (s *System) putHop(h *hop) {
	h.m = nil
	s.hopFree = append(s.hopFree, h)
}

// hopSrcBus runs when the message clears its source node's bus.
func hopSrcBus(a any) {
	h := a.(*hop)
	s, m := h.s, h.m
	if m.Src == m.Dst {
		// Local: one bus transaction carries the message to the memory
		// module or cache; no network involvement.
		s.putHop(h)
		s.dispatch(m)
		return
	}
	if s.statsOn {
		s.Traffic.Add(m.Class(), m.Size())
		if s.Shr != nil {
			s.Shr.OnTraffic(uint64(m.Block), m.Class(), m.Size())
		}
	}
	s.Net.SendCall(m.Src, m.Dst, m.Size(), hopArrive, h)
}

// hopArrive runs when the message's last byte reaches the destination node.
func hopArrive(a any) {
	h := a.(*hop)
	h.s.Nodes[h.m.Dst].Bus.UseCall(h.bt, hopDstBus, h)
}

// hopDstBus runs when the message clears the destination node's bus.
func hopDstBus(a any) {
	h := a.(*hop)
	s, m := h.s, h.m
	s.putHop(h)
	s.dispatch(m)
}

// Send transmits m from m.Src to m.Dst: across the source node's bus, then
// the network (when the destination is remote), then the destination node's
// bus, and finally dispatches it to the home or cache controller.
func (s *System) Send(m *Msg) {
	s.traceMsg(trace.MsgSend, m)
	s.Rec.Record(int64(s.Eng.Now()), "send", m.Type.String(), uint64(m.Block), m.Src, m.Dst)
	bt := s.busTime(m)
	s.Nodes[m.Src].Bus.UseCall(bt, hopSrcBus, s.getHop(m, bt))
}

// arrivalPhase maps a delivered message to the span phase ending at its
// arrival: requests end the requester-to-home transit, forwards the
// home-to-owner transit, forward replies the owner leg, and replies the
// home-to-requester transit. Fan-out messages (Inv/UpdCopy and their acks)
// carry no transaction — their round trip is marked as PhaseGather at the
// home when the last ack arrives.
func arrivalPhase(t MsgType) (telemetry.Phase, bool) {
	switch t {
	case MsgReadReq, MsgOwnReq, MsgUpdateReq:
		return telemetry.PhaseRequest, true
	case MsgFwd:
		return telemetry.PhaseForward, true
	case MsgFwdReply:
		return telemetry.PhaseOwner, true
	case MsgReadReply, MsgOwnAck, MsgUpdateAck, MsgPrefNack:
		return telemetry.PhaseReply, true
	}
	return 0, false
}

func (s *System) dispatch(m *Msg) {
	s.traceMsg(trace.MsgDeliver, m)
	s.Rec.Record(int64(s.Eng.Now()), "recv", m.Type.String(), uint64(m.Block), m.Src, m.Dst)
	s.lastType, s.lastBlock, s.lastDst, s.lastToHome, s.lastValid =
		m.Type, m.Block, m.Dst, m.toHome(), true
	if s.Check != nil {
		s.Check.OnDispatch(m.Type.String(), m.Block, m.Dst, m.toHome())
	}
	if m.Txn != 0 && s.Tele != nil {
		if ph, ok := arrivalPhase(m.Type); ok {
			s.Tele.Mark(m.Txn, ph, int64(s.Eng.Now()))
		}
	}
	if m.toHome() {
		s.Nodes[m.Dst].Home.Handle(m)
	} else {
		s.Nodes[m.Dst].Cache.Handle(m)
	}
}

// Quiesced reports whether no coherence transactions are pending anywhere
// (used by the machine-level invariant checker at the end of a run).
func (s *System) Quiesced() bool {
	for _, n := range s.Nodes {
		if !n.Cache.idle() || !n.Home.idle() {
			return false
		}
	}
	return s.Eng.Pending() == 0
}

// CheckInvariants verifies global coherence invariants. It must be called
// at quiescence (no in-flight transactions). It returns a descriptive error
// on the first violation found.
func (s *System) CheckInvariants() error {
	errs := s.invariantErrors(true, 1)
	if len(errs) > 0 {
		return errs[0]
	}
	return nil
}

// CheckInvariantsBestEffort runs the invariant walk without requiring
// quiescence — blocks with in-flight transactions (busy directory entries,
// pending MSHRs or writebacks) are skipped rather than reported — and
// returns up to max findings. The fault path uses it so the coherence
// violation that caused a hang appears in the SimFault diagnostic.
func (s *System) CheckInvariantsBestEffort(max int) []string {
	errs := s.invariantErrors(false, max)
	out := make([]string, len(errs))
	for i, e := range errs {
		out[i] = e.Error()
	}
	return out
}

// invariantErrors is the shared invariant walker. In quiescent mode a
// non-quiesced home entry is itself a violation; in best-effort mode any
// block with in-flight state anywhere is excluded from every check. The
// walk visits maps, so findings are sorted before truncating to max to
// keep fault dumps deterministic.
func (s *System) invariantErrors(quiescent bool, max int) []error {
	var errs []error
	report := func(format string, args ...any) bool {
		errs = append(errs, fmt.Errorf(format, args...))
		return false
	}
	// Gather every cached copy, and (for best-effort mode) every block a
	// cache controller still has a transaction or writeback in flight for.
	type copyInfo struct {
		node  int
		state string
		dirty bool
	}
	copies := make(map[memsys.Block][]copyInfo)
	inflight := make(map[memsys.Block]bool)
	for _, n := range s.Nodes {
		n.Cache.forEachLine(func(b memsys.Block, st string, dirty bool) {
			copies[b] = append(copies[b], copyInfo{n.ID, st, dirty})
		})
		if !quiescent {
			for b := range n.Cache.mshrs {
				inflight[b] = true
			}
			for b := range n.Cache.wbPending {
				inflight[b] = true
			}
		}
	}
	for _, n := range s.Nodes {
		for b, e := range n.Home.dir {
			if s.HomeOf(b) != n.ID {
				if report("block %d: directory entry at node %d, home is %d", b, n.ID, s.HomeOf(b)) {
					return errs
				}
				continue
			}
			if e.busy || len(e.deferred) > 0 || len(e.parked) > 0 {
				if !quiescent {
					inflight[b] = true
					continue
				}
				if report("block %d: home not quiesced", b) {
					return errs
				}
				continue
			}
			if inflight[b] {
				continue
			}
			dirties := 0
			for _, c := range copies[b] {
				if c.dirty {
					dirties++
				}
			}
			switch e.state {
			case dirClean:
				if dirties != 0 {
					if report("block %d: CLEAN at home but %d dirty copies", b, dirties) {
						return errs
					}
				}
				// An entry with an empty presence vector claims the block is
				// uncached machine-wide: no copy of any kind may exist.
				if e.presence == 0 && len(copies[b]) > 0 {
					if report("block %d: uncached at home but %d cached copies", b, len(copies[b])) {
						return errs
					}
				}
				// Presence must be a superset of actual holders (silent
				// replacement makes it a superset, not an exact set).
				for _, c := range copies[b] {
					if e.presence&(1<<uint(c.node)) == 0 {
						if report("block %d: node %d holds a copy not in the presence vector", b, c.node) {
							return errs
						}
					}
				}
			case dirModified:
				if dirties > 1 {
					if report("block %d: %d dirty copies", b, dirties) {
						return errs
					}
				}
				for _, c := range copies[b] {
					if c.node != e.owner {
						if report("block %d: MODIFIED owner %d but node %d holds a %s copy", b, e.owner, c.node, c.state) {
							return errs
						}
					}
				}
			default:
				// A directory entry outside the known states is corrupt
				// whatever the copies look like.
				if report("block %d: unknown directory state %d", b, e.state) {
					return errs
				}
			}
		}
	}
	// No cache may hold a dirty copy of a block its home believes clean —
	// covered above — and every dirty copy must be the registered owner.
	for b, cs := range copies {
		if inflight[b] {
			continue
		}
		for _, c := range cs {
			if c.dirty {
				e := s.Nodes[s.HomeOf(b)].Home.dir[b]
				if e == nil || e.state != dirModified || e.owner != c.node {
					if report("block %d: dirty at node %d without matching directory state", b, c.node) {
						return errs
					}
				}
			}
		}
	}
	sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
	if len(errs) > max {
		errs = errs[:max]
	}
	return errs
}
