package core

import (
	"fmt"

	"ccsim/internal/cache"
	"ccsim/internal/memsys"
	"ccsim/internal/sim"
	"ccsim/internal/stats"
	"ccsim/internal/telemetry"
	"ccsim/internal/trace"
)

// mshrKind identifies what a pending-transaction (SLWB) entry is waiting
// for.
type mshrKind int

const (
	mshrRead   mshrKind = iota // read miss or prefetch in flight
	mshrOwn                    // ownership request in flight
	mshrUpdate                 // competitive update in flight
)

// mshr is one lockup-free pending transaction. The SLC itself has no
// transient states; everything in flight lives here (paper §2: "all pending
// accesses are kept in the SLWB of the requesting node until they are
// completed").
type mshr struct {
	kind         mshrKind
	prefetchOnly bool // a prefetch no demand reference has merged with yet
	countsSLWB   bool
	txn          uint64 // telemetry span of this transaction (0 = untracked)

	readers   []readerWait    // demand readers to unblock at fill
	performed []func()        // write-performed callbacks (sequential consistency)
	after     []func()        // deferred actions to run at completion
	nWrites   int             // writes merged into this entry
	obs       []int           // write obligations this transaction performs
	words     []int           // words written through this transaction (ownership)
	mask      memsys.WordMask // words carried by a combined update
}

// readerWait is one processor read blocked on this transaction; the word
// lets the data-value checker observe what the reader sees.
type readerWait struct {
	word int
	fn   func()
}

// flwbWrite is one first-level write-buffer entry. ob is the write's
// obligation id: releases and barriers wait for all obligations issued
// before them (and only those) to be globally performed.
type flwbWrite struct {
	block     memsys.Block
	word      int
	performed func()
	ob        int
}

// relKind distinguishes the two drain-point operations in the release
// queue.
type relKind int

const (
	relLock relKind = iota
	relBarrier
)

type relReq struct {
	kind      relKind
	lock      memsys.Block // for relLock
	barID     int          // for relBarrier
	ack       func()       // SC release acknowledgment waiter (nil under RC)
	mark      int          // obligation ids below this must complete first
	remaining int          // prior obligations still outstanding
}

// CacheStats are the per-cache counters the evaluation reports.
type CacheStats struct {
	FLCReadMisses   uint64
	SLCReadMisses   uint64 // demand misses that launched a memory request
	SLCHits         uint64
	WCHits          uint64 // reads serviced by the write cache
	PartialHits     uint64 // demand misses merged with a pending prefetch
	ReadMissLatency int64  // summed demand-miss service time (pclocks)
	ReadMissCount   uint64
	LatencyHist     stats.Hist // distribution of demand-miss service times
}

// CacheCtl is the second-level cache controller of one node: the
// lockup-free SLC, the FLC it keeps inclusive, both write buffers, the
// write cache and prefetcher when enabled, and the release/barrier drain
// logic of the consistency model.
type CacheCtl struct {
	sys *System
	id  int

	flc    *cache.FLC
	slc    *cache.SLC
	slcRes *sim.Resource

	flwb       *cache.FIFO[flwbWrite]
	flwbWaiter func()
	draining   bool

	mshrs     map[memsys.Block]*mshr
	slwbUsed  int
	wbPending map[memsys.Block]bool
	wbRequeue map[memsys.Block]int // stamp of a follow-up writeback awaiting the first's ack
	lastGrant map[memsys.Block]int // grant generation of the dirty copy we hold (writeback tag)

	wc *cache.WriteCache
	pf *Prefetcher

	// Write obligations: every buffered write gets an id; a release with
	// mark m fires once every obligation with id < m has performed. This
	// is exactly RC's "release waits for prior writes only" — later writes
	// do not delay it.
	nextOb  int
	liveObs int
	wcObs   map[memsys.Block][]int // obligations buffered per write-cache entry

	deferredWrites []flwbWrite

	relQueue      []relReq
	relAckWaiters []func()
	lockWaiters   map[memsys.Block]func()
	barWaiters    map[int]func()

	// Data-value verification bookkeeping.
	lastSeen map[memsys.Block]*memsys.BlockData // versions this processor observed
	wbData   map[memsys.Block]memsys.BlockData  // payloads of in-flight writebacks
	wbMask   map[memsys.Block]memsys.WordMask

	// jobFree recycles the pooled SLC-occupancy events; see slcJob.
	jobFree []*slcJob

	// Measurements.
	Cls       *stats.Classifier
	Misses    stats.Misses
	CStats    CacheStats
	missStart map[memsys.Block]sim.Time
}

func newSLC(p Params) *cache.SLC {
	ways := p.SLCWays
	if ways == 0 {
		ways = 1
	}
	return cache.NewSLCAssoc(p.SLCSets, ways)
}

func newCacheCtl(s *System, id int) *CacheCtl {
	c := &CacheCtl{
		sys:         s,
		id:          id,
		flc:         cache.NewFLC(s.P.FLCSets),
		slc:         newSLC(s.P),
		slcRes:      sim.NewResource(s.Eng, fmt.Sprintf("slc%d", id)),
		flwb:        cache.NewFIFO[flwbWrite](s.P.FLWBEntries),
		mshrs:       make(map[memsys.Block]*mshr),
		wbPending:   make(map[memsys.Block]bool),
		wbRequeue:   make(map[memsys.Block]int),
		lastGrant:   make(map[memsys.Block]int),
		lockWaiters: make(map[memsys.Block]func()),
		wcObs:       make(map[memsys.Block][]int),
		lastSeen:    make(map[memsys.Block]*memsys.BlockData),
		wbData:      make(map[memsys.Block]memsys.BlockData),
		wbMask:      make(map[memsys.Block]memsys.WordMask),
		barWaiters:  make(map[int]func()),
		Cls:         stats.NewClassifier(),
		missStart:   make(map[memsys.Block]sim.Time),
	}
	if s.P.CW {
		c.wc = cache.NewWriteCache(s.P.WriteCacheBlocks)
	}
	if s.P.P {
		c.pf = NewPrefetcher(s.P.PrefetchMaxK, s.P.PrefetchHighMark, s.P.PrefetchLowMark)
	}
	return c
}

// Prefetcher exposes the node's prefetcher (nil when P is off).
func (c *CacheCtl) Prefetcher() *Prefetcher { return c.pf }

// WriteCache exposes the node's write cache (nil when CW is off).
func (c *CacheCtl) WriteCache() *cache.WriteCache { return c.wc }

func (c *CacheCtl) idle() bool {
	return len(c.mshrs) == 0 && len(c.wbPending) == 0 && len(c.wbRequeue) == 0 &&
		c.flwb.Empty() && len(c.deferredWrites) == 0 && len(c.relQueue) == 0 && !c.draining
}

// completeObs retires write obligations and re-checks queued releases.
func (c *CacheCtl) completeObs(obs []int) {
	if len(obs) == 0 {
		return
	}
	c.liveObs -= len(obs)
	for i := range c.relQueue {
		r := &c.relQueue[i]
		for _, ob := range obs {
			if ob < r.mark {
				r.remaining--
			}
		}
	}
	c.tryRelease()
}

func (c *CacheCtl) forEachLine(fn func(b memsys.Block, state string, dirty bool)) {
	c.slc.ForEach(func(l *cache.Line) {
		fn(l.Block, l.State.String(), l.State == cache.Dirty)
	})
}

func (c *CacheCtl) send(m *Msg) {
	m.Src = c.id
	c.sys.Send(m)
}

func (c *CacheCtl) statsOn() bool { return c.sys.statsOn }

// SLCResource exposes the SLC's occupancy model for utilization sampling.
func (c *CacheCtl) SLCResource() *sim.Resource { return c.slcRes }

// PendingTxns returns the number of outstanding coherence transactions
// (occupied MSHR entries), an outstanding-miss gauge for the sampler.
func (c *CacheCtl) PendingTxns() int { return len(c.mshrs) }

// beginSpan opens a telemetry span for a transaction launched now. Spans are
// gated like every other measurement: only the parallel section records.
func (c *CacheCtl) beginSpan(b memsys.Block, kind telemetry.SpanKind) uint64 {
	if c.sys.Tele == nil || !c.sys.statsOn {
		return 0
	}
	return c.sys.Tele.Begin(c.id, uint64(b), kind, int64(c.sys.Eng.Now()))
}

// endSpan closes a transaction's span at the current instant.
func (c *CacheCtl) endSpan(txn uint64) {
	if txn != 0 {
		c.sys.Tele.End(txn, int64(c.sys.Eng.Now()))
	}
}

// observe checks the data-value invariant for a read of word w returning
// version v: per processor and location, observed versions never decrease.
func (c *CacheCtl) observe(b memsys.Block, w int, v int64) {
	if c.sys.verSeq == nil {
		return
	}
	if ck := c.sys.Check; ck != nil {
		ck.OnRead(c.id, b, w, v)
	}
	last := c.lastSeen[b]
	if last == nil {
		last = &memsys.BlockData{}
		c.lastSeen[b] = last
	}
	if v < last[w] {
		c.sys.dataViolation(b, "node %d read block %d word %d version %d after seeing %d",
			c.id, b, w, v, last[w])
	}
	last[w] = v
}

// performLocal serializes a write into an exclusive line.
func (c *CacheCtl) performLocal(line *cache.Line, b memsys.Block, w int) {
	if c.sys.verSeq == nil {
		return
	}
	line.Data[w] = c.sys.serialize(c.id, b, w)
}

// ckLine reports an SLC state transition (install, upgrade, downgrade) for
// block b to the live checker. One nil check when the checker is off.
func (c *CacheCtl) ckLine(b memsys.Block, dirty bool, event string) {
	if ck := c.sys.Check; ck != nil {
		ck.OnLine(c.id, b, dirty, event)
	}
}

// ckDrop reports block b leaving this SLC (invalidation, replacement).
func (c *CacheCtl) ckDrop(b memsys.Block, event string) {
	if ck := c.sys.Check; ck != nil {
		ck.OnLineDrop(c.id, b, event)
	}
}

// fillFLC fills the FLC and, with the checker on, asserts inclusion at the
// fill: the SLC must already hold any block entering the FLC.
func (c *CacheCtl) fillFLC(b memsys.Block) {
	if ck := c.sys.Check; ck != nil && c.slc.Lookup(b) == nil {
		ck.Failf(fmt.Sprintf("cache %d", c.id), b,
			"FLC fill of block %d without SLC inclusion", b)
	}
	c.flc.Fill(b)
}

// ---------- Processor interface ----------

// Read issues a processor load for address a. It returns true on an FLC hit
// (data available this cycle); otherwise it returns false and unblock runs
// when the block reaches the FLC.
func (c *CacheCtl) Read(a memsys.Addr, unblock func()) bool {
	b := memsys.BlockOf(a)
	if c.statsOn() && c.sys.Shr != nil {
		// The classifier needs the full access stream, FLC hits included —
		// read/write ratios and ownership handoffs are invisible in the
		// miss stream alone.
		c.sys.Shr.OnRead(c.id, uint64(b))
	}
	if c.flc.Lookup(b) {
		if c.sys.verSeq != nil {
			// Inclusion guarantees the SLC holds the block too; observe the
			// version the processor sees.
			if line := c.slc.Lookup(b); line != nil {
				c.observe(b, memsys.WordIndex(a), line.Data[memsys.WordIndex(a)])
			} else {
				c.sys.dataViolation(b, "node %d: FLC hit on block %d without SLC inclusion", c.id, b)
			}
		}
		return true
	}
	if c.statsOn() {
		c.CStats.FLCReadMisses++
	}
	j := c.getJob()
	j.block, j.word, j.unblock = b, memsys.WordIndex(a), unblock
	c.slcRes.UsePipelinedCall(c.sys.P.Timing.SLCCycle, c.sys.P.Timing.SLCAccess, runReadJob, j)
	return false
}

func (c *CacheCtl) readSLC(b memsys.Block, word int, unblock func()) {
	if ms := c.mshrs[b]; ms != nil {
		switch ms.kind {
		case mshrRead:
			if ms.prefetchOnly {
				// Demand reference merging with a pending prefetch.
				ms.prefetchOnly = false
				if c.statsOn() {
					c.CStats.PartialHits++
				}
				if c.pf != nil {
					c.pf.OnPartialHit()
				}
			}
			ms.readers = append(ms.readers, readerWait{word, unblock})
			return
		case mshrOwn, mshrUpdate:
			if line := c.slc.Lookup(b); line != nil {
				c.touch(line)
				c.flc.Fill(b)
				if c.statsOn() {
					c.CStats.SLCHits++
				}
				c.observe(b, word, line.Data[word])
				unblock()
				return
			}
			ms.readers = append(ms.readers, readerWait{word, unblock})
			return
		}
	}
	if line := c.slc.Lookup(b); line != nil {
		c.touch(line)
		c.flc.Fill(b)
		if c.statsOn() {
			c.CStats.SLCHits++
		}
		c.observe(b, word, line.Data[word])
		unblock()
		return
	}
	if c.wc != nil {
		if mask, ok := c.wc.Lookup(b); ok && mask.Has(word) {
			// The word is in the write cache; the processor reads it from
			// there (paper §3.3). No FLC fill: only the written words are
			// valid.
			if c.statsOn() {
				c.CStats.WCHits++
			}
			unblock()
			return
		}
	}
	// Full demand miss.
	if c.statsOn() {
		c.Misses.Add(c.Cls.Classify(b))
		c.CStats.SLCReadMisses++
		if c.sys.Shr != nil {
			c.sys.Shr.OnMiss(c.id, uint64(b))
		}
	}
	c.missStart[b] = c.sys.Eng.Now()
	ms := &mshr{kind: mshrRead, readers: []readerWait{{word, unblock}}}
	ms.txn = c.beginSpan(b, telemetry.SpanRead)
	c.mshrs[b] = ms
	c.send(&Msg{Type: MsgReadReq, Block: b, Dst: c.sys.HomeOf(b), Txn: ms.txn})
	if c.pf != nil {
		c.pf.OnMiss(b)
		c.issuePrefetches(b)
	}
}

func (c *CacheCtl) issuePrefetches(b memsys.Block) {
	for _, nb := range c.pf.Candidates(b) {
		if c.slc.Lookup(nb) != nil || c.mshrs[nb] != nil || c.wbPending[nb] {
			continue
		}
		if c.slwbUsed >= c.sys.P.SLWBEntries {
			break
		}
		ms := &mshr{kind: mshrRead, prefetchOnly: true, countsSLWB: true}
		ms.txn = c.beginSpan(nb, telemetry.SpanPrefetch)
		c.mshrs[nb] = ms
		c.slwbUsed++
		c.pf.OnIssue()
		c.send(&Msg{Type: MsgReadReq, Block: nb, Dst: c.sys.HomeOf(nb), Prefetch: true, Txn: ms.txn})
	}
}

// touch records a local access for the extension bits: it presets the
// competitive counter and resolves the prefetch bit.
func (c *CacheCtl) touch(line *cache.Line) {
	if c.wc != nil {
		line.CWCount = c.sys.P.CWThreshold
	}
	if line.PrefetchBit {
		line.PrefetchBit = false
		if c.pf != nil {
			c.pf.OnUseful()
		}
	}
}

// Write issues a processor store for address a. It returns true if the
// FLWB accepted the write this cycle; otherwise accepted runs when a slot
// frees. performed (which may be nil) runs when the write is globally
// performed — what a sequentially consistent processor stalls on.
func (c *CacheCtl) Write(a memsys.Addr, accepted, performed func()) bool {
	b := memsys.BlockOf(a)
	word := memsys.WordIndex(a)
	w := flwbWrite{block: b, word: word, performed: performed}
	if c.flwb.Full() {
		if c.flwbWaiter != nil {
			panic("core: two writes waiting for the FLWB")
		}
		c.flwbWaiter = func() {
			c.pushWrite(w)
			if accepted != nil {
				accepted()
			}
		}
		return false
	}
	c.pushWrite(w)
	return true
}

func (c *CacheCtl) pushWrite(w flwbWrite) {
	if c.statsOn() && c.sys.Shr != nil {
		// Hooked at write-buffer accept so it fires exactly once per
		// program-order write under every protocol — the SLC drain path
		// varies (write-cache combining may absorb stores entirely).
		c.sys.Shr.OnWrite(c.id, uint64(w.block), w.word)
	}
	w.ob = c.nextOb
	c.nextOb++
	c.liveObs++
	c.flwb.Push(w)
	c.drainFLWB()
}

func (c *CacheCtl) drainFLWB() {
	if c.draining || c.flwb.Empty() {
		return
	}
	c.draining = true
	c.slcRes.UsePipelinedCall(c.sys.P.Timing.SLCCycle, c.sys.P.Timing.SLCAccess, drainStep, c)
}

// drainStep performs the head FLWB write's SLC access (the continuation of
// drainFLWB, scheduled through the pooled event path: its only context is
// the controller itself).
func drainStep(a any) {
	c := a.(*CacheCtl)
	w, _ := c.flwb.Peek()
	if c.processWrite(w) {
		c.flwb.Pop()
		c.draining = false
		if c.flwbWaiter != nil {
			f := c.flwbWaiter
			c.flwbWaiter = nil
			f()
		}
		c.tryRelease()
		c.drainFLWB()
	} else {
		// Stalled on an SLWB slot; pump() retries when one frees.
		c.draining = false
	}
}

// processWrite applies one buffered write at the SLC. It returns false when
// the write needs an SLWB slot and none is free.
func (c *CacheCtl) processWrite(w flwbWrite) bool {
	b := w.block
	if ms := c.mshrs[b]; ms != nil {
		switch ms.kind {
		case mshrRead:
			// The block is being fetched; apply the write after the fill.
			ms.after = append(ms.after, func() { c.deferWrite(w) })
			return true
		case mshrOwn:
			// Ownership already requested: merge.
			ms.nWrites++
			ms.obs = append(ms.obs, w.ob)
			ms.words = append(ms.words, w.word)
			if w.performed != nil {
				ms.performed = append(ms.performed, w.performed)
			}
			return true
		}
		// mshrUpdate: a previous combining round is in flight; this write
		// starts a new one below.
	}
	line := c.slc.Lookup(b)
	if c.wc != nil {
		return c.processWriteCW(w, line)
	}
	if line != nil && line.State == cache.Dirty {
		// Writing an exclusive copy is globally performed on the spot.
		line.Written = true
		c.performLocal(line, b, w.word)
		if w.performed != nil {
			w.performed()
		}
		c.completeObs([]int{w.ob})
		return true
	}
	// Shared or absent: request ownership. The local copy (if any) is
	// updated immediately; the request is buffered in the SLWB.
	if c.slwbUsed >= c.sys.P.SLWBEntries {
		return false
	}
	ms := &mshr{kind: mshrOwn, countsSLWB: true, nWrites: 1, obs: []int{w.ob}, words: []int{w.word}}
	ms.txn = c.beginSpan(b, telemetry.SpanOwnership)
	if w.performed != nil {
		ms.performed = append(ms.performed, w.performed)
	}
	c.mshrs[b] = ms
	c.slwbUsed++
	c.send(&Msg{Type: MsgOwnReq, Block: b, Dst: c.sys.HomeOf(b), Txn: ms.txn})
	return true
}

// processWriteCW handles a write under the competitive-update mechanism:
// writes to dirty lines proceed locally; everything else combines in the
// write cache.
func (c *CacheCtl) processWriteCW(w flwbWrite, line *cache.Line) bool {
	b := w.block
	if line != nil && line.State == cache.Dirty {
		line.Written = true
		line.CWCount = c.sys.P.CWThreshold
		c.performLocal(line, b, w.word)
		if w.performed != nil {
			w.performed()
		}
		c.completeObs([]int{w.ob})
		return true
	}
	// Victimizing another block's write-cache entry issues its update,
	// which needs an SLWB slot.
	if c.wc.WouldEvict(b) && c.slwbUsed >= c.sys.P.SLWBEntries {
		return false
	}
	victim, evicted := c.wc.Write(b, w.word)
	if ck := c.sys.Check; ck != nil {
		if evicted {
			ck.OnWCFlush(c.id, victim.Block, victim.Mask, "evict")
		}
		mask, _ := c.wc.Lookup(b)
		ck.OnWCWrite(c.id, b, w.word, mask)
	}
	c.wcObs[b] = append(c.wcObs[b], w.ob)
	if line != nil {
		line.LocallyModified = true
		line.CWCount = c.sys.P.CWThreshold
	}
	if evicted {
		obs := c.wcObs[victim.Block]
		delete(c.wcObs, victim.Block)
		c.flushWC(victim, obs)
	}
	if w.performed != nil {
		w.performed()
	}
	if len(c.relQueue) > 0 {
		// A release is waiting; a prior write must not linger unflushed in
		// the write cache, or the release would never see it performed.
		if e, ok := c.wc.Remove(b); ok {
			if ck := c.sys.Check; ck != nil {
				ck.OnWCFlush(c.id, b, e.Mask, "release-drain")
			}
			obs := c.wcObs[b]
			delete(c.wcObs, b)
			c.flushWC(e, obs)
		}
	}
	return true
}

func (c *CacheCtl) deferWrite(w flwbWrite) {
	c.deferredWrites = append(c.deferredWrites, w)
	c.pump()
}

// flushWC issues the combined update for one victimized or drained
// write-cache entry, carrying the obligations its writes represent.
func (c *CacheCtl) flushWC(e cache.WCEntry, obs []int) {
	c.doFlush(e, obs)
}

func (c *CacheCtl) doFlush(e cache.WCEntry, obs []int) {
	if ms := c.mshrs[e.Block]; ms != nil {
		// A transaction is in flight for this block; issue the update when
		// it completes.
		ms.after = append(ms.after, func() { c.doFlush(e, obs) })
		return
	}
	// Release-time drains may transiently exceed the SLWB capacity; the
	// processor is not waiting, so this only models a stalled drain.
	ms := &mshr{kind: mshrUpdate, countsSLWB: true, obs: obs, mask: e.Mask}
	ms.txn = c.beginSpan(e.Block, telemetry.SpanUpdate)
	c.mshrs[e.Block] = ms
	c.slwbUsed++
	c.send(&Msg{Type: MsgUpdateReq, Block: e.Block, Dst: c.sys.HomeOf(e.Block), Mask: e.Mask, Txn: ms.txn})
}

// pump retries work that was waiting for an SLWB slot or a fill.
func (c *CacheCtl) pump() {
	if len(c.deferredWrites) > 0 {
		pending := c.deferredWrites
		c.deferredWrites = nil
		for i, w := range pending {
			if !c.processWrite(w) {
				c.deferredWrites = append(c.deferredWrites, pending[i:]...)
				break
			}
		}
	}
	c.drainFLWB()
	c.tryRelease()
}

// Acquire sends a lock request; unblock runs at the grant.
func (c *CacheCtl) Acquire(a memsys.Addr, unblock func()) {
	b := memsys.BlockOf(a)
	if c.lockWaiters[b] != nil {
		panic("core: overlapping acquires of one lock by one processor")
	}
	c.lockWaiters[b] = unblock
	c.send(&Msg{Type: MsgLockReq, Block: b, Dst: c.sys.HomeOf(b)})
}

// Release queues a lock release. Under release consistency the processor
// continues immediately (the release sits in the SLWB behind the writes it
// must wait for); under sequential consistency unblock runs when the home
// acknowledges the release.
func (c *CacheCtl) Release(a memsys.Addr, unblock func()) bool {
	b := memsys.BlockOf(a)
	r := relReq{kind: relLock, lock: b}
	proceed := true
	if c.sys.P.SC {
		r.ack = unblock
		proceed = false
	}
	c.enqueueFence(r)
	return proceed
}

// enqueueFence drains the write cache (its contents are all prior writes)
// and queues the release or barrier behind every obligation issued so far.
func (c *CacheCtl) enqueueFence(r relReq) {
	if c.wc != nil {
		for _, e := range c.wc.DrainAll() {
			if ck := c.sys.Check; ck != nil {
				ck.OnWCFlush(c.id, e.Block, e.Mask, "fence-drain")
			}
			obs := c.wcObs[e.Block]
			delete(c.wcObs, e.Block)
			c.flushWC(e, obs)
		}
	}
	r.mark = c.nextOb
	r.remaining = c.liveObs
	c.relQueue = append(c.relQueue, r)
	c.tryRelease()
}

// Barrier queues a barrier arrival, which has release semantics: all prior
// writes must be performed before the arrival is sent. unblock runs when
// the barrier opens.
func (c *CacheCtl) Barrier(id int, unblock func()) {
	if c.barWaiters[id] != nil {
		panic("core: overlapping barrier arrivals")
	}
	c.barWaiters[id] = unblock
	c.enqueueFence(relReq{kind: relBarrier, barID: id})
}

// tryRelease issues queued releases and barrier arrivals whose prior
// writes have all been globally performed. Writes issued after a fence
// never delay it.
func (c *CacheCtl) tryRelease() {
	for len(c.relQueue) > 0 {
		if c.relQueue[0].remaining > 0 {
			return
		}
		r := c.relQueue[0]
		c.relQueue = c.relQueue[1:]
		switch r.kind {
		case relLock:
			if r.ack != nil {
				c.relAckWaiters = append(c.relAckWaiters, r.ack)
			}
			c.send(&Msg{Type: MsgLockRel, Block: r.lock, Dst: c.sys.HomeOf(r.lock)})
		case relBarrier:
			c.send(&Msg{Type: MsgBarArrive, BarID: r.barID, Dst: r.barID % c.sys.P.Nodes})
		}
	}
}

// ---------- Message handling ----------

// slcJob is one pooled SLC-occupancy event: either a delivered protocol
// message awaiting its SLC access (handler != nil) or a blocked processor
// read (handler == nil). Jobs recycle through CacheCtl.jobFree, so the two
// hottest cache-controller scheduling patterns allocate nothing once warm.
type slcJob struct {
	c       *CacheCtl
	handler func(*CacheCtl, *Msg)
	m       *Msg

	block   memsys.Block
	word    int
	unblock func()
}

func (c *CacheCtl) getJob() *slcJob {
	if n := len(c.jobFree); n > 0 {
		j := c.jobFree[n-1]
		c.jobFree = c.jobFree[:n-1]
		return j
	}
	return &slcJob{c: c}
}

func (c *CacheCtl) putJob(j *slcJob) {
	j.handler, j.m, j.unblock = nil, nil, nil
	c.jobFree = append(c.jobFree, j)
}

// runMsgJob completes a message's SLC access and runs its handler.
func runMsgJob(a any) {
	j := a.(*slcJob)
	c, fn, m := j.c, j.handler, j.m
	c.putJob(j)
	fn(c, m)
}

// runReadJob completes a blocked read's SLC access.
func runReadJob(a any) {
	j := a.(*slcJob)
	c, b, word, unblock := j.c, j.block, j.word, j.unblock
	c.putJob(j)
	c.readSLC(b, word, unblock)
}

// slcHandle schedules handler(c, m) after the SLC's pipelined access.
func (c *CacheCtl) slcHandle(m *Msg, handler func(*CacheCtl, *Msg)) {
	j := c.getJob()
	j.handler, j.m = handler, m
	t := c.sys.P.Timing
	c.slcRes.UsePipelinedCall(t.SLCCycle, t.SLCAccess, runMsgJob, j)
}

// Handle processes one incoming coherence or synchronization message.
func (c *CacheCtl) Handle(m *Msg) {
	switch m.Type {
	case MsgReadReply:
		c.slcHandle(m, (*CacheCtl).onReadReply)
	case MsgOwnAck:
		c.slcHandle(m, (*CacheCtl).onOwnAck)
	case MsgUpdateAck:
		c.slcHandle(m, (*CacheCtl).onUpdateAck)
	case MsgInv:
		c.slcHandle(m, (*CacheCtl).onInv)
	case MsgFwd:
		c.slcHandle(m, (*CacheCtl).onFwd)
	case MsgUpdCopy:
		c.slcHandle(m, (*CacheCtl).onUpdCopy)
	case MsgPrefNack:
		c.onPrefNack(m)
	case MsgWBAck:
		c.onWBAck(m)
	case MsgLockGrant:
		w := c.lockWaiters[m.Block]
		if w == nil {
			panic(fmt.Sprintf("cache %d: lock grant with no waiter", c.id))
		}
		delete(c.lockWaiters, m.Block)
		w()
	case MsgRelAck:
		if len(c.relAckWaiters) == 0 {
			panic(fmt.Sprintf("cache %d: release ack with no waiter", c.id))
		}
		w := c.relAckWaiters[0]
		c.relAckWaiters = c.relAckWaiters[1:]
		w()
	case MsgBarGo:
		w := c.barWaiters[m.BarID]
		if w == nil {
			panic(fmt.Sprintf("cache %d: barrier go with no waiter", c.id))
		}
		delete(c.barWaiters, m.BarID)
		w()
	default:
		panic(fmt.Sprintf("cache %d: unexpected message %v", c.id, m.Type))
	}
}

// removeLine invalidates block b for a coherence reason, maintaining FLC
// inclusion, the miss classifier and prefetch accounting.
func (c *CacheCtl) removeLine(b memsys.Block) *cache.Line {
	line := c.slc.Invalidate(b)
	if line == nil {
		return nil
	}
	c.sys.traceNode(trace.CacheEvict, "inval", b, c.id, line.State.String())
	c.ckDrop(b, "inval")
	if c.statsOn() && c.sys.Shr != nil {
		c.sys.Shr.OnInvalidate(c.id, uint64(b))
	}
	c.flc.Invalidate(b)
	c.Cls.Invalidate(b)
	if line.PrefetchBit && c.pf != nil {
		c.pf.OnDiscard()
	}
	return line
}

func (c *CacheCtl) install(b memsys.Block, st cache.LineState) *cache.Line {
	c.sys.traceNode(trace.CacheFill, st.String(), b, c.id, "")
	line, victim := c.slc.Insert(b, st)
	if victim != nil {
		c.handleVictim(victim)
	}
	c.Cls.Fill(b)
	c.ckLine(b, st == cache.Dirty, "install")
	return line
}

func (c *CacheCtl) handleVictim(v *cache.Line) {
	c.sys.traceNode(trace.CacheEvict, "replace", v.Block, c.id, v.State.String())
	c.ckDrop(v.Block, "replace")
	c.flc.Invalidate(v.Block)
	c.Cls.Evict(v.Block)
	if v.PrefetchBit && c.pf != nil {
		c.pf.OnDiscard()
	}
	if v.State == cache.Dirty {
		stamp := c.lastGrant[v.Block]
		c.wbData[v.Block] = v.Data
		c.wbMask[v.Block] = memsys.FullMask
		if c.wbPending[v.Block] {
			// The previous writeback of this block has not been
			// acknowledged yet (ownership cycled back in between); queue a
			// fresh one behind it.
			c.wbRequeue[v.Block] = stamp
		} else {
			c.wbPending[v.Block] = true
			c.send(&Msg{Type: MsgWBReq, Block: v.Block, Dst: c.sys.HomeOf(v.Block), Data: true, Stamp: stamp, Payload: v.Data, Mask: memsys.FullMask})
		}
	}
}

func (c *CacheCtl) onReadReply(m *Msg) {
	b := m.Block
	ms := c.mshrs[b]
	if ms == nil || ms.kind != mshrRead {
		panic(fmt.Sprintf("cache %d: read reply with no pending read for block %d", c.id, b))
	}
	delete(c.mshrs, b)
	if ms.countsSLWB {
		c.slwbUsed--
	}
	c.endSpan(ms.txn)
	st := cache.Shared
	if m.Excl {
		st = cache.Dirty
		c.lastGrant[b] = m.Stamp
	}
	line := c.install(b, st)
	line.Data = m.Payload
	if m.Excl {
		line.MigSupplied = true
	}
	if c.wc != nil {
		// A prefetch is not a processor access: an unreferenced prefetched
		// copy arrives with its competitive counter exhausted, so a foreign
		// update reclaims it instead of feeding it updates it never earned.
		if ms.prefetchOnly {
			line.CWCount = 0
		} else {
			line.CWCount = c.sys.P.CWThreshold
		}
		if _, ok := c.wc.Lookup(b); ok {
			line.LocallyModified = true
		}
	}
	if ms.prefetchOnly {
		line.PrefetchBit = true
		if c.pf != nil {
			c.pf.OnFill()
		}
	} else {
		if m.Prefetch && c.pf != nil {
			// Issued as a prefetch, promoted to a demand fetch in flight.
			c.pf.OnFill()
		}
		c.fillFLC(b)
		if t0, ok := c.missStart[b]; ok {
			delete(c.missStart, b)
			if c.statsOn() {
				lat := int64(c.sys.Eng.Now() - t0)
				c.CStats.ReadMissLatency += lat
				c.CStats.ReadMissCount++
				c.CStats.LatencyHist.Add(lat)
				if c.sys.Shr != nil {
					c.sys.Shr.OnMissLatency(uint64(b), lat)
				}
			}
		}
		for _, r := range ms.readers {
			c.observe(b, r.word, line.Data[r.word])
			r.fn()
		}
	}
	c.runAfter(ms)
	c.pump()
}

func (c *CacheCtl) runAfter(ms *mshr) {
	for _, f := range ms.after {
		f()
	}
}

func (c *CacheCtl) onOwnAck(m *Msg) {
	b := m.Block
	ms := c.mshrs[b]
	if ms == nil || ms.kind != mshrOwn {
		panic(fmt.Sprintf("cache %d: ownership ack with no pending request for block %d", c.id, b))
	}
	delete(c.mshrs, b)
	c.slwbUsed--
	c.completeObs(ms.obs)
	c.endSpan(ms.txn)
	c.lastGrant[b] = m.Stamp
	var line *cache.Line
	if m.Data {
		line = c.install(b, cache.Dirty)
		line.Data = m.Payload
	} else {
		line = c.slc.Lookup(b)
		if line == nil {
			// The Shared copy was silently victimized by a conflicting fill
			// while the upgrade was in flight, so we received ownership of a
			// block whose frame is gone. Retire the writes and immediately
			// write the block back; any waiting readers re-fetch it (their
			// request queues at home behind the writeback).
			c.relinquishLostOwnership(b, ms, m.Stamp)
			return
		}
		line.State = cache.Dirty
		c.ckLine(b, true, "own-upgrade")
	}
	line.Written = true
	if c.sys.verSeq != nil {
		for _, w := range ms.words {
			line.Data[w] = c.sys.serialize(c.id, b, w)
		}
	}
	for _, p := range ms.performed {
		p()
	}
	if len(ms.readers) > 0 {
		c.fillFLC(b)
		for _, r := range ms.readers {
			c.observe(b, r.word, line.Data[r.word])
			r.fn()
		}
	}
	c.runAfter(ms)
	c.pump()
}

// relinquishLostOwnership handles an exclusive grant (of generation stamp)
// for a block whose cache frame was lost to replacement while the request
// was pending.
func (c *CacheCtl) relinquishLostOwnership(b memsys.Block, ms *mshr, stamp int) {
	for _, p := range ms.performed {
		p()
	}
	// The frame is gone, but the transaction's writes still serialize here:
	// version them into a masked writeback so home memory picks them up.
	var payload memsys.BlockData
	var mask memsys.WordMask
	if c.sys.verSeq != nil {
		for _, w := range ms.words {
			mask = mask.Set(w)
			payload[w] = c.sys.serialize(c.id, b, w)
		}
		for w := 0; w < memsys.WordsPerBlock; w++ {
			if ms.mask.Has(w) {
				mask = mask.Set(w)
				payload[w] = c.sys.serialize(c.id, b, w)
			}
		}
	}
	// If a writeback is already in flight (the grant crossed it on the
	// wire), it is stale with respect to this grant — the home will drop
	// it — so queue a fresh one behind its acknowledgment.
	if c.wbPending[b] {
		c.wbRequeue[b] = stamp
		c.wbData[b] = payload
		c.wbMask[b] = mask
	} else {
		c.wbPending[b] = true
		c.wbData[b] = payload
		c.wbMask[b] = mask
		c.send(&Msg{Type: MsgWBReq, Block: b, Dst: c.sys.HomeOf(b), Data: true, Stamp: stamp, Payload: payload, Mask: mask})
	}
	if len(ms.readers) > 0 {
		// The readers' wait continues under a fresh span: the old
		// transaction is over, this is a new fetch.
		ms2 := &mshr{kind: mshrRead, readers: ms.readers}
		ms2.txn = c.beginSpan(b, telemetry.SpanRead)
		c.mshrs[b] = ms2
		c.send(&Msg{Type: MsgReadReq, Block: b, Dst: c.sys.HomeOf(b), Txn: ms2.txn})
	}
	c.runAfter(ms)
	c.pump()
}

func (c *CacheCtl) onUpdateAck(m *Msg) {
	b := m.Block
	ms := c.mshrs[b]
	if ms == nil || ms.kind != mshrUpdate {
		panic(fmt.Sprintf("cache %d: update ack with no pending update for block %d", c.id, b))
	}
	delete(c.mshrs, b)
	c.slwbUsed--
	c.completeObs(ms.obs)
	c.endSpan(ms.txn)
	if m.Excl {
		c.lastGrant[b] = m.Stamp
		var line *cache.Line
		if m.Data {
			line = c.install(b, cache.Dirty)
			line.Data = m.Payload
		} else if line = c.slc.Lookup(b); line != nil {
			line.State = cache.Dirty
			c.ckLine(b, true, "update-upgrade")
			if c.sys.verSeq != nil {
				// The owner's combined writes serialize here.
				for w := 0; w < memsys.WordsPerBlock; w++ {
					if ms.mask.Has(w) {
						line.Data[w] = c.sys.serialize(c.id, b, w)
					}
				}
			}
		} else {
			// Exclusivity granted for a frame lost to replacement: give the
			// block straight back (see relinquishLostOwnership).
			c.relinquishLostOwnership(b, ms, m.Stamp)
			return
		}
		line.Written = true
		line.CWCount = c.sys.P.CWThreshold
	} else if line := c.slc.Lookup(b); line != nil {
		// Non-exclusive completion: refresh our Shared copy with the
		// post-update memory image (it now carries our own writes'
		// serialized versions). The FLC copy already holds those writes
		// (write-through), so it stays.
		line.Data = m.Payload
	}
	if len(ms.readers) > 0 {
		if line := c.slc.Lookup(b); line != nil {
			c.fillFLC(b)
			for _, r := range ms.readers {
				c.observe(b, r.word, line.Data[r.word])
				r.fn()
			}
		} else {
			// The update completed without leaving us a copy; fetch one for
			// the waiting readers.
			ms2 := &mshr{kind: mshrRead, readers: ms.readers}
			ms2.txn = c.beginSpan(b, telemetry.SpanRead)
			c.mshrs[b] = ms2
			c.send(&Msg{Type: MsgReadReq, Block: b, Dst: c.sys.HomeOf(b), Txn: ms2.txn})
		}
	}
	c.runAfter(ms)
	c.pump()
}

func (c *CacheCtl) onInv(m *Msg) {
	c.removeLine(m.Block)
	c.send(&Msg{Type: MsgInvAck, Block: m.Block, Dst: m.Src})
}

func (c *CacheCtl) onFwd(m *Msg) {
	b := m.Block
	home := m.Src
	line := c.slc.Lookup(b)
	if line == nil {
		if c.wbPending[b] {
			// The line was victimized; serve the forward from the
			// writeback buffer. The in-flight WBReq will be stale at home.
			c.send(&Msg{Type: MsgFwdReply, Block: b, Dst: home, Data: true, Wrote: true,
				Payload: c.wbData[b], Mask: c.wbMask[b], Txn: m.Txn})
			return
		}
		panic(fmt.Sprintf("cache %d: forward for absent block %d", c.id, b))
	}
	switch {
	case m.Excl:
		// Exclusive takeaway (write miss elsewhere, or update recall).
		c.removeLine(b)
		c.send(&Msg{Type: MsgFwdReply, Block: b, Dst: home, Data: true, Wrote: true, Payload: line.Data, Txn: m.Txn})
	case m.Mig:
		// Migratory read: hand the block over if we wrote it; otherwise
		// report that the pattern stopped being migratory and keep a
		// shared copy.
		if line.Written {
			c.removeLine(b)
			c.send(&Msg{Type: MsgFwdReply, Block: b, Dst: home, Data: true, Wrote: true, Payload: line.Data, Txn: m.Txn})
		} else {
			line.State = cache.Shared
			line.MigSupplied = false
			c.ckLine(b, false, "mig-keep")
			c.send(&Msg{Type: MsgFwdReply, Block: b, Dst: home, Data: true, Wrote: false, Payload: line.Data, Txn: m.Txn})
		}
	default:
		// Ordinary read miss: downgrade to Shared.
		line.State = cache.Shared
		line.Written = false
		c.ckLine(b, false, "downgrade")
		c.send(&Msg{Type: MsgFwdReply, Block: b, Dst: home, Data: true, Wrote: true, Payload: line.Data, Txn: m.Txn})
	}
}

func (c *CacheCtl) onUpdCopy(m *Msg) {
	b := m.Block
	if c.statsOn() && c.sys.Shr != nil {
		c.sys.Shr.OnUpdate(c.id, uint64(b))
	}
	reply := &Msg{Type: MsgUpdAck, Block: b, Dst: m.Src}
	line := c.slc.Lookup(b)
	switch {
	case line == nil:
		// Silently replaced earlier; tell home to clear our presence bit.
		reply.Removed = true
		reply.GaveUp = true
	case m.Probe && line.LocallyModified:
		// CW+M interrogation: we modified the block since the last home
		// update, so we give up our copy (paper §3.4).
		c.removeLine(b)
		reply.Removed = true
		reply.GaveUp = true
	default:
		// Competitive counting: the counter is preset to the threshold at
		// every local access and decremented per foreign update; an update
		// arriving after it is exhausted — i.e. more than `threshold`
		// updates with no intervening local access — invalidates the copy
		// and stops the update stream. A processor that keeps reading the
		// block keeps its copy, which is how CW removes producer-consumer
		// coherence misses while still cutting off caches that lost
		// interest.
		if line.CWCount <= 0 {
			c.removeLine(b)
			reply.Removed = true
		} else {
			line.CWCount--
			// Apply the update and stay a sharer. The FLC copy is stale
			// now; inclusion demands it be invalidated, so the processor's
			// next access reaches the SLC (and presets the counter).
			c.flc.Invalidate(b)
			line.LocallyModified = false
			line.Data = m.Payload
		}
	}
	c.send(reply)
}

func (c *CacheCtl) onPrefNack(m *Msg) {
	b := m.Block
	ms := c.mshrs[b]
	if ms == nil || ms.kind != mshrRead {
		panic(fmt.Sprintf("cache %d: prefetch nack with no pending read for block %d", c.id, b))
	}
	if !ms.prefetchOnly {
		// A demand reference merged with the prefetch while the nack was in
		// flight; reissue it as a demand read, which is never nacked. The
		// span continues: it is still the same logical fetch.
		c.send(&Msg{Type: MsgReadReq, Block: b, Dst: c.sys.HomeOf(b), Txn: ms.txn})
		return
	}
	delete(c.mshrs, b)
	if ms.countsSLWB {
		c.slwbUsed--
	}
	c.endSpan(ms.txn)
	if c.pf != nil {
		c.pf.Stats.Nacked++
	}
	c.runAfter(ms)
	c.pump()
}

func (c *CacheCtl) onWBAck(m *Msg) {
	if !c.wbPending[m.Block] {
		panic(fmt.Sprintf("cache %d: writeback ack with no pending writeback for block %d", c.id, m.Block))
	}
	if stamp, ok := c.wbRequeue[m.Block]; ok {
		delete(c.wbRequeue, m.Block)
		c.send(&Msg{Type: MsgWBReq, Block: m.Block, Dst: c.sys.HomeOf(m.Block), Data: true, Stamp: stamp,
			Payload: c.wbData[m.Block], Mask: c.wbMask[m.Block]})
	} else {
		delete(c.wbPending, m.Block)
		delete(c.wbData, m.Block)
		delete(c.wbMask, m.Block)
	}
	c.pump()
}
