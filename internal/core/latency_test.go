package core

import (
	"testing"

	"ccsim/internal/memsys"
	"ccsim/internal/sim"
)

// The analytical model and the simulator must agree exactly on an idle
// machine — this pins every timing composition down.

func TestAnalyticalLocalMiss(t *testing.T) {
	tm := DefaultTiming()
	if got := LocalMissLatency(tm); got != 30 {
		t.Fatalf("LocalMissLatency = %d, want the paper's 30", got)
	}
	eng, s := testSystem(t, func(p *Params) { p.Nodes = 1 })
	if got := read(t, eng, s, 0, 0); sim.Time(got) != LocalMissLatency(tm) {
		t.Fatalf("simulated %d != model %d", got, LocalMissLatency(tm))
	}
}

func TestAnalyticalRemoteClean(t *testing.T) {
	tm := DefaultTiming()
	eng, s := testSystem(t, nil)
	a := blockHomedAt(s, 1)
	if got := read(t, eng, s, 0, a); sim.Time(got) != RemoteCleanLatency(tm) {
		t.Fatalf("simulated %d != model %d", got, RemoteCleanLatency(tm))
	}
}

func TestAnalyticalRemoteDirty(t *testing.T) {
	tm := DefaultTiming()
	eng, s := testSystem(t, nil)
	a := blockHomedAt(s, 1)
	write(t, eng, s, 2, a)
	start := eng.Now()
	got := read(t, eng, s, 0, a) - start
	if got != RemoteDirtyLatency(tm) {
		t.Fatalf("simulated %d != model %d", got, RemoteDirtyLatency(tm))
	}
}

func TestAnalyticalOwnership(t *testing.T) {
	tm := DefaultTiming()
	eng, s := testSystem(t, nil)
	a := blockHomedAt(s, 1)
	// Two remote sharers, both on other nodes than requester and home.
	read(t, eng, s, 2, a)
	read(t, eng, s, 3, a)
	read(t, eng, s, 0, a)
	start := eng.Now()
	var done sim.Time
	s.Nodes[0].Cache.Write(a, nil, func() { done = eng.Now() })
	eng.Run()
	got := done - start
	// Write processing adds one SLC pass before the request leaves; the
	// model's OwnershipLatency starts there too, but the FLWB drain path
	// costs one SLC access before processWrite runs. Account for it.
	want := OwnershipLatency(tm, 2)
	if got != want {
		t.Fatalf("simulated %d != model %d", got, want)
	}
}

func TestAnalyticalMigratorySavings(t *testing.T) {
	// Under SC, the per-iteration critical-section cost must shrink by
	// about MigratorySavings when M is enabled — measured on the classic
	// counter workload at zero contention (2 processors alternating).
	tm := DefaultTiming()
	if MigratorySavings(tm) <= 0 {
		t.Fatal("model claims no savings")
	}
	runSC := func(m bool) int64 {
		eng, s := testSystem(t, func(p *Params) {
			p.SC = true
			p.FLWBEntries = 1
			p.M = m
		})
		a := blockHomedAt(s, 0)
		// Prime the migratory pattern.
		for _, n := range []int{1, 2, 1, 2} {
			read(t, eng, s, n, a)
			write(t, eng, s, n, a)
		}
		// Measure one read+write round by node 3 (migratory if m).
		start := eng.Now()
		read(t, eng, s, 3, a)
		write(t, eng, s, 3, a)
		return int64(eng.Now() - start)
	}
	basic, mig := runSC(false), runSC(true)
	saved := basic - mig
	// The write disappears entirely; the read may cost slightly more or
	// less depending on the supplier, so allow a tolerance around the
	// model's prediction.
	model := int64(MigratorySavings(tm))
	if saved < model/2 || saved > model*2 {
		t.Fatalf("measured savings %d far from model %d (basic %d, mig %d)",
			saved, model, basic, mig)
	}
}

func TestAnalyticalModelScalesWithTiming(t *testing.T) {
	// The model must respond to its inputs: double the network latency and
	// remote latencies grow by exactly 2x/4x network crossings.
	tm := DefaultTiming()
	slow := tm
	slow.NetLatency *= 2
	if RemoteCleanLatency(slow)-RemoteCleanLatency(tm) != 2*tm.NetLatency {
		t.Fatal("clean miss does not cross the network twice")
	}
	if RemoteDirtyLatency(slow)-RemoteDirtyLatency(tm) != 4*tm.NetLatency {
		t.Fatal("dirty miss does not cross the network four times")
	}
	_ = memsys.BlockSize
}
