package core

import (
	"testing"
)

// TestWriteCacheStatsUnderSLWBPressure pins that the write-cache `writes`
// statistic counts each committed processor write exactly once even when
// SLWB pressure stalls writes: the controller consults WouldEvict and
// backs off *before* calling Write, so a stalled-then-retried write never
// double-counts. The setup forces maximal conflict — a one-block write
// cache, a one-entry SLWB, and alternating blocks that map to the same
// frame — while a sharer on another node keeps the writer's updates
// non-exclusive so every write takes the write-cache path.
func TestWriteCacheStatsUnderSLWBPressure(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) {
		p.CW = true
		p.SC = false
		p.WriteCacheBlocks = 1
		p.SLWBEntries = 1
		p.CWThreshold = 100 // keep the sharer's copies alive all test
	})
	a := blockHomedAt(s, 1)
	b := blockHomedAt(s, 2)

	// Node 1 becomes a sharer of both blocks, so node 0's combined updates
	// complete non-exclusively and node 0 never gets a Dirty copy (which
	// would bypass the write cache).
	read(t, eng, s, 1, a)
	read(t, eng, s, 1, b)

	const n = 8 // one FLWB's worth of back-to-back writes
	performed := 0
	for i := 0; i < n; i++ {
		addr := a
		if i%2 == 1 {
			addr = b
		}
		if !s.Nodes[0].Cache.Write(addr, nil, func() { performed++ }) {
			t.Fatalf("write %d rejected by the FLWB", i)
		}
	}
	eng.Run()

	if performed != n {
		t.Fatalf("%d of %d writes performed", performed, n)
	}
	wc := s.Nodes[0].Cache.wc
	if got := wc.Writes(); got != n {
		t.Fatalf("write cache counted %d writes for %d committed processor writes", got, n)
	}
	// Alternating conflicting blocks: every write after the first evicts
	// its predecessor, nothing combines, and the last block stays resident.
	if got := wc.Combined(); got != 0 {
		t.Errorf("Combined() = %d, want 0 (blocks alternate)", got)
	}
	if got := wc.Evictions(); got != n-1 {
		t.Errorf("Evictions() = %d, want %d", got, n-1)
	}
	if got := wc.Occupancy(); got != 1 {
		t.Errorf("Occupancy() = %d, want 1", got)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants after pressure run: %v", err)
	}
}
