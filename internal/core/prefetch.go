package core

import (
	"ccsim/internal/memsys"
	"ccsim/internal/stats"
)

// Prefetcher implements adaptive sequential prefetching (paper §3.1,
// following Dahlgren, Dubois & Stenström, ICPP '93). On each SLC read miss
// to block B the controller prefetches the K blocks following B. K adapts
// to the measured usefulness of past prefetches:
//
//   - a modulo-16 counter counts prefetched blocks arriving;
//   - a second counter counts useful prefetches (a prefetched block whose
//     prefetch bit is still set when the processor references it);
//   - every 16 arrivals the useful count is compared with a high and a low
//     mark: above the high mark K doubles (capped), below the low mark K
//     halves (possibly to zero).
//
// When K reaches zero, prefetching stops and the third counter with the
// per-line zero bits detects whether sequential prefetching would have been
// useful: each miss marks the next block's zero bit, and a miss that finds
// its own zero bit set counts as a would-have-been-useful prefetch. Enough
// of those within a 16-miss window restarts prefetching at K = 1.
type Prefetcher struct {
	maxK int
	high int
	low  int

	k int

	prefCount   int // prefetched blocks received this window (mod 16)
	usefulCount int // useful prefetches this window

	zeroBits   map[memsys.Block]bool // per-line zero bits
	zeroCount  int                   // simulated prefetches this window (mod 16)
	zeroUseful int

	// Stats accumulates whole-run effectiveness counters.
	Stats stats.Prefetch
}

const prefetchWindow = 16

// NewPrefetcher returns a prefetcher starting at degree 1.
func NewPrefetcher(maxK, highMark, lowMark int) *Prefetcher {
	return &Prefetcher{
		maxK:     maxK,
		high:     highMark,
		low:      lowMark,
		k:        1,
		zeroBits: make(map[memsys.Block]bool),
	}
}

// Degree returns the current degree of prefetching K.
func (p *Prefetcher) Degree() int { return p.k }

// Candidates returns the blocks to prefetch after a demand miss on b:
// the K consecutive blocks directly following b. The controller filters
// out blocks already present or pending.
func (p *Prefetcher) Candidates(b memsys.Block) []memsys.Block {
	if p.k == 0 {
		return nil
	}
	out := make([]memsys.Block, 0, p.k)
	for i := 1; i <= p.k; i++ {
		out = append(out, b.Next(i))
	}
	return out
}

// OnMiss records a demand read miss on block b. It drives the zero-degree
// detection machinery; the controller must call it on every demand miss,
// whatever the current degree.
func (p *Prefetcher) OnMiss(b memsys.Block) {
	if p.k > 0 {
		return
	}
	if p.zeroBits[b] {
		delete(p.zeroBits, b)
		p.zeroUseful++
	}
	// Simulate a degree-1 prefetch of the following block.
	p.zeroBits[b.Next(1)] = true
	if len(p.zeroBits) > 4096 { // per-line bits are lossy by nature
		p.zeroBits = make(map[memsys.Block]bool)
	}
	p.zeroCount++
	if p.zeroCount >= prefetchWindow {
		if p.zeroUseful >= p.high {
			p.k = 1
			p.zeroBits = make(map[memsys.Block]bool)
		}
		p.zeroCount, p.zeroUseful = 0, 0
	}
}

// OnIssue records that a prefetch request was sent to memory.
func (p *Prefetcher) OnIssue() { p.Stats.Issued++ }

// OnFill records the arrival of a prefetched block and runs the adaptation
// check at each window boundary.
func (p *Prefetcher) OnFill() {
	p.prefCount++
	if p.prefCount < prefetchWindow {
		return
	}
	switch {
	case p.usefulCount >= p.high:
		if p.k == 0 {
			p.k = 1
		} else if p.k*2 <= p.maxK {
			p.k *= 2
		} else {
			p.k = p.maxK
		}
	case p.usefulCount <= p.low:
		p.k /= 2
	}
	p.prefCount, p.usefulCount = 0, 0
}

// OnUseful records a demand reference to a block whose prefetch bit was
// still set (including a demand miss merging with a pending prefetch).
func (p *Prefetcher) OnUseful() {
	p.usefulCount++
	p.Stats.Useful++
}

// OnPartialHit records a demand miss that found a prefetch already pending
// for the block.
func (p *Prefetcher) OnPartialHit() {
	p.Stats.PartHits++
	p.OnUseful()
}

// OnDiscard records a prefetched block leaving the cache unreferenced.
func (p *Prefetcher) OnDiscard() { p.Stats.Discard++ }
