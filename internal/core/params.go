// Package core implements the paper's contribution: a full-map,
// directory-based write-invalidate cache-coherence protocol (BASIC) for a
// CC-NUMA multiprocessor, extended with adaptive sequential prefetching (P),
// the migratory-sharing optimization (M), and a competitive-update mechanism
// with write caches (CW), in every combination, under sequential or release
// consistency.
//
// The package contains the home (directory) controller, the second-level
// cache controller with its lockup-free pending-transaction table and write
// buffers, the adaptive prefetcher, and the node/system assembly that wires
// them to the interconnect and the local buses.
package core

import (
	"fmt"

	"ccsim/internal/sim"
)

// Timing holds the latency parameters of the baseline architecture
// (paper §4), in pclocks (1 pclock = 10 ns at 100 MHz).
type Timing struct {
	FLCAccess  sim.Time // first-level cache access
	FLCFill    sim.Time // first-level cache block fill
	SLCAccess  sim.Time // second-level cache access latency (two SRAM cycles)
	SLCCycle   sim.Time // second-level cache occupancy per operation (30 ns SRAM cycle)
	MemAccess  sim.Time // interleaved local memory (90 ns)
	BusCtl     sim.Time // local bus occupancy, control message
	BusData    sim.Time // local bus occupancy, block-carrying message
	NetLatency sim.Time // uniform network node-to-node latency
}

// DefaultTiming returns the paper's parameters. They compose to the quoted
// FLC / SLC / local-memory access times of 1, 6 and 30 pclocks:
// a local SLC miss costs SLCAccess + BusCtl + MemAccess + BusData +
// SLCAccess(fill) = 6+3+9+6+6 = 30.
func DefaultTiming() Timing {
	return Timing{
		FLCAccess:  1,
		FLCFill:    3,
		SLCAccess:  6,
		SLCCycle:   3,
		MemAccess:  9,
		BusCtl:     3,
		BusData:    6,
		NetLatency: 54,
	}
}

// Params configures one simulated machine.
type Params struct {
	Nodes int // processor count (paper: 16)

	// Caches and buffers.
	FLCSets     int // FLC frames (paper: 4 KB / 32 B = 128)
	SLCSets     int // SLC frames; 0 = infinite (paper default)
	SLCWays     int // SLC associativity (1 = the paper's direct-mapped; 0 means 1)
	FLWBEntries int // first-level write buffer (RC: 8, SC: 1)
	SLWBEntries int // second-level write buffer (RC: 16, SC: 1)

	// Consistency model.
	SC bool // true: sequential consistency; false: release consistency (RCpc)

	// Protocol extensions.
	P  bool // adaptive sequential prefetching
	M  bool // migratory-sharing optimization
	CW bool // competitive update + write cache

	// Extension tuning (paper §3 values by default).
	PrefetchMaxK     int // cap on the degree of prefetching
	PrefetchHighMark int // useful count (of 16) above which K grows
	PrefetchLowMark  int // useful count (of 16) below which K shrinks
	CWThreshold      int // competitive threshold (1 with write caches)
	// PrefetchNackDirty makes the home reject prefetches that find the
	// block dirty in another cache instead of fetching it four-hop (a
	// DASH-style design alternative, off by default; kept as an ablation).
	PrefetchNackDirty bool

	// VerifyData plumbs per-word version numbers through every data path
	// (replies, forwards, writebacks, updates, write caches) and checks on
	// every processor read that the observed version never moves backward —
	// the data-value invariant of coherence. For tests and debugging; adds
	// simulation overhead.
	VerifyData bool

	// Mutate arms a one-shot protocol mutation for checker validation: the
	// first transition matching the named kind misbehaves once, and the
	// live coherence checker (or the data-value invariant) must catch it.
	// Known kinds: "wb-drop-word" (a writeback's merge loses its lowest
	// written word) and "skip-sharer" (the home omits a read requester from
	// the presence vector). Empty disables mutation.
	Mutate string

	// DirPointers selects a limited-pointer directory (Dir_iB) with that
	// many sharer pointers per memory line instead of the paper's full
	// presence-flag map (0, the default). When a block's sharer count
	// overflows the pointers, the entry degrades to broadcast: coherence
	// actions go to every node and all must acknowledge — the classic
	// storage/traffic trade-off (Agarwal et al., ISCA 1988).
	DirPointers      int
	WriteCacheBlocks int // write cache size in blocks (4)

	Timing Timing
}

// DefaultParams returns the paper's baseline machine under release
// consistency with no extensions (BASIC).
func DefaultParams() Params {
	return Params{
		Nodes:            16,
		FLCSets:          128,
		SLCSets:          0,
		FLWBEntries:      8,
		SLWBEntries:      16,
		PrefetchMaxK:     8,
		PrefetchHighMark: 12,
		PrefetchLowMark:  8,
		CWThreshold:      1,
		WriteCacheBlocks: 4,
		Timing:           DefaultTiming(),
	}
}

// Validate reports configuration errors.
func (p *Params) Validate() error {
	switch {
	case p.Nodes < 1:
		return fmt.Errorf("core: Nodes = %d, need >= 1", p.Nodes)
	case p.FLCSets < 1:
		return fmt.Errorf("core: FLCSets = %d, need >= 1", p.FLCSets)
	case p.SLCSets < 0:
		return fmt.Errorf("core: SLCSets = %d, need >= 0", p.SLCSets)
	case p.SLCWays < 0 || (p.SLCWays > 1 && p.SLCSets > 0 && p.SLCSets%p.SLCWays != 0):
		return fmt.Errorf("core: SLCSets = %d not divisible by SLCWays = %d", p.SLCSets, p.SLCWays)
	case p.FLWBEntries < 1 || p.SLWBEntries < 1:
		return fmt.Errorf("core: write buffers need >= 1 entry")
	case p.CW && p.SC:
		return fmt.Errorf("core: the competitive-update mechanism is not feasible under sequential consistency (paper §5.2)")
	case p.CW && (p.CWThreshold < 1 || p.WriteCacheBlocks < 1):
		return fmt.Errorf("core: CW needs threshold >= 1 and a nonempty write cache")
	case p.P && (p.PrefetchMaxK < 1 || p.PrefetchHighMark <= p.PrefetchLowMark):
		return fmt.Errorf("core: bad prefetch tuning")
	case p.DirPointers < 0:
		return fmt.Errorf("core: DirPointers = %d, need >= 0", p.DirPointers)
	}
	switch p.Mutate {
	case "", "wb-drop-word", "skip-sharer":
	default:
		return fmt.Errorf("core: unknown protocol mutation %q", p.Mutate)
	}
	return nil
}

// ProtocolName returns the paper's name for the configured extension
// combination: BASIC, P, M, CW, P+CW, P+M, CW+M, or P+CW+M (with a -SC
// suffix under sequential consistency).
func (p *Params) ProtocolName() string {
	name := ""
	add := func(s string) {
		if name != "" {
			name += "+"
		}
		name += s
	}
	if p.P {
		add("P")
	}
	if p.CW {
		add("CW")
	}
	if p.M {
		add("M")
	}
	if name == "" {
		name = "BASIC"
	}
	if p.SC {
		name += "-SC"
	}
	return name
}

// HardwareCost describes the extra hardware an extension combination needs
// beyond BASIC, reproducing the paper's Table 1.
type HardwareCost struct {
	Protocol             string
	SLCStateBitsPerLine  int // state bits per SLC line
	ExtraCacheMechanisms string
	SLWBNote             string
	MemoryBitsPerLine    string // state bits per memory line
}

// CostTable returns the paper's Table 1 rows for BASIC and each extension.
func CostTable(nodes int) []HardwareCost {
	return []HardwareCost{
		{
			Protocol:             "BASIC",
			SLCStateBitsPerLine:  2,
			ExtraCacheMechanisms: "none",
			SLWBNote:             "SC: a single entry; RC: several entries",
			MemoryBitsPerLine:    fmt.Sprintf("3 state bits plus %d presence bits", nodes),
		},
		{
			Protocol:             "P",
			SLCStateBitsPerLine:  2, // two extra bits per line (prefetch + zero)
			ExtraCacheMechanisms: "3 modulo-16 counters (4 bits) per cache",
			SLWBNote:             "prefetch requests are buffered in the SLWB",
			MemoryBitsPerLine:    "no extra state",
		},
		{
			Protocol:             "M",
			SLCStateBitsPerLine:  1, // one extra state
			ExtraCacheMechanisms: "none",
			SLWBNote:             "none",
			MemoryBitsPerLine:    fmt.Sprintf("1 state bit plus a pointer (log2 %d = %d bits)", nodes, log2(nodes)),
		},
		{
			Protocol:             "CW",
			SLCStateBitsPerLine:  1, // 1-bit counter per line
			ExtraCacheMechanisms: "write cache with four blocks",
			SLWBNote:             "each entry holds a block",
			MemoryBitsPerLine:    "no extra state",
		},
	}
}

func log2(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	return b
}
