package core

import "ccsim/internal/memsys"

// Storage-cost model: bits of state each configuration adds per node,
// quantifying the paper's Table 1 (the companion technical report [5],
// "Performance Gains and Cost Trade-off for Cache Protocol Extensions",
// studies exactly this trade-off). All counts are per node.
type StorageBits struct {
	// SLCLineBits is the coherence overhead per SLC line: stable-state
	// encoding plus every extension's per-line bits.
	SLCLineBits int
	// SLCTotalBits = SLCLineBits * frames.
	SLCTotalBits int64
	// CacheMechanismBits covers per-cache structures: the prefetcher's
	// three modulo-16 counters and the write cache.
	CacheMechanismBits int64
	// MemoryLineBits is the directory overhead per memory block.
	MemoryLineBits int
	// MemoryTotalBits = MemoryLineBits * blocks of local memory.
	MemoryTotalBits int64
	// TotalBits sums everything.
	TotalBits int64
}

// addressBits sizes tags in the write cache (a 32-bit physical address
// space, generous for the paper's era).
const addressBits = 32

// ComputeStorage returns the coherence-state storage a configuration needs
// per node, for an SLC with slcFrames lines and memBlocks blocks of local
// memory. It reproduces Table 1's accounting and extends it to the
// combinations and the limited-pointer directory.
func ComputeStorage(p Params, slcFrames, memBlocks int) StorageBits {
	var s StorageBits

	// Stable cache states: INVALID/SHARED/DIRTY, plus M's extra state.
	states := 3
	if p.M {
		states++ // the migratory-supplied state (paper §3.2)
	}
	s.SLCLineBits = log2(states)
	if p.P {
		s.SLCLineBits += 2 // prefetch bit + zero bit (paper §3.1)
	}
	if p.CW {
		s.SLCLineBits += log2(p.CWThreshold + 1) // competitive counter
		if p.M {
			s.SLCLineBits++ // locally-modified bit (paper §3.4)
		}
	}
	s.SLCTotalBits = int64(s.SLCLineBits) * int64(slcFrames)

	if p.P {
		s.CacheMechanismBits += 3 * 4 // three modulo-16 counters
	}
	if p.CW {
		// Write cache: per block a tag, a valid bit, per-word dirty/valid
		// bits, and the data words themselves.
		perBlock := (addressBits - log2(memsys.BlockSize)) + 1 +
			memsys.WordsPerBlock + memsys.BlockSize*8
		s.CacheMechanismBits += int64(p.WriteCacheBlocks) * int64(perBlock)
	}

	// Directory: 3 state bits (2 stable + transients) plus the sharer set.
	s.MemoryLineBits = 3
	if p.DirPointers > 0 {
		// Dir_iB: i pointers of log2 N bits plus the broadcast bit.
		s.MemoryLineBits += p.DirPointers*log2(p.Nodes) + 1
	} else {
		s.MemoryLineBits += p.Nodes // full presence-flag vector
	}
	if p.M {
		s.MemoryLineBits += 1 + log2(p.Nodes) // migratory bit + last-writer pointer
	}
	s.MemoryTotalBits = int64(s.MemoryLineBits) * int64(memBlocks)

	s.TotalBits = s.SLCTotalBits + s.CacheMechanismBits + s.MemoryTotalBits
	return s
}

// ExtraBitsOver returns how many bits per node cfg needs beyond base (both
// computed with the same geometry).
func (s StorageBits) ExtraBitsOver(base StorageBits) int64 {
	return s.TotalBits - base.TotalBits
}
