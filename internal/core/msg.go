package core

import (
	"ccsim/internal/memsys"
	"ccsim/internal/stats"
)

// MsgType enumerates every message of the coherence and synchronization
// protocols.
type MsgType int

const (
	// Cache -> home requests.
	MsgReadReq   MsgType = iota // read miss (Prefetch flag marks prefetches)
	MsgOwnReq                   // ownership request (write to Shared/Invalid)
	MsgUpdateReq                // CW: propagate combined writes (Mask)
	MsgWBReq                    // replacement writeback of a Dirty line

	// Home -> cache replies and actions.
	MsgReadReply // data; Excl set when an exclusive (migratory) copy is supplied
	MsgOwnAck    // ownership granted; carries data when the requester lost its copy
	MsgUpdateAck // update complete; Excl set when the updater became exclusive owner
	MsgInv       // invalidate
	MsgFwd       // forward a read/write miss to the dirty owner (Mig marks migratory takeaway)
	MsgUpdCopy   // update forwarded to a sharer (Probe marks CW+M interrogation)

	MsgWBAck // writeback accepted (frees the cache's writeback buffer entry)

	// Cache -> home responses.
	MsgInvAck   // invalidation done
	MsgFwdReply // data from the owner back to home (Wrote reports modification)
	MsgUpdAck   // sharer processed an update (Removed: copy self-invalidated; GaveUp: CW+M migratory give-up)

	// Synchronization (processor <-> lock/barrier home).
	MsgLockReq
	MsgLockGrant
	MsgLockRel
	MsgRelAck // release acknowledgment (used under SC)
	MsgBarArrive
	MsgBarGo

	// MsgPrefNack rejects a prefetch that found the block dirty in another
	// cache: fetching it would disturb the active writer for a speculative
	// gain (the DASH prefetch design makes the same choice). Demand misses
	// are never nacked. Under P+M, prefetches to migratory blocks are not
	// nacked either — they intentionally take the block exclusively
	// (read-exclusive prefetching, paper §3.4).
	MsgPrefNack
)

var msgNames = map[MsgType]string{
	MsgReadReq: "ReadReq", MsgOwnReq: "OwnReq", MsgUpdateReq: "UpdateReq",
	MsgWBReq: "WBReq", MsgReadReply: "ReadReply", MsgOwnAck: "OwnAck",
	MsgUpdateAck: "UpdateAck", MsgInv: "Inv", MsgFwd: "Fwd", MsgWBAck: "WBAck",
	MsgUpdCopy: "UpdCopy", MsgInvAck: "InvAck", MsgFwdReply: "FwdReply",
	MsgUpdAck: "UpdAck", MsgLockReq: "LockReq", MsgLockGrant: "LockGrant",
	MsgLockRel: "LockRel", MsgRelAck: "RelAck", MsgBarArrive: "BarArrive",
	MsgBarGo: "BarGo", MsgPrefNack: "PrefNack",
}

func (t MsgType) String() string { return msgNames[t] }

// Msg is one protocol message.
type Msg struct {
	Type  MsgType
	Block memsys.Block
	Src   int // sending node
	Dst   int // receiving node

	Requester int              // original requester, for forwarded messages
	Txn       uint64           // telemetry span this message belongs to (0 = untracked)
	Stamp     int              // home bookkeeping: grant generation at arrival
	Payload   memsys.BlockData // word versions, when data verification is on
	Mask      memsys.WordMask  // dirty words, for updates
	BarID     int              // barrier identity, for BarArrive/BarGo

	Data     bool // message carries a whole data block
	Excl     bool // exclusive supply (migratory read / update-to-owner)
	Prefetch bool // request originated from the prefetcher
	Mig      bool // Fwd is a migratory takeaway
	Probe    bool // UpdCopy doubles as a CW+M migratory interrogation
	Wrote    bool // FwdReply: the owner had modified the copy
	Removed  bool // UpdAck: the sharer invalidated its copy
	GaveUp   bool // UpdAck: the copy was surrendered for migratory detection
}

// Message header size in bytes (command + full address + source/destination
// routing + transaction tags — DASH-era directory protocols carried 16-byte
// request headers).
const headerBytes = 16

// Size returns the message's size in bytes on the interconnect.
func (m *Msg) Size() int {
	switch {
	case m.Type == MsgUpdateReq || m.Type == MsgUpdCopy:
		return headerBytes + m.Mask.Bytes()
	case m.Data:
		return headerBytes + memsys.BlockSize
	default:
		return headerBytes
	}
}

// Class returns the traffic-accounting class of the message.
func (m *Msg) Class() stats.MsgClass {
	switch m.Type {
	case MsgUpdateReq, MsgUpdCopy:
		return stats.UpdateMsg
	case MsgLockReq, MsgLockGrant, MsgLockRel, MsgRelAck, MsgBarArrive, MsgBarGo:
		return stats.SyncMsg
	default:
		if m.Data {
			return stats.DataMsg
		}
		return stats.CtlMsg
	}
}

// toHome reports whether the message is handled by the destination's home
// (directory) controller rather than its cache controller.
func (m *Msg) toHome() bool {
	switch m.Type {
	case MsgReadReq, MsgOwnReq, MsgUpdateReq, MsgWBReq,
		MsgInvAck, MsgFwdReply, MsgUpdAck,
		MsgLockReq, MsgLockRel, MsgBarArrive:
		return true
	}
	return false
}
