package core

import (
	"testing"

	"ccsim/internal/cache"
	"ccsim/internal/memsys"
)

func TestLimitedDirectoryTracksWithinBudget(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) { p.DirPointers = 2 })
	a := blockHomedAt(s, 0)
	read(t, eng, s, 1, a)
	read(t, eng, s, 2, a)
	e, _ := s.Nodes[0].Home.Entry(memsys.BlockOf(a))
	if s.Nodes[0].Home.PointerOverflows != 0 {
		t.Fatalf("overflowed within pointer budget: %+v", e)
	}
	// Within budget, a write invalidates exactly the tracked sharers.
	write(t, eng, s, 1, a)
	if lineOf(s, 2, a) != nil {
		t.Fatal("tracked sharer not invalidated")
	}
	if s.Nodes[0].Home.BroadcastInvalidations != 0 {
		t.Fatal("broadcast used within pointer budget")
	}
}

func TestLimitedDirectoryOverflowBroadcasts(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) { p.DirPointers = 2 })
	a := blockHomedAt(s, 0)
	// Three sharers overflow a two-pointer entry.
	read(t, eng, s, 1, a)
	read(t, eng, s, 2, a)
	read(t, eng, s, 3, a)
	home := s.Nodes[0].Home
	if home.PointerOverflows != 1 {
		t.Fatalf("PointerOverflows = %d, want 1", home.PointerOverflows)
	}
	// A write must now broadcast invalidations and still end up coherent.
	write(t, eng, s, 1, a)
	if home.BroadcastInvalidations != 1 {
		t.Fatalf("BroadcastInvalidations = %d, want 1", home.BroadcastInvalidations)
	}
	for _, n := range []int{2, 3} {
		if lineOf(s, n, a) != nil {
			t.Fatalf("sharer %d survived the broadcast", n)
		}
	}
	if l := lineOf(s, 1, a); l == nil || l.State != cache.Dirty {
		t.Fatalf("writer's line: %+v", l)
	}
	// The grant collapsed the entry back to one pointer: the overflow is
	// gone and the next round tracks precisely again.
	e, _ := home.Entry(memsys.BlockOf(a))
	if !e.Modified || e.Owner != 1 {
		t.Fatalf("directory after broadcast grant: %+v", e)
	}
	read(t, eng, s, 2, a)
	write(t, eng, s, 2, a)
	if home.BroadcastInvalidations != 1 {
		t.Fatal("post-collapse write still broadcast")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLimitedDirectoryGeneratesMoreTrafficThanFullMap(t *testing.T) {
	run := func(ptrs int) uint64 {
		eng, s := testSystem(t, func(p *Params) {
			p.Nodes = 8
			p.DirPointers = ptrs
		})
		a := blockHomedAt(s, 0)
		for n := 1; n <= 3; n++ {
			read(t, eng, s, n, a)
		}
		write(t, eng, s, 1, a)
		return s.Traffic.TotalMsgs()
	}
	full := run(0)
	limited := run(1)
	// With one pointer the write broadcasts to every node (spurious
	// invalidations and acks for 4..7); the full map reaches exactly the
	// two real sharers.
	if limited <= full {
		t.Fatalf("Dir1B traffic (%d msgs) not above full map (%d)", limited, full)
	}
}

func TestLimitedDirectoryUnderAllExtensions(t *testing.T) {
	// The overflow path must compose with P, M and CW.
	eng, s := testSystem(t, func(p *Params) {
		p.DirPointers = 1
		p.P = true
		p.CW = true
		p.M = true
	})
	a := blockHomedAt(s, 0)
	for n := 1; n <= 3; n++ {
		read(t, eng, s, n, a)
	}
	c := s.Nodes[1].Cache
	c.Write(a, nil, nil)
	eng.Run()
	for _, e := range c.WriteCache().DrainAll() {
		c.flushWC(e, nil)
	}
	eng.Run()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLimitedDirectoryValidate(t *testing.T) {
	p := DefaultParams()
	p.DirPointers = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative DirPointers accepted")
	}
}

func TestLimitedDirectoryMemsysBlockHelper(t *testing.T) {
	// blockHomedAt returns an address; Block() of it must round-trip.
	_, s := testSystem(t, nil)
	a := blockHomedAt(s, 3)
	if s.HomeOf(memsys.BlockOf(a)) != 3 {
		t.Fatal("home helper broken")
	}
}
