package core

import (
	"testing"

	"ccsim/internal/cache"
	"ccsim/internal/memsys"
)

// ---------- P: adaptive sequential prefetching ----------

func TestPrefetchIssuedOnMiss(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) { p.P = true })
	a := blockHomedAt(s, 1)
	b := memsys.BlockOf(a)
	read(t, eng, s, 0, a)
	// Degree starts at 1: block b+1 must have been prefetched.
	l := lineOf(s, 0, b.Next(1).Addr())
	if l == nil || !l.PrefetchBit {
		t.Fatalf("next block not prefetched: %+v", l)
	}
	pf := s.Nodes[0].Cache.Prefetcher()
	if pf.Stats.Issued != 1 {
		t.Fatalf("Issued = %d, want 1", pf.Stats.Issued)
	}
	// A read of the prefetched block is an SLC hit and marks it useful.
	pre := s.Nodes[0].Cache.CStats.SLCReadMisses
	read(t, eng, s, 0, b.Next(1).Addr())
	if s.Nodes[0].Cache.CStats.SLCReadMisses != pre {
		t.Fatal("read of prefetched block missed")
	}
	if pf.Stats.Useful != 1 {
		t.Fatalf("Useful = %d, want 1", pf.Stats.Useful)
	}
	if l.PrefetchBit {
		t.Fatal("prefetch bit not cleared by the demand reference")
	}
}

func TestPrefetchSkipsPresentAndPending(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) { p.P = true })
	a := blockHomedAt(s, 1)
	b := memsys.BlockOf(a)
	read(t, eng, s, 0, b.Next(1).Addr()) // b+1 now cached (and b+2 prefetched)
	pf := s.Nodes[0].Cache.Prefetcher()
	issued := pf.Stats.Issued
	read(t, eng, s, 0, a) // miss on b; b+1 present -> no prefetch for it
	if pf.Stats.Issued != issued {
		t.Fatalf("prefetch issued for an already-present block (%d -> %d)", issued, pf.Stats.Issued)
	}
}

func TestPrefetchDegreeAdaptsUp(t *testing.T) {
	pf := NewPrefetcher(8, 12, 6)
	if pf.Degree() != 1 {
		t.Fatalf("initial degree %d, want 1", pf.Degree())
	}
	// A full window of useful prefetches: degree doubles.
	for i := 0; i < prefetchWindow; i++ {
		pf.OnUseful()
		pf.OnFill()
	}
	if pf.Degree() != 2 {
		t.Fatalf("degree after useful window = %d, want 2", pf.Degree())
	}
	for w := 0; w < 4; w++ {
		for i := 0; i < prefetchWindow; i++ {
			pf.OnUseful()
			pf.OnFill()
		}
	}
	if pf.Degree() != 8 {
		t.Fatalf("degree not capped at max: %d", pf.Degree())
	}
}

func TestPrefetchDegreeAdaptsDownToZeroAndRestarts(t *testing.T) {
	pf := NewPrefetcher(8, 12, 6)
	// Two windows with no useful prefetches: 1 -> 0.
	for i := 0; i < prefetchWindow; i++ {
		pf.OnFill()
	}
	if pf.Degree() != 0 {
		t.Fatalf("degree after useless window = %d, want 0", pf.Degree())
	}
	if pf.Candidates(10) != nil {
		t.Fatal("candidates at degree 0")
	}
	// Sequential miss pattern: the zero-bit machinery must restart K=1.
	b := memsys.Block(100)
	for i := 0; i < prefetchWindow+1; i++ {
		pf.OnMiss(b.Next(i))
	}
	if pf.Degree() != 1 {
		t.Fatalf("degree after sequential misses = %d, want 1 (restart)", pf.Degree())
	}
}

func TestPrefetchZeroBitIgnoresRandomMisses(t *testing.T) {
	pf := NewPrefetcher(8, 12, 6)
	for i := 0; i < prefetchWindow; i++ {
		pf.OnFill() // degree -> 0
	}
	// Strided (non-sequential) misses must not restart prefetching.
	for i := 0; i < 64; i++ {
		pf.OnMiss(memsys.Block(1000 + i*7))
	}
	if pf.Degree() != 0 {
		t.Fatalf("degree restarted by non-sequential misses: %d", pf.Degree())
	}
}

func TestPrefetchPartialHitMerges(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) { p.P = true })
	a := blockHomedAt(s, 1)
	b := memsys.BlockOf(a)
	// Start a demand miss (which prefetches b+1), then immediately demand
	// b+1: it must merge with the pending prefetch, not issue a second
	// request.
	done := 0
	c := s.Nodes[0].Cache
	c.Read(a, func() { done++ })
	c.Read(b.Next(1).Addr(), func() { done++ })
	eng.Run()
	if done != 2 {
		t.Fatalf("%d of 2 reads completed", done)
	}
	if got := s.Nodes[1].Home.ReadReqs; got != 2 {
		t.Fatalf("home saw %d requests, want 2 (demand + prefetch, merged)", got)
	}
	pf := c.Prefetcher()
	if pf.Stats.PartHits != 1 {
		t.Fatalf("PartHits = %d, want 1", pf.Stats.PartHits)
	}
}

func TestPrefetchRespectsSLWBCapacity(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) {
		p.P = true
		p.SLWBEntries = 2
		p.PrefetchMaxK = 8
	})
	// Force the degree up by faking a useful history.
	pf := s.Nodes[0].Cache.Prefetcher()
	for i := 0; i < prefetchWindow; i++ {
		pf.OnUseful()
		pf.OnFill()
	}
	for i := 0; i < prefetchWindow; i++ {
		pf.OnUseful()
		pf.OnFill()
	}
	if pf.Degree() != 4 {
		t.Fatalf("degree = %d, want 4", pf.Degree())
	}
	a := blockHomedAt(s, 1)
	read(t, eng, s, 0, a)
	// Only 2 of the 4 candidates fit in the SLWB.
	if pf.Stats.Issued != 2 {
		t.Fatalf("Issued = %d, want 2 (SLWB capacity)", pf.Stats.Issued)
	}
}

// ---------- M: migratory sharing optimization ----------

func TestMigratoryDetection(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) { p.M = true })
	a := blockHomedAt(s, 0)
	b := memsys.BlockOf(a)
	// Node 1: read, write. Node 2: read, write -> detected at node 2's
	// ownership request (two copies, last writer differs).
	read(t, eng, s, 1, a)
	write(t, eng, s, 1, a)
	read(t, eng, s, 2, a)
	e, _ := s.Nodes[0].Home.Entry(b)
	if e.Migratory {
		t.Fatal("migratory before the second writer")
	}
	write(t, eng, s, 2, a)
	e, _ = s.Nodes[0].Home.Entry(b)
	if !e.Migratory {
		t.Fatal("migratory sharing not detected")
	}
	if s.Nodes[0].Home.MigratoryDetections != 1 {
		t.Fatalf("detections = %d", s.Nodes[0].Home.MigratoryDetections)
	}
}

func TestMigratoryReadSuppliesExclusiveAndSavesOwnership(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) { p.M = true })
	a := blockHomedAt(s, 0)
	read(t, eng, s, 1, a)
	write(t, eng, s, 1, a)
	read(t, eng, s, 2, a)
	write(t, eng, s, 2, a) // migratory now
	// Third node in the chain: its read gets an exclusive copy...
	read(t, eng, s, 3, a)
	l := lineOf(s, 3, a)
	if l == nil || l.State != cache.Dirty || !l.MigSupplied {
		t.Fatalf("migratory read did not supply exclusively: %+v", l)
	}
	if lineOf(s, 2, a) != nil {
		t.Fatal("previous holder kept its copy")
	}
	// ...so its write hits locally: no ownership request.
	pre := s.Nodes[0].Home.OwnReqs
	write(t, eng, s, 3, a)
	if s.Nodes[0].Home.OwnReqs != pre {
		t.Fatal("migratory write still sent an ownership request")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMigratoryRevertsOnReadOnlySharing(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) { p.M = true })
	a := blockHomedAt(s, 0)
	b := memsys.BlockOf(a)
	read(t, eng, s, 1, a)
	write(t, eng, s, 1, a)
	read(t, eng, s, 2, a)
	write(t, eng, s, 2, a) // migratory
	read(t, eng, s, 3, a)  // exclusive supply to node 3 (not written yet)
	// Node 1 reads while node 3 has not written: the pattern is no longer
	// migratory. Home must revert and both keep shared copies.
	read(t, eng, s, 1, a)
	e, _ := s.Nodes[0].Home.Entry(b)
	if e.Migratory {
		t.Fatal("block still migratory after a read-read sequence")
	}
	if s.Nodes[0].Home.MigratoryReverts != 1 {
		t.Fatalf("reverts = %d", s.Nodes[0].Home.MigratoryReverts)
	}
	l3 := lineOf(s, 3, a)
	l1 := lineOf(s, 1, a)
	if l3 == nil || l3.State != cache.Shared || l1 == nil || l1.State != cache.Shared {
		t.Fatalf("copies after revert: node3=%+v node1=%+v", l3, l1)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMigratoryOffInBasic(t *testing.T) {
	eng, s := testSystem(t, nil)
	a := blockHomedAt(s, 0)
	read(t, eng, s, 1, a)
	write(t, eng, s, 1, a)
	read(t, eng, s, 2, a)
	write(t, eng, s, 2, a)
	read(t, eng, s, 3, a)
	if l := lineOf(s, 3, a); l == nil || l.State != cache.Shared {
		t.Fatalf("BASIC supplied a non-shared copy: %+v", l)
	}
	e, _ := s.Nodes[0].Home.Entry(memsys.BlockOf(a))
	if e.Migratory {
		t.Fatal("migratory bit set with M disabled")
	}
}

// P+M: prefetches to migratory blocks fetch exclusive copies
// (hardware read-exclusive prefetching, paper §3.4).
func TestReadExclusivePrefetchUnderPM(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) {
		p.P = true
		p.M = true
	})
	a := blockHomedAt(s, 0)
	b := memsys.BlockOf(a)
	// Make block b+1 migratory.
	nb := b.Next(1).Addr()
	read(t, eng, s, 1, nb)
	write(t, eng, s, 1, nb)
	read(t, eng, s, 2, nb)
	write(t, eng, s, 2, nb)
	read(t, eng, s, 2, a)
	write(t, eng, s, 2, a)
	// Node 3 misses on b; the prefetch of b+1 must return an exclusive
	// copy taken from node 2.
	read(t, eng, s, 3, a)
	eng.Run()
	l := lineOf(s, 3, nb)
	if l == nil || !l.PrefetchBit {
		t.Fatalf("b+1 not prefetched: %+v", l)
	}
	if l.State != cache.Dirty || !l.MigSupplied {
		t.Fatalf("prefetch of migratory block not exclusive: %+v", l)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// ---------- CW: competitive update with write caches ----------

func TestCWWriteAllocatesWriteCacheNoFetch(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) { p.CW = true })
	a := blockHomedAt(s, 1)
	b := memsys.BlockOf(a)
	c := s.Nodes[0].Cache
	c.Write(a, nil, nil)
	c.Write(a+4, nil, nil) // combines
	eng.Run()
	// No block fetch is triggered by a write miss (paper §3.3).
	if lineOf(s, 0, a) != nil {
		t.Fatal("write miss fetched the block under CW")
	}
	mask, ok := c.WriteCache().Lookup(b)
	if !ok || mask.Count() != 2 {
		t.Fatalf("write cache mask = %v ok=%v", mask, ok)
	}
	if c.WriteCache().Combined() != 1 {
		t.Fatal("writes not combined")
	}
	// A read of a written word hits the write cache.
	hits := c.CStats.WCHits
	done := false
	c.Read(a+4, func() { done = true })
	eng.Run()
	if !done || c.CStats.WCHits != hits+1 {
		t.Fatalf("write-cache read hit not taken (done=%v hits=%d)", done, c.CStats.WCHits)
	}
	// A read of an unwritten word of the same block must fetch the block.
	miss := false
	if !c.Read(a+8, func() { miss = true }) {
		eng.Run()
	}
	if !miss && lineOf(s, 0, a) == nil {
		t.Fatal("read of unwritten word did not fetch")
	}
}

func TestCWReleaseFlushesAndGrantsExclusive(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) { p.CW = true })
	a := blockHomedAt(s, 1)
	b := memsys.BlockOf(a)
	lock := blockHomedAt(s, 2)
	c := s.Nodes[0].Cache
	acq := false
	c.Acquire(lock, func() { acq = true })
	eng.Run()
	c.Write(a, nil, nil)
	c.Release(lock, nil)
	eng.Run()
	if !acq {
		t.Fatal("no lock")
	}
	if c.WriteCache().Occupancy() != 0 {
		t.Fatal("write cache not flushed at release")
	}
	// Sole writer with no other sharers: home grants exclusivity.
	e, _ := s.Nodes[1].Home.Entry(b)
	if !e.Modified || e.Owner != 0 {
		t.Fatalf("updater not granted exclusivity: %+v", e)
	}
	l := lineOf(s, 0, a)
	if l == nil || l.State != cache.Dirty {
		t.Fatalf("line after exclusive update ack: %+v", l)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCWUpdatePropagatesToSharersAndCounterInvalidates(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) { p.CW = true }) // threshold 1
	a := blockHomedAt(s, 1)
	b := memsys.BlockOf(a)
	read(t, eng, s, 2, a)
	read(t, eng, s, 3, a)
	// Writer 0 updates twice; sharers 2 and 3 tolerate one foreign update
	// (threshold 1) and are invalidated by the second, having shown no
	// intervening local access.
	c := s.Nodes[0].Cache
	flush := func() {
		c.Write(a, nil, nil)
		eng.Run() // let the write drain into the write cache
		for _, e := range c.WriteCache().DrainAll() {
			c.flushWC(e, nil)
		}
		eng.Run()
	}
	flush()
	if lineOf(s, 2, a) == nil || lineOf(s, 3, a) == nil {
		t.Fatal("sharers invalidated by the first update (within threshold)")
	}
	flush()
	if lineOf(s, 2, a) != nil || lineOf(s, 3, a) != nil {
		t.Fatal("sharers not invalidated past the competitive threshold")
	}
	e, _ := s.Nodes[1].Home.Entry(b)
	// All other copies gone: writer got exclusivity.
	if !e.Modified || e.Owner != 0 {
		t.Fatalf("directory after updates: %+v", e)
	}
	// The invalidations are coherence events for the miss classifier.
	pre := s.Nodes[2].Cache.Misses
	read(t, eng, s, 2, a)
	if s.Nodes[2].Cache.Misses[1]-pre[1] != 1 { // stats.Coherence
		t.Fatal("post-update miss not classified coherence")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCWLocalAccessPresetsCounter(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) { p.CW = true }) // threshold 1
	a := blockHomedAt(s, 1)
	c0 := s.Nodes[0].Cache
	read(t, eng, s, 2, a)
	flushOne := func() {
		c0.Write(a, nil, nil)
		eng.Run()
		for _, e := range c0.WriteCache().DrainAll() {
			c0.flushWC(e, nil)
		}
		eng.Run()
	}
	flushOne() // counter at node 2: 1 -> 0, copy kept
	if lineOf(s, 2, a) == nil {
		t.Fatal("sharer invalidated within threshold")
	}
	read(t, eng, s, 2, a) // local access presets the counter
	flushOne()            // 1 -> 0 again, kept
	if lineOf(s, 2, a) == nil {
		t.Fatal("sharer invalidated despite intervening local access")
	}
	flushOne() // exhausted with no access: invalidate
	if lineOf(s, 2, a) != nil {
		t.Fatal("sharer survived past the competitive threshold")
	}
}

func TestCWKeepsMemoryCleanSoMissesAreTwoHop(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) {
		p.CW = true
		p.CWThreshold = 4 // keep the reader's copy alive across updates
	})
	a := blockHomedAt(s, 1)
	b := memsys.BlockOf(a)
	// Node 3 shares the block; node 0 writes and its update reaches
	// memory (home stays CLEAN because another sharer remains). A later
	// miss by node 2 must then be serviced by memory in two transfers —
	// the shorter coherence-miss latency the paper credits CW with.
	read(t, eng, s, 3, a)
	c := s.Nodes[0].Cache
	c.Write(a, nil, nil)
	eng.Run()
	for _, e := range c.WriteCache().DrainAll() {
		c.flushWC(e, nil)
	}
	eng.Run()
	e, _ := s.Nodes[1].Home.Entry(b)
	if e.Modified {
		t.Fatalf("home not CLEAN after update with surviving sharer: %+v", e)
	}
	start := eng.Now()
	lat := read(t, eng, s, 2, a) - start
	if lat != 147 {
		t.Fatalf("read after updates took %d, want 147 (clean at home)", lat)
	}
}

// CW+M: migratory detection by update interrogation (paper §3.4).
func TestCWMMigratoryDetectionByProbe(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) {
		p.CW = true
		p.M = true
		p.CWThreshold = 4 // keep copies alive so probing decides
	})
	a := blockHomedAt(s, 1)
	b := memsys.BlockOf(a)
	// Classic migratory pattern through updates: node 2 reads+writes,
	// node 3 reads+writes. Each holds a copy and modifies it.
	flush := func(n int) {
		c := s.Nodes[n].Cache
		for _, e := range c.WriteCache().DrainAll() {
			c.flushWC(e, nil)
		}
		eng.Run()
	}
	read(t, eng, s, 2, a)
	write(t, eng, s, 2, a)
	flush(2)
	read(t, eng, s, 3, a)
	write(t, eng, s, 3, a) // node 3's copy now locally modified
	flush(3)               // update from a different processor: probe
	e, _ := s.Nodes[1].Home.Entry(b)
	if !e.Migratory {
		t.Fatal("CW+M probe did not detect migratory sharing")
	}
	// Node 2 modified since its last home update? Node 2's copy was
	// updated by node 3's flush... the probe asked node 2; it had written
	// (LocallyModified) so it gave up its copy.
	if lineOf(s, 2, a) != nil {
		t.Fatal("probed cache kept its modified copy")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCWMProbeKeepsUnmodifiedCopies(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) {
		p.CW = true
		p.M = true
		p.CWThreshold = 4
	})
	a := blockHomedAt(s, 1)
	b := memsys.BlockOf(a)
	// Node 2 only reads (never writes): a probe must not take its copy,
	// and the block must not be deemed migratory.
	read(t, eng, s, 2, a)
	write(t, eng, s, 0, a)
	c0 := s.Nodes[0].Cache
	for _, e := range c0.WriteCache().DrainAll() {
		c0.flushWC(e, nil)
	}
	eng.Run()
	write(t, eng, s, 3, a)
	c3 := s.Nodes[3].Cache
	for _, e := range c3.WriteCache().DrainAll() {
		c3.flushWC(e, nil)
	}
	eng.Run() // differing updaters -> probe; node 2 unmodified -> keeps
	e, _ := s.Nodes[1].Home.Entry(b)
	if e.Migratory {
		t.Fatal("read-only sharer misclassified as migratory")
	}
	if lineOf(s, 2, a) == nil {
		t.Fatal("unmodified copy taken by probe")
	}
}
