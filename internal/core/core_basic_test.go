package core

import (
	"testing"

	"ccsim/internal/cache"
	"ccsim/internal/memsys"
	"ccsim/internal/network"
	"ccsim/internal/sim"
)

// testSystem builds a small machine for protocol-level tests.
func testSystem(t *testing.T, mutate func(*Params)) (*sim.Engine, *System) {
	t.Helper()
	p := DefaultParams()
	p.Nodes = 4
	if mutate != nil {
		mutate(&p)
	}
	eng := sim.NewEngine()
	net := network.NewUniform(eng, p.Timing.NetLatency)
	s, err := NewSystem(eng, net, p)
	if err != nil {
		t.Fatal(err)
	}
	return eng, s
}

// read performs a blocking read on node n and returns the completion time.
func read(t *testing.T, eng *sim.Engine, s *System, n int, a memsys.Addr) sim.Time {
	t.Helper()
	done := sim.Time(-1)
	if s.Nodes[n].Cache.Read(a, func() { done = eng.Now() }) {
		return eng.Now() // FLC hit
	}
	eng.Run()
	if done < 0 {
		t.Fatalf("read of %d by node %d never completed", a, n)
	}
	return done
}

// write performs a write on node n and drains the machine.
func write(t *testing.T, eng *sim.Engine, s *System, n int, a memsys.Addr) {
	t.Helper()
	performed := false
	if !s.Nodes[n].Cache.Write(a, nil, func() { performed = true }) {
		t.Fatalf("write by node %d not accepted", n)
	}
	eng.Run()
	if !performed {
		t.Fatalf("write by node %d never performed", n)
	}
}

// blockHomedAt returns an address whose block is homed at the given node.
func blockHomedAt(s *System, node int) memsys.Addr {
	for p := 0; ; p++ {
		b := memsys.Block(p * memsys.BlocksPerPage)
		if s.HomeOf(b) == node {
			return b.Addr()
		}
	}
}

func lineOf(s *System, n int, a memsys.Addr) *cache.Line {
	return s.Nodes[n].Cache.slc.Lookup(memsys.BlockOf(a))
}

func TestLocalReadMissLatencyIs30(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) { p.Nodes = 1 })
	// Paper §4: FLC, SLC, and local memory access times of 1, 6, and 30
	// pclocks. The SLC-miss-to-local-memory path must compose to 30.
	if got := read(t, eng, s, 0, 0); got != 30 {
		t.Fatalf("local read miss completed at %d, want 30", got)
	}
}

func TestRemoteCleanReadMissTwoTransfers(t *testing.T) {
	eng, s := testSystem(t, nil)
	a := blockHomedAt(s, 1)
	// 6 SLC + 3 bus + 54 net + 3 bus + 9 mem + 6 bus + 54 net + 6 bus +
	// 6 SLC fill = 147: two node-to-node transfers.
	if got := read(t, eng, s, 0, a); got != 147 {
		t.Fatalf("remote clean miss completed at %d, want 147", got)
	}
	e, ok := s.Nodes[1].Home.Entry(memsys.BlockOf(a))
	if !ok || e.Modified || e.Presence != 1<<0 {
		t.Fatalf("directory after remote read: %+v", e)
	}
}

func TestFLCHitAfterFill(t *testing.T) {
	eng, s := testSystem(t, nil)
	read(t, eng, s, 0, 0)
	if !s.Nodes[0].Cache.Read(0, nil) {
		t.Fatal("second read of same block missed the FLC")
	}
	// A different word of the same block also hits.
	if !s.Nodes[0].Cache.Read(4, nil) {
		t.Fatal("other word of cached block missed")
	}
}

func TestRemoteDirtyReadMissFourTransfers(t *testing.T) {
	eng, s := testSystem(t, nil)
	a := blockHomedAt(s, 1)
	b := memsys.BlockOf(a)
	// Node 2 writes the block (becomes dirty owner), then node 0 reads.
	write(t, eng, s, 2, a)
	e, _ := s.Nodes[1].Home.Entry(b)
	if !e.Modified || e.Owner != 2 {
		t.Fatalf("after write: %+v", e)
	}
	start := eng.Now()
	lat := read(t, eng, s, 0, a) - start
	if lat <= 147 {
		t.Fatalf("dirty remote miss latency %d, want > 147 (four transfers)", lat)
	}
	// Owner downgraded to Shared, memory clean, both sharers present.
	e, _ = s.Nodes[1].Home.Entry(b)
	if e.Modified {
		t.Fatalf("directory still MODIFIED after read: %+v", e)
	}
	if e.Presence != (1<<0)|(1<<2) {
		t.Fatalf("presence = %b, want nodes 0 and 2", e.Presence)
	}
	if l := lineOf(s, 2, a); l == nil || l.State != cache.Shared {
		t.Fatalf("owner's line not downgraded: %+v", l)
	}
}

func TestWriteToSharedInvalidatesOtherCopies(t *testing.T) {
	eng, s := testSystem(t, nil)
	a := blockHomedAt(s, 0)
	b := memsys.BlockOf(a)
	read(t, eng, s, 1, a)
	read(t, eng, s, 2, a)
	read(t, eng, s, 3, a)
	write(t, eng, s, 1, a)
	e, _ := s.Nodes[0].Home.Entry(b)
	if !e.Modified || e.Owner != 1 || e.Presence != 1<<1 {
		t.Fatalf("after upgrade: %+v", e)
	}
	if lineOf(s, 2, a) != nil || lineOf(s, 3, a) != nil {
		t.Fatal("sharer copies not invalidated")
	}
	if l := lineOf(s, 1, a); l == nil || l.State != cache.Dirty {
		t.Fatalf("writer's line: %+v", l)
	}
	// FLC inclusion: invalidated nodes must miss in the FLC.
	if s.Nodes[2].Cache.Read(a, func() {}) {
		t.Fatal("node 2 FLC hit after invalidation")
	}
	eng.Run()
}

func TestWriteToInvalidFetchesExclusive(t *testing.T) {
	eng, s := testSystem(t, nil)
	a := blockHomedAt(s, 2)
	write(t, eng, s, 0, a)
	if l := lineOf(s, 0, a); l == nil || l.State != cache.Dirty {
		t.Fatalf("line after write miss: %+v", l)
	}
	e, _ := s.Nodes[2].Home.Entry(memsys.BlockOf(a))
	if !e.Modified || e.Owner != 0 {
		t.Fatalf("directory: %+v", e)
	}
}

func TestWriteToDirtyHitsLocally(t *testing.T) {
	eng, s := testSystem(t, nil)
	a := blockHomedAt(s, 1)
	write(t, eng, s, 0, a)
	before := s.Nodes[1].Home.OwnReqs
	write(t, eng, s, 0, a)
	write(t, eng, s, 0, a+4)
	if s.Nodes[1].Home.OwnReqs != before {
		t.Fatal("writes to a dirty line generated ownership requests")
	}
}

func TestWriteMissToDirtyBlockTakesOwnership(t *testing.T) {
	eng, s := testSystem(t, nil)
	a := blockHomedAt(s, 0)
	write(t, eng, s, 1, a)
	write(t, eng, s, 2, a) // write miss while dirty at node 1
	e, _ := s.Nodes[0].Home.Entry(memsys.BlockOf(a))
	if !e.Modified || e.Owner != 2 {
		t.Fatalf("directory: %+v", e)
	}
	if lineOf(s, 1, a) != nil {
		t.Fatal("previous owner still holds a copy")
	}
	if l := lineOf(s, 2, a); l == nil || l.State != cache.Dirty {
		t.Fatalf("new owner's line: %+v", l)
	}
}

func TestTwoSimultaneousWritersSerialize(t *testing.T) {
	eng, s := testSystem(t, nil)
	a := blockHomedAt(s, 0)
	read(t, eng, s, 1, a)
	read(t, eng, s, 2, a)
	// Both upgrade at once: home must serialize; the loser's ownership ack
	// must carry data because its copy was invalidated in between.
	n1 := 0
	n2 := 0
	s.Nodes[1].Cache.Write(a, nil, func() { n1++ })
	s.Nodes[2].Cache.Write(a, nil, func() { n2++ })
	eng.Run()
	if n1 != 1 || n2 != 1 {
		t.Fatalf("performed counts: %d, %d", n1, n2)
	}
	e, _ := s.Nodes[0].Home.Entry(memsys.BlockOf(a))
	if !e.Modified {
		t.Fatal("block not modified after two writes")
	}
	winner := e.Owner
	loser := 3 - winner // 1 or 2
	if l := lineOf(s, winner, a); l == nil || l.State != cache.Dirty {
		t.Fatalf("final owner %d has line %+v", winner, l)
	}
	if lineOf(s, loser, a) != nil {
		t.Fatalf("node %d still holds a copy", loser)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadMergesWithPendingRead(t *testing.T) {
	eng, s := testSystem(t, nil)
	a := blockHomedAt(s, 1)
	done := 0
	s.Nodes[0].Cache.Read(a, func() { done++ })
	s.Nodes[0].Cache.Read(a+4, func() { done++ })
	eng.Run()
	if done != 2 {
		t.Fatalf("%d of 2 merged reads completed", done)
	}
	if s.Nodes[1].Home.ReadReqs != 1 {
		t.Fatalf("home saw %d read requests, want 1 (merged)", s.Nodes[1].Home.ReadReqs)
	}
}

func TestWriteWhileReadPendingIsDeferred(t *testing.T) {
	eng, s := testSystem(t, nil)
	a := blockHomedAt(s, 1)
	reads := 0
	performed := false
	s.Nodes[0].Cache.Read(a, func() { reads++ })
	s.Nodes[0].Cache.Write(a, nil, func() { performed = true })
	eng.Run()
	if reads != 1 || !performed {
		t.Fatalf("reads=%d performed=%v", reads, performed)
	}
	if l := lineOf(s, 0, a); l == nil || l.State != cache.Dirty {
		t.Fatalf("line after read+write: %+v", l)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFiniteSLCReplacementWriteback(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) { p.SLCSets = 4 })
	a := blockHomedAt(s, 1)
	b := memsys.BlockOf(a)
	write(t, eng, s, 0, a)
	// Read a conflicting block (same frame, 4 sets apart): victimizes the
	// dirty line, which must be written back.
	conflict := b.Next(4).Addr()
	read(t, eng, s, 0, conflict)
	eng.Run()
	e, _ := s.Nodes[1].Home.Entry(b)
	if e.Modified {
		t.Fatalf("home still MODIFIED after writeback: %+v", e)
	}
	if s.Nodes[s.HomeOf(b)].Home.Writebacks != 1 {
		t.Fatal("writeback not recorded")
	}
	// Re-reading the victim must miss and be classified a replacement miss.
	cc := s.Nodes[0].Cache
	pre := cc.Misses
	read(t, eng, s, 0, a)
	if cc.Misses[2]-pre[2] != 1 { // stats.Replacement == 2
		t.Fatalf("replacement miss not classified: %v -> %v", pre, cc.Misses)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestForwardRacesWithWriteback(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) { p.SLCSets = 4 })
	a := blockHomedAt(s, 1)
	b := memsys.BlockOf(a)
	write(t, eng, s, 0, a)
	// Victimize the dirty line and, before the writeback settles, let
	// another node read the block. The read may be forwarded to node 0,
	// which must serve it from its writeback buffer.
	done := 0
	s.Nodes[0].Cache.Read(b.Next(4).Addr(), func() { done++ })
	s.Nodes[2].Cache.Read(a, func() { done++ })
	eng.Run()
	if done != 2 {
		t.Fatalf("%d of 2 reads completed", done)
	}
	if l := lineOf(s, 2, a); l == nil {
		t.Fatal("reader did not get the block")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSilentReplacementLeavesStalePresence(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) { p.SLCSets = 4 })
	a := blockHomedAt(s, 1)
	b := memsys.BlockOf(a)
	read(t, eng, s, 0, a)
	read(t, eng, s, 0, b.Next(4).Addr()) // silently replaces the Shared copy
	e, _ := s.Nodes[1].Home.Entry(b)
	if e.Presence&1 == 0 {
		t.Fatal("presence bit cleared by a silent replacement")
	}
	// A write by another node sends a (spurious) invalidation to node 0,
	// which must ack it without holding the block.
	write(t, eng, s, 2, a)
	e, _ = s.Nodes[1].Home.Entry(b)
	if !e.Modified || e.Owner != 2 {
		t.Fatalf("ownership not granted over stale presence: %+v", e)
	}
}

func TestLockAcquireReleaseHandoff(t *testing.T) {
	eng, s := testSystem(t, nil)
	lock := blockHomedAt(s, 3)
	var order []int
	granted := func(n int) func() { return func() { order = append(order, n) } }
	s.Nodes[0].Cache.Acquire(lock, granted(0))
	eng.Run()
	s.Nodes[1].Cache.Acquire(lock, granted(1))
	s.Nodes[2].Cache.Acquire(lock, granted(2))
	eng.Run()
	if len(order) != 1 || order[0] != 0 {
		t.Fatalf("grants before release: %v", order)
	}
	s.Nodes[0].Cache.Release(lock, nil)
	eng.Run()
	s.Nodes[1].Cache.Release(lock, nil)
	eng.Run()
	s.Nodes[2].Cache.Release(lock, nil)
	eng.Run()
	want := []int{0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want %v", order, want)
		}
	}
}

func TestBarrierReleasesAllNodes(t *testing.T) {
	eng, s := testSystem(t, nil)
	released := 0
	for n := 0; n < 4; n++ {
		s.Nodes[n].Cache.Barrier(7, func() { released++ })
	}
	eng.Run()
	if released != 4 {
		t.Fatalf("%d of 4 nodes released", released)
	}
}

func TestReleaseWaitsForPendingWrites(t *testing.T) {
	eng, s := testSystem(t, nil)
	a := blockHomedAt(s, 1)
	lock := blockHomedAt(s, 2)
	// Share the block so the write needs invalidations.
	read(t, eng, s, 3, a)
	acquired := false
	s.Nodes[0].Cache.Acquire(lock, func() { acquired = true })
	eng.Run()
	if !acquired {
		t.Fatal("lock not acquired")
	}
	// Write (pending ownership) then release; then another node acquires.
	// The second acquire must not be granted until the write completed,
	// i.e. the release waited.
	s.Nodes[0].Cache.Write(a, nil, nil)
	s.Nodes[0].Cache.Release(lock, nil)
	got := false
	s.Nodes[1].Cache.Acquire(lock, func() {
		got = true
		// By grant time, node 0's write must be globally performed.
		if l := lineOf(s, 0, a); l == nil || l.State != cache.Dirty {
			t.Errorf("lock handed off before the write performed: %+v", l)
		}
		if lineOf(s, 3, a) != nil {
			t.Error("stale copy at node 3 when lock handed off")
		}
	})
	eng.Run()
	if !got {
		t.Fatal("second acquire never granted")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSLWBFullStallsWrites(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) {
		p.SLWBEntries = 1
		p.FLWBEntries = 1
	})
	// Two writes to different uncached blocks: each needs an SLWB entry.
	// With one entry, the second write waits in the FLWB, and a third
	// write is not accepted immediately.
	a1 := blockHomedAt(s, 1)
	a2 := blockHomedAt(s, 2)
	c := s.Nodes[0].Cache
	if !c.Write(a1, nil, nil) {
		t.Fatal("first write not accepted into an empty FLWB")
	}
	acceptedLater := false
	if c.Write(a2, func() { acceptedLater = true }, nil) {
		t.Fatal("second write accepted with a full FLWB")
	}
	eng.Run()
	if !acceptedLater {
		t.Fatal("blocked write never accepted")
	}
	for _, a := range []memsys.Addr{a1, a2} {
		if l := lineOf(s, 0, a); l == nil || l.State != cache.Dirty {
			t.Fatalf("write to %d lost: %+v", a, l)
		}
	}
}

func TestSequentialConsistencyWriteStalls(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) {
		p.SC = true
		p.FLWBEntries = 1
		p.SLWBEntries = 1
	})
	a := blockHomedAt(s, 1)
	start := eng.Now()
	performedAt := sim.Time(-1)
	s.Nodes[0].Cache.Write(a, nil, func() { performedAt = eng.Now() })
	eng.Run()
	if performedAt < 0 {
		t.Fatal("write never performed")
	}
	// A remote write miss takes well over 100 pclocks; SC exposes it all.
	if performedAt-start < 100 {
		t.Fatalf("SC write performed after only %d pclocks", performedAt-start)
	}
}

func TestMissClassificationColdThenCoherence(t *testing.T) {
	eng, s := testSystem(t, nil)
	a := blockHomedAt(s, 1)
	c := s.Nodes[0].Cache
	read(t, eng, s, 0, a)
	if c.Misses[0] != 1 { // stats.Cold
		t.Fatalf("first miss not cold: %v", c.Misses)
	}
	write(t, eng, s, 2, a) // invalidates node 0
	read(t, eng, s, 0, a)
	if c.Misses[1] != 1 { // stats.Coherence
		t.Fatalf("miss after invalidation not coherence: %v", c.Misses)
	}
}
