package core

import (
	"strings"
	"testing"

	"ccsim/internal/cache"
	"ccsim/internal/memsys"
)

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		mutate func(*Params)
		errHas string
	}{
		{func(p *Params) { p.Nodes = 0 }, "Nodes"},
		{func(p *Params) { p.FLCSets = 0 }, "FLCSets"},
		{func(p *Params) { p.SLCSets = -1 }, "SLCSets"},
		{func(p *Params) { p.FLWBEntries = 0 }, "write buffers"},
		{func(p *Params) { p.SLWBEntries = 0 }, "write buffers"},
		{func(p *Params) { p.CW = true; p.SC = true }, "sequential consistency"},
		{func(p *Params) { p.CW = true; p.CWThreshold = 0 }, "CW needs"},
		{func(p *Params) { p.CW = true; p.WriteCacheBlocks = 0 }, "CW needs"},
		{func(p *Params) { p.P = true; p.PrefetchMaxK = 0 }, "prefetch"},
		{func(p *Params) { p.P = true; p.PrefetchHighMark = 3; p.PrefetchLowMark = 5 }, "prefetch"},
	}
	for i, c := range cases {
		p := DefaultParams()
		c.mutate(&p)
		err := p.Validate()
		if err == nil || !strings.Contains(err.Error(), c.errHas) {
			t.Errorf("case %d: err = %v, want containing %q", i, err, c.errHas)
		}
	}
	good := DefaultParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestProtocolNameAllCombos(t *testing.T) {
	cases := []struct {
		p, m, cw, sc bool
		want         string
	}{
		{false, false, false, false, "BASIC"},
		{true, false, false, false, "P"},
		{false, true, false, false, "M"},
		{false, false, true, false, "CW"},
		{true, false, true, false, "P+CW"},
		{true, true, false, false, "P+M"},
		{false, true, true, false, "CW+M"},
		{true, true, true, false, "P+CW+M"},
		{false, false, false, true, "BASIC-SC"},
		{true, true, false, true, "P+M-SC"},
	}
	for _, c := range cases {
		p := DefaultParams()
		p.P, p.M, p.CW, p.SC = c.p, c.m, c.cw, c.sc
		if got := p.ProtocolName(); got != c.want {
			t.Errorf("ProtocolName = %q, want %q", got, c.want)
		}
	}
}

func TestCostTableContents(t *testing.T) {
	rows := CostTable(16)
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	if !strings.Contains(rows[2].MemoryBitsPerLine, "4 bits") {
		t.Errorf("M pointer for 16 nodes should be log2 16 = 4 bits: %q", rows[2].MemoryBitsPerLine)
	}
	if log2(1) != 0 || log2(2) != 1 || log2(16) != 4 || log2(17) != 5 {
		t.Error("log2 wrong")
	}
}

func TestMsgStringAndSizes(t *testing.T) {
	if MsgReadReq.String() != "ReadReq" || MsgBarGo.String() != "BarGo" {
		t.Error("message names wrong")
	}
	ctl := &Msg{Type: MsgInv}
	if ctl.Size() != 16 {
		t.Errorf("control size %d", ctl.Size())
	}
	data := &Msg{Type: MsgReadReply, Data: true}
	if data.Size() != 48 {
		t.Errorf("data size %d", data.Size())
	}
	upd := &Msg{Type: MsgUpdateReq, Mask: memsys.WordMask(0).Set(0).Set(3)}
	if upd.Size() != 16+8 {
		t.Errorf("update size %d", upd.Size())
	}
}

func TestPrefetchNackAblation(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) {
		p.P = true
		p.PrefetchNackDirty = true
	})
	a := blockHomedAt(s, 1)
	b := memsys.BlockOf(a)
	// Make b+1 dirty at node 2, then miss on b at node 0: the prefetch of
	// b+1 must be nacked, leaving node 2's copy untouched.
	write(t, eng, s, 2, b.Next(1).Addr())
	read(t, eng, s, 0, a)
	eng.Run()
	pf := s.Nodes[0].Cache.Prefetcher()
	if pf.Stats.Nacked != 1 {
		t.Fatalf("Nacked = %d, want 1", pf.Stats.Nacked)
	}
	if l := lineOf(s, 2, b.Next(1).Addr()); l == nil || l.State != cache.Dirty {
		t.Fatalf("owner's dirty copy disturbed: %+v", l)
	}
	if lineOf(s, 0, b.Next(1).Addr()) != nil {
		t.Fatal("nacked prefetch installed a line")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchToDirtyServedWithoutNackOption(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) { p.P = true })
	a := blockHomedAt(s, 1)
	b := memsys.BlockOf(a)
	write(t, eng, s, 2, b.Next(1).Addr())
	read(t, eng, s, 0, a)
	eng.Run()
	// Paper behavior: serviced four-hop; the owner is downgraded.
	if l := lineOf(s, 0, b.Next(1).Addr()); l == nil || !l.PrefetchBit {
		t.Fatalf("prefetch to dirty block not serviced: %+v", l)
	}
	if l := lineOf(s, 2, b.Next(1).Addr()); l == nil || l.State != cache.Shared {
		t.Fatalf("owner not downgraded: %+v", l)
	}
}

func TestNackWithMergedDemandReissues(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) {
		p.P = true
		p.PrefetchNackDirty = true
	})
	a := blockHomedAt(s, 1)
	b := memsys.BlockOf(a)
	write(t, eng, s, 2, b.Next(1).Addr())
	// Demand-read b (prefetches b+1, which will be nacked) and immediately
	// demand b+1 so it merges with the in-flight prefetch. The nack must
	// reissue a demand read, and the reader must still get data.
	done := 0
	s.Nodes[0].Cache.Read(a, func() { done++ })
	s.Nodes[0].Cache.Read(b.Next(1).Addr(), func() { done++ })
	eng.Run()
	if done != 2 {
		t.Fatalf("%d of 2 reads completed", done)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSCReleaseAcknowledged(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) {
		p.SC = true
		p.FLWBEntries = 1
	})
	lock := blockHomedAt(s, 2)
	acq, rel := false, false
	s.Nodes[0].Cache.Acquire(lock, func() { acq = true })
	eng.Run()
	if proceed := s.Nodes[0].Cache.Release(lock, func() { rel = true }); proceed {
		t.Fatal("SC release proceeded without ack")
	}
	eng.Run()
	if !acq || !rel {
		t.Fatalf("acq=%v rel=%v", acq, rel)
	}
}

func TestWritebackStampRejectsStale(t *testing.T) {
	// Exercise the grant-generation check directly: a writeback whose
	// stamp predates the current grant must be dropped.
	eng, s := testSystem(t, nil)
	a := blockHomedAt(s, 0)
	b := memsys.BlockOf(a)
	write(t, eng, s, 1, a) // node 1 owner, grants=1
	home := s.Nodes[0].Home
	e, _ := home.Entry(b)
	if !e.Modified || e.Owner != 1 {
		t.Fatalf("setup: %+v", e)
	}
	// A forged stale writeback (stamp 0 < grants 1). Register the pending
	// entry first so the acknowledgment has a receiver.
	s.Nodes[1].Cache.wbPending[b] = true
	home.Handle(&Msg{Type: MsgWBReq, Block: b, Src: 1, Dst: 0, Data: true, Stamp: 0})
	eng.Run()
	if home.StaleWritebacks != 1 {
		t.Fatalf("StaleWritebacks = %d", home.StaleWritebacks)
	}
	e, _ = home.Entry(b)
	if !e.Modified {
		t.Fatal("stale writeback cleared ownership")
	}
}

func TestOwnershipCyclesBackWithQueuedWriteback(t *testing.T) {
	// Regression for the ABA the fuzzer found: a cache victimizes its
	// dirty line, regains exclusivity through an update while the old
	// writeback is still queued, and the home must not let the stale
	// writeback clear the fresh ownership.
	eng, s := testSystem(t, func(p *Params) {
		p.CW = true
		p.SLCSets = 4
	})
	a := blockHomedAt(s, 1)
	b := memsys.BlockOf(a)
	c := s.Nodes[0].Cache
	// Gain exclusivity via an update (writes to an uncached block).
	c.Write(a, nil, nil)
	eng.Run()
	for _, e := range c.WriteCache().DrainAll() {
		c.flushWC(e, nil)
	}
	eng.Run()
	if l := lineOf(s, 0, a); l == nil || l.State != cache.Dirty {
		t.Fatalf("no exclusive copy: %+v", l)
	}
	// Victimize it (conflicting read), then immediately write again: the
	// new write-cache flush races the writeback.
	done := false
	c.Read(b.Next(4).Addr(), func() { done = true })
	c.Write(a, nil, nil)
	eng.Run()
	if !done {
		t.Fatal("conflicting read never completed")
	}
	for _, e := range c.WriteCache().DrainAll() {
		c.flushWC(e, nil)
	}
	eng.Run()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestQuiescedAndIdle(t *testing.T) {
	eng, s := testSystem(t, nil)
	if !s.Quiesced() {
		t.Fatal("fresh system not quiesced")
	}
	a := blockHomedAt(s, 1)
	got := false
	s.Nodes[0].Cache.Read(a, func() { got = true })
	if s.Quiesced() {
		t.Fatal("quiesced with a read in flight")
	}
	eng.Run()
	if !got || !s.Quiesced() {
		t.Fatal("not quiesced after drain")
	}
}

func TestStatsGatingSuppressesCounters(t *testing.T) {
	eng, s := testSystem(t, nil)
	s.SetStatsEnabled(false)
	a := blockHomedAt(s, 1)
	read(t, eng, s, 0, a)
	c := s.Nodes[0].Cache
	if c.Misses.Total() != 0 || c.CStats.SLCReadMisses != 0 {
		t.Fatal("miss counters advanced while stats disabled")
	}
	if s.Traffic.TotalBytes() != 0 {
		t.Fatal("traffic counted while stats disabled")
	}
	s.SetStatsEnabled(true)
	read(t, eng, s, 2, a)
	if s.Nodes[2].Cache.Misses.Total() != 1 {
		t.Fatal("miss not counted after re-enabling")
	}
}

func TestCWMUpdateRecallOfMigratoryBlock(t *testing.T) {
	// CW+M: a block goes migratory-exclusive; a laggard updater's combined
	// writes must recall the owner's copy and transfer exclusivity.
	eng, s := testSystem(t, func(p *Params) {
		p.CW = true
		p.M = true
		p.CWThreshold = 4
	})
	a := blockHomedAt(s, 1)
	b := memsys.BlockOf(a)
	// Node 0 writes into its write cache but does not flush yet.
	c0 := s.Nodes[0].Cache
	c0.Write(a, nil, nil)
	eng.Run()
	// Node 2 takes the block exclusive (write miss to uncached block, no
	// other copies: update grants exclusivity).
	c2 := s.Nodes[2].Cache
	c2.Write(a, nil, nil)
	eng.Run()
	for _, e := range c2.WriteCache().DrainAll() {
		c2.flushWC(e, nil)
	}
	eng.Run()
	e, _ := s.Nodes[1].Home.Entry(b)
	if !e.Modified || e.Owner != 2 {
		t.Fatalf("setup: %+v", e)
	}
	// Now node 0's stale combined writes flush: recall from node 2, grant
	// to node 0.
	for _, we := range c0.WriteCache().DrainAll() {
		c0.flushWC(we, nil)
	}
	eng.Run()
	e, _ = s.Nodes[1].Home.Entry(b)
	if !e.Modified || e.Owner != 0 {
		t.Fatalf("recall did not transfer ownership: %+v", e)
	}
	if lineOf(s, 2, a) != nil {
		t.Fatal("recalled owner kept its copy")
	}
	if l := lineOf(s, 0, a); l == nil || l.State != cache.Dirty {
		t.Fatalf("updater's line: %+v", l)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetcherDiscardStat(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) { p.P = true })
	a := blockHomedAt(s, 1)
	b := memsys.BlockOf(a)
	read(t, eng, s, 0, a) // prefetches b+1
	if l := lineOf(s, 0, b.Next(1).Addr()); l == nil || !l.PrefetchBit {
		t.Fatal("setup failed")
	}
	// Node 2 writes b+1: node 0's unreferenced prefetched copy is
	// invalidated -> a discard.
	write(t, eng, s, 2, b.Next(1).Addr())
	if got := s.Nodes[0].Cache.Prefetcher().Stats.Discard; got != 1 {
		t.Fatalf("Discard = %d, want 1", got)
	}
}

func TestZeroDegreeRestartEndToEnd(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) { p.P = true })
	pf := s.Nodes[0].Cache.Prefetcher()
	// Drive the degree to zero with useless fills.
	for i := 0; i < prefetchWindow; i++ {
		pf.OnFill()
	}
	if pf.Degree() != 0 {
		t.Fatalf("degree = %d", pf.Degree())
	}
	// A sequential scan of demand misses must restart prefetching through
	// the zero-bit machinery, end to end.
	base := memsys.BlockOf(blockHomedAt(s, 1))
	for i := 0; i < prefetchWindow+2; i++ {
		read(t, eng, s, 0, base.Next(i).Addr())
	}
	if pf.Degree() == 0 {
		t.Fatal("degree never restarted on a sequential miss stream")
	}
}

func TestStorageModel(t *testing.T) {
	base := DefaultParams()
	geomFrames, geomBlocks := 512, 1<<16
	basic := ComputeStorage(base, geomFrames, geomBlocks)
	// BASIC: 2 state bits per line; 3 + 16 bits per memory block.
	if basic.SLCLineBits != 2 {
		t.Fatalf("BASIC SLC bits = %d", basic.SLCLineBits)
	}
	if basic.MemoryLineBits != 19 {
		t.Fatalf("BASIC memory bits = %d", basic.MemoryLineBits)
	}
	p := base
	p.P = true
	if got := ComputeStorage(p, geomFrames, geomBlocks); got.SLCLineBits != 4 ||
		got.CacheMechanismBits != 12 {
		t.Fatalf("P storage = %+v", got)
	}
	m := base
	m.M = true
	sm := ComputeStorage(m, geomFrames, geomBlocks)
	if sm.MemoryLineBits != 19+1+4 { // +migratory bit +4-bit pointer
		t.Fatalf("M memory bits = %d", sm.MemoryLineBits)
	}
	cw := base
	cw.CW = true
	scw := ComputeStorage(cw, geomFrames, geomBlocks)
	if scw.SLCLineBits != 3 { // 2 state + 1-bit counter (threshold 1)
		t.Fatalf("CW SLC bits = %d", scw.SLCLineBits)
	}
	if scw.CacheMechanismBits == 0 {
		t.Fatal("CW write cache costs nothing")
	}
	// Limited pointers shrink the directory.
	lim := base
	lim.DirPointers = 2
	slim := ComputeStorage(lim, geomFrames, geomBlocks)
	if slim.MemoryLineBits >= basic.MemoryLineBits {
		t.Fatalf("Dir2B (%d bits) not smaller than full map (%d)",
			slim.MemoryLineBits, basic.MemoryLineBits)
	}
	// Every extension costs something over BASIC.
	all := base
	all.P, all.M, all.CW = true, true, true
	if ComputeStorage(all, geomFrames, geomBlocks).ExtraBitsOver(basic) <= 0 {
		t.Fatal("P+CW+M costs nothing")
	}
}
