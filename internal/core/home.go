package core

import (
	"fmt"
	"math/bits"

	"ccsim/internal/memsys"
	"ccsim/internal/syncprim"
	"ccsim/internal/telemetry"
	"ccsim/internal/trace"
)

// dirState is a memory block's stable directory state. The paper's three
// transient states are represented by the entry's busy flag plus the
// transaction context; requests arriving at a busy entry are deferred, which
// serializes transactions per block exactly as a real home controller does.
type dirState int

const (
	dirClean    dirState = iota // the memory copy is valid
	dirModified                 // exactly one cache holds the exclusive copy
)

// txnKind identifies the in-flight transaction at a busy entry.
type txnKind int

const (
	txNone   txnKind = iota
	txMem            // simple memory access in progress
	txFwd            // waiting for the dirty owner's FwdReply (read miss)
	txInv            // waiting for invalidation acks (ownership grant)
	txUpd            // waiting for update acks (competitive update fanout)
	txRecall         // waiting for the owner's copy to serve an update
)

// dirEntry is the directory state of one memory block: the full-map
// presence vector and stable state of BASIC (paper §2), plus the migratory
// bit, last-writer pointer and last-updater pointer the M and CW+M
// extensions add (paper §3.2, §3.4).
type dirEntry struct {
	state    dirState
	presence uint64 // bit i set: node i may hold a copy
	owner    int    // valid when state == dirModified

	busy     bool
	deferred []*Msg // requests awaiting the current transaction
	parked   []*Msg // requests from the registered owner, awaiting its writeback

	// Transaction context (valid while busy).
	txn      txnKind
	txnReq   *Msg
	acksLeft int
	needData bool
	gaveUp   bool // CW+M probe: all interrogated caches surrendered
	probing  bool

	// overflow marks a limited-pointer entry whose sharer count exceeded
	// the pointer budget: coherence actions must broadcast.
	overflow bool

	// grants counts exclusive-ownership grants; a writeback request is
	// only current if no grant intervened since it arrived (otherwise
	// ownership cycled — possibly back to the same cache — while the stale
	// writeback sat deferred).
	grants int

	// Extension state.
	migratory   bool
	lastWriter  int
	lastUpdater int

	// data holds the block's word versions when data verification is on.
	data memsys.BlockData
}

// HomeCtl is the directory controller of one node, serving the memory
// blocks homed there plus the queue-based locks and barriers stored in its
// memory.
type HomeCtl struct {
	sys *System
	id  int

	dir      map[memsys.Block]*dirEntry
	locks    map[memsys.Block]*syncprim.Lock
	barriers map[int]*syncprim.Barrier

	// Statistics.
	ReadReqs, OwnReqs, UpdateReqs, Writebacks uint64
	PointerOverflows                          uint64
	BroadcastInvalidations                    uint64
	MigratoryDetections                       uint64
	MigratoryReverts                          uint64
	ExclusiveSupplies                         uint64
	StaleWritebacks                           uint64

	// memFree recycles the pooled memory-access events; see memJob.
	memFree []*memJob
}

func newHomeCtl(s *System, id int) *HomeCtl {
	return &HomeCtl{
		sys:      s,
		id:       id,
		dir:      make(map[memsys.Block]*dirEntry),
		locks:    make(map[memsys.Block]*syncprim.Lock),
		barriers: make(map[int]*syncprim.Barrier),
	}
}

func (h *HomeCtl) entry(b memsys.Block) *dirEntry {
	e := h.dir[b]
	if e == nil {
		e = &dirEntry{owner: -1, lastWriter: -1, lastUpdater: -1}
		h.dir[b] = e
	}
	return e
}

func bit(n int) uint64 { return 1 << uint(n) }

// ckDir reports block b's directory entry to the live checker after a
// transition. One nil check when the checker is off.
func (h *HomeCtl) ckDir(b memsys.Block, e *dirEntry, event string) {
	if ck := h.sys.Check; ck != nil {
		ck.OnDirState(h.id, b, e.state == dirModified, e.owner, e.presence, event)
	}
}

// addSharer records node n as a sharer, degrading a limited-pointer entry
// to broadcast mode when the pointer budget overflows.
func (h *HomeCtl) addSharer(e *dirEntry, n int) {
	e.presence |= bit(n)
	if ptrs := h.sys.P.DirPointers; ptrs > 0 && !e.overflow &&
		bits.OnesCount64(e.presence) > ptrs {
		e.overflow = true
		h.PointerOverflows++
	}
}

// applyUpdate serializes a combined update's writes into memory: each
// masked word gets the next version for its location. This is the
// competitive-update mechanism's global serialization point.
func (h *HomeCtl) applyUpdate(e *dirEntry, m *Msg) {
	if h.sys.verSeq == nil {
		return
	}
	b := m.Block
	for w := 0; w < memsys.WordsPerBlock; w++ {
		if m.Mask.Has(w) {
			e.data[w] = h.sys.serialize(m.Src, b, w)
		}
	}
}

// setPresence replaces the presence set wholesale (ownership transfers,
// reverts) and recomputes the limited-pointer overflow state.
func (h *HomeCtl) setPresence(e *dirEntry, mask uint64) {
	e.presence = mask
	ptrs := h.sys.P.DirPointers
	over := ptrs > 0 && bits.OnesCount64(mask) > ptrs
	if over && !e.overflow {
		h.PointerOverflows++
	}
	e.overflow = over
}

// sharersFor returns the nodes a coherence action must reach, excluding
// the requester: the tracked sharers under a full map, or everyone when a
// limited-pointer entry has overflowed.
func (h *HomeCtl) sharersFor(e *dirEntry, requester int) uint64 {
	if e.overflow {
		all := uint64(1)<<uint(h.sys.P.Nodes) - 1
		return all &^ bit(requester)
	}
	return e.presence &^ bit(requester)
}

// idle reports whether no transaction is in flight at this home.
func (h *HomeCtl) idle() bool {
	for _, e := range h.dir {
		if e.busy || len(e.deferred) > 0 || len(e.parked) > 0 {
			return false
		}
	}
	return true
}

// Handle processes one incoming message.
func (h *HomeCtl) Handle(m *Msg) {
	switch m.Type {
	case MsgReadReq, MsgOwnReq, MsgUpdateReq, MsgWBReq:
		e := h.entry(m.Block)
		if e.busy {
			e.deferred = append(e.deferred, m)
			return
		}
		h.process(m, e)
	case MsgInvAck:
		h.onInvAck(m)
	case MsgFwdReply:
		h.onFwdReply(m)
	case MsgUpdAck:
		h.onUpdAck(m)
	case MsgLockReq, MsgLockRel:
		h.onLock(m)
	case MsgBarArrive:
		h.onBarrier(m)
	default:
		panic(fmt.Sprintf("home %d: unexpected message %v", h.id, m.Type))
	}
}

// process starts a transaction for a request at a non-busy entry. All
// requests first access the (fully interleaved) memory, which holds both
// the directory and the data.
func (h *HomeCtl) process(m *Msg, e *dirEntry) {
	// A read or ownership request from the registered exclusive owner can
	// only mean the owner's writeback is still in flight. Park it until the
	// writeback arrives. (Updates from the owner are handled directly in
	// updateReq: they carry writes that were combined before the owner
	// became exclusive.)
	if e.state == dirModified && e.owner == m.Src &&
		(m.Type == MsgReadReq || m.Type == MsgOwnReq) {
		e.parked = append(e.parked, m)
		return
	}
	e.busy = true
	e.txn = txMem
	e.txnReq = m
	// The request's queueing behind a busy entry ends here; the memory
	// access it now performs ends at memDone below.
	h.sys.tmark(m.Txn, telemetry.PhaseDirWait)
	j := h.getMemJob()
	j.m, j.e = m, e
	h.sys.Eng.AfterCall(h.sys.P.Timing.MemAccess, memDone, j)
}

// memJob carries one request's memory access through the pooled event
// path; jobs recycle through HomeCtl.memFree (every coherence request
// schedules exactly one).
type memJob struct {
	h *HomeCtl
	m *Msg
	e *dirEntry
}

func (h *HomeCtl) getMemJob() *memJob {
	if n := len(h.memFree); n > 0 {
		j := h.memFree[n-1]
		h.memFree = h.memFree[:n-1]
		return j
	}
	return &memJob{h: h}
}

// memDone completes a request's memory access and dispatches it to the
// directory handler for its type.
func memDone(a any) {
	j := a.(*memJob)
	h, m, e := j.h, j.m, j.e
	j.m, j.e = nil, nil
	h.memFree = append(h.memFree, j)
	h.sys.tmark(m.Txn, telemetry.PhaseMemory)
	switch m.Type {
	case MsgReadReq:
		h.readReq(m, e)
	case MsgOwnReq:
		h.ownReq(m, e)
	case MsgUpdateReq:
		h.updateReq(m, e)
	case MsgWBReq:
		h.wbReq(m, e)
	}
}

func (h *HomeCtl) finish(b memsys.Block, e *dirEntry) {
	e.busy = false
	e.txn = txNone
	e.txnReq = nil
	h.drainDeferred(b, e)
}

func (h *HomeCtl) drainDeferred(b memsys.Block, e *dirEntry) {
	for !e.busy && len(e.deferred) > 0 {
		m := e.deferred[0]
		e.deferred = e.deferred[1:]
		h.process(m, e)
	}
}

func (h *HomeCtl) send(m *Msg) {
	m.Src = h.id
	h.sys.Send(m)
}

// ---------- Read misses ----------

func (h *HomeCtl) readReq(m *Msg, e *dirEntry) {
	h.ReadReqs++
	b := m.Block
	if e.state == dirModified {
		mig := h.sys.P.M && e.migratory
		if m.Prefetch && !mig && h.sys.P.PrefetchNackDirty {
			// A speculative fetch would steal the block from its active
			// writer; reject it. (Migratory blocks are the exception: the
			// whole point of P+M is to prefetch them exclusively.)
			h.send(&Msg{Type: MsgPrefNack, Block: b, Dst: m.Src, Txn: m.Txn})
			h.finish(b, e)
			return
		}
		// Serviced in four node-to-node transfers via the owner.
		e.txn = txFwd
		h.send(&Msg{
			Type: MsgFwd, Block: b, Dst: e.owner,
			Requester: m.Src, Mig: mig, Prefetch: m.Prefetch, Txn: m.Txn,
		})
		return
	}
	// Clean at memory: serviced in two transfers (or locally).
	if h.sys.P.M && e.migratory && e.presence&^bit(m.Src) == 0 {
		// Migratory block with no other holder: supply an exclusive copy so
		// the follow-up write hits locally (the optimization's whole point).
		h.ExclusiveSupplies++
		e.state = dirModified
		e.owner = m.Src
		h.setPresence(e, bit(m.Src))
		e.grants++
		h.ckDir(b, e, "excl-supply")
		h.send(&Msg{Type: MsgReadReply, Block: b, Dst: m.Src, Data: true, Excl: true, Prefetch: m.Prefetch, Stamp: e.grants, Payload: e.data, Txn: m.Txn})
		h.finish(b, e)
		return
	}
	if !h.sys.takeMutation("skip-sharer") {
		h.addSharer(e, m.Src)
	}
	h.ckDir(b, e, "read-share")
	h.send(&Msg{Type: MsgReadReply, Block: b, Dst: m.Src, Data: true, Prefetch: m.Prefetch, Payload: e.data, Txn: m.Txn})
	h.finish(b, e)
}

// onFwdReply completes a transaction that needed the owner's copy.
func (h *HomeCtl) onFwdReply(m *Msg) {
	b := m.Block
	e := h.entry(b)
	if !e.busy || (e.txn != txFwd && e.txn != txRecall) {
		panic(fmt.Sprintf("home %d: unexpected FwdReply for block %d", h.id, b))
	}
	req := e.txnReq
	if m.Mask != 0 {
		// Forward served from a writeback buffer: only the masked words are
		// meaningful (a relinquished frame carries just its written words).
		e.data.Merge(m.Payload, m.Mask)
	} else {
		e.data = m.Payload
	}
	// Write the returned data back to memory.
	h.sys.Eng.After(h.sys.P.Timing.MemAccess, func() {
		h.sys.tmark(req.Txn, telemetry.PhaseMemory)
		switch {
		case e.txn == txRecall:
			// Recalled to serve a competitive update: apply the update and
			// hand the block to the updater exclusively.
			e.state = dirModified
			e.owner = req.Src
			h.setPresence(e, bit(req.Src))
			e.lastWriter = req.Src
			e.grants++
			h.applyUpdate(e, req)
			h.ckDir(b, e, "recall-grant")
			h.send(&Msg{Type: MsgUpdateAck, Block: b, Dst: req.Src, Data: true, Excl: true, Stamp: e.grants, Payload: e.data, Txn: req.Txn})
		case req.Type == MsgOwnReq:
			// Write miss to a dirty block: exclusive handoff.
			e.owner = req.Src
			h.setPresence(e, bit(req.Src))
			e.lastWriter = req.Src
			e.grants++
			h.ckDir(b, e, "fwd-grant")
			h.send(&Msg{Type: MsgOwnAck, Block: b, Dst: req.Src, Data: true, Stamp: e.grants, Payload: e.data, Txn: req.Txn})
		case req.Type == MsgReadReq && e.migratory && h.sys.P.M:
			if m.Wrote {
				// Still migratory: pass the exclusive copy along.
				h.ExclusiveSupplies++
				e.owner = req.Src
				h.setPresence(e, bit(req.Src))
				e.lastWriter = req.Src
				e.grants++
				h.ckDir(b, e, "mig-pass")
				h.send(&Msg{Type: MsgReadReply, Block: b, Dst: req.Src, Data: true, Excl: true, Prefetch: req.Prefetch, Stamp: e.grants, Payload: e.data, Txn: req.Txn})
			} else {
				// The holder never wrote its exclusive copy: the pattern is
				// no longer migratory. Revert to ordinary sharing (the
				// extra-cache-state mechanism of paper §3.2).
				h.MigratoryReverts++
				h.sys.traceNode(trace.DirTransition, "revert", b, h.id, "")
				e.migratory = false
				e.state = dirClean
				h.setPresence(e, bit(m.Src)|bit(req.Src))
				h.ckDir(b, e, "revert")
				h.send(&Msg{Type: MsgReadReply, Block: b, Dst: req.Src, Data: true, Prefetch: req.Prefetch, Payload: e.data, Txn: req.Txn})
			}
		default:
			// Ordinary read miss to a dirty block: owner downgraded to
			// Shared, memory updated, requester added.
			e.state = dirClean
			h.addSharer(e, req.Src)
			h.ckDir(b, e, "fwd-downgrade")
			h.send(&Msg{Type: MsgReadReply, Block: b, Dst: req.Src, Data: true, Prefetch: req.Prefetch, Payload: e.data, Txn: req.Txn})
		}
		h.finish(b, e)
	})
}

// ---------- Ownership requests ----------

func (h *HomeCtl) ownReq(m *Msg, e *dirEntry) {
	h.OwnReqs++
	b := m.Block
	if e.state == dirModified {
		// Dirty elsewhere: take the copy away from the owner.
		e.txn = txFwd
		h.send(&Msg{Type: MsgFwd, Block: b, Dst: e.owner, Requester: m.Src, Excl: true, Txn: m.Txn})
		return
	}
	// Migratory detection (paper §3.2, following Stenström et al.): an
	// ownership request from a processor holding one of exactly two copies,
	// where the last writer is the other processor, marks the block
	// migratory.
	if h.sys.P.M && !e.migratory &&
		bits.OnesCount64(e.presence) == 2 && e.presence&bit(m.Src) != 0 &&
		e.lastWriter >= 0 && e.lastWriter != m.Src {
		e.migratory = true
		h.MigratoryDetections++
		h.sys.traceNode(trace.DirTransition, "migratory", b, h.id, "")
	}
	sharers := h.sharersFor(e, m.Src)
	e.needData = e.presence&bit(m.Src) == 0
	if sharers == 0 {
		h.grantOwnership(b, e, m.Src)
		return
	}
	if e.overflow {
		h.BroadcastInvalidations++
	}
	e.txn = txInv
	e.acksLeft = bits.OnesCount64(sharers)
	for n := 0; n < h.sys.P.Nodes; n++ {
		if sharers&bit(n) != 0 {
			h.send(&Msg{Type: MsgInv, Block: b, Dst: n})
		}
	}
}

func (h *HomeCtl) onInvAck(m *Msg) {
	b := m.Block
	e := h.entry(b)
	if !e.busy || e.txn != txInv {
		panic(fmt.Sprintf("home %d: unexpected InvAck for block %d", h.id, b))
	}
	e.presence &^= bit(m.Src)
	h.ckDir(b, e, "inv-ack")
	e.acksLeft--
	if e.acksLeft == 0 {
		// The invalidation fan-out round trip ends with the last ack.
		h.sys.tmark(e.txnReq.Txn, telemetry.PhaseGather)
		h.grantOwnership(b, e, e.txnReq.Src)
	}
}

func (h *HomeCtl) grantOwnership(b memsys.Block, e *dirEntry, to int) {
	h.sys.traceNode(trace.DirTransition, "grant", b, h.id, fmt.Sprintf("to=%d", to))
	e.state = dirModified
	e.owner = to
	h.setPresence(e, bit(to))
	e.lastWriter = to
	e.grants++
	h.ckDir(b, e, "grant")
	h.send(&Msg{Type: MsgOwnAck, Block: b, Dst: to, Data: e.needData, Stamp: e.grants, Payload: e.data, Txn: e.txnReq.Txn})
	h.finish(b, e)
}

// ---------- Competitive updates ----------

func (h *HomeCtl) updateReq(m *Msg, e *dirEntry) {
	h.UpdateReqs++
	b := m.Block
	if e.state == dirModified {
		if e.owner == m.Src {
			// The updater became the exclusive owner while these writes
			// were still combining in its write cache; its dirty line
			// already holds them, so just acknowledge.
			h.send(&Msg{Type: MsgUpdateAck, Block: b, Dst: m.Src, Excl: true, Stamp: e.grants, Txn: m.Txn})
			h.finish(b, e)
			return
		}
		// The block went exclusive to another cache (e.g. migratory under
		// CW+M) while this updater still had combined writes buffered:
		// recall the owner's copy, then hand the block to the updater.
		e.txn = txRecall
		h.send(&Msg{Type: MsgFwd, Block: b, Dst: e.owner, Requester: m.Src, Excl: true, Txn: m.Txn})
		return
	}
	h.applyUpdate(e, m)
	others := h.sharersFor(e, m.Src)
	// CW+M migratory detection (paper §3.4): the home cannot see local
	// reads, so when consecutive updates come from different processors it
	// interrogates all other copy holders; the block is deemed migratory
	// only if every one of them gives up its copy.
	probe := h.sys.P.M && h.sys.P.CW && !e.migratory &&
		e.lastUpdater >= 0 && e.lastUpdater != m.Src && others != 0
	e.lastUpdater = m.Src
	e.needData = e.presence&bit(m.Src) == 0
	if others == 0 {
		// No other copies: the updater becomes the exclusive owner, so its
		// subsequent writes stay local.
		e.state = dirModified
		e.owner = m.Src
		h.setPresence(e, bit(m.Src))
		e.lastWriter = m.Src
		e.grants++
		h.ckDir(b, e, "update-excl")
		h.send(&Msg{Type: MsgUpdateAck, Block: b, Dst: m.Src, Data: e.needData, Excl: true, Stamp: e.grants, Payload: e.data, Txn: m.Txn})
		h.finish(b, e)
		return
	}
	e.txn = txUpd
	e.acksLeft = bits.OnesCount64(others)
	e.probing = probe
	e.gaveUp = true
	for n := 0; n < h.sys.P.Nodes; n++ {
		if others&bit(n) != 0 {
			h.send(&Msg{Type: MsgUpdCopy, Block: b, Dst: n, Mask: m.Mask, Probe: probe, Payload: e.data})
		}
	}
}

func (h *HomeCtl) onUpdAck(m *Msg) {
	b := m.Block
	e := h.entry(b)
	if !e.busy || e.txn != txUpd {
		panic(fmt.Sprintf("home %d: unexpected UpdAck for block %d", h.id, b))
	}
	if m.Removed {
		e.presence &^= bit(m.Src)
		h.ckDir(b, e, "upd-ack")
	}
	if !m.GaveUp {
		e.gaveUp = false
	}
	e.acksLeft--
	if e.acksLeft > 0 {
		return
	}
	req := e.txnReq
	// The update fan-out round trip ends with the last sharer's ack.
	h.sys.tmark(req.Txn, telemetry.PhaseGather)
	if e.probing && e.gaveUp {
		e.migratory = true
		h.MigratoryDetections++
	}
	if e.presence&^bit(req.Src) == 0 {
		// Every other copy is gone: grant exclusivity to the updater.
		e.state = dirModified
		e.owner = req.Src
		h.setPresence(e, bit(req.Src))
		e.lastWriter = req.Src
		e.grants++
		h.ckDir(b, e, "update-grant")
		h.send(&Msg{Type: MsgUpdateAck, Block: b, Dst: req.Src, Data: e.needData, Excl: true, Stamp: e.grants, Payload: e.data, Txn: req.Txn})
	} else {
		// The updater keeps a Shared copy (if it has one); the ack carries
		// the post-update memory image so that copy reflects its own writes'
		// serialized versions.
		h.send(&Msg{Type: MsgUpdateAck, Block: b, Dst: req.Src, Payload: e.data, Txn: req.Txn})
	}
	h.finish(b, e)
}

// ---------- Writebacks ----------

func (h *HomeCtl) wbReq(m *Msg, e *dirEntry) {
	b := m.Block
	if e.state == dirModified && e.owner == m.Src && m.Stamp == e.grants {
		h.Writebacks++
		h.sys.traceNode(trace.DirTransition, "writeback", b, h.id, "")
		mask := m.Mask
		if mask == 0 {
			mask = memsys.FullMask
		}
		if h.sys.takeMutation("wb-drop-word") {
			// Injected protocol bug: the writeback merge silently loses the
			// lowest written word, so memory keeps a stale version of it.
			mask &= mask - 1
		}
		e.data.Merge(m.Payload, mask)
		e.state = dirClean
		e.presence = 0
		e.overflow = false
		e.owner = -1
		h.ckDir(b, e, "writeback")
	} else {
		// Stale: the copy already moved on via a forwarded reply.
		h.StaleWritebacks++
		h.sys.traceNode(trace.DirTransition, "stale-wb", b, h.id, "")
	}
	h.send(&Msg{Type: MsgWBAck, Block: b, Dst: m.Src})
	// The owner's parked requests can proceed now that the writeback
	// resolved.
	if len(e.parked) > 0 {
		e.deferred = append(e.parked, e.deferred...)
		e.parked = nil
	}
	h.finish(b, e)
}

// ---------- Locks and barriers ----------

func (h *HomeCtl) onLock(m *Msg) {
	l := h.locks[m.Block]
	if l == nil {
		l = &syncprim.Lock{}
		h.locks[m.Block] = l
	}
	h.sys.Eng.After(h.sys.P.Timing.MemAccess, func() {
		switch m.Type {
		case MsgLockReq:
			if l.Acquire(m.Src) {
				h.send(&Msg{Type: MsgLockGrant, Block: m.Block, Dst: m.Src})
			}
		case MsgLockRel:
			if next, ok := l.Release(m.Src); ok {
				h.send(&Msg{Type: MsgLockGrant, Block: m.Block, Dst: next})
			}
			if h.sys.P.SC {
				h.send(&Msg{Type: MsgRelAck, Block: m.Block, Dst: m.Src})
			}
		}
	})
}

func (h *HomeCtl) onBarrier(m *Msg) {
	bar := h.barriers[m.BarID]
	if bar == nil {
		bar = syncprim.NewBarrier(h.sys.P.Nodes)
		h.barriers[m.BarID] = bar
	}
	h.sys.Eng.After(h.sys.P.Timing.MemAccess, func() {
		if rel, done := bar.Arrive(m.Src); done {
			for _, p := range rel {
				h.send(&Msg{Type: MsgBarGo, BarID: m.BarID, Dst: p})
			}
		}
	})
}

// DirEntryInfo is a read-only snapshot of a directory entry for tests and
// tools.
type DirEntryInfo struct {
	Modified  bool
	Presence  uint64
	Owner     int
	Migratory bool
	Busy      bool
}

// Entry returns a snapshot of the directory entry for b, or ok=false when
// the home has never seen the block.
func (h *HomeCtl) Entry(b memsys.Block) (DirEntryInfo, bool) {
	e := h.dir[b]
	if e == nil {
		return DirEntryInfo{}, false
	}
	return DirEntryInfo{
		Modified:  e.state == dirModified,
		Presence:  e.presence,
		Owner:     e.owner,
		Migratory: e.migratory,
		Busy:      e.busy,
	}, true
}
