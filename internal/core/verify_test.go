package core

import (
	"strings"
	"testing"

	"ccsim/internal/memsys"
)

func TestVerifyDataCleanRun(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) { p.VerifyData = true })
	a := blockHomedAt(s, 1)
	// A producer-consumer handoff: versions must flow through write,
	// invalidation, and refetch.
	write(t, eng, s, 0, a)
	read(t, eng, s, 2, a)
	write(t, eng, s, 2, a)
	read(t, eng, s, 0, a)
	if len(s.DataViolations) != 0 {
		t.Fatalf("violations on a coherent run: %v", s.DataViolations)
	}
	// The version counter advanced once per write.
	if got := s.verSeq[memsys.BlockOf(a)][0]; got != 2 {
		t.Fatalf("version counter = %d, want 2", got)
	}
}

func TestVerifyDetectsRegression(t *testing.T) {
	// Force a backward observation directly: the checker, not the
	// protocol, is under test here.
	_, s := testSystem(t, func(p *Params) { p.VerifyData = true })
	c := s.Nodes[0].Cache
	c.observe(7, 3, 5)
	c.observe(7, 3, 5) // same version: fine
	if len(s.DataViolations) != 0 {
		t.Fatalf("spurious violation: %v", s.DataViolations)
	}
	c.observe(7, 3, 4) // backward: must flag
	if len(s.DataViolations) != 1 || !strings.Contains(s.DataViolations[0], "block 7 word 3") {
		t.Fatalf("violations = %v", s.DataViolations)
	}
}

func TestVerifyViolationListBounded(t *testing.T) {
	_, s := testSystem(t, func(p *Params) { p.VerifyData = true })
	c := s.Nodes[0].Cache
	c.observe(1, 0, 100)
	for i := 0; i < 50; i++ {
		c.observe(1, 0, 1)
	}
	if len(s.DataViolations) > 16 {
		t.Fatalf("violation list unbounded: %d", len(s.DataViolations))
	}
}

func TestVerifyMigratoryHandoffCarriesData(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) {
		p.M = true
		p.VerifyData = true
	})
	a := blockHomedAt(s, 0)
	// Build the migratory chain; each reader must see the previous
	// writer's version.
	for _, n := range []int{1, 2, 3, 1, 2, 3} {
		read(t, eng, s, n, a)
		write(t, eng, s, n, a)
	}
	if len(s.DataViolations) != 0 {
		t.Fatalf("violations in migratory chain: %v", s.DataViolations)
	}
	if got := s.verSeq[memsys.BlockOf(a)][0]; got != 6 {
		t.Fatalf("version counter = %d, want 6", got)
	}
}

func TestVerifyWritebackCarriesData(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) {
		p.SLCSets = 4
		p.VerifyData = true
	})
	a := blockHomedAt(s, 1)
	b := memsys.BlockOf(a)
	write(t, eng, s, 0, a)
	// Victimize the dirty line; its version must survive the writeback.
	read(t, eng, s, 0, b.Next(4).Addr())
	eng.Run()
	read(t, eng, s, 2, a) // must see version 1 from memory
	if len(s.DataViolations) != 0 {
		t.Fatalf("violations across writeback: %v", s.DataViolations)
	}
	l := lineOf(s, 2, a)
	if l == nil || l.Data[0] != 1 {
		t.Fatalf("reader's data = %+v, want word 0 version 1", l)
	}
}

func TestVerifyCWUpdatesCarryData(t *testing.T) {
	eng, s := testSystem(t, func(p *Params) {
		p.CW = true
		p.CWThreshold = 4
		p.VerifyData = true
	})
	a := blockHomedAt(s, 1)
	read(t, eng, s, 2, a) // a sharer that will receive updates
	c := s.Nodes[0].Cache
	for i := 0; i < 3; i++ {
		c.Write(a, nil, nil)
		eng.Run()
		for _, e := range c.WriteCache().DrainAll() {
			c.flushWC(e, nil)
		}
		eng.Run()
		// The sharer reads after every update; versions must increase.
		read(t, eng, s, 2, a)
	}
	if len(s.DataViolations) != 0 {
		t.Fatalf("violations under competitive update: %v", s.DataViolations)
	}
	if l := lineOf(s, 2, a); l == nil || l.Data[0] != 3 {
		t.Fatalf("sharer data = %+v, want word 0 version 3", l)
	}
}

func TestVerifyOffByDefaultCostsNothing(t *testing.T) {
	eng, s := testSystem(t, nil)
	if s.verSeq != nil {
		t.Fatal("version state allocated without VerifyData")
	}
	a := blockHomedAt(s, 1)
	write(t, eng, s, 0, a)
	read(t, eng, s, 2, a)
	if len(s.DataViolations) != 0 {
		t.Fatal("violations recorded with verification off")
	}
}
