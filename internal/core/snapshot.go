package core

import (
	"fmt"
	"sort"

	"ccsim/internal/fault"
	"ccsim/internal/memsys"
)

// This file implements fault.Snapshotter for System: the diagnostic
// snapshot a SimFault carries. Everything is ordered deterministically
// (node order, block order) so identical faults dump identically.

// LastDispatch returns the dispatch context: the component and protocol
// message a panic inside a handler should be attributed to. ok is false
// before the first message delivery.
func (s *System) LastDispatch() (component, msgKind string, block memsys.Block, ok bool) {
	if !s.lastValid {
		return "", "", 0, false
	}
	component = fmt.Sprintf("cache %d", s.lastDst)
	if s.lastToHome {
		component = fmt.Sprintf("home %d", s.lastDst)
	}
	return component, s.lastType.String(), s.lastBlock, true
}

// FaultSnapshot captures the machine's diagnostic state for a fault
// report: per-cache pending transactions, the directory entry of the
// faulting block, non-empty resource queues, blocked synchronization
// agents, and the flight recorder's tail.
func (s *System) FaultSnapshot(block uint64, hasBlock bool) *fault.Snapshot {
	snap := &fault.Snapshot{
		Blocked:      s.BlockedSync(),
		Messages:     s.Rec.Tail(),
		MessagesSeen: s.Rec.Seen(),
	}
	for _, n := range s.Nodes {
		c := n.Cache
		cs := fault.CacheState{
			Node:     n.ID,
			SLWBUsed: c.slwbUsed,
			FLWBUsed: c.flwb.Len(),
			RelQueue: len(c.relQueue),
			Pending:  c.describePending(),
		}
		if cs.SLWBUsed != 0 || cs.FLWBUsed != 0 || cs.RelQueue != 0 || len(cs.Pending) != 0 {
			snap.Caches = append(snap.Caches, cs)
		}
	}
	if hasBlock {
		snap.Dir = s.dirSnapshot(memsys.Block(block))
	}
	for _, n := range s.Nodes {
		for _, res := range []struct {
			name  string
			depth int
		}{
			{fmt.Sprintf("bus%d", n.ID), n.Bus.QueueDepth()},
			{fmt.Sprintf("slc%d", n.ID), n.Cache.slcRes.QueueDepth()},
		} {
			if res.depth > 0 {
				snap.Resources = append(snap.Resources, fault.ResourceState{Name: res.name, Depth: res.depth})
			}
		}
	}
	return snap
}

// dirSnapshot converts the faulting block's directory entry (nil when the
// home never allocated one).
func (s *System) dirSnapshot(b memsys.Block) *fault.DirState {
	home := s.HomeOf(b)
	e := s.Nodes[home].Home.dir[b]
	if e == nil {
		return nil
	}
	d := &fault.DirState{
		Block:    uint64(b),
		Home:     home,
		State:    "CLEAN",
		Owner:    e.owner,
		Presence: e.presence,
		Busy:     e.busy,
		Deferred: len(e.deferred),
		Parked:   len(e.parked),
	}
	if e.state == dirModified {
		d.State = "MODIFIED"
	}
	if e.busy {
		d.Txn = [...]string{"none", "mem", "fwd", "inv", "upd", "recall"}[e.txn]
	}
	return d
}

// describePending renders one line per in-flight transaction of this
// cache, block order.
func (c *CacheCtl) describePending() []string {
	var out []string
	for _, b := range sortedBlocks(c.mshrs) {
		ms := c.mshrs[b]
		kind := [...]string{"read", "ownership", "update"}[ms.kind]
		line := fmt.Sprintf("block %d: %s in flight (%d readers, %d writes",
			b, kind, len(ms.readers), ms.nWrites)
		if ms.prefetchOnly {
			line += ", prefetch-only"
		}
		if len(ms.performed) > 0 {
			line += fmt.Sprintf(", %d performed-waiters", len(ms.performed))
		}
		out = append(out, line+")")
	}
	for _, b := range sortedBlocks(c.wbPending) {
		out = append(out, fmt.Sprintf("block %d: writeback in flight", b))
	}
	return out
}

// BlockedSync names every agent blocked on the synchronization fabric and
// the memory system: processors stuck on reads, writes, locks, barriers or
// full buffers, and the lock/barrier primitives holding them. The cache
// controller's node ID is its processor's ID.
func (s *System) BlockedSync() []string {
	var out []string
	for _, n := range s.Nodes {
		c := n.Cache
		for _, b := range sortedBlocks(c.mshrs) {
			ms := c.mshrs[b]
			if len(ms.readers) > 0 {
				out = append(out, fmt.Sprintf("proc %d blocked reading block %d", c.id, b))
			}
			if len(ms.performed) > 0 {
				out = append(out, fmt.Sprintf("proc %d awaiting write completion on block %d", c.id, b))
			}
		}
		for _, b := range sortedBlocks(c.lockWaiters) {
			out = append(out, fmt.Sprintf("proc %d waiting for lock %d", c.id, b))
		}
		for _, id := range sortedInts(c.barWaiters) {
			out = append(out, fmt.Sprintf("proc %d waiting at barrier %d", c.id, id))
		}
		if len(c.relAckWaiters) > 0 {
			out = append(out, fmt.Sprintf("proc %d awaiting release ack", c.id))
		}
		if c.flwbWaiter != nil {
			out = append(out, fmt.Sprintf("proc %d blocked on full FLWB", c.id))
		}
	}
	for _, n := range s.Nodes {
		h := n.Home
		for _, b := range sortedBlocks(h.locks) {
			l := h.locks[b]
			if l.Held() && l.QueueLen() > 0 {
				out = append(out, fmt.Sprintf("lock %d (home %d) held by proc %d, %d queued",
					b, h.id, l.Holder(), l.QueueLen()))
			}
		}
		for _, id := range sortedInts(h.barriers) {
			bar := h.barriers[id]
			if w := bar.Waiting(); w > 0 && w < bar.Parties() {
				out = append(out, fmt.Sprintf("barrier %d (home %d): %d of %d arrived",
					id, h.id, w, bar.Parties()))
			}
		}
	}
	return out
}

func sortedBlocks[V any](m map[memsys.Block]V) []memsys.Block {
	if len(m) == 0 {
		return nil
	}
	out := make([]memsys.Block, 0, len(m))
	for b := range m {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedInts[V any](m map[int]V) []int {
	if len(m) == 0 {
		return nil
	}
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
