package core

import "ccsim/internal/sim"

// Analytical latency model: closed-form uncontended service times for each
// transaction class, derived from the Timing parameters exactly as the
// hardware composes them. The simulator must reproduce these numbers on an
// idle machine (latency_test.go checks it does), which pins the timing
// arithmetic down and gives users a back-of-envelope model to reason with —
// the same decomposition the paper uses to explain its §2 parameters
// ("FLC, SLC, and local memory access times of 1, 6, and 30 pclocks").

// LocalMissLatency returns the SLC-miss-to-local-memory service time: SLC
// lookup, bus request, memory access, bus data return, SLC fill.
func LocalMissLatency(t Timing) sim.Time {
	return t.SLCAccess + t.BusCtl + t.MemAccess + t.BusData + t.SLCAccess
}

// RemoteCleanLatency returns the two-transfer remote miss: the local case
// plus a network crossing each way and the home node's bus passes.
func RemoteCleanLatency(t Timing) sim.Time {
	return t.SLCAccess + t.BusCtl + t.NetLatency + // request out
		t.BusCtl + t.MemAccess + t.BusData + // home service
		t.NetLatency + t.BusData + t.SLCAccess // reply in + fill
}

// RemoteDirtyLatency returns the four-transfer miss serviced via the dirty
// owner: request to home, forward to owner, data back to home (with the
// memory update), reply to the requester.
func RemoteDirtyLatency(t Timing) sim.Time {
	return t.SLCAccess + t.BusCtl + t.NetLatency + // request out
		t.BusCtl + t.MemAccess + // home directory access
		t.BusCtl + t.NetLatency + t.BusCtl + // forward to owner
		t.SLCAccess + // owner SLC access
		t.BusData + t.NetLatency + t.BusData + // data back to home
		t.MemAccess + // memory update
		t.BusData + t.NetLatency + t.BusData + t.SLCAccess // reply + fill
}

// OwnershipLatency returns the upgrade time for a write to a Shared block
// with k remote sharers to invalidate (k >= 1), all invalidated in
// parallel: request to home, directory access, invalidation round trip,
// ownership acknowledgment.
func OwnershipLatency(t Timing, k int) sim.Time {
	if k < 1 {
		// No sharers: request, directory access, immediate grant.
		return t.SLCAccess + t.BusCtl + t.NetLatency +
			t.BusCtl + t.MemAccess +
			t.BusCtl + t.NetLatency + t.BusCtl + t.SLCAccess
	}
	return t.SLCAccess + t.BusCtl + t.NetLatency + // request out
		t.BusCtl + t.MemAccess + // home directory access
		t.BusCtl + t.NetLatency + t.BusCtl + // invalidations out
		sim.Time(k-1)*t.BusCtl + // later invalidations serialize on the home bus
		t.SLCAccess + // sharer SLC access
		t.BusCtl + t.NetLatency + t.BusCtl + // acks back (parallel)
		t.BusCtl + t.NetLatency + t.BusCtl + t.SLCAccess // grant + SLC pass
}

// MigratorySavings returns how many pclocks the migratory optimization
// saves per migration under sequential consistency: the entire ownership
// upgrade with one remote sharer disappears (the read already returned an
// exclusive copy).
func MigratorySavings(t Timing) sim.Time {
	return OwnershipLatency(t, 1)
}
