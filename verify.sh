#!/bin/sh
# Tier-1 verification: everything must build, vet clean, and pass the full
# test suite; the event engine, telemetry collector, ops plane, coherence
# checker, litmus harness, and the parallel experiment scheduler
# additionally run under the race detector (the scheduler fans ccsim.Run
# calls across goroutines and the ops server scrapes them live, so exp and
# ops are the race-sensitive surface; checked runs ride those same
# goroutines). CI and `make verify` both run this.
set -eux

go build ./...
go vet ./...
go test ./...
go test -race -short ccsim/internal/sim ccsim/internal/telemetry ccsim/internal/fault ccsim/internal/ops ccsim/internal/check ccsim/internal/litmus ccsim/internal/store ccsim/exp

# Queue-focused race pass, named directly in CI logs: TestEngine* plus the
# differential event-order tests cover every calendar-queue path (wheel
# scheduling, overflow migration, cohort dispatch, watchdog batching).
go test -race -count=1 -run 'TestEngine|TestEventOrder' ccsim/internal/sim

# Ops-handler race pass, named directly in CI logs: live scrapes against a
# running scheduler plus the dashboard and gated pprof endpoints.
go test -race -count=1 -run 'TestScrapeDuringSweep|TestDashboardServes|TestPprofGating' ccsim/internal/ops

# Advisory engine-speed trend: print the ns/op delta table (with its
# geomean summary row) between the two most recent archived baselines.
# Informational only — benchmark noise must never fail the gate.
if [ -f BENCH_PR7.json ] && [ -f BENCH_PR9.json ]; then
    go run ./cmd/benchjson -compare BENCH_PR7.json BENCH_PR9.json || true
fi

# Watchdog smoke: a generous event ceiling must not disturb a clean run,
# and a far-too-tight one must abort with a structured fault (non-zero
# exit) instead of hanging or crashing.
go build -o /tmp/ccsim-verify ./cmd/ccsim
/tmp/ccsim-verify -workload mp3d -scale 0.05 -procs 4 -max-events 50000000 > /dev/null
if /tmp/ccsim-verify -workload mp3d -scale 0.05 -procs 4 -max-events 1000 > /dev/null 2>&1; then
    echo "watchdog smoke: tight -max-events ceiling did not abort" >&2
    exit 1
fi

# Live-checker smoke: a clean workload must pass with the transition-time
# coherence checker attached, and -check must leave stdout byte-identical
# to an unchecked run (the checker is a pure side channel).
/tmp/ccsim-verify -workload mp3d -scale 0.05 -procs 4 -check > /tmp/ccsim-checked.txt
/tmp/ccsim-verify -workload mp3d -scale 0.05 -procs 4 > /tmp/ccsim-unchecked.txt
cmp /tmp/ccsim-checked.txt /tmp/ccsim-unchecked.txt

# Analytics smoke: sharing-pattern analytics and the engine self-profiler
# are pure side channels too — a run with both attached (and the checker,
# the heaviest combination) must pass and leave stdout byte-identical to a
# plain run, with the reports landing in their side files. The disabled
# path must stay free: the no-allocs tests pin the nil-hook cost to zero.
/tmp/ccsim-verify -workload mp3d -scale 0.05 -procs 4 -check \
    -sharing /tmp/ccsim-sharing.txt -selfprofile /tmp/ccsim-selfprof.json \
    > /tmp/ccsim-analytics.txt
cmp /tmp/ccsim-analytics.txt /tmp/ccsim-unchecked.txt
test -s /tmp/ccsim-sharing.txt
test -s /tmp/ccsim-selfprof.json
go test -count=1 -run 'TestAnalyticsDisabledAddsNoAllocs' ccsim
go test -count=1 -run 'TestSelfProfilerDisabledAddsNoAllocs' ccsim/internal/sim
rm -f /tmp/ccsim-verify /tmp/ccsim-checked.txt /tmp/ccsim-unchecked.txt \
    /tmp/ccsim-analytics.txt /tmp/ccsim-sharing.txt /tmp/ccsim-selfprof.json

# Bounded checked-random-walk litmus pass: seeded micro-programs across the
# protocol grid under the live checker (the corpus itself runs in
# `go test ./...` above; this repeats the randomized walk subset alone so a
# litmus regression is named directly in CI logs).
go test -count=1 -run 'TestRandomWalkChecked' ccsim/internal/litmus

# Tier-2 metrics regression gate: regenerate the golden grid (Table 2 at a
# small fixed scale) and require every metric to match the committed
# baseline exactly — the simulator is deterministic, so any drift is a
# behavior change. `make golden` refreshes the baseline after an
# intentional one.
go build -o /tmp/metricsdiff-verify ./cmd/metricsdiff
go build -o /tmp/experiments-verify ./cmd/experiments
rm -rf /tmp/ccsim-metrics-check
/tmp/experiments-verify -exp table2 -scale 0.05 -procs 4 -q -metrics /tmp/ccsim-metrics-check > /dev/null
/tmp/metricsdiff-verify golden /tmp/ccsim-metrics-check

# Gate self-check: the baseline must pass against itself, and a perturbed
# copy must fail — proves the gate can actually catch a regression.
/tmp/metricsdiff-verify golden golden > /dev/null
rm -rf /tmp/ccsim-metrics-perturbed
cp -r golden /tmp/ccsim-metrics-perturbed
sed -i 's/"ExecTime": [0-9]*/"ExecTime": 1/' /tmp/ccsim-metrics-perturbed/mp3d_BASIC_p4_x0.05.json
if /tmp/metricsdiff-verify golden /tmp/ccsim-metrics-perturbed > /dev/null 2>&1; then
    echo "metricsdiff self-check: perturbed baseline was not rejected" >&2
    exit 1
fi
rm -rf /tmp/ccsim-metrics-check /tmp/ccsim-metrics-perturbed

# Crash-resume smoke: a sweep with -cache-dir killed mid-flight must
# resume by re-running the same command, producing stdout byte-identical
# to an uninterrupted, uncached sweep; a corrupted store entry must be
# quarantined and re-executed, never crash the resume.
rm -rf /tmp/ccsim-store
/tmp/experiments-verify -exp table2 -scale 0.05 -procs 4 -q > /tmp/ccsim-resume-ref.txt
/tmp/experiments-verify -exp table2 -scale 0.05 -procs 4 -q \
    -cache-dir /tmp/ccsim-store > /dev/null 2>&1 &
SWEEP_PID=$!
sleep 1
kill -9 "$SWEEP_PID" 2> /dev/null || true
wait "$SWEEP_PID" 2> /dev/null || true
/tmp/experiments-verify -exp table2 -scale 0.05 -procs 4 -q \
    -cache-dir /tmp/ccsim-store > /tmp/ccsim-resume-out.txt
cmp /tmp/ccsim-resume-ref.txt /tmp/ccsim-resume-out.txt
# The resume committed an entry for every unique run; truncate one (the
# kill -9 shape) and resume again: quarantined, re-run, still identical.
for f in /tmp/ccsim-store/*.res; do
    truncate -s 10 "$f"
    break
done
/tmp/experiments-verify -exp table2 -scale 0.05 -procs 4 -q \
    -cache-dir /tmp/ccsim-store > /tmp/ccsim-resume-out2.txt
cmp /tmp/ccsim-resume-ref.txt /tmp/ccsim-resume-out2.txt
ls /tmp/ccsim-store/quarantine/* > /dev/null
rm -rf /tmp/ccsim-store /tmp/ccsim-resume-ref.txt /tmp/ccsim-resume-out.txt \
    /tmp/ccsim-resume-out2.txt

# Live ops-plane smoke: a sweep serving -listen -pprof must answer
# /dashboard and the gated /debug/pprof/ endpoints, and /metrics must carry
# the engine queue-internals and lifecycle-duration families once the first
# runs complete — scraped mid-sweep, while the scheduler is still working.
fetch() {
    if command -v curl > /dev/null 2>&1; then
        curl -sf "$1"
    else
        wget -qO- "$1"
    fi
}
# No -q: the listening address arrives as an Info-level stderr record.
# Scale 0.25 keeps the sweep alive for several seconds so the scrapes
# below genuinely land mid-sweep.
/tmp/experiments-verify -exp table2 -scale 0.25 -procs 8 \
    -listen 127.0.0.1:0 -pprof > /dev/null 2> /tmp/ccsim-ops-log.txt &
OPS_PID=$!
ADDR=""
i=0
while [ "$i" -lt 100 ]; do
    ADDR=$(sed -n 's/.*ops server listening.*addr=\([0-9.]*:[0-9]*\).*/\1/p' /tmp/ccsim-ops-log.txt | head -1)
    [ -n "$ADDR" ] && break
    i=$((i + 1))
    sleep 0.1
done
test -n "$ADDR"
fetch "http://$ADDR/dashboard" | grep -q "ccsim sweep dashboard"
fetch "http://$ADDR/debug/pprof/heap?debug=1" > /dev/null
fetch "http://$ADDR/debug/pprof/cmdline" > /dev/null
# Poll /metrics until the engine and duration families appear (they need
# one completed run), keeping the last successful scrape so a sweep that
# drains between polls can't empty the assertion input.
MID=""
i=0
while [ "$i" -lt 300 ] && kill -0 "$OPS_PID" 2> /dev/null; do
    CUR=$(fetch "http://$ADDR/metrics" || true)
    [ -n "$CUR" ] && MID=$CUR
    if printf '%s' "$MID" | grep -q ccsim_engine_events_dispatched_total &&
        printf '%s' "$MID" | grep -q ccsim_sched_duration_seconds_count; then
        break
    fi
    i=$((i + 1))
    sleep 0.1
done
printf '%s' "$MID" | grep -q ccsim_engine_events_dispatched_total
printf '%s' "$MID" | grep -q ccsim_sched_duration_seconds_count
printf '%s' "$MID" | grep -q ccsim_engine_cohort_size_events_bucket
wait "$OPS_PID"
rm -f /tmp/ccsim-ops-log.txt

# Distributed-sweep smoke, part 1: a coordinator (-serve-jobs) plus one
# worker pulling jobs over HTTP must produce stdout AND -metrics output
# byte-identical to the same sweep in a single process, and the worker
# must exit 0 once the coordinator goes away. -jobs 1 keeps the
# coordinator's own slot busy so the queue genuinely feeds the worker.
rm -rf /tmp/ccsim-dist-ref-metrics /tmp/ccsim-dist-metrics
/tmp/experiments-verify -exp fig2 -scale 0.5 -procs 8 -q \
    -metrics /tmp/ccsim-dist-ref-metrics > /tmp/ccsim-dist-ref.txt
/tmp/experiments-verify -exp fig2 -scale 0.5 -procs 8 -jobs 1 \
    -listen 127.0.0.1:0 -serve-jobs -metrics /tmp/ccsim-dist-metrics \
    > /tmp/ccsim-dist-out.txt 2> /tmp/ccsim-dist-log.txt &
COORD_PID=$!
ADDR=""
i=0
while [ "$i" -lt 100 ]; do
    ADDR=$(sed -n 's/.*ops server listening.*addr=\([0-9.]*:[0-9]*\).*/\1/p' /tmp/ccsim-dist-log.txt | head -1)
    [ -n "$ADDR" ] && break
    i=$((i + 1))
    sleep 0.05
done
test -n "$ADDR"
/tmp/experiments-verify -worker "http://$ADDR" -worker-poll 10ms \
    2> /tmp/ccsim-dist-worker.txt &
WORKER_PID=$!
wait "$COORD_PID"
cmp /tmp/ccsim-dist-ref.txt /tmp/ccsim-dist-out.txt
/tmp/metricsdiff-verify /tmp/ccsim-dist-ref-metrics /tmp/ccsim-dist-metrics
# The worker notices the coordinator is gone and exits cleanly (status 0),
# having delivered at least one job.
wait "$WORKER_PID"
grep -q "job completed" /tmp/ccsim-dist-worker.txt

# Distributed-sweep smoke, part 2: kill -9 a worker sitting on a lease.
# Its heartbeats stop, the lease expires (1s TTL), the job re-queues and
# the coordinator finishes it locally — same stdout, no lost runs.
/tmp/experiments-verify -exp fig2 -scale 0.5 -procs 8 -jobs 1 \
    -listen 127.0.0.1:0 -serve-jobs -lease-ttl 1s \
    > /tmp/ccsim-dist-out2.txt 2> /tmp/ccsim-dist-log2.txt &
COORD_PID=$!
ADDR=""
i=0
while [ "$i" -lt 100 ]; do
    ADDR=$(sed -n 's/.*ops server listening.*addr=\([0-9.]*:[0-9]*\).*/\1/p' /tmp/ccsim-dist-log2.txt | head -1)
    [ -n "$ADDR" ] && break
    i=$((i + 1))
    sleep 0.05
done
test -n "$ADDR"
# -worker-hold makes the worker sit on its lease without simulating, so
# the kill below always lands mid-job.
/tmp/experiments-verify -worker "http://$ADDR" -worker-poll 10ms \
    -worker-hold 60s -worker-name crashy 2> /dev/null &
WORKER_PID=$!
sleep 0.7
kill -9 "$WORKER_PID" 2> /dev/null || true
wait "$WORKER_PID" 2> /dev/null || true
wait "$COORD_PID"
cmp /tmp/ccsim-dist-ref.txt /tmp/ccsim-dist-out2.txt
grep -q "lease expired" /tmp/ccsim-dist-log2.txt
rm -rf /tmp/ccsim-dist-ref-metrics /tmp/ccsim-dist-metrics \
    /tmp/ccsim-dist-ref.txt /tmp/ccsim-dist-out.txt /tmp/ccsim-dist-out2.txt \
    /tmp/ccsim-dist-log.txt /tmp/ccsim-dist-log2.txt /tmp/ccsim-dist-worker.txt
rm -f /tmp/metricsdiff-verify /tmp/experiments-verify
