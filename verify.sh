#!/bin/sh
# Tier-1 verification: everything must build, vet clean, and pass the full
# test suite; the event engine, telemetry collector, and the parallel
# experiment scheduler additionally run under the race detector (the
# scheduler fans ccsim.Run calls across goroutines, so exp's tests are the
# race-sensitive surface). CI and `make verify` both run this.
set -eux

go build ./...
go vet ./...
go test ./...
go test -race -short ccsim/internal/sim ccsim/internal/telemetry ccsim/exp
