#!/bin/sh
# Tier-1 verification: everything must build, vet clean, and pass the full
# test suite; the event engine, telemetry collector, and the parallel
# experiment scheduler additionally run under the race detector (the
# scheduler fans ccsim.Run calls across goroutines, so exp's tests are the
# race-sensitive surface). CI and `make verify` both run this.
set -eux

go build ./...
go vet ./...
go test ./...
go test -race -short ccsim/internal/sim ccsim/internal/telemetry ccsim/internal/fault ccsim/exp

# Watchdog smoke: a generous event ceiling must not disturb a clean run,
# and a far-too-tight one must abort with a structured fault (non-zero
# exit) instead of hanging or crashing.
go build -o /tmp/ccsim-verify ./cmd/ccsim
/tmp/ccsim-verify -workload mp3d -scale 0.05 -procs 4 -max-events 50000000 > /dev/null
if /tmp/ccsim-verify -workload mp3d -scale 0.05 -procs 4 -max-events 1000 > /dev/null 2>&1; then
    echo "watchdog smoke: tight -max-events ceiling did not abort" >&2
    exit 1
fi
rm -f /tmp/ccsim-verify
