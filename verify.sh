#!/bin/sh
# Tier-1 verification: everything must build, vet clean, and pass the full
# test suite; the event engine and telemetry collector additionally run
# under the race detector (they are the pieces a future parallel driver
# would share between goroutines). CI and `make verify` both run this.
set -eux

go build ./...
go vet ./...
go test ./...
go test -race -short ccsim/internal/sim ccsim/internal/telemetry
